#ifndef HYTAP_TXN_TRANSACTION_MANAGER_H_
#define HYTAP_TXN_TRANSACTION_MANAGER_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "common/types.h"

namespace hytap {

/// A transaction handle. Obtained from TransactionManager::Begin().
struct Transaction {
  TransactionId tid = 0;
  /// Snapshot: the highest commit id visible to this transaction.
  TransactionId snapshot_cid = 0;
  bool finished = false;
};

/// Minimal MVCC transaction manager (paper §II: "ACID compliance in Hyrise is
/// implemented using multi-version concurrency control").
///
/// Insert-only model: writers stamp new delta rows with their transaction id;
/// commit assigns a monotonically increasing commit id (cid). A row written
/// by `tid` is visible to a reader iff `tid` committed with cid <= the
/// reader's snapshot, or the reader is the writer itself. Deletions
/// invalidate rows with an end-cid the same way.
///
/// Thread-safe: Begin/Commit/Abort take the commit map exclusively,
/// IsVisible/IsDeleted shared — concurrent session queries check row
/// visibility against their snapshots while new transactions begin. The
/// common cases (bulk-loaded writer tid 0, never-deleted rows) return before
/// touching the lock.
class TransactionManager {
 public:
  TransactionManager() = default;

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  Transaction Begin();

  /// Commits `txn`, assigning its commit id. Idempotent calls are an error.
  void Commit(Transaction* txn);

  /// Aborts `txn`; its writes stay permanently invisible.
  void Abort(Transaction* txn);

  /// True iff a row stamped with writer `writer_tid` is visible to `reader`.
  bool IsVisible(TransactionId writer_tid, const Transaction& reader) const;

  /// True iff a row invalidated by `deleter_tid` is deleted for `reader`
  /// (kMaxTransactionId means "never deleted").
  bool IsDeleted(TransactionId deleter_tid, const Transaction& reader) const;

  TransactionId last_commit_cid() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return next_cid_ - 1;
  }

 private:
  TransactionId next_tid_ = 1;
  TransactionId next_cid_ = 1;
  // tid -> commit cid; absent = in flight or aborted.
  std::unordered_map<TransactionId, TransactionId> commit_cids_;
  mutable std::shared_mutex mutex_;
};

}  // namespace hytap

#endif  // HYTAP_TXN_TRANSACTION_MANAGER_H_

#include "txn/transaction_manager.h"

#include "common/assert.h"

namespace hytap {

Transaction TransactionManager::Begin() {
  Transaction txn;
  txn.tid = next_tid_++;
  txn.snapshot_cid = next_cid_ - 1;
  return txn;
}

void TransactionManager::Commit(Transaction* txn) {
  HYTAP_ASSERT(!txn->finished, "transaction already finished");
  commit_cids_[txn->tid] = next_cid_++;
  txn->finished = true;
}

void TransactionManager::Abort(Transaction* txn) {
  HYTAP_ASSERT(!txn->finished, "transaction already finished");
  txn->finished = true;
}

bool TransactionManager::IsVisible(TransactionId writer_tid,
                                   const Transaction& reader) const {
  if (writer_tid == 0) return true;  // bulk-loaded / merged baseline data
  if (writer_tid == reader.tid) return true;
  auto it = commit_cids_.find(writer_tid);
  if (it == commit_cids_.end()) return false;  // in flight or aborted
  return it->second <= reader.snapshot_cid;
}

bool TransactionManager::IsDeleted(TransactionId deleter_tid,
                                   const Transaction& reader) const {
  if (deleter_tid == kMaxTransactionId) return false;
  return IsVisible(deleter_tid, reader);
}

}  // namespace hytap

#include "txn/transaction_manager.h"

#include "common/assert.h"
#include "common/metrics.h"

namespace hytap {

namespace {

/// Registry handles resolved once; Add() is gated on the HYTAP_METRICS knob.
struct TxnMetrics {
  Counter* begins;
  Counter* commits;
  Counter* aborts;

  static TxnMetrics& Get() {
    static TxnMetrics metrics;
    return metrics;
  }

 private:
  TxnMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    begins = registry.GetCounter("hytap_txn_begins_total");
    commits = registry.GetCounter("hytap_txn_commits_total");
    aborts = registry.GetCounter("hytap_txn_aborts_total");
  }
};

}  // namespace

Transaction TransactionManager::Begin() {
  Transaction txn;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    txn.tid = next_tid_++;
    txn.snapshot_cid = next_cid_ - 1;
  }
  TxnMetrics::Get().begins->Add();
  return txn;
}

void TransactionManager::Commit(Transaction* txn) {
  HYTAP_ASSERT(!txn->finished, "transaction already finished");
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    commit_cids_[txn->tid] = next_cid_++;
  }
  txn->finished = true;
  TxnMetrics::Get().commits->Add();
}

void TransactionManager::Abort(Transaction* txn) {
  HYTAP_ASSERT(!txn->finished, "transaction already finished");
  txn->finished = true;
  TxnMetrics::Get().aborts->Add();
}

bool TransactionManager::IsVisible(TransactionId writer_tid,
                                   const Transaction& reader) const {
  if (writer_tid == 0) return true;  // bulk-loaded / merged baseline data
  if (writer_tid == reader.tid) return true;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = commit_cids_.find(writer_tid);
  if (it == commit_cids_.end()) return false;  // in flight or aborted
  return it->second <= reader.snapshot_cid;
}

bool TransactionManager::IsDeleted(TransactionId deleter_tid,
                                   const Transaction& reader) const {
  if (deleter_tid == kMaxTransactionId) return false;
  return IsVisible(deleter_tid, reader);
}

}  // namespace hytap

#include "storage/row_layout.h"

#include "common/assert.h"

namespace hytap {

RowLayout::RowLayout(const Schema& schema,
                     std::vector<ColumnId> member_columns)
    : member_columns_(std::move(member_columns)),
      slot_of_(schema.size(), -1) {
  HYTAP_ASSERT(!member_columns_.empty(), "SSCG needs at least one column");
  size_t offset = 0;
  slots_.reserve(member_columns_.size());
  for (size_t slot = 0; slot < member_columns_.size(); ++slot) {
    const ColumnId col = member_columns_[slot];
    HYTAP_ASSERT(col < schema.size(), "member column out of schema range");
    HYTAP_ASSERT(slot_of_[col] == -1, "duplicate member column");
    const ColumnDefinition& def = schema[col];
    const size_t width = def.FixedWidthBytes();
    slots_.push_back(Slot{offset, width, def.type});
    slot_of_[col] = static_cast<int>(slot);
    offset += width;
  }
  row_width_ = offset;
  HYTAP_ASSERT(row_width_ <= kPageSize,
               "SSCG row width exceeds the page size");
  rows_per_page_ = kPageSize / row_width_;
}

int RowLayout::SlotOf(ColumnId column) const {
  if (column >= slot_of_.size()) return -1;
  return slot_of_[column];
}

void RowLayout::SerializeRow(const Row& values, uint8_t* dest) const {
  HYTAP_ASSERT(values.size() == slots_.size(),
               "row arity does not match layout");
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    values[slot].SerializeFixed(dest + slots_[slot].offset,
                                slots_[slot].width);
  }
}

Value RowLayout::DeserializeSlot(const uint8_t* src, size_t slot) const {
  HYTAP_ASSERT(slot < slots_.size(), "slot out of range");
  const Slot& s = slots_[slot];
  return Value::DeserializeFixed(src + s.offset, s.type, s.width);
}

Row RowLayout::DeserializeRow(const uint8_t* src) const {
  Row row;
  row.reserve(slots_.size());
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    row.push_back(DeserializeSlot(src, slot));
  }
  return row;
}

}  // namespace hytap

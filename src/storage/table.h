#ifndef HYTAP_STORAGE_TABLE_H_
#define HYTAP_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/statistics.h"
#include "storage/column.h"
#include "storage/index.h"
#include "storage/sscg.h"
#include "storage/value_column.h"
#include "tiering/buffer_manager.h"
#include "tiering/secondary_store.h"
#include "txn/transaction_manager.h"

namespace hytap {

/// Where a column currently lives.
enum class ColumnLocation {
  kDram,       // Memory-Resident Column (dictionary-encoded)
  kSecondary,  // member of the Secondary Storage Column Group
};

/// A tiered HTAP table (paper §II).
///
/// Structure:
///  - a read-optimized *main* partition: per column either a DRAM-resident
///    dictionary-encoded MRC or membership in a single row-oriented SSCG on
///    secondary storage;
///  - a write-optimized, DRAM-resident *delta* partition (insert-only)
///    absorbing all modifications, merged into main on demand;
///  - MVCC begin/end stamps for visibility.
///
/// Rows are addressed globally: [0, main_row_count) are main rows,
/// [main_row_count, main_row_count + delta size) are delta rows.
class Table {
 public:
  /// `store`/`buffers` may be null for tables that are never tiered.
  Table(std::string name, Schema schema, TransactionManager* txns,
        SecondaryStore* store = nullptr, BufferManager* buffers = nullptr);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t column_count() const { return schema_.size(); }
  size_t main_row_count() const { return main_row_count_; }
  size_t delta_row_count() const { return delta_begin_tids_.size(); }
  size_t row_count() const { return main_row_count_ + delta_row_count(); }

  /// Loads `rows` directly into the main partition as committed data
  /// (begin stamp 0). All columns start DRAM-resident. Callable once,
  /// before any inserts.
  void BulkLoad(const std::vector<Row>& rows);

  /// Appends a row to the delta partition, stamped with `txn`.
  Status Insert(const Transaction& txn, const Row& row);

  /// Invalidates `row` (global id) for transactions after `txn` commits.
  Status Delete(const Transaction& txn, RowId row);

  /// MVCC visibility of a global row id for `txn`.
  bool IsVisible(RowId row, const Transaction& txn) const;

  /// Materializes one cell (any location). `io` accrues simulated cost.
  /// SSCG-placed cells can fail with kUnavailable / kDataLoss.
  StatusOr<Value> GetValue(ColumnId column, RowId row, uint32_t queue_depth,
                           IoStats* io) const;

  /// Materializes the full tuple `row`. For main rows the SSCG part costs a
  /// single page read (paper §II-A); MRC attributes cost two DRAM accesses
  /// each (value vector + dictionary). Fails with the SSCG page error if the
  /// group's page cannot be read.
  StatusOr<Row> ReconstructRow(RowId row, uint32_t queue_depth,
                               IoStats* io) const;

  /// Merges all committed, surviving delta rows into the main partition and
  /// clears the delta. Requires no in-flight transactions on this table.
  /// Preserves the current placement (SSCG is rewritten if present).
  /// Returns kDataLoss (table unchanged) if the current SSCG pages fail
  /// their checksums, or if the rewritten SSCG fails read-back verification
  /// (then the merge completes with all columns left DRAM-resident).
  Status MergeDelta();

  /// Moves columns between DRAM and the SSCG: `in_dram[i]` selects the new
  /// location of column i. Rebuilds affected structures; accounts the
  /// migration volume in `migrated_bytes` if non-null. Evictions are
  /// verified by read-back checksum: if any freshly written SSCG page fails
  /// verification, the eviction is aborted, the table is left fully
  /// DRAM-resident and consistent, and kDataLoss is returned.
  Status SetPlacement(const std::vector<bool>& in_dram,
                      uint64_t* migrated_bytes = nullptr);

  ColumnLocation location(ColumnId column) const {
    return placement_[column] ? ColumnLocation::kDram
                              : ColumnLocation::kSecondary;
  }
  const std::vector<bool>& placement() const { return placement_; }

  /// The MRC for a DRAM-resident column (null if SSCG-placed).
  const AbstractColumn* mrc(ColumnId column) const {
    return mrc_columns_[column].get();
  }
  /// The delta column (always present).
  const AbstractColumn* delta(ColumnId column) const {
    return delta_columns_[column].get();
  }
  const Sscg* sscg() const { return sscg_.get(); }

  /// DRAM bytes of column i's main-partition representation (the a_i of the
  /// selection model when the column is an MRC). SSCG-placed columns report
  /// their would-be MRC size, kept from the last DRAM residence.
  size_t ColumnDramBytes(ColumnId column) const {
    return column_dram_bytes_[column];
  }

  /// Total DRAM consumed by main-partition MRCs.
  size_t MainDramBytes() const;

  /// Distinct-count-based selectivity estimate 1/n (paper §II-B footnote).
  double SelectivityEstimate(ColumnId column) const;

  /// Creates a DRAM-resident index over main-partition rows (paper §IV:
  /// indices are never evicted). Single column id -> B+-tree index
  /// (equality + range); multiple ids -> composite key (equality only).
  /// Indexes are rebuilt automatically on merge and placement changes.
  Status CreateIndex(const std::vector<ColumnId>& columns);

  /// The single-column index on `column`, or null.
  const MainIndex* FindIndex(ColumnId column) const;

  /// A composite index whose key columns are all contained in `columns`
  /// (with every key part present), or null.
  const MainIndex* FindCompositeIndex(
      const std::vector<ColumnId>& columns) const;

  const std::vector<std::unique_ptr<MainIndex>>& indexes() const {
    return indexes_;
  }

  /// DRAM consumed by indexes (reported separately from column budgets).
  size_t IndexDramBytes() const;

  /// Builds per-column histograms + distinct counts over the current main
  /// partition (paper §III-A: selectivities estimated "using distinct counts
  /// and histograms when available"). Refreshed automatically on merge and
  /// placement changes once built.
  void BuildStatistics(size_t bucket_count = 32);

  /// Current statistics, or null if BuildStatistics was never called.
  const TableStatistics* statistics() const { return statistics_.get(); }

  SecondaryStore* store() const { return store_; }
  BufferManager* buffers() const { return buffers_; }
  TransactionManager* txns() const { return txns_; }

 private:
  /// Collects the full (visible, committed) value sequence of a column from
  /// its current location, bypassing timing.
  std::vector<Value> CollectColumnValues(ColumnId column) const;

  /// Rebuilds main-partition structures from explicit column contents.
  /// If an SSCG is written, every page is verified by read-back checksum;
  /// on a verify failure the rebuild falls back to all columns
  /// DRAM-resident (the values are still at hand) and returns kDataLoss.
  Status RebuildMain(const std::vector<std::vector<Value>>& columns,
                     const std::vector<bool>& in_dram,
                     uint64_t* migrated_bytes);

  /// Recomputes the checksum of every current SSCG page (kDataLoss on the
  /// first mismatch). Guards raw gathers (merge, placement change) against
  /// silently propagating corrupted bytes.
  Status VerifySscgPages() const;

  std::string name_;
  Schema schema_;
  TransactionManager* txns_;
  SecondaryStore* store_;
  BufferManager* buffers_;

  /// Rebuilds every registered index from current main-partition contents.
  void RebuildIndexes();

  // --- main partition ---
  size_t main_row_count_ = 0;
  std::vector<std::unique_ptr<AbstractColumn>> mrc_columns_;
  std::unique_ptr<Sscg> sscg_;
  std::vector<bool> placement_;  // true = DRAM
  std::vector<size_t> column_dram_bytes_;
  std::vector<TransactionId> main_end_tids_;  // invalidation stamps
  std::vector<std::vector<ColumnId>> index_definitions_;
  std::vector<std::unique_ptr<MainIndex>> indexes_;
  std::unique_ptr<TableStatistics> statistics_;
  size_t statistics_buckets_ = 32;

  // --- delta partition ---
  std::vector<std::unique_ptr<AbstractColumn>> delta_columns_;
  std::vector<TransactionId> delta_begin_tids_;
  std::vector<TransactionId> delta_end_tids_;

  bool bulk_loaded_ = false;
};

}  // namespace hytap

#endif  // HYTAP_STORAGE_TABLE_H_

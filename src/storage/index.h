#ifndef HYTAP_STORAGE_INDEX_H_
#define HYTAP_STORAGE_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/bplus_tree.h"
#include "storage/column.h"
#include "storage/value.h"

namespace hytap {

/// A DRAM-resident secondary index over main-partition rows.
///
/// Paper §II-B: "In Hyrise, filters are executed using indices if existing";
/// §IV: "Hyrise has several index structures such as single column B+-trees
/// and multi-column composite keys. As of now, we do not evict indices and
/// keep them completely DRAM-allocated."
///
/// Two concrete forms:
///  - SingleColumnIndex: B+-tree over one attribute's values;
///  - CompositeIndex: B+-tree over the concatenated key of several
///    attributes (exact-match lookups on all key parts).
class MainIndex {
 public:
  virtual ~MainIndex() = default;

  /// The indexed columns, in key order.
  virtual const std::vector<ColumnId>& columns() const = 0;

  /// Exact-match lookup; `key` holds one value per indexed column, in key
  /// order. Returns matching row ids ascending.
  virtual PositionList Lookup(const Row& key) const = 0;

  /// Range lookup over a single-column index; [lo, hi] closed, null bounds
  /// unbounded. Composite indexes return false (not supported).
  virtual bool RangeLookup(const Value* lo, const Value* hi,
                           PositionList* out) const = 0;

  /// DRAM bytes used (indexes always stay DRAM-resident).
  virtual size_t MemoryUsage() const = 0;

  virtual size_t size() const = 0;
};

/// Single-column B+-tree index. Keys are the column's values encoded to a
/// sortable byte string (order-preserving), so one tree type serves every
/// column type.
class SingleColumnIndex : public MainIndex {
 public:
  /// Builds over `rows` values of one column.
  SingleColumnIndex(ColumnId column, DataType type,
                    const std::vector<Value>& values);

  const std::vector<ColumnId>& columns() const override { return columns_; }
  PositionList Lookup(const Row& key) const override;
  bool RangeLookup(const Value* lo, const Value* hi,
                   PositionList* out) const override;
  size_t MemoryUsage() const override;
  size_t size() const override { return tree_.size(); }

 private:
  std::vector<ColumnId> columns_;
  DataType type_;
  BPlusTree<std::string, RowId, 64> tree_;
};

/// Multi-column composite-key index (exact match on all parts).
class CompositeIndex : public MainIndex {
 public:
  /// `column_values[k]` holds the values of key part k for every row.
  CompositeIndex(std::vector<ColumnId> columns, std::vector<DataType> types,
                 const std::vector<std::vector<Value>>& column_values);

  const std::vector<ColumnId>& columns() const override { return columns_; }
  PositionList Lookup(const Row& key) const override;
  bool RangeLookup(const Value*, const Value*, PositionList*) const override {
    return false;
  }
  size_t MemoryUsage() const override;
  size_t size() const override { return tree_.size(); }

 private:
  std::string EncodeKey(const Row& key) const;

  std::vector<ColumnId> columns_;
  std::vector<DataType> types_;
  BPlusTree<std::string, RowId, 64> tree_;
};

/// Order-preserving byte encoding of a value: byte-wise comparison of the
/// encodings matches value comparison. Exposed for tests.
std::string EncodeOrderPreserving(const Value& value);

}  // namespace hytap

#endif  // HYTAP_STORAGE_INDEX_H_

#ifndef HYTAP_STORAGE_ZONE_MAP_H_
#define HYTAP_STORAGE_ZONE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hytap {

/// Rows covered by one zone-map entry. Matches the MRC scan morsel size
/// (`kScanMorselRows`, asserted in query/scan.cc) so a pruned zone skips a
/// whole morsel before any decode work is scheduled.
inline constexpr size_t kZoneMapRows = 1 << 16;

/// Master switch for all data skipping (MRC zone maps, SSCG page synopses,
/// candidate-restricted tiered scans). Initialized from the HYTAP_ZONE_MAPS
/// environment variable ("off" / "0" / "false" disable; default on).
/// Pruning is a pure function of immutable metadata, so toggling the knob
/// never changes query results — only how much data is touched.
bool ZoneMapsEnabled();

/// Runtime override used by tests and benchmarks to compare the pruned and
/// unpruned executions in one process.
void SetZoneMapsEnabled(bool enabled);

/// Per-zone min/max dictionary codes of a bit-packed MRC code vector.
///
/// Maintained incrementally on Append (and conservatively widened on Set),
/// so the bounds always cover every code written to the zone: a predicate
/// whose code interval misses [min, max] provably has no match in the zone
/// and the scan skips the decode entirely. 16 bytes per 64 Ki rows
/// (~0.003 % of a 32-bit column) — excluded from the column's MemoryUsage
/// so the cost model and DRAM budgets stay comparable to the seed engine.
class ZoneMap {
 public:
  /// Widens the zone containing `row` to cover `code`.
  void Update(size_t row, uint64_t code) {
    const size_t zone = row / kZoneMapRows;
    if (zone >= zones_.size()) {
      zones_.resize(zone + 1, Zone{~0ULL, 0});
    }
    Zone& z = zones_[zone];
    if (code < z.min_code) z.min_code = code;
    if (code > z.max_code) z.max_code = code;
  }

  /// True when no row in [row_begin, row_end) can hold a code in the
  /// half-open interval [code_lo, code_hi). Conservative: zones overlapping
  /// the range are tested whole, so false only means "may contain".
  bool Prunes(size_t row_begin, size_t row_end, uint64_t code_lo,
              uint64_t code_hi) const {
    if (row_begin >= row_end || code_lo >= code_hi) return true;
    const size_t zone_begin = row_begin / kZoneMapRows;
    const size_t zone_end = (row_end - 1) / kZoneMapRows + 1;
    for (size_t z = zone_begin; z < zone_end && z < zones_.size(); ++z) {
      if (zones_[z].max_code >= code_lo && zones_[z].min_code < code_hi) {
        return false;
      }
    }
    return true;
  }

  size_t zone_count() const { return zones_.size(); }
  uint64_t zone_min(size_t zone) const { return zones_[zone].min_code; }
  uint64_t zone_max(size_t zone) const { return zones_[zone].max_code; }
  size_t MemoryUsage() const { return zones_.size() * sizeof(Zone); }

 private:
  struct Zone {
    uint64_t min_code;
    uint64_t max_code;
  };
  std::vector<Zone> zones_;
};

}  // namespace hytap

#endif  // HYTAP_STORAGE_ZONE_MAP_H_

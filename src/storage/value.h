#ifndef HYTAP_STORAGE_VALUE_H_
#define HYTAP_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace hytap {

/// Column data types supported by the engine. Strings are fixed-width when
/// placed in a row-oriented SSCG (the schema declares the width).
enum class DataType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat = 2,
  kDouble = 3,
  kString = 4,
};

/// Returns a human-readable name ("int32", ...).
const char* DataTypeName(DataType type);

/// Fixed on-page width in bytes for a value of `type`; strings use
/// `string_width` (their declared maximum length).
size_t FixedWidth(DataType type, size_t string_width);

/// A dynamically typed cell value. Used at API boundaries (inserts, tuple
/// reconstruction, predicate literals); hot loops operate on decoded typed
/// vectors instead.
class Value {
 public:
  Value() : data_(int32_t{0}) {}
  explicit Value(int32_t v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(float v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  DataType type() const;

  int32_t AsInt32() const { return std::get<int32_t>(data_); }
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  float AsFloat() const { return std::get<float>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Three-way comparison; both values must have the same type.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  std::string ToString() const;

  /// Serializes into `dest` using exactly `width` bytes (strings are
  /// zero-padded / truncated to `width`). Used by the SSCG row layout.
  void SerializeFixed(uint8_t* dest, size_t width) const;

  /// Deserializes a value of `type` from `src` (`width` bytes).
  static Value DeserializeFixed(const uint8_t* src, DataType type,
                                size_t width);

 private:
  std::variant<int32_t, int64_t, float, double, std::string> data_;
};

/// A full or partial tuple.
using Row = std::vector<Value>;

}  // namespace hytap

#endif  // HYTAP_STORAGE_VALUE_H_

#ifndef HYTAP_STORAGE_COLUMN_H_
#define HYTAP_STORAGE_COLUMN_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/value.h"

namespace hytap {

/// Schema entry for one attribute.
struct ColumnDefinition {
  std::string name;
  DataType type = DataType::kInt32;
  /// Fixed on-page width for strings in an SSCG (bytes); ignored otherwise.
  size_t string_width = 16;

  size_t FixedWidthBytes() const { return FixedWidth(type, string_width); }
};

using Schema = std::vector<ColumnDefinition>;

/// Sorted list of qualifying row positions produced by scans and consumed by
/// probes / tuple reconstruction (paper §I-A: operators pass position lists).
using PositionList = std::vector<RowId>;

/// Type-erased read interface shared by DRAM-resident column formats
/// (dictionary-encoded MRC columns and delta value columns).
///
/// Range predicates are closed intervals with optional bounds: ScanBetween
/// with lo == hi is an equality scan; a null bound is unbounded.
class AbstractColumn {
 public:
  virtual ~AbstractColumn() = default;

  virtual DataType type() const = 0;
  virtual size_t size() const = 0;
  virtual size_t distinct_count() const = 0;

  /// Heap bytes used by the column (payload + encoding structures).
  virtual size_t MemoryUsage() const = 0;

  /// Materializes one cell.
  virtual Value GetValue(RowId row) const = 0;

  /// Appends rows in [0, size) with lo <= value <= hi to `out` (ascending).
  virtual void ScanBetween(const Value* lo, const Value* hi,
                           PositionList* out) const = 0;

  /// Morsel-sized unit of ScanBetween: appends rows in
  /// [row_begin, min(row_end, size)) with lo <= value <= hi to `out`
  /// (ascending). Must be safe to call concurrently on disjoint ranges;
  /// concatenating the outputs of consecutive ranges equals ScanBetween.
  /// Encodings with batch kernels override this (DictionaryColumn scans
  /// bit-packed codes word-at-a-time).
  virtual void ScanBetweenRange(const Value* lo, const Value* hi,
                                size_t row_begin, size_t row_end,
                                PositionList* out) const {
    row_end = std::min(row_end, size());
    for (size_t row = row_begin; row < row_end; ++row) {
      const Value v = GetValue(row);
      if (lo != nullptr && v < *lo) continue;
      if (hi != nullptr && *hi < v) continue;
      out->push_back(row);
    }
  }

  /// Filters `in` (ascending positions), keeping rows whose value lies in
  /// [lo, hi]; appends survivors to `out`. This is the "probe" path used
  /// after earlier predicates reduced the candidate set (paper §II-B).
  virtual void Probe(const Value* lo, const Value* hi, const PositionList& in,
                     PositionList* out) const = 0;

  /// Conservative pre-filter consulted by the scan driver before any decode
  /// work is scheduled: true when encoding metadata (dictionary domain, zone
  /// maps) proves no row in [row_begin, row_end) satisfies [lo, hi]. False
  /// means "may match" — never a correctness statement. Implementations must
  /// honor the HYTAP_ZONE_MAPS knob and return false while skipping is off,
  /// so pruning counters read zero on the baseline path.
  virtual bool CanSkipRange(const Value* lo, const Value* hi,
                            size_t row_begin, size_t row_end) const {
    (void)lo;
    (void)hi;
    (void)row_begin;
    (void)row_end;
    return false;
  }
};

}  // namespace hytap

#endif  // HYTAP_STORAGE_COLUMN_H_

#include "storage/value.h"

#include <cstring>

#include "common/assert.h"

namespace hytap {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat:
      return "float";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

size_t FixedWidth(DataType type, size_t string_width) {
  switch (type) {
    case DataType::kInt32:
      return 4;
    case DataType::kInt64:
      return 8;
    case DataType::kFloat:
      return 4;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return string_width;
  }
  HYTAP_UNREACHABLE("invalid DataType");
}

DataType Value::type() const {
  return static_cast<DataType>(data_.index());
}

int Value::Compare(const Value& other) const {
  HYTAP_ASSERT(type() == other.type(), "comparing values of different types");
  return std::visit(
      [&other](const auto& lhs) -> int {
        using T = std::decay_t<decltype(lhs)>;
        const T& rhs = std::get<T>(other.data_);
        if (lhs < rhs) return -1;
        if (rhs < lhs) return 1;
        return 0;
      },
      data_);
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kInt32:
      return std::to_string(AsInt32());
    case DataType::kInt64:
      return std::to_string(AsInt64());
    case DataType::kFloat:
      return std::to_string(AsFloat());
    case DataType::kDouble:
      return std::to_string(AsDouble());
    case DataType::kString:
      return AsString();
  }
  HYTAP_UNREACHABLE("invalid DataType");
}

void Value::SerializeFixed(uint8_t* dest, size_t width) const {
  switch (type()) {
    case DataType::kInt32: {
      int32_t v = AsInt32();
      HYTAP_ASSERT(width == sizeof(v), "width mismatch for int32");
      std::memcpy(dest, &v, sizeof(v));
      return;
    }
    case DataType::kInt64: {
      int64_t v = AsInt64();
      HYTAP_ASSERT(width == sizeof(v), "width mismatch for int64");
      std::memcpy(dest, &v, sizeof(v));
      return;
    }
    case DataType::kFloat: {
      float v = AsFloat();
      HYTAP_ASSERT(width == sizeof(v), "width mismatch for float");
      std::memcpy(dest, &v, sizeof(v));
      return;
    }
    case DataType::kDouble: {
      double v = AsDouble();
      HYTAP_ASSERT(width == sizeof(v), "width mismatch for double");
      std::memcpy(dest, &v, sizeof(v));
      return;
    }
    case DataType::kString: {
      const std::string& v = AsString();
      size_t n = v.size() < width ? v.size() : width;
      std::memcpy(dest, v.data(), n);
      if (n < width) std::memset(dest + n, 0, width - n);
      return;
    }
  }
  HYTAP_UNREACHABLE("invalid DataType");
}

Value Value::DeserializeFixed(const uint8_t* src, DataType type,
                              size_t width) {
  switch (type) {
    case DataType::kInt32: {
      int32_t v;
      std::memcpy(&v, src, sizeof(v));
      return Value(v);
    }
    case DataType::kInt64: {
      int64_t v;
      std::memcpy(&v, src, sizeof(v));
      return Value(v);
    }
    case DataType::kFloat: {
      float v;
      std::memcpy(&v, src, sizeof(v));
      return Value(v);
    }
    case DataType::kDouble: {
      double v;
      std::memcpy(&v, src, sizeof(v));
      return Value(v);
    }
    case DataType::kString: {
      // Stored zero-padded; trim trailing NULs.
      size_t len = width;
      while (len > 0 && src[len - 1] == 0) --len;
      return Value(std::string(reinterpret_cast<const char*>(src), len));
    }
  }
  HYTAP_UNREACHABLE("invalid DataType");
}

}  // namespace hytap

#ifndef HYTAP_STORAGE_BIT_PACKED_VECTOR_H_
#define HYTAP_STORAGE_BIT_PACKED_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hytap {

/// Bit-packed vector of unsigned integers with a fixed bit width.
///
/// This is the attribute ("value id") vector of a dictionary-encoded MRC: with
/// a dictionary of D entries each code occupies ceil(log2(D)) bits. Get() is
/// branch-free (at most two word reads); Append() is amortized O(1).
class BitPackedVector {
 public:
  /// `bits` must be in [1, 64].
  explicit BitPackedVector(uint32_t bits);

  /// Minimal bit width that can represent `max_value`.
  static uint32_t BitsFor(uint64_t max_value);

  void Append(uint64_t value);
  uint64_t Get(size_t index) const;
  void Set(size_t index, uint64_t value);

  size_t size() const { return size_; }
  uint32_t bits() const { return bits_; }

  /// Heap bytes used by the packed payload.
  size_t MemoryUsage() const { return words_.capacity() * sizeof(uint64_t); }

  void Reserve(size_t count);

 private:
  uint32_t bits_;
  uint64_t mask_;
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace hytap

#endif  // HYTAP_STORAGE_BIT_PACKED_VECTOR_H_

#ifndef HYTAP_STORAGE_BIT_PACKED_VECTOR_H_
#define HYTAP_STORAGE_BIT_PACKED_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "storage/column.h"
#include "storage/zone_map.h"

namespace hytap {

/// Bit-packed vector of unsigned integers with a fixed bit width.
///
/// This is the attribute ("value id") vector of a dictionary-encoded MRC: with
/// a dictionary of D entries each code occupies ceil(log2(D)) bits. Get() is
/// branch-free (at most two word reads); Append() is amortized O(1).
///
/// Scan-heavy callers should prefer the batch kernels (ScanEqual, ScanRange,
/// DecodeRange): they stream 64-bit words with a running bit cursor instead
/// of re-deriving word/offset per row, and they are safe to call concurrently
/// from multiple threads on arbitrary (even overlapping) row ranges.
class BitPackedVector {
 public:
  /// `bits` must be in [1, 64].
  explicit BitPackedVector(uint32_t bits);

  /// Minimal bit width that can represent `max_value`.
  static uint32_t BitsFor(uint64_t max_value);

  void Append(uint64_t value);

  uint64_t Get(size_t index) const {
    HYTAP_ASSERT(index < size_, "BitPackedVector index out of range");
    const size_t bit_pos = index * bits_;
    const size_t word = bit_pos / 64;
    const uint32_t offset = bit_pos % 64;
    uint64_t result = words_[word] >> offset;
    if (offset + bits_ > 64) {
      result |= words_[word + 1] << (64 - offset);
    }
    return result & mask_;
  }

  void Set(size_t index, uint64_t value);

  /// Appends every row in [row_begin, row_end) whose code equals `target`
  /// to `out` (ascending).
  void ScanEqual(uint64_t target, size_t row_begin, size_t row_end,
                 PositionList* out) const;

  /// Appends every row in [row_begin, row_end) whose code lies in the
  /// half-open interval [code_lo, code_hi) to `out` (ascending).
  void ScanRange(uint64_t code_lo, uint64_t code_hi, size_t row_begin,
                 size_t row_end, PositionList* out) const;

  /// Unpacks the codes of rows [row_begin, row_end) into out[0 ..
  /// row_end - row_begin).
  void DecodeRange(size_t row_begin, size_t row_end, uint64_t* out) const;

  size_t size() const { return size_; }
  uint32_t bits() const { return bits_; }

  /// Heap bytes used by the packed payload (occupied words, not vector
  /// capacity: the capacity figure would inflate the scan cost model and
  /// the DRAM-budget accounting after Append-heavy builds). Zone-map
  /// metadata (~0.003 %) is excluded and reported separately.
  size_t MemoryUsage() const { return words_.size() * sizeof(uint64_t); }

  void Reserve(size_t count);

  /// Per-`kZoneMapRows`-block min/max codes, maintained on Append and
  /// conservatively widened on Set. Scans consult it (when
  /// `ZoneMapsEnabled()`) to skip whole blocks whose code bounds miss the
  /// predicate's code interval.
  const ZoneMap& zone_map() const { return zone_map_; }

 private:
  uint32_t bits_;
  uint64_t mask_;
  size_t size_ = 0;
  std::vector<uint64_t> words_;
  ZoneMap zone_map_;
};

}  // namespace hytap

#endif  // HYTAP_STORAGE_BIT_PACKED_VECTOR_H_

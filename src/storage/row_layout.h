#ifndef HYTAP_STORAGE_ROW_LAYOUT_H_
#define HYTAP_STORAGE_ROW_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "storage/column.h"

namespace hytap {

/// Fixed-width row layout of a Secondary Storage Column Group (SSCG).
///
/// The member attributes of an SSCG are stored adjacently and uncompressed
/// (paper §II-A): trading space for perfect point-access locality, so a
/// full-width tuple reconstruction touches a single 4 KB page. Rows never
/// span pages.
class RowLayout {
 public:
  /// Builds the layout for the subset `member_columns` (table column ids) of
  /// `schema`. The combined row width must fit into one page.
  RowLayout(const Schema& schema, std::vector<ColumnId> member_columns);

  size_t row_width() const { return row_width_; }
  size_t rows_per_page() const { return rows_per_page_; }
  const std::vector<ColumnId>& member_columns() const {
    return member_columns_;
  }
  size_t member_count() const { return member_columns_.size(); }

  /// Returns the slot index of table column `column`, or -1 if the column is
  /// not a member of this group.
  int SlotOf(ColumnId column) const;

  /// Data type stored in member slot `slot`.
  DataType slot_type(size_t slot) const { return slots_[slot].type; }

  /// Page that holds `row`, and the byte offset of the row inside the page.
  PageId PageOf(RowId row) const { return row / rows_per_page_; }
  size_t OffsetInPage(RowId row) const {
    return (row % rows_per_page_) * row_width_;
  }

  /// Number of pages needed for `rows` rows.
  size_t PageCountFor(size_t rows) const {
    return rows == 0 ? 0 : (rows + rows_per_page_ - 1) / rows_per_page_;
  }

  /// Serializes `values` (one per member slot, in member order) at `dest`.
  void SerializeRow(const Row& values, uint8_t* dest) const;

  /// Deserializes the value of member slot `slot` from a row at `src`.
  Value DeserializeSlot(const uint8_t* src, size_t slot) const;

  /// Deserializes the full row (member order).
  Row DeserializeRow(const uint8_t* src) const;

 private:
  struct Slot {
    size_t offset;
    size_t width;
    DataType type;
  };

  std::vector<ColumnId> member_columns_;
  std::vector<Slot> slots_;
  std::vector<int> slot_of_;  // table column id -> slot or -1
  size_t row_width_;
  size_t rows_per_page_;
};

}  // namespace hytap

#endif  // HYTAP_STORAGE_ROW_LAYOUT_H_

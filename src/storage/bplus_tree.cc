#include "storage/bplus_tree.h"

// Header-only template; this translation unit anchors the header so the
// library target compiles it standalone.

namespace hytap {
template class BPlusTree<int64_t, uint64_t>;
}  // namespace hytap

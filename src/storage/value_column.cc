#include "storage/value_column.h"

#include <algorithm>

#include "common/assert.h"

namespace hytap {

namespace {

template <typename T>
T Unbox(const Value& v);

template <>
int32_t Unbox<int32_t>(const Value& v) { return v.AsInt32(); }
template <>
int64_t Unbox<int64_t>(const Value& v) { return v.AsInt64(); }
template <>
float Unbox<float>(const Value& v) { return v.AsFloat(); }
template <>
double Unbox<double>(const Value& v) { return v.AsDouble(); }
template <>
std::string Unbox<std::string>(const Value& v) { return v.AsString(); }

template <typename T>
constexpr DataType TypeOf() {
  if constexpr (std::is_same_v<T, int32_t>) return DataType::kInt32;
  if constexpr (std::is_same_v<T, int64_t>) return DataType::kInt64;
  if constexpr (std::is_same_v<T, float>) return DataType::kFloat;
  if constexpr (std::is_same_v<T, double>) return DataType::kDouble;
  if constexpr (std::is_same_v<T, std::string>) return DataType::kString;
}

}  // namespace

template <typename T>
void ValueColumn<T>::Append(const T& value) {
  const RowId row = codes_.size();
  codes_.push_back(dictionary_.GetOrAdd(value));
  index_.Insert(value, row);
}

template <typename T>
DataType ValueColumn<T>::type() const {
  return TypeOf<T>();
}

template <typename T>
size_t ValueColumn<T>::MemoryUsage() const {
  // B+-tree overhead approximated by per-entry key+value+pointer costs.
  return dictionary_.MemoryUsage() + codes_.capacity() * sizeof(ValueId) +
         index_.size() * (sizeof(T) + sizeof(RowId) + 2 * sizeof(void*));
}

template <typename T>
Value ValueColumn<T>::GetValue(RowId row) const {
  return Value(Get(row));
}

template <typename T>
PositionList ValueColumn<T>::IndexLookup(const T& value) const {
  PositionList rows = index_.Lookup(value);
  std::sort(rows.begin(), rows.end());
  return rows;
}

template <typename T>
void ValueColumn<T>::ScanBetween(const Value* lo, const Value* hi,
                                 PositionList* out) const {
  if (lo != nullptr && hi != nullptr && !(Unbox<T>(*lo) <= Unbox<T>(*hi))) {
    return;
  }
  if (lo != nullptr && hi != nullptr && Unbox<T>(*lo) == Unbox<T>(*hi)) {
    // Equality: use the B+-tree index.
    PositionList rows = IndexLookup(Unbox<T>(*lo));
    out->insert(out->end(), rows.begin(), rows.end());
    return;
  }
  // Range / open-ended scan: the delta partition is small by design, a
  // linear pass is adequate (and avoids sentinel keys in the index).
  const T* lo_t = nullptr;
  const T* hi_t = nullptr;
  T lo_storage{}, hi_storage{};
  if (lo != nullptr) {
    lo_storage = Unbox<T>(*lo);
    lo_t = &lo_storage;
  }
  if (hi != nullptr) {
    hi_storage = Unbox<T>(*hi);
    hi_t = &hi_storage;
  }
  for (RowId row = 0; row < codes_.size(); ++row) {
    const T& v = dictionary_.ValueFor(codes_[row]);
    if (lo_t != nullptr && v < *lo_t) continue;
    if (hi_t != nullptr && *hi_t < v) continue;
    out->push_back(row);
  }
}

template <typename T>
void ValueColumn<T>::Probe(const Value* lo, const Value* hi,
                           const PositionList& in, PositionList* out) const {
  const T* lo_t = nullptr;
  const T* hi_t = nullptr;
  T lo_storage{}, hi_storage{};
  if (lo != nullptr) {
    lo_storage = Unbox<T>(*lo);
    lo_t = &lo_storage;
  }
  if (hi != nullptr) {
    hi_storage = Unbox<T>(*hi);
    hi_t = &hi_storage;
  }
  for (RowId row : in) {
    const T& v = Get(row);
    if (lo_t != nullptr && v < *lo_t) continue;
    if (hi_t != nullptr && *hi_t < v) continue;
    out->push_back(row);
  }
}

std::unique_ptr<AbstractColumn> MakeValueColumn(const ColumnDefinition& def) {
  switch (def.type) {
    case DataType::kInt32:
      return std::make_unique<ValueColumn<int32_t>>();
    case DataType::kInt64:
      return std::make_unique<ValueColumn<int64_t>>();
    case DataType::kFloat:
      return std::make_unique<ValueColumn<float>>();
    case DataType::kDouble:
      return std::make_unique<ValueColumn<double>>();
    case DataType::kString:
      return std::make_unique<ValueColumn<std::string>>();
  }
  HYTAP_UNREACHABLE("invalid DataType");
}

void AppendValue(AbstractColumn* column, const Value& value) {
  HYTAP_ASSERT(column->type() == value.type(),
               "value type does not match column type");
  switch (value.type()) {
    case DataType::kInt32:
      static_cast<ValueColumn<int32_t>*>(column)->Append(value.AsInt32());
      return;
    case DataType::kInt64:
      static_cast<ValueColumn<int64_t>*>(column)->Append(value.AsInt64());
      return;
    case DataType::kFloat:
      static_cast<ValueColumn<float>*>(column)->Append(value.AsFloat());
      return;
    case DataType::kDouble:
      static_cast<ValueColumn<double>*>(column)->Append(value.AsDouble());
      return;
    case DataType::kString:
      static_cast<ValueColumn<std::string>*>(column)->Append(value.AsString());
      return;
  }
  HYTAP_UNREACHABLE("invalid DataType");
}

template class ValueColumn<int32_t>;
template class ValueColumn<int64_t>;
template class ValueColumn<float>;
template class ValueColumn<double>;
template class ValueColumn<std::string>;

}  // namespace hytap

#ifndef HYTAP_STORAGE_DICTIONARY_H_
#define HYTAP_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace hytap {

/// Order-preserving dictionary for the read-optimized main partition.
///
/// Values are stored sorted and deduplicated, so value-id order equals value
/// order: range predicates translate to code-range predicates and scans can
/// run on compressed data with late materialization (paper §II-A).
template <typename T>
class OrderPreservingDictionary {
 public:
  OrderPreservingDictionary() = default;

  /// Builds from arbitrary (unsorted, possibly duplicated) values.
  static OrderPreservingDictionary Build(const std::vector<T>& values);

  /// Exact-match code; nullopt if the value is not in the dictionary.
  std::optional<ValueId> CodeFor(const T& value) const;

  /// First code whose value is >= `value` (may be size() = past-the-end).
  ValueId LowerBoundCode(const T& value) const;

  /// First code whose value is > `value`.
  ValueId UpperBoundCode(const T& value) const;

  const T& ValueFor(ValueId code) const;

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Heap bytes used by the dictionary payload.
  size_t MemoryUsage() const;

 private:
  std::vector<T> values_;  // sorted, unique
};

/// Unsorted dictionary for the write-optimized delta partition: codes are
/// assigned in insertion order; a hash map gives O(1) value lookup
/// (the B+-tree index on top gives ordered access, paper §II).
template <typename T>
class UnsortedDictionary {
 public:
  UnsortedDictionary() = default;

  /// Returns the existing code for `value` or assigns the next one.
  ValueId GetOrAdd(const T& value);

  std::optional<ValueId> CodeFor(const T& value) const;
  const T& ValueFor(ValueId code) const;

  size_t size() const { return values_.size(); }

  size_t MemoryUsage() const;

 private:
  std::vector<T> values_;                      // code -> value
  std::unordered_map<T, ValueId> value_ids_;   // value -> code
};

extern template class OrderPreservingDictionary<int32_t>;
extern template class OrderPreservingDictionary<int64_t>;
extern template class OrderPreservingDictionary<float>;
extern template class OrderPreservingDictionary<double>;
extern template class OrderPreservingDictionary<std::string>;

extern template class UnsortedDictionary<int32_t>;
extern template class UnsortedDictionary<int64_t>;
extern template class UnsortedDictionary<float>;
extern template class UnsortedDictionary<double>;
extern template class UnsortedDictionary<std::string>;

}  // namespace hytap

#endif  // HYTAP_STORAGE_DICTIONARY_H_

#ifndef HYTAP_STORAGE_BPLUS_TREE_H_
#define HYTAP_STORAGE_BPLUS_TREE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.h"

namespace hytap {

/// In-memory B+-tree used as the delta partition's secondary index
/// (paper §II: "an unsorted dictionary with an additional B+-tree for fast
/// value retrievals"). Multimap semantics: duplicate keys allowed.
///
/// Leaves are linked for range scans. Fan-out is chosen so nodes are roughly
/// cache-line friendly for integer keys.
template <typename K, typename V, size_t kFanout = 32>
class BPlusTree {
  static_assert(kFanout >= 4, "fan-out must be at least 4");

 public:
  BPlusTree() = default;

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  void Insert(const K& key, const V& value) {
    if (!root_) {
      auto leaf = std::make_unique<Node>(/*leaf=*/true);
      leaf->keys.push_back(key);
      leaf->values.push_back(value);
      root_ = std::move(leaf);
      ++size_;
      return;
    }
    SplitResult split = InsertRecursive(root_.get(), key, value);
    if (split.right) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(split.separator);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(split.right));
      root_ = std::move(new_root);
    }
    ++size_;
  }

  /// All values with exactly `key`, in insertion order per leaf.
  std::vector<V> Lookup(const K& key) const {
    std::vector<V> out;
    RangeLookup(key, key, &out);
    return out;
  }

  /// Appends all values with key in [lo, hi] to `out`.
  void RangeLookup(const K& lo, const K& hi, std::vector<V>* out) const {
    if (!root_ || hi < lo) return;
    const Node* leaf = FindLeaf(lo);
    while (leaf != nullptr) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        if (leaf->keys[i] < lo) continue;
        if (hi < leaf->keys[i]) return;
        out->push_back(leaf->values[i]);
      }
      leaf = leaf->next;
    }
  }

  bool Contains(const K& key) const {
    const Node* leaf = FindLeaf(key);
    while (leaf != nullptr) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        if (key < leaf->keys[i]) return false;
        if (!(leaf->keys[i] < key)) return true;
      }
      leaf = leaf->next;
    }
    return false;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (0 for empty, 1 for a single leaf).
  size_t Height() const {
    size_t h = 0;
    const Node* node = root_.get();
    while (node != nullptr) {
      ++h;
      node = node->leaf ? nullptr : node->children.front().get();
    }
    return h;
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<K> keys;
    // Internal nodes: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
    // Leaves only:
    std::vector<V> values;
    Node* next = nullptr;
  };

  struct SplitResult {
    K separator{};
    std::unique_ptr<Node> right;  // null if no split happened
  };

  static size_t LowerBoundIndex(const std::vector<K>& keys, const K& key) {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  const Node* FindLeaf(const K& key) const {
    const Node* node = root_.get();
    if (node == nullptr) return nullptr;
    while (!node->leaf) {
      size_t idx = LowerBoundIndex(node->keys, key);
      // Descend left of the first separator >= key so that duplicates that
      // equal the separator (stored in the left subtree) are not skipped.
      node = node->children[idx].get();
    }
    return node;
  }

  SplitResult InsertRecursive(Node* node, const K& key, const V& value) {
    if (node->leaf) {
      size_t idx = LowerBoundIndex(node->keys, key);
      node->keys.insert(node->keys.begin() + idx, key);
      node->values.insert(node->values.begin() + idx, value);
      if (node->keys.size() <= kFanout) return {};
      return SplitLeaf(node);
    }
    size_t idx = LowerBoundIndex(node->keys, key);
    SplitResult child_split =
        InsertRecursive(node->children[idx].get(), key, value);
    if (child_split.right) {
      node->keys.insert(node->keys.begin() + idx, child_split.separator);
      node->children.insert(node->children.begin() + idx + 1,
                            std::move(child_split.right));
      if (node->keys.size() > kFanout) return SplitInternal(node);
    }
    return {};
  }

  SplitResult SplitLeaf(Node* node) {
    auto right = std::make_unique<Node>(/*leaf=*/true);
    const size_t mid = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->values.assign(node->values.begin() + mid, node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    node->next = right.get();
    SplitResult result;
    result.separator = right->keys.front();
    result.right = std::move(right);
    return result;
  }

  SplitResult SplitInternal(Node* node) {
    auto right = std::make_unique<Node>(/*leaf=*/false);
    const size_t mid = node->keys.size() / 2;
    SplitResult result;
    result.separator = node->keys[mid];
    right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
    for (size_t i = mid + 1; i < node->children.size(); ++i) {
      right->children.push_back(std::move(node->children[i]));
    }
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    result.right = std::move(right);
    return result;
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace hytap

#endif  // HYTAP_STORAGE_BPLUS_TREE_H_

#include "storage/index.h"

#include <algorithm>
#include <cstring>

#include "common/assert.h"

namespace hytap {

namespace {

/// Encodes an unsigned 64-bit integer big-endian (lexicographic = numeric).
void AppendBigEndian(uint64_t v, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

/// Maps a signed integer to an order-preserving unsigned value.
uint64_t FlipSign(int64_t v) {
  return static_cast<uint64_t>(v) ^ (1ULL << 63);
}

/// Maps an IEEE double to an order-preserving unsigned value.
uint64_t EncodeDoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  // Positive numbers: set the sign bit; negatives: flip all bits.
  return (bits & (1ULL << 63)) ? ~bits : (bits | (1ULL << 63));
}

}  // namespace

std::string EncodeOrderPreserving(const Value& value) {
  std::string out;
  switch (value.type()) {
    case DataType::kInt32:
      AppendBigEndian(FlipSign(value.AsInt32()), &out);
      return out;
    case DataType::kInt64:
      AppendBigEndian(FlipSign(value.AsInt64()), &out);
      return out;
    case DataType::kFloat:
      AppendBigEndian(EncodeDoubleBits(double(value.AsFloat())), &out);
      return out;
    case DataType::kDouble:
      AppendBigEndian(EncodeDoubleBits(value.AsDouble()), &out);
      return out;
    case DataType::kString: {
      // Escape NUL so concatenated composite keys stay order-preserving and
      // unambiguous: 0x00 -> 0x00 0xff, terminator 0x00 0x00.
      for (char c : value.AsString()) {
        out.push_back(c);
        if (c == '\0') out.push_back(static_cast<char>(0xff));
      }
      out.push_back('\0');
      out.push_back('\0');
      return out;
    }
  }
  HYTAP_UNREACHABLE("invalid DataType");
}

SingleColumnIndex::SingleColumnIndex(ColumnId column, DataType type,
                                     const std::vector<Value>& values)
    : columns_{column}, type_(type) {
  for (RowId row = 0; row < values.size(); ++row) {
    HYTAP_ASSERT(values[row].type() == type, "index value type mismatch");
    tree_.Insert(EncodeOrderPreserving(values[row]), row);
  }
}

PositionList SingleColumnIndex::Lookup(const Row& key) const {
  HYTAP_ASSERT(key.size() == 1, "single-column index expects 1 key part");
  PositionList rows = tree_.Lookup(EncodeOrderPreserving(key[0]));
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool SingleColumnIndex::RangeLookup(const Value* lo, const Value* hi,
                                    PositionList* out) const {
  // Unbounded sides use the extreme encodable keys.
  std::string lo_key;
  std::string hi_key(9, static_cast<char>(0xff));
  if (lo != nullptr) lo_key = EncodeOrderPreserving(*lo);
  if (hi != nullptr) hi_key = EncodeOrderPreserving(*hi);
  PositionList rows;
  tree_.RangeLookup(lo_key, hi_key, &rows);
  std::sort(rows.begin(), rows.end());
  out->insert(out->end(), rows.begin(), rows.end());
  return true;
}

size_t SingleColumnIndex::MemoryUsage() const {
  // Key bytes + row id + node pointers, approximated per entry.
  const size_t key_bytes = type_ == DataType::kString ? 24 : 8;
  return tree_.size() * (key_bytes + sizeof(RowId) + 2 * sizeof(void*));
}

CompositeIndex::CompositeIndex(
    std::vector<ColumnId> columns, std::vector<DataType> types,
    const std::vector<std::vector<Value>>& column_values)
    : columns_(std::move(columns)), types_(std::move(types)) {
  HYTAP_ASSERT(columns_.size() == types_.size(), "key arity mismatch");
  HYTAP_ASSERT(column_values.size() == columns_.size(),
               "column values arity mismatch");
  HYTAP_ASSERT(!column_values.empty(), "composite index needs columns");
  const size_t rows = column_values[0].size();
  for (const auto& values : column_values) {
    HYTAP_ASSERT(values.size() == rows, "ragged column values");
  }
  Row key(columns_.size());
  for (RowId row = 0; row < rows; ++row) {
    for (size_t k = 0; k < columns_.size(); ++k) {
      key[k] = column_values[k][row];
    }
    tree_.Insert(EncodeKey(key), row);
  }
}

std::string CompositeIndex::EncodeKey(const Row& key) const {
  HYTAP_ASSERT(key.size() == columns_.size(),
               "composite key arity mismatch");
  std::string encoded;
  for (size_t k = 0; k < key.size(); ++k) {
    HYTAP_ASSERT(key[k].type() == types_[k], "key part type mismatch");
    encoded += EncodeOrderPreserving(key[k]);
  }
  return encoded;
}

PositionList CompositeIndex::Lookup(const Row& key) const {
  PositionList rows = tree_.Lookup(EncodeKey(key));
  std::sort(rows.begin(), rows.end());
  return rows;
}

size_t CompositeIndex::MemoryUsage() const {
  size_t key_bytes = 0;
  for (DataType type : types_) {
    key_bytes += type == DataType::kString ? 24 : 8;
  }
  return tree_.size() * (key_bytes + sizeof(RowId) + 2 * sizeof(void*));
}

}  // namespace hytap

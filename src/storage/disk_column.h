#ifndef HYTAP_STORAGE_DISK_COLUMN_H_
#define HYTAP_STORAGE_DISK_COLUMN_H_

#include <cstdint>
#include <vector>

#include "storage/column.h"
#include "storage/sscg.h"  // IoStats
#include "tiering/buffer_manager.h"
#include "tiering/secondary_store.h"

namespace hytap {

/// A dictionary-encoded *column-oriented* format on secondary storage — the
/// strawman the SSCG design is motivated against (paper §II-A: "for a table
/// with 100 attributes, a full tuple reconstruction from a disk-resident and
/// dictionary-encoded column store reads at least 800 KB from disk (100
/// accesses to both value vector and dictionary with 4 KB reads each)").
///
/// Layout: a run of 4 KB pages holding fixed 32-bit codes (value vector)
/// followed by a run of pages holding fixed-width dictionary entries sorted
/// by value. A point access costs two page reads (code page + dictionary
/// page); a scan streams the code pages after resolving the code range from
/// the dictionary (binary search = O(log D) page reads).
class DiskColumn {
 public:
  /// Builds from boxed values of type `def.type` and writes pages to
  /// `store`.
  DiskColumn(const ColumnDefinition& def, const std::vector<Value>& values,
             SecondaryStore* store);

  size_t row_count() const { return row_count_; }
  size_t distinct_count() const { return dictionary_size_; }
  size_t page_count() const {
    return code_pages_.size() + dictionary_pages_.size();
  }
  size_t StorageBytes() const { return page_count() * kPageSize; }

  /// Materializes one cell: one code-page read + one dictionary-page read
  /// (the two 4 KB accesses of the paper's computation). Returns the
  /// page-read error (kUnavailable / kDataLoss) on failure.
  StatusOr<Value> GetValue(RowId row, BufferManager* buffers,
                           uint32_t queue_depth, IoStats* io) const;

  /// Sequential scan with a [lo, hi] closed-interval predicate: binary
  /// search over dictionary pages to resolve the code range, then a
  /// sequential pass over the code pages. On a page error `out` is left
  /// untouched.
  Status ScanBetween(const Value* lo, const Value* hi, BufferManager* buffers,
                     uint32_t threads, PositionList* out, IoStats* io) const;

 private:
  StatusOr<uint32_t> CodeAt(RowId row, BufferManager* buffers,
                            AccessPattern pattern, uint32_t queue_depth,
                            IoStats* io) const;
  StatusOr<Value> DictionaryAt(uint32_t code, BufferManager* buffers,
                               uint32_t queue_depth, IoStats* io) const;
  /// First code whose value is >= / > `v` (page-at-a-time binary search).
  StatusOr<uint32_t> LowerBoundCode(const Value& v, BufferManager* buffers,
                                    IoStats* io, bool upper) const;

  DataType type_;
  size_t value_width_;
  size_t codes_per_page_;
  size_t entries_per_page_;
  size_t row_count_;
  size_t dictionary_size_;
  std::vector<PageId> code_pages_;
  std::vector<PageId> dictionary_pages_;
};

}  // namespace hytap

#endif  // HYTAP_STORAGE_DISK_COLUMN_H_

#ifndef HYTAP_STORAGE_SLOT_SYNOPSIS_H_
#define HYTAP_STORAGE_SLOT_SYNOPSIS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/row_layout.h"
#include "storage/value.h"

namespace hytap {

/// Per-page min/max bounds for every numeric member slot of an SSCG.
///
/// Built once from the intended row contents when the group is written
/// (RebuildMain / merge), never from the stored bytes: the synopsis keeps
/// describing the data that was *meant* to be on a page even if the media
/// later corrupts it, so a pruned page is provably irrelevant to the query
/// and skipping it can only reproduce the fault-free answer.
///
/// Bounds are widened to the slot's native domain (int32/int64 -> int64,
/// float/double -> double) and stored as 16 bytes per (page, slot). String
/// slots carry no synopsis (their scans never prune) — this caps the
/// metadata at 16 B x pages x numeric-slots, a few MB even for the widest
/// benchmark groups.
class SlotSynopsis {
 public:
  SlotSynopsis() = default;

  /// Builds bounds from the rows about to be serialized (member order, as
  /// passed to the Sscg constructor).
  SlotSynopsis(const RowLayout& layout, const std::vector<Row>& rows);

  /// True if `slot` carries bounds (numeric, non-empty group).
  bool has_slot(size_t slot) const {
    return slot < mins_.size() && !mins_[slot].empty();
  }

  /// True when no row on `page` can satisfy the closed interval [lo, hi]
  /// (null = unbounded) on member slot `slot`. Conservative: false for
  /// string slots, unknown pages, or overlapping bounds.
  bool Prunes(size_t page, size_t slot, const Value* lo,
              const Value* hi) const;

  size_t MemoryUsage() const;

 private:
  union Bound {
    int64_t i;
    double d;
  };

  std::vector<DataType> types_;              // per slot
  std::vector<std::vector<Bound>> mins_;     // [slot][page]; empty = no bounds
  std::vector<std::vector<Bound>> maxs_;
};

}  // namespace hytap

#endif  // HYTAP_STORAGE_SLOT_SYNOPSIS_H_

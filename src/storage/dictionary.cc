#include "storage/dictionary.h"

#include <algorithm>

#include "common/assert.h"

namespace hytap {

namespace {

template <typename T>
size_t PayloadBytes(const std::vector<T>& values) {
  if constexpr (std::is_same_v<T, std::string>) {
    size_t total = values.capacity() * sizeof(std::string);
    for (const auto& s : values) total += s.capacity();
    return total;
  } else {
    return values.capacity() * sizeof(T);
  }
}

}  // namespace

template <typename T>
OrderPreservingDictionary<T> OrderPreservingDictionary<T>::Build(
    const std::vector<T>& values) {
  OrderPreservingDictionary dict;
  dict.values_ = values;
  std::sort(dict.values_.begin(), dict.values_.end());
  dict.values_.erase(std::unique(dict.values_.begin(), dict.values_.end()),
                     dict.values_.end());
  dict.values_.shrink_to_fit();
  return dict;
}

template <typename T>
std::optional<ValueId> OrderPreservingDictionary<T>::CodeFor(
    const T& value) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), value);
  if (it == values_.end() || *it != value) return std::nullopt;
  return static_cast<ValueId>(it - values_.begin());
}

template <typename T>
ValueId OrderPreservingDictionary<T>::LowerBoundCode(const T& value) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), value);
  return static_cast<ValueId>(it - values_.begin());
}

template <typename T>
ValueId OrderPreservingDictionary<T>::UpperBoundCode(const T& value) const {
  auto it = std::upper_bound(values_.begin(), values_.end(), value);
  return static_cast<ValueId>(it - values_.begin());
}

template <typename T>
const T& OrderPreservingDictionary<T>::ValueFor(ValueId code) const {
  HYTAP_ASSERT(code < values_.size(), "dictionary code out of range");
  return values_[code];
}

template <typename T>
size_t OrderPreservingDictionary<T>::MemoryUsage() const {
  return PayloadBytes(values_);
}

template <typename T>
ValueId UnsortedDictionary<T>::GetOrAdd(const T& value) {
  auto [it, inserted] =
      value_ids_.try_emplace(value, static_cast<ValueId>(values_.size()));
  if (inserted) values_.push_back(value);
  return it->second;
}

template <typename T>
std::optional<ValueId> UnsortedDictionary<T>::CodeFor(const T& value) const {
  auto it = value_ids_.find(value);
  if (it == value_ids_.end()) return std::nullopt;
  return it->second;
}

template <typename T>
const T& UnsortedDictionary<T>::ValueFor(ValueId code) const {
  HYTAP_ASSERT(code < values_.size(), "dictionary code out of range");
  return values_[code];
}

template <typename T>
size_t UnsortedDictionary<T>::MemoryUsage() const {
  // Hash-map overhead approximated by bucket pointers + nodes.
  return PayloadBytes(values_) +
         value_ids_.bucket_count() * sizeof(void*) +
         value_ids_.size() * (sizeof(T) + sizeof(ValueId) + 2 * sizeof(void*));
}

template class OrderPreservingDictionary<int32_t>;
template class OrderPreservingDictionary<int64_t>;
template class OrderPreservingDictionary<float>;
template class OrderPreservingDictionary<double>;
template class OrderPreservingDictionary<std::string>;

template class UnsortedDictionary<int32_t>;
template class UnsortedDictionary<int64_t>;
template class UnsortedDictionary<float>;
template class UnsortedDictionary<double>;
template class UnsortedDictionary<std::string>;

}  // namespace hytap

#ifndef HYTAP_STORAGE_VALUE_COLUMN_H_
#define HYTAP_STORAGE_VALUE_COLUMN_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/bplus_tree.h"
#include "storage/column.h"
#include "storage/dictionary.h"

namespace hytap {

/// A delta-partition column (paper §II): write-optimized, DRAM-resident,
/// append-only. Values are encoded with an unsorted dictionary (codes in
/// insertion order) plus a B+-tree from value to row positions for fast
/// point lookups.
template <typename T>
class ValueColumn : public AbstractColumn {
 public:
  ValueColumn() = default;

  /// Appends one value; rows are dense and append-only.
  void Append(const T& value);

  DataType type() const override;
  size_t size() const override { return codes_.size(); }
  size_t distinct_count() const override { return dictionary_.size(); }
  size_t MemoryUsage() const override;

  Value GetValue(RowId row) const override;
  void ScanBetween(const Value* lo, const Value* hi,
                   PositionList* out) const override;
  void Probe(const Value* lo, const Value* hi, const PositionList& in,
             PositionList* out) const override;

  /// Typed accessor.
  const T& Get(RowId row) const {
    HYTAP_ASSERT(row < codes_.size(), "row out of range");
    return dictionary_.ValueFor(codes_[row]);
  }

  /// Point lookup through the B+-tree index (sorted ascending).
  PositionList IndexLookup(const T& value) const;

  const UnsortedDictionary<T>& dictionary() const { return dictionary_; }

 private:
  UnsortedDictionary<T> dictionary_;
  std::vector<ValueId> codes_;
  BPlusTree<T, RowId> index_;
};

/// Creates an empty delta column matching `def.type`.
std::unique_ptr<AbstractColumn> MakeValueColumn(const ColumnDefinition& def);

/// Appends a boxed value to a type-erased delta column created by
/// MakeValueColumn. The value type must match the column type.
void AppendValue(AbstractColumn* column, const Value& value);

extern template class ValueColumn<int32_t>;
extern template class ValueColumn<int64_t>;
extern template class ValueColumn<float>;
extern template class ValueColumn<double>;
extern template class ValueColumn<std::string>;

}  // namespace hytap

#endif  // HYTAP_STORAGE_VALUE_COLUMN_H_

#include "storage/table.h"

#include <algorithm>

#include "common/assert.h"
#include "storage/dictionary_column.h"

namespace hytap {

Table::Table(std::string name, Schema schema, TransactionManager* txns,
             SecondaryStore* store, BufferManager* buffers)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      txns_(txns),
      store_(store),
      buffers_(buffers) {
  HYTAP_ASSERT(!schema_.empty(), "table needs at least one column");
  HYTAP_ASSERT(txns_ != nullptr, "table needs a transaction manager");
  mrc_columns_.resize(schema_.size());
  placement_.assign(schema_.size(), true);
  column_dram_bytes_.assign(schema_.size(), 0);
  delta_columns_.reserve(schema_.size());
  for (const auto& def : schema_) {
    delta_columns_.push_back(MakeValueColumn(def));
  }
}

void Table::BulkLoad(const std::vector<Row>& rows) {
  HYTAP_ASSERT(!bulk_loaded_, "BulkLoad may only run once");
  HYTAP_ASSERT(delta_row_count() == 0, "BulkLoad must precede inserts");
  bulk_loaded_ = true;
  std::vector<std::vector<Value>> columns(schema_.size());
  for (auto& column : columns) column.reserve(rows.size());
  for (const Row& row : rows) {
    HYTAP_ASSERT(row.size() == schema_.size(), "row arity mismatch");
    for (size_t c = 0; c < schema_.size(); ++c) columns[c].push_back(row[c]);
  }
  main_row_count_ = rows.size();
  // All columns start DRAM-resident, so no SSCG is written and the rebuild
  // cannot fail.
  const Status status = RebuildMain(columns, placement_, nullptr);
  HYTAP_ASSERT(status.ok(), "all-DRAM bulk load cannot fail");
  main_end_tids_.assign(main_row_count_, kMaxTransactionId);
}

Status Table::Insert(const Transaction& txn, const Row& row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (row[c].type() != schema_[c].type) {
      return Status::InvalidArgument("value type mismatch in column " +
                                     schema_[c].name);
    }
  }
  for (size_t c = 0; c < schema_.size(); ++c) {
    AppendValue(delta_columns_[c].get(), row[c]);
  }
  delta_begin_tids_.push_back(txn.tid);
  delta_end_tids_.push_back(kMaxTransactionId);
  return Status::Ok();
}

Status Table::Delete(const Transaction& txn, RowId row) {
  if (row >= row_count()) {
    return Status::OutOfRange("row id out of range");
  }
  if (row < main_row_count_) {
    main_end_tids_[row] = txn.tid;
  } else {
    delta_end_tids_[row - main_row_count_] = txn.tid;
  }
  return Status::Ok();
}

bool Table::IsVisible(RowId row, const Transaction& txn) const {
  HYTAP_ASSERT(row < row_count(), "row id out of range");
  if (row < main_row_count_) {
    return !txns_->IsDeleted(main_end_tids_[row], txn);
  }
  const size_t d = row - main_row_count_;
  return txns_->IsVisible(delta_begin_tids_[d], txn) &&
         !txns_->IsDeleted(delta_end_tids_[d], txn);
}

StatusOr<Value> Table::GetValue(ColumnId column, RowId row,
                                uint32_t queue_depth, IoStats* io) const {
  HYTAP_ASSERT(column < schema_.size(), "column id out of range");
  HYTAP_ASSERT(row < row_count(), "row id out of range");
  if (row >= main_row_count_) {
    if (io != nullptr) io->dram_ns += 2 * kDramTouchNs;
    return delta_columns_[column]->GetValue(row - main_row_count_);
  }
  if (placement_[column]) {
    if (io != nullptr) io->dram_ns += 2 * kDramTouchNs;
    return mrc_columns_[column]->GetValue(row);
  }
  HYTAP_ASSERT(sscg_ != nullptr, "SSCG-placed column without SSCG");
  HYTAP_ASSERT(buffers_ != nullptr, "tiered table needs a buffer manager");
  const int slot = sscg_->layout().SlotOf(column);
  HYTAP_ASSERT(slot >= 0, "column not a member of the SSCG");
  return sscg_->ProbeValue(row, static_cast<size_t>(slot), buffers_,
                           queue_depth, io);
}

StatusOr<Row> Table::ReconstructRow(RowId row, uint32_t queue_depth,
                                    IoStats* io) const {
  HYTAP_ASSERT(row < row_count(), "row id out of range");
  Row result(schema_.size());
  if (row >= main_row_count_) {
    const RowId d = row - main_row_count_;
    for (size_t c = 0; c < schema_.size(); ++c) {
      result[c] = delta_columns_[c]->GetValue(d);
      if (io != nullptr) io->dram_ns += 2 * kDramTouchNs;
    }
    return result;
  }
  // SSCG part: one page access covers all member attributes.
  if (sscg_ != nullptr && sscg_->layout().member_count() > 0) {
    auto group = sscg_->ReconstructTuple(row, buffers_, queue_depth, io);
    if (!group.ok()) return group.status();
    const auto& members = sscg_->layout().member_columns();
    for (size_t slot = 0; slot < members.size(); ++slot) {
      result[members[slot]] = std::move((*group)[slot]);
    }
  }
  // MRC part: two DRAM touches per attribute (value vector + dictionary).
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (!placement_[c]) continue;
    result[c] = mrc_columns_[c]->GetValue(row);
    if (io != nullptr) io->dram_ns += 2 * kDramTouchNs;
  }
  return result;
}

std::vector<Value> Table::CollectColumnValues(ColumnId column) const {
  std::vector<Value> values;
  values.reserve(main_row_count_);
  if (placement_[column]) {
    const AbstractColumn* mrc = mrc_columns_[column].get();
    for (RowId r = 0; r < main_row_count_; ++r) {
      values.push_back(mrc->GetValue(r));
    }
  } else {
    HYTAP_ASSERT(sscg_ != nullptr && store_ != nullptr,
                 "SSCG-placed column without SSCG/store");
    const int slot = sscg_->layout().SlotOf(column);
    HYTAP_ASSERT(slot >= 0, "column not a member of the SSCG");
    for (RowId r = 0; r < main_row_count_; ++r) {
      values.push_back(
          sscg_->RawValue(r, static_cast<size_t>(slot), *store_));
    }
  }
  return values;
}

Status Table::VerifySscgPages() const {
  if (sscg_ == nullptr) return Status::Ok();
  HYTAP_ASSERT(store_ != nullptr, "SSCG without a store");
  for (PageId id : sscg_->page_ids()) {
    Status status = store_->VerifyPage(id);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status Table::RebuildMain(const std::vector<std::vector<Value>>& columns,
                          const std::vector<bool>& in_dram,
                          uint64_t* migrated_bytes) {
  HYTAP_ASSERT(columns.size() == schema_.size(), "column count mismatch");
  std::vector<ColumnId> sscg_members;
  for (ColumnId c = 0; c < schema_.size(); ++c) {
    // Build the dictionary-encoded representation for every column: kept as
    // the MRC when DRAM-resident, otherwise only measured so the selection
    // model knows the column's DRAM footprint a_i.
    auto mrc = BuildDictionaryColumn(schema_[c], columns[c]);
    column_dram_bytes_[c] = mrc->MemoryUsage();
    if (in_dram[c]) {
      mrc_columns_[c] = std::move(mrc);
    } else {
      mrc_columns_[c].reset();
      sscg_members.push_back(c);
    }
  }
  if (migrated_bytes != nullptr) {
    for (ColumnId c = 0; c < schema_.size(); ++c) {
      const bool was_dram = placement_[c];
      if (was_dram != in_dram[c]) *migrated_bytes += column_dram_bytes_[c];
    }
  }
  placement_ = in_dram;
  if (sscg_members.empty()) {
    sscg_.reset();
    return Status::Ok();
  }
  HYTAP_ASSERT(store_ != nullptr,
               "evicting columns requires a secondary store");
  RowLayout layout(schema_, sscg_members);
  std::vector<Row> rows(main_row_count_);
  for (RowId r = 0; r < main_row_count_; ++r) {
    Row& row = rows[r];
    row.reserve(sscg_members.size());
    for (ColumnId c : sscg_members) row.push_back(columns[c][r]);
  }
  sscg_ = std::make_unique<Sscg>(std::move(layout), rows, store_);
  // Verify-after-write: read back every freshly written page's checksum
  // before the DRAM copy is dropped. A silently corrupted eviction would
  // otherwise only surface at query time, when the data is unrecoverable.
  Status verify = VerifySscgPages();
  if (!verify.ok()) {
    // Abort the eviction: the column values are still in memory, so rebuild
    // with everything DRAM-resident (cannot fail — writes no pages).
    const std::vector<bool> all_dram(schema_.size(), true);
    const Status fallback = RebuildMain(columns, all_dram, nullptr);
    HYTAP_ASSERT(fallback.ok(), "all-DRAM rebuild cannot fail");
    return verify;
  }
  return Status::Ok();
}

Status Table::SetPlacement(const std::vector<bool>& in_dram,
                           uint64_t* migrated_bytes) {
  if (in_dram.size() != schema_.size()) {
    return Status::InvalidArgument("placement arity mismatch");
  }
  bool any_evicted = false;
  for (bool d : in_dram) any_evicted |= !d;
  if (any_evicted && (store_ == nullptr || buffers_ == nullptr)) {
    return Status::FailedPrecondition(
        "table has no secondary store / buffer manager");
  }
  // The gather below reads SSCG pages raw (no checksum on the read path),
  // so verify them first: silently corrupted bytes must not be laundered
  // into fresh MRCs.
  Status verify = VerifySscgPages();
  if (!verify.ok()) return verify;
  std::vector<std::vector<Value>> columns(schema_.size());
  for (ColumnId c = 0; c < schema_.size(); ++c) {
    columns[c] = CollectColumnValues(c);
  }
  const Status rebuild = RebuildMain(columns, in_dram, migrated_bytes);
  // Even on a failed (aborted, now all-DRAM) eviction the indexes and
  // statistics must match the new main partition.
  RebuildIndexes();
  if (statistics_ != nullptr) {
    statistics_ = std::make_unique<TableStatistics>(
        TableStatistics::Build(schema_, columns, statistics_buckets_));
  }
  return rebuild;
}

Status Table::MergeDelta() {
  // Survivors: main rows not invalidated by a committed transaction, then
  // committed delta rows not invalidated. Uses a maximal snapshot.
  Transaction merge_view;
  merge_view.tid = 0;
  merge_view.snapshot_cid = txns_->last_commit_cid();
  // The gather reads SSCG pages raw; refuse to merge from corrupt bytes
  // (the table, delta included, is left untouched).
  Status verify = VerifySscgPages();
  if (!verify.ok()) return verify;
  std::vector<std::vector<Value>> columns(schema_.size());
  size_t new_count = 0;
  for (RowId r = 0; r < main_row_count_; ++r) {
    if (txns_->IsDeleted(main_end_tids_[r], merge_view)) continue;
    for (ColumnId c = 0; c < schema_.size(); ++c) {
      // Raw gather: main rows come from MRC or SSCG raw pages.
      if (placement_[c]) {
        columns[c].push_back(mrc_columns_[c]->GetValue(r));
      } else {
        const int slot = sscg_->layout().SlotOf(c);
        columns[c].push_back(
            sscg_->RawValue(r, static_cast<size_t>(slot), *store_));
      }
    }
    ++new_count;
  }
  for (size_t d = 0; d < delta_row_count(); ++d) {
    if (!txns_->IsVisible(delta_begin_tids_[d], merge_view)) continue;
    if (txns_->IsDeleted(delta_end_tids_[d], merge_view)) continue;
    for (ColumnId c = 0; c < schema_.size(); ++c) {
      columns[c].push_back(delta_columns_[c]->GetValue(d));
    }
    ++new_count;
  }
  main_row_count_ = new_count;
  // On a failed SSCG rewrite the rebuild falls back to all-DRAM: the merge
  // itself still completes (the gathered values are authoritative), only
  // the eviction is lost — report that via the returned status.
  const Status rebuild = RebuildMain(columns, placement_, nullptr);
  RebuildIndexes();
  if (statistics_ != nullptr) {
    statistics_ = std::make_unique<TableStatistics>(
        TableStatistics::Build(schema_, columns, statistics_buckets_));
  }
  main_end_tids_.assign(main_row_count_, kMaxTransactionId);
  // Reset the delta partition.
  delta_columns_.clear();
  for (const auto& def : schema_) {
    delta_columns_.push_back(MakeValueColumn(def));
  }
  delta_begin_tids_.clear();
  delta_end_tids_.clear();
  return rebuild;
}

Status Table::CreateIndex(const std::vector<ColumnId>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  for (ColumnId c : columns) {
    if (c >= schema_.size()) {
      return Status::InvalidArgument("index column out of range");
    }
  }
  index_definitions_.push_back(columns);
  // Build just the new index (others are current).
  std::vector<std::vector<Value>> values;
  values.reserve(columns.size());
  std::vector<DataType> types;
  for (ColumnId c : columns) {
    values.push_back(CollectColumnValues(c));
    types.push_back(schema_[c].type);
  }
  if (columns.size() == 1) {
    indexes_.push_back(std::make_unique<SingleColumnIndex>(
        columns[0], types[0], values[0]));
  } else {
    indexes_.push_back(
        std::make_unique<CompositeIndex>(columns, types, values));
  }
  return Status::Ok();
}

void Table::RebuildIndexes() {
  indexes_.clear();
  for (const auto& columns : index_definitions_) {
    std::vector<std::vector<Value>> values;
    std::vector<DataType> types;
    for (ColumnId c : columns) {
      values.push_back(CollectColumnValues(c));
      types.push_back(schema_[c].type);
    }
    if (columns.size() == 1) {
      indexes_.push_back(std::make_unique<SingleColumnIndex>(
          columns[0], types[0], values[0]));
    } else {
      indexes_.push_back(
          std::make_unique<CompositeIndex>(columns, types, values));
    }
  }
}

void Table::BuildStatistics(size_t bucket_count) {
  statistics_buckets_ = bucket_count;
  std::vector<std::vector<Value>> columns(schema_.size());
  for (ColumnId c = 0; c < schema_.size(); ++c) {
    columns[c] = CollectColumnValues(c);
  }
  statistics_ = std::make_unique<TableStatistics>(
      TableStatistics::Build(schema_, columns, bucket_count));
}

const MainIndex* Table::FindIndex(ColumnId column) const {
  for (const auto& index : indexes_) {
    if (index->columns().size() == 1 && index->columns()[0] == column) {
      return index.get();
    }
  }
  return nullptr;
}

const MainIndex* Table::FindCompositeIndex(
    const std::vector<ColumnId>& columns) const {
  for (const auto& index : indexes_) {
    if (index->columns().size() < 2) continue;
    bool covered = true;
    for (ColumnId key_part : index->columns()) {
      if (std::find(columns.begin(), columns.end(), key_part) ==
          columns.end()) {
        covered = false;
        break;
      }
    }
    if (covered) return index.get();
  }
  return nullptr;
}

size_t Table::IndexDramBytes() const {
  size_t total = 0;
  for (const auto& index : indexes_) total += index->MemoryUsage();
  return total;
}

size_t Table::MainDramBytes() const {
  size_t total = 0;
  for (ColumnId c = 0; c < schema_.size(); ++c) {
    if (placement_[c]) total += column_dram_bytes_[c];
  }
  return total;
}

double Table::SelectivityEstimate(ColumnId column) const {
  HYTAP_ASSERT(column < schema_.size(), "column id out of range");
  size_t distinct = 0;
  if (placement_[column] && mrc_columns_[column] != nullptr) {
    distinct = mrc_columns_[column]->distinct_count();
  } else {
    // SSCG-placed: fall back to the delta dictionary or a pessimistic guess.
    distinct = std::max<size_t>(delta_columns_[column]->distinct_count(), 1);
  }
  if (distinct == 0) distinct = 1;
  return 1.0 / static_cast<double>(distinct);
}

}  // namespace hytap

#include "storage/bit_packed_vector.h"

namespace hytap {

namespace {

/// Streams the codes of rows [begin, end): one running 64-bit word cursor,
/// no per-row word/offset division. Calls emit(row, code) in row order.
template <typename Emit>
inline void ForEachCode(const uint64_t* words, uint32_t bits, uint64_t mask,
                        size_t begin, size_t end, Emit&& emit) {
  const size_t first_bit = begin * bits;
  size_t word = first_bit >> 6;
  uint32_t offset = static_cast<uint32_t>(first_bit & 63);
  for (size_t row = begin; row < end; ++row) {
    uint64_t code = words[word] >> offset;
    const uint32_t consumed = offset + bits;
    if (consumed > 64) {
      // The code straddles into the next word (guaranteed to exist: Append
      // allocated it when the straddling code was written).
      code |= words[word + 1] << (64 - offset);
    }
    emit(row, code & mask);
    offset = consumed & 63;
    word += consumed >> 6;
  }
}

}  // namespace

BitPackedVector::BitPackedVector(uint32_t bits) : bits_(bits) {
  HYTAP_ASSERT(bits >= 1 && bits <= 64, "bit width must be in [1, 64]");
  mask_ = bits == 64 ? ~0ULL : ((1ULL << bits) - 1);
}

uint32_t BitPackedVector::BitsFor(uint64_t max_value) {
  uint32_t bits = 1;
  while (bits < 64 && (max_value >> bits) != 0) ++bits;
  return bits;
}

void BitPackedVector::Reserve(size_t count) {
  words_.reserve((count * bits_ + 63) / 64 + 1);
}

void BitPackedVector::Append(uint64_t value) {
  HYTAP_ASSERT((value & ~mask_) == 0, "value exceeds bit width");
  const size_t bit_pos = size_ * bits_;
  const size_t word = bit_pos / 64;
  const uint32_t offset = bit_pos % 64;
  if (word >= words_.size()) words_.push_back(0);
  words_[word] |= value << offset;
  if (offset + bits_ > 64) {
    // Spills into the next word.
    words_.push_back(value >> (64 - offset));
  }
  zone_map_.Update(size_, value);
  ++size_;
}

void BitPackedVector::Set(size_t index, uint64_t value) {
  HYTAP_ASSERT(index < size_, "BitPackedVector index out of range");
  HYTAP_ASSERT((value & ~mask_) == 0, "value exceeds bit width");
  const size_t bit_pos = index * bits_;
  const size_t word = bit_pos / 64;
  const uint32_t offset = bit_pos % 64;
  words_[word] = (words_[word] & ~(mask_ << offset)) | (value << offset);
  if (offset + bits_ > 64) {
    const uint32_t high_bits = offset + bits_ - 64;
    const uint64_t high_mask = (1ULL << high_bits) - 1;
    words_[word + 1] =
        (words_[word + 1] & ~high_mask) | (value >> (64 - offset));
  }
  // Overwrites only widen the zone bounds (recomputing the exact min/max
  // would cost a zone rescan); the map stays a conservative cover, which is
  // all pruning correctness requires.
  zone_map_.Update(index, value);
}

void BitPackedVector::ScanEqual(uint64_t target, size_t row_begin,
                                size_t row_end, PositionList* out) const {
  HYTAP_ASSERT(row_end <= size_, "scan range out of bounds");
  if (row_begin >= row_end) return;
  ForEachCode(words_.data(), bits_, mask_, row_begin, row_end,
              [&](size_t row, uint64_t code) {
                if (code == target) out->push_back(row);
              });
}

void BitPackedVector::ScanRange(uint64_t code_lo, uint64_t code_hi,
                                size_t row_begin, size_t row_end,
                                PositionList* out) const {
  HYTAP_ASSERT(row_end <= size_, "scan range out of bounds");
  if (row_begin >= row_end || code_lo >= code_hi) return;
  ForEachCode(words_.data(), bits_, mask_, row_begin, row_end,
              [&](size_t row, uint64_t code) {
                if (code >= code_lo && code < code_hi) out->push_back(row);
              });
}

void BitPackedVector::DecodeRange(size_t row_begin, size_t row_end,
                                  uint64_t* out) const {
  HYTAP_ASSERT(row_end <= size_, "decode range out of bounds");
  if (row_begin >= row_end) return;
  ForEachCode(words_.data(), bits_, mask_, row_begin, row_end,
              [&](size_t row, uint64_t code) { out[row - row_begin] = code; });
}

}  // namespace hytap

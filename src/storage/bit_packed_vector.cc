#include "storage/bit_packed_vector.h"

#include "common/assert.h"

namespace hytap {

BitPackedVector::BitPackedVector(uint32_t bits) : bits_(bits) {
  HYTAP_ASSERT(bits >= 1 && bits <= 64, "bit width must be in [1, 64]");
  mask_ = bits == 64 ? ~0ULL : ((1ULL << bits) - 1);
}

uint32_t BitPackedVector::BitsFor(uint64_t max_value) {
  uint32_t bits = 1;
  while (bits < 64 && (max_value >> bits) != 0) ++bits;
  return bits;
}

void BitPackedVector::Reserve(size_t count) {
  words_.reserve((count * bits_ + 63) / 64 + 1);
}

void BitPackedVector::Append(uint64_t value) {
  HYTAP_ASSERT((value & ~mask_) == 0, "value exceeds bit width");
  const size_t bit_pos = size_ * bits_;
  const size_t word = bit_pos / 64;
  const uint32_t offset = bit_pos % 64;
  if (word >= words_.size()) words_.push_back(0);
  words_[word] |= value << offset;
  if (offset + bits_ > 64) {
    // Spills into the next word.
    words_.push_back(value >> (64 - offset));
  }
  ++size_;
}

uint64_t BitPackedVector::Get(size_t index) const {
  HYTAP_ASSERT(index < size_, "BitPackedVector index out of range");
  const size_t bit_pos = index * bits_;
  const size_t word = bit_pos / 64;
  const uint32_t offset = bit_pos % 64;
  uint64_t result = words_[word] >> offset;
  if (offset + bits_ > 64) {
    result |= words_[word + 1] << (64 - offset);
  }
  return result & mask_;
}

void BitPackedVector::Set(size_t index, uint64_t value) {
  HYTAP_ASSERT(index < size_, "BitPackedVector index out of range");
  HYTAP_ASSERT((value & ~mask_) == 0, "value exceeds bit width");
  const size_t bit_pos = index * bits_;
  const size_t word = bit_pos / 64;
  const uint32_t offset = bit_pos % 64;
  words_[word] = (words_[word] & ~(mask_ << offset)) | (value << offset);
  if (offset + bits_ > 64) {
    const uint32_t high_bits = offset + bits_ - 64;
    const uint64_t high_mask = (1ULL << high_bits) - 1;
    words_[word + 1] =
        (words_[word + 1] & ~high_mask) | (value >> (64 - offset));
  }
}

}  // namespace hytap

#include "storage/dictionary_column.h"

#include "common/assert.h"

namespace hytap {

namespace {

template <typename T>
T Unbox(const Value& v);

template <>
int32_t Unbox<int32_t>(const Value& v) { return v.AsInt32(); }
template <>
int64_t Unbox<int64_t>(const Value& v) { return v.AsInt64(); }
template <>
float Unbox<float>(const Value& v) { return v.AsFloat(); }
template <>
double Unbox<double>(const Value& v) { return v.AsDouble(); }
template <>
std::string Unbox<std::string>(const Value& v) { return v.AsString(); }

template <typename T>
constexpr DataType TypeOf() {
  if constexpr (std::is_same_v<T, int32_t>) return DataType::kInt32;
  if constexpr (std::is_same_v<T, int64_t>) return DataType::kInt64;
  if constexpr (std::is_same_v<T, float>) return DataType::kFloat;
  if constexpr (std::is_same_v<T, double>) return DataType::kDouble;
  if constexpr (std::is_same_v<T, std::string>) return DataType::kString;
}

}  // namespace

template <typename T>
std::unique_ptr<DictionaryColumn<T>> DictionaryColumn<T>::Build(
    const std::vector<T>& values) {
  auto dictionary = OrderPreservingDictionary<T>::Build(values);
  const uint64_t max_code = dictionary.empty() ? 0 : dictionary.size() - 1;
  BitPackedVector codes(BitPackedVector::BitsFor(max_code));
  codes.Reserve(values.size());
  for (const T& value : values) {
    auto code = dictionary.CodeFor(value);
    HYTAP_ASSERT(code.has_value(), "value missing from its own dictionary");
    codes.Append(*code);
  }
  return std::unique_ptr<DictionaryColumn<T>>(
      new DictionaryColumn<T>(std::move(dictionary), std::move(codes)));
}

template <typename T>
DataType DictionaryColumn<T>::type() const {
  return TypeOf<T>();
}

template <typename T>
Value DictionaryColumn<T>::GetValue(RowId row) const {
  return Value(Get(row));
}

template <typename T>
bool DictionaryColumn<T>::CodeRange(const Value* lo, const Value* hi,
                                    ValueId* code_lo,
                                    ValueId* code_hi) const {
  *code_lo = 0;
  *code_hi = static_cast<ValueId>(dictionary_.size());
  if (lo != nullptr) *code_lo = dictionary_.LowerBoundCode(Unbox<T>(*lo));
  if (hi != nullptr) *code_hi = dictionary_.UpperBoundCode(Unbox<T>(*hi));
  return *code_lo < *code_hi;
}

template <typename T>
void DictionaryColumn<T>::ScanBetween(const Value* lo, const Value* hi,
                                      PositionList* out) const {
  ScanBetweenRange(lo, hi, 0, codes_.size(), out);
}

template <typename T>
void DictionaryColumn<T>::ScanBetweenRange(const Value* lo, const Value* hi,
                                           size_t row_begin, size_t row_end,
                                           PositionList* out) const {
  ValueId code_lo, code_hi;
  // Dictionary-domain short-circuit: a predicate interval that misses
  // [dict.min, dict.max] — or falls between two adjacent dictionary values —
  // yields an empty code interval and never touches the code vector.
  if (!CodeRange(lo, hi, &code_lo, &code_hi)) return;
  row_end = std::min(row_end, codes_.size());
  if (row_begin >= row_end) return;
  const bool equality = code_lo + 1 == code_hi;
  if (!ZoneMapsEnabled()) {
    if (equality) {
      // Equality on a single code: the common OLTP case.
      codes_.ScanEqual(code_lo, row_begin, row_end, out);
    } else {
      codes_.ScanRange(code_lo, code_hi, row_begin, row_end, out);
    }
    return;
  }
  // Zone-aligned chunks: a zone whose [min, max] code bounds miss the
  // predicate's code interval is skipped without decoding a single word.
  const ZoneMap& zones = codes_.zone_map();
  for (size_t chunk_begin = row_begin; chunk_begin < row_end;) {
    const size_t zone = chunk_begin / kZoneMapRows;
    const size_t chunk_end = std::min(row_end, (zone + 1) * kZoneMapRows);
    if (!zones.Prunes(chunk_begin, chunk_end, code_lo, code_hi)) {
      if (equality) {
        codes_.ScanEqual(code_lo, chunk_begin, chunk_end, out);
      } else {
        codes_.ScanRange(code_lo, code_hi, chunk_begin, chunk_end, out);
      }
    }
    chunk_begin = chunk_end;
  }
}

template <typename T>
bool DictionaryColumn<T>::CanSkipRange(const Value* lo, const Value* hi,
                                       size_t row_begin,
                                       size_t row_end) const {
  if (!ZoneMapsEnabled()) return false;
  ValueId code_lo, code_hi;
  if (!CodeRange(lo, hi, &code_lo, &code_hi)) return true;
  return codes_.zone_map().Prunes(row_begin, std::min(row_end, codes_.size()),
                                  code_lo, code_hi);
}

template <typename T>
void DictionaryColumn<T>::Probe(const Value* lo, const Value* hi,
                                const PositionList& in,
                                PositionList* out) const {
  ValueId code_lo, code_hi;
  if (!CodeRange(lo, hi, &code_lo, &code_hi)) return;
  for (RowId row : in) {
    const uint64_t code = codes_.Get(row);
    if (code >= code_lo && code < code_hi) out->push_back(row);
  }
}

std::unique_ptr<AbstractColumn> BuildDictionaryColumn(
    const ColumnDefinition& def, const std::vector<Value>& values) {
  switch (def.type) {
    case DataType::kInt32: {
      std::vector<int32_t> typed;
      typed.reserve(values.size());
      for (const Value& v : values) typed.push_back(v.AsInt32());
      return DictionaryColumn<int32_t>::Build(typed);
    }
    case DataType::kInt64: {
      std::vector<int64_t> typed;
      typed.reserve(values.size());
      for (const Value& v : values) typed.push_back(v.AsInt64());
      return DictionaryColumn<int64_t>::Build(typed);
    }
    case DataType::kFloat: {
      std::vector<float> typed;
      typed.reserve(values.size());
      for (const Value& v : values) typed.push_back(v.AsFloat());
      return DictionaryColumn<float>::Build(typed);
    }
    case DataType::kDouble: {
      std::vector<double> typed;
      typed.reserve(values.size());
      for (const Value& v : values) typed.push_back(v.AsDouble());
      return DictionaryColumn<double>::Build(typed);
    }
    case DataType::kString: {
      std::vector<std::string> typed;
      typed.reserve(values.size());
      for (const Value& v : values) typed.push_back(v.AsString());
      return DictionaryColumn<std::string>::Build(typed);
    }
  }
  HYTAP_UNREACHABLE("invalid DataType");
}

template class DictionaryColumn<int32_t>;
template class DictionaryColumn<int64_t>;
template class DictionaryColumn<float>;
template class DictionaryColumn<double>;
template class DictionaryColumn<std::string>;

}  // namespace hytap

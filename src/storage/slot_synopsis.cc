#include "storage/slot_synopsis.h"

#include <limits>

#include "common/assert.h"

namespace hytap {

namespace {

bool IsIntegral(DataType type) {
  return type == DataType::kInt32 || type == DataType::kInt64;
}

bool IsFloating(DataType type) {
  return type == DataType::kFloat || type == DataType::kDouble;
}

int64_t AsInt64(const Value& v, DataType type) {
  return type == DataType::kInt32 ? int64_t(v.AsInt32()) : v.AsInt64();
}

double AsDouble(const Value& v, DataType type) {
  return type == DataType::kFloat ? double(v.AsFloat()) : v.AsDouble();
}

}  // namespace

SlotSynopsis::SlotSynopsis(const RowLayout& layout,
                           const std::vector<Row>& rows) {
  const size_t slots = layout.member_count();
  const size_t pages = layout.PageCountFor(rows.size());
  types_.resize(slots);
  mins_.resize(slots);
  maxs_.resize(slots);
  for (size_t slot = 0; slot < slots; ++slot) {
    const DataType type = layout.slot_type(slot);
    types_[slot] = type;
    if (!IsIntegral(type) && !IsFloating(type)) continue;  // strings: none
    Bound init_min, init_max;
    if (IsIntegral(type)) {
      init_min.i = std::numeric_limits<int64_t>::max();
      init_max.i = std::numeric_limits<int64_t>::min();
    } else {
      init_min.d = std::numeric_limits<double>::infinity();
      init_max.d = -std::numeric_limits<double>::infinity();
    }
    mins_[slot].assign(pages, init_min);
    maxs_[slot].assign(pages, init_max);
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    const size_t page = r / layout.rows_per_page();
    const Row& row = rows[r];
    HYTAP_ASSERT(row.size() == slots, "row arity does not match layout");
    for (size_t slot = 0; slot < slots; ++slot) {
      if (mins_[slot].empty()) continue;
      if (IsIntegral(types_[slot])) {
        const int64_t v = AsInt64(row[slot], types_[slot]);
        if (v < mins_[slot][page].i) mins_[slot][page].i = v;
        if (v > maxs_[slot][page].i) maxs_[slot][page].i = v;
      } else {
        const double v = AsDouble(row[slot], types_[slot]);
        if (v < mins_[slot][page].d) mins_[slot][page].d = v;
        if (v > maxs_[slot][page].d) maxs_[slot][page].d = v;
      }
    }
  }
}

bool SlotSynopsis::Prunes(size_t page, size_t slot, const Value* lo,
                          const Value* hi) const {
  if (!has_slot(slot) || page >= mins_[slot].size()) return false;
  const DataType type = types_[slot];
  if (IsIntegral(type)) {
    if (lo != nullptr && AsInt64(*lo, type) > maxs_[slot][page].i) return true;
    if (hi != nullptr && AsInt64(*hi, type) < mins_[slot][page].i) return true;
    return false;
  }
  if (lo != nullptr && AsDouble(*lo, type) > maxs_[slot][page].d) return true;
  if (hi != nullptr && AsDouble(*hi, type) < mins_[slot][page].d) return true;
  return false;
}

size_t SlotSynopsis::MemoryUsage() const {
  size_t bytes = types_.size() * sizeof(DataType);
  for (size_t slot = 0; slot < mins_.size(); ++slot) {
    bytes += (mins_[slot].size() + maxs_[slot].size()) * sizeof(Bound);
  }
  return bytes;
}

}  // namespace hytap

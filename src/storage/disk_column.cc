#include "storage/disk_column.h"

#include <algorithm>
#include <cstring>

#include "common/assert.h"
#include "storage/dictionary.h"

namespace hytap {

namespace {

void AccountFetch(const BufferManager::Fetch& fetch, IoStats* io) {
  if (io == nullptr) return;
  if (fetch.hit) {
    io->dram_ns += fetch.latency_ns;
    ++io->cache_hits;
  } else {
    io->device_ns += fetch.latency_ns;
    io->retry_backoff_ns += fetch.retry_ns;
    ++io->page_reads;
    io->retries += fetch.retries;
  }
}

}  // namespace

DiskColumn::DiskColumn(const ColumnDefinition& def,
                       const std::vector<Value>& values,
                       SecondaryStore* store)
    : type_(def.type),
      value_width_(def.FixedWidthBytes()),
      codes_per_page_(kPageSize / sizeof(uint32_t)),
      entries_per_page_(kPageSize / def.FixedWidthBytes()),
      row_count_(values.size()) {
  HYTAP_ASSERT(store != nullptr, "DiskColumn requires a store");
  // Build the sorted dictionary in memory, then page everything out.
  std::vector<Value> sorted = values;
  std::sort(sorted.begin(), sorted.end(),
            [](const Value& a, const Value& b) { return a < b; });
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  dictionary_size_ = sorted.size();

  // Dictionary pages: fixed-width entries in value order.
  SecondaryStore::Page page;
  size_t in_page = 0;
  page.fill(0);
  for (const Value& v : sorted) {
    v.SerializeFixed(page.data() + in_page * value_width_, value_width_);
    if (++in_page == entries_per_page_) {
      const PageId id = store->AllocatePage();
      store->WritePage(id, page);
      dictionary_pages_.push_back(id);
      page.fill(0);
      in_page = 0;
    }
  }
  if (in_page > 0) {
    const PageId id = store->AllocatePage();
    store->WritePage(id, page);
    dictionary_pages_.push_back(id);
  }

  // Code pages: 32-bit codes in row order.
  page.fill(0);
  in_page = 0;
  for (const Value& v : values) {
    auto it = std::lower_bound(sorted.begin(), sorted.end(), v,
                               [](const Value& a, const Value& b) {
                                 return a < b;
                               });
    const uint32_t code = uint32_t(it - sorted.begin());
    std::memcpy(page.data() + in_page * sizeof(uint32_t), &code,
                sizeof(uint32_t));
    if (++in_page == codes_per_page_) {
      const PageId id = store->AllocatePage();
      store->WritePage(id, page);
      code_pages_.push_back(id);
      page.fill(0);
      in_page = 0;
    }
  }
  if (in_page > 0) {
    const PageId id = store->AllocatePage();
    store->WritePage(id, page);
    code_pages_.push_back(id);
  }
}

StatusOr<uint32_t> DiskColumn::CodeAt(RowId row, BufferManager* buffers,
                                      AccessPattern pattern,
                                      uint32_t queue_depth,
                                      IoStats* io) const {
  HYTAP_ASSERT(row < row_count_, "row out of range");
  const size_t page_index = row / codes_per_page_;
  auto fetch = buffers->FetchPage(code_pages_[page_index], pattern,
                                  queue_depth);
  if (!fetch.ok()) return fetch.status();
  AccountFetch(*fetch, io);
  uint32_t code;
  std::memcpy(&code,
              fetch->page->data() + (row % codes_per_page_) * sizeof(uint32_t),
              sizeof(uint32_t));
  return code;
}

StatusOr<Value> DiskColumn::DictionaryAt(uint32_t code, BufferManager* buffers,
                                         uint32_t queue_depth,
                                         IoStats* io) const {
  HYTAP_ASSERT(code < dictionary_size_, "code out of range");
  const size_t page_index = code / entries_per_page_;
  auto fetch = buffers->FetchPage(dictionary_pages_[page_index],
                                  AccessPattern::kRandom, queue_depth);
  if (!fetch.ok()) return fetch.status();
  AccountFetch(*fetch, io);
  return Value::DeserializeFixed(
      fetch->page->data() + (code % entries_per_page_) * value_width_, type_,
      value_width_);
}

StatusOr<Value> DiskColumn::GetValue(RowId row, BufferManager* buffers,
                                     uint32_t queue_depth, IoStats* io) const {
  auto code = CodeAt(row, buffers, AccessPattern::kRandom, queue_depth, io);
  if (!code.ok()) return code.status();
  return DictionaryAt(*code, buffers, queue_depth, io);
}

StatusOr<uint32_t> DiskColumn::LowerBoundCode(const Value& v,
                                              BufferManager* buffers,
                                              IoStats* io, bool upper) const {
  uint32_t lo = 0, hi = uint32_t(dictionary_size_);
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    auto entry = DictionaryAt(mid, buffers, 1, io);
    if (!entry.ok()) return entry.status();
    const bool go_right = upper ? !(v < *entry) : *entry < v;
    if (go_right) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status DiskColumn::ScanBetween(const Value* lo, const Value* hi,
                               BufferManager* buffers, uint32_t threads,
                               PositionList* out, IoStats* io) const {
  uint32_t code_lo = 0;
  uint32_t code_hi = uint32_t(dictionary_size_);
  if (lo != nullptr) {
    auto bound = LowerBoundCode(*lo, buffers, io, false);
    if (!bound.ok()) return bound.status();
    code_lo = *bound;
  }
  if (hi != nullptr) {
    auto bound = LowerBoundCode(*hi, buffers, io, true);
    if (!bound.ok()) return bound.status();
    code_hi = *bound;
  }
  if (code_lo >= code_hi) return Status::Ok();
  PositionList matches;
  RowId row = 0;
  for (PageId local = 0; local < code_pages_.size(); ++local) {
    auto fetch = buffers->FetchPage(code_pages_[local],
                                    AccessPattern::kSequential, threads);
    if (!fetch.ok()) return fetch.status();  // `out` untouched
    AccountFetch(*fetch, io);
    const size_t rows_here =
        std::min(codes_per_page_, row_count_ - size_t(row));
    for (size_t r = 0; r < rows_here; ++r, ++row) {
      uint32_t code;
      std::memcpy(&code, fetch->page->data() + r * sizeof(uint32_t),
                  sizeof(uint32_t));
      if (code >= code_lo && code < code_hi) matches.push_back(row);
    }
  }
  out->insert(out->end(), matches.begin(), matches.end());
  return Status::Ok();
}

}  // namespace hytap

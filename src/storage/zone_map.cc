#include "storage/zone_map.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hytap {

namespace {

bool InitFromEnv() {
  const char* env = std::getenv("HYTAP_ZONE_MAPS");
  if (env == nullptr) return true;
  return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "false") != 0;
}

std::atomic<bool>& Flag() {
  static std::atomic<bool> enabled{InitFromEnv()};
  return enabled;
}

}  // namespace

bool ZoneMapsEnabled() { return Flag().load(std::memory_order_relaxed); }

void SetZoneMapsEnabled(bool enabled) {
  Flag().store(enabled, std::memory_order_relaxed);
}

}  // namespace hytap

#include "storage/sscg.h"

#include "common/assert.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "storage/zone_map.h"

namespace hytap {

namespace {

bool InRange(const Value& v, const Value* lo, const Value* hi) {
  if (lo != nullptr && v < *lo) return false;
  if (hi != nullptr && *hi < v) return false;
  return true;
}

/// Registry handles resolved once; Add() is gated on the HYTAP_METRICS knob.
struct SscgMetrics {
  Counter* pages_scanned;
  Counter* pages_pruned;
  Counter* probe_rows;

  static SscgMetrics& Get() {
    static SscgMetrics metrics;
    return metrics;
  }

 private:
  SscgMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    pages_scanned = registry.GetCounter("hytap_sscg_pages_scanned_total");
    pages_pruned = registry.GetCounter("hytap_sscg_pages_pruned_total");
    probe_rows = registry.GetCounter("hytap_sscg_probe_rows_total");
  }
};

/// Folds one successful buffer-manager fetch into `io`. Recovered-by-retry
/// CRC mismatches ride along on the miss path; unrecoverable ones surface as
/// fetch errors and are charged by AccountFetchError instead.
void AccountFetch(const BufferManager::Fetch& fetch, IoStats* io) {
  if (io == nullptr) return;
  if (fetch.hit) {
    io->dram_ns += fetch.latency_ns;
    ++io->cache_hits;
  } else {
    io->device_ns += fetch.latency_ns;
    io->retry_backoff_ns += fetch.retry_ns;
    ++io->page_reads;
    io->retries += fetch.retries;
    io->checksum_failures += fetch.checksum_failures;
  }
}

/// Charges a failed fetch of store page `id`: if the page is (now)
/// quarantined — newly declared dead/corrupt by this very read, or already
/// dead and fast-failed — the operation records it in `quarantined_pages`,
/// and a kDataLoss failure (stored bytes failing verification on every
/// retry) additionally lands in `verify_failures`.
void AccountFetchError(PageId id, const Status& status, BufferManager* buffers,
                       IoStats* io) {
  if (io == nullptr) return;
  if (status.code() == StatusCode::kDataLoss) ++io->verify_failures;
  if (buffers->store()->IsQuarantined(id)) {
    ++io->quarantined_pages;
  }
}

}  // namespace

Sscg::Sscg(RowLayout layout, const std::vector<Row>& rows,
           SecondaryStore* store, uint64_t* out_write_ns)
    : layout_(std::move(layout)),
      synopsis_(layout_, rows),
      row_count_(rows.size()) {
  HYTAP_ASSERT(store != nullptr, "SSCG requires a store");
  const size_t pages = layout_.PageCountFor(rows.size());
  page_ids_.reserve(pages);
  SecondaryStore::Page page;
  for (size_t p = 0; p < pages; ++p) {
    page.fill(0);
    const size_t first_row = p * layout_.rows_per_page();
    const size_t last_row =
        std::min(rows.size(), first_row + layout_.rows_per_page());
    for (size_t r = first_row; r < last_row; ++r) {
      layout_.SerializeRow(rows[r], page.data() + layout_.OffsetInPage(r));
    }
    const PageId id = store->AllocatePage();
    store->WritePage(id, page);
    page_ids_.push_back(id);
  }
  if (out_write_ns != nullptr) {
    *out_write_ns = store->device().SequentialWriteNs(pages, /*threads=*/1);
  }
}

StatusOr<const SecondaryStore::Page*> Sscg::FetchRowPage(
    RowId row, BufferManager* buffers, AccessPattern pattern,
    uint32_t queue_depth, IoStats* io) const {
  HYTAP_ASSERT(row < row_count_, "SSCG row out of range");
  const PageId local = layout_.PageOf(row);
  const PageId global = page_ids_[local];
  auto fetch = buffers->FetchPage(global, pattern, queue_depth);
  if (!fetch.ok()) {
    AccountFetchError(global, fetch.status(), buffers, io);
    return fetch.status();
  }
  AccountFetch(*fetch, io);
  return fetch->page;
}

StatusOr<Row> Sscg::ReconstructTuple(RowId row, BufferManager* buffers,
                                     uint32_t queue_depth, IoStats* io) const {
  auto page =
      FetchRowPage(row, buffers, AccessPattern::kRandom, queue_depth, io);
  if (!page.ok()) return page.status();
  return layout_.DeserializeRow((*page)->data() + layout_.OffsetInPage(row));
}

StatusOr<Value> Sscg::ProbeValue(RowId row, size_t slot, BufferManager* buffers,
                                 uint32_t queue_depth, IoStats* io) const {
  auto page =
      FetchRowPage(row, buffers, AccessPattern::kRandom, queue_depth, io);
  if (!page.ok()) return page.status();
  return layout_.DeserializeSlot((*page)->data() + layout_.OffsetInPage(row),
                                 slot);
}

Status Sscg::ScanSlot(size_t slot, const Value* lo, const Value* hi,
                      BufferManager* buffers, uint32_t threads,
                      PositionList* out, IoStats* io) const {
  return ScanSlotPages(slot, lo, hi, 0, page_ids_.size(), buffers, threads,
                       out, io);
}

Status Sscg::ScanSlotPages(size_t slot, const Value* lo, const Value* hi,
                           size_t page_begin, size_t page_end,
                           BufferManager* buffers, uint32_t threads,
                           PositionList* out, IoStats* io) const {
  page_end = std::min(page_end, page_ids_.size());
  if (page_begin >= page_end) return Status::Ok();
  // Survivor set, decided serially in page order: each pruning decision is a
  // pure function of the immutable per-page synopsis, so the surviving page
  // sequence — and with it every fetch, fault draw, and counter below — is
  // identical at any worker count, and a pruned page consumes nothing: no
  // buffer-manager fetch, no device latency, no checksum verify, no fault
  // draw.
  const bool skipping = ZoneMapsEnabled() && synopsis_.has_slot(slot);
  std::vector<size_t> survivors;
  survivors.reserve(page_end - page_begin);
  for (size_t local = page_begin; local < page_end; ++local) {
    if (skipping && synopsis_.Prunes(local, slot, lo, hi)) continue;
    survivors.push_back(local);
  }
  if (io != nullptr) {
    io->pages_pruned += (page_end - page_begin) - survivors.size();
  }
  SscgMetrics::Get().pages_pruned->Add((page_end - page_begin) -
                                       survivors.size());
  SscgMetrics::Get().pages_scanned->Add(survivors.size());
  if (survivors.empty()) return Status::Ok();
  // Accounting pass, single-threaded and in page order: pulls every
  // surviving page through the cache exactly as the serial scan did, so
  // hit/miss counts, CLOCK state, simulated latencies — and the
  // fault-injection schedule — are identical for any worker count (the
  // `threads` queue depth still scales the modeled latency). A page error
  // aborts here, before any position is produced, so the first failure in
  // page order wins regardless of thread count.
  for (size_t local : survivors) {
    auto fetch = buffers->FetchPage(page_ids_[local],
                                    AccessPattern::kSequential, threads);
    if (!fetch.ok()) {
      AccountFetchError(page_ids_[local], fetch.status(), buffers, io);
      return fetch.status();
    }
    AccountFetch(*fetch, io);
  }
  // Filter pass: morsels of whole surviving pages, each worker
  // deserializing into its own position list; concatenation in morsel order
  // yields the ascending serial output (survivors are ascending). Workers
  // read page payloads via the raw store (identical bytes, no cache
  // mutation, no timing).
  const SecondaryStore* store = buffers->store();
  HYTAP_ASSERT(store != nullptr, "buffer manager without a store");
  const size_t morsels =
      ThreadPool::MorselCount(0, survivors.size(), kScanMorselPages);
  std::vector<PositionList> parts(morsels);
  ThreadPool::Global().ParallelFor(
      0, survivors.size(), kScanMorselPages, threads,
      [&](size_t m, size_t s_begin, size_t s_end) {
        PositionList& part = parts[m];
        for (size_t s = s_begin; s < s_end; ++s) {
          const size_t local = survivors[s];
          const SecondaryStore::Page& page = store->RawPage(page_ids_[local]);
          RowId row = local * layout_.rows_per_page();
          const size_t rows_here =
              std::min<size_t>(layout_.rows_per_page(), row_count_ - row);
          for (size_t r = 0; r < rows_here; ++r, ++row) {
            const Value v = layout_.DeserializeSlot(
                page.data() + layout_.OffsetInPage(row), slot);
            if (InRange(v, lo, hi)) part.push_back(row);
          }
        }
      });
  size_t total = out->size();
  for (const PositionList& part : parts) total += part.size();
  out->reserve(total);
  for (const PositionList& part : parts) {
    out->insert(out->end(), part.begin(), part.end());
  }
  return Status::Ok();
}

Status Sscg::AccountTupleFetch(RowId row, BufferManager* buffers,
                               uint32_t queue_depth, IoStats* io) const {
  return FetchRowPage(row, buffers, AccessPattern::kRandom, queue_depth, io)
      .status();
}

Value Sscg::RawValue(RowId row, size_t slot,
                     const SecondaryStore& store) const {
  HYTAP_ASSERT(row < row_count_, "SSCG row out of range");
  const SecondaryStore::Page& page = store.RawPage(page_ids_[layout_.PageOf(row)]);
  return layout_.DeserializeSlot(page.data() + layout_.OffsetInPage(row),
                                 slot);
}

Row Sscg::RawRow(RowId row, const SecondaryStore& store) const {
  HYTAP_ASSERT(row < row_count_, "SSCG row out of range");
  const SecondaryStore::Page& page = store.RawPage(page_ids_[layout_.PageOf(row)]);
  return layout_.DeserializeRow(page.data() + layout_.OffsetInPage(row));
}

Status Sscg::ProbeSlot(size_t slot, const Value* lo, const Value* hi,
                       const PositionList& in, BufferManager* buffers,
                       uint32_t queue_depth, PositionList* out,
                       IoStats* io) const {
  SscgMetrics::Get().probe_rows->Add(in.size());
  PositionList survivors;
  for (RowId row : in) {
    auto v = ProbeValue(row, slot, buffers, queue_depth, io);
    if (!v.ok()) return v.status();  // `out` untouched: no partial results
    if (InRange(*v, lo, hi)) survivors.push_back(row);
  }
  out->insert(out->end(), survivors.begin(), survivors.end());
  return Status::Ok();
}

}  // namespace hytap

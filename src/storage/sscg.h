#ifndef HYTAP_STORAGE_SSCG_H_
#define HYTAP_STORAGE_SSCG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/row_layout.h"
#include "storage/slot_synopsis.h"
#include "tiering/buffer_manager.h"
#include "tiering/secondary_store.h"

namespace hytap {

/// Aggregated simulated-IO accounting for one engine operation.
struct IoStats {
  uint64_t device_ns = 0;      // summed per-requester device time
  uint64_t dram_ns = 0;        // DRAM access cost (cache misses)
  uint64_t retry_backoff_ns = 0;  // sub-account of device_ns: retry backoff
                                  // charges plus failed-attempt latency that
                                  // a successful re-read wrote off (NOT added
                                  // to TotalNs — already inside device_ns)
  uint64_t page_reads = 0;     // secondary-storage page fetches (misses)
  uint64_t cache_hits = 0;     // buffer-manager hits
  uint64_t retries = 0;        // page-read attempts beyond the first
  uint64_t morsels_pruned = 0; // MRC scan morsels skipped via zone maps
  uint64_t pages_pruned = 0;   // SSCG pages skipped (synopsis / candidate
                               // range) — no fetch, no latency, no CRC
  uint64_t checksum_failures = 0;  // CRC mismatches detected (and retried)
                                   // by this operation's page reads
  uint64_t verify_failures = 0;    // fetches whose stored bytes failed
                                   // verification on every retry (kDataLoss)
  uint64_t quarantined_pages = 0;  // page fetches that failed on a
                                   // quarantined page (newly dead or
                                   // fast-failed)

  uint64_t TotalNs() const { return device_ns + dram_ns; }

  /// The single place `threads`/queue-depth arguments are clamped — callers
  /// must not re-implement the `threads == 0 ? 1 : threads` ternary.
  static uint32_t ClampThreads(uint32_t threads) {
    return threads == 0 ? 1 : threads;
  }

  /// Wall-clock estimate when `threads` workers split the operation.
  ///
  /// Approximation: assumes the summed device/DRAM time divides uniformly
  /// across workers. Pruned morsels and pages contribute *zero* to TotalNs
  /// (skipped work is never charged), so the estimate stays consistent
  /// under data skipping — but when pruning leaves only a few surviving
  /// morsels, fewer than `threads` workers may carry them and the true
  /// critical path can exceed TotalNs() / threads. The divisor models
  /// aggregate capacity, not the critical path.
  uint64_t WallNs(uint32_t threads) const {
    return TotalNs() / ClampThreads(threads);
  }
  IoStats& operator+=(const IoStats& other) {
    device_ns += other.device_ns;
    dram_ns += other.dram_ns;
    retry_backoff_ns += other.retry_backoff_ns;
    page_reads += other.page_reads;
    cache_hits += other.cache_hits;
    retries += other.retries;
    morsels_pruned += other.morsels_pruned;
    pages_pruned += other.pages_pruned;
    checksum_failures += other.checksum_failures;
    verify_failures += other.verify_failures;
    quarantined_pages += other.quarantined_pages;
    return *this;
  }
};

/// A Secondary Storage Column Group (paper §II-A): a set of attributes stored
/// row-oriented and uncompressed on a secondary-storage device.
///
/// Optimized for tuple-centric access: a full-width reconstruction of the
/// group's attributes costs a single 4 KB page read. Sequential scans over a
/// single member attribute are possible but read the full row width
/// (the cost scales with the group width — Fig. 9a).
class Sscg {
 public:
  /// Writes `rows.size()` rows (member order per RowLayout) to `store`.
  /// Write timing is returned via `out_write_ns` if non-null.
  Sscg(RowLayout layout, const std::vector<Row>& rows, SecondaryStore* store,
       uint64_t* out_write_ns = nullptr);

  const RowLayout& layout() const { return layout_; }
  size_t row_count() const { return row_count_; }
  size_t page_count() const { return page_ids_.size(); }

  /// Total bytes occupied on secondary storage.
  size_t StorageBytes() const { return page_ids_.size() * kPageSize; }

  /// Reconstructs the group's slice of tuple `row` via `buffers` (random
  /// access pattern). Returns the values in member order, or the page-read
  /// error (kUnavailable / kDataLoss).
  StatusOr<Row> ReconstructTuple(RowId row, BufferManager* buffers,
                                 uint32_t queue_depth, IoStats* io) const;

  /// Reads a single member attribute of tuple `row` (probe path).
  StatusOr<Value> ProbeValue(RowId row, size_t slot, BufferManager* buffers,
                             uint32_t queue_depth, IoStats* io) const;

  /// Performs and accounts the buffer-manager page fetch of tuple `row`
  /// exactly as ReconstructTuple would, without materializing values. The
  /// executor uses this to keep simulated-IO accounting in deterministic
  /// position order while the materialization itself runs on worker
  /// threads against raw pages.
  Status AccountTupleFetch(RowId row, BufferManager* buffers,
                           uint32_t queue_depth, IoStats* io) const;

  /// Sequentially scans member slot `slot`, appending qualifying rows
  /// ([lo, hi] closed interval, null = unbounded) to `out`. Reads every page
  /// of the group (row-oriented layout: no projection pushdown) except pages
  /// whose slot synopsis proves them irrelevant while `ZoneMapsEnabled()`:
  /// those are skipped entirely — no buffer-manager fetch, no device
  /// latency, no checksum verify — and counted in `io->pages_pruned`. On a
  /// page error the first failure (in page order) is returned and `out` is
  /// left untouched; the IO accrued before the failure stays in `io`.
  Status ScanSlot(size_t slot, const Value* lo, const Value* hi,
                  BufferManager* buffers, uint32_t threads, PositionList* out,
                  IoStats* io) const;

  /// ScanSlot restricted to local pages [page_begin, page_end) — the
  /// executor's candidate-restricted scan limits the sequential pass to the
  /// page span covered by the surviving candidate positions. Appends
  /// qualifying rows of those pages only (global row ids, ascending).
  Status ScanSlotPages(size_t slot, const Value* lo, const Value* hi,
                       size_t page_begin, size_t page_end,
                       BufferManager* buffers, uint32_t threads,
                       PositionList* out, IoStats* io) const;

  /// Probes member slot `slot` for the candidate positions `in` (ascending),
  /// appending survivors to `out`. Consecutive candidates on the same page
  /// share one fetch. On a page error `out` is left untouched.
  Status ProbeSlot(size_t slot, const Value* lo, const Value* hi,
                   const PositionList& in, BufferManager* buffers,
                   uint32_t queue_depth, PositionList* out, IoStats* io) const;

  /// Timing-free raw access for migration/verification: reads directly from
  /// the backing store, bypassing the buffer manager and device model.
  Value RawValue(RowId row, size_t slot, const SecondaryStore& store) const;
  Row RawRow(RowId row, const SecondaryStore& store) const;

  /// Store page ids backing this group (migration verify-after-write).
  const std::vector<PageId>& page_ids() const { return page_ids_; }

  /// Per-page min/max bounds of the numeric member slots, built from the
  /// intended row contents at construction (RebuildMain / merge) time.
  const SlotSynopsis& synopsis() const { return synopsis_; }

 private:
  StatusOr<const SecondaryStore::Page*> FetchRowPage(RowId row,
                                                     BufferManager* buffers,
                                                     AccessPattern pattern,
                                                     uint32_t queue_depth,
                                                     IoStats* io) const;

  RowLayout layout_;
  SlotSynopsis synopsis_;
  std::vector<PageId> page_ids_;
  size_t row_count_;
};

}  // namespace hytap

#endif  // HYTAP_STORAGE_SSCG_H_

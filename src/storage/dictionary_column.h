#ifndef HYTAP_STORAGE_DICTIONARY_COLUMN_H_
#define HYTAP_STORAGE_DICTIONARY_COLUMN_H_

#include <memory>
#include <vector>

#include "storage/bit_packed_vector.h"
#include "storage/column.h"
#include "storage/dictionary.h"

namespace hytap {

/// A Memory-Resident Column (MRC, paper §II-A): a single attribute stored
/// column-oriented with an order-preserving dictionary and a bit-packed
/// value-id vector. Scans execute on compressed codes with late
/// materialization; range predicates become code-range comparisons.
template <typename T>
class DictionaryColumn : public AbstractColumn {
 public:
  /// Builds from raw values (the merge process produces these).
  static std::unique_ptr<DictionaryColumn<T>> Build(
      const std::vector<T>& values);

  DataType type() const override;
  size_t size() const override { return codes_.size(); }
  size_t distinct_count() const override { return dictionary_.size(); }
  size_t MemoryUsage() const override {
    return dictionary_.MemoryUsage() + codes_.MemoryUsage();
  }

  Value GetValue(RowId row) const override;
  void ScanBetween(const Value* lo, const Value* hi,
                   PositionList* out) const override;
  void ScanBetweenRange(const Value* lo, const Value* hi, size_t row_begin,
                        size_t row_end, PositionList* out) const override;
  void Probe(const Value* lo, const Value* hi, const PositionList& in,
             PositionList* out) const override;
  bool CanSkipRange(const Value* lo, const Value* hi, size_t row_begin,
                    size_t row_end) const override;

  /// Typed accessor used by hot loops (no Value boxing).
  const T& Get(RowId row) const {
    return dictionary_.ValueFor(static_cast<ValueId>(codes_.Get(row)));
  }

  const OrderPreservingDictionary<T>& dictionary() const {
    return dictionary_;
  }
  const BitPackedVector& codes() const { return codes_; }

 private:
  DictionaryColumn(OrderPreservingDictionary<T> dictionary,
                   BitPackedVector codes)
      : dictionary_(std::move(dictionary)), codes_(std::move(codes)) {}

  /// Translates a [lo, hi] value interval into a half-open code interval
  /// [code_lo, code_hi); returns false if the interval is empty.
  bool CodeRange(const Value* lo, const Value* hi, ValueId* code_lo,
                 ValueId* code_hi) const;

  OrderPreservingDictionary<T> dictionary_;
  BitPackedVector codes_;
};

/// Builds a dictionary column of the right dynamic type from boxed values
/// (all values must share `def.type`).
std::unique_ptr<AbstractColumn> BuildDictionaryColumn(
    const ColumnDefinition& def, const std::vector<Value>& values);

extern template class DictionaryColumn<int32_t>;
extern template class DictionaryColumn<int64_t>;
extern template class DictionaryColumn<float>;
extern template class DictionaryColumn<double>;
extern template class DictionaryColumn<std::string>;

}  // namespace hytap

#endif  // HYTAP_STORAGE_DICTIONARY_COLUMN_H_

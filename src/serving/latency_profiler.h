#ifndef HYTAP_SERVING_LATENCY_PROFILER_H_
#define HYTAP_SERVING_LATENCY_PROFILER_H_

// Deterministic latency attribution for served queries (DESIGN.md §17).
//
// The session manager feeds one terminal observation per ticket — in ticket
// order, from the reorder-buffer flush — carrying the ticket's phase vector
// (common/phases.h) and, when tracing is on, its trace tree. The profiler
// aggregates per-class phase histograms and, for tail tickets (over the
// class SLO objective, failed, or at/above the running interpolated p99),
// produces an *attribution*: phases ranked by charge plus a critical-path
// walk down the trace tree (the child with the largest inclusive simulated
// time at every level, with est-vs-actual selectivities along the path).
// Everything is computed from simulated time in ticket order, so reports
// are bit-identical across worker counts.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/phases.h"
#include "common/trace.h"
#include "serving/session_manager.h"

namespace hytap {

class LatencyProfiler {
 public:
  struct Options {
    /// Latency objectives per class, shared with the SLO monitor
    /// (HYTAP_SLO_OLTP_NS / HYTAP_SLO_OLAP_NS).
    uint64_t oltp_slo_ns = 2'000'000;      // 2 ms
    uint64_t olap_slo_ns = 2'000'000'000;  // 2 s
    /// Executed samples a class needs before the running-p99 tail criterion
    /// arms (HYTAP_PHASE_MIN_TAIL_SAMPLES). The SLO-breach criterion is
    /// always armed.
    uint64_t min_tail_samples = 16;
    /// Retained attribution cap (HYTAP_PHASE_MAX_ATTRIBUTIONS); beyond it
    /// attributions are counted as dropped, never silently discarded.
    size_t max_attributions = 64;

    static Options FromEnv();
  };

  /// One level of the critical-path walk over the trace tree.
  struct CriticalStep {
    std::string name;
    uint64_t inclusive_ns = 0;  // span's simulated_ns
    uint64_t exclusive_ns = 0;  // inclusive minus children's inclusive
    std::string est_selectivity;     // empty when the span isn't annotated
    std::string actual_selectivity;
  };

  /// Why a tail ticket was slow.
  struct Attribution {
    uint64_t ticket = 0;
    QueryClass cls = QueryClass::kOltp;
    StatusCode status = StatusCode::kOk;
    uint64_t latency_ns = 0;
    bool slo_breach = false;  // failed or over the class objective
    bool p99_tail = false;    // >= running interpolated p99 at observation
    PhaseVector phases;
    QueryPhase dominant = QueryPhase::kScanProbe;
    /// All phases ordered by descending charge (ties -> lower enum value).
    std::vector<QueryPhase> ranked;
    /// Root-to-leaf walk, empty when the ticket carried no trace.
    std::vector<CriticalStep> critical_path;
  };

  /// Per-class point-in-time aggregate for tests/CLIs.
  struct ClassSnapshot {
    uint64_t observations = 0;  // all terminal tickets
    uint64_t executed = 0;      // completed an execution (ok or failed)
    uint64_t shed = 0;          // terminal without executing (shed or
                                // cancelled while queued)
    uint64_t cancelled = 0;     // cancelled mid-execution; their partial
                                // accrual depends on stop-token timing, so
                                // they are counted but excluded from the
                                // deterministic phase/latency aggregates
    uint64_t failed = 0;        // executed with non-OK status
    uint64_t tail = 0;          // attributed tickets
    uint64_t latency_sum_ns = 0;
    PhaseVector phase_sum;
    uint64_t latency_p50_ns = 0;
    uint64_t latency_p99_ns = 0;
    uint64_t latency_p999_ns = 0;
  };

  explicit LatencyProfiler(Options options = Options::FromEnv());

  /// Feeds one terminal ticket. Must be called in ticket order (the serving
  /// flush guarantees this); internally serialized. `executed` is false for
  /// tickets shed or cancelled while still queued — their phase vector is
  /// all-zero and their latency 0. `window`/`sim_ns` stamp flight events.
  /// No-op when `PhaseAccountingEnabled()` is off.
  void Observe(uint64_t ticket, QueryClass cls, StatusCode status,
               bool executed, uint64_t latency_ns, const PhaseVector& phases,
               const TraceSpan* trace, uint64_t window, uint64_t sim_ns);

  ClassSnapshot Snapshot(QueryClass cls) const;
  std::vector<Attribution> Attributions() const;
  uint64_t attributions_dropped() const;

  /// Deterministic human-readable report (per-class phase breakdown +
  /// retained tail attributions).
  std::string ReportText() const;
  /// Same content as a single JSON object.
  std::string ReportJson() const;

  /// Pushes hytap_phase_* dominant/share gauges into the metrics registry.
  /// Histograms and counters are updated inline by Observe().
  void ExportMetrics() const;

  const Options& options() const { return options_; }

  void Reset();

 private:
  struct ClassState {
    uint64_t observations = 0;
    uint64_t executed = 0;
    uint64_t shed = 0;
    uint64_t cancelled = 0;
    uint64_t failed = 0;
    uint64_t tail = 0;
    uint64_t latency_sum_ns = 0;
    PhaseVector phase_sum;
    /// Executed-ticket latencies in fixed duration buckets; drives the
    /// running-p99 tail criterion and the report quantiles.
    MetricsSnapshot::HistogramData latencies;
  };

  uint64_t ObjectiveNs(QueryClass cls) const {
    return cls == QueryClass::kOltp ? options_.oltp_slo_ns
                                    : options_.olap_slo_ns;
  }

  const Options options_;

  mutable std::mutex mutex_;
  ClassState classes_[kQueryClassCount];
  std::vector<Attribution> attributions_;
  uint64_t dropped_ = 0;
};

}  // namespace hytap

#endif  // HYTAP_SERVING_LATENCY_PROFILER_H_

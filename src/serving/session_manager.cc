#include "serving/session_manager.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/assert.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/retier_daemon.h"
#include "core/tiered_table.h"
#include "serving/latency_profiler.h"
#include "serving/slo_monitor.h"
#include "tiering/buffer_manager.h"

namespace hytap {

namespace {

/// Set while a serving worker runs a structural write from its own exclusive
/// section (idle re-tier tick); see SessionManager::InExclusiveWrite().
thread_local bool t_in_exclusive_write = false;

/// Registry handles resolved once; updates are gated on the HYTAP_METRICS
/// knob.
struct SessionMetrics {
  Counter* submitted;
  Counter* admitted;
  Counter* rejected;
  Counter* shed_deadline;
  Counter* cancelled;
  Counter* completed;
  Gauge* inflight;
  Gauge* queued;
  HistogramMetric* oltp_latency_ns;
  HistogramMetric* olap_latency_ns;
  HistogramMetric* oltp_queue_wait_ns;
  HistogramMetric* olap_queue_wait_ns;

  static SessionMetrics& Get() {
    static SessionMetrics metrics;
    return metrics;
  }

  HistogramMetric* LatencyFor(QueryClass cls) {
    return cls == QueryClass::kOltp ? oltp_latency_ns : olap_latency_ns;
  }
  HistogramMetric* QueueWaitFor(QueryClass cls) {
    return cls == QueryClass::kOltp ? oltp_queue_wait_ns : olap_queue_wait_ns;
  }

 private:
  SessionMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    submitted = registry.GetCounter("hytap_session_submitted_total");
    admitted = registry.GetCounter("hytap_session_admitted_total");
    rejected = registry.GetCounter("hytap_session_rejected_total");
    shed_deadline = registry.GetCounter("hytap_session_shed_deadline_total");
    cancelled = registry.GetCounter("hytap_session_cancelled_total");
    completed = registry.GetCounter("hytap_session_completed_total");
    inflight = registry.GetGauge("hytap_session_inflight");
    queued = registry.GetGauge("hytap_session_queued");
    oltp_latency_ns = registry.GetHistogram("hytap_session_oltp_latency_ns",
                                            DurationNsBuckets());
    olap_latency_ns = registry.GetHistogram("hytap_session_olap_latency_ns",
                                            DurationNsBuckets());
    oltp_queue_wait_ns = registry.GetHistogram(
        "hytap_session_oltp_queue_wait_ns", DurationNsBuckets());
    olap_queue_wait_ns = registry.GetHistogram(
        "hytap_session_olap_queue_wait_ns", DurationNsBuckets());
  }
};

size_t EnvSize(const char* name, size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const unsigned long long value = std::strtoull(env, nullptr, 10);
    if (value >= 1) return size_t(value);
  }
  return fallback;
}

bool EnvFlag(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0 || std::strcmp(env, "OFF") == 0);
}

/// Deadline-less queries sort after every deadline.
uint64_t EffectiveDeadline(const QuerySession& s) {
  return s.deadline_ns() == 0 ? UINT64_MAX : s.deadline_ns();
}

}  // namespace

SessionOptions SessionOptions::FromEnv() {
  SessionOptions options;
  options.max_sessions = EnvSize("HYTAP_MAX_SESSIONS", options.max_sessions);
  options.queue_capacity =
      EnvSize("HYTAP_SESSION_QUEUE_CAP", options.queue_capacity);
  options.default_threads = uint32_t(
      EnvSize("HYTAP_SESSION_THREADS", options.default_threads));
  options.session_frames =
      EnvSize("HYTAP_SESSION_FRAMES", options.session_frames);
  options.retier_on_idle =
      EnvFlag("HYTAP_RETIER_ON_IDLE", options.retier_on_idle);
  return options;
}

QueryResult QuerySession::Await() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
  return result_;
}

bool QuerySession::Done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void QuerySession::Cancel() {
  stop_.store(true, std::memory_order_relaxed);
}

uint64_t QuerySession::dispatch_index() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dispatch_index_;
}

bool SessionManager::EdfOrder::operator()(const SessionHandle& a,
                                          const SessionHandle& b) const {
  const uint64_t da = EffectiveDeadline(*a);
  const uint64_t db = EffectiveDeadline(*b);
  if (da != db) return da < db;
  return a->ticket() < b->ticket();  // FIFO among equal deadlines
}

SessionManager::SessionManager(TieredTable* table, SessionOptions options)
    : table_(table), options_(options) {
  HYTAP_ASSERT(table != nullptr, "serving requires a table");
  HYTAP_ASSERT(options_.max_sessions >= 1, "max_sessions must be >= 1");
  HYTAP_ASSERT(options_.queue_capacity >= 1, "queue_capacity must be >= 1");
  if (options_.default_threads == 0) options_.default_threads = 1;
  workers_.reserve(options_.max_sessions);
  for (size_t i = 0; i < options_.max_sessions; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SessionManager::~SessionManager() {
  {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    stopping_ = true;
  }
  dispatch_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

uint64_t SessionManager::NowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

StatusOr<SessionHandle> SessionManager::Submit(const Query& query,
                                               const SubmitOptions& opts) {
  SessionMetrics& metrics = SessionMetrics::Get();
  metrics.submitted->Add();
  SessionHandle s(new QuerySession());
  s->query_ = query;
  s->class_ = opts.query_class;
  s->deadline_ns_ = opts.deadline_ns;
  s->threads_ = opts.threads != 0 ? opts.threads : options_.default_threads;
  s->submit_ns_ = NowNs();
  {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    if (stopping_) {
      metrics.rejected->Add();
      FlightRecorder::Global().Record(
          FlightEventType::kSessionReject,
          uint16_t(StatusCode::kFailedPrecondition), 0, 0, 0,
          uint64_t(opts.query_class));
      return Status::FailedPrecondition("session manager is shutting down");
    }
    // Admission control: reject before a ticket is assigned, so the ticket
    // sequence (and with it every downstream seed) only counts admitted
    // queries.
    if (queued_count_ >= options_.queue_capacity) {
      metrics.rejected->Add();
      FlightRecorder::Global().Record(
          FlightEventType::kSessionReject,
          uint16_t(StatusCode::kResourceExhausted), 0, 0, 0,
          uint64_t(opts.query_class));
      return Status::ResourceExhausted("session admission queue is full");
    }
    // Ticket, snapshot, and delta bound are captured atomically under the
    // submit mutex — the core of session-hermetic execution. ExecuteWrite
    // holds the same mutex, so a query's snapshot can never straddle a
    // write.
    s->ticket_ = next_ticket_++;
    s->txn_ = table_->Begin();
    s->delta_limit_ = table_->table().delta_row_count();
    queues_[size_t(s->class_)].insert(s);
    ++queued_count_;
    metrics.queued->Set(int64_t(queued_count_));
    // Admit events carry only submit-time-deterministic fields (ticket,
    // class, deadline) — never queue depth or clocks — so flight dumps stay
    // bit-identical across worker counts.
    FlightRecorder::Global().Record(FlightEventType::kSessionAdmit, 0,
                                    s->ticket_, 0, 0, uint64_t(s->class_),
                                    s->deadline_ns_);
  }
  metrics.admitted->Add();
  dispatch_cv_.notify_one();
  return s;
}

QueryResult SessionManager::Execute(const Query& query,
                                    const SubmitOptions& opts) {
  StatusOr<SessionHandle> s = Submit(query, opts);
  if (!s.ok()) {
    QueryResult result;
    result.status = s.status();
    return result;
  }
  return (*s)->Await();
}

Status SessionManager::ExecuteWrite(const std::function<Status()>& write) {
  // Lock order: submit mutex (stops admission + dispatch), then the write
  // gate exclusively (waits for in-flight queries, which never take the
  // submit mutex while holding the gate).
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  std::unique_lock<std::shared_mutex> gate(rw_gate_);
  return write();
}

void SessionManager::Drain() {
  std::unique_lock<std::mutex> lock(submit_mutex_);
  drain_cv_.wait(lock,
                 [this] { return queued_count_ == 0 && in_flight_ == 0; });
}

size_t SessionManager::queued() const {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  return queued_count_;
}

size_t SessionManager::in_flight() const {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  return in_flight_;
}

uint64_t SessionManager::tickets_issued() const {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  return next_ticket_;
}

void SessionManager::WorkerLoop() {
  SessionMetrics& metrics = SessionMetrics::Get();
  for (;;) {
    SessionHandle s;
    uint64_t dispatch_index = 0;
    {
      std::unique_lock<std::mutex> lock(submit_mutex_);
      dispatch_cv_.wait(
          lock, [this] { return stopping_ || queued_count_ > 0; });
      if (queued_count_ == 0) return;  // stopping and fully drained
      // Class priority first (OLTP before OLAP), earliest deadline within
      // the class, ticket order among equal deadlines.
      for (auto& queue : queues_) {
        if (queue.empty()) continue;
        s = *queue.begin();
        queue.erase(queue.begin());
        break;
      }
      --queued_count_;
      ++in_flight_;
      dispatch_index = next_dispatch_index_++;
      metrics.queued->Set(int64_t(queued_count_));
      metrics.inflight->Set(int64_t(in_flight_));
    }
    metrics.QueueWaitFor(s->class_)->Observe(NowNs() - s->submit_ns_);
    if (s->stop_.load(std::memory_order_relaxed)) {
      // Cancelled while queued: never executes, no partial results. The
      // ticket still advances the recorder (recording nothing) so later
      // tickets are not blocked behind it.
      QueryResult result;
      result.status = Status::Cancelled("session cancelled while queued");
      metrics.cancelled->Add();
      RecordInOrder(s->ticket_, false, false, s->query_, QueryObservation(),
                    false, s->class_, StatusCode::kCancelled, PhaseVector(),
                    0, nullptr);
      FinishSession(s, std::move(result), dispatch_index);
    } else if (s->deadline_ns_ != 0 && NowNs() > s->deadline_ns_) {
      // Late: shed instead of dispatched (EDF makes this the query that
      // would miss anyway — earlier deadlines dispatched first).
      QueryResult result;
      result.status =
          Status::DeadlineExceeded("admission deadline passed before dispatch");
      metrics.shed_deadline->Add();
      RecordInOrder(s->ticket_, false, false, s->query_, QueryObservation(),
                    false, s->class_, StatusCode::kDeadlineExceeded,
                    PhaseVector(), 0, nullptr);
      FinishSession(s, std::move(result), dispatch_index);
    } else {
      // Dispatch events, like admit events, carry only ticket + class: the
      // dispatch *index* varies with worker interleaving and would break
      // dump bit-identity.
      FlightRecorder::Global().Record(FlightEventType::kSessionDispatch, 0,
                                      s->ticket_, 0, 0, uint64_t(s->class_));
      RunSession(s, dispatch_index);
    }
    bool idle = false;
    {
      std::lock_guard<std::mutex> lock(submit_mutex_);
      --in_flight_;
      metrics.inflight->Set(int64_t(in_flight_));
      if (queued_count_ == 0 && in_flight_ == 0) {
        drain_cv_.notify_all();
        idle = true;
      }
    }
    // retier_ is re-checked under the submit mutex inside TryIdleTick.
    if (idle && options_.retier_on_idle) TryIdleTick();
  }
}

void SessionManager::set_slo_monitor(SloMonitor* slo) {
  std::lock_guard<std::mutex> lock(record_mutex_);
  slo_ = slo;
}

void SessionManager::set_latency_profiler(LatencyProfiler* profiler) {
  std::lock_guard<std::mutex> lock(record_mutex_);
  profiler_ = profiler;
}

void SessionManager::set_retier_daemon(RetierDaemon* daemon) {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  retier_ = daemon;
}

bool SessionManager::InExclusiveWrite() { return t_in_exclusive_write; }

void SessionManager::TryIdleTick() {
  std::unique_lock<std::mutex> submit_lock(submit_mutex_, std::try_to_lock);
  if (!submit_lock.owns_lock()) return;
  if (stopping_ || queued_count_ != 0 || in_flight_ != 0 ||
      retier_ == nullptr) {
    return;
  }
  // At most one idle tick per workload-monitor window: the daemon's
  // decisions are keyed to the window index (one evaluation per window,
  // per-window byte budgets), so "ticked in window w" — not how many idle
  // moments occurred or which worker saw them — determines re-tiering
  // behavior. windows_started() is stable here: no query is running.
  const uint64_t window = table_->monitor().windows_started();
  if (window == last_idle_tick_window_) return;
  last_idle_tick_window_ = window;
  // With the submit mutex held and nothing in flight, no reader holds the
  // gate (workers release it before decrementing in_flight_); take it
  // exclusively so the tick's migration steps run write-isolated.
  std::unique_lock<std::shared_mutex> gate(rw_gate_, std::try_to_lock);
  if (!gate.owns_lock()) return;
  // The daemon's migration steps call back into TieredTable::ApplyPlacement
  // / MergeDelta, which normally Drain() + ExecuteWrite() — both self-
  // deadlock here. The thread-local flag reroutes them to the locked
  // variants directly.
  t_in_exclusive_write = true;
  retier_->Tick();
  t_in_exclusive_write = false;
  ++idle_ticks_;
}

uint64_t SessionManager::idle_ticks() const {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  return idle_ticks_;
}

void SessionManager::RunSession(const SessionHandle& s,
                                uint64_t dispatch_index) {
  SessionMetrics& metrics = SessionMetrics::Get();
  // Shared gate: writes wait for us, we never start while a write runs.
  std::shared_lock<std::shared_mutex> gate(rw_gate_);
  // Session-private cold page cache with ticket-seeded timing and fault
  // streams: the query's hit/miss sequence, device jitter, and injected
  // faults depend only on its ticket, never on what other sessions did to
  // the shared cache in the meantime.
  BufferManager private_cache(&table_->store(), options_.session_frames);
  SecondaryStore::ReadStream stream = table_->store().MakeStream(s->ticket_);
  private_cache.set_stream(&stream);

  ExecOptions eopts;
  eopts.threads = s->threads_;
  eopts.stop = &s->stop_;
  eopts.buffers = &private_cache;
  eopts.delta_limit = s->delta_limit_;
  QueryObservation obs;
  bool obs_filled = false;
  eopts.observation = &obs;
  eopts.observation_filled = &obs_filled;
  // Phase decomposition of this execution; all-zero (and skipped by the
  // executor) when HYTAP_PHASE_ACCOUNTING is off.
  PhaseVector phases;
  eopts.phases = &phases;

  QueryResult result;
  {
    // OLTP morsels preempt OLAP morsels at helper-yield points.
    ThreadPool::PriorityGuard priority(s->class_ == QueryClass::kOltp
                                           ? ThreadPool::TaskPriority::kHigh
                                           : ThreadPool::TaskPriority::kNormal);
    result = table_->executor().Execute(s->txn_, s->query_, eopts);
  }
  gate.unlock();

  const bool was_cancelled = result.status.code() == StatusCode::kCancelled;
  if (was_cancelled) {
    metrics.cancelled->Add();
  } else {
    metrics.completed->Add();
    metrics.LatencyFor(s->class_)->Observe(NowNs() - s->submit_ns_);
  }
  // Executed sessions (even failed ones, matching the synchronous path)
  // replay their observation in ticket order; cancelled executions record
  // nothing — a serial replay without the cancel would observe different
  // work, so the monitor only ever sees completed executions.
  RecordInOrder(s->ticket_, !was_cancelled, /*executed=*/true, s->query_,
                std::move(obs), obs_filled, s->class_, result.status.code(),
                phases, result.io.TotalNs(), result.trace);
  FinishSession(s, std::move(result), dispatch_index);
}

void SessionManager::FinishSession(const SessionHandle& s, QueryResult result,
                                   uint64_t dispatch_index) {
  {
    std::lock_guard<std::mutex> lock(s->mutex_);
    s->result_ = std::move(result);
    s->dispatch_index_ = dispatch_index;
    s->done_ = true;
  }
  s->cv_.notify_all();
}

void SessionManager::RecordInOrder(uint64_t ticket, bool record, bool executed,
                                   const Query& query, QueryObservation obs,
                                   bool obs_filled, QueryClass cls,
                                   StatusCode status,
                                   const PhaseVector& phases,
                                   uint64_t exec_sim_ns,
                                   std::shared_ptr<const TraceSpan> trace) {
  std::lock_guard<std::mutex> lock(record_mutex_);
  RecordItem item;
  item.record = record;
  item.executed = executed;
  if (record) {
    item.query = query;
    item.obs = std::move(obs);
    item.obs_filled = obs_filled;
  }
  item.cls = cls;
  item.status = status;
  item.phases = phases;
  item.exec_sim_ns = exec_sim_ns;
  item.trace = std::move(trace);
  record_buffer_.emplace(ticket, std::move(item));
  // Flush the contiguous prefix: observations reach the monitor, the plan
  // cache, the flight recorder, the SLO monitor, and the latency profiler in
  // ticket order, so their window series and aggregates are deterministic.
  const bool phases_on = profiler_ != nullptr && PhaseAccountingEnabled();
  const bool stamp =
      FlightRecorderEnabled() || slo_ != nullptr || phases_on;
  auto it = record_buffer_.find(next_record_ticket_);
  while (it != record_buffer_.end()) {
    const RecordItem& flushed = it->second;
    if (flushed.record) {
      table_->RecordExecution(flushed.query, flushed.obs, flushed.obs_filled);
    }
    if (stamp) {
      // Terminal events are stamped *here*, after the ticket-order record:
      // the monitor's window index and simulated clock are deterministic at
      // this point regardless of worker interleaving.
      const uint64_t window = table_->monitor().windows_started();
      const uint64_t sim_ns = table_->monitor().now_ns();
      FlightEventType type = FlightEventType::kSessionComplete;
      // Event operand b by type: completes carry the end-to-end simulated
      // latency, cancels the simulated ns accrued before the abort, sheds
      // their simulated queue wait — identically 0, queueing is
      // instantaneous on the simulated clock (never a latency).
      uint64_t b = flushed.exec_sim_ns;
      if (flushed.status == StatusCode::kCancelled) {
        type = FlightEventType::kSessionCancel;
      } else if (!flushed.record) {
        type = FlightEventType::kSessionShed;
        b = 0;
      }
      FlightRecorder::Global().Record(type, uint16_t(flushed.status),
                                      it->first, window, sim_ns,
                                      uint64_t(flushed.cls), b);
      // Cancellation is caller-initiated, not a service failure: it does
      // not burn SLO budget. Sheds and failed executions do.
      if (slo_ != nullptr && flushed.status != StatusCode::kCancelled) {
        const uint64_t latency =
            flushed.obs_filled ? flushed.obs.simulated_ns : 0;
        slo_->Observe(flushed.cls, latency,
                      flushed.status != StatusCode::kOk, window, sim_ns,
                      it->first);
      }
      if (phases_on) {
        profiler_->Observe(it->first, flushed.cls, flushed.status,
                           flushed.executed, flushed.exec_sim_ns,
                           flushed.phases, flushed.trace.get(), window,
                           sim_ns);
      }
    }
    record_buffer_.erase(it);
    it = record_buffer_.find(++next_record_ticket_);
  }
}

}  // namespace hytap

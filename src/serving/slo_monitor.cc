#include "serving/slo_monitor.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/flight_recorder.h"
#include "common/metrics.h"

namespace hytap {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<uint64_t>(parsed);
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

struct SloMetrics {
  Counter* observations;
  Counter* violations;
  Counter* breaches;
  Counter* clears;
  Gauge* oltp_burn_milli;
  Gauge* olap_burn_milli;
  Gauge* oltp_breached;
  Gauge* olap_breached;
  static SloMetrics& Get() {
    auto& registry = MetricsRegistry::Global();
    static SloMetrics m{
        registry.GetCounter("hytap_slo_observations_total"),
        registry.GetCounter("hytap_slo_violations_total"),
        registry.GetCounter("hytap_slo_breaches_total"),
        registry.GetCounter("hytap_slo_clears_total"),
        registry.GetGauge("hytap_slo_oltp_burn_milli"),
        registry.GetGauge("hytap_slo_olap_burn_milli"),
        registry.GetGauge("hytap_slo_oltp_breached"),
        registry.GetGauge("hytap_slo_olap_breached")};
    return m;
  }
};

}  // namespace

SloMonitor::Options SloMonitor::Options::FromEnv() {
  Options options;
  options.oltp_ns = EnvU64("HYTAP_SLO_OLTP_NS", options.oltp_ns);
  options.olap_ns = EnvU64("HYTAP_SLO_OLAP_NS", options.olap_ns);
  options.target_ppm = std::min<uint64_t>(
      EnvU64("HYTAP_SLO_TARGET_PPM", options.target_ppm), 999'999);
  options.burn_threshold =
      EnvDouble("HYTAP_SLO_BURN_THRESHOLD", options.burn_threshold);
  options.fast_windows = std::max<size_t>(
      1, EnvU64("HYTAP_SLO_FAST_WINDOWS", options.fast_windows));
  options.slow_windows = std::max<size_t>(
      options.fast_windows,
      EnvU64("HYTAP_SLO_SLOW_WINDOWS", options.slow_windows));
  return options;
}

SloMonitor::SloMonitor(Options options)
    : options_(options),
      budget_(std::max(1e-9, (1e6 - static_cast<double>(std::min<uint64_t>(
                                        options.target_ppm, 999'999))) /
                                 1e6)) {}

void SloMonitor::Observe(QueryClass cls, uint64_t sim_latency_ns, bool failed,
                         uint64_t window, uint64_t sim_ns, uint64_t ticket) {
  uint64_t objective =
      cls == QueryClass::kOltp ? options_.oltp_ns : options_.olap_ns;
  bool bad = failed || sim_latency_ns > objective;
  std::lock_guard<std::mutex> lock(mutex_);
  ClassState& state = classes_[static_cast<size_t>(cls)];
  if (state.windows.empty() || state.windows.back().index < window) {
    state.windows.push_back(WindowBucket{window, 0, 0});
    while (state.windows.size() > options_.slow_windows) {
      state.windows.pop_front();
    }
  }
  WindowBucket& bucket = state.windows.back();
  if (bad) {
    ++bucket.bad;
    ++state.violations;
    SloMetrics::Get().violations->Add();
  } else {
    ++bucket.good;
  }
  ++state.observations;
  SloMetrics::Get().observations->Add();
  EvaluateLocked(cls, window, sim_ns, ticket);
}

double SloMonitor::BurnOver(const ClassState& state, size_t span) const {
  uint64_t good = 0;
  uint64_t bad = 0;
  size_t counted = 0;
  for (auto it = state.windows.rbegin();
       it != state.windows.rend() && counted < span; ++it, ++counted) {
    good += it->good;
    bad += it->bad;
  }
  uint64_t total = good + bad;
  if (total == 0) return 0.0;
  double bad_fraction = static_cast<double>(bad) / static_cast<double>(total);
  return bad_fraction / budget_;
}

void SloMonitor::EvaluateLocked(QueryClass cls, uint64_t window,
                                uint64_t sim_ns, uint64_t ticket) {
  ClassState& state = classes_[static_cast<size_t>(cls)];
  state.fast_burn = BurnOver(state, options_.fast_windows);
  state.slow_burn = BurnOver(state, options_.slow_windows);
  bool breached = state.fast_burn >= options_.burn_threshold &&
                  state.slow_burn >= options_.burn_threshold;
  if (breached && !state.breached) {
    state.breached = true;
    ++state.breaches;
    SloMetrics::Get().breaches->Add();
    uint64_t burn_milli =
        static_cast<uint64_t>(std::min(state.fast_burn, 1e15) * 1000.0);
    FlightRecorder::Global().Record(
        FlightEventType::kSloBreach, static_cast<uint16_t>(window & 0xffff),
        ticket, window, sim_ns, static_cast<uint64_t>(cls), burn_milli);
    FlightRecorder::Global().Anomaly(
        AnomalyKind::kSloBreach,
        cls == QueryClass::kOltp ? "slo_breach_oltp" : "slo_breach_olap",
        ticket, window, sim_ns, static_cast<uint64_t>(cls), burn_milli);
  } else if (!breached && state.breached) {
    state.breached = false;
    ++state.clears;
    SloMetrics::Get().clears->Add();
    FlightRecorder::Global().Record(FlightEventType::kSloClear, 0, ticket,
                                    window, sim_ns,
                                    static_cast<uint64_t>(cls));
  }
}

SloMonitor::ClassSnapshot SloMonitor::Snapshot(QueryClass cls) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const ClassState& state = classes_[static_cast<size_t>(cls)];
  ClassSnapshot snapshot;
  snapshot.observations = state.observations;
  snapshot.violations = state.violations;
  snapshot.fast_burn = state.fast_burn;
  snapshot.slow_burn = state.slow_burn;
  snapshot.breached = state.breached;
  snapshot.breaches = state.breaches;
  snapshot.clears = state.clears;
  return snapshot;
}

bool SloMonitor::breached(QueryClass cls) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return classes_[static_cast<size_t>(cls)].breached;
}

void SloMonitor::ExportGauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const ClassState& oltp = classes_[static_cast<size_t>(QueryClass::kOltp)];
  const ClassState& olap = classes_[static_cast<size_t>(QueryClass::kOlap)];
  auto milli = [](double burn) {
    return static_cast<int64_t>(std::min(burn, 1e15) * 1000.0);
  };
  SloMetrics::Get().oltp_burn_milli->Set(milli(oltp.fast_burn));
  SloMetrics::Get().olap_burn_milli->Set(milli(olap.fast_burn));
  SloMetrics::Get().oltp_breached->Set(oltp.breached ? 1 : 0);
  SloMetrics::Get().olap_breached->Set(olap.breached ? 1 : 0);
}

void SloMonitor::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (ClassState& state : classes_) {
    state = ClassState{};
  }
}

}  // namespace hytap

#ifndef HYTAP_SERVING_SESSION_MANAGER_H_
#define HYTAP_SERVING_SESSION_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "txn/transaction_manager.h"

namespace hytap {

class TieredTable;
class SloMonitor;
class RetierDaemon;
class LatencyProfiler;

/// Priority class of a submitted query. OLTP dispatches before OLAP and its
/// morsels preempt OLAP morsels at the thread-pool level (TaskPriority).
enum class QueryClass { kOltp = 0, kOlap = 1 };
inline constexpr size_t kQueryClassCount = 2;

/// Serving-layer configuration (DESIGN.md §15).
struct SessionOptions {
  /// Maximum concurrently executing queries — the serving worker count
  /// (HYTAP_MAX_SESSIONS, default 4).
  size_t max_sessions = 4;
  /// Bounded admission queue: Submit() rejects with kResourceExhausted once
  /// this many queries are waiting (HYTAP_SESSION_QUEUE_CAP, default 256).
  size_t queue_capacity = 256;
  /// Default ParallelFor width per query when SubmitOptions::threads is 0
  /// (HYTAP_SESSION_THREADS, default 1).
  uint32_t default_threads = 1;
  /// Frames in each query's private page cache (HYTAP_SESSION_FRAMES,
  /// default 64). Private cold caches are what make a query's IoStats a pure
  /// function of its ticket — see the determinism note on SessionManager.
  size_t session_frames = 64;
  /// Drive the attached re-tiering daemon's Tick() from workers' idle
  /// periods — at most once per workload-monitor window, so tick placement
  /// is deterministic by window index (HYTAP_RETIER_ON_IDLE, default off).
  bool retier_on_idle = false;

  static SessionOptions FromEnv();
};

/// Per-submission options.
struct SubmitOptions {
  QueryClass query_class = QueryClass::kOlap;
  /// Absolute steady-clock deadline in ns (SessionManager::NowNs() domain;
  /// 0 = none). A query still queued past its deadline is shed with
  /// kDeadlineExceeded instead of dispatched.
  uint64_t deadline_ns = 0;
  /// ParallelFor width for this query (0 = SessionOptions::default_threads).
  uint32_t threads = 0;
};

/// Handle to one admitted query. Shared between the caller and the serving
/// workers; all methods are thread-safe.
class QuerySession {
 public:
  /// Blocks until the query reaches a terminal state and returns its result.
  /// Terminal states: executed (any executor status), shed
  /// (kDeadlineExceeded), or cancelled (kCancelled, with no partial
  /// results). Idempotent.
  QueryResult Await();

  /// True once the session is terminal (non-blocking).
  bool Done() const;

  /// Revokes the query: still-queued sessions finish as kCancelled without
  /// executing; running sessions observe the stop token at the executor's
  /// next serial control point and abort with kCancelled and no partial
  /// results. Idempotent; a no-op once terminal.
  void Cancel();

  /// Admission ticket — the global submission sequence number. Results and
  /// fault schedules are a pure function of (table state, query, ticket).
  uint64_t ticket() const { return ticket_; }

  /// Position in the dispatch order (0-based), valid once Done(). Tests use
  /// it to assert EDF-within-class scheduling.
  uint64_t dispatch_index() const;

  QueryClass query_class() const { return class_; }
  /// Absolute deadline (0 = none), as submitted.
  uint64_t deadline_ns() const { return deadline_ns_; }

 private:
  friend class SessionManager;

  QuerySession() = default;

  // Immutable after Submit().
  Query query_;
  QueryClass class_ = QueryClass::kOlap;
  uint64_t deadline_ns_ = 0;
  uint32_t threads_ = 1;
  uint64_t ticket_ = 0;
  Transaction txn_;        // snapshot captured at submit
  size_t delta_limit_ = 0; // delta row count at submit
  uint64_t submit_ns_ = 0; // steady clock at submit (metrics only)

  std::atomic<bool> stop_{false};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  uint64_t dispatch_index_ = 0;
  QueryResult result_;
};

using SessionHandle = std::shared_ptr<QuerySession>;

/// High-concurrency serving front end over one TieredTable (DESIGN.md §15):
/// admission control, earliest-deadline-first dispatch within two priority
/// classes, per-query cancellation, and true inter-query parallelism on the
/// shared thread pool.
///
/// Determinism ("session-hermetic execution"): every admitted query captures
/// its MVCC snapshot, its delta bound, and its ticket atomically at submit,
/// and executes against a private cold page cache whose device-timing and
/// fault-injection streams are seeded from the ticket alone
/// (SecondaryStore::MakeStream). Writes run exclusively between queries
/// (ExecuteWrite), so the table state a query sees is determined by its
/// ticket. A query's complete result — positions, rows, aggregates, IoStats,
/// injected faults — is therefore a pure function of (submission history,
/// ticket), independent of worker count and dispatch interleaving; the
/// concurrent run is bit-identical to a serial submit-and-await replay
/// (session_test / bench_serving assert this).
///
/// Observations are replayed into the workload monitor and plan cache in
/// ticket order through a reorder buffer, so the PR 5 window time series and
/// the PR 7 forecasting inputs are also interleaving-independent.
class SessionManager {
 public:
  SessionManager(TieredTable* table, SessionOptions options);

  /// Drains the queue, completes in-flight queries, and joins the workers.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admits `query` into the serving queue. Fails with kResourceExhausted —
  /// before a ticket is assigned — when the admission queue is full, and
  /// with kFailedPrecondition after shutdown began.
  StatusOr<SessionHandle> Submit(const Query& query,
                                 const SubmitOptions& opts = SubmitOptions());

  /// Convenience: Submit + Await. On admission failure the result carries
  /// the rejection status.
  QueryResult Execute(const Query& query,
                      const SubmitOptions& opts = SubmitOptions());

  /// Runs `write` while no query is admitted or executing: Submit() blocks
  /// for the duration and the call waits for in-flight queries to release
  /// the read gate. Commit order therefore equals submission order. Meant
  /// for OLTP writes (Insert/Delete), whose effects are invisible to queued
  /// readers anyway (MVCC snapshot + delta bound); structural rewrites
  /// (MergeDelta, ApplyPlacement) should Drain() first — TieredTable routes
  /// them accordingly.
  Status ExecuteWrite(const std::function<Status()>& write);

  /// Blocks until the admission queue is empty and no query is in flight.
  void Drain();

  /// Steady-clock nanoseconds — the domain of SubmitOptions::deadline_ns.
  static uint64_t NowNs();

  /// Attaches an SLO monitor (not owned; null detaches). It is fed one
  /// terminal outcome per ticket from the reorder-buffer flush, in ticket
  /// order, so burn-rate state is deterministic across worker counts.
  void set_slo_monitor(SloMonitor* slo);
  /// Attaches a latency profiler (not owned; null detaches). Like the SLO
  /// monitor it is fed from the flush in ticket order, carrying each
  /// ticket's phase vector and trace tree (when tracing is on).
  void set_latency_profiler(LatencyProfiler* profiler);
  /// Attaches a re-tiering daemon (not owned; null detaches) ticked from
  /// workers' idle periods when options().retier_on_idle is set.
  void set_retier_daemon(RetierDaemon* daemon);

  /// True while the calling thread runs a structural write from inside the
  /// serving layer's own exclusive section (the idle re-tier tick already
  /// holds the submit mutex and the write gate). TieredTable consults it to
  /// skip the re-entrant Drain()/ExecuteWrite() that would self-deadlock.
  static bool InExclusiveWrite();

  const SessionOptions& options() const { return options_; }

  /// Introspection (tests, leak checks).
  size_t queued() const;
  size_t in_flight() const;
  /// Tickets issued so far.
  uint64_t tickets_issued() const;
  /// Re-tier ticks fired from idle workers so far. Acquires the submit
  /// mutex, so once a caller observes the count it also observes every
  /// effect of those ticks.
  uint64_t idle_ticks() const;

 private:
  struct EdfOrder {
    bool operator()(const SessionHandle& a, const SessionHandle& b) const;
  };

  void WorkerLoop();
  /// Executes one dequeued session end to end (gate, private cache, stream,
  /// executor) and finishes it.
  void RunSession(const SessionHandle& s, uint64_t dispatch_index);
  /// Moves `s` to its terminal state and wakes Await()ers.
  void FinishSession(const SessionHandle& s, QueryResult result,
                     uint64_t dispatch_index);
  /// Buffers one terminal ticket and flushes the reorder buffer: contiguous
  /// tickets record into the table (monitor + plan cache), emit terminal
  /// flight events, and feed the SLO monitor in ticket order. `record` is
  /// false for sessions that never executed (shed / cancelled while queued);
  /// `status` is the session's terminal status code.
  /// `executed` is true when the ticket reached the executor (even if the
  /// execution was then cancelled or failed); `record` additionally requires
  /// a non-cancelled outcome.
  void RecordInOrder(uint64_t ticket, bool record, bool executed,
                     const Query& query, QueryObservation obs, bool obs_filled,
                     QueryClass cls, StatusCode status,
                     const PhaseVector& phases, uint64_t exec_sim_ns,
                     std::shared_ptr<const TraceSpan> trace);
  /// Runs one re-tier tick if the table has been idle-eligible: takes the
  /// submit mutex and the write gate itself (no queries queued or running),
  /// at most once per workload-monitor window.
  void TryIdleTick();

  TieredTable* table_;
  SessionOptions options_;

  /// Guards admission state: queues, ticket counter, in-flight count.
  /// ExecuteWrite holds it for the write's duration so no ticket can be
  /// issued or dispatched while table state changes.
  mutable std::mutex submit_mutex_;
  std::condition_variable dispatch_cv_;  // workers: work available / stop
  std::condition_variable drain_cv_;     // Drain(): queue + in-flight empty
  std::set<SessionHandle, EdfOrder> queues_[kQueryClassCount];
  size_t queued_count_ = 0;
  size_t in_flight_ = 0;
  uint64_t next_ticket_ = 0;
  uint64_t next_dispatch_index_ = 0;
  bool stopping_ = false;

  /// Readers (query executions) hold it shared; ExecuteWrite exclusively.
  std::shared_mutex rw_gate_;

  /// Ticket-order observation replay.
  struct RecordItem {
    bool record = false;
    Query query;
    QueryObservation obs;
    bool obs_filled = false;
    QueryClass cls = QueryClass::kOlap;
    StatusCode status = StatusCode::kOk;
    /// True when the ticket reached the executor (record is false for
    /// cancelled executions, which still carry their partial accrual here).
    bool executed = false;
    /// Phase decomposition of the execution (all-zero when it never ran or
    /// phase accounting is off) and the execution's total simulated ns —
    /// phases.Sum() == exec_sim_ns is the profiler's core invariant.
    PhaseVector phases;
    uint64_t exec_sim_ns = 0;
    /// Trace tree for tail critical-path walks (null unless tracing is on).
    std::shared_ptr<const TraceSpan> trace;
  };
  std::mutex record_mutex_;
  std::map<uint64_t, RecordItem> record_buffer_;
  uint64_t next_record_ticket_ = 0;

  /// Fed from the flush under record_mutex_ (null = detached).
  SloMonitor* slo_ = nullptr;
  /// Fed from the flush under record_mutex_ (null = detached).
  LatencyProfiler* profiler_ = nullptr;
  /// Ticked from idle workers when options_.retier_on_idle (null = off).
  RetierDaemon* retier_ = nullptr;
  /// Monitor window of the last idle tick (guarded by submit_mutex_;
  /// windows_started() starts at 1, so 0 = never ticked).
  uint64_t last_idle_tick_window_ = 0;
  /// Count of idle ticks fired (guarded by submit_mutex_).
  uint64_t idle_ticks_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace hytap

#endif  // HYTAP_SERVING_SESSION_MANAGER_H_

#ifndef HYTAP_SERVING_SLO_MONITOR_H_
#define HYTAP_SERVING_SLO_MONITOR_H_

// Per-priority-class latency SLOs with multi-window burn-rate evaluation
// (DESIGN.md §16).
//
// Each priority class has a latency objective (HYTAP_SLO_OLTP_NS /
// HYTAP_SLO_OLAP_NS) and a shared availability target in good-query ppm
// (HYTAP_SLO_TARGET_PPM). Terminal query outcomes are fed in ticket order
// from the session manager's reorder-buffer flush, bucketed into the PR 5
// workload-monitor window clock (window index = monitor windows_started()
// at record time), so burn rates and breach transitions are deterministic
// across worker counts.
//
// Burn rate follows the SRE multi-window pattern: the error budget is
// (1e6 - target_ppm) / 1e6; a class breaches when BOTH the fast window span
// (newest HYTAP_SLO_FAST_WINDOWS windows) and the slow span (newest
// HYTAP_SLO_SLOW_WINDOWS windows) burn at >= HYTAP_SLO_BURN_THRESHOLD times
// budget. Breach transitions fire kSloBreach flight events and an
// anomaly-triggered dump; recovery fires kSloClear.

#include <cstdint>
#include <deque>
#include <mutex>

#include "serving/session_manager.h"

namespace hytap {

class SloMonitor {
 public:
  struct Options {
    /// Latency objective per class (simulated ns). A query is "bad" when it
    /// fails or its simulated latency exceeds its class objective.
    uint64_t oltp_ns = 2'000'000;         // HYTAP_SLO_OLTP_NS, 2 ms
    uint64_t olap_ns = 2'000'000'000;     // HYTAP_SLO_OLAP_NS, 2 s
    /// Availability target in good-query ppm (HYTAP_SLO_TARGET_PPM,
    /// default 999000 = 99.9%). Error budget = (1e6 - target) / 1e6.
    uint64_t target_ppm = 999'000;
    /// Breach when fast AND slow burn rates are >= this multiple of budget
    /// (HYTAP_SLO_BURN_THRESHOLD, default 1.0).
    double burn_threshold = 1.0;
    /// Window spans of the two burn evaluations (HYTAP_SLO_FAST_WINDOWS /
    /// HYTAP_SLO_SLOW_WINDOWS, defaults 1 and 8, min 1 each).
    size_t fast_windows = 1;
    size_t slow_windows = 8;

    static Options FromEnv();
  };

  /// Per-class point-in-time state for tests/CLIs.
  struct ClassSnapshot {
    uint64_t observations = 0;
    uint64_t violations = 0;  // bad queries (failed or over-objective)
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    bool breached = false;
    uint64_t breaches = 0;  // breach transitions so far
    uint64_t clears = 0;    // recovery transitions so far
  };

  explicit SloMonitor(Options options = Options::FromEnv());

  /// Feeds one terminal query outcome. `window` is the workload-monitor
  /// window index at record time (windows_started()), `sim_ns` the simulated
  /// clock, `ticket` the session ticket (both only stamp flight events).
  /// Must be called in ticket order (the serving flush guarantees this);
  /// internally serialized.
  void Observe(QueryClass cls, uint64_t sim_latency_ns, bool failed,
               uint64_t window, uint64_t sim_ns, uint64_t ticket);

  ClassSnapshot Snapshot(QueryClass cls) const;
  bool breached(QueryClass cls) const;

  /// Pushes hytap_slo_* gauges (burn rates, breached flags) into the metrics
  /// registry. Counters are updated inline by Observe().
  void ExportGauges() const;

  const Options& options() const { return options_; }

  /// Clears all window state and breach latches.
  void Reset();

 private:
  struct WindowBucket {
    uint64_t index = 0;
    uint64_t good = 0;
    uint64_t bad = 0;
  };
  struct ClassState {
    std::deque<WindowBucket> windows;  // oldest first, newest = back
    uint64_t observations = 0;
    uint64_t violations = 0;
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    bool breached = false;
    uint64_t breaches = 0;
    uint64_t clears = 0;
  };

  double BurnOver(const ClassState& state, size_t span) const;
  void EvaluateLocked(QueryClass cls, uint64_t window, uint64_t sim_ns,
                      uint64_t ticket);

  const Options options_;
  const double budget_;  // error budget fraction, floored at 1e-9

  mutable std::mutex mutex_;
  ClassState classes_[kQueryClassCount];
};

}  // namespace hytap

#endif  // HYTAP_SERVING_SLO_MONITOR_H_

#include "serving/latency_profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/assert.h"
#include "common/flight_recorder.h"

namespace hytap {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<uint64_t>(parsed);
}

const char* ClassName(QueryClass cls) {
  return cls == QueryClass::kOltp ? "oltp" : "olap";
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<size_t>(size_t(n), sizeof(buffer)));
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Per-(class, phase) latency histograms plus the profiler counters,
/// registered once and updated lock-free afterward.
struct PhaseMetrics {
  Counter* observations;
  Counter* attributions;
  Counter* attributions_dropped;
  HistogramMetric* phase_ns[kQueryClassCount][kQueryPhaseCount];

  static PhaseMetrics& Get() {
    static PhaseMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      PhaseMetrics out;
      out.observations = reg.GetCounter("hytap_phase_observations_total");
      out.attributions = reg.GetCounter("hytap_phase_attributions_total");
      out.attributions_dropped =
          reg.GetCounter("hytap_phase_attributions_dropped_total");
      const std::vector<uint64_t> bounds = DurationNsBuckets();
      for (size_t c = 0; c < kQueryClassCount; ++c) {
        for (size_t p = 0; p < kQueryPhaseCount; ++p) {
          std::string name = "hytap_phase_";
          name += ClassName(static_cast<QueryClass>(c));
          name += '_';
          name += QueryPhaseName(static_cast<QueryPhase>(p));
          name += "_ns";
          out.phase_ns[c][p] = reg.GetHistogram(name, bounds);
        }
      }
      return out;
    }();
    return m;
  }
};

/// Greedy descent from the root: at every level follow the child with the
/// largest inclusive simulated time (ties -> first child, which is the
/// earlier execution step), recording exclusive time and the selectivity
/// annotations the scan spans carry.
std::vector<LatencyProfiler::CriticalStep> WalkCriticalPath(
    const TraceSpan& root) {
  std::vector<LatencyProfiler::CriticalStep> path;
  const TraceSpan* node = &root;
  while (true) {
    LatencyProfiler::CriticalStep step;
    step.name = node->name;
    step.inclusive_ns = node->simulated_ns;
    uint64_t child_sum = 0;
    for (const TraceSpan& child : node->children) {
      child_sum += child.simulated_ns;
    }
    step.exclusive_ns =
        node->simulated_ns > child_sum ? node->simulated_ns - child_sum : 0;
    step.est_selectivity = node->Annotation("est_selectivity");
    step.actual_selectivity = node->Annotation("actual_selectivity");
    path.push_back(std::move(step));
    if (node->children.empty()) break;
    const TraceSpan* best = &node->children[0];
    for (const TraceSpan& child : node->children) {
      if (child.simulated_ns > best->simulated_ns) best = &child;
    }
    node = best;
  }
  return path;
}

}  // namespace

LatencyProfiler::Options LatencyProfiler::Options::FromEnv() {
  Options options;
  options.oltp_slo_ns = EnvU64("HYTAP_SLO_OLTP_NS", options.oltp_slo_ns);
  options.olap_slo_ns = EnvU64("HYTAP_SLO_OLAP_NS", options.olap_slo_ns);
  options.min_tail_samples =
      EnvU64("HYTAP_PHASE_MIN_TAIL_SAMPLES", options.min_tail_samples);
  options.max_attributions = size_t(
      EnvU64("HYTAP_PHASE_MAX_ATTRIBUTIONS", options.max_attributions));
  return options;
}

LatencyProfiler::LatencyProfiler(Options options) : options_(options) {
  const std::vector<uint64_t> bounds = DurationNsBuckets();
  for (ClassState& state : classes_) {
    state.latencies.bounds = bounds;
    state.latencies.counts.assign(bounds.size() + 1, 0);
  }
}

void LatencyProfiler::Observe(uint64_t ticket, QueryClass cls,
                              StatusCode status, bool executed,
                              uint64_t latency_ns, const PhaseVector& phases,
                              const TraceSpan* trace, uint64_t window,
                              uint64_t sim_ns) {
  if (!PhaseAccountingEnabled()) return;
  // The invariant the whole layer rests on: the phase vector partitions the
  // ticket's end-to-end simulated latency exactly, on every terminal path.
  HYTAP_ASSERT(phases.Sum() == latency_ns,
               "phase vector must sum to the simulated latency");
  HYTAP_ASSERT(executed || latency_ns == 0,
               "non-executed tickets accrue no simulated time");

  PhaseMetrics& metrics = PhaseMetrics::Get();
  metrics.observations->Add();

  std::lock_guard<std::mutex> lock(mutex_);
  ClassState& state = classes_[static_cast<size_t>(cls)];
  ++state.observations;
  if (!executed) {
    ++state.shed;
    return;
  }
  if (status == StatusCode::kCancelled) {
    // Where the stop token landed (and so the partial accrual) depends on
    // wall-clock timing; the invariant above still held, but the sample
    // would make the aggregates nondeterministic.
    ++state.cancelled;
    return;
  }
  ++state.executed;
  if (status != StatusCode::kOk) ++state.failed;
  state.latency_sum_ns += latency_ns;
  for (size_t p = 0; p < kQueryPhaseCount; ++p) {
    state.phase_sum.ns[p] += phases.ns[p];
    metrics.phase_ns[static_cast<size_t>(cls)][p]->Observe(phases.ns[p]);
  }

  // Tail test *before* folding this sample in, so the running p99 is the
  // one an operator would have seen when the ticket completed.
  const bool slo_breach =
      status != StatusCode::kOk || latency_ns > ObjectiveNs(cls);
  const bool p99_tail = state.latencies.count >= options_.min_tail_samples &&
                        latency_ns >= state.latencies.Quantile(0.99);

  size_t bucket = state.latencies.bounds.size();  // overflow
  for (size_t i = 0; i < state.latencies.bounds.size(); ++i) {
    if (latency_ns <= state.latencies.bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++state.latencies.counts[bucket];
  ++state.latencies.count;
  state.latencies.sum += latency_ns;

  if (!slo_breach && !p99_tail) return;
  ++state.tail;
  metrics.attributions->Add();

  Attribution attribution;
  attribution.ticket = ticket;
  attribution.cls = cls;
  attribution.status = status;
  attribution.latency_ns = latency_ns;
  attribution.slo_breach = slo_breach;
  attribution.p99_tail = p99_tail;
  attribution.phases = phases;
  attribution.ranked.resize(kQueryPhaseCount);
  for (size_t p = 0; p < kQueryPhaseCount; ++p) {
    attribution.ranked[p] = static_cast<QueryPhase>(p);
  }
  std::stable_sort(attribution.ranked.begin(), attribution.ranked.end(),
                   [&phases](QueryPhase a, QueryPhase b) {
                     return phases[a] > phases[b];
                   });
  attribution.dominant = attribution.ranked[0];
  if (trace != nullptr) {
    attribution.critical_path = WalkCriticalPath(*trace);
  }

  const uint16_t code =
      uint16_t(uint16_t(cls) << 2 | (p99_tail ? 2 : 0) | (slo_breach ? 1 : 0));
  FlightRecorder::Global().Record(
      FlightEventType::kPhaseAttribution, code, ticket, window, sim_ns,
      uint64_t(attribution.dominant), latency_ns);

  if (attributions_.size() < options_.max_attributions) {
    attributions_.push_back(std::move(attribution));
  } else {
    ++dropped_;
    metrics.attributions_dropped->Add();
  }
}

LatencyProfiler::ClassSnapshot LatencyProfiler::Snapshot(
    QueryClass cls) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const ClassState& state = classes_[static_cast<size_t>(cls)];
  ClassSnapshot out;
  out.observations = state.observations;
  out.executed = state.executed;
  out.shed = state.shed;
  out.cancelled = state.cancelled;
  out.failed = state.failed;
  out.tail = state.tail;
  out.latency_sum_ns = state.latency_sum_ns;
  out.phase_sum = state.phase_sum;
  out.latency_p50_ns = state.latencies.Quantile(0.50);
  out.latency_p99_ns = state.latencies.Quantile(0.99);
  out.latency_p999_ns = state.latencies.Quantile(0.999);
  return out;
}

std::vector<LatencyProfiler::Attribution> LatencyProfiler::Attributions()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return attributions_;
}

uint64_t LatencyProfiler::attributions_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string LatencyProfiler::ReportText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "latency phase report\n";
  for (size_t c = 0; c < kQueryClassCount; ++c) {
    const ClassState& state = classes_[c];
    AppendF(&out,
            "  class %s: observations=%" PRIu64 " executed=%" PRIu64
            " shed=%" PRIu64 " cancelled=%" PRIu64 " failed=%" PRIu64
            " tail=%" PRIu64 "\n",
            ClassName(static_cast<QueryClass>(c)), state.observations,
            state.executed, state.shed, state.cancelled, state.failed,
            state.tail);
    AppendF(&out,
            "    latency_ns: sum=%" PRIu64 " p50=%" PRIu64 " p99=%" PRIu64
            " p999=%" PRIu64 "\n",
            state.latency_sum_ns, state.latencies.Quantile(0.50),
            state.latencies.Quantile(0.99), state.latencies.Quantile(0.999));
    const uint64_t total = state.phase_sum.Sum();
    for (size_t p = 0; p < kQueryPhaseCount; ++p) {
      const uint64_t ns = state.phase_sum.ns[p];
      AppendF(&out, "    phase %-13s total_ns=%" PRIu64 " share_ppm=%" PRIu64
              "\n",
              QueryPhaseName(static_cast<QueryPhase>(p)), ns,
              total == 0 ? 0 : ns * 1'000'000 / total);
    }
  }
  AppendF(&out, "tail attributions: %zu shown, %" PRIu64 " dropped\n",
          attributions_.size(), dropped_);
  for (const Attribution& a : attributions_) {
    AppendF(&out,
            "  ticket %" PRIu64 " class=%s status=%u latency_ns=%" PRIu64
            " slo_breach=%d p99_tail=%d dominant=%s\n",
            a.ticket, ClassName(a.cls), unsigned(a.status), a.latency_ns,
            a.slo_breach ? 1 : 0, a.p99_tail ? 1 : 0,
            QueryPhaseName(a.dominant));
    out += "    phases:";
    for (QueryPhase p : a.ranked) {
      AppendF(&out, " %s=%" PRIu64, QueryPhaseName(p), a.phases[p]);
    }
    out += '\n';
    if (!a.critical_path.empty()) {
      out += "    critical path:";
      for (const CriticalStep& step : a.critical_path) {
        AppendF(&out, " > %s[excl=%" PRIu64 "]", step.name.c_str(),
                step.exclusive_ns);
        if (!step.actual_selectivity.empty()) {
          AppendF(&out, "(sel est=%s actual=%s)",
                  step.est_selectivity.empty() ? "?"
                                               : step.est_selectivity.c_str(),
                  step.actual_selectivity.c_str());
        }
      }
      out += '\n';
    }
  }
  return out;
}

std::string LatencyProfiler::ReportJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"classes\": [";
  for (size_t c = 0; c < kQueryClassCount; ++c) {
    const ClassState& state = classes_[c];
    AppendF(&out,
            "%s\n    {\"class\": \"%s\", \"observations\": %" PRIu64
            ", \"executed\": %" PRIu64 ", \"shed\": %" PRIu64
            ", \"cancelled\": %" PRIu64 ", \"failed\": %" PRIu64
            ", \"tail\": %" PRIu64 ", \"latency_sum_ns\": %" PRIu64
            ", \"latency_p50_ns\": %" PRIu64 ", \"latency_p99_ns\": %" PRIu64
            ", \"latency_p999_ns\": %" PRIu64 ", \"phases\": {",
            c == 0 ? "" : ",", ClassName(static_cast<QueryClass>(c)),
            state.observations, state.executed, state.shed, state.cancelled,
            state.failed, state.tail, state.latency_sum_ns,
            state.latencies.Quantile(0.50), state.latencies.Quantile(0.99),
            state.latencies.Quantile(0.999));
    for (size_t p = 0; p < kQueryPhaseCount; ++p) {
      AppendF(&out, "%s\"%s\": %" PRIu64, p == 0 ? "" : ", ",
              QueryPhaseName(static_cast<QueryPhase>(p)),
              state.phase_sum.ns[p]);
    }
    out += "}}";
  }
  AppendF(&out, "\n  ],\n  \"attributions_dropped\": %" PRIu64
          ",\n  \"attributions\": [",
          dropped_);
  for (size_t i = 0; i < attributions_.size(); ++i) {
    const Attribution& a = attributions_[i];
    AppendF(&out,
            "%s\n    {\"ticket\": %" PRIu64
            ", \"class\": \"%s\", \"status\": %u, \"latency_ns\": %" PRIu64
            ", \"slo_breach\": %s, \"p99_tail\": %s, \"dominant\": \"%s\", "
            "\"phases\": {",
            i == 0 ? "" : ",", a.ticket, ClassName(a.cls), unsigned(a.status),
            a.latency_ns, a.slo_breach ? "true" : "false",
            a.p99_tail ? "true" : "false", QueryPhaseName(a.dominant));
    for (size_t p = 0; p < kQueryPhaseCount; ++p) {
      AppendF(&out, "%s\"%s\": %" PRIu64, p == 0 ? "" : ", ",
              QueryPhaseName(static_cast<QueryPhase>(p)),
              a.phases.ns[p]);
    }
    out += "}, \"critical_path\": [";
    for (size_t s = 0; s < a.critical_path.size(); ++s) {
      const CriticalStep& step = a.critical_path[s];
      AppendF(&out,
              "%s{\"name\": \"%s\", \"inclusive_ns\": %" PRIu64
              ", \"exclusive_ns\": %" PRIu64,
              s == 0 ? "" : ", ", JsonEscape(step.name).c_str(),
              step.inclusive_ns, step.exclusive_ns);
      if (!step.est_selectivity.empty()) {
        AppendF(&out, ", \"est_selectivity\": \"%s\"",
                JsonEscape(step.est_selectivity).c_str());
      }
      if (!step.actual_selectivity.empty()) {
        AppendF(&out, ", \"actual_selectivity\": \"%s\"",
                JsonEscape(step.actual_selectivity).c_str());
      }
      out += "}";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void LatencyProfiler::ExportMetrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsRegistry& reg = MetricsRegistry::Global();
  for (size_t c = 0; c < kQueryClassCount; ++c) {
    const ClassState& state = classes_[c];
    const char* cls = ClassName(static_cast<QueryClass>(c));
    const uint64_t total = state.phase_sum.Sum();
    std::string prefix = std::string("hytap_phase_") + cls + "_";
    reg.GetGauge(prefix + "dominant")
        ->Set(int64_t(state.phase_sum.Dominant()));
    for (size_t p = 0; p < kQueryPhaseCount; ++p) {
      reg.GetGauge(prefix + QueryPhaseName(static_cast<QueryPhase>(p)) +
                   "_share_ppm")
          ->Set(total == 0
                    ? 0
                    : int64_t(state.phase_sum.ns[p] * 1'000'000 / total));
    }
  }
}

void LatencyProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (ClassState& state : classes_) {
    const std::vector<uint64_t> bounds = state.latencies.bounds;
    state = ClassState();
    state.latencies.bounds = bounds;
    state.latencies.counts.assign(bounds.size() + 1, 0);
  }
  attributions_.clear();
  dropped_ = 0;
}

}  // namespace hytap

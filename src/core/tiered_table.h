#ifndef HYTAP_CORE_TIERED_TABLE_H_
#define HYTAP_CORE_TIERED_TABLE_H_

#include <memory>
#include <mutex>
#include <string>

#include "query/executor.h"
#include "query/plan_cache.h"
#include "selection/calibration.h"
#include "storage/table.h"
#include "tiering/buffer_manager.h"
#include "tiering/secondary_store.h"
#include "txn/transaction_manager.h"
#include "workload/workload_monitor.h"

namespace hytap {

class QuerySession;
class SessionManager;
struct SessionOptions;
struct SubmitOptions;

/// Configuration for a tiered table instance.
struct TieredTableOptions {
  DeviceKind device = DeviceKind::kXpoint;
  /// Buffer-manager capacity as a share of the table's secondary-storage
  /// footprint once evicted (paper Fig. 7 uses 2 %). Frame count is derived
  /// lazily from the first placement; `min_frames` is the floor.
  double cache_share = 0.02;
  size_t min_frames = 64;
  double probe_threshold = 1e-4;
  uint64_t timing_seed = 42;
  /// Workload-monitor geometry (ring capacity / window width on the
  /// simulated clock); defaults honor HYTAP_WORKLOAD_WINDOWS/HYTAP_WINDOW_NS.
  WorkloadMonitor::Options monitor = WorkloadMonitor::Options::FromEnv();
};

/// Owning facade that wires a Table to its transaction manager, secondary
/// store, buffer manager, executor, and plan cache. The main entry point of
/// the library for applications (see examples/).
class TieredTable {
 public:
  TieredTable(std::string name, Schema schema, TieredTableOptions options);
  ~TieredTable();

  TieredTable(const TieredTable&) = delete;
  TieredTable& operator=(const TieredTable&) = delete;

  /// Bulk-loads initial data (before any transactions).
  void Load(const std::vector<Row>& rows) { table_->BulkLoad(rows); }

  Transaction Begin() { return txns_.Begin(); }
  void Commit(Transaction* txn) { txns_.Commit(txn); }
  void Abort(Transaction* txn) { txns_.Abort(txn); }

  /// While serving is enabled, writes run exclusively between queries
  /// (SessionManager::ExecuteWrite) so commit order equals submission order.
  Status Insert(const Transaction& txn, const Row& row);
  Status Delete(const Transaction& txn, RowId row);

  /// Executes a query, recording it in the plan cache.
  QueryResult Execute(const Transaction& txn, const Query& query,
                      uint32_t threads = 1);

  /// Executes without recording (benchmark warmups).
  QueryResult ExecuteUnrecorded(const Transaction& txn, const Query& query,
                                uint32_t threads = 1) const {
    return executor_->Execute(txn, query, threads);
  }

  /// Records one finished execution into the workload monitor and plan
  /// cache under one mutex. `obs_filled` = the executor produced an
  /// observation (monitor attached + knob on). The serving layer calls this
  /// in ticket order; the synchronous Execute() path uses it too, so both
  /// paths feed the PR 5 window series identically.
  void RecordExecution(const Query& query, const QueryObservation& obs,
                       bool obs_filled);

  /// Turns on the high-concurrency serving front end (DESIGN.md §15):
  /// admission-controlled sessions executing concurrently against this
  /// table. Idempotent — returns the existing manager on repeat calls.
  /// While enabled, submit queries via Submit()/serving() rather than the
  /// synchronous Execute(), and writes route through the serving write gate
  /// automatically.
  SessionManager& EnableServing();
  SessionManager& EnableServing(const SessionOptions& options);
  /// Null until EnableServing().
  SessionManager* serving() { return serving_.get(); }

  /// Async serving API (requires EnableServing()): admission-controlled
  /// submit returning a session handle; Await blocks for its result.
  StatusOr<std::shared_ptr<QuerySession>> Submit(const Query& query,
                                                 const SubmitOptions& opts);
  QueryResult Await(const std::shared_ptr<QuerySession>& session);

  /// Structural rewrite: while serving, drains the session queue first and
  /// then runs exclusively (queued queries' snapshots do not shield them
  /// from a merge's main/delta restructuring, unlike Insert/Delete).
  Status MergeDelta();

  /// Applies a placement (true = DRAM) and resizes the page cache to
  /// `cache_share` of the evicted footprint. Returns migrated bytes.
  StatusOr<uint64_t> ApplyPlacement(const std::vector<bool>& in_dram);

  Table& table() { return *table_; }
  const Table& table() const { return *table_; }
  PlanCache& plan_cache() { return plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }
  /// Windowed workload time series fed by the executor (DESIGN.md §12).
  WorkloadMonitor& monitor() { return *monitor_; }
  const WorkloadMonitor& monitor() const { return *monitor_; }
  /// Online scan-cost calibration fed by the monitor.
  CostCalibrator& calibrator() { return *calibrator_; }
  const CostCalibrator& calibrator() const { return *calibrator_; }
  SecondaryStore& store() { return *store_; }
  const SecondaryStore& store() const { return *store_; }
  BufferManager& buffers() { return *buffers_; }
  const BufferManager& buffers() const { return *buffers_; }
  TransactionManager& txns() { return txns_; }
  QueryExecutor& executor() { return *executor_; }
  const QueryExecutor& executor() const { return *executor_; }
  const TieredTableOptions& options() const { return options_; }

 private:
  StatusOr<uint64_t> ApplyPlacementLocked(const std::vector<bool>& in_dram);

  TieredTableOptions options_;
  TransactionManager txns_;
  std::unique_ptr<SecondaryStore> store_;
  std::unique_ptr<BufferManager> buffers_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<QueryExecutor> executor_;
  std::unique_ptr<WorkloadMonitor> monitor_;
  std::unique_ptr<CostCalibrator> calibrator_;
  PlanCache plan_cache_;
  /// Serializes monitor + plan-cache recording (RecordExecution).
  std::mutex record_mutex_;
  /// Declared last: destroyed first, so serving workers drain before the
  /// engine they execute against goes away.
  std::unique_ptr<SessionManager> serving_;
};

}  // namespace hytap

#endif  // HYTAP_CORE_TIERED_TABLE_H_

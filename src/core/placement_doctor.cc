#include "core/placement_doctor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/metrics.h"
#include "common/trace.h"
#include "selection/cost_model.h"

namespace hytap {

namespace {

/// Registry handles resolved once; updates gated on HYTAP_METRICS.
struct DoctorMetrics {
  Gauge* regret_pct_milli;
  Gauge* misplaced_columns;
  Gauge* windows_used;
  Gauge* queries_observed;
  Gauge* drift_pct;
  Counter* diagnoses;

  static DoctorMetrics& Get() {
    static DoctorMetrics metrics;
    return metrics;
  }

 private:
  DoctorMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    regret_pct_milli = registry.GetGauge("hytap_doctor_regret_pct_milli");
    misplaced_columns = registry.GetGauge("hytap_doctor_misplaced_columns");
    windows_used = registry.GetGauge("hytap_doctor_windows_used");
    queries_observed = registry.GetGauge("hytap_doctor_queries_observed");
    drift_pct = registry.GetGauge("hytap_doctor_drift_pct");
    diagnoses = registry.GetCounter("hytap_doctor_diagnoses_total");
  }
};

void JsonEscape(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

}  // namespace

PlacementDoctor::PlacementDoctor(DoctorOptions options)
    : options_(options) {}

DoctorReport PlacementDoctor::Diagnose(const TieredTable& table) const {
  DoctorReport report;
  const WorkloadMonitor& monitor = table.monitor();
  report.queries_observed = monitor.queries_observed();
  report.drift = monitor.Drift();
  report.fitted_params = table.calibrator().Fitted();
  report.calibration_samples = table.calibrator().sample_count();
  report.calibrated = options_.use_calibrated_params;
  report.params_used =
      options_.use_calibrated_params ? report.fitted_params
                                     : options_.cost_params;

  // Workload source: the monitor's recent windows when it saw queries
  // (observed frequencies + selectivities); otherwise fall back to the
  // plan cache so the doctor still works with the monitor knob off.
  Workload workload;
  if (report.queries_observed > 0) {
    workload = monitor.ToWorkload(table.table(), options_.recent_windows);
    report.from_monitor = true;
    report.windows_used =
        options_.recent_windows == 0
            ? monitor.window_count()
            : std::min(options_.recent_windows, monitor.window_count());
  } else {
    workload = table.plan_cache().ToWorkload(table.table());
  }

  const std::vector<bool>& placement = table.table().placement();
  std::vector<uint8_t> current(placement.size());
  for (size_t i = 0; i < placement.size(); ++i) {
    current[i] = placement[i] ? 1 : 0;
  }

  if (workload.queries.empty() || workload.column_count() == 0) {
    // Nothing observed: a placement cannot regret against an empty
    // workload. Export and return a zero report.
    DoctorMetrics& metrics = DoctorMetrics::Get();
    metrics.diagnoses->Add();
    metrics.regret_pct_milli->Set(0);
    metrics.misplaced_columns->Set(0);
    metrics.windows_used->Set(int64_t(report.windows_used));
    metrics.queries_observed->Set(int64_t(report.queries_observed));
    metrics.drift_pct->Set(int64_t(report.drift * 100.0 + 0.5));
    return report;
  }

  CostModel model(workload, report.params_used);
  report.current_cost = model.ScanCost(current);
  report.current_dram_bytes = model.MemoryUsed(current);
  report.all_dram_cost = model.AllDramCost();
  report.budget_bytes = options_.budget_bytes < 0.0
                            ? report.current_dram_bytes
                            : options_.budget_bytes;

  SelectionProblem problem;
  problem.workload = &workload;
  problem.params = report.params_used;
  problem.budget_bytes = report.budget_bytes;
  SelectionResult recommended;
  if (options_.use_portfolio) {
    SolverPortfolio portfolio(options_.portfolio);
    PortfolioResult solved = portfolio.Solve(problem);
    recommended = std::move(solved.selection);
    report.solver_winner = std::move(solved.winner);
    report.solver_gap = solved.gap;
    report.solver_deadline_hit = solved.deadline_hit;
  } else {
    recommended = SelectExplicit(problem, true);
  }
  report.recommended_cost = recommended.scan_cost;
  report.recommended_dram_bytes = recommended.dram_bytes;
  report.regret = report.current_cost - report.recommended_cost;
  report.regret_pct = report.recommended_cost > 0.0
                          ? 100.0 * report.regret / report.recommended_cost
                          : 0.0;

  // Misplaced columns ranked by their separable cost term a_i * |S_i|: the
  // scan-cost swing of moving the column to its recommended tier.
  const std::vector<double>& s = model.S();
  for (ColumnId c = 0; c < workload.column_count(); ++c) {
    const bool now = c < current.size() && current[c] != 0;
    const bool want = c < recommended.in_dram.size() &&
                      recommended.in_dram[c] != 0;
    if (now == want) continue;
    MisplacedColumn column;
    column.column = c;
    column.name = c < workload.column_names.size() ? workload.column_names[c]
                                                   : std::to_string(c);
    column.in_dram_now = now;
    column.in_dram_recommended = want;
    column.size_bytes = uint64_t(workload.column_sizes[c]);
    column.cost_delta = workload.column_sizes[c] * std::abs(s[c]);
    report.misplaced.push_back(std::move(column));
  }
  std::sort(report.misplaced.begin(), report.misplaced.end(),
            [](const MisplacedColumn& a, const MisplacedColumn& b) {
              if (a.cost_delta != b.cost_delta) {
                return a.cost_delta > b.cost_delta;
              }
              return a.column < b.column;
            });
  const size_t total_misplaced = report.misplaced.size();
  if (report.misplaced.size() > options_.top_k) {
    report.misplaced.resize(options_.top_k);
  }

  DoctorMetrics& metrics = DoctorMetrics::Get();
  metrics.diagnoses->Add();
  metrics.regret_pct_milli->Set(int64_t(report.regret_pct * 1000.0 + 0.5));
  metrics.misplaced_columns->Set(int64_t(total_misplaced));
  metrics.windows_used->Set(int64_t(report.windows_used));
  metrics.queries_observed->Set(int64_t(report.queries_observed));
  metrics.drift_pct->Set(int64_t(report.drift * 100.0 + 0.5));
  return report;
}

std::string DoctorReport::ToText() const {
  std::ostringstream out;
  out << "placement doctor report\n";
  out << "  workload source:    "
      << (from_monitor ? "monitor windows" : "plan cache (fallback)") << "\n";
  out << "  windows used:       " << windows_used << "\n";
  out << "  queries observed:   " << queries_observed << "\n";
  out << "  drift:              " << TraceFormatDouble(drift) << "\n";
  out << "  params (c_mm/c_ss): " << TraceFormatDouble(params_used.c_mm)
      << " / " << TraceFormatDouble(params_used.c_ss)
      << (calibrated ? "  [calibrated]" : "") << "\n";
  out << "  fitted (c_mm/c_ss): " << TraceFormatDouble(fitted_params.c_mm)
      << " / " << TraceFormatDouble(fitted_params.c_ss) << "  ("
      << calibration_samples << " samples)\n";
  out << "  budget bytes:       " << TraceFormatDouble(budget_bytes) << "\n";
  out << "  dram bytes now/rec: " << TraceFormatDouble(current_dram_bytes)
      << " / " << TraceFormatDouble(recommended_dram_bytes) << "\n";
  out << "  F(current):         " << TraceFormatDouble(current_cost) << "\n";
  out << "  F(recommended):     " << TraceFormatDouble(recommended_cost)
      << "\n";
  out << "  F(all-DRAM):        " << TraceFormatDouble(all_dram_cost) << "\n";
  out << "  regret:             " << TraceFormatDouble(regret) << " ("
      << TraceFormatDouble(regret_pct) << " %)\n";
  if (!solver_winner.empty()) {
    out << "  solver winner:      " << solver_winner << "  gap="
        << TraceFormatDouble(solver_gap)
        << (solver_deadline_hit ? "  [deadline]" : "") << "\n";
  }
  out << "  misplaced columns (top " << misplaced.size() << "):\n";
  for (const MisplacedColumn& column : misplaced) {
    out << "    " << column.name << " [" << column.column << "] "
        << (column.in_dram_now ? "dram" : "ssd") << " -> "
        << (column.in_dram_recommended ? "dram" : "ssd") << "  bytes="
        << column.size_bytes << "  cost_delta="
        << TraceFormatDouble(column.cost_delta) << "\n";
  }
  return out.str();
}

std::string DoctorReport::ToJson() const {
  std::string out = "{";
  auto field = [&out](const char* key, const std::string& value,
                      bool quote) {
    if (out.size() > 1) out += ",";
    out += "\"";
    out += key;
    out += "\":";
    if (quote) out += "\"";
    out += value;
    if (quote) out += "\"";
  };
  field("from_monitor", from_monitor ? "true" : "false", false);
  field("windows_used", std::to_string(windows_used), false);
  field("queries_observed", std::to_string(queries_observed), false);
  field("drift", TraceFormatDouble(drift), false);
  field("budget_bytes", TraceFormatDouble(budget_bytes), false);
  field("current_dram_bytes", TraceFormatDouble(current_dram_bytes), false);
  field("recommended_dram_bytes", TraceFormatDouble(recommended_dram_bytes),
        false);
  field("current_cost", TraceFormatDouble(current_cost), false);
  field("recommended_cost", TraceFormatDouble(recommended_cost), false);
  field("all_dram_cost", TraceFormatDouble(all_dram_cost), false);
  field("regret", TraceFormatDouble(regret), false);
  field("regret_pct", TraceFormatDouble(regret_pct), false);
  field("c_mm", TraceFormatDouble(params_used.c_mm), false);
  field("c_ss", TraceFormatDouble(params_used.c_ss), false);
  field("fitted_c_mm", TraceFormatDouble(fitted_params.c_mm), false);
  field("fitted_c_ss", TraceFormatDouble(fitted_params.c_ss), false);
  field("calibrated", calibrated ? "true" : "false", false);
  field("calibration_samples", std::to_string(calibration_samples), false);
  if (!solver_winner.empty()) {
    field("solver_winner", solver_winner, true);
    field("solver_gap", TraceFormatDouble(solver_gap), false);
    field("solver_deadline_hit", solver_deadline_hit ? "true" : "false",
          false);
  }
  out += ",\"misplaced\":[";
  for (size_t i = 0; i < misplaced.size(); ++i) {
    const MisplacedColumn& column = misplaced[i];
    if (i > 0) out += ",";
    out += "{\"column\":" + std::to_string(column.column);
    out += ",\"name\":\"";
    JsonEscape(column.name, &out);
    out += "\",\"in_dram_now\":";
    out += column.in_dram_now ? "true" : "false";
    out += ",\"in_dram_recommended\":";
    out += column.in_dram_recommended ? "true" : "false";
    out += ",\"size_bytes\":" + std::to_string(column.size_bytes);
    out += ",\"cost_delta\":" + TraceFormatDouble(column.cost_delta);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace hytap

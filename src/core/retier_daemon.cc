#include "core/retier_daemon.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/assert.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "selection/cost_model.h"

namespace hytap {

namespace {

/// Registry handles resolved once; updates gated on HYTAP_METRICS.
struct RetierMetrics {
  Counter* ticks;
  Counter* evaluations;
  Counter* plans_started;
  Counter* plans_completed;
  Counter* plans_aborted;
  Counter* plans_held;  // evaluation below the deadband / already converged
  Counter* steps_applied;
  Counter* steps_quarantined;
  Counter* steps_skipped;
  Counter* moved_bytes;
  Gauge* state;         // 0 = idle, 1 = migrating
  Gauge* window_bytes;  // bytes migrated in the current monitor window
  Gauge* last_improvement_pct_milli;
  Gauge* beta_milli;  // beta in milli-ns/byte

  static RetierMetrics& Get() {
    static RetierMetrics metrics;
    return metrics;
  }

 private:
  RetierMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    ticks = registry.GetCounter("hytap_retier_ticks_total");
    evaluations = registry.GetCounter("hytap_retier_evaluations_total");
    plans_started = registry.GetCounter("hytap_retier_plans_started_total");
    plans_completed =
        registry.GetCounter("hytap_retier_plans_completed_total");
    plans_aborted = registry.GetCounter("hytap_retier_plans_aborted_total");
    plans_held = registry.GetCounter("hytap_retier_plans_held_total");
    steps_applied = registry.GetCounter("hytap_retier_steps_applied_total");
    steps_quarantined =
        registry.GetCounter("hytap_retier_steps_quarantined_total");
    steps_skipped = registry.GetCounter("hytap_retier_steps_skipped_total");
    moved_bytes = registry.GetCounter("hytap_retier_moved_bytes_total");
    state = registry.GetGauge("hytap_retier_state");
    window_bytes = registry.GetGauge("hytap_retier_window_bytes");
    last_improvement_pct_milli =
        registry.GetGauge("hytap_retier_last_improvement_pct_milli");
    beta_milli = registry.GetGauge("hytap_retier_beta_milli");
  }
};

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  return env == nullptr ? fallback : std::strtod(env, nullptr);
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  return env == nullptr ? fallback : std::strtoull(env, nullptr, 10);
}

bool EnvBool(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
         std::strcmp(env, "false") != 0;
}

/// Appends pending steps migrating `table` toward `target`: evictions first
/// (free DRAM before loads consume it), then loads, ascending column id
/// within each group. Columns in `exclude` are never touched; steps larger
/// than one window's budget are appended pre-marked kSkippedOversized.
void AppendSteps(const Table& table, const std::vector<uint8_t>& target,
                 const std::vector<uint8_t>& exclude,
                 uint64_t bytes_per_window, std::vector<RetierStep>* steps,
                 uint64_t* skipped) {
  for (int pass = 0; pass < 2; ++pass) {
    const bool want_dram = pass == 1;  // pass 0 = evictions, pass 1 = loads
    for (ColumnId c = 0; c < table.column_count(); ++c) {
      const bool now = table.placement()[c];
      const bool want = c < target.size() && target[c] != 0;
      if (now == want || want != want_dram) continue;
      if (c < exclude.size() && exclude[c] != 0) continue;
      RetierStep step;
      step.column = c;
      step.to_dram = want;
      step.bytes = table.ColumnDramBytes(c);
      if (bytes_per_window > 0 && step.bytes > bytes_per_window) {
        step.outcome = RetierStepOutcome::kSkippedOversized;
        ++*skipped;
      }
      steps->push_back(step);
    }
  }
}

uint64_t PendingCount(const RetierPlan& plan) {
  uint64_t pending = 0;
  for (const RetierStep& step : plan.steps) {
    if (step.outcome == RetierStepOutcome::kPending) ++pending;
  }
  return pending;
}

}  // namespace

RetierOptions RetierOptions::FromEnv() {
  RetierOptions options;
  options.drift_threshold =
      EnvDouble("HYTAP_RETIER_DRIFT", options.drift_threshold);
  options.min_improvement_pct =
      EnvDouble("HYTAP_RETIER_DEADBAND_PCT", options.min_improvement_pct);
  options.dwell_windows =
      EnvU64("HYTAP_RETIER_DWELL_WINDOWS", options.dwell_windows);
  options.periodic_windows =
      EnvU64("HYTAP_RETIER_PERIOD_WINDOWS", options.periodic_windows);
  options.bytes_per_window =
      EnvU64("HYTAP_RETIER_BYTES_PER_WINDOW", options.bytes_per_window);
  options.budget_bytes =
      EnvDouble("HYTAP_RETIER_BUDGET_BYTES", options.budget_bytes);
  options.recent_windows = size_t(
      EnvU64("HYTAP_RETIER_RECENT_WINDOWS", options.recent_windows));
  options.beta = EnvDouble("HYTAP_RETIER_BETA", options.beta);
  options.amortization_windows =
      EnvU64("HYTAP_RETIER_AMORT_WINDOWS", options.amortization_windows);
  options.use_calibrated_params =
      EnvBool("HYTAP_RETIER_CALIBRATED", options.use_calibrated_params);
  options.use_portfolio =
      EnvBool("HYTAP_RETIER_PORTFOLIO", options.use_portfolio);
  return options;
}

RetierDaemon::RetierDaemon(TieredTable* table, RetierOptions options)
    : table_(table), options_(std::move(options)), migrator_(0) {
  HYTAP_ASSERT(table_ != nullptr, "daemon needs a table");
  migrator_.set_calibration(&table_->calibrator(),
                            options_.use_calibrated_params);
  quarantined_.assign(table_->table().column_count(), 0);
}

std::vector<uint8_t> RetierDaemon::CurrentPlacement() const {
  const std::vector<bool>& placement = table_->table().placement();
  std::vector<uint8_t> current(placement.size());
  for (size_t i = 0; i < placement.size(); ++i) {
    current[i] = placement[i] ? 1 : 0;
  }
  return current;
}

uint64_t RetierDaemon::steps_remaining() const {
  return state_ == RetierState::kMigrating ? PendingCount(plan_) : 0;
}

bool RetierDaemon::ShouldEvaluate(uint64_t window, double drift,
                                  std::string* reason) {
  if (window <= last_eval_window_) {
    *reason = "idle";  // at most one evaluation per monitor window
    return false;
  }
  if (has_completed_plan_ &&
      window < last_plan_window_ + options_.dwell_windows) {
    *reason = "dwell";  // hysteresis: minimum dwell after a completed plan
    return false;
  }
  if (drift > 0.0 && drift >= options_.drift_threshold) {
    *reason = "drift";
    return true;
  }
  if (options_.periodic_windows > 0 &&
      window >= last_eval_window_ + options_.periodic_windows) {
    *reason = "periodic";
    return true;
  }
  *reason = "idle";
  return false;
}

bool RetierDaemon::Evaluate(uint64_t window, RetierTickReport* report) {
  RetierMetrics& metrics = RetierMetrics::Get();
  const WorkloadMonitor& monitor = table_->monitor();
  Workload workload =
      monitor.ToWorkload(table_->table(), options_.recent_windows);
  if (workload.queries.empty() || workload.column_count() == 0) {
    report->held = true;
    report->reason = "empty-workload";
    return false;
  }

  const ScanCostParams params = options_.use_calibrated_params
                                    ? table_->calibrator().Fitted()
                                    : options_.cost_params;
  std::vector<uint8_t> current = CurrentPlacement();
  CostModel model(workload, params);

  SelectionProblem problem;
  problem.workload = &workload;
  problem.params = params;
  problem.budget_bytes = options_.budget_bytes < 0.0
                             ? model.MemoryUsed(current)
                             : options_.budget_bytes;
  problem.current = current;
  problem.beta =
      options_.beta >= 0.0
          ? options_.beta
          : BetaFromMigrationWindow(migrator_.MoveNsPerByte(*table_),
                                    options_.amortization_windows);
  problem.pinned.assign(workload.column_count(), 0);
  for (ColumnId c : options_.pinned_columns) {
    if (c < problem.pinned.size()) problem.pinned[c] = 1;
  }
  // Quarantined columns are frozen: the DRAM-resident ones (abort-to-DRAM
  // landed them there) are pinned so selection prices their budget use; any
  // secondary-resident ones are simply never stepped again (AppendSteps
  // excludes them).
  for (size_t c = 0; c < quarantined_.size(); ++c) {
    if (quarantined_[c] != 0 && c < problem.pinned.size() &&
        current[c] != 0) {
      problem.pinned[c] = 1;
    }
  }

  ReallocationOptions selection_options;
  selection_options.use_portfolio = options_.use_portfolio;
  selection_options.portfolio = options_.portfolio;
  const ReallocationResult result =
      SelectWithReallocation(problem, selection_options);
  report->improvement_pct = result.improvement_pct;
  metrics.last_improvement_pct_milli->Set(
      int64_t(result.improvement_pct * 1000.0 + 0.5));
  metrics.beta_milli->Set(int64_t(problem.beta * 1000.0 + 0.5));

  if (result.planned_moves == 0) {
    report->held = true;
    report->reason = "converged";
    metrics.plans_held->Add();
    return false;
  }
  // An over-budget placement must be fixed regardless of scan-cost regret:
  // evicting down to budget usually *raises* F, so the deadband would
  // otherwise hold forever. Budget enforcement overrides the deadband.
  const bool over_budget =
      model.MemoryUsed(current) > problem.budget_bytes + 0.5;
  if (!over_budget && result.improvement_pct < options_.min_improvement_pct) {
    report->held = true;
    report->reason = "deadband";
    metrics.plans_held->Add();
    return false;
  }

  plan_ = RetierPlan{};
  plan_.id = next_plan_id_++;
  plan_.created_window = window;
  plan_.beta = problem.beta;
  plan_.improvement_pct = result.improvement_pct;
  plan_.current_cost = result.current_cost;
  plan_.target_objective = result.selection.objective;
  plan_.solver_winner = result.winner;
  plan_.target = result.selection.in_dram;
  uint64_t skipped = 0;
  AppendSteps(table_->table(), plan_.target, quarantined_,
              options_.bytes_per_window, &plan_.steps, &skipped);
  plan_.skipped_steps += skipped;
  if (skipped > 0) metrics.steps_skipped->Add(skipped);
  if (PendingCount(plan_) == 0) {
    // Every wanted move is oversized or excluded: nothing can ever run.
    report->held = true;
    report->reason = "oversized";
    metrics.plans_held->Add();
    plan_ = RetierPlan{};
    return false;
  }
  state_ = RetierState::kMigrating;
  metrics.plans_started->Add();
  return true;
}

void RetierDaemon::RebuildQueue() {
  // Keep the audit trail of finished steps; re-derive the pending tail from
  // the table's *actual* placement (an abort-to-DRAM undoes every prior
  // eviction) toward the unchanged target, excluding quarantined columns
  // and columns already recorded as skipped-oversized.
  std::vector<RetierStep> steps;
  std::vector<uint8_t> exclude = quarantined_;
  exclude.resize(table_->table().column_count(), 0);
  for (const RetierStep& step : plan_.steps) {
    if (step.outcome == RetierStepOutcome::kPending) continue;
    steps.push_back(step);
    if (step.outcome == RetierStepOutcome::kSkippedOversized &&
        step.column < exclude.size()) {
      exclude[step.column] = 1;
    }
  }
  uint64_t skipped = 0;
  AppendSteps(table_->table(), plan_.target, exclude,
              options_.bytes_per_window, &steps, &skipped);
  plan_.skipped_steps += skipped;
  if (skipped > 0) RetierMetrics::Get().steps_skipped->Add(skipped);
  plan_.steps = std::move(steps);
}

void RetierDaemon::ExecuteSteps(uint64_t window, RetierTickReport* report) {
  RetierMetrics& metrics = RetierMetrics::Get();
  if (throttle_window_ != window) {
    throttle_window_ = window;
    window_bytes_ = 0;
  }
  size_t i = 0;
  while (i < plan_.steps.size()) {
    if (abort_.load(std::memory_order_relaxed)) break;
    RetierStep& step = plan_.steps[i];
    if (step.outcome != RetierStepOutcome::kPending) {
      ++i;
      continue;
    }
    if (options_.bytes_per_window > 0 &&
        window_bytes_ + step.bytes > options_.bytes_per_window) {
      break;  // this window's budget is spent; resume next window
    }
    StatusOr<MigrationReport> moved =
        migrator_.ApplyStep(table_, step.column, step.to_dram);
    step.window = window;
    const uint64_t sim_ns = table_->monitor().now_ns();
    if (moved.ok() && moved->applied) {
      step.outcome = RetierStepOutcome::kApplied;
      const uint64_t bytes =
          moved->moved_bytes > 0 ? moved->moved_bytes : step.bytes;
      window_bytes_ += bytes;
      plan_.moved_bytes += bytes;
      ++plan_.applied_steps;
      ++report->steps_applied;
      metrics.steps_applied->Add();
      metrics.moved_bytes->Add(bytes);
      FlightRecorder::Global().Record(FlightEventType::kRetierStep,
                                      step.to_dram ? 1 : 0, plan_.id, window,
                                      sim_ns, uint64_t(step.column), bytes);
      ++i;
    } else {
      // Verify-by-read-back failure: the table already recovered on its own
      // (a failed eviction leaves it fully DRAM-resident and consistent,
      // Table::SetPlacement). Quarantine the column — it is never stepped
      // again — and rebuild the queue so the rest of the plan survives.
      step.outcome = RetierStepOutcome::kQuarantined;
      if (step.column < quarantined_.size()) quarantined_[step.column] = 1;
      ++plan_.quarantined_steps;
      ++report->steps_quarantined;
      metrics.steps_quarantined->Add();
      FlightRecorder::Global().Record(FlightEventType::kRetierQuarantine, 0,
                                      plan_.id, window, sim_ns,
                                      uint64_t(step.column), step.bytes);
      FlightRecorder::Global().Anomaly(
          AnomalyKind::kStickyQuarantine, "retier_quarantine", plan_.id,
          window, sim_ns, uint64_t(step.column), step.bytes);
      window_bytes_ += step.bytes;  // the failed write spent the bandwidth
      RebuildQueue();
      i = 0;  // the queue changed; rescan (finished steps skip instantly)
    }
  }
  if (PendingCount(plan_) == 0) {
    FinishPlan(window, /*aborted=*/false, report);
  }
}

void RetierDaemon::FinishPlan(uint64_t window, bool aborted,
                              RetierTickReport* report) {
  RetierMetrics& metrics = RetierMetrics::Get();
  plan_.done = !aborted;
  plan_.aborted = aborted;
  state_ = RetierState::kIdle;
  FlightRecorder::Global().Record(
      FlightEventType::kRetierPlanDone, aborted ? 1 : 0, plan_.id, window,
      table_->monitor().now_ns(), plan_.applied_steps, plan_.moved_bytes);
  if (aborted) {
    metrics.plans_aborted->Add();
    report->plan_aborted = true;
  } else {
    metrics.plans_completed->Add();
    report->plan_completed = true;
    last_plan_window_ = window;
    has_completed_plan_ = true;
  }
  history_.push_back(std::move(plan_));
  plan_ = RetierPlan{};
}

RetierTickReport RetierDaemon::Tick() {
  RetierMetrics& metrics = RetierMetrics::Get();
  metrics.ticks->Add();
  RetierTickReport report;
  const WorkloadMonitor& monitor = table_->monitor();
  const uint64_t window = monitor.windows_started();
  report.window = window;
  report.drift = monitor.Drift();

  if (abort_.exchange(false, std::memory_order_relaxed) &&
      state_ == RetierState::kMigrating) {
    for (RetierStep& step : plan_.steps) {
      if (step.outcome == RetierStepOutcome::kPending) {
        step.outcome = RetierStepOutcome::kAborted;
        ++plan_.aborted_steps;
      }
    }
    FlightRecorder::Global().Record(FlightEventType::kRetierAbort, 0,
                                    plan_.id, window, monitor.now_ns(),
                                    plan_.aborted_steps, plan_.applied_steps);
    FlightRecorder::Global().Anomaly(AnomalyKind::kRetierAbort,
                                     "retier_abort", plan_.id, window,
                                     monitor.now_ns(), plan_.aborted_steps,
                                     plan_.applied_steps);
    FinishPlan(window, /*aborted=*/true, &report);
    report.reason = "aborted";
  } else if (state_ == RetierState::kMigrating) {
    ExecuteSteps(window, &report);
    report.reason = report.plan_completed ? "completed" : "migrating";
  } else if (!WorkloadMonitorEnabled() || monitor.queries_observed() == 0) {
    report.reason = "monitor-off";
  } else {
    std::string reason;
    if (ShouldEvaluate(window, report.drift, &reason)) {
      metrics.evaluations->Add();
      report.evaluated = true;
      last_eval_window_ = window;
      if (Evaluate(window, &report)) {
        report.plan_started = true;
        report.reason = reason;
        // Trigger event: code 1 = drift-triggered, 2 = periodic.
        FlightRecorder::Global().Record(
            FlightEventType::kRetierTrigger, reason == "drift" ? 1 : 2,
            plan_.id, window, monitor.now_ns(), plan_.steps.size());
        // Start draining immediately within this window's budget.
        ExecuteSteps(window, &report);
      }
      // On hold, Evaluate() set reason to deadband/converged/oversized.
    } else {
      report.reason = reason;
    }
  }

  report.state = state_;
  report.window_bytes = throttle_window_ == window ? window_bytes_ : 0;
  metrics.state->Set(int64_t(state_));
  metrics.window_bytes->Set(int64_t(report.window_bytes));

  if (TraceEnabled()) {
    last_trace_ = TraceSpan{};
    last_trace_.name = "retier_tick";
    last_trace_.Annotate("window", std::to_string(report.window));
    last_trace_.Annotate("drift", TraceFormatDouble(report.drift));
    last_trace_.Annotate("reason", report.reason);
    last_trace_.Annotate(
        "state", report.state == RetierState::kMigrating ? "migrating"
                                                         : "idle");
    last_trace_.Annotate("steps_applied",
                         std::to_string(report.steps_applied));
    last_trace_.Annotate("steps_quarantined",
                         std::to_string(report.steps_quarantined));
    last_trace_.Annotate("window_bytes",
                         std::to_string(report.window_bytes));
    if (report.evaluated) {
      last_trace_.Annotate("improvement_pct",
                           TraceFormatDouble(report.improvement_pct));
    }
  }
  return report;
}

}  // namespace hytap

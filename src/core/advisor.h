#ifndef HYTAP_CORE_ADVISOR_H_
#define HYTAP_CORE_ADVISOR_H_

#include <string>
#include <vector>

#include "core/tiered_table.h"
#include "selection/selectors.h"
#include "solver/portfolio.h"

namespace hytap {

class CostCalibrator;

/// Which selection algorithm the advisor runs.
enum class AdvisorAlgorithm {
  kExplicit,        // Theorem 2 + Remark-2 filling (default, scalable)
  kIntegerOptimal,  // exact branch-and-bound
  kGreedyMarginal,  // Remark 3
  kPortfolio,       // anytime race of all of the above under a deadline
};

/// Advisor options.
struct AdvisorOptions {
  AdvisorAlgorithm algorithm = AdvisorAlgorithm::kExplicit;
  ScanCostParams cost_params;
  /// Per-byte reallocation cost weight (0 = ignore current placement).
  double beta = 0.0;
  /// Columns to pin in DRAM (e.g., primary keys / SLA-critical attributes).
  std::vector<ColumnId> pinned_columns;
  /// Opt-in online calibration (DESIGN.md §12): when set together with
  /// `use_calibrated_params`, Recommend() replaces `cost_params` with the
  /// calibrator's fitted c_mm/c_ss. Report-only otherwise — attaching a
  /// calibrator alone changes nothing.
  const CostCalibrator* calibrator = nullptr;
  bool use_calibrated_params = false;
  /// Deadline/worker knobs for AdvisorAlgorithm::kPortfolio (defaults read
  /// HYTAP_SOLVER_BUDGET_MS / HYTAP_SOLVER_THREADS).
  PortfolioOptions portfolio = PortfolioOptions::FromEnv();
};

/// Recommendation produced by the advisor.
struct Recommendation {
  std::vector<bool> in_dram;
  SelectionResult selection;
  Workload workload;  // the workload snapshot the decision was based on
  /// The scan-cost parameters the decision used (the options' static params
  /// or the calibrator's fitted ones when opted in).
  ScanCostParams params_used;
  /// kPortfolio only: the winning solver's name ("exact" / "explicit" /
  /// "greedy") and whether the deadline cut the race short.
  std::string winner;
  bool deadline_hit = false;
};

/// The autonomous column selection driver (paper Fig. 2): reads the table's
/// plan cache, builds the workload model, runs a selector for the given DRAM
/// budget, and (optionally) applies the placement.
class Advisor {
 public:
  explicit Advisor(AdvisorOptions options = {});

  /// Recommends a placement for an absolute DRAM budget in bytes.
  Recommendation Recommend(const TieredTable& table,
                           double budget_bytes) const;

  /// Recommends for a relative budget w in [0, 1] of the table's total
  /// main-partition DRAM footprint.
  Recommendation RecommendRelative(const TieredTable& table, double w) const;

  /// Recommends and applies; returns migrated bytes.
  StatusOr<uint64_t> Apply(TieredTable* table, double budget_bytes) const;

  const AdvisorOptions& options() const { return options_; }

 private:
  AdvisorOptions options_;
};

}  // namespace hytap

#endif  // HYTAP_CORE_ADVISOR_H_

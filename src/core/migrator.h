#ifndef HYTAP_CORE_MIGRATOR_H_
#define HYTAP_CORE_MIGRATOR_H_

#include <cstdint>

#include "core/tiered_table.h"

namespace hytap {

/// Outcome of one reallocation round (paper §III-D).
struct MigrationReport {
  uint64_t moved_bytes = 0;
  uint64_t evicted_columns = 0;
  uint64_t loaded_columns = 0;
  /// Simulated duration of the physical move, bounded by the secondary
  /// device's sequential bandwidth (the paper sizes beta from the allowed
  /// maintenance window and this bandwidth).
  uint64_t duration_ns = 0;
  bool applied = false;
};

/// Applies a placement to a table and accounts the physical reallocation
/// cost. Optionally refuses moves that exceed a maintenance-window budget,
/// mirroring how beta is chosen in practice (§III-D).
class Migrator {
 public:
  /// `max_window_ns` = 0 means unbounded.
  explicit Migrator(uint64_t max_window_ns = 0)
      : max_window_ns_(max_window_ns) {}

  /// Estimates the migration cost of switching `table` to `in_dram` without
  /// applying it. With calibration armed (see set_calibration) the duration
  /// is priced at the calibrator's fitted secondary ns/byte instead of the
  /// reference device model.
  MigrationReport Estimate(const TieredTable& table,
                           const std::vector<bool>& in_dram) const;

  /// Applies the placement if the estimated duration fits the window;
  /// otherwise returns the estimate with applied = false. Evictions are
  /// verified by read-back checksum inside the table: a corrupted write
  /// aborts the migration with kDataLoss and the table is left fully
  /// DRAM-resident and consistent (see Table::SetPlacement).
  StatusOr<MigrationReport> Apply(TieredTable* table,
                                  const std::vector<bool>& in_dram) const;

  /// Single-column step: flips `column` to `to_dram` leaving every other
  /// column in place. The unit of the re-tiering daemon's throttled plan
  /// queue — each step is individually verified, abortable, and accounted.
  StatusOr<MigrationReport> ApplyStep(TieredTable* table, ColumnId column,
                                      bool to_dram) const;

  /// Uses `calibrator`'s fitted scan-cost parameters (PR 5 online
  /// calibration) for move-cost estimates when `use` is set and the fit has
  /// secondary-tier samples; pass nullptr to detach. The calibrator is not
  /// owned and must outlive the migrator.
  void set_calibration(const CostCalibrator* calibrator, bool use) {
    calibrator_ = calibrator;
    use_calibration_ = use;
  }

  /// The move cost in simulated ns per byte used for estimates: the fitted
  /// secondary c_ss when calibration is armed and has samples, else the
  /// device model's sequential-write bandwidth.
  double MoveNsPerByte(const TieredTable& table) const;

 private:
  uint64_t max_window_ns_;
  const CostCalibrator* calibrator_ = nullptr;
  bool use_calibration_ = false;
};

}  // namespace hytap

#endif  // HYTAP_CORE_MIGRATOR_H_

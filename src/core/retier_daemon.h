#ifndef HYTAP_CORE_RETIER_DAEMON_H_
#define HYTAP_CORE_RETIER_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/trace.h"
#include "core/migrator.h"
#include "core/tiered_table.h"
#include "selection/reallocation.h"

namespace hytap {

/// Re-tiering daemon configuration (DESIGN.md §14). Every default reads the
/// matching HYTAP_RETIER_* knob via FromEnv().
struct RetierOptions {
  /// TV-distance drift (WorkloadMonitor::Drift) that triggers a
  /// re-evaluation of the placement.
  double drift_threshold = 0.25;
  /// Regret deadband: plans whose reallocation-aware improvement
  /// (F(y) - F(x*) - beta * moved bytes, as % of F(y)) falls below this are
  /// held — the hysteresis that keeps oscillating workloads from thrashing.
  double min_improvement_pct = 2.0;
  /// Min monitor windows between a completed plan and the next evaluation.
  uint64_t dwell_windows = 2;
  /// Evaluate every `periodic_windows` windows even without drift
  /// (0 = drift-triggered only).
  uint64_t periodic_windows = 0;
  /// Per-monitor-window migration budget in bytes (0 = unthrottled). Steps
  /// larger than one window's budget can never run and are skipped.
  uint64_t bytes_per_window = 8ull << 20;
  /// DRAM budget for the selection; < 0 = what the current placement uses
  /// (budget parity, like the placement doctor).
  double budget_bytes = -1.0;
  /// Newest monitor windows aggregated into the selection workload
  /// (0 = all live windows). Spanning both sides of a phase flip is what
  /// makes the target stable under oscillation.
  size_t recent_windows = 2;
  /// Per-byte move weight beta; < 0 = derive from the measured move cost
  /// amortized over `amortization_windows` (BetaFromMigrationWindow).
  double beta = -1.0;
  uint64_t amortization_windows = 8;
  /// Price selection and move estimates with the calibrator's fitted
  /// c_mm/c_ss instead of `cost_params`.
  bool use_calibrated_params = false;
  ScanCostParams cost_params;
  /// Solve through the anytime portfolio (unlimited budget = deterministic
  /// exact optimum) or the one-shot explicit solution.
  bool use_portfolio = true;
  PortfolioOptions portfolio = PortfolioOptions::FromEnv();
  /// Columns the DBA pins in DRAM; the daemon adds quarantined columns.
  std::vector<ColumnId> pinned_columns;

  /// Reads HYTAP_RETIER_DRIFT, HYTAP_RETIER_DEADBAND_PCT,
  /// HYTAP_RETIER_DWELL_WINDOWS, HYTAP_RETIER_PERIOD_WINDOWS,
  /// HYTAP_RETIER_BYTES_PER_WINDOW, HYTAP_RETIER_BUDGET_BYTES,
  /// HYTAP_RETIER_RECENT_WINDOWS, HYTAP_RETIER_BETA,
  /// HYTAP_RETIER_AMORT_WINDOWS, HYTAP_RETIER_CALIBRATED and
  /// HYTAP_RETIER_PORTFOLIO.
  static RetierOptions FromEnv();
};

enum class RetierState : uint8_t { kIdle = 0, kMigrating = 1 };

/// Lifecycle of one per-column migration step in a plan's queue.
enum class RetierStepOutcome : uint8_t {
  kPending = 0,
  kApplied = 1,
  /// Verify-by-read-back failed: the table aborted the column to DRAM and
  /// the daemon quarantined it (never retried; pinned in DRAM in every
  /// later selection). The rest of the plan continues.
  kQuarantined = 2,
  /// Larger than one window's throttle budget; can never run.
  kSkippedOversized = 3,
  /// Plan cancelled via RequestAbort() before this step ran.
  kAborted = 4,
};

struct RetierStep {
  ColumnId column = 0;
  bool to_dram = false;
  /// Planned bytes (the column's DRAM footprint).
  uint64_t bytes = 0;
  RetierStepOutcome outcome = RetierStepOutcome::kPending;
  /// Monitor window (windows_started) in which the step executed.
  uint64_t window = 0;
};

/// One reallocation plan: the target the selection chose and the step queue
/// that migrates toward it, one throttled column at a time.
struct RetierPlan {
  uint64_t id = 0;
  uint64_t created_window = 0;
  double beta = 0.0;
  double improvement_pct = 0.0;
  double current_cost = 0.0;       // F(y) at planning time
  double target_objective = 0.0;   // F(x*) + beta * moved bytes
  std::string solver_winner;
  std::vector<uint8_t> target;     // x*, full column arity
  std::vector<RetierStep> steps;   // evictions first, then loads
  uint64_t applied_steps = 0;
  uint64_t quarantined_steps = 0;
  uint64_t skipped_steps = 0;
  uint64_t aborted_steps = 0;
  uint64_t moved_bytes = 0;
  bool done = false;
  bool aborted = false;
};

/// What one Tick() did — the daemon's externally visible heartbeat.
struct RetierTickReport {
  RetierState state = RetierState::kIdle;  // state after the tick
  uint64_t window = 0;                     // monitor windows_started
  double drift = 0.0;
  bool evaluated = false;     // ran selection this tick
  bool plan_started = false;  // a new plan entered the queue
  bool held = false;          // evaluation below the deadband / converged
  bool plan_completed = false;
  bool plan_aborted = false;
  double improvement_pct = 0.0;  // of the evaluation, when one ran
  uint64_t steps_applied = 0;
  uint64_t steps_quarantined = 0;
  uint64_t window_bytes = 0;  // bytes migrated in this window so far
  /// Why the tick did what it did ("idle", "drift", "periodic", "dwell",
  /// "deadband", "converged", "migrating", "monitor-off", "aborted").
  std::string reason;
};

/// Autonomous re-tiering controller (DESIGN.md §14): watches the workload
/// monitor's drift, re-runs selection with the paper's reallocation-aware
/// objective (eqs (6)-(7), §III-D), and drains the resulting plan as a
/// queue of per-column migration steps that are throttled to a
/// bytes-per-window budget, abortable via a stop token, and hardened
/// against fault injection — a verify-by-read-back failure quarantines the
/// failing column (the table already aborted it to DRAM) and the queue is
/// rebuilt from the table's actual placement so one bad device page never
/// poisons the rest of the plan.
///
/// The daemon is driven by explicit Tick() calls on the engine's serial
/// control path and keys every decision to the monitor's window counter on
/// the *simulated* clock — never to wall time or raw simulated ns (which
/// vary with worker count) — so results, placements, and fault schedules
/// stay bit-identical at 1/2/4 threads with the daemon on.
class RetierDaemon {
 public:
  explicit RetierDaemon(TieredTable* table,
                        RetierOptions options = RetierOptions::FromEnv());

  RetierDaemon(const RetierDaemon&) = delete;
  RetierDaemon& operator=(const RetierDaemon&) = delete;

  /// One control-path heartbeat: handles a pending abort, drains the active
  /// plan within this window's byte budget, or (when idle) decides whether
  /// to re-evaluate the placement.
  RetierTickReport Tick();

  /// Stop token: requests cancellation of the active plan. Safe from any
  /// thread; the next Tick() marks the remaining steps kAborted and returns
  /// the daemon to kIdle. A no-op when no plan is active.
  void RequestAbort() { abort_.store(true, std::memory_order_relaxed); }

  RetierState state() const { return state_; }
  /// The in-flight plan (only while state() == kMigrating).
  const RetierPlan* active_plan() const {
    return state_ == RetierState::kMigrating ? &plan_ : nullptr;
  }
  /// Completed/aborted plans, oldest first.
  const std::vector<RetierPlan>& history() const { return history_; }
  bool IsQuarantined(ColumnId column) const {
    return column < quarantined_.size() && quarantined_[column] != 0;
  }
  uint64_t steps_remaining() const;
  const RetierOptions& options() const { return options_; }
  /// Trace of the most recent tick (empty name when HYTAP_TRACE is off).
  const TraceSpan& last_trace() const { return last_trace_; }

 private:
  bool ShouldEvaluate(uint64_t window, double drift, std::string* reason);
  /// Runs reallocation-aware selection; returns true when a plan started.
  bool Evaluate(uint64_t window, RetierTickReport* report);
  void ExecuteSteps(uint64_t window, RetierTickReport* report);
  /// After a quarantine, re-derives the pending tail from the table's
  /// actual placement vs the plan target minus quarantined columns.
  void RebuildQueue();
  void FinishPlan(uint64_t window, bool aborted, RetierTickReport* report);
  std::vector<uint8_t> CurrentPlacement() const;

  TieredTable* table_;
  RetierOptions options_;
  Migrator migrator_;

  std::atomic<bool> abort_{false};
  RetierState state_ = RetierState::kIdle;
  uint64_t last_eval_window_ = 0;
  uint64_t last_plan_window_ = 0;
  bool has_completed_plan_ = false;
  /// Throttle accounting: bytes migrated in window `throttle_window_`.
  uint64_t throttle_window_ = 0;
  uint64_t window_bytes_ = 0;
  std::vector<uint8_t> quarantined_;  // sticky, per column
  RetierPlan plan_;
  std::vector<RetierPlan> history_;
  uint64_t next_plan_id_ = 1;
  TraceSpan last_trace_;
};

}  // namespace hytap

#endif  // HYTAP_CORE_RETIER_DAEMON_H_

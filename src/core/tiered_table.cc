#include "core/tiered_table.h"

#include <algorithm>

namespace hytap {

TieredTable::TieredTable(std::string name, Schema schema,
                         TieredTableOptions options)
    : options_(options) {
  store_ = std::make_unique<SecondaryStore>(options.device,
                                            options.timing_seed);
  buffers_ = std::make_unique<BufferManager>(store_.get(),
                                             options.min_frames);
  table_ = std::make_unique<Table>(std::move(name), std::move(schema), &txns_,
                                   store_.get(), buffers_.get());
  executor_ =
      std::make_unique<QueryExecutor>(table_.get(), options.probe_threshold);
  monitor_ = std::make_unique<WorkloadMonitor>(table_->column_count(),
                                               options.monitor);
  calibrator_ = std::make_unique<CostCalibrator>();
  monitor_->set_sink(calibrator_.get());
  executor_->set_monitor(monitor_.get());
}

QueryResult TieredTable::Execute(const Transaction& txn, const Query& query,
                                 uint32_t threads) {
  // Record after execution so the plan cache can keep the query's measured
  // selectivities when the monitor produced an observation for it (the
  // sequence check also covers the knob being toggled mid-run).
  const uint64_t seq_before = monitor_->observation_sequence();
  QueryResult result = executor_->Execute(txn, query, threads);
  if (monitor_->observation_sequence() != seq_before) {
    plan_cache_.RecordObserved(query, monitor_->last_observation());
  } else {
    plan_cache_.Record(query);
  }
  return result;
}

StatusOr<uint64_t> TieredTable::ApplyPlacement(
    const std::vector<bool>& in_dram) {
  uint64_t migrated_bytes = 0;
  Status status = table_->SetPlacement(in_dram, &migrated_bytes);
  if (!status.ok()) return status;
  // Size the page cache relative to the evicted footprint (Fig. 7: 2 %).
  const Sscg* sscg = table_->sscg();
  const size_t evicted_pages = sscg == nullptr ? 0 : sscg->page_count();
  const size_t frames = std::max(
      options_.min_frames,
      static_cast<size_t>(double(evicted_pages) * options_.cache_share));
  buffers_->Resize(frames);
  return migrated_bytes;
}

}  // namespace hytap

#include "core/tiered_table.h"

#include <algorithm>

#include "common/flight_recorder.h"
#include "serving/session_manager.h"

namespace hytap {

TieredTable::TieredTable(std::string name, Schema schema,
                         TieredTableOptions options)
    : options_(options) {
  store_ = std::make_unique<SecondaryStore>(options.device,
                                            options.timing_seed);
  buffers_ = std::make_unique<BufferManager>(store_.get(),
                                             options.min_frames);
  table_ = std::make_unique<Table>(std::move(name), std::move(schema), &txns_,
                                   store_.get(), buffers_.get());
  executor_ =
      std::make_unique<QueryExecutor>(table_.get(), options.probe_threshold);
  monitor_ = std::make_unique<WorkloadMonitor>(table_->column_count(),
                                               options.monitor);
  calibrator_ = std::make_unique<CostCalibrator>();
  monitor_->set_sink(calibrator_.get());
  executor_->set_monitor(monitor_.get());
}

TieredTable::~TieredTable() = default;

QueryResult TieredTable::Execute(const Transaction& txn, const Query& query,
                                 uint32_t threads) {
  // Execute with the observation handed back instead of recorded inside the
  // executor, then record observation + plan-cache entry atomically — the
  // same path the serving layer replays in ticket order, so both feed the
  // monitor identically.
  QueryObservation obs;
  bool obs_filled = false;
  ExecOptions opts;
  opts.threads = threads;
  opts.observation = &obs;
  opts.observation_filled = &obs_filled;
  QueryResult result = executor_->Execute(txn, query, opts);
  RecordExecution(query, obs, obs_filled);
  return result;
}

void TieredTable::RecordExecution(const Query& query,
                                  const QueryObservation& obs,
                                  bool obs_filled) {
  std::lock_guard<std::mutex> lock(record_mutex_);
  if (obs_filled) {
    monitor_->Record(obs);
    plan_cache_.RecordObserved(query, obs);
  } else {
    plan_cache_.Record(query);
  }
}

Status TieredTable::Insert(const Transaction& txn, const Row& row) {
  if (serving_ != nullptr) {
    return serving_->ExecuteWrite([&] { return table_->Insert(txn, row); });
  }
  return table_->Insert(txn, row);
}

Status TieredTable::Delete(const Transaction& txn, RowId row) {
  if (serving_ != nullptr) {
    return serving_->ExecuteWrite([&] { return table_->Delete(txn, row); });
  }
  return table_->Delete(txn, row);
}

Status TieredTable::MergeDelta() {
  const auto merge = [&] {
    const uint64_t delta_rows = table_->delta_row_count();
    const uint64_t window = monitor_->windows_started();
    const uint64_t sim_ns = monitor_->now_ns();
    FlightRecorder::Global().Record(FlightEventType::kMergeBegin, 0, 0,
                                    window, sim_ns, delta_rows);
    Status status = table_->MergeDelta();
    FlightRecorder::Global().Record(FlightEventType::kMergeEnd,
                                    uint16_t(status.code()), 0, window,
                                    sim_ns, delta_rows);
    return status;
  };
  if (serving_ != nullptr) {
    // A serving worker running the idle re-tier tick already holds the
    // submit mutex and the write gate; re-entering Drain()/ExecuteWrite()
    // would self-deadlock, and the quiescence they provide is already held.
    if (SessionManager::InExclusiveWrite()) return merge();
    // Queued queries' delta bounds / snapshots do not shield them from the
    // merge restructuring main storage under them: quiesce first.
    serving_->Drain();
    return serving_->ExecuteWrite(merge);
  }
  return merge();
}

SessionManager& TieredTable::EnableServing() {
  return EnableServing(SessionOptions::FromEnv());
}

SessionManager& TieredTable::EnableServing(const SessionOptions& options) {
  if (serving_ == nullptr) {
    serving_ = std::make_unique<SessionManager>(this, options);
  }
  return *serving_;
}

StatusOr<std::shared_ptr<QuerySession>> TieredTable::Submit(
    const Query& query, const SubmitOptions& opts) {
  HYTAP_ASSERT(serving_ != nullptr, "Submit() requires EnableServing()");
  return serving_->Submit(query, opts);
}

QueryResult TieredTable::Await(const std::shared_ptr<QuerySession>& session) {
  return session->Await();
}

StatusOr<uint64_t> TieredTable::ApplyPlacement(
    const std::vector<bool>& in_dram) {
  if (serving_ != nullptr) {
    // Re-entrant from a serving worker's idle re-tier tick: the caller
    // already holds the submit mutex and the write gate (see MergeDelta).
    if (SessionManager::InExclusiveWrite()) {
      return ApplyPlacementLocked(in_dram);
    }
    serving_->Drain();
    StatusOr<uint64_t> migrated = uint64_t(0);
    Status status = serving_->ExecuteWrite([&] {
      migrated = ApplyPlacementLocked(in_dram);
      return migrated.ok() ? Status::Ok() : migrated.status();
    });
    if (!status.ok()) return status;
    return migrated;
  }
  return ApplyPlacementLocked(in_dram);
}

StatusOr<uint64_t> TieredTable::ApplyPlacementLocked(
    const std::vector<bool>& in_dram) {
  uint64_t migrated_bytes = 0;
  Status status = table_->SetPlacement(in_dram, &migrated_bytes);
  if (!status.ok()) return status;
  // Size the page cache relative to the evicted footprint (Fig. 7: 2 %).
  const Sscg* sscg = table_->sscg();
  const size_t evicted_pages = sscg == nullptr ? 0 : sscg->page_count();
  const size_t frames = std::max(
      options_.min_frames,
      static_cast<size_t>(double(evicted_pages) * options_.cache_share));
  buffers_->Resize(frames);
  return migrated_bytes;
}

}  // namespace hytap

#include "core/tiered_table.h"

#include <algorithm>

namespace hytap {

TieredTable::TieredTable(std::string name, Schema schema,
                         TieredTableOptions options)
    : options_(options) {
  store_ = std::make_unique<SecondaryStore>(options.device,
                                            options.timing_seed);
  buffers_ = std::make_unique<BufferManager>(store_.get(),
                                             options.min_frames);
  table_ = std::make_unique<Table>(std::move(name), std::move(schema), &txns_,
                                   store_.get(), buffers_.get());
  executor_ =
      std::make_unique<QueryExecutor>(table_.get(), options.probe_threshold);
}

QueryResult TieredTable::Execute(const Transaction& txn, const Query& query,
                                 uint32_t threads) {
  plan_cache_.Record(query);
  return executor_->Execute(txn, query, threads);
}

StatusOr<uint64_t> TieredTable::ApplyPlacement(
    const std::vector<bool>& in_dram) {
  uint64_t migrated_bytes = 0;
  Status status = table_->SetPlacement(in_dram, &migrated_bytes);
  if (!status.ok()) return status;
  // Size the page cache relative to the evicted footprint (Fig. 7: 2 %).
  const Sscg* sscg = table_->sscg();
  const size_t evicted_pages = sscg == nullptr ? 0 : sscg->page_count();
  const size_t frames = std::max(
      options_.min_frames,
      static_cast<size_t>(double(evicted_pages) * options_.cache_share));
  buffers_->Resize(frames);
  return migrated_bytes;
}

}  // namespace hytap

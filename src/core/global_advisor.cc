#include "core/global_advisor.h"

#include "common/assert.h"

namespace hytap {

GlobalRecommendation GlobalAdvisor::Recommend(Database* db,
                                              double budget_bytes) const {
  HYTAP_ASSERT(db != nullptr, "GlobalAdvisor requires a database");
  GlobalRecommendation rec;
  // Concatenate the per-table workloads into one joint column space.
  Workload& joint = rec.joint_workload;
  std::vector<std::pair<std::string, size_t>> table_offsets;
  for (Table* table : db->tables()) {
    const Workload local =
        db->plan_cache(table->name()).ToWorkload(*table);
    const uint32_t offset = uint32_t(joint.column_count());
    table_offsets.emplace_back(table->name(), offset);
    for (size_t i = 0; i < local.column_count(); ++i) {
      joint.column_sizes.push_back(local.column_sizes[i]);
      joint.selectivities.push_back(local.selectivities[i]);
      joint.column_names.push_back(table->name() + "." +
                                   local.column_names[i]);
    }
    for (const QueryTemplate& q : local.queries) {
      QueryTemplate shifted;
      shifted.frequency = q.frequency;
      for (uint32_t c : q.columns) shifted.columns.push_back(c + offset);
      joint.queries.push_back(std::move(shifted));
    }
  }
  joint.Check();

  SelectionProblem problem;
  problem.workload = &joint;
  problem.params = options_.params;
  problem.budget_bytes = budget_bytes;
  if (options_.use_portfolio) {
    SolverPortfolio portfolio(options_.portfolio);
    PortfolioResult result = portfolio.Solve(problem);
    rec.selection = std::move(result.selection);
    rec.winner = std::move(result.winner);
    rec.deadline_hit = result.deadline_hit;
  } else {
    rec.selection = SelectExplicit(problem);
  }

  // Split the joint allocation back into per-table placements.
  for (size_t t = 0; t < table_offsets.size(); ++t) {
    const auto& [name, offset] = table_offsets[t];
    const Table* table = db->GetTable(name);
    TablePlacement placement;
    placement.table = name;
    placement.in_dram.resize(table->column_count());
    for (size_t c = 0; c < table->column_count(); ++c) {
      placement.in_dram[c] = rec.selection.in_dram[offset + c] != 0;
      if (placement.in_dram[c]) {
        placement.dram_bytes += joint.column_sizes[offset + c];
      }
    }
    rec.placements.push_back(std::move(placement));
  }
  return rec;
}

GlobalRecommendation GlobalAdvisor::RecommendRelative(Database* db,
                                                      double w) const {
  HYTAP_ASSERT(w >= 0.0 && w <= 1.0, "relative budget must be in [0, 1]");
  double total = 0.0;
  for (Table* table : db->tables()) {
    for (ColumnId c = 0; c < table->column_count(); ++c) {
      total += double(table->ColumnDramBytes(c));
    }
  }
  return Recommend(db, w * total);
}

StatusOr<uint64_t> GlobalAdvisor::Apply(Database* db,
                                        double budget_bytes) const {
  GlobalRecommendation rec = Recommend(db, budget_bytes);
  uint64_t total_moved = 0;
  for (const TablePlacement& placement : rec.placements) {
    uint64_t moved = 0;
    Status status =
        db->GetTable(placement.table)->SetPlacement(placement.in_dram,
                                                    &moved);
    if (!status.ok()) return status;
    total_moved += moved;
  }
  return total_moved;
}

}  // namespace hytap

#ifndef HYTAP_CORE_GLOBAL_ADVISOR_H_
#define HYTAP_CORE_GLOBAL_ADVISOR_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "selection/selectors.h"

namespace hytap {

/// Database-wide placement for one table.
struct TablePlacement {
  std::string table;
  std::vector<bool> in_dram;
  double dram_bytes = 0.0;
};

/// Result of a global advisory run.
struct GlobalRecommendation {
  std::vector<TablePlacement> placements;
  SelectionResult selection;  // over the concatenated column space
  Workload joint_workload;
};

/// Places the columns of *all* tables of a database against one DRAM budget
/// (paper §III-G: "Enterprise systems often have thousands of tables. For
/// those systems, it is unrealistic to expect that the database
/// administrator will set memory budgets for each table manually. Our
/// presented solution is able to determine the optimal data placement for
/// thousands of attributes.").
///
/// The per-table workloads are concatenated into one joint column space and
/// solved with the explicit (Theorem 2) solution, so a byte of budget flows
/// to whichever table's column buys the most performance.
class GlobalAdvisor {
 public:
  explicit GlobalAdvisor(ScanCostParams params = {}) : params_(params) {}

  /// Recommends placements for an absolute DRAM budget over all tables.
  GlobalRecommendation Recommend(Database* db, double budget_bytes) const;

  /// Budget as a share w of the combined DRAM footprint of all tables.
  GlobalRecommendation RecommendRelative(Database* db, double w) const;

  /// Recommends and applies; returns total migrated bytes.
  StatusOr<uint64_t> Apply(Database* db, double budget_bytes) const;

 private:
  ScanCostParams params_;
};

}  // namespace hytap

#endif  // HYTAP_CORE_GLOBAL_ADVISOR_H_

#ifndef HYTAP_CORE_GLOBAL_ADVISOR_H_
#define HYTAP_CORE_GLOBAL_ADVISOR_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "selection/selectors.h"
#include "solver/portfolio.h"

namespace hytap {

/// Database-wide placement for one table.
struct TablePlacement {
  std::string table;
  std::vector<bool> in_dram;
  double dram_bytes = 0.0;
};

/// Result of a global advisory run.
struct GlobalRecommendation {
  std::vector<TablePlacement> placements;
  SelectionResult selection;  // over the concatenated column space
  Workload joint_workload;
  /// Portfolio mode only: winning solver and deadline outcome.
  std::string winner;
  bool deadline_hit = false;
};

/// GlobalAdvisor knobs.
struct GlobalAdvisorOptions {
  ScanCostParams params;
  /// Solve the joint column space with the anytime solver portfolio under
  /// its deadline instead of the one-shot explicit solution. At enterprise
  /// scale (thousands of tables) this bounds advisory latency while still
  /// racing the exact solver for whatever optimality the budget affords.
  bool use_portfolio = false;
  PortfolioOptions portfolio = PortfolioOptions::FromEnv();
};

/// Places the columns of *all* tables of a database against one DRAM budget
/// (paper §III-G: "Enterprise systems often have thousands of tables. For
/// those systems, it is unrealistic to expect that the database
/// administrator will set memory budgets for each table manually. Our
/// presented solution is able to determine the optimal data placement for
/// thousands of attributes.").
///
/// The per-table workloads are concatenated into one joint column space and
/// solved with the explicit (Theorem 2) solution, so a byte of budget flows
/// to whichever table's column buys the most performance.
class GlobalAdvisor {
 public:
  explicit GlobalAdvisor(ScanCostParams params = {}) {
    options_.params = params;
  }
  explicit GlobalAdvisor(GlobalAdvisorOptions options)
      : options_(std::move(options)) {}

  /// Recommends placements for an absolute DRAM budget over all tables.
  GlobalRecommendation Recommend(Database* db, double budget_bytes) const;

  /// Budget as a share w of the combined DRAM footprint of all tables.
  GlobalRecommendation RecommendRelative(Database* db, double w) const;

  /// Recommends and applies; returns total migrated bytes.
  StatusOr<uint64_t> Apply(Database* db, double budget_bytes) const;

 private:
  GlobalAdvisorOptions options_;
};

}  // namespace hytap

#endif  // HYTAP_CORE_GLOBAL_ADVISOR_H_

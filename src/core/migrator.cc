#include "core/migrator.h"

#include "common/assert.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"

namespace hytap {

namespace {

/// Registry handles resolved once; Add() is gated on the HYTAP_METRICS knob.
/// The predicted/observed pairs let dashboards track the cost-model error of
/// the advisor's migration estimates.
struct MigratorMetrics {
  Counter* started;
  Counter* applied;
  Counter* rejected;  // estimate exceeded the maintenance window
  Counter* aborted;   // physical move failed (verify-after-write)
  Counter* predicted_moved_bytes;
  Counter* observed_moved_bytes;
  Counter* predicted_duration_ns;
  Counter* observed_duration_ns;

  static MigratorMetrics& Get() {
    static MigratorMetrics metrics;
    return metrics;
  }

 private:
  MigratorMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    started = registry.GetCounter("hytap_migrations_started_total");
    applied = registry.GetCounter("hytap_migrations_applied_total");
    rejected = registry.GetCounter("hytap_migrations_rejected_total");
    aborted = registry.GetCounter("hytap_migrations_aborted_total");
    predicted_moved_bytes =
        registry.GetCounter("hytap_migration_predicted_moved_bytes_total");
    observed_moved_bytes =
        registry.GetCounter("hytap_migration_observed_moved_bytes_total");
    predicted_duration_ns =
        registry.GetCounter("hytap_migration_predicted_duration_ns_total");
    observed_duration_ns =
        registry.GetCounter("hytap_migration_observed_duration_ns_total");
  }
};

}  // namespace

double Migrator::MoveNsPerByte(const TieredTable& table) const {
  if (use_calibration_ && calibrator_ != nullptr &&
      calibrator_->secondary().samples > 0) {
    return calibrator_->Fitted().c_ss;
  }
  // Device-model fallback: amortize the sequential-write cost over a large
  // batch so per-call fixed costs do not inflate the per-byte rate.
  constexpr uint64_t kBatchPages = 256;
  return double(table.store().device().SequentialWriteNs(kBatchPages,
                                                         /*threads=*/1)) /
         (double(kBatchPages) * double(kPageSize));
}

MigrationReport Migrator::Estimate(const TieredTable& table,
                                   const std::vector<bool>& in_dram) const {
  MigrationReport report;
  const Table& t = table.table();
  HYTAP_ASSERT(in_dram.size() == t.column_count(),
               "placement arity mismatch");
  for (ColumnId c = 0; c < t.column_count(); ++c) {
    const bool was_dram = t.placement()[c];
    if (was_dram == in_dram[c]) continue;
    report.moved_bytes += t.ColumnDramBytes(c);
    if (was_dram) {
      ++report.evicted_columns;
    } else {
      ++report.loaded_columns;
    }
  }
  if (use_calibration_ && calibrator_ != nullptr &&
      calibrator_->secondary().samples > 0) {
    report.duration_ns =
        uint64_t(double(report.moved_bytes) * MoveNsPerByte(table) + 0.5);
  } else {
    const uint64_t pages = (report.moved_bytes + kPageSize - 1) / kPageSize;
    report.duration_ns =
        table.store().device().SequentialWriteNs(pages, /*threads=*/1);
  }
  return report;
}

StatusOr<MigrationReport> Migrator::Apply(
    TieredTable* table, const std::vector<bool>& in_dram) const {
  MigratorMetrics& metrics = MigratorMetrics::Get();
  metrics.started->Add();
  MigrationReport report = Estimate(*table, in_dram);
  metrics.predicted_moved_bytes->Add(report.moved_bytes);
  metrics.predicted_duration_ns->Add(report.duration_ns);
  if (max_window_ns_ != 0 && report.duration_ns > max_window_ns_) {
    metrics.rejected->Add();
    return report;  // too expensive for the maintenance window
  }
  StatusOr<uint64_t> moved = table->ApplyPlacement(in_dram);
  if (!moved.ok()) {
    metrics.aborted->Add();
    return moved.status();
  }
  report.moved_bytes = *moved;
  report.applied = true;
  metrics.applied->Add();
  metrics.observed_moved_bytes->Add(report.moved_bytes);
  const uint64_t observed_pages =
      (report.moved_bytes + kPageSize - 1) / kPageSize;
  metrics.observed_duration_ns->Add(table->store().device().SequentialWriteNs(
      observed_pages, /*threads=*/1));
  return report;
}

StatusOr<MigrationReport> Migrator::ApplyStep(TieredTable* table,
                                              ColumnId column,
                                              bool to_dram) const {
  const Table& t = table->table();
  HYTAP_ASSERT(column < t.column_count(), "step column out of range");
  std::vector<bool> placement = t.placement();
  placement[column] = to_dram;
  // Per-column migration boundaries on the flight timeline. This path is
  // serial (daemon tick / idle tick), so the monitor stamps are stable.
  const uint64_t window = table->monitor().windows_started();
  const uint64_t sim_ns = table->monitor().now_ns();
  table->store().SetFlightStamp(window, sim_ns);
  FlightRecorder::Global().Record(FlightEventType::kMigrationBegin,
                                  to_dram ? 1 : 0, 0, window, sim_ns,
                                  uint64_t(column));
  StatusOr<MigrationReport> report = Apply(table, placement);
  const bool failed = !report.ok() || !report->applied;
  const uint64_t moved = report.ok() ? report->moved_bytes : 0;
  FlightRecorder::Global().Record(FlightEventType::kMigrationEnd,
                                  failed ? 1 : 0, 0, window, sim_ns,
                                  uint64_t(column), moved);
  return report;
}

}  // namespace hytap

#include "core/migrator.h"

#include "common/assert.h"

namespace hytap {

MigrationReport Migrator::Estimate(const TieredTable& table,
                                   const std::vector<bool>& in_dram) const {
  MigrationReport report;
  const Table& t = table.table();
  HYTAP_ASSERT(in_dram.size() == t.column_count(),
               "placement arity mismatch");
  for (ColumnId c = 0; c < t.column_count(); ++c) {
    const bool was_dram = t.placement()[c];
    if (was_dram == in_dram[c]) continue;
    report.moved_bytes += t.ColumnDramBytes(c);
    if (was_dram) {
      ++report.evicted_columns;
    } else {
      ++report.loaded_columns;
    }
  }
  const uint64_t pages = (report.moved_bytes + kPageSize - 1) / kPageSize;
  report.duration_ns =
      table.store().device().SequentialWriteNs(pages, /*threads=*/1);
  return report;
}

StatusOr<MigrationReport> Migrator::Apply(
    TieredTable* table, const std::vector<bool>& in_dram) const {
  MigrationReport report = Estimate(*table, in_dram);
  if (max_window_ns_ != 0 && report.duration_ns > max_window_ns_) {
    return report;  // too expensive for the maintenance window
  }
  StatusOr<uint64_t> moved = table->ApplyPlacement(in_dram);
  if (!moved.ok()) return moved.status();
  report.moved_bytes = *moved;
  report.applied = true;
  return report;
}

}  // namespace hytap

#ifndef HYTAP_CORE_DATABASE_H_
#define HYTAP_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/join.h"
#include "query/plan_cache.h"
#include "storage/table.h"
#include "tiering/buffer_manager.h"
#include "tiering/secondary_store.h"
#include "txn/transaction_manager.h"

namespace hytap {

/// Options shared by all tables of a database.
struct DatabaseOptions {
  DeviceKind device = DeviceKind::kXpoint;
  size_t buffer_frames = 1024;
  double probe_threshold = 1e-4;
  uint64_t timing_seed = 42;
  /// MaybeMerge() merges a table once its delta exceeds this share of the
  /// main partition (paper §II: the delta is merged periodically).
  double merge_threshold = 0.1;
};

/// A multi-table database: one transaction manager (cross-table snapshot
/// consistency), one secondary-storage volume, and one shared page cache.
/// Enterprise systems have thousands of tables (paper §III-G); the
/// GlobalAdvisor places all their columns against a single DRAM budget.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table; the name must be unique.
  Table* CreateTable(const std::string& name, Schema schema);

  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;
  std::vector<Table*> tables();
  size_t table_count() const { return tables_.size(); }

  Transaction Begin() { return txns_.Begin(); }
  void Commit(Transaction* txn) { txns_.Commit(txn); }
  void Abort(Transaction* txn) { txns_.Abort(txn); }

  /// Executes a single-table query, recording it in the table's plan cache.
  QueryResult Execute(const Transaction& txn, const std::string& table,
                      const Query& query, uint32_t threads = 1);

  /// Executes an equi-join between two tables (placement-aware).
  JoinResult ExecuteJoin(const Transaction& txn, const std::string& left,
                         const Query& left_query, const std::string& right,
                         const Query& right_query, const JoinSpec& spec,
                         uint32_t threads = 1);

  /// Merges `table`'s delta if it exceeds the merge threshold; returns true
  /// if a merge ran.
  bool MaybeMerge(const std::string& table);

  PlanCache& plan_cache(const std::string& table);

  TransactionManager& txns() { return txns_; }
  SecondaryStore& store() { return *store_; }
  BufferManager& buffers() { return *buffers_; }
  const DatabaseOptions& options() const { return options_; }

 private:
  struct TableEntry {
    std::unique_ptr<Table> table;
    std::unique_ptr<QueryExecutor> executor;
    PlanCache plan_cache;
  };

  TableEntry& Entry(const std::string& name);

  DatabaseOptions options_;
  TransactionManager txns_;
  std::unique_ptr<SecondaryStore> store_;
  std::unique_ptr<BufferManager> buffers_;
  std::map<std::string, TableEntry> tables_;
};

}  // namespace hytap

#endif  // HYTAP_CORE_DATABASE_H_

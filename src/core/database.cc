#include "core/database.h"

#include "common/assert.h"

namespace hytap {

Database::Database(DatabaseOptions options) : options_(options) {
  store_ = std::make_unique<SecondaryStore>(options.device,
                                            options.timing_seed);
  buffers_ = std::make_unique<BufferManager>(store_.get(),
                                             options.buffer_frames);
}

Table* Database::CreateTable(const std::string& name, Schema schema) {
  HYTAP_ASSERT(tables_.find(name) == tables_.end(),
               "table name already exists");
  // Construct in place: TableEntry is immovable (PlanCache owns a mutex).
  TableEntry& entry = tables_[name];
  entry.table = std::make_unique<Table>(name, std::move(schema), &txns_,
                                        store_.get(), buffers_.get());
  entry.executor = std::make_unique<QueryExecutor>(
      entry.table.get(), options_.probe_threshold);
  return entry.table.get();
}

Database::TableEntry& Database::Entry(const std::string& name) {
  auto it = tables_.find(name);
  HYTAP_ASSERT(it != tables_.end(), "unknown table");
  return it->second;
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.table.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.table.get();
}

std::vector<Table*> Database::tables() {
  std::vector<Table*> out;
  out.reserve(tables_.size());
  for (auto& [name, entry] : tables_) out.push_back(entry.table.get());
  return out;
}

QueryResult Database::Execute(const Transaction& txn,
                              const std::string& table, const Query& query,
                              uint32_t threads) {
  TableEntry& entry = Entry(table);
  entry.plan_cache.Record(query);
  return entry.executor->Execute(txn, query, threads);
}

JoinResult Database::ExecuteJoin(const Transaction& txn,
                                 const std::string& left,
                                 const Query& left_query,
                                 const std::string& right,
                                 const Query& right_query,
                                 const JoinSpec& spec, uint32_t threads) {
  TableEntry& left_entry = Entry(left);
  TableEntry& right_entry = Entry(right);
  // Record the single-table access patterns (including the join keys) so the
  // selection model sees join columns as accessed (paper §III-A: joins are
  // modeled as scans with a selectivity).
  Query left_recorded = left_query;
  left_recorded.predicates.push_back(
      Predicate{spec.left_column, std::nullopt, std::nullopt});
  Query right_recorded = right_query;
  right_recorded.predicates.push_back(
      Predicate{spec.right_column, std::nullopt, std::nullopt});
  left_entry.plan_cache.Record(left_recorded);
  right_entry.plan_cache.Record(right_recorded);
  HashJoin join(left_entry.table.get(), right_entry.table.get());
  return join.Execute(txn, left_query, right_query, spec, threads);
}

bool Database::MaybeMerge(const std::string& table) {
  TableEntry& entry = Entry(table);
  const size_t main_rows = entry.table->main_row_count();
  const size_t delta_rows = entry.table->delta_row_count();
  if (delta_rows == 0) return false;
  if (main_rows > 0 &&
      double(delta_rows) < options_.merge_threshold * double(main_rows)) {
    return false;
  }
  const Status merged = entry.table->MergeDelta();
  // kDataLoss from the pre-merge checksum verify refuses the merge and
  // leaves the delta in place; report that as "not merged".
  return merged.ok() || entry.table->delta_row_count() == 0;
}

PlanCache& Database::plan_cache(const std::string& table) {
  return Entry(table).plan_cache;
}

}  // namespace hytap

#ifndef HYTAP_CORE_PLACEMENT_DOCTOR_H_
#define HYTAP_CORE_PLACEMENT_DOCTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/tiered_table.h"
#include "selection/selectors.h"
#include "solver/portfolio.h"

namespace hytap {

/// Placement-doctor configuration.
struct DoctorOptions {
  /// How many misplaced columns the report lists (largest cost delta first).
  size_t top_k = 8;
  /// Diagnose against the newest `recent_windows` monitor windows (0 = all
  /// live windows).
  size_t recent_windows = 0;
  /// Reference scan-cost parameters (ignored when `use_calibrated_params`).
  ScanCostParams cost_params;
  /// Use the table calibrator's fitted c_mm/c_ss instead of `cost_params`.
  bool use_calibrated_params = false;
  /// DRAM budget for the recommendation; < 0 means "what the current
  /// placement uses" (placement parity: regret compares equal-budget
  /// allocations, not a budget change).
  double budget_bytes = -1.0;
  /// Recommend through the anytime solver portfolio (exact B&B, explicit,
  /// greedy raced under `portfolio.budget_ms`) instead of the one-shot
  /// explicit solution; the report then carries the winner and its
  /// LP-bound gap, and the hytap_solver_* metrics are exercised.
  bool use_portfolio = false;
  PortfolioOptions portfolio = PortfolioOptions::FromEnv();
};

/// One column whose current tier disagrees with the recommendation.
struct MisplacedColumn {
  ColumnId column = 0;
  std::string name;
  bool in_dram_now = false;
  bool in_dram_recommended = false;
  uint64_t size_bytes = 0;
  /// Scan-cost impact of moving the column to its recommended tier:
  /// a_i * |S_i| on the diagnosed workload (the per-column term of the
  /// separable model, DESIGN.md §12).
  double cost_delta = 0.0;
};

/// What the doctor found (DESIGN.md §12): placement regret — F(current) vs
/// F(recommended) at the same DRAM budget on the observed workload — plus
/// the top-k misplaced columns.
struct DoctorReport {
  /// Workload source: true = monitor windows (observed selectivities),
  /// false = plan-cache fallback (monitor saw no queries).
  bool from_monitor = false;
  size_t windows_used = 0;
  uint64_t queries_observed = 0;
  /// Window-over-window drift of the monitor at diagnosis time.
  double drift = 0.0;
  double budget_bytes = 0.0;
  double current_dram_bytes = 0.0;
  double recommended_dram_bytes = 0.0;
  /// F(current), F(recommended), F(all-DRAM) under the diagnosis params.
  double current_cost = 0.0;
  double recommended_cost = 0.0;
  double all_dram_cost = 0.0;
  /// regret = F(current) - F(recommended) >= 0; regret_pct relative to
  /// F(recommended).
  double regret = 0.0;
  double regret_pct = 0.0;
  /// Params the diagnosis used, and the calibrator's current fit.
  ScanCostParams params_used;
  ScanCostParams fitted_params;
  bool calibrated = false;
  uint64_t calibration_samples = 0;
  /// Portfolio mode only: winning solver name, its gap vs the LP bound, and
  /// whether the deadline cut the race short.
  std::string solver_winner;
  double solver_gap = 0.0;
  bool solver_deadline_hit = false;
  std::vector<MisplacedColumn> misplaced;  // largest cost delta first

  /// Human-readable report.
  std::string ToText() const;
  /// Single JSON object (misplaced columns as an array).
  std::string ToJson() const;
};

/// Re-runs the Advisor's selection on the observed workload and scores the
/// live placement against it. Read-only: never migrates anything. Each
/// Diagnose() also refreshes the `hytap_doctor_*` gauges in the metrics
/// registry.
class PlacementDoctor {
 public:
  explicit PlacementDoctor(DoctorOptions options = {});

  DoctorReport Diagnose(const TieredTable& table) const;

  const DoctorOptions& options() const { return options_; }

 private:
  DoctorOptions options_;
};

}  // namespace hytap

#endif  // HYTAP_CORE_PLACEMENT_DOCTOR_H_

#include "core/advisor.h"

#include "common/assert.h"
#include "selection/calibration.h"
#include "selection/heuristics.h"

namespace hytap {

Advisor::Advisor(AdvisorOptions options) : options_(std::move(options)) {}

Recommendation Advisor::Recommend(const TieredTable& table,
                                  double budget_bytes) const {
  Recommendation rec;
  rec.workload = table.plan_cache().ToWorkload(table.table());
  rec.params_used = options_.cost_params;
  if (options_.use_calibrated_params && options_.calibrator != nullptr) {
    rec.params_used = options_.calibrator->Fitted();
  }

  SelectionProblem problem;
  problem.workload = &rec.workload;
  problem.params = rec.params_used;
  problem.budget_bytes = budget_bytes;
  if (options_.beta > 0.0) {
    problem.beta = options_.beta;
    problem.current.resize(table.table().column_count());
    for (size_t i = 0; i < problem.current.size(); ++i) {
      problem.current[i] = table.table().placement()[i] ? 1 : 0;
    }
  }
  if (!options_.pinned_columns.empty()) {
    problem.pinned.assign(rec.workload.column_count(), 0);
    for (ColumnId c : options_.pinned_columns) {
      HYTAP_ASSERT(c < problem.pinned.size(), "pinned column out of range");
      problem.pinned[c] = 1;
    }
  }

  switch (options_.algorithm) {
    case AdvisorAlgorithm::kExplicit:
      rec.selection = SelectExplicit(problem, /*filling=*/true);
      break;
    case AdvisorAlgorithm::kIntegerOptimal:
      rec.selection = SelectIntegerOptimal(problem);
      break;
    case AdvisorAlgorithm::kGreedyMarginal:
      rec.selection = SelectGreedyMarginal(problem);
      break;
    case AdvisorAlgorithm::kPortfolio: {
      SolverPortfolio portfolio(options_.portfolio);
      PortfolioResult result = portfolio.Solve(problem);
      rec.selection = std::move(result.selection);
      rec.winner = std::move(result.winner);
      rec.deadline_hit = result.deadline_hit;
      break;
    }
  }
  rec.in_dram.assign(rec.selection.in_dram.begin(),
                     rec.selection.in_dram.end());
  return rec;
}

Recommendation Advisor::RecommendRelative(const TieredTable& table,
                                          double w) const {
  HYTAP_ASSERT(w >= 0.0 && w <= 1.0, "relative budget must be in [0, 1]");
  double total = 0.0;
  for (ColumnId c = 0; c < table.table().column_count(); ++c) {
    total += double(table.table().ColumnDramBytes(c));
  }
  return Recommend(table, w * total);
}

StatusOr<uint64_t> Advisor::Apply(TieredTable* table,
                                  double budget_bytes) const {
  Recommendation rec = Recommend(*table, budget_bytes);
  return table->ApplyPlacement(rec.in_dram);
}

}  // namespace hytap

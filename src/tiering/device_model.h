#ifndef HYTAP_TIERING_DEVICE_MODEL_H_
#define HYTAP_TIERING_DEVICE_MODEL_H_

#include <cstdint>
#include <string>

#include "common/random.h"

namespace hytap {

/// Identifies one of the evaluated storage devices (paper §IV).
enum class DeviceKind {
  kDram,    // reference: fully DRAM-resident
  kCssd,    // consumer SSD (Samsung 850 Pro, NAND)
  kEssd,    // enterprise SSD (SanDisk Fusion ioMemory PX600, NAND,
            // bandwidth-optimized, needs deep queues)
  kHdd,     // WD40EZRX SATA disk
  kXpoint,  // Intel Optane P4800X (3D XPoint, ~10x lower random latency
            // than NAND at shallow queues)
};

/// Calibrated performance profile of a storage device.
///
/// We do not have the paper's physical devices, so each device is replaced by
/// an analytic model calibrated to its published characteristics. The model
/// captures exactly the behaviours the paper's figures depend on:
///  - random 4 KB read latency at queue depth 1 (Fig. 7, Fig. 8),
///  - latency tails (99th percentile, Fig. 7),
///  - throughput scaling with queue depth / thread count (Fig. 9),
///  - sequential bandwidth vs random IOPS (Fig. 9a vs 9b),
///  - HDD collapse under concurrent random access (Table IV).
struct DeviceProfile {
  std::string name;
  /// Service time of one 4 KB random read at queue depth 1.
  uint64_t random_read_ns_qd1;
  /// Sequential read bandwidth in MB/s (single stream).
  uint64_t sequential_mbps;
  /// Random-read throughput ceiling at deep queues (IOPS).
  uint64_t max_random_iops;
  /// Queue depth needed to reach the IOPS ceiling (ESSD needs deep queues).
  uint32_t saturation_queue_depth;
  /// Fraction of reads hitting the latency tail (NAND GC pauses etc.).
  double tail_probability;
  /// Tail latency multiplier relative to the base service time.
  double tail_multiplier;
  /// True for devices with a single mechanical actuator: random requests
  /// serialize and interleaved streams degrade sequential throughput.
  bool mechanical;
};

/// Returns the calibrated profile for `kind`.
DeviceProfile GetDeviceProfile(DeviceKind kind);

const char* DeviceKindName(DeviceKind kind);

/// All secondary-storage devices evaluated in the paper (excludes DRAM).
inline constexpr DeviceKind kSecondaryDevices[] = {
    DeviceKind::kCssd, DeviceKind::kEssd, DeviceKind::kHdd,
    DeviceKind::kXpoint};

/// Analytic timing model of one device. Thread-safe for const use; latency
/// jitter uses a caller-provided Rng so runs stay deterministic.
class DeviceModel {
 public:
  explicit DeviceModel(DeviceKind kind);
  explicit DeviceModel(DeviceProfile profile);

  const DeviceProfile& profile() const { return profile_; }

  /// Latency of a single 4 KB random read observed by one of `queue_depth`
  /// concurrent requesters, with tail jitter.
  uint64_t RandomReadLatencyNs(uint32_t queue_depth, Rng& rng) const;

  /// Deterministic mean service time (no jitter) of a random 4 KB read at the
  /// given queue depth; used by the cost model.
  uint64_t MeanRandomReadNs(uint32_t queue_depth) const;

  /// Total elapsed time for `pages` sequential 4 KB reads issued by
  /// `threads` concurrent streams.
  uint64_t SequentialReadNs(uint64_t pages, uint32_t threads) const;

  /// Total elapsed time for `pages` random 4 KB reads issued by `threads`
  /// concurrent requesters (throughput view, no jitter).
  uint64_t RandomReadBatchNs(uint64_t pages, uint32_t threads) const;

  /// Total elapsed time to write `pages` 4 KB pages sequentially (used for
  /// reallocation / migration cost accounting). Modeled at sequential
  /// bandwidth.
  uint64_t SequentialWriteNs(uint64_t pages, uint32_t threads) const;

 private:
  /// Aggregate random-read throughput (IOPS) at the given queue depth.
  double RandomIopsAt(uint32_t queue_depth) const;

  DeviceProfile profile_;
};

}  // namespace hytap

#endif  // HYTAP_TIERING_DEVICE_MODEL_H_

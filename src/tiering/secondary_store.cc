#include "tiering/secondary_store.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/assert.h"
#include "common/crc32.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"

namespace hytap {

namespace {

std::string PageMessage(const char* what, PageId id) {
  return std::string(what) + " (page " + std::to_string(id) + ")";
}

/// FlightEvent::code for kStoreFault events: 1-4 mirror
/// FaultInjector::ReadFault (transient, page-dead, corrupt-bits,
/// latency-spike); 5 marks a silent write corruption.
constexpr uint16_t kFlightCodeCorruptWrite = 5;

/// Registry handles resolved once; Add()/Observe() are gated on the
/// HYTAP_METRICS knob.
struct StoreMetrics {
  Counter* reads;
  Counter* read_failures;
  Counter* fast_fail_reads;
  Counter* retries;
  Counter* backoff_ns;
  Counter* checksum_failures;
  Counter* quarantined_pages;
  Counter* latency_spikes;
  Counter* transient_errors;
  Counter* page_writes;
  Counter* corrupted_writes;
  Counter* verify_failures;
  HistogramMetric* read_latency_ns;

  static StoreMetrics& Get() {
    static StoreMetrics metrics;
    return metrics;
  }

 private:
  StoreMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    reads = registry.GetCounter("hytap_store_reads_total");
    read_failures = registry.GetCounter("hytap_store_read_failures_total");
    fast_fail_reads = registry.GetCounter("hytap_store_fast_fail_reads_total");
    retries = registry.GetCounter("hytap_store_read_retries_total");
    backoff_ns = registry.GetCounter("hytap_store_retry_backoff_ns_total");
    checksum_failures =
        registry.GetCounter("hytap_store_checksum_failures_total");
    quarantined_pages =
        registry.GetCounter("hytap_store_quarantined_pages_total");
    latency_spikes = registry.GetCounter("hytap_store_latency_spikes_total");
    transient_errors =
        registry.GetCounter("hytap_store_transient_errors_total");
    page_writes = registry.GetCounter("hytap_store_page_writes_total");
    corrupted_writes =
        registry.GetCounter("hytap_store_corrupted_writes_total");
    verify_failures =
        registry.GetCounter("hytap_store_verify_failures_total");
    read_latency_ns = registry.GetHistogram("hytap_store_read_latency_ns",
                                            DurationNsBuckets());
  }
};

}  // namespace

uint32_t SecondaryStore::DefaultMaxReadRetries() {
  if (const char* env = std::getenv("HYTAP_MAX_READ_RETRIES")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value >= 0 && value <= 64) return uint32_t(value);
  }
  return 4;
}

SecondaryStore::SecondaryStore(DeviceKind device, uint64_t timing_seed,
                               FaultConfig fault_config)
    : device_(device),
      timing_seed_(timing_seed),
      fault_config_(fault_config),
      timing_rng_(timing_seed),
      max_read_retries_(DefaultMaxReadRetries()) {
  if (fault_config.AnyFaults()) {
    injector_ = std::make_unique<FaultInjector>(fault_config);
  }
}

void SecondaryStore::ConfigureFaults(FaultConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_config_ = config;
  injector_ = config.AnyFaults() ? std::make_unique<FaultInjector>(config)
                                 : nullptr;
  quarantine_.clear();
  fault_stats_ = FaultStats();
}

namespace {

/// splitmix64-style finalizer: decorrelates sequential tickets into
/// independent-looking seeds.
uint64_t MixSeed(uint64_t seed, uint64_t ticket) {
  uint64_t z = seed + (ticket + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

SecondaryStore::ReadStream::ReadStream(uint64_t timing_seed,
                                       const FaultConfig& faults)
    : timing_rng_(timing_seed) {
  if (faults.AnyFaults()) {
    injector_ = std::make_unique<FaultInjector>(faults);
  }
}

SecondaryStore::ReadStream SecondaryStore::MakeStream(uint64_t ticket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  FaultConfig faults = fault_config_;
  faults.seed = MixSeed(faults.seed, ticket);
  ReadStream stream(MixSeed(timing_seed_, ticket), faults);
  stream.ticket_ = ticket;
  return stream;
}

void SecondaryStore::SetFlightStamp(uint64_t window, uint64_t sim_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  flight_window_ = window;
  flight_sim_ns_ = sim_ns;
}

PageId SecondaryStore::AllocatePage() {
  std::lock_guard<std::mutex> lock(mutex_);
  pages_.push_back(std::make_unique<Page>());
  pages_.back()->fill(0);
  // Checksum of an all-zero page (same for every fresh allocation).
  static const uint32_t kZeroPageCrc = [] {
    Page zero;
    zero.fill(0);
    return Crc32c(zero.data(), kPageSize);
  }();
  checksums_.push_back(kZeroPageCrc);
  verified_.push_back(true);  // freshly zeroed media trivially matches
  return static_cast<PageId>(pages_.size() - 1);
}

void SecondaryStore::WritePage(PageId id, const Page& data) {
  std::lock_guard<std::mutex> lock(mutex_);
  HYTAP_ASSERT(id < pages_.size(), "WritePage: page id out of range");
  // The checksum always covers the *intended* payload; a corrupted write
  // leaves the media and the checksum disagreeing, which is exactly how
  // silent corruption is detected on read-back.
  checksums_[id] = Crc32c(data.data(), kPageSize);
  verified_[id] = false;  // read-back verifies the media once
  StoreMetrics::Get().page_writes->Add();
  if (injector_ != nullptr) {
    if (injector_->WritePage(data.data(), pages_[id]->data(), kPageSize)) {
      ++fault_stats_.corrupted_writes;
      StoreMetrics::Get().corrupted_writes->Add();
      // Write corruption is silent at write time; the flight event is what
      // lets a postmortem pin the later verify failure to its cause.
      FlightEvent event{};
      event.window = flight_window_;
      event.sim_ns = flight_sim_ns_;
      event.seq = flight_seq_++;
      event.type = uint16_t(FlightEventType::kStoreFault);
      event.code = kFlightCodeCorruptWrite;
      event.a = id;
      FlightRecorder::Global().Record(event);
    }
    return;
  }
  *pages_[id] = data;
}

StatusOr<SecondaryStore::ReadOutcome> SecondaryStore::ReadPage(
    PageId id, Page* dest, AccessPattern pattern, uint32_t queue_depth,
    ReadStream* stream, ReadFaultReport* report) {
  std::lock_guard<std::mutex> lock(mutex_);
  HYTAP_ASSERT(id < pages_.size(), "ReadPage: page id out of range");
  ++reads_;
  StoreMetrics& metrics = StoreMetrics::Get();
  metrics.reads->Add();
  // Streamed (session) reads never consult the quarantine set: a session's
  // outcome must depend only on its own draws, not on whether another query
  // happened to quarantine the page first. The page is re-evaluated and —
  // failing — re-quarantined idempotently below.
  if (stream == nullptr) {
    if (auto it = quarantine_.find(id); it != quarantine_.end()) {
      ++fault_stats_.fast_fail_reads;
      metrics.fast_fail_reads->Add();
      return it->second == StatusCode::kDataLoss
                 ? Status::DataLoss(PageMessage("quarantined: corrupt", id))
                 : Status::Unavailable(PageMessage("quarantined: dead", id));
    }
  }
  Rng& timing_rng = stream != nullptr ? stream->timing_rng_ : timing_rng_;
  FaultInjector* injector =
      stream != nullptr ? stream->injector_.get() : injector_.get();

  // Flight events from streamed reads are identified by (ticket, stream
  // sequence) — both pure functions of the session's ticket — while serial
  // (non-streamed) reads use the store-wide sequence plus the stamps set by
  // the migration path, so dumps stay bit-identical across worker counts.
  auto flight = [&](FlightEventType type, uint16_t code, uint64_t b) {
    if (!FlightRecorderEnabled()) return;
    FlightEvent event{};
    if (stream != nullptr) {
      event.ticket = stream->ticket_;
      event.seq = stream->event_seq_++;
    } else {
      event.window = flight_window_;
      event.sim_ns = flight_sim_ns_;
      event.seq = flight_seq_++;
    }
    event.type = uint16_t(type);
    event.code = code;
    event.a = id;
    event.b = b;
    FlightRecorder::Global().Record(event);
  };

  auto quarantine_page = [&](StatusCode code) {
    ++fault_stats_.failed_reads;
    metrics.read_failures->Add();
    if (quarantine_.emplace(id, code).second) {
      ++fault_stats_.quarantined_pages;
      metrics.quarantined_pages->Add();
    }
    flight(FlightEventType::kStoreQuarantine, uint16_t(code), 0);
    if (report != nullptr) report->quarantined = true;
  };

  ReadOutcome outcome;
  uint64_t backoff_ns = kRetryBackoffBaseNs;
  bool checksum_failed = false;
  for (uint32_t attempt = 0; attempt <= max_read_retries_; ++attempt) {
    if (attempt > 0) {
      outcome.latency_ns += backoff_ns;
      metrics.retries->Add();
      metrics.backoff_ns->Add(backoff_ns);
      backoff_ns *= 2;
      ++outcome.retries;
      ++fault_stats_.retries;
      if (report != nullptr) ++report->retries;
    }
    uint64_t latency_ns;
    if (pattern == AccessPattern::kRandom) {
      // Per-requester latency among `queue_depth` concurrent requesters;
      // dividing the summed latencies by the thread count yields wall time.
      latency_ns = device_.RandomReadLatencyNs(queue_depth, timing_rng);
    } else {
      // SequentialReadNs is already aggregate elapsed time for the batch, so
      // scale by the requester count to keep the same "summed device time"
      // convention as random reads (IoStats::WallNs divides it back out).
      latency_ns = device_.SequentialReadNs(/*pages=*/1, queue_depth) *
                   queue_depth;
    }
    const FaultInjector::ReadFault fault =
        injector != nullptr ? injector->NextReadFault()
                            : FaultInjector::ReadFault::kNone;
    if (fault != FaultInjector::ReadFault::kNone) {
      flight(FlightEventType::kStoreFault, uint16_t(fault), attempt);
    }
    if (fault == FaultInjector::ReadFault::kLatencySpike) {
      latency_ns = uint64_t(double(latency_ns) *
                            injector->config().latency_spike_multiplier);
      ++fault_stats_.latency_spikes;
      metrics.latency_spikes->Add();
    }
    outcome.latency_ns += latency_ns;
    if (fault == FaultInjector::ReadFault::kPageDead) {
      // Grown bad block: the device reports the page permanently
      // unreadable; retrying cannot help.
      total_read_ns_ += outcome.latency_ns;
      ++fault_stats_.dead_pages;
      quarantine_page(StatusCode::kUnavailable);
      return Status::Unavailable(PageMessage("page failed permanently", id));
    }
    if (fault == FaultInjector::ReadFault::kTransientError) {
      ++fault_stats_.transient_errors;
      metrics.transient_errors->Add();
      checksum_failed = false;
      continue;
    }
    std::memcpy(dest->data(), pages_[id]->data(), kPageSize);
    if (fault == FaultInjector::ReadFault::kCorruptBits) {
      injector->CorruptBits(dest->data(), kPageSize);
      ++fault_stats_.corrupted_reads;
    }
    // With no injector armed the memory-backed media cannot change between
    // writes, so one verification per write amortizes the CRC to zero on
    // the fault-free fast path. An armed injector can corrupt bytes in
    // transit, so then every delivered buffer is re-verified.
    const bool must_verify =
        verify_checksums_ && (injector != nullptr || !verified_[id]);
    if (must_verify) {
      if (Crc32c(dest->data(), kPageSize) != checksums_[id]) {
        // In-transit corruption clears on a re-read; corruption of the
        // stored bytes fails every retry and is declared data loss below.
        ++fault_stats_.checksum_failures;
        metrics.checksum_failures->Add();
        flight(FlightEventType::kStoreChecksumFail, 0, attempt);
        if (report != nullptr) ++report->checksum_failures;
        checksum_failed = true;
        continue;
      }
      if (injector == nullptr) verified_[id] = true;
    }
    total_read_ns_ += outcome.latency_ns;
    metrics.read_latency_ns->Observe(outcome.latency_ns);
    // Everything but the final attempt's own device time was retry waste.
    outcome.retry_ns = outcome.latency_ns - latency_ns;
    return outcome;
  }
  total_read_ns_ += outcome.latency_ns;
  if (checksum_failed) {
    // The stored bytes themselves fail verification — the buffered-path
    // twin of a VerifyPage read-back failure, counted under the same
    // verify-failure statistics.
    ++fault_stats_.verify_failures;
    metrics.verify_failures->Add();
    if (report != nullptr) ++report->verify_failures;
    quarantine_page(StatusCode::kDataLoss);
    // Persistent corruption of the stored bytes is the postmortem trigger:
    // transient in-transit flips clear on retry and only log events.
    FlightRecorder::Global().Anomaly(
        AnomalyKind::kChecksumFailure, "store_data_loss",
        stream != nullptr ? stream->ticket_ : 0, flight_window_,
        flight_sim_ns_, id);
    return Status::DataLoss(
        PageMessage("checksum mismatch persisted across retries", id));
  }
  quarantine_page(StatusCode::kUnavailable);
  return Status::Unavailable(
      PageMessage("read failed after max retries", id));
}

Status SecondaryStore::VerifyPage(PageId id) const {
  HYTAP_ASSERT(id < pages_.size(), "VerifyPage: page id out of range");
  if (Crc32c(pages_[id]->data(), kPageSize) != checksums_[id]) {
    // PR 7 closed its eyes here: read-back failures aborted the migration
    // but never counted anywhere. Every VerifyPage failure now lands in
    // FaultStats::verify_failures + hytap_store_verify_failures_total and
    // on the flight timeline.
    std::lock_guard<std::mutex> lock(mutex_);
    ++fault_stats_.verify_failures;
    StoreMetrics::Get().verify_failures->Add();
    if (FlightRecorderEnabled()) {
      FlightEvent event{};
      event.window = flight_window_;
      event.sim_ns = flight_sim_ns_;
      event.seq = flight_seq_++;
      event.type = uint16_t(FlightEventType::kStoreVerifyFail);
      event.a = id;
      FlightRecorder::Global().Record(event);
      FlightRecorder::Global().Anomaly(AnomalyKind::kChecksumFailure,
                                       "verify_read_back", 0, flight_window_,
                                       flight_sim_ns_, id);
    }
    return Status::DataLoss(PageMessage("stored page fails checksum", id));
  }
  return Status::Ok();
}

const SecondaryStore::Page& SecondaryStore::RawPage(PageId id) const {
  HYTAP_ASSERT(id < pages_.size(), "RawPage: page id out of range");
  return *pages_[id];
}

void SecondaryStore::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  total_read_ns_ = 0;
  reads_ = 0;
  fault_stats_ = FaultStats();
  fault_stats_.quarantined_pages = quarantine_.size();
}

}  // namespace hytap

#include "tiering/secondary_store.h"

#include <cstring>

#include "common/assert.h"

namespace hytap {

SecondaryStore::SecondaryStore(DeviceKind device, uint64_t timing_seed)
    : device_(device), timing_rng_(timing_seed) {}

PageId SecondaryStore::AllocatePage() {
  pages_.push_back(std::make_unique<Page>());
  pages_.back()->fill(0);
  return static_cast<PageId>(pages_.size() - 1);
}

void SecondaryStore::WritePage(PageId id, const Page& data) {
  HYTAP_ASSERT(id < pages_.size(), "WritePage: page id out of range");
  *pages_[id] = data;
}

uint64_t SecondaryStore::ReadPage(PageId id, Page* dest,
                                  AccessPattern pattern,
                                  uint32_t queue_depth) {
  HYTAP_ASSERT(id < pages_.size(), "ReadPage: page id out of range");
  std::memcpy(dest->data(), pages_[id]->data(), kPageSize);
  uint64_t latency_ns;
  if (pattern == AccessPattern::kRandom) {
    // Per-requester latency among `queue_depth` concurrent requesters;
    // dividing the summed latencies by the thread count yields wall time.
    latency_ns = device_.RandomReadLatencyNs(queue_depth, timing_rng_);
  } else {
    // SequentialReadNs is already aggregate elapsed time for the batch, so
    // scale by the requester count to keep the same "summed device time"
    // convention as random reads (IoStats::WallNs divides it back out).
    latency_ns = device_.SequentialReadNs(/*pages=*/1, queue_depth) *
                 queue_depth;
  }
  total_read_ns_ += latency_ns;
  ++reads_;
  return latency_ns;
}

const SecondaryStore::Page& SecondaryStore::RawPage(PageId id) const {
  HYTAP_ASSERT(id < pages_.size(), "RawPage: page id out of range");
  return *pages_[id];
}

void SecondaryStore::ResetStats() {
  total_read_ns_ = 0;
  reads_ = 0;
}

}  // namespace hytap

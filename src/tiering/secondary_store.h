#ifndef HYTAP_TIERING_SECONDARY_STORE_H_
#define HYTAP_TIERING_SECONDARY_STORE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "tiering/device_model.h"
#include "tiering/fault_injector.h"

namespace hytap {

/// Access pattern hint for device timing.
enum class AccessPattern { kSequential, kRandom };

/// Simulated backoff charged before the first retry of a failed page read;
/// doubles per subsequent retry (exponential backoff). Calibrated to a few
/// device service times so retried reads stay visible in latency tails
/// without dominating them.
inline constexpr uint64_t kRetryBackoffBaseNs = 100000;  // 100 us

/// A paged secondary-storage volume backed by memory with device-model
/// timing. Stands in for the paper's SSD/HDD/3D XPoint volumes: page
/// contents are real (reads return the stored bytes); only the timing is
/// simulated (see DeviceModel).
///
/// Reliability model: every page carries a CRC32C checksum computed on
/// WritePage and verified on ReadPage — lazily (once per write, on the
/// first read-back) while the volume is fault-free, since the memory-backed
/// media cannot change between writes, and on every read while a
/// FaultInjector is armed (in-transit corruption). The optional seeded
/// injector makes the volume fail like real hardware (transient read
/// errors, grown bad blocks, in-transit and written-out corruption, latency
/// spikes).
/// ReadPage retries transient failures with exponential backoff charged to
/// the simulated latency; pages that fail permanently or hold corrupt bytes
/// are quarantined and fail fast on later reads.
class SecondaryStore {
 public:
  using Page = std::array<uint8_t, kPageSize>;

  /// Outcome of a successful page read.
  struct ReadOutcome {
    /// Simulated latency (device time + retry backoff) for one requester
    /// among `queue_depth` concurrent ones.
    uint64_t latency_ns = 0;
    /// Read attempts beyond the first.
    uint32_t retries = 0;
    /// The retry-waste slice of latency_ns: backoff charges plus the device
    /// latency of failed attempts. latency_ns - retry_ns is the final
    /// successful attempt's productive device time.
    uint64_t retry_ns = 0;
  };

  /// Fault activity of one ReadPage call, reported on success *and* failure
  /// paths so a caller (the buffer manager) can attribute per-fetch deltas
  /// without racing on the store-wide FaultStats under concurrent sessions.
  struct ReadFaultReport {
    uint32_t checksum_failures = 0;
    uint32_t retries = 0;
    /// The stored bytes failed verification on every retry (kDataLoss) —
    /// the buffered-path counterpart of a VerifyPage read-back failure.
    uint32_t verify_failures = 0;
    /// This read quarantined its page (newly dead / persistently corrupt).
    bool quarantined = false;
  };

  /// Session-private nondeterminism streams. A serving session draws its
  /// timing jitter and fault schedule from its own Rng pair, seeded from the
  /// store's seeds and the session's ticket — so each query's draws are a
  /// pure function of (store state, query, ticket) and bit-identical whether
  /// sessions run concurrently or serially replayed in ticket order. Streamed
  /// reads also skip the quarantine fast-fail consult (cross-query coupling
  /// through quarantine arrival order would break that purity); quarantine
  /// *insertion* still happens, keeping the page fenced for synchronous
  /// callers.
  class ReadStream {
   public:
    ReadStream(uint64_t timing_seed, const FaultConfig& faults);

   private:
    friend class SecondaryStore;
    Rng timing_rng_;
    std::unique_ptr<FaultInjector> injector_;  // null = fault-free
    /// Flight-event identity: the owning session's ticket and a per-stream
    /// event sequence. Both are pure functions of the ticket, so fault
    /// events recorded from concurrent sessions stay dump-deterministic.
    uint64_t ticket_ = 0;
    uint32_t event_seq_ = 0;
  };

  /// Derives the draw streams for session ticket `ticket`.
  ReadStream MakeStream(uint64_t ticket) const;

  /// Fault injection defaults to the HYTAP_FAULT_* environment knobs (all
  /// disabled when unset), so production builds pay only the checksum.
  explicit SecondaryStore(DeviceKind device, uint64_t timing_seed = 42,
                          FaultConfig fault_config = FaultConfig::FromEnv());

  SecondaryStore(const SecondaryStore&) = delete;
  SecondaryStore& operator=(const SecondaryStore&) = delete;

  /// Allocates a zeroed page; returns its id.
  PageId AllocatePage();

  /// Writes a full page and records its checksum. The write may be silently
  /// corrupted by the fault injector (torn half-page / bit flips) — that is
  /// the point: corruption is only *detected* by ReadPage / VerifyPage.
  /// Timing is accounted separately via DeviceModel::SequentialWriteNs
  /// during migration.
  void WritePage(PageId id, const Page& data);

  /// Reads a page into `dest` with bounded retry + exponential backoff.
  /// Returns the simulated latency/retry outcome, or:
  ///  - kUnavailable: the page is permanently dead or transient errors
  ///    persisted through every retry (the page is quarantined);
  ///  - kDataLoss: the stored bytes fail their checksum on every retry
  ///    (silent corruption detected; the page is quarantined).
  /// On any error `dest` holds no valid data and no state other than the
  /// quarantine set and stats is modified.
  /// `stream` (optional) supplies session-private timing/fault draws — see
  /// ReadStream. `report` (optional) receives this call's fault activity on
  /// both the success and failure path.
  StatusOr<ReadOutcome> ReadPage(PageId id, Page* dest, AccessPattern pattern,
                                 uint32_t queue_depth = 1,
                                 ReadStream* stream = nullptr,
                                 ReadFaultReport* report = nullptr);

  /// Recomputes the stored page's checksum (timing-free, no fault
  /// injection). Used by migration verify-after-write and bulk verification;
  /// returns kDataLoss on mismatch. Every failure counts into
  /// FaultStats::verify_failures / hytap_store_verify_failures_total and
  /// records a kStoreVerifyFail flight event.
  Status VerifyPage(PageId id) const;

  /// Stamps subsequent non-streamed flight events (faults, quarantines,
  /// verify failures on the serial migration/accounting paths) with a
  /// monitor window index and simulated time, so they sort into the dump
  /// timeline at the point of the operation that caused them. Streamed
  /// (session) events ignore the stamp — they are identified by
  /// (ticket, stream sequence) instead.
  void SetFlightStamp(uint64_t window, uint64_t sim_ns);

  /// Direct (timing-free) access for verification and migration and for the
  /// parallel data passes, which only touch pages a serial accounting pass
  /// already fetched and checksum-verified through ReadPage.
  const Page& RawPage(PageId id) const;

  /// Replaces the fault injector (e.g. to start injecting after a clean
  /// load phase) and clears the quarantine set and fault stats.
  void ConfigureFaults(FaultConfig config);

  /// Disables/enables checksum verification on reads (overhead benchmarks
  /// only; verification is on by default).
  void set_verify_checksums(bool verify) { verify_checksums_ = verify; }
  bool verify_checksums() const { return verify_checksums_; }

  /// Maximum read retries after a failed attempt (HYTAP_MAX_READ_RETRIES
  /// environment override, default 4).
  void set_max_read_retries(uint32_t retries) { max_read_retries_ = retries; }
  uint32_t max_read_retries() const { return max_read_retries_; }

  size_t page_count() const { return pages_.size(); }
  uint64_t total_read_ns() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_read_ns_;
  }
  uint64_t reads() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reads_;
  }
  const DeviceModel& device() const { return device_; }
  /// Aggregate fault statistics. Returned by reference for cheap field
  /// access; callers must be quiesced (no in-flight session reads) — tests
  /// and benches read it after Drain()/Await.
  const FaultStats& fault_stats() const { return fault_stats_; }
  bool IsQuarantined(PageId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantine_.find(id) != quarantine_.end();
  }

  void ResetStats();

 private:
  static uint32_t DefaultMaxReadRetries();

  DeviceModel device_;
  uint64_t timing_seed_;
  FaultConfig fault_config_;
  Rng timing_rng_;
  std::unique_ptr<FaultInjector> injector_;  // null = fault-free
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<uint32_t> checksums_;
  /// Media verified since its last write (fault-free reads skip the CRC).
  std::vector<bool> verified_;
  /// Pages that failed permanently, with the status code to fail fast with
  /// (kUnavailable or kDataLoss).
  std::unordered_map<PageId, StatusCode> quarantine_;
  uint32_t max_read_retries_;
  bool verify_checksums_ = true;
  uint64_t total_read_ns_ = 0;
  uint64_t reads_ = 0;
  /// Mutable: VerifyPage is logically const (it changes no page state) but
  /// accounts its failures.
  mutable FaultStats fault_stats_;
  /// Flight-event sequence for non-streamed events and the stamps applied
  /// to them (see SetFlightStamp). All guarded by mutex_.
  mutable uint32_t flight_seq_ = 0;
  uint64_t flight_window_ = 0;
  uint64_t flight_sim_ns_ = 0;
  /// Serializes ReadPage/WritePage and stats against concurrent sessions.
  /// RawPage stays lock-free: pages are stable unique_ptrs and the serving
  /// layer excludes allocation/migration while queries are in flight.
  mutable std::mutex mutex_;
};

}  // namespace hytap

#endif  // HYTAP_TIERING_SECONDARY_STORE_H_

#ifndef HYTAP_TIERING_SECONDARY_STORE_H_
#define HYTAP_TIERING_SECONDARY_STORE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "tiering/device_model.h"

namespace hytap {

/// Access pattern hint for device timing.
enum class AccessPattern { kSequential, kRandom };

/// A paged secondary-storage volume backed by memory with device-model
/// timing. Stands in for the paper's SSD/HDD/3D XPoint volumes: page
/// contents are real (reads return the stored bytes); only the timing is
/// simulated (see DeviceModel).
class SecondaryStore {
 public:
  using Page = std::array<uint8_t, kPageSize>;

  explicit SecondaryStore(DeviceKind device, uint64_t timing_seed = 42);

  SecondaryStore(const SecondaryStore&) = delete;
  SecondaryStore& operator=(const SecondaryStore&) = delete;

  /// Allocates a zeroed page; returns its id.
  PageId AllocatePage();

  /// Writes a full page. Timing is accounted separately via
  /// DeviceModel::SequentialWriteNs during migration.
  void WritePage(PageId id, const Page& data);

  /// Reads a page into `dest`; returns the simulated read latency in ns for
  /// one requester among `queue_depth` concurrent ones.
  uint64_t ReadPage(PageId id, Page* dest, AccessPattern pattern,
                    uint32_t queue_depth = 1);

  /// Direct (timing-free) access for verification and migration.
  const Page& RawPage(PageId id) const;

  size_t page_count() const { return pages_.size(); }
  uint64_t total_read_ns() const { return total_read_ns_; }
  uint64_t reads() const { return reads_; }
  const DeviceModel& device() const { return device_; }

  void ResetStats();

 private:
  DeviceModel device_;
  Rng timing_rng_;
  std::vector<std::unique_ptr<Page>> pages_;
  uint64_t total_read_ns_ = 0;
  uint64_t reads_ = 0;
};

}  // namespace hytap

#endif  // HYTAP_TIERING_SECONDARY_STORE_H_

#ifndef HYTAP_TIERING_FAULT_INJECTOR_H_
#define HYTAP_TIERING_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>

#include "common/random.h"

namespace hytap {

/// Fault-injection rates for a SecondaryStore (all probabilities per
/// read attempt / per page write). All zero by default: the store behaves
/// exactly like the fault-free seed engine.
///
/// The taxonomy mirrors how the paper's secondary devices (SSD/HDD/3D
/// XPoint volumes, §II-C) actually fail in production:
///  - transient read errors (bus resets, command timeouts) — retryable;
///  - persistent page failures (grown bad blocks) — permanent, the page is
///    quarantined;
///  - in-transit corruption (bit flips between media and host) — caught by
///    the page checksum, cleared by a re-read;
///  - write corruption (torn half-page writes on power loss, firmware bit
///    flips) — *silent* at write time, detected by verify-on-read /
///    read-back checksums;
///  - latency spikes (NAND garbage-collection pauses).
struct FaultConfig {
  uint64_t seed = 0;
  /// Probability that a read attempt fails transiently (retry succeeds).
  double read_error_rate = 0.0;
  /// Probability that a read attempt discovers the page permanently dead.
  double page_failure_rate = 0.0;
  /// Probability that a read attempt delivers bit-flipped bytes (the
  /// stored page stays intact; a retry re-reads clean data).
  double read_corruption_rate = 0.0;
  /// Probability that a page write is silently corrupted on the media
  /// (torn half-page or bit flips). Detected only by checksum on read-back.
  double write_corruption_rate = 0.0;
  /// Probability that a read attempt hits a latency spike.
  double latency_spike_rate = 0.0;
  /// Latency multiplier applied to spiked reads.
  double latency_spike_multiplier = 20.0;

  /// True if any injection rate is non-zero.
  bool AnyFaults() const;

  /// Reads HYTAP_FAULT_SEED, HYTAP_FAULT_READ_ERROR_RATE,
  /// HYTAP_FAULT_PAGE_FAILURE_RATE, HYTAP_FAULT_READ_CORRUPTION_RATE,
  /// HYTAP_FAULT_WRITE_CORRUPTION_RATE and HYTAP_FAULT_LATENCY_SPIKE_RATE
  /// from the environment (unset = 0, i.e. disabled).
  static FaultConfig FromEnv();
};

/// Counts of injected faults and of the recovery work they caused.
struct FaultStats {
  uint64_t transient_errors = 0;   // injected transient read failures
  uint64_t corrupted_reads = 0;    // injected in-transit corruptions
  uint64_t corrupted_writes = 0;   // injected silent write corruptions
  uint64_t dead_pages = 0;         // pages declared permanently failed
  uint64_t latency_spikes = 0;     // injected latency spikes
  uint64_t checksum_failures = 0;  // corruptions *detected* by checksum
  uint64_t verify_failures = 0;    // VerifyPage checksum mismatches
                                   // (migration read-back + bulk verify)
  uint64_t retries = 0;            // read attempts beyond the first
  uint64_t failed_reads = 0;       // ReadPage calls that returned non-OK
  uint64_t fast_fail_reads = 0;    // reads rejected on a quarantined page
  uint64_t quarantined_pages = 0;  // pages currently quarantined
};

/// Deterministic, seeded fault source for one SecondaryStore.
///
/// The injector draws exactly one uniform variate per read attempt (plus
/// extra draws only when a corruption fires), so for a fixed seed the fault
/// schedule depends only on the *sequence* of page accesses — which the
/// engine keeps serialized in its deterministic accounting passes. The same
/// workload therefore sees the same faults at every worker count.
class FaultInjector {
 public:
  enum class ReadFault {
    kNone,
    kTransientError,  // attempt fails, dest untouched; retryable
    kPageDead,        // page permanently unreadable
    kCorruptBits,     // attempt delivers flipped bits; retryable
    kLatencySpike,    // attempt succeeds but is slow
  };

  explicit FaultInjector(FaultConfig config);

  const FaultConfig& config() const { return config_; }

  /// Draws the fault (if any) for one read attempt.
  ReadFault NextReadFault();

  /// Flips 1-8 random bits in the `size`-byte buffer (in-transit damage).
  void CorruptBits(uint8_t* data, size_t size);

  /// Decides whether this page write is silently corrupted; if so, applies
  /// either a torn half-page write (first half of `src` lands, the rest of
  /// `stored` keeps its previous contents) or random bit flips to `stored`
  /// and returns true. Otherwise copies `src` to `stored` verbatim and
  /// returns false. Guarantees a corrupted result actually differs from
  /// `src`, so every injected write corruption is checksum-detectable.
  bool WritePage(const uint8_t* src, uint8_t* stored, size_t size);

 private:
  FaultConfig config_;
  Rng rng_;
};

}  // namespace hytap

#endif  // HYTAP_TIERING_FAULT_INJECTOR_H_

#ifndef HYTAP_TIERING_BUFFER_MANAGER_H_
#define HYTAP_TIERING_BUFFER_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "tiering/secondary_store.h"

namespace hytap {

/// Statistics exposed by the buffer manager.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t read_failures = 0;  // store reads that returned non-OK
  uint64_t read_retries = 0;   // store read attempts beyond the first
  /// CRC mismatches the store detected during reads issued by this cache
  /// (recovered by retry unless the read also shows up in read_failures).
  uint64_t checksum_failures = 0;
  /// Stored bytes that failed verification on every retry (kDataLoss) —
  /// the cache's view of the store's verify_failures accounting.
  uint64_t verify_failures = 0;
  /// Pages the store newly quarantined during reads issued by this cache —
  /// the per-cache view of SecondaryStore's PR 2 failure handling.
  uint64_t quarantined_pages = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : double(hits) / double(total);
  }
};

/// Fixed-capacity 4 KB page cache with CLOCK eviction and pinning.
///
/// Substitute for EMC's AMM library (paper §II-C): the paper uses AMM only as
/// a pre-allocated fixed-size page cache, which is exactly what this class
/// provides. The evaluation configures the cache to 2 % of the evicted data
/// size (Fig. 7), which we mirror in the benchmarks.
class BufferManager {
 public:
  /// `frame_count` pages of capacity over `store`. The store must outlive the
  /// buffer manager.
  BufferManager(SecondaryStore* store, size_t frame_count);

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Result of a page fetch: pointer into the frame plus simulated latency.
  struct Fetch {
    const SecondaryStore::Page* page = nullptr;
    uint64_t latency_ns = 0;
    bool hit = false;
    uint32_t retries = 0;
    /// CRC mismatches detected (and recovered by retry) during this fetch.
    uint32_t checksum_failures = 0;
    /// Retry-waste slice of latency_ns on a miss (backoff + failed-attempt
    /// device time); zero on hits.
    uint64_t retry_ns = 0;
  };

  /// Fetches `id`, reading through to the store on a miss. The returned
  /// pointer is valid until the next FetchPage call unless the page is
  /// pinned. On a failed store read (kUnavailable / kDataLoss) the error is
  /// returned, no frame is installed, and the cache state is as if the call
  /// never happened (apart from stats). Thread-safe (internally serialized);
  /// note that the parallel scan operators deliberately keep their FetchPage
  /// sequence on a single thread so hit/miss accounting — and with it the
  /// fault schedule — stays deterministic.
  StatusOr<Fetch> FetchPage(PageId id, AccessPattern pattern,
                            uint32_t queue_depth = 1);

  /// Pins `id` (must be resident after a FetchPage); pinned pages are never
  /// evicted. Pins nest.
  void Pin(PageId id);
  void Unpin(PageId id);

  bool IsResident(PageId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return frame_of_.count(id) > 0;
  }

  /// The backing store. Parallel scan workers read page payloads directly
  /// via SecondaryStore::RawPage (timing-free, immutable during reads)
  /// after the accounting pass fetched them through the cache.
  SecondaryStore* store() const { return store_; }

  /// Attaches session-private timing/fault draw streams (not owned; null
  /// detaches). Every subsequent store miss draws from `stream` instead of
  /// the store's global streams — the serving layer gives each query its own
  /// cold cache plus its own stream, which makes per-query results
  /// interleaving-independent.
  void set_stream(SecondaryStore::ReadStream* stream) { stream_ = stream; }

  size_t frame_count() const { return frames_.size(); }
  size_t resident_pages() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return frame_of_.size();
  }
  /// Returns a snapshot copy taken under the lock (a reference would let
  /// callers read the struct while another thread mutates it).
  BufferStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = BufferStats();
  }

  /// Drops all unpinned pages (used between benchmark phases).
  void Clear();

  /// Resets the cache to `frame_count` frames, dropping all pages. No page
  /// may be pinned when resizing.
  void Resize(size_t frame_count);

 private:
  struct Frame {
    SecondaryStore::Page data;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool referenced = false;
    bool occupied = false;
  };

  /// Returns the index of a free (or freshly evicted) frame.
  size_t FindVictim();

  /// Minimal locking for thread safety: one mutex over the frame table and
  /// CLOCK state. The engine's deterministic accounting passes serialize
  /// their fetches anyway, so this lock is effectively uncontended; it
  /// exists so independent components (benchmark drivers, future parallel
  /// probes) can share one cache without data races.
  mutable std::mutex mutex_;
  SecondaryStore* store_;
  SecondaryStore::ReadStream* stream_ = nullptr;  // not owned
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> frame_of_;
  size_t clock_hand_ = 0;
  BufferStats stats_;
};

}  // namespace hytap

#endif  // HYTAP_TIERING_BUFFER_MANAGER_H_

#include "tiering/device_model.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/types.h"

namespace hytap {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kDram:
      return "DRAM";
    case DeviceKind::kCssd:
      return "CSSD";
    case DeviceKind::kEssd:
      return "ESSD";
    case DeviceKind::kHdd:
      return "HDD";
    case DeviceKind::kXpoint:
      return "3DXPoint";
  }
  return "unknown";
}

DeviceProfile GetDeviceProfile(DeviceKind kind) {
  // Calibrated to the published characteristics of the devices in §IV.
  switch (kind) {
    case DeviceKind::kDram:
      // Not a block device: a "page access" is a pair of cache misses.
      return {"DRAM", 200, 80000, 5000000, 1, 0.0, 1.0, false};
    case DeviceKind::kCssd:
      // Samsung 850 Pro: ~100k IOPS at deep queues, ~550 MB/s sequential,
      // ~95 us QD1 random 4 KB, pronounced NAND latency tail.
      return {"CSSD", 95'000, 550, 100'000, 32, 0.02, 12.0, false};
    case DeviceKind::kEssd:
      // Fusion ioMemory PX600: bandwidth-optimized, ~2.7 GB/s sequential,
      // ~285k IOPS but only at very deep queues; QD1 latency ~92 us.
      return {"ESSD", 92'000, 2700, 285'000, 64, 0.015, 8.0, false};
    case DeviceKind::kHdd:
      // WD40EZRX: ~12 ms random service time, ~150 MB/s sequential,
      // single actuator (mechanical).
      return {"HDD", 12'000'000, 150, 83, 1, 0.02, 2.5, true};
    case DeviceKind::kXpoint:
      // Intel Optane P4800X: ~10 us QD1 (≈10x lower than NAND), ~550k IOPS
      // reached at shallow queues, 2.4 GB/s sequential, tight tail.
      return {"3DXPoint", 10'000, 2400, 550'000, 8, 0.001, 3.0, false};
  }
  HYTAP_UNREACHABLE("invalid DeviceKind");
}

DeviceModel::DeviceModel(DeviceKind kind) : profile_(GetDeviceProfile(kind)) {}

DeviceModel::DeviceModel(DeviceProfile profile)
    : profile_(std::move(profile)) {}

double DeviceModel::RandomIopsAt(uint32_t queue_depth) const {
  HYTAP_ASSERT(queue_depth >= 1, "queue depth must be >= 1");
  if (profile_.mechanical) {
    // A single actuator serializes requests; deeper queues allow mild
    // elevator-scheduling gains but nothing like SSD parallelism.
    const double elevator_gain = 1.0 + 0.15 * std::log2(double(queue_depth));
    return (1e9 / double(profile_.random_read_ns_qd1)) * elevator_gain;
  }
  const double qd1_iops = 1e9 / double(profile_.random_read_ns_qd1);
  // Linear scaling with queue depth until the device saturates.
  const double scaled =
      qd1_iops * std::min<double>(queue_depth, profile_.saturation_queue_depth);
  return std::min(scaled, double(profile_.max_random_iops));
}

uint64_t DeviceModel::MeanRandomReadNs(uint32_t queue_depth) const {
  // Each requester sees at least the QD1 service time; once the device
  // saturates, queueing inflates the observed latency.
  const double iops = RandomIopsAt(queue_depth);
  const double queueing_ns = double(queue_depth) * 1e9 / iops;
  return static_cast<uint64_t>(
      std::max<double>(profile_.random_read_ns_qd1, queueing_ns));
}

uint64_t DeviceModel::RandomReadLatencyNs(uint32_t queue_depth,
                                          Rng& rng) const {
  const double base = double(MeanRandomReadNs(queue_depth));
  // +/-10% service-time noise plus an occasional tail event.
  double latency = base * rng.NextDouble(0.9, 1.1);
  if (profile_.tail_probability > 0.0 &&
      rng.NextBool(profile_.tail_probability)) {
    latency *= rng.NextDouble(0.5 * profile_.tail_multiplier,
                              1.5 * profile_.tail_multiplier);
  }
  return static_cast<uint64_t>(latency);
}

uint64_t DeviceModel::SequentialReadNs(uint64_t pages,
                                       uint32_t threads) const {
  HYTAP_ASSERT(threads >= 1, "thread count must be >= 1");
  const double bytes = double(pages) * kPageSize;
  double bandwidth_bps = double(profile_.sequential_mbps) * 1e6;
  if (profile_.mechanical && threads > 1) {
    // Interleaved sequential streams turn into semi-random access on a disk.
    bandwidth_bps /= 1.0 + 0.8 * double(threads - 1);
  } else if (!profile_.mechanical) {
    // SSDs need concurrency to stream at full bandwidth; a single stream on a
    // bandwidth-optimized device (ESSD) reaches only part of the ceiling.
    const double saturation = double(profile_.saturation_queue_depth);
    const double utilization =
        std::min(1.0, (1.0 + double(threads - 1)) /
                          std::max(1.0, saturation / 8.0));
    bandwidth_bps *= std::max(0.25, utilization);
  }
  return static_cast<uint64_t>(bytes / bandwidth_bps * 1e9);
}

uint64_t DeviceModel::RandomReadBatchNs(uint64_t pages,
                                        uint32_t threads) const {
  const double iops = RandomIopsAt(threads);
  double elapsed_ns = double(pages) * 1e9 / iops;
  if (profile_.mechanical && threads > 1) {
    // Competing random streams defeat elevator scheduling.
    elapsed_ns *= 1.0 + 0.5 * std::log2(double(threads));
  }
  // A batch can never finish faster than one request's service time.
  return static_cast<uint64_t>(
      std::max<double>(elapsed_ns, profile_.random_read_ns_qd1));
}

uint64_t DeviceModel::SequentialWriteNs(uint64_t pages,
                                        uint32_t threads) const {
  // Writes modeled at sequential-read bandwidth; adequate for reallocation
  // cost accounting (the paper assumes maintenance windows are
  // bandwidth-bound, §III-D).
  return SequentialReadNs(pages, threads);
}

}  // namespace hytap

#include "tiering/fault_injector.h"

#include <cstdlib>
#include <cstring>

namespace hytap {

namespace {

double EnvRate(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return 0.0;
  const double rate = std::atof(value);
  if (rate < 0.0) return 0.0;
  return rate > 1.0 ? 1.0 : rate;
}

}  // namespace

bool FaultConfig::AnyFaults() const {
  return read_error_rate > 0.0 || page_failure_rate > 0.0 ||
         read_corruption_rate > 0.0 || write_corruption_rate > 0.0 ||
         latency_spike_rate > 0.0;
}

FaultConfig FaultConfig::FromEnv() {
  FaultConfig config;
  if (const char* seed = std::getenv("HYTAP_FAULT_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  config.read_error_rate = EnvRate("HYTAP_FAULT_READ_ERROR_RATE");
  config.page_failure_rate = EnvRate("HYTAP_FAULT_PAGE_FAILURE_RATE");
  config.read_corruption_rate = EnvRate("HYTAP_FAULT_READ_CORRUPTION_RATE");
  config.write_corruption_rate = EnvRate("HYTAP_FAULT_WRITE_CORRUPTION_RATE");
  config.latency_spike_rate = EnvRate("HYTAP_FAULT_LATENCY_SPIKE_RATE");
  return config;
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(config), rng_(config.seed) {}

FaultInjector::ReadFault FaultInjector::NextReadFault() {
  // One draw per attempt against stacked thresholds keeps the schedule a
  // pure function of (seed, attempt index).
  const double u = rng_.NextDouble();
  double threshold = config_.page_failure_rate;
  if (u < threshold) return ReadFault::kPageDead;
  threshold += config_.read_error_rate;
  if (u < threshold) return ReadFault::kTransientError;
  threshold += config_.read_corruption_rate;
  if (u < threshold) return ReadFault::kCorruptBits;
  threshold += config_.latency_spike_rate;
  if (u < threshold) return ReadFault::kLatencySpike;
  return ReadFault::kNone;
}

void FaultInjector::CorruptBits(uint8_t* data, size_t size) {
  const size_t flips = 1 + rng_.NextBounded(8);
  for (size_t f = 0; f < flips; ++f) {
    const size_t bit = rng_.NextBounded(size * 8);
    data[bit / 8] ^= uint8_t(1u << (bit % 8));
  }
}

bool FaultInjector::WritePage(const uint8_t* src, uint8_t* stored,
                              size_t size) {
  if (config_.write_corruption_rate <= 0.0 ||
      !rng_.NextBool(config_.write_corruption_rate)) {
    std::memcpy(stored, src, size);
    return false;
  }
  if (rng_.NextBool(0.5)) {
    // Torn write: only the first half of the new payload reaches the media.
    std::memcpy(stored, src, size / 2);
  } else {
    std::memcpy(stored, src, size);
    CorruptBits(stored, size);
  }
  while (std::memcmp(stored, src, size) == 0) {
    // The tear happened to be a no-op (old tail == new tail) or the flips
    // cancelled out; force a real corruption so every injected fault is
    // observable.
    CorruptBits(stored, size);
  }
  return true;
}

}  // namespace hytap

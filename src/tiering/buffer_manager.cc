#include "tiering/buffer_manager.h"

#include "common/assert.h"
#include "common/metrics.h"

namespace hytap {

namespace {

/// Registry handles resolved once; Add() itself is gated on the
/// HYTAP_METRICS knob.
struct BufferMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Counter* read_failures;

  static BufferMetrics& Get() {
    static BufferMetrics metrics;
    return metrics;
  }

 private:
  BufferMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    hits = registry.GetCounter("hytap_buffer_hits_total");
    misses = registry.GetCounter("hytap_buffer_misses_total");
    evictions = registry.GetCounter("hytap_buffer_evictions_total");
    read_failures = registry.GetCounter("hytap_buffer_read_failures_total");
  }
};

}  // namespace

BufferManager::BufferManager(SecondaryStore* store, size_t frame_count)
    : store_(store), frames_(frame_count == 0 ? 1 : frame_count) {
  HYTAP_ASSERT(store != nullptr, "BufferManager requires a store");
}

StatusOr<BufferManager::Fetch> BufferManager::FetchPage(
    PageId id, AccessPattern pattern, uint32_t queue_depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = frame_of_.find(id);
  if (it != frame_of_.end()) {
    Frame& frame = frames_[it->second];
    frame.referenced = true;
    ++stats_.hits;
    BufferMetrics::Get().hits->Add();
    // A cached page costs roughly one DRAM page touch.
    return Fetch{&frame.data, 200, /*hit=*/true};
  }
  ++stats_.misses;
  BufferMetrics::Get().misses->Add();
  const size_t victim = FindVictim();
  Frame& frame = frames_[victim];
  if (frame.occupied) {
    frame_of_.erase(frame.page_id);
    ++stats_.evictions;
    BufferMetrics::Get().evictions->Add();
    frame.occupied = false;
    frame.page_id = kInvalidPageId;
  }
  // The store reports each read's own fault activity (success and failure
  // paths alike), so attribution stays exact even when several session
  // caches read through to one store concurrently.
  SecondaryStore::ReadFaultReport report;
  auto read =
      store_->ReadPage(id, &frame.data, pattern, queue_depth, stream_,
                       &report);
  stats_.checksum_failures += report.checksum_failures;
  stats_.verify_failures += report.verify_failures;
  stats_.quarantined_pages += report.quarantined ? 1 : 0;
  if (!read.ok()) {
    // The victim frame stays empty; the failed page is never installed, so
    // a later fetch retries the store (which fails fast if quarantined).
    ++stats_.read_failures;
    BufferMetrics::Get().read_failures->Add();
    return read.status();
  }
  stats_.read_retries += read->retries;
  frame.page_id = id;
  frame.pin_count = 0;
  frame.referenced = true;
  frame.occupied = true;
  frame_of_[id] = victim;
  return Fetch{&frame.data, read->latency_ns, /*hit=*/false, read->retries,
               report.checksum_failures, read->retry_ns};
}

void BufferManager::Pin(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = frame_of_.find(id);
  HYTAP_ASSERT(it != frame_of_.end(), "Pin: page not resident");
  ++frames_[it->second].pin_count;
}

void BufferManager::Unpin(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = frame_of_.find(id);
  HYTAP_ASSERT(it != frame_of_.end(), "Unpin: page not resident");
  Frame& frame = frames_[it->second];
  HYTAP_ASSERT(frame.pin_count > 0, "Unpin: page not pinned");
  --frame.pin_count;
}

size_t BufferManager::FindVictim() {
  // First pass: any unoccupied frame.
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].occupied) return i;
  }
  // CLOCK sweep over occupied frames, skipping pinned ones. Two full sweeps
  // guarantee a victim unless everything is pinned.
  for (size_t step = 0; step < 2 * frames_.size(); ++step) {
    Frame& frame = frames_[clock_hand_];
    const size_t current = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (frame.pin_count > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    return current;
  }
  HYTAP_UNREACHABLE("all buffer frames are pinned");
}

void BufferManager::Resize(size_t frame_count) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Frame& frame : frames_) {
    HYTAP_ASSERT(frame.pin_count == 0, "Resize with pinned pages");
  }
  frames_.assign(frame_count == 0 ? 1 : frame_count, Frame());
  frame_of_.clear();
  clock_hand_ = 0;
}

void BufferManager::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& frame : frames_) {
    if (frame.occupied && frame.pin_count == 0) {
      frame_of_.erase(frame.page_id);
      frame.occupied = false;
      frame.referenced = false;
      frame.page_id = kInvalidPageId;
    }
  }
}

}  // namespace hytap

#ifndef HYTAP_COMMON_PHASES_H_
#define HYTAP_COMMON_PHASES_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace hytap {

/// Lifecycle phases of a served query on the *simulated* clock.
///
/// The serving pipeline is admit -> queue-wait -> dispatch -> execute ->
/// flush, but admission, queueing, dispatch, and the reorder-buffer flush
/// are instantaneous in the simulated-time domain: the monitor clock only
/// advances when a ticket's execution cost is folded in at flush (see
/// DESIGN.md §17). Those phases are therefore identically zero on the
/// simulated clock and are tracked separately as wall-clock histograms
/// (`hytap_session_*_queue_wait_ns`). What remains — and what this enum
/// partitions — is the execute phase, split by where the simulated
/// nanoseconds were charged.
enum class QueryPhase : uint8_t {
  /// Main-partition work: index lookup, MRC/SSCG scan and probe, rescans —
  /// every DRAM-side nanosecond accrued while executing the main partition.
  kScanProbe = 0,
  /// Delta-partition scan/probe DRAM charge.
  kDelta = 1,
  /// Row materialization and aggregate evaluation DRAM charge.
  kMaterialize = 2,
  /// Secondary-store device time for productive page reads (device_ns minus
  /// the retry/backoff waste below).
  kStoreIo = 3,
  /// Retry waste on the secondary store: exponential backoff charges plus
  /// the device latency of failed attempts that had to be retried.
  kRetryBackoff = 4,
};

inline constexpr size_t kQueryPhaseCount = 5;

/// Stable lower_snake_case name used in metrics, reports, and decode output.
const char* QueryPhaseName(QueryPhase phase);

/// Per-ticket phase decomposition in simulated nanoseconds. The invariant
/// the whole attribution layer rests on: Sum() equals the ticket's
/// end-to-end simulated latency (`IoStats::TotalNs()` of its execution)
/// exactly — including partially accrued cancelled/faulted executions —
/// and is zero for tickets that were shed or cancelled while queued.
struct PhaseVector {
  std::array<uint64_t, kQueryPhaseCount> ns{};

  uint64_t& operator[](QueryPhase phase) {
    return ns[static_cast<size_t>(phase)];
  }
  uint64_t operator[](QueryPhase phase) const {
    return ns[static_cast<size_t>(phase)];
  }

  uint64_t Sum() const {
    uint64_t total = 0;
    for (uint64_t v : ns) total += v;
    return total;
  }

  /// Phase with the largest charge; ties break toward the lower enum value
  /// so the answer is deterministic.
  QueryPhase Dominant() const {
    size_t best = 0;
    for (size_t i = 1; i < kQueryPhaseCount; ++i) {
      if (ns[i] > ns[best]) best = i;
    }
    return static_cast<QueryPhase>(best);
  }

  bool operator==(const PhaseVector& other) const { return ns == other.ns; }
  bool operator!=(const PhaseVector& other) const { return ns != other.ns; }
};

/// Process-wide switch for phase accounting (`HYTAP_PHASE_ACCOUNTING`,
/// default on). When off, the executor skips filling `ExecOptions::phases`
/// and the latency profiler ignores observations.
bool PhaseAccountingEnabled();
void SetPhaseAccountingEnabled(bool enabled);

}  // namespace hytap

#endif  // HYTAP_COMMON_PHASES_H_

#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/assert.h"

namespace hytap {

namespace {

/// Set while a pool helper executes morsels: nested ParallelFor calls from
/// inside a worker run inline instead of re-entering the pool.
thread_local bool tls_inside_pool_worker = false;

/// Ambient priority of ParallelFor calls issued from this thread (see
/// ThreadPool::PriorityGuard).
thread_local ThreadPool::TaskPriority tls_task_priority =
    ThreadPool::TaskPriority::kNormal;

}  // namespace

ThreadPool::PriorityGuard::PriorityGuard(TaskPriority priority)
    : previous_(tls_task_priority) {
  tls_task_priority = priority;
}

ThreadPool::PriorityGuard::~PriorityGuard() {
  tls_task_priority = previous_;
}

/// One ParallelFor invocation. Shared (via shared_ptr) between the caller
/// and the helper slots it enqueued, so a helper that dequeues the task
/// after the caller already finished still finds valid state and exits
/// without touching `fn`.
struct ThreadPool::Task {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t morsels = 0;
  TaskPriority priority = TaskPriority::kNormal;
  std::function<void(size_t, size_t, size_t)> fn;

  /// Next unclaimed morsel index. Cancellation stores `morsels` here so
  /// late claimants drop out immediately.
  std::atomic<size_t> next{0};
  /// Helpers currently inside RunMorsels for this task.
  std::atomic<size_t> executing{0};

  std::mutex mutex;
  std::condition_variable done;
  std::exception_ptr error;  // first exception, guarded by `mutex`
};

ThreadPool::ThreadPool(size_t total_workers) {
  const size_t helpers = total_workers > 1 ? total_workers - 1 : 0;
  helpers_.reserve(helpers);
  for (size_t i = 0; i < helpers; ++i) {
    helpers_.emplace_back([this] { HelperLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& helper : helpers_) helper.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultWorkerCount());
  return pool;
}

size_t ThreadPool::DefaultWorkerCount() {
  if (const char* env = std::getenv("HYTAP_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<size_t>(parsed);
  }
  const size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(hw, 8);
}

void ThreadPool::HelperLoop() {
  for (;;) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] {
        return stop_ || !queue_.empty() || !high_queue_.empty();
      });
      if (queue_.empty() && high_queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      if (!high_queue_.empty()) {
        task = std::move(high_queue_.front());
        high_queue_.pop_front();
        high_pending_.fetch_sub(1, std::memory_order_relaxed);
      } else {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    task->executing.fetch_add(1, std::memory_order_acq_rel);
    tls_inside_pool_worker = true;
    const bool yielded = RunMorsels(*task, /*yieldable=*/true);
    tls_inside_pool_worker = false;
    if (yielded) {
      // Hand the abandoned task's remaining morsels to the next free helper
      // (its caller keeps claiming them regardless, so progress is
      // guaranteed even if every helper stays on high-priority work).
      priority_yields_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_front(task);
      }
      wake_.notify_one();
    }
    {
      std::lock_guard<std::mutex> lock(task->mutex);
      task->executing.fetch_sub(1, std::memory_order_acq_rel);
    }
    task->done.notify_all();
  }
}

bool ThreadPool::RunMorsels(Task& task, bool yieldable) {
  for (;;) {
    if (yieldable && task.priority == TaskPriority::kNormal &&
        high_pending_.load(std::memory_order_relaxed) > 0 &&
        task.next.load(std::memory_order_relaxed) < task.morsels) {
      return true;  // yield between morsels, never inside one
    }
    const size_t m = task.next.fetch_add(1, std::memory_order_relaxed);
    if (m >= task.morsels) return false;
    const size_t morsel_begin = task.begin + m * task.grain;
    const size_t morsel_end =
        std::min(task.end, morsel_begin + task.grain);
    try {
      task.fn(m, morsel_begin, morsel_end);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(task.mutex);
        if (!task.error) task.error = std::current_exception();
      }
      // Forfeit the unclaimed morsels: late claimants see next >= morsels.
      task.next.store(task.morsels, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::ParallelFor(
    size_t begin, size_t end, size_t grain, uint32_t max_workers,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  ParallelFor(begin, end, grain, max_workers, tls_task_priority, fn);
}

void ThreadPool::ParallelFor(
    size_t begin, size_t end, size_t grain, uint32_t max_workers,
    TaskPriority priority,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  HYTAP_ASSERT(grain >= 1, "ParallelFor grain must be >= 1");
  const size_t morsels = MorselCount(begin, end, grain);
  if (morsels == 0) return;
  size_t workers = std::min<size_t>(max_workers == 0 ? 1 : max_workers,
                                    helpers_.size() + 1);
  workers = std::min(workers, max_workers_cap_.load(std::memory_order_relaxed));
  workers = std::min(workers, morsels);
  if (workers <= 1 || tls_inside_pool_worker) {
    // Serial fast path, and the nested case: a worker thread must never
    // block on the pool it is draining. Exceptions propagate directly.
    for (size_t m = 0; m < morsels; ++m) {
      const size_t morsel_begin = begin + m * grain;
      fn(m, morsel_begin, std::min(end, morsel_begin + grain));
    }
    return;
  }

  auto task = std::make_shared<Task>();
  task->begin = begin;
  task->end = end;
  task->grain = grain;
  task->morsels = morsels;
  task->priority = priority;
  task->fn = fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (priority == TaskPriority::kHigh) {
      for (size_t i = 0; i + 1 < workers; ++i) high_queue_.push_back(task);
      high_pending_.fetch_add(workers - 1, std::memory_order_relaxed);
    } else {
      for (size_t i = 0; i + 1 < workers; ++i) queue_.push_back(task);
    }
  }
  wake_.notify_all();

  RunMorsels(*task, /*yieldable=*/false);  // the caller is a worker too

  // The caller's loop only returns once every morsel is claimed; wait for
  // helpers still executing theirs. Helper slots never dequeued simply find
  // an exhausted task later and drop it.
  {
    std::unique_lock<std::mutex> lock(task->mutex);
    task->done.wait(lock, [&task] {
      return task->executing.load(std::memory_order_acquire) == 0;
    });
    if (task->error) std::rethrow_exception(task->error);
  }
}

}  // namespace hytap

#ifndef HYTAP_COMMON_METRICS_H_
#define HYTAP_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hytap {

/// Process-wide observability registry (DESIGN.md §11).
///
/// Counters, gauges, and fixed-bucket histograms with stable names,
/// registered once and updated lock-free from any thread. Metrics are pure
/// observers: they never feed back into execution, so query results,
/// IoStats, and fault schedules are bit-identical whether the knob is on or
/// off (`parallel_equivalence_test` asserts this).
///
/// The master switch is `HYTAP_METRICS` ("off"/"0"/"false" disable; default
/// on). While disabled every update is a no-op behind one relaxed atomic
/// load — the registry keeps its registrations but records nothing.

namespace metrics_internal {
/// Shards per counter. Updates from the PR 1 thread pool land on
/// (statistically) distinct cache lines instead of serializing on one.
inline constexpr size_t kCounterShards = 8;

extern std::atomic<bool> g_enabled;

/// Stable per-thread shard slot, assigned round-robin on first use.
size_t ShardSlot();

inline size_t ShardIndex() {
  thread_local const size_t slot = ShardSlot();
  return slot;
}
}  // namespace metrics_internal

/// Master switch, initialized from HYTAP_METRICS (default on).
inline bool MetricsEnabled() {
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
}

/// Runtime override used by tests, benchmarks, and stats_cli.
void SetMetricsEnabled(bool enabled);

/// Monotonically increasing counter, sharded across cache lines.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    shards_[metrics_internal::ShardIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[metrics_internal::kCounterShards];
};

/// Last-written signed value (e.g. resident pages, pool size).
class Gauge {
 public:
  void Set(int64_t value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram over uint64 samples. Bucket i counts samples
/// <= bounds[i] (first matching bucket); larger samples land in the
/// overflow bucket. Bounds are fixed at registration, so bucket assignment
/// is deterministic — the same sample sequence always yields the same
/// bucket counts, independent of thread interleaving.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<uint64_t> bounds);

  void Observe(uint64_t sample) {
    if (!MetricsEnabled()) return;
    buckets_[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// Per-bucket counts (bounds().size() + 1 entries; last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  size_t BucketOf(uint64_t sample) const;

  std::vector<uint64_t> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<uint64_t> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1 (overflow last)
    uint64_t count = 0;
    uint64_t sum = 0;

    /// Deterministic interpolated quantile (`q` in [0, 1]) from the fixed
    /// buckets: linear interpolation inside the bucket holding the rank,
    /// integer math throughout. Overflow-bucket samples clamp to the last
    /// bound; an empty histogram reports 0.
    uint64_t Quantile(double q) const;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Prometheus text exposition format (counters/gauges/cumulative
  /// histogram buckets with `le` labels).
  std::string ToPrometheusText() const;
  /// Single JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}.
  std::string ToJson() const;
};

/// Name -> metric registry. Registration takes a mutex once; the returned
/// pointers are stable for the process lifetime, so hot paths cache them in
/// function-local statics and update lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the counter registered under `name`, creating it on first use.
  /// Names must match [a-zA-Z_:][a-zA-Z0-9_:]* (Prometheus-compatible).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` must be ascending; ignored (and asserted equal) if `name` is
  /// already registered.
  HistogramMetric* GetHistogram(const std::string& name,
                          std::vector<uint64_t> bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registrations survive). Benchmarks and
  /// stats_cli use this to scope a snapshot to one workload.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// Decade buckets for simulated/wall durations in ns: 1us .. 100s.
std::vector<uint64_t> DurationNsBuckets();
/// Decade buckets for cardinalities: 1 .. 1e9 rows.
std::vector<uint64_t> RowCountBuckets();

}  // namespace hytap

#endif  // HYTAP_COMMON_METRICS_H_

#ifndef HYTAP_COMMON_THREAD_POOL_H_
#define HYTAP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hytap {

/// Rows per morsel of a vectorized MRC scan. Large enough that per-morsel
/// scheduling overhead is negligible against a bit-packed decode, small
/// enough that a multi-million-row column splits into hundreds of morsels
/// for even load balancing.
inline constexpr size_t kScanMorselRows = 1 << 16;

/// Pages per morsel of an SSCG sequential scan (64 x 4 KB = 256 KB of row
/// data per morsel).
inline constexpr size_t kScanMorselPages = 64;

/// Qualifying positions per morsel of parallel tuple materialization.
inline constexpr size_t kMaterializeMorselRows = 1 << 12;

/// A shared, lazily-started worker pool with a morsel-driven ParallelFor.
///
/// Scheduling model: ParallelFor splits [begin, end) into dense, contiguous
/// morsels of at most `grain` elements. Workers (the calling thread plus up
/// to max_workers - 1 pool threads) claim morsel indices from a shared
/// atomic counter, so load balances dynamically, yet every morsel knows its
/// index — callers write per-morsel results into a pre-sized vector and
/// concatenate in index order, which makes the merged output identical to a
/// serial left-to-right execution regardless of interleaving.
///
/// The calling thread always participates, so a ParallelFor makes progress
/// even when every pool thread is busy. A ParallelFor issued from inside a
/// pool worker (nested parallelism) runs its morsels inline on that worker,
/// which keeps the pool deadlock-free.
///
/// Exceptions thrown by `fn` cancel the remaining morsels; the first
/// exception is rethrown on the calling thread once in-flight morsels have
/// drained.
///
/// Fairness under concurrent queries: each ParallelFor carries a priority.
/// Helpers drain high-priority tasks first, and a helper working a
/// normal-priority task yields it back at the next morsel boundary while
/// unclaimed high-priority work is queued — so a long OLAP scan cannot
/// starve a short OLTP probe of helpers. The yielding is pure scheduling
/// (the abandoned task is re-enqueued and its caller always participates),
/// so results and morsel merges are unaffected.
class ThreadPool {
 public:
  enum class TaskPriority { kNormal = 0, kHigh = 1 };
  /// Spawns `total_workers - 1` helper threads (the caller is the remaining
  /// worker). `total_workers == 1` spawns nothing; ParallelFor runs inline.
  explicit ThreadPool(size_t total_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, started on first use with DefaultWorkerCount()
  /// workers.
  static ThreadPool& Global();

  /// HYTAP_THREADS environment override, else
  /// max(hardware_concurrency, 8). The floor keeps intra-query parallelism
  /// (and its race coverage under TSAN) real even on small CI machines; the
  /// OS time-slices when cores are scarce.
  static size_t DefaultWorkerCount();

  /// Helper threads owned by the pool (callers add one more).
  size_t helper_count() const { return helpers_.size(); }

  /// Runtime cap on concurrent workers per ParallelFor, including the
  /// caller. Setting 1 forces every ParallelFor inline (serial); used by the
  /// equivalence tests to prove parallel execution does not change results.
  void set_max_workers(size_t cap) {
    max_workers_cap_.store(cap == 0 ? 1 : cap, std::memory_order_relaxed);
  }
  size_t max_workers() const {
    return max_workers_cap_.load(std::memory_order_relaxed);
  }

  /// Number of morsels ParallelFor(begin, end, grain, ...) produces.
  static size_t MorselCount(size_t begin, size_t end, size_t grain) {
    return begin >= end ? 0 : (end - begin + grain - 1) / grain;
  }

  /// Runs fn(morsel_index, morsel_begin, morsel_end) for every morsel of
  /// [begin, end); morsel m covers
  /// [begin + m * grain, min(end, begin + (m + 1) * grain)). At most
  /// `max_workers` workers run concurrently (including the caller). Blocks
  /// until all morsels finish; rethrows the first exception thrown by fn.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   uint32_t max_workers,
                   const std::function<void(size_t, size_t, size_t)>& fn);

  /// ParallelFor with an explicit task priority (the 5-arg overload uses the
  /// calling thread's ambient priority, see PriorityGuard).
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   uint32_t max_workers, TaskPriority priority,
                   const std::function<void(size_t, size_t, size_t)>& fn);

  /// Sets the ambient task priority of the current thread for the guard's
  /// lifetime: every ParallelFor issued from this thread (at any call depth,
  /// e.g. deep inside the executor) enqueues at that priority. Session
  /// workers wrap OLTP-class queries in a kHigh guard.
  class PriorityGuard {
   public:
    explicit PriorityGuard(TaskPriority priority);
    ~PriorityGuard();
    PriorityGuard(const PriorityGuard&) = delete;
    PriorityGuard& operator=(const PriorityGuard&) = delete;

   private:
    TaskPriority previous_;
  };

  /// Times a helper abandoned a normal-priority task at a morsel boundary
  /// because high-priority work was waiting (fairness regression tests).
  uint64_t priority_yields() const {
    return priority_yields_.load(std::memory_order_relaxed);
  }

 private:
  struct Task;

  void HelperLoop();
  /// Claims and runs morsels of `task` until none remain (or a morsel
  /// threw, which forfeits the rest). A helper (`yieldable`) returns early
  /// — true — at a morsel boundary when `task` is normal-priority and
  /// unclaimed high-priority work is queued.
  bool RunMorsels(Task& task, bool yieldable);

  std::mutex mutex_;
  std::condition_variable wake_;
  /// One entry per helper slot, split by priority; helpers drain
  /// `high_queue_` first.
  std::deque<std::shared_ptr<Task>> queue_;
  std::deque<std::shared_ptr<Task>> high_queue_;
  std::vector<std::thread> helpers_;
  bool stop_ = false;
  std::atomic<size_t> max_workers_cap_{SIZE_MAX};
  /// Unclaimed entries of high_queue_, readable without mutex_ so a helper
  /// can poll it between morsels of a normal task.
  std::atomic<size_t> high_pending_{0};
  std::atomic<uint64_t> priority_yields_{0};
};

}  // namespace hytap

#endif  // HYTAP_COMMON_THREAD_POOL_H_

#ifndef HYTAP_COMMON_THREAD_POOL_H_
#define HYTAP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hytap {

/// Rows per morsel of a vectorized MRC scan. Large enough that per-morsel
/// scheduling overhead is negligible against a bit-packed decode, small
/// enough that a multi-million-row column splits into hundreds of morsels
/// for even load balancing.
inline constexpr size_t kScanMorselRows = 1 << 16;

/// Pages per morsel of an SSCG sequential scan (64 x 4 KB = 256 KB of row
/// data per morsel).
inline constexpr size_t kScanMorselPages = 64;

/// Qualifying positions per morsel of parallel tuple materialization.
inline constexpr size_t kMaterializeMorselRows = 1 << 12;

/// A shared, lazily-started worker pool with a morsel-driven ParallelFor.
///
/// Scheduling model: ParallelFor splits [begin, end) into dense, contiguous
/// morsels of at most `grain` elements. Workers (the calling thread plus up
/// to max_workers - 1 pool threads) claim morsel indices from a shared
/// atomic counter, so load balances dynamically, yet every morsel knows its
/// index — callers write per-morsel results into a pre-sized vector and
/// concatenate in index order, which makes the merged output identical to a
/// serial left-to-right execution regardless of interleaving.
///
/// The calling thread always participates, so a ParallelFor makes progress
/// even when every pool thread is busy. A ParallelFor issued from inside a
/// pool worker (nested parallelism) runs its morsels inline on that worker,
/// which keeps the pool deadlock-free.
///
/// Exceptions thrown by `fn` cancel the remaining morsels; the first
/// exception is rethrown on the calling thread once in-flight morsels have
/// drained.
class ThreadPool {
 public:
  /// Spawns `total_workers - 1` helper threads (the caller is the remaining
  /// worker). `total_workers == 1` spawns nothing; ParallelFor runs inline.
  explicit ThreadPool(size_t total_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, started on first use with DefaultWorkerCount()
  /// workers.
  static ThreadPool& Global();

  /// HYTAP_THREADS environment override, else
  /// max(hardware_concurrency, 8). The floor keeps intra-query parallelism
  /// (and its race coverage under TSAN) real even on small CI machines; the
  /// OS time-slices when cores are scarce.
  static size_t DefaultWorkerCount();

  /// Helper threads owned by the pool (callers add one more).
  size_t helper_count() const { return helpers_.size(); }

  /// Runtime cap on concurrent workers per ParallelFor, including the
  /// caller. Setting 1 forces every ParallelFor inline (serial); used by the
  /// equivalence tests to prove parallel execution does not change results.
  void set_max_workers(size_t cap) {
    max_workers_cap_.store(cap == 0 ? 1 : cap, std::memory_order_relaxed);
  }
  size_t max_workers() const {
    return max_workers_cap_.load(std::memory_order_relaxed);
  }

  /// Number of morsels ParallelFor(begin, end, grain, ...) produces.
  static size_t MorselCount(size_t begin, size_t end, size_t grain) {
    return begin >= end ? 0 : (end - begin + grain - 1) / grain;
  }

  /// Runs fn(morsel_index, morsel_begin, morsel_end) for every morsel of
  /// [begin, end); morsel m covers
  /// [begin + m * grain, min(end, begin + (m + 1) * grain)). At most
  /// `max_workers` workers run concurrently (including the caller). Blocks
  /// until all morsels finish; rethrows the first exception thrown by fn.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   uint32_t max_workers,
                   const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  struct Task;

  void HelperLoop();
  /// Claims and runs morsels of `task` until none remain (or a morsel
  /// threw, which forfeits the rest).
  static void RunMorsels(Task& task);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::shared_ptr<Task>> queue_;  // one entry per helper slot
  std::vector<std::thread> helpers_;
  bool stop_ = false;
  std::atomic<size_t> max_workers_cap_{SIZE_MAX};
};

}  // namespace hytap

#endif  // HYTAP_COMMON_THREAD_POOL_H_

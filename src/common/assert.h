#ifndef HYTAP_COMMON_ASSERT_H_
#define HYTAP_COMMON_ASSERT_H_

#include <cstdio>
#include <cstdlib>

/// Always-on invariant check. Unlike assert(), these fire in release builds:
/// a storage engine that silently corrupts data is worse than one that stops.
#define HYTAP_ASSERT(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "HYTAP_ASSERT failed at %s:%d: %s\n  %s\n",      \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Marks states that are unreachable if internal invariants hold.
#define HYTAP_UNREACHABLE(msg)                                              \
  do {                                                                      \
    std::fprintf(stderr, "HYTAP_UNREACHABLE at %s:%d: %s\n", __FILE__,      \
                 __LINE__, msg);                                            \
    std::abort();                                                           \
  } while (0)

#endif  // HYTAP_COMMON_ASSERT_H_

#include "common/simulated_clock.h"

// Header-only; this translation unit anchors the header in the library so that
// include-what-you-use checks compile it standalone.

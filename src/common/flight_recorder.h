#ifndef HYTAP_COMMON_FLIGHT_RECORDER_H_
#define HYTAP_COMMON_FLIGHT_RECORDER_H_

// Process-wide, always-on flight recorder: a lock-free, per-thread-sharded
// ring of fixed-size binary events correlating the serving, re-tiering, and
// fault-injection loops on one timeline.
//
// Determinism contract: dumps are canonicalised by sorting on the event's
// deterministic fields (window, sim_ns, ticket, type, code, seq, a, b) --
// never on physical arrival order -- so a snapshot taken at a quiesced point
// is bit-identical across 1/2/4 worker threads and across runs with the same
// fault schedule. Event producers only stamp fields that are themselves
// deterministic at the emission site (ticket-order flush points, per-stream
// sequence numbers, monitor window indices); wall-clock time never enters an
// event.
//
// Concurrency: each OS thread lazily claims an exclusive shard (reused via a
// free list when threads exit, so a shard never has two concurrent writers).
// Each slot is a seqlock -- an atomic version counter bracketing the payload
// words -- so a concurrent Snapshot() never reads a torn event and the whole
// structure is data-race-free under TSAN without any mutex on the hot path.
//
// Gating: HYTAP_FLIGHT_RECORDER (default on). When off, Record() is a single
// relaxed atomic load + branch.

#include <cstdint>
#include <string>
#include <vector>

namespace hytap {

// Event type tags. Values are part of the binary dump format; append only.
enum class FlightEventType : uint16_t {
  kNone = 0,
  // Serving front end (session manager).
  kSessionAdmit = 1,     // a = query class, b = deadline_ns
  kSessionReject = 2,    // a = query class; code = StatusCode
  kSessionDispatch = 3,  // a = query class
  kSessionShed = 4,      // a = query class, b = simulated queue-wait ns —
                         // shed queries never execute, so this is NOT a
                         // latency; identically 0 on the simulated clock
                         // (admission/queueing are instantaneous there)
  kSessionCancel = 5,    // a = query class, b = simulated ns accrued before
                         // the abort (0 when cancelled while still queued)
  kSessionComplete = 6,  // a = query class, b = end-to-end simulated latency
                         // ns (== the ticket's phase-vector sum)
  // Re-tiering daemon.
  kRetierTrigger = 7,     // a = plan id, b = step count; code = reason
  kRetierStep = 8,        // a = column, b = bytes; code = 1 if to DRAM
  kRetierQuarantine = 9,  // a = column, b = bytes
  kRetierAbort = 10,      // a = plan id, b = steps remaining
  kRetierPlanDone = 11,   // a = plan id, b = steps applied; code=1 aborted
  // Secondary store fault machinery.
  kStoreFault = 12,         // a = page id, b = retry index; code = ReadFault
  kStoreChecksumFail = 13,  // a = page id, b = retry index
  kStoreQuarantine = 14,    // a = page id; code = terminal StatusCode
  kStoreVerifyFail = 15,    // a = page id
  // Structural boundaries.
  kMergeBegin = 16,      // a = delta rows merged
  kMergeEnd = 17,        // a = delta rows merged
  kMigrationBegin = 18,  // a = column, code = 1 if to DRAM
  kMigrationEnd = 19,    // a = column, code = outcome (0 ok, 1 failed)
  // SLO monitor.
  kSloBreach = 20,  // a = query class, b = burn rate (milli); code = window
  kSloClear = 21,   // a = query class
  // Anomaly marker recorded when a dump is triggered. code = trigger kind.
  kAnomaly = 22,
  // Latency profiler tail attribution (one per attributed ticket).
  // a = dominant QueryPhase, b = end-to-end simulated latency ns;
  // code = query class << 2 | (p99-tail ? 2 : 0) | (SLO breach ? 1 : 0).
  kPhaseAttribution = 23,
};

// Anomaly trigger kinds (FlightEvent::code on kAnomaly events).
enum class AnomalyKind : uint16_t {
  kManual = 0,
  kSloBreach = 1,
  kStickyQuarantine = 2,
  kRetierAbort = 3,
  kChecksumFailure = 4,
};

// Fixed-size binary event. 48 bytes, no padding: the dump format writes these
// verbatim, so the layout is part of the on-disk contract.
struct FlightEvent {
  uint64_t window;  // workload-monitor window index (0 when not applicable)
  uint64_t sim_ns;  // simulated nanoseconds (0 when not applicable)
  uint64_t ticket;  // session ticket / plan id / 0
  uint64_t a;       // type-specific operand
  uint64_t b;       // type-specific operand
  uint32_t seq;     // per-source sequence number (tie-break within a source)
  uint16_t type;    // FlightEventType
  uint16_t code;    // type-specific small operand (reason / status / flags)
};
static_assert(sizeof(FlightEvent) == 48, "FlightEvent must stay 48 bytes");

// Master switch, process-wide. Reads HYTAP_FLIGHT_RECORDER once (default on).
bool FlightRecorderEnabled();
// Test/bench override of the master switch (bypasses the env variable).
void SetFlightRecorderEnabled(bool enabled);

class FlightRecorder {
 public:
  // Process-wide singleton. Capacity per shard comes from
  // HYTAP_FLIGHT_RING_EVENTS (default 1 << 14 events per shard).
  static FlightRecorder& Global();

  explicit FlightRecorder(size_t events_per_shard = 1 << 14);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Records one event into the calling thread's shard. Lock-free; safe from
  // any thread. No-op when the recorder is disabled.
  void Record(const FlightEvent& event);

  // Convenience: fills type/code/ticket/window/sim_ns/a/b and records.
  void Record(FlightEventType type, uint16_t code, uint64_t ticket,
              uint64_t window, uint64_t sim_ns, uint64_t a = 0,
              uint64_t b = 0);

  // Copies out every live event, canonically sorted on the deterministic
  // field tuple. Safe to call concurrently with writers (seqlock readers
  // retry torn slots); byte-stable when writers are quiesced.
  std::vector<FlightEvent> Snapshot() const;

  // Serialises Snapshot() to `path` in the binary dump format. Returns true
  // on success.
  bool DumpTo(const std::string& path, const std::string& reason) const;

  // Anomaly hook: records a kAnomaly event and, when HYTAP_FLIGHT_DUMP is on
  // (default on), writes a rate-limited dump file
  // `<HYTAP_FLIGHT_DUMP_DIR>/flight_<NNN>_<reason>.bin` (at most
  // HYTAP_FLIGHT_MAX_DUMPS per process, default 8). Returns the path of the
  // written dump, or an empty string when none was written.
  std::string Anomaly(AnomalyKind kind, const std::string& reason,
                      uint64_t ticket = 0, uint64_t window = 0,
                      uint64_t sim_ns = 0, uint64_t a = 0, uint64_t b = 0);

  // Clears every shard and the anomaly-dump counter. Callers must be
  // quiesced (tests / bench reset points).
  void Reset();

  size_t events_per_shard() const { return events_per_shard_; }
  // Total events recorded since construction/Reset (diagnostic; approximate
  // while writers are active).
  uint64_t total_recorded() const;

  // Opaque per-thread ring shard (defined in the .cc; public so the
  // thread-local handle that releases shards on thread exit can name it).
  struct Shard;

 private:
  Shard* ClaimShard();

  const size_t events_per_shard_;
  struct Impl;
  Impl* impl_;
};

// Binary dump header. Little-endian, packed.
struct FlightDumpHeader {
  char magic[4];        // "HYFR"
  uint32_t version;     // 1
  uint32_t event_size;  // sizeof(FlightEvent)
  uint32_t reserved;
  uint64_t event_count;
  char reason[64];  // NUL-padded trigger description
};
static_assert(sizeof(FlightDumpHeader) == 88, "dump header layout");

// Reads a dump written by FlightRecorder::DumpTo. Returns false on short
// read / bad magic / size mismatch. `reason` may be null.
bool ReadFlightDump(const std::string& path, std::vector<FlightEvent>* events,
                    std::string* reason);

// Human-readable name for an event type ("session_admit", "retier_step", ...).
const char* FlightEventTypeName(uint16_t type);

}  // namespace hytap

#endif  // HYTAP_COMMON_FLIGHT_RECORDER_H_

#include "common/status.h"

namespace hytap {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace hytap

#include "common/crc32.h"

#include <array>

namespace hytap {

namespace {

/// 8 slice tables of 256 entries, generated once at startup.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  while (size >= 8) {
    const uint32_t lo = crc ^ (uint32_t(p[0]) | uint32_t(p[1]) << 8 |
                               uint32_t(p[2]) << 16 | uint32_t(p[3]) << 24);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace hytap

#include "common/random.h"

#include <cmath>

#include "common/assert.h"

namespace hytap {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to seed the xoshiro state from a single word.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  HYTAP_ASSERT(bound > 0, "NextBounded requires bound > 0");
  // Lemire's nearly-divisionless bounded generation.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  HYTAP_ASSERT(lo <= hi, "NextInt requires lo <= hi");
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfGenerator::ZipfGenerator(uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  HYTAP_ASSERT(n > 0, "ZipfGenerator requires n > 0");
  HYTAP_ASSERT(alpha > 0, "ZipfGenerator requires alpha > 0");
  h_integral_x1_ = H(1.5) - 1.0;
  h_integral_num_elements_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -alpha));
}

double ZipfGenerator::H(double x) const {
  // Integral of x^-alpha: handles the alpha == 1 (log) case.
  const double log_x = std::log(x);
  if (std::abs(alpha_ - 1.0) < 1e-9) return log_x;
  return std::expm1((1.0 - alpha_) * log_x) / (1.0 - alpha_);
}

double ZipfGenerator::HInverse(double x) const {
  if (std::abs(alpha_ - 1.0) < 1e-9) return std::exp(x);
  return std::exp(std::log1p(x * (1.0 - alpha_)) / (1.0 - alpha_));
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  while (true) {
    const double u =
        h_integral_num_elements_ +
        rng.NextDouble() * (h_integral_x1_ - h_integral_num_elements_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= s_ || u >= H(k + 0.5) - std::pow(k, -alpha_)) {
      return static_cast<uint64_t>(k) - 1;  // ranks are 0-based externally
    }
  }
}

}  // namespace hytap

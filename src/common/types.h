#ifndef HYTAP_COMMON_TYPES_H_
#define HYTAP_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace hytap {

/// Row identifier within a table partition.
using RowId = uint64_t;

/// Column identifier within a table (position in the schema).
using ColumnId = uint32_t;

/// Dictionary value-id (code) inside a dictionary-encoded column.
using ValueId = uint32_t;

/// Transaction identifier / commit timestamp (MVCC).
using TransactionId = uint64_t;

/// Page identifier inside a SecondaryStore.
using PageId = uint64_t;

inline constexpr RowId kInvalidRowId = std::numeric_limits<RowId>::max();
inline constexpr ValueId kInvalidValueId = std::numeric_limits<ValueId>::max();
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();
inline constexpr TransactionId kMaxTransactionId =
    std::numeric_limits<TransactionId>::max();

/// Fixed page size used by all secondary-storage structures (paper: 4 KB reads).
inline constexpr size_t kPageSize = 4096;

/// Simulated cost of one DRAM cache-line miss (non-local NUMA access). A
/// dictionary-encoded attribute materialization costs two of these (value
/// vector + dictionary, paper §IV-B). Calibrated so that a 200-attribute
/// full-DRAM reconstruction costs ~32 us, which places the DRAM/3D-XPoint
/// crossover at the >= 50 %-in-SSCG point reported in Fig. 7.
inline constexpr uint64_t kDramTouchNs = 80;

/// Simulated per-worker DRAM sequential-scan throughput in bytes per ns
/// (~10 GB/s per core; vectorized scan over bit-packed codes).
inline constexpr uint64_t kDramScanBytesPerNs = 10;

}  // namespace hytap

#endif  // HYTAP_COMMON_TYPES_H_

#ifndef HYTAP_COMMON_SIMULATED_CLOCK_H_
#define HYTAP_COMMON_SIMULATED_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace hytap {

/// Accrues simulated device time in nanoseconds.
///
/// We do not have the paper's physical devices (Samsung 850 Pro, Fusion
/// ioMemory, WD HDD, Intel Optane P4800X). Device models charge their
/// calibrated access times to a SimulatedClock instead of sleeping, which
/// makes the latency experiments (Figs. 7-9, Tables III/IV) deterministic and
/// fast while preserving the devices' relative behaviour.
///
/// Thread-safe: per-thread accrual uses atomic addition; `Advance` returns the
/// completion time of the charged operation so callers can compute latencies.
class SimulatedClock {
 public:
  SimulatedClock() : now_ns_(0) {}

  SimulatedClock(const SimulatedClock&) = delete;
  SimulatedClock& operator=(const SimulatedClock&) = delete;

  /// Charges `duration_ns` of device time; returns the new clock value.
  uint64_t Advance(uint64_t duration_ns) {
    return now_ns_.fetch_add(duration_ns, std::memory_order_relaxed) +
           duration_ns;
  }

  /// Current simulated time in nanoseconds.
  uint64_t NowNs() const { return now_ns_.load(std::memory_order_relaxed); }

  void Reset() { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_ns_;
};

}  // namespace hytap

#endif  // HYTAP_COMMON_SIMULATED_CLOCK_H_

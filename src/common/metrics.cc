#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/assert.h"

namespace hytap {

namespace metrics_internal {

namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("HYTAP_METRICS");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
         std::strcmp(env, "false") != 0;
}

}  // namespace

std::atomic<bool> g_enabled{EnabledFromEnv()};

size_t ShardSlot() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
}

}  // namespace metrics_internal

void SetMetricsEnabled(bool enabled) {
  metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

HistogramMetric::HistogramMetric(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    HYTAP_ASSERT(bounds_[i - 1] < bounds_[i],
                 "histogram bounds must be strictly ascending");
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

size_t HistogramMetric::BucketOf(uint64_t sample) const {
  // Binary search over the fixed ascending bounds: first bound >= sample.
  size_t lo = 0, hi = bounds_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (sample <= bounds_[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;  // == bounds_.size() -> overflow bucket
}

std::vector<uint64_t> HistogramMetric::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void HistogramMetric::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  HYTAP_ASSERT(ValidMetricName(name), "invalid metric name");
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  HYTAP_ASSERT(ValidMetricName(name), "invalid metric name");
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<uint64_t> bounds) {
  HYTAP_ASSERT(ValidMetricName(name), "invalid metric name");
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramMetric>(std::move(bounds));
  } else {
    HYTAP_ASSERT(slot->bounds() == bounds,
                 "histogram re-registered with different bounds");
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.counts = histogram->BucketCounts();
    data.count = histogram->Count();
    data.sum = histogram->Sum();
    snapshot.histograms[name] = std::move(data);
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<size_t>(size_t(n), sizeof(buffer)));
}

}  // namespace

uint64_t MetricsSnapshot::HistogramData::Quantile(double q) const {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0;
  if (q <= 0.0) q = 0.0;
  if (q >= 1.0) q = 1.0;
  // Rank of the sample the quantile lands on, 1-based. The double product is
  // evaluated from fixed literals on IEEE doubles, so it is deterministic.
  uint64_t target = static_cast<uint64_t>(q * double(total));
  if (double(target) < q * double(total)) ++target;  // ceil
  if (target < 1) target = 1;
  if (target > total) target = total;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cumulative + counts[i] < target) {
      cumulative += counts[i];
      continue;
    }
    const uint64_t lo = i == 0 ? 0 : bounds[i - 1];
    // Overflow-bucket samples are only known to exceed the last bound;
    // clamp to it rather than inventing an upper edge.
    const uint64_t hi =
        i < bounds.size() ? bounds[i] : (bounds.empty() ? 0 : bounds.back());
    const uint64_t pos = target - cumulative;  // 1..counts[i]
    return lo + uint64_t((unsigned __int128)(hi - lo) * pos / counts[i]);
  }
  return bounds.empty() ? 0 : bounds.back();
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    AppendF(&out, "# TYPE %s counter\n", name.c_str());
    AppendF(&out, "%s %" PRIu64 "\n", name.c_str(), value);
  }
  for (const auto& [name, value] : gauges) {
    AppendF(&out, "# TYPE %s gauge\n", name.c_str());
    AppendF(&out, "%s %" PRId64 "\n", name.c_str(), value);
  }
  for (const auto& [name, h] : histograms) {
    AppendF(&out, "# TYPE %s histogram\n", name.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      AppendF(&out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
              name.c_str(), h.bounds[i], cumulative);
    }
    cumulative += h.counts.empty() ? 0 : h.counts.back();
    AppendF(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
            cumulative);
    AppendF(&out, "%s_sum %" PRIu64 "\n", name.c_str(), h.sum);
    AppendF(&out, "%s_count %" PRIu64 "\n", name.c_str(), h.count);
    // Interpolated quantile gauges derived from the fixed buckets. Each one
    // is its own single-sample family, hence its own TYPE declaration.
    static const struct {
      const char* suffix;
      double q;
    } kQuantiles[] = {{"_p50", 0.50}, {"_p99", 0.99}, {"_p999", 0.999}};
    for (const auto& quantile : kQuantiles) {
      AppendF(&out, "# TYPE %s%s gauge\n", name.c_str(), quantile.suffix);
      AppendF(&out, "%s%s %" PRIu64 "\n", name.c_str(), quantile.suffix,
              h.Quantile(quantile.q));
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    AppendF(&out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",", name.c_str(),
            value);
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    AppendF(&out, "%s\n    \"%s\": %" PRId64, first ? "" : ",", name.c_str(),
            value);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    AppendF(&out, "%s\n    \"%s\": {\"bounds\": [", first ? "" : ",",
            name.c_str());
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      AppendF(&out, "%s%" PRIu64, i == 0 ? "" : ", ", h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      AppendF(&out, "%s%" PRIu64, i == 0 ? "" : ", ", h.counts[i]);
    }
    AppendF(&out,
            "], \"count\": %" PRIu64 ", \"sum\": %" PRIu64 ", \"p50\": %" PRIu64
            ", \"p99\": %" PRIu64 ", \"p999\": %" PRIu64 "}",
            h.count, h.sum, h.Quantile(0.50), h.Quantile(0.99),
            h.Quantile(0.999));
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

std::vector<uint64_t> DurationNsBuckets() {
  // Decades from 1 us to 100 s (simulated or wall ns).
  return {1000ull,       10000ull,       100000ull,      1000000ull,
          10000000ull,   100000000ull,   1000000000ull,  10000000000ull,
          100000000000ull};
}

std::vector<uint64_t> RowCountBuckets() {
  return {1ull,      10ull,      100ull,      1000ull,      10000ull,
          100000ull, 1000000ull, 10000000ull, 100000000ull, 1000000000ull};
}

}  // namespace hytap

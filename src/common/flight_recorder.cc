#include "common/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <tuple>

#include "common/metrics.h"

namespace hytap {
namespace {

bool EnvBool(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return !(std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
           std::strcmp(value, "false") == 0 || std::strcmp(value, "OFF") == 0);
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<uint64_t>(parsed);
}

std::atomic<int> g_enabled{-1};  // -1 = unresolved, 0 = off, 1 = on

struct FlightMetrics {
  Counter* events;
  Counter* dumps;
  static FlightMetrics& Get() {
    static FlightMetrics m{
        MetricsRegistry::Global().GetCounter("hytap_flight_events_total"),
        MetricsRegistry::Global().GetCounter("hytap_flight_dumps_total")};
    return m;
  }
};

// Canonical ordering: the full deterministic field tuple. Physical arrival
// order (shard, slot index) never participates, which is what makes dumps
// bit-identical across worker counts.
bool CanonicalLess(const FlightEvent& x, const FlightEvent& y) {
  return std::tie(x.window, x.sim_ns, x.ticket, x.type, x.code, x.seq, x.a,
                  x.b) < std::tie(y.window, y.sim_ns, y.ticket, y.type, y.code,
                                  y.seq, y.a, y.b);
}

}  // namespace

bool FlightRecorderEnabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = EnvBool("HYTAP_FLIGHT_RECORDER", true) ? 1 : 0;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void SetFlightRecorderEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

// One slot = a seqlock'd event. The version counter is odd while a write is
// in flight; readers retry until they see a stable even version on both
// sides of the payload copy. Payload words are relaxed atomics so the
// concurrent read/write is race-free by construction (TSAN-clean) -- the
// seqlock versions supply the acquire/release ordering.
struct Slot {
  std::atomic<uint32_t> version{0};
  std::atomic<uint64_t> words[6];
};
static_assert(sizeof(FlightEvent) == 6 * sizeof(uint64_t),
              "slot payload must cover FlightEvent exactly");

struct FlightRecorder::Shard {
  Slot* slots = nullptr;
  // Next slot to write (monotonic; slot index = head % capacity). Only the
  // owning thread writes it; Snapshot() reads it with acquire.
  std::atomic<uint64_t> head{0};
  std::atomic<bool> in_use{false};
};

struct FlightRecorder::Impl {
  std::mutex shard_mutex;  // guards the shard list growth + free-list scan
  std::vector<Shard*> shards;
  std::atomic<uint64_t> dump_count{0};
  uint64_t instance_id = 0;
};

namespace {

// Registry of live recorder instances, keyed by a never-reused id. A thread's
// cached shard pointer can outlive the recorder that owns it (tests create
// short-lived recorders; the thread then records into another instance or
// exits), and an address-equality check cannot tell a dead owner from a new
// recorder reallocated at the same address. Releasing through the id registry
// makes both cases a no-op instead of a write into freed memory.
std::mutex g_live_mutex;
uint64_t g_next_instance_id = 1;
std::set<uint64_t>& LiveRecorders() {
  static std::set<uint64_t>* live = new std::set<uint64_t>();
  return *live;
}

void ReleaseShard(FlightRecorder::Shard* shard, uint64_t owner_id) {
  if (shard == nullptr) return;
  std::lock_guard<std::mutex> lock(g_live_mutex);
  if (LiveRecorders().count(owner_id) != 0) {
    shard->in_use.store(false, std::memory_order_release);
  }
}

// Per-thread shard handle, released back to the owner's free list on thread
// exit (or when the thread switches recorders) so a shard never has two
// concurrent writers.
struct ShardHandle {
  FlightRecorder::Shard* shard = nullptr;
  uint64_t owner_id = 0;
  ~ShardHandle() { ReleaseShard(shard, owner_id); }
};

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder =
      new FlightRecorder(EnvU64("HYTAP_FLIGHT_RING_EVENTS", 1ull << 14));
  return *recorder;
}

FlightRecorder::FlightRecorder(size_t events_per_shard)
    : events_per_shard_(events_per_shard == 0 ? 1 : events_per_shard),
      impl_(new Impl) {
  std::lock_guard<std::mutex> lock(g_live_mutex);
  impl_->instance_id = g_next_instance_id++;
  LiveRecorders().insert(impl_->instance_id);
}

FlightRecorder::~FlightRecorder() {
  {
    std::lock_guard<std::mutex> lock(g_live_mutex);
    LiveRecorders().erase(impl_->instance_id);
  }
  for (Shard* shard : impl_->shards) {
    delete[] shard->slots;
    delete shard;
  }
  delete impl_;
}

FlightRecorder::Shard* FlightRecorder::ClaimShard() {
  std::lock_guard<std::mutex> lock(impl_->shard_mutex);
  for (Shard* shard : impl_->shards) {
    bool expected = false;
    if (shard->in_use.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
      return shard;
    }
  }
  Shard* shard = new Shard;
  shard->slots = new Slot[events_per_shard_];
  shard->in_use.store(true, std::memory_order_release);
  impl_->shards.push_back(shard);
  return shard;
}

void FlightRecorder::Record(const FlightEvent& event) {
  if (!FlightRecorderEnabled()) return;
  thread_local ShardHandle handle;
  // A thread may touch multiple FlightRecorder instances (tests construct
  // their own); key the cached shard on the owning instance's id, never its
  // address — a destroyed recorder's address can be reused.
  if (handle.shard == nullptr || handle.owner_id != impl_->instance_id) {
    ReleaseShard(handle.shard, handle.owner_id);
    handle.shard = ClaimShard();
    handle.owner_id = impl_->instance_id;
  }
  Shard* shard = handle.shard;
  uint64_t head = shard->head.load(std::memory_order_relaxed);
  Slot& slot = shard->slots[head % events_per_shard_];
  uint64_t words[6];
  std::memcpy(words, &event, sizeof(words));
  uint32_t version = slot.version.load(std::memory_order_relaxed);
  slot.version.store(version + 1, std::memory_order_release);  // odd: writing
  for (size_t i = 0; i < 6; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.version.store(version + 2, std::memory_order_release);  // even: stable
  shard->head.store(head + 1, std::memory_order_release);
  FlightMetrics::Get().events->Add();
}

void FlightRecorder::Record(FlightEventType type, uint16_t code,
                            uint64_t ticket, uint64_t window, uint64_t sim_ns,
                            uint64_t a, uint64_t b) {
  if (!FlightRecorderEnabled()) return;
  FlightEvent event;
  event.window = window;
  event.sim_ns = sim_ns;
  event.ticket = ticket;
  event.a = a;
  event.b = b;
  event.seq = 0;
  event.type = static_cast<uint16_t>(type);
  event.code = code;
  Record(event);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  std::lock_guard<std::mutex> lock(impl_->shard_mutex);
  for (const Shard* shard : impl_->shards) {
    uint64_t head = shard->head.load(std::memory_order_acquire);
    uint64_t live = std::min<uint64_t>(head, events_per_shard_);
    for (uint64_t i = 0; i < live; ++i) {
      uint64_t index = (head - live + i) % events_per_shard_;
      const Slot& slot = shard->slots[index];
      FlightEvent event;
      for (int attempt = 0; attempt < 1024; ++attempt) {
        uint32_t before = slot.version.load(std::memory_order_acquire);
        if (before & 1u) continue;  // write in flight
        uint64_t words[6];
        for (size_t w = 0; w < 6; ++w) {
          words[w] = slot.words[w].load(std::memory_order_relaxed);
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        uint32_t after = slot.version.load(std::memory_order_relaxed);
        if (before == after) {
          std::memcpy(&event, words, sizeof(event));
          if (event.type != static_cast<uint16_t>(FlightEventType::kNone)) {
            events.push_back(event);
          }
          break;
        }
      }
    }
  }
  std::sort(events.begin(), events.end(), CanonicalLess);
  return events;
}

bool FlightRecorder::DumpTo(const std::string& path,
                            const std::string& reason) const {
  std::vector<FlightEvent> events = Snapshot();
  FlightDumpHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, "HYFR", 4);
  header.version = 1;
  header.event_size = sizeof(FlightEvent);
  header.event_count = events.size();
  std::strncpy(header.reason, reason.c_str(), sizeof(header.reason) - 1);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  bool ok = std::fwrite(&header, sizeof(header), 1, file) == 1;
  if (ok && !events.empty()) {
    ok = std::fwrite(events.data(), sizeof(FlightEvent), events.size(),
                     file) == events.size();
  }
  ok = (std::fclose(file) == 0) && ok;
  if (ok) FlightMetrics::Get().dumps->Add();
  return ok;
}

std::string FlightRecorder::Anomaly(AnomalyKind kind,
                                    const std::string& reason, uint64_t ticket,
                                    uint64_t window, uint64_t sim_ns,
                                    uint64_t a, uint64_t b) {
  if (!FlightRecorderEnabled()) return "";
  Record(FlightEventType::kAnomaly, static_cast<uint16_t>(kind), ticket,
         window, sim_ns, a, b);
  if (!EnvBool("HYTAP_FLIGHT_DUMP", true)) return "";
  uint64_t max_dumps = EnvU64("HYTAP_FLIGHT_MAX_DUMPS", 8);
  uint64_t index = impl_->dump_count.fetch_add(1, std::memory_order_relaxed);
  if (index >= max_dumps) return "";
  const char* dir = std::getenv("HYTAP_FLIGHT_DUMP_DIR");
  std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
  std::string slug;
  for (char c : reason) {
    slug.push_back(
        (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_');
  }
  if (slug.size() > 40) slug.resize(40);
  char name[96];
  std::snprintf(name, sizeof(name), "/flight_%03llu_%s.bin",
                static_cast<unsigned long long>(index), slug.c_str());
  std::string path = base + name;
  if (!DumpTo(path, reason)) return "";
  return path;
}

void FlightRecorder::Reset() {
  std::lock_guard<std::mutex> lock(impl_->shard_mutex);
  for (Shard* shard : impl_->shards) {
    for (size_t i = 0; i < events_per_shard_; ++i) {
      shard->slots[i].version.store(0, std::memory_order_relaxed);
      for (auto& word : shard->slots[i].words) {
        word.store(0, std::memory_order_relaxed);
      }
    }
    shard->head.store(0, std::memory_order_release);
  }
  impl_->dump_count.store(0, std::memory_order_relaxed);
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(impl_->shard_mutex);
  uint64_t total = 0;
  for (const Shard* shard : impl_->shards) {
    total += shard->head.load(std::memory_order_acquire);
  }
  return total;
}

bool ReadFlightDump(const std::string& path, std::vector<FlightEvent>* events,
                    std::string* reason) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  FlightDumpHeader header;
  bool ok = std::fread(&header, sizeof(header), 1, file) == 1 &&
            std::memcmp(header.magic, "HYFR", 4) == 0 && header.version == 1 &&
            header.event_size == sizeof(FlightEvent);
  if (ok) {
    events->resize(header.event_count);
    if (header.event_count > 0) {
      ok = std::fread(events->data(), sizeof(FlightEvent), header.event_count,
                      file) == header.event_count;
    }
    if (reason != nullptr) {
      header.reason[sizeof(header.reason) - 1] = '\0';
      *reason = header.reason;
    }
  }
  std::fclose(file);
  return ok;
}

const char* FlightEventTypeName(uint16_t type) {
  switch (static_cast<FlightEventType>(type)) {
    case FlightEventType::kNone: return "none";
    case FlightEventType::kSessionAdmit: return "session_admit";
    case FlightEventType::kSessionReject: return "session_reject";
    case FlightEventType::kSessionDispatch: return "session_dispatch";
    case FlightEventType::kSessionShed: return "session_shed";
    case FlightEventType::kSessionCancel: return "session_cancel";
    case FlightEventType::kSessionComplete: return "session_complete";
    case FlightEventType::kRetierTrigger: return "retier_trigger";
    case FlightEventType::kRetierStep: return "retier_step";
    case FlightEventType::kRetierQuarantine: return "retier_quarantine";
    case FlightEventType::kRetierAbort: return "retier_abort";
    case FlightEventType::kRetierPlanDone: return "retier_plan_done";
    case FlightEventType::kStoreFault: return "store_fault";
    case FlightEventType::kStoreChecksumFail: return "store_checksum_fail";
    case FlightEventType::kStoreQuarantine: return "store_quarantine";
    case FlightEventType::kStoreVerifyFail: return "store_verify_fail";
    case FlightEventType::kMergeBegin: return "merge_begin";
    case FlightEventType::kMergeEnd: return "merge_end";
    case FlightEventType::kMigrationBegin: return "migration_begin";
    case FlightEventType::kMigrationEnd: return "migration_end";
    case FlightEventType::kSloBreach: return "slo_breach";
    case FlightEventType::kSloClear: return "slo_clear";
    case FlightEventType::kAnomaly: return "anomaly";
    case FlightEventType::kPhaseAttribution: return "phase_attribution";
  }
  return "unknown";
}

}  // namespace hytap

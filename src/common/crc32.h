#ifndef HYTAP_COMMON_CRC32_H_
#define HYTAP_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace hytap {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) over
/// `size` bytes. Slice-by-8 software implementation: portable and fast
/// enough that checksumming a 4 KB page costs well under a microsecond,
/// which keeps the verify-on-read overhead within the fault-tolerance
/// budget (see bench/bench_fault_overhead.cc).
uint32_t Crc32c(const void* data, size_t size);

}  // namespace hytap

#endif  // HYTAP_COMMON_CRC32_H_

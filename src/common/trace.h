#ifndef HYTAP_COMMON_TRACE_H_
#define HYTAP_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hytap {

/// Per-query trace spans (DESIGN.md §11).
///
/// A span records one executor step (a predicate scan, a probe, the
/// materialization pass, ...) with its simulated cost, real wall time, and
/// ordered string annotations (estimated vs. actual selectivity, the
/// scan-vs-probe decision, pruning counters, retries drawn). Spans nest into
/// an operator tree rooted at the `execute` span that is attached to
/// `QueryResult::trace` while tracing is on.
///
/// Determinism: spans are created and annotated only on the executor's
/// serial control path (the same path that keeps IoStats and fault
/// schedules deterministic), never inside worker morsels. Everything except
/// `wall_ns` — and `simulated_ns`, whose queue-depth-dependent device costs
/// legitimately vary with the *requested* thread count — is therefore
/// invariant under the worker count (`trace_test` asserts it).

namespace trace_internal {
extern std::atomic<bool> g_enabled;
}  // namespace trace_internal

/// Master switch, initialized from HYTAP_TRACE ("1"/"on"/"true" enable;
/// default off — tracing allocates per query).
inline bool TraceEnabled() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

/// Runtime override used by tests, Explain(), and stats_cli.
void SetTraceEnabled(bool enabled);

/// One node of a query's operator/step tree.
struct TraceSpan {
  std::string name;
  /// Simulated device + DRAM ns accrued during this span (IoStats delta).
  uint64_t simulated_ns = 0;
  /// Real elapsed ns (steady clock). Never compared by determinism tests.
  uint64_t wall_ns = 0;
  /// Ordered key/value annotations (deterministic formatting).
  std::vector<std::pair<std::string, std::string>> annotations;
  std::vector<TraceSpan> children;

  void Annotate(std::string key, std::string value) {
    annotations.emplace_back(std::move(key), std::move(value));
  }
  /// Returns the value of `key`, or an empty string.
  const std::string& Annotation(const std::string& key) const;

  bool operator==(const TraceSpan& other) const {
    return name == other.name && simulated_ns == other.simulated_ns &&
           wall_ns == other.wall_ns && annotations == other.annotations &&
           children == other.children;
  }
};

/// Deterministic value formatting shared by all annotation writers.
std::string TraceFormatDouble(double value);

/// Human-readable tree rendering (indented, one span per line with its
/// annotations inline).
std::string RenderTraceText(const TraceSpan& root);

/// JSON rendering: {"name": ..., "simulated_ns": ..., "wall_ns": ...,
/// "annotations": {...}, "children": [...]}. Round-trips through
/// ParseTraceJson.
std::string RenderTraceJson(const TraceSpan& root);

/// Parses the exact schema RenderTraceJson emits (accepting arbitrary
/// whitespace). Returns false on malformed input; `out` is then
/// unspecified.
bool ParseTraceJson(const std::string& json, TraceSpan* out);

/// `root` with wall_ns and simulated_ns zeroed recursively — what the
/// determinism tests compare across thread counts.
TraceSpan StripTimes(const TraceSpan& root);

}  // namespace hytap

#endif  // HYTAP_COMMON_TRACE_H_

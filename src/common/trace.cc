#include "common/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hytap {

namespace trace_internal {

namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("HYTAP_TRACE");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
         std::strcmp(env, "true") == 0;
}

}  // namespace

std::atomic<bool> g_enabled{EnabledFromEnv()};

}  // namespace trace_internal

void SetTraceEnabled(bool enabled) {
  trace_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

const std::string& TraceSpan::Annotation(const std::string& key) const {
  static const std::string kEmpty;
  for (const auto& [k, v] : annotations) {
    if (k == key) return v;
  }
  return kEmpty;
}

std::string TraceFormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

namespace {

void RenderTextNode(const TraceSpan& span, size_t depth, std::string* out) {
  out->append(2 * depth, ' ');
  *out += span.name;
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer),
                " [sim=%" PRIu64 "ns wall=%" PRIu64 "ns]", span.simulated_ns,
                span.wall_ns);
  *out += buffer;
  for (const auto& [key, value] : span.annotations) {
    *out += ' ';
    *out += key;
    *out += '=';
    *out += value;
  }
  *out += '\n';
  for (const TraceSpan& child : span.children) {
    RenderTextNode(child, depth + 1, out);
  }
}

void JsonEscape(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

void RenderJsonNode(const TraceSpan& span, std::string* out) {
  *out += "{\"name\": \"";
  JsonEscape(span.name, out);
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer),
                "\", \"simulated_ns\": %" PRIu64 ", \"wall_ns\": %" PRIu64
                ", \"annotations\": {",
                span.simulated_ns, span.wall_ns);
  *out += buffer;
  for (size_t i = 0; i < span.annotations.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += '"';
    JsonEscape(span.annotations[i].first, out);
    *out += "\": \"";
    JsonEscape(span.annotations[i].second, out);
    *out += '"';
  }
  *out += "}, \"children\": [";
  for (size_t i = 0; i < span.children.size(); ++i) {
    if (i > 0) *out += ", ";
    RenderJsonNode(span.children[i], out);
  }
  *out += "]}";
}

/// Minimal recursive-descent parser for the schema RenderTraceJson emits.
class TraceJsonParser {
 public:
  explicit TraceJsonParser(const std::string& input) : in_(input) {}

  bool Parse(TraceSpan* out) {
    return ParseSpan(out) && (SkipSpace(), pos_ == in_.size());
  }

 private:
  void SkipSpace() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\n' || in_[pos_] == '\t' ||
            in_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= in_.size() || in_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(const char* literal) {
    SkipSpace();
    const size_t n = std::strlen(literal);
    if (in_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < in_.size()) {
      const char c = in_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= in_.size()) return false;
      const char esc = in_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > in_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = in_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= unsigned(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= unsigned(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= unsigned(h - 'A' + 10);
            } else {
              return false;
            }
          }
          if (code > 0x7f) return false;  // emitter only escapes ASCII
          *out += char(code);
          break;
        }
        default:
          return false;
      }
    }
    return false;
  }

  bool ParseUint(uint64_t* out) {
    SkipSpace();
    if (pos_ >= in_.size() || in_[pos_] < '0' || in_[pos_] > '9') {
      return false;
    }
    uint64_t value = 0;
    while (pos_ < in_.size() && in_[pos_] >= '0' && in_[pos_] <= '9') {
      value = value * 10 + uint64_t(in_[pos_++] - '0');
    }
    *out = value;
    return true;
  }

  bool ParseSpan(TraceSpan* out) {
    *out = TraceSpan();
    if (!Consume('{') || !ConsumeLiteral("\"name\"") || !Consume(':') ||
        (SkipSpace(), !ParseString(&out->name)) || !Consume(',') ||
        !ConsumeLiteral("\"simulated_ns\"") || !Consume(':') ||
        !ParseUint(&out->simulated_ns) || !Consume(',') ||
        !ConsumeLiteral("\"wall_ns\"") || !Consume(':') ||
        !ParseUint(&out->wall_ns) || !Consume(',') ||
        !ConsumeLiteral("\"annotations\"") || !Consume(':') ||
        !Consume('{')) {
      return false;
    }
    SkipSpace();
    if (pos_ < in_.size() && in_[pos_] == '"') {
      while (true) {
        std::string key, value;
        if (!ParseString(&key) || !Consume(':') ||
            (SkipSpace(), !ParseString(&value))) {
          return false;
        }
        out->annotations.emplace_back(std::move(key), std::move(value));
        if (!Consume(',')) break;
        SkipSpace();
      }
    }
    if (!Consume('}') || !Consume(',') || !ConsumeLiteral("\"children\"") ||
        !Consume(':') || !Consume('[')) {
      return false;
    }
    SkipSpace();
    if (pos_ < in_.size() && in_[pos_] == '{') {
      while (true) {
        out->children.emplace_back();
        if (!ParseSpan(&out->children.back())) return false;
        if (!Consume(',')) break;
      }
    }
    return Consume(']') && Consume('}');
  }

  const std::string& in_;
  size_t pos_ = 0;
};

}  // namespace

std::string RenderTraceText(const TraceSpan& root) {
  std::string out;
  RenderTextNode(root, 0, &out);
  return out;
}

std::string RenderTraceJson(const TraceSpan& root) {
  std::string out;
  RenderJsonNode(root, &out);
  out += '\n';
  return out;
}

bool ParseTraceJson(const std::string& json, TraceSpan* out) {
  return TraceJsonParser(json).Parse(out);
}

TraceSpan StripTimes(const TraceSpan& root) {
  TraceSpan stripped = root;
  stripped.simulated_ns = 0;
  stripped.wall_ns = 0;
  for (TraceSpan& child : stripped.children) child = StripTimes(child);
  return stripped;
}

}  // namespace hytap

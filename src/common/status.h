#ifndef HYTAP_COMMON_STATUS_H_
#define HYTAP_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/assert.h"

namespace hytap {

/// Error taxonomy for recoverable failures. Invariant violations use
/// HYTAP_ASSERT instead and abort.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kUnavailable,  // transient/permanent IO failure; the data itself is intact
  kDataLoss,     // checksum mismatch: stored bytes are corrupt
  kCancelled,    // the caller revoked the work (session stop token)
  kDeadlineExceeded,  // admission deadline passed before dispatch
};

/// Lightweight status object for recoverable errors (no exceptions).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. value() aborts on error; callers must
/// check ok() first on fallible paths.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    HYTAP_ASSERT(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    HYTAP_ASSERT(ok(), status_.message().c_str());
    return value_;
  }
  T& value() & {
    HYTAP_ASSERT(ok(), status_.message().c_str());
    return value_;
  }
  T&& value() && {
    HYTAP_ASSERT(ok(), status_.message().c_str());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace hytap

#endif  // HYTAP_COMMON_STATUS_H_

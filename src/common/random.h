#ifndef HYTAP_COMMON_RANDOM_H_
#define HYTAP_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hytap {

/// Deterministic, fast PRNG (xoshiro256**). All experiments seed explicitly so
/// every table/figure in EXPERIMENTS.md is exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound), bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// Zipfian generator over [0, n) with exponent alpha (paper uses alpha = 1 for
/// the skewed tuple-reconstruction experiments). Uses the rejection-inversion
/// method of Hörmann & Derflinger, O(1) per sample after O(1) setup.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double alpha);

  /// Returns a rank in [0, n); rank 0 is the most popular.
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double alpha_;
  double h_integral_x1_;
  double h_integral_num_elements_;
  double s_;
};

}  // namespace hytap

#endif  // HYTAP_COMMON_RANDOM_H_

#include "common/phases.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hytap {
namespace {

std::atomic<int> g_enabled{-1};  // -1 = unresolved, 0 = off, 1 = on

bool EnvBool(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return !(std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
           std::strcmp(value, "false") == 0 || std::strcmp(value, "OFF") == 0);
}

}  // namespace

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kScanProbe:
      return "scan_probe";
    case QueryPhase::kDelta:
      return "delta";
    case QueryPhase::kMaterialize:
      return "materialize";
    case QueryPhase::kStoreIo:
      return "store_io";
    case QueryPhase::kRetryBackoff:
      return "retry_backoff";
  }
  return "unknown";
}

bool PhaseAccountingEnabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = EnvBool("HYTAP_PHASE_ACCOUNTING", true) ? 1 : 0;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void SetPhaseAccountingEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace hytap

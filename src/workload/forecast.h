#ifndef HYTAP_WORKLOAD_FORECAST_H_
#define HYTAP_WORKLOAD_FORECAST_H_

#include <cstdint>
#include <map>
#include <vector>

#include "query/plan_cache.h"
#include "workload/workload.h"

namespace hytap {

/// How the next epoch's query frequencies b_j are predicted.
enum class ForecastMethod {
  kLastEpoch,             // b_j of the most recent epoch
  kMovingAverage,         // mean of the last `window` epochs
  kExponentialSmoothing,  // EWMA with factor `smoothing`
  kLinearTrend,           // least-squares line over the window, extrapolated
};

const char* ForecastMethodName(ForecastMethod method);

/// Epoch-structured workload history (paper §VI, future work: "varying time
/// frames (moving windows) of historic workload data can be used to feed the
/// model and to adapt the data layout successively. Further, our model can
/// also be directly combined with approaches to predict future workloads").
///
/// Usage: run queries through a PlanCache, then snapshot it once per epoch
/// (e.g., daily): CloseEpoch(cache) records the per-template counts and the
/// caller clears the cache for the next epoch.
class WorkloadHistory {
 public:
  WorkloadHistory() = default;

  /// Snapshots the per-template execution counts of one epoch.
  void CloseEpoch(const PlanCache& cache, const Table& table);

  size_t epoch_count() const { return epochs_; }
  size_t template_count() const { return series_.size(); }

  /// The recorded frequency series of a template (zero-padded to the number
  /// of epochs); empty if the template was never seen.
  std::vector<double> Series(const std::vector<ColumnId>& columns) const;

  /// Builds the workload with b_j predicted for the next epoch. Column sizes
  /// and selectivities come from `table`'s current state. `window` bounds
  /// how many trailing epochs the moving-average / trend methods consider
  /// (0 = all); `smoothing` is the EWMA weight of the most recent epoch.
  Workload Forecast(const Table& table, ForecastMethod method,
                    size_t window = 0, double smoothing = 0.5) const;

 private:
  /// Predicts the next value of one series.
  double PredictNext(const std::vector<double>& series, ForecastMethod method,
                     size_t window, double smoothing) const;

  size_t epochs_ = 0;
  // Template key (sorted filtered columns) -> per-epoch counts.
  std::map<std::vector<ColumnId>, std::vector<double>> series_;
};

}  // namespace hytap

#endif  // HYTAP_WORKLOAD_FORECAST_H_

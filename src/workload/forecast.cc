#include "workload/forecast.h"

#include <algorithm>

#include "common/assert.h"

namespace hytap {

const char* ForecastMethodName(ForecastMethod method) {
  switch (method) {
    case ForecastMethod::kLastEpoch:
      return "last-epoch";
    case ForecastMethod::kMovingAverage:
      return "moving-average";
    case ForecastMethod::kExponentialSmoothing:
      return "exponential-smoothing";
    case ForecastMethod::kLinearTrend:
      return "linear-trend";
  }
  return "unknown";
}

void WorkloadHistory::CloseEpoch(const PlanCache& cache, const Table& table) {
  (void)table;  // reserved for future per-epoch statistics snapshots
  for (const auto& [columns, stats] : cache.templates()) {
    auto& series = series_[columns];
    series.resize(epochs_, 0.0);  // zero-fill epochs before first sighting
    series.push_back(double(stats.count));
  }
  ++epochs_;
  // Templates absent this epoch get an explicit zero.
  for (auto& [columns, series] : series_) {
    if (series.size() < epochs_) series.resize(epochs_, 0.0);
  }
}

std::vector<double> WorkloadHistory::Series(
    const std::vector<ColumnId>& columns) const {
  std::vector<ColumnId> key = columns;
  std::sort(key.begin(), key.end());
  auto it = series_.find(key);
  if (it == series_.end()) return {};
  return it->second;
}

double WorkloadHistory::PredictNext(const std::vector<double>& series,
                                    ForecastMethod method, size_t window,
                                    double smoothing) const {
  HYTAP_ASSERT(!series.empty(), "empty series");
  const size_t n = series.size();
  const size_t start =
      (window == 0 || window >= n) ? 0 : n - window;
  const size_t len = n - start;
  switch (method) {
    case ForecastMethod::kLastEpoch:
      return series.back();
    case ForecastMethod::kMovingAverage: {
      double sum = 0.0;
      for (size_t i = start; i < n; ++i) sum += series[i];
      return sum / double(len);
    }
    case ForecastMethod::kExponentialSmoothing: {
      double level = series[start];
      for (size_t i = start + 1; i < n; ++i) {
        level = smoothing * series[i] + (1.0 - smoothing) * level;
      }
      return level;
    }
    case ForecastMethod::kLinearTrend: {
      if (len == 1) return series.back();
      // Least squares over (t, y), t = 0..len-1; extrapolate to t = len.
      double sum_t = 0, sum_y = 0, sum_tt = 0, sum_ty = 0;
      for (size_t i = 0; i < len; ++i) {
        const double t = double(i);
        const double y = series[start + i];
        sum_t += t;
        sum_y += y;
        sum_tt += t * t;
        sum_ty += t * y;
      }
      const double denom = double(len) * sum_tt - sum_t * sum_t;
      if (denom == 0.0) return series.back();
      const double slope = (double(len) * sum_ty - sum_t * sum_y) / denom;
      const double intercept = (sum_y - slope * sum_t) / double(len);
      return std::max(0.0, intercept + slope * double(len));
    }
  }
  HYTAP_UNREACHABLE("invalid ForecastMethod");
}

Workload WorkloadHistory::Forecast(const Table& table, ForecastMethod method,
                                   size_t window, double smoothing) const {
  HYTAP_ASSERT(epochs_ > 0, "no recorded epochs");
  Workload workload;
  const size_t n = table.column_count();
  for (ColumnId c = 0; c < n; ++c) {
    workload.column_sizes.push_back(
        std::max<double>(1.0, double(table.ColumnDramBytes(c))));
    workload.selectivities.push_back(table.SelectivityEstimate(c));
    workload.column_names.push_back(table.schema()[c].name);
  }
  for (const auto& [columns, series] : series_) {
    const double predicted = PredictNext(series, method, window, smoothing);
    if (predicted <= 0.0) continue;
    QueryTemplate tmpl;
    tmpl.columns.assign(columns.begin(), columns.end());
    tmpl.frequency = predicted;
    workload.queries.push_back(std::move(tmpl));
  }
  workload.Check();
  return workload;
}

}  // namespace hytap

#ifndef HYTAP_WORKLOAD_TPCC_H_
#define HYTAP_WORKLOAD_TPCC_H_

#include <cstdint>
#include <vector>

#include "query/join.h"
#include "query/predicate.h"
#include "storage/column.h"
#include "workload/workload.h"

namespace hytap {

/// Column indices of the TPC-C ORDERLINE table (10 attributes).
enum OrderlineColumn : uint32_t {
  kOlOId = 0,
  kOlDId = 1,
  kOlWId = 2,
  kOlNumber = 3,
  kOlIId = 4,
  kOlSupplyWId = 5,
  kOlDeliveryD = 6,
  kOlQuantity = 7,
  kOlAmount = 8,
  kOlDistInfo = 9,
};

/// Shape parameters for the generated ORDERLINE data.
struct OrderlineParams {
  uint32_t warehouses = 10;
  uint32_t districts_per_warehouse = 10;
  uint32_t orders_per_district = 100;
  uint32_t max_lines_per_order = 10;  // 5..max per order
  uint32_t items = 1000;              // item id domain
  uint64_t seed = 7;
};

/// The ORDERLINE schema (4 primary-key attributes + 6 payload attributes).
Schema OrderlineSchema();

/// Generates ORDERLINE rows for `params`.
std::vector<Row> GenerateOrderlineRows(const OrderlineParams& params);

/// The four primary-key columns (ol_o_id, ol_d_id, ol_w_id, ol_number) — the
/// attributes the paper's data allocation model keeps as MRCs at w = 0.2.
std::vector<ColumnId> OrderlinePrimaryKey();

/// Read access of the TPC-C delivery transaction: locate the order lines of
/// one (warehouse, district, order), project the delivery-relevant payload.
Query DeliveryQuery(int32_t warehouse, int32_t district, int32_t order);

/// CH-benCHmark query #19 access pattern on ORDERLINE: equality on ol_w_id,
/// item predicate on ol_i_id, range predicate on ol_quantity (the predicate
/// that hits tiered data at w = 0.2, Table III), projecting ol_amount.
Query ChQuery19(int32_t warehouse, int32_t item_lo, int32_t item_hi,
                int32_t quantity_lo, int32_t quantity_hi);

/// Plan-cache-style workload of the ORDERLINE accesses (delivery dominating,
/// CH-19 analytical), for the selection model.
Workload OrderlineWorkload(const OrderlineParams& params);

/// Column indices of the TPC-C ITEM table.
enum ItemColumn : uint32_t {
  kIId = 0,
  kIName = 1,
  kIPrice = 2,
  kIData = 3,
};

/// The ITEM schema (join partner of ORDERLINE in CH-benCHmark query #19).
Schema ItemSchema();

/// Generates `items` ITEM rows (i_id 1..items).
std::vector<Row> GenerateItemRows(uint32_t items, uint64_t seed);

/// CH-19 as an actual join: ORDERLINE (quantity/warehouse predicates) joined
/// with ITEM (price band) on ol_i_id = i_id, projecting ol_amount.
struct ChQuery19Join {
  Query orderline;
  Query item;
  JoinSpec spec;
};
ChQuery19Join MakeChQuery19Join(int32_t warehouse, int32_t quantity_lo,
                                int32_t quantity_hi, double price_lo,
                                double price_hi);

}  // namespace hytap

#endif  // HYTAP_WORKLOAD_TPCC_H_

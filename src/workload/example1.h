#ifndef HYTAP_WORKLOAD_EXAMPLE1_H_
#define HYTAP_WORKLOAD_EXAMPLE1_H_

#include <cstdint>

#include "workload/workload.h"

namespace hytap {

/// Parameters of the reproducible column selection problem class of
/// Example 1 (paper §III-C, and the authors' companion repository
/// hpi-epic/column_selection_example).
///
/// The generated workloads exhibit the features the paper calls out:
///  - column sizes and selectivities drawn log-uniformly over wide ranges,
///  - occurrence counts g_i correlated with selectivity (columns with small
///    selectivity tend to be used less often), defeating single-metric
///    heuristics,
///  - co-occurrence: some columns frequently appear in queries together
///    (selection interaction), so keeping all of them in DRAM is wasteful.
struct Example1Params {
  size_t num_columns = 50;   // N
  size_t num_queries = 500;  // Q
  uint64_t seed = 1;
  double min_column_bytes = 4.0 * 1024;
  double max_column_bytes = 4.0 * 1024 * 1024;
  double min_selectivity = 1e-5;
  double max_selectivity = 0.5;
  /// Probability that a query draws its columns from one co-occurrence
  /// group instead of independently. 0 disables selection interaction.
  double group_probability = 0.6;
  /// Number of co-occurrence groups.
  size_t group_count = 8;
  size_t min_predicates = 1;
  size_t max_predicates = 6;
};

/// Generates one Example-1 instance.
Workload GenerateExample1(const Example1Params& params);

/// Scalability instances for Table II: N columns, Q = 10 * N queries.
Workload GenerateScalabilityWorkload(size_t num_columns, size_t num_queries,
                                     uint64_t seed);

/// Extreme-scale instance over (column, tenant) items (paper §V: one DRAM
/// budget shared by many tenant schemas): `tenants * columns_per_tenant`
/// total columns, each tenant with its own co-accessed column block. Runs in
/// O(N + total queries) — unlike GenerateExample1, whose popularity sampling
/// is O(N) per query — so N = 10^6 instances generate in seconds.
Workload GenerateMultiTenantWorkload(size_t tenants,
                                     size_t columns_per_tenant,
                                     size_t queries_per_tenant,
                                     uint64_t seed);

}  // namespace hytap

#endif  // HYTAP_WORKLOAD_EXAMPLE1_H_

#ifndef HYTAP_WORKLOAD_WORKLOAD_H_
#define HYTAP_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hytap {

/// One query template of the selection model (paper §III-A): the set q_j of
/// filtered columns and the occurrence count b_j.
struct QueryTemplate {
  std::vector<uint32_t> columns;  // q_j, column indices
  double frequency = 1.0;         // b_j
};

/// The abstract workload consumed by the column selection model: N columns
/// with sizes a_i (bytes) and selectivities s_i (average share of rows per
/// distinct value), plus Q query templates.
struct Workload {
  std::vector<double> column_sizes;    // a_i, bytes
  std::vector<double> selectivities;   // s_i in (0, 1]
  std::vector<QueryTemplate> queries;
  std::vector<std::string> column_names;  // optional, for reporting

  size_t column_count() const { return column_sizes.size(); }
  size_t query_count() const { return queries.size(); }

  /// Total bytes of all columns (the w = 1 DRAM budget).
  double TotalBytes() const;

  /// g_i: number of weighted query occurrences filtering column i.
  std::vector<double> ColumnFrequencies() const;

  /// Validates internal consistency (sizes > 0, selectivities in (0,1],
  /// column indices in range); aborts on violation.
  void Check() const;
};

}  // namespace hytap

#endif  // HYTAP_WORKLOAD_WORKLOAD_H_

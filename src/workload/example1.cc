#include "workload/example1.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/random.h"

namespace hytap {

namespace {

double LogUniform(Rng& rng, double lo, double hi) {
  return std::exp(rng.NextDouble(std::log(lo), std::log(hi)));
}

}  // namespace

Workload GenerateExample1(const Example1Params& params) {
  HYTAP_ASSERT(params.num_columns >= 2, "need at least two columns");
  HYTAP_ASSERT(params.min_predicates >= 1, "queries need predicates");
  Rng rng(params.seed);
  const size_t n = params.num_columns;

  Workload workload;
  workload.column_sizes.reserve(n);
  workload.selectivities.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workload.column_sizes.push_back(
        LogUniform(rng, params.min_column_bytes, params.max_column_bytes));
    workload.selectivities.push_back(
        LogUniform(rng, params.min_selectivity, params.max_selectivity));
    workload.column_names.push_back("col_" + std::to_string(i));
  }

  // Popularity weights: correlated with selectivity (small-selectivity
  // columns are used less often, paper §III-C) plus noise, so neither H1 nor
  // H2 can rank optimally.
  std::vector<double> popularity(n);
  for (size_t i = 0; i < n; ++i) {
    const double sel_rank =
        std::log(workload.selectivities[i] / params.min_selectivity) /
        std::log(params.max_selectivity / params.min_selectivity);
    popularity[i] = 0.25 + 0.5 * sel_rank + 0.5 * rng.NextDouble();
  }
  double total_popularity = 0.0;
  for (double p : popularity) total_popularity += p;

  auto sample_column = [&]() -> uint32_t {
    double r = rng.NextDouble() * total_popularity;
    for (size_t i = 0; i < n; ++i) {
      r -= popularity[i];
      if (r <= 0.0) return static_cast<uint32_t>(i);
    }
    return static_cast<uint32_t>(n - 1);
  };

  // Co-occurrence groups: disjoint blocks of columns that tend to be
  // filtered together (selection interaction).
  std::vector<std::vector<uint32_t>> groups(std::max<size_t>(
      1, std::min(params.group_count, n / 3)));
  {
    std::vector<uint32_t> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = static_cast<uint32_t>(i);
    rng.Shuffle(ids);
    for (size_t i = 0; i < ids.size(); ++i) {
      groups[i % groups.size()].push_back(ids[i]);
    }
  }

  workload.queries.reserve(params.num_queries);
  for (size_t j = 0; j < params.num_queries; ++j) {
    const size_t arity = static_cast<size_t>(
        rng.NextInt(int64_t(params.min_predicates),
                    int64_t(params.max_predicates)));
    std::vector<uint32_t> columns;
    if (rng.NextBool(params.group_probability)) {
      const auto& group = groups[rng.NextBounded(groups.size())];
      for (size_t k = 0; k < arity && k < group.size(); ++k) {
        columns.push_back(group[rng.NextBounded(group.size())]);
      }
    } else {
      for (size_t k = 0; k < arity; ++k) columns.push_back(sample_column());
    }
    std::sort(columns.begin(), columns.end());
    columns.erase(std::unique(columns.begin(), columns.end()),
                  columns.end());
    if (columns.empty()) columns.push_back(sample_column());
    QueryTemplate tmpl;
    tmpl.columns = std::move(columns);
    tmpl.frequency = 1.0;
    workload.queries.push_back(std::move(tmpl));
  }
  workload.Check();
  return workload;
}

Workload GenerateScalabilityWorkload(size_t num_columns, size_t num_queries,
                                     uint64_t seed) {
  Example1Params params;
  params.num_columns = num_columns;
  params.num_queries = num_queries;
  params.seed = seed;
  params.group_count = std::max<size_t>(4, num_columns / 16);
  return GenerateExample1(params);
}

Workload GenerateMultiTenantWorkload(size_t tenants,
                                     size_t columns_per_tenant,
                                     size_t queries_per_tenant,
                                     uint64_t seed) {
  HYTAP_ASSERT(tenants >= 1 && columns_per_tenant >= 1,
               "need at least one tenant column");
  Rng rng(seed);
  const size_t n = tenants * columns_per_tenant;

  Workload workload;
  workload.column_sizes.reserve(n);
  workload.selectivities.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workload.column_sizes.push_back(LogUniform(rng, 4.0 * 1024, 4096.0 * 1024));
    workload.selectivities.push_back(LogUniform(rng, 1e-5, 0.5));
  }
  // One shared name; per-item names at N = 10^6 would dominate memory and
  // nothing in the selection path reads them.
  workload.column_names.clear();

  // Each tenant's queries stay inside its own column block, so drawing a
  // query column is O(1) and the whole instance is O(N + Q). Query counts
  // vary +/-50% across tenants so per-tenant load (and thus placement value)
  // is skewed.
  workload.queries.reserve(tenants * queries_per_tenant);
  for (size_t t = 0; t < tenants; ++t) {
    const uint32_t base = uint32_t(t * columns_per_tenant);
    const size_t tenant_queries = std::max<size_t>(
        1, size_t(double(queries_per_tenant) * rng.NextDouble(0.5, 1.5)));
    for (size_t j = 0; j < tenant_queries; ++j) {
      const size_t arity =
          1 + size_t(rng.NextBounded(std::min<size_t>(4, columns_per_tenant)));
      std::vector<uint32_t> columns;
      columns.reserve(arity);
      for (size_t k = 0; k < arity; ++k) {
        columns.push_back(base + uint32_t(rng.NextBounded(columns_per_tenant)));
      }
      std::sort(columns.begin(), columns.end());
      columns.erase(std::unique(columns.begin(), columns.end()),
                    columns.end());
      QueryTemplate tmpl;
      tmpl.columns = std::move(columns);
      tmpl.frequency = 1.0 + double(rng.NextBounded(8));
      workload.queries.push_back(std::move(tmpl));
    }
  }
  workload.Check();
  return workload;
}

}  // namespace hytap

#include "workload/workload_monitor.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/assert.h"
#include "common/metrics.h"
#include "storage/table.h"

namespace hytap {

namespace workload_monitor_internal {

namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("HYTAP_WORKLOAD_MONITOR");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
         std::strcmp(env, "false") != 0;
}

}  // namespace

std::atomic<bool> g_enabled{EnabledFromEnv()};

}  // namespace workload_monitor_internal

void SetWorkloadMonitorEnabled(bool enabled) {
  workload_monitor_internal::g_enabled.store(enabled,
                                             std::memory_order_relaxed);
}

namespace {

/// Registry handles resolved once; updates gated on HYTAP_METRICS.
struct MonitorMetrics {
  Counter* queries;
  Counter* windows_rolled;
  Gauge* drift_pct;
  Gauge* drift_ppm;  // finer-grained drift for the re-tiering daemon
  Gauge* live_windows;

  static MonitorMetrics& Get() {
    static MonitorMetrics metrics;
    return metrics;
  }

 private:
  MonitorMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    queries = registry.GetCounter("hytap_workload_queries_observed_total");
    windows_rolled =
        registry.GetCounter("hytap_workload_windows_rolled_total");
    drift_pct = registry.GetGauge("hytap_workload_drift_pct");
    drift_ppm = registry.GetGauge("hytap_workload_drift");
    live_windows = registry.GetGauge("hytap_workload_live_windows");
  }
};

WorkloadWindowSnapshot EmptyWindow(uint64_t index, uint64_t start_ns,
                                   size_t columns) {
  WorkloadWindowSnapshot window;
  window.index = index;
  window.start_ns = start_ns;
  window.column_frequency.assign(columns, 0.0);
  window.selectivity_sum.assign(columns, 0.0);
  window.selectivity_samples.assign(columns, 0);
  return window;
}

/// Drift between the two newest non-empty windows of a ring (oldest-first
/// sequence); 0 when fewer than two such windows exist.
template <typename Windows>
double DriftOf(const Windows& windows) {
  const WorkloadWindowSnapshot* newest = nullptr;
  const WorkloadWindowSnapshot* previous = nullptr;
  for (auto it = windows.rbegin(); it != windows.rend(); ++it) {
    if (it->queries == 0) continue;
    if (newest == nullptr) {
      newest = &*it;
    } else {
      previous = &*it;
      break;
    }
  }
  if (newest == nullptr || previous == nullptr) return 0.0;
  return WindowDistance(*previous, *newest);
}

}  // namespace

std::vector<double> WorkloadWindowSnapshot::NormalizedFrequencies() const {
  double total = 0.0;
  for (double g : column_frequency) total += g;
  std::vector<double> normalized(column_frequency.size(), 0.0);
  if (total <= 0.0) return normalized;
  for (size_t i = 0; i < column_frequency.size(); ++i) {
    normalized[i] = column_frequency[i] / total;
  }
  return normalized;
}

double WindowDistance(const WorkloadWindowSnapshot& a,
                      const WorkloadWindowSnapshot& b) {
  const std::vector<double> pa = a.NormalizedFrequencies();
  const std::vector<double> pb = b.NormalizedFrequencies();
  const size_t n = std::max(pa.size(), pb.size());
  double distance = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double va = i < pa.size() ? pa[i] : 0.0;
    const double vb = i < pb.size() ? pb[i] : 0.0;
    distance += va > vb ? va - vb : vb - va;
  }
  return 0.5 * distance;  // total-variation distance
}

Workload WindowsToWorkload(const WorkloadWindowSeries& series,
                           const std::vector<double>& column_sizes,
                           const std::vector<double>& fallback_selectivities,
                           const std::vector<std::string>& column_names,
                           size_t recent) {
  const size_t n = column_sizes.size();
  HYTAP_ASSERT(fallback_selectivities.size() == n,
               "fallback selectivities must match column sizes");
  const size_t first = recent == 0 || recent >= series.windows.size()
                           ? 0
                           : series.windows.size() - recent;

  Workload workload;
  workload.column_sizes.reserve(n);
  workload.selectivities.reserve(n);
  workload.column_names = column_names;

  std::vector<double> sel_sum(n, 0.0);
  std::vector<uint64_t> sel_samples(n, 0);
  std::map<std::vector<ColumnId>, uint64_t> templates;
  for (size_t w = first; w < series.windows.size(); ++w) {
    const WorkloadWindowSnapshot& window = series.windows[w];
    for (size_t c = 0; c < n && c < window.selectivity_sum.size(); ++c) {
      sel_sum[c] += window.selectivity_sum[c];
      sel_samples[c] += window.selectivity_samples[c];
    }
    for (const auto& [columns, count] : window.templates) {
      templates[columns] += count;
    }
  }

  for (size_t c = 0; c < n; ++c) {
    workload.column_sizes.push_back(std::max(1.0, column_sizes[c]));
    double s = sel_samples[c] > 0 ? sel_sum[c] / double(sel_samples[c])
                                  : fallback_selectivities[c];
    // Observed selectivities can legitimately be 0 (no survivor) or reach
    // 1; clamp into the model's (0, 1] domain.
    s = std::min(1.0, std::max(1e-9, s));
    workload.selectivities.push_back(s);
  }
  workload.queries.reserve(templates.size());
  for (const auto& [columns, count] : templates) {
    if (columns.empty()) continue;  // unfiltered queries carry no scan term
    QueryTemplate tmpl;
    tmpl.columns.assign(columns.begin(), columns.end());
    tmpl.frequency = double(count);
    workload.queries.push_back(std::move(tmpl));
  }
  workload.Check();
  return workload;
}

WorkloadMonitor::Options WorkloadMonitor::Options::FromEnv() {
  Options options;
  if (const char* env = std::getenv("HYTAP_WORKLOAD_WINDOWS")) {
    const uint64_t value = std::strtoull(env, nullptr, 10);
    if (value >= 2) options.windows = size_t(value);
  }
  if (const char* env = std::getenv("HYTAP_WINDOW_NS")) {
    const uint64_t value = std::strtoull(env, nullptr, 10);
    if (value >= 1) options.window_ns = value;
  }
  return options;
}

WorkloadMonitor::WorkloadMonitor(size_t column_count, Options options)
    : column_count_(column_count), options_(options) {
  HYTAP_ASSERT(options_.windows >= 2, "need at least two windows for drift");
  HYTAP_ASSERT(options_.window_ns >= 1, "window width must be positive");
  ring_.push_back(EmptyWindow(0, 0, column_count_));
}

void WorkloadMonitor::RollLocked() {
  // The current window covers [index * window_ns, (index+1) * window_ns).
  while (now_ns_ >= (ring_.back().index + 1) * options_.window_ns) {
    const uint64_t next = ring_.back().index + 1;
    ring_.push_back(
        EmptyWindow(next, next * options_.window_ns, column_count_));
    ++windows_started_;
    MonitorMetrics::Get().windows_rolled->Add();
    if (ring_.size() > options_.windows) ring_.pop_front();
  }
}

void WorkloadMonitor::Record(const QueryObservation& observation) {
  QueryObservationSink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The query belongs to the window containing its start time.
    WorkloadWindowSnapshot& window = ring_.back();
    ++window.queries;
    if (observation.failed) ++window.failures;
    window.simulated_ns += observation.simulated_ns;
    for (ColumnId c : observation.filtered_columns) {
      if (c < window.column_frequency.size()) {
        window.column_frequency[c] += 1.0;
      }
    }
    for (const StepObservation& step : observation.steps) {
      switch (step.kind) {
        case StepKind::kIndex:
          ++window.index_steps;
          break;
        case StepKind::kScan:
          ++window.scan_steps;
          break;
        case StepKind::kProbe:
          ++window.probe_steps;
          break;
        case StepKind::kRescan:
          ++window.rescan_steps;
          break;
      }
      if (step.column < column_count_ && step.candidates_in > 0) {
        window.selectivity_sum[step.column] += step.observed_selectivity;
        ++window.selectivity_samples[step.column];
      }
    }
    if (!observation.filtered_columns.empty()) {
      ++window.templates[observation.filtered_columns];
    }
    now_ns_ += observation.simulated_ns;
    RollLocked();
    ++queries_observed_;
    ++observation_sequence_;
    last_observation_ = observation;
    MonitorMetrics& metrics = MonitorMetrics::Get();
    metrics.queries->Add();
    metrics.live_windows->Set(int64_t(ring_.size()));
    const double drift = DriftOf(ring_);
    metrics.drift_pct->Set(int64_t(drift * 100.0 + 0.5));
    metrics.drift_ppm->Set(int64_t(drift * 1e6 + 0.5));
    sink = sink_;
  }
  // Outside the lock: the sink serializes itself, and calling out while
  // holding mutex_ would deadlock a sink that reads the monitor back.
  if (sink != nullptr) sink->Observe(observation);
}

void WorkloadMonitor::ForceRoll() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Jump the clock to the next window boundary and open the new window.
  now_ns_ = (ring_.back().index + 1) * options_.window_ns;
  RollLocked();
}

void WorkloadMonitor::set_sink(QueryObservationSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink;
}

uint64_t WorkloadMonitor::now_ns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_ns_;
}

size_t WorkloadMonitor::window_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

uint64_t WorkloadMonitor::windows_started() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return windows_started_;
}

uint64_t WorkloadMonitor::queries_observed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queries_observed_;
}

uint64_t WorkloadMonitor::observation_sequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return observation_sequence_;
}

QueryObservation WorkloadMonitor::last_observation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_observation_;
}

WorkloadWindowSnapshot WorkloadMonitor::Snapshot(size_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  HYTAP_ASSERT(i < ring_.size(), "window index out of range");
  return ring_[i];
}

WorkloadWindowSeries WorkloadMonitor::Export() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkloadWindowSeries series;
  series.window_ns = options_.window_ns;
  series.column_count = column_count_;
  series.windows.assign(ring_.begin(), ring_.end());
  return series;
}

double WorkloadMonitor::Drift() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return DriftOf(ring_);
}

Workload WorkloadMonitor::ToWorkload(const Table& table, size_t recent) const {
  const size_t n = table.column_count();
  std::vector<double> sizes(n), fallback(n);
  std::vector<std::string> names(n);
  for (ColumnId c = 0; c < n; ++c) {
    sizes[c] = double(table.ColumnDramBytes(c));
    fallback[c] = table.SelectivityEstimate(c);
    names[c] = table.schema()[c].name;
  }
  return WindowsToWorkload(Export(), sizes, fallback, names, recent);
}

void WorkloadMonitor::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  ring_.push_back(EmptyWindow(0, 0, column_count_));
  now_ns_ = 0;
  windows_started_ = 1;
  queries_observed_ = 0;
  observation_sequence_ = 0;
  last_observation_ = QueryObservation();
}

}  // namespace hytap

#include "workload/tpcc.h"

#include <algorithm>
#include <string>

#include "common/assert.h"
#include "common/random.h"

namespace hytap {

Schema OrderlineSchema() {
  Schema schema;
  auto add = [&schema](const char* name, DataType type, size_t width = 16) {
    ColumnDefinition def;
    def.name = name;
    def.type = type;
    def.string_width = width;
    schema.push_back(def);
  };
  add("ol_o_id", DataType::kInt32);
  add("ol_d_id", DataType::kInt32);
  add("ol_w_id", DataType::kInt32);
  add("ol_number", DataType::kInt32);
  add("ol_i_id", DataType::kInt32);
  add("ol_supply_w_id", DataType::kInt32);
  add("ol_delivery_d", DataType::kInt64);
  add("ol_quantity", DataType::kInt32);
  add("ol_amount", DataType::kDouble);
  add("ol_dist_info", DataType::kString, 24);
  return schema;
}

std::vector<Row> GenerateOrderlineRows(const OrderlineParams& params) {
  Rng rng(params.seed);
  std::vector<Row> rows;
  const uint64_t estimated =
      uint64_t(params.warehouses) * params.districts_per_warehouse *
      params.orders_per_district * (5 + params.max_lines_per_order) / 2;
  rows.reserve(estimated);
  int64_t base_date = 1514764800;  // 2018-01-01, seconds
  for (uint32_t w = 1; w <= params.warehouses; ++w) {
    for (uint32_t d = 1; d <= params.districts_per_warehouse; ++d) {
      for (uint32_t o = 1; o <= params.orders_per_district; ++o) {
        const uint32_t lines =
            5 + static_cast<uint32_t>(
                    rng.NextBounded(params.max_lines_per_order - 4));
        for (uint32_t l = 1; l <= lines; ++l) {
          Row row;
          row.reserve(10);
          row.emplace_back(static_cast<int32_t>(o));
          row.emplace_back(static_cast<int32_t>(d));
          row.emplace_back(static_cast<int32_t>(w));
          row.emplace_back(static_cast<int32_t>(l));
          row.emplace_back(
              static_cast<int32_t>(1 + rng.NextBounded(params.items)));
          row.emplace_back(static_cast<int32_t>(w));
          row.emplace_back(base_date + int64_t(rng.NextBounded(86400 * 90)));
          row.emplace_back(static_cast<int32_t>(1 + rng.NextBounded(10)));
          row.emplace_back(rng.NextDouble(0.01, 9999.99));
          row.emplace_back(std::string("dist-info-") +
                           std::to_string(rng.NextBounded(100000)));
          rows.push_back(std::move(row));
        }
      }
    }
  }
  return rows;
}

std::vector<ColumnId> OrderlinePrimaryKey() {
  return {kOlOId, kOlDId, kOlWId, kOlNumber};
}

Query DeliveryQuery(int32_t warehouse, int32_t district, int32_t order) {
  Query query;
  query.predicates.push_back(Predicate::Equals(kOlWId, Value(warehouse)));
  query.predicates.push_back(Predicate::Equals(kOlDId, Value(district)));
  query.predicates.push_back(Predicate::Equals(kOlOId, Value(order)));
  query.projections = {kOlNumber, kOlIId, kOlAmount, kOlDeliveryD};
  return query;
}

Query ChQuery19(int32_t warehouse, int32_t item_lo, int32_t item_hi,
                int32_t quantity_lo, int32_t quantity_hi) {
  Query query;
  query.predicates.push_back(Predicate::Equals(kOlWId, Value(warehouse)));
  query.predicates.push_back(
      Predicate::Between(kOlIId, Value(item_lo), Value(item_hi)));
  query.predicates.push_back(
      Predicate::Between(kOlQuantity, Value(quantity_lo), Value(quantity_hi)));
  query.projections = {kOlAmount};
  return query;
}

Schema ItemSchema() {
  Schema schema;
  ColumnDefinition def;
  def.name = "i_id";
  def.type = DataType::kInt32;
  schema.push_back(def);
  def.name = "i_name";
  def.type = DataType::kString;
  def.string_width = 16;
  schema.push_back(def);
  def.name = "i_price";
  def.type = DataType::kDouble;
  schema.push_back(def);
  def.name = "i_data";
  def.type = DataType::kString;
  def.string_width = 24;
  schema.push_back(def);
  return schema;
}

std::vector<Row> GenerateItemRows(uint32_t items, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  rows.reserve(items);
  for (uint32_t i = 1; i <= items; ++i) {
    Row row;
    row.emplace_back(static_cast<int32_t>(i));
    row.emplace_back(std::string("item-") + std::to_string(i));
    row.emplace_back(rng.NextDouble(1.0, 100.0));
    row.emplace_back(std::string("data-") +
                     std::to_string(rng.NextBounded(100000)));
    rows.push_back(std::move(row));
  }
  return rows;
}

ChQuery19Join MakeChQuery19Join(int32_t warehouse, int32_t quantity_lo,
                                int32_t quantity_hi, double price_lo,
                                double price_hi) {
  ChQuery19Join join;
  join.orderline.predicates.push_back(
      Predicate::Equals(kOlWId, Value(warehouse)));
  join.orderline.predicates.push_back(Predicate::Between(
      kOlQuantity, Value(quantity_lo), Value(quantity_hi)));
  join.item.predicates.push_back(
      Predicate::Between(kIPrice, Value(price_lo), Value(price_hi)));
  join.spec.left_column = kOlIId;
  join.spec.right_column = kIId;
  join.spec.left_projections = {kOlAmount};
  join.spec.right_projections = {kIPrice};
  return join;
}

Workload OrderlineWorkload(const OrderlineParams& params) {
  // Aggregate selection-model view of the access patterns above. Sizes are
  // relative per-attribute byte weights of a scale-independent ORDERLINE
  // (int ~4 B, int64/double ~8 B, dist_info 24 B after encoding).
  Workload workload;
  workload.column_names = {"ol_o_id",     "ol_d_id",        "ol_w_id",
                           "ol_number",   "ol_i_id",        "ol_supply_w_id",
                           "ol_delivery_d", "ol_quantity",  "ol_amount",
                           "ol_dist_info"};
  workload.column_sizes = {4, 4, 4, 4, 4, 4, 8, 4, 8, 24};
  const double rows = double(params.warehouses) *
                      params.districts_per_warehouse *
                      params.orders_per_district * 7.5;
  workload.selectivities = {
      1.0 / double(params.orders_per_district),
      1.0 / double(params.districts_per_warehouse),
      1.0 / double(params.warehouses),
      1.0 / 10.0,
      1.0 / double(params.items),
      1.0 / double(params.warehouses),
      std::min(1.0, 1000.0 / rows),
      1.0 / 10.0,
      1.0 / 4000.0,
      1.0 / 1000.0,
  };
  // Delivery dominates (OLTP); CH-19 and a delivery-date report are the
  // analytical tail. Grouping/joins on PK columns count as accesses too
  // (paper §IV-A: CH accesses ORDERLINE mainly via primary-key columns).
  QueryTemplate delivery;
  delivery.columns = {kOlOId, kOlDId, kOlWId};
  delivery.frequency = 1000.0;
  QueryTemplate ch19;
  ch19.columns = {kOlWId, kOlIId, kOlQuantity};
  ch19.frequency = 10.0;
  QueryTemplate pk_join;
  pk_join.columns = {kOlWId, kOlDId, kOlOId, kOlNumber};
  pk_join.frequency = 50.0;
  workload.queries = {delivery, ch19, pk_join};
  workload.Check();
  return workload;
}

}  // namespace hytap

#include "workload/workload.h"

#include "common/assert.h"

namespace hytap {

double Workload::TotalBytes() const {
  double total = 0.0;
  for (double a : column_sizes) total += a;
  return total;
}

std::vector<double> Workload::ColumnFrequencies() const {
  std::vector<double> g(column_count(), 0.0);
  for (const QueryTemplate& q : queries) {
    for (uint32_t c : q.columns) g[c] += q.frequency;
  }
  return g;
}

void Workload::Check() const {
  HYTAP_ASSERT(selectivities.size() == column_sizes.size(),
               "selectivity / size arity mismatch");
  for (double a : column_sizes) {
    HYTAP_ASSERT(a > 0.0, "column sizes must be positive");
  }
  for (double s : selectivities) {
    HYTAP_ASSERT(s > 0.0 && s <= 1.0, "selectivities must be in (0, 1]");
  }
  for (const QueryTemplate& q : queries) {
    HYTAP_ASSERT(q.frequency >= 0.0, "query frequency must be non-negative");
    for (uint32_t c : q.columns) {
      HYTAP_ASSERT(c < column_count(), "query references unknown column");
    }
  }
}

}  // namespace hytap

#include "workload/enterprise.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/random.h"

namespace hytap {

namespace {

double LogUniform(Rng& rng, double lo, double hi) {
  return std::exp(rng.NextDouble(std::log(lo), std::log(hi)));
}

}  // namespace

std::vector<EnterpriseProfile> SapErpProfiles() {
  // attribute_count / filtered / hot straight from Table I; byte shares from
  // the BSEG analysis in §III-B, reused across tables as representative.
  return {
      {"BSEG", 345, 50, 18, 60, 0.78, 0.04},
      {"ACDOCA", 338, 51, 19, 64, 0.76, 0.04},
      {"VBAP", 340, 38, 9, 44, 0.80, 0.045},
      {"BKPF", 128, 42, 16, 52, 0.70, 0.04},
      {"COEP", 131, 22, 6, 30, 0.82, 0.05},
  };
}

EnterpriseProfile BsegProfile() { return SapErpProfiles().front(); }

Workload GenerateEnterpriseWorkload(const EnterpriseProfile& profile,
                                    uint64_t seed) {
  HYTAP_ASSERT(profile.filtered_count >= profile.hot_filtered_count,
               "hot subset must not exceed filtered set");
  HYTAP_ASSERT(profile.attribute_count > profile.filtered_count,
               "profile needs unfiltered attributes");
  Rng rng(seed);
  const size_t n = profile.attribute_count;
  const size_t filtered = profile.filtered_count;
  const size_t hot = profile.hot_filtered_count;

  Workload workload;
  workload.column_sizes.assign(n, 0.0);
  workload.selectivities.assign(n, 1.0);
  workload.column_names.assign(n, "");

  // Columns [0, filtered) are the filtered set; column 0 is the dominant
  // "BELNR"-like document number (large, high cardinality, heavily used).
  // Columns [filtered, n) are never filtered.
  for (size_t i = 0; i < n; ++i) {
    workload.column_names[i] =
        profile.table_name + "_" + (i == 0 ? "BELNR" : "A" + std::to_string(i));
  }

  // Raw sizes: enterprise columns span ~3 orders of magnitude.
  double filtered_bytes = 0.0;
  double unfiltered_bytes = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double bytes = LogUniform(rng, 64.0 * 1024, 16.0 * 1024 * 1024);
    workload.column_sizes[i] = bytes;
    if (i < filtered) {
      filtered_bytes += bytes;
    } else {
      unfiltered_bytes += bytes;
    }
  }
  // Rescale so never-filtered attributes hold `unfiltered_byte_share` of the
  // table and the dominant column holds `dominant_column_share`.
  const double total_target = filtered_bytes + unfiltered_bytes;
  const double unfiltered_target =
      profile.unfiltered_byte_share * total_target;
  const double scale_unfiltered = unfiltered_target / unfiltered_bytes;
  for (size_t i = filtered; i < n; ++i) {
    workload.column_sizes[i] *= scale_unfiltered;
  }
  const double dominant_target = profile.dominant_column_share * total_target;
  const double filtered_target = total_target - unfiltered_target;
  const double rest_target = filtered_target - dominant_target;
  HYTAP_ASSERT(rest_target > 0.0, "profile byte shares are inconsistent");
  // Hot filter columns are small status/code attributes (they must fit tight
  // budgets next to the dominant column — this produces the paper's "< 25 %
  // slowdown up to 95 % eviction" plateau in Fig. 3); the cold filtered
  // columns carry the remaining filtered bytes.
  const double hot_target = 0.05 * rest_target;
  const double cold_target = rest_target - hot_target;
  double hot_bytes = 0.0, cold_bytes = 0.0;
  for (size_t i = 1; i < filtered; ++i) {
    (i < hot ? hot_bytes : cold_bytes) += workload.column_sizes[i];
  }
  for (size_t i = 1; i < filtered; ++i) {
    workload.column_sizes[i] *=
        i < hot ? hot_target / hot_bytes : cold_target / cold_bytes;
  }
  workload.column_sizes[0] = dominant_target;

  // Selectivities: the document number is near-unique; hot filter columns
  // are restrictive; cold filter columns are mid-cardinality; never-filtered
  // columns keep a neutral 0.5 (they do not enter any cost term).
  workload.selectivities[0] = 1e-6;
  for (size_t i = 1; i < filtered; ++i) {
    workload.selectivities[i] = i < hot ? LogUniform(rng, 1e-5, 1e-2)
                                        : LogUniform(rng, 1e-3, 0.3);
  }
  for (size_t i = filtered; i < n; ++i) workload.selectivities[i] = 0.5;

  // Query templates: frequencies follow a 1/rank (zipf) distribution. The
  // top templates filter hot columns (usually together with the dominant
  // document number); the long tail touches the cold filtered columns so
  // every filtered column appears at least once.
  workload.queries.reserve(profile.template_count);
  std::vector<double> frequencies(profile.template_count);
  double freq_sum = 0.0;
  for (size_t j = 0; j < profile.template_count; ++j) {
    // Steeper-than-harmonic decay: cold tail templates must fall below 1 %
    // of the execution volume so that exactly the hot attribute set clears
    // Table I's ">= 1 % of queries" bar.
    frequencies[j] = std::pow(double(j + 1), -1.6);
    freq_sum += frequencies[j];
  }
  // Normalize to 1000 executions per day (paper §III-D normalizes b_j on a
  // daily basis).
  for (double& f : frequencies) f = f * 1000.0 / freq_sum;

  size_t next_cold = hot;  // next cold filtered column to introduce
  for (size_t j = 0; j < profile.template_count; ++j) {
    QueryTemplate tmpl;
    tmpl.frequency = frequencies[j];
    std::vector<uint32_t> columns;
    const bool is_hot_template =
        j < profile.template_count / 3 || next_cold >= filtered;
    if (is_hot_template) {
      // Hot templates combine the document number with 1-3 hot columns.
      if (rng.NextBool(0.7)) columns.push_back(0);
      const size_t arity = 1 + rng.NextBounded(3);
      for (size_t k = 0; k < arity; ++k) {
        columns.push_back(
            static_cast<uint32_t>(1 + rng.NextBounded(hot > 1 ? hot - 1 : 1)));
      }
    } else {
      // Tail templates: introduce cold filtered columns (low frequency),
      // usually combined with one restrictive hot column (paper §I-A:
      // "usually filtered in combination with other highly restrictive
      // attributes").
      columns.push_back(static_cast<uint32_t>(next_cold++));
      if (next_cold < filtered && rng.NextBool(0.5)) {
        columns.push_back(static_cast<uint32_t>(next_cold++));
      }
      if (rng.NextBool(0.94)) {
        // Cold attributes are "usually filtered in combination with other
        // highly restrictive attributes" (§I-A) — which keeps their
        // discounted access mass, and thus their eviction penalty, small.
        columns.push_back(static_cast<uint32_t>(
            1 + rng.NextBounded(hot > 1 ? hot - 1 : 1)));
      }
    }
    std::sort(columns.begin(), columns.end());
    columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
    tmpl.columns = std::move(columns);
    workload.queries.push_back(std::move(tmpl));
  }
  workload.Check();
  return workload;
}

WorkloadSkew AnalyzeSkew(const Workload& workload, double hot_share) {
  WorkloadSkew skew;
  const std::vector<double> g = workload.ColumnFrequencies();
  double total_freq = 0.0;
  for (const QueryTemplate& q : workload.queries) total_freq += q.frequency;
  double unfiltered_bytes = 0.0;
  for (size_t i = 0; i < workload.column_count(); ++i) {
    if (g[i] > 0.0) {
      ++skew.filtered_count;
      if (g[i] >= hot_share * total_freq) ++skew.hot_filtered_count;
    } else {
      unfiltered_bytes += workload.column_sizes[i];
    }
  }
  skew.unfiltered_byte_share = unfiltered_bytes / workload.TotalBytes();
  return skew;
}

Schema MakeEnterpriseSchema(const EnterpriseProfile& profile) {
  Schema schema;
  schema.reserve(profile.attribute_count);
  for (size_t i = 0; i < profile.attribute_count; ++i) {
    ColumnDefinition def;
    def.name = profile.table_name + "_A" + std::to_string(i);
    def.type = DataType::kInt32;
    schema.push_back(def);
  }
  return schema;
}

std::vector<Row> GenerateEnterpriseRows(const EnterpriseProfile& profile,
                                        size_t row_count, uint64_t seed) {
  Rng rng(seed);
  const size_t n = profile.attribute_count;
  // Distinct counts: a few document-number-like columns are near-unique; the
  // bulk are low-cardinality codes/flags (enterprise data, paper §IV).
  std::vector<int32_t> cardinalities(n);
  for (size_t i = 0; i < n; ++i) {
    if (i == 0) {
      cardinalities[i] = static_cast<int32_t>(
          std::max<size_t>(1, row_count));  // document number
    } else if (i % 29 == 1) {
      cardinalities[i] =
          static_cast<int32_t>(std::max<size_t>(2, row_count / 10));
    } else {
      cardinalities[i] = static_cast<int32_t>(2 + rng.NextBounded(200));
    }
  }
  std::vector<Row> rows;
  rows.reserve(row_count);
  for (size_t r = 0; r < row_count; ++r) {
    Row row;
    row.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (i == 0) {
        row.emplace_back(static_cast<int32_t>(r));  // unique document number
      } else {
        row.emplace_back(static_cast<int32_t>(
            rng.NextBounded(static_cast<uint64_t>(cardinalities[i]))));
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace hytap

#ifndef HYTAP_WORKLOAD_WORKLOAD_MONITOR_H_
#define HYTAP_WORKLOAD_WORKLOAD_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "workload/workload.h"

namespace hytap {

class Table;

/// Workload-drift telemetry (DESIGN.md §12).
///
/// The executor feeds one QueryObservation per executed query — built on the
/// same serial control path as trace spans — into a ring buffer of
/// fixed-width windows over the *simulated* clock. Each window tracks the
/// per-column access frequency g_i, the *observed* (not estimated)
/// selectivity per column, the scan-vs-probe mix, and per-template counts,
/// so the selection model can be re-evaluated against what the engine
/// actually ran instead of what the plan cache accumulated since forever.
///
/// The monitor is a pure observer: it reads finished results and IoStats,
/// never feeds back into execution, so results, IO counters, and fault
/// schedules are bit-identical with the knob on or off
/// (`workload_monitor_test` asserts this at 1/2/4 threads under seeded
/// faults). The master switch is `HYTAP_WORKLOAD_MONITOR` ("off"/"0"/
/// "false" disable; default on); while disabled, Record() is never reached —
/// the executor skips observation building behind one relaxed load.

namespace workload_monitor_internal {
extern std::atomic<bool> g_enabled;
}  // namespace workload_monitor_internal

/// Master switch, initialized from HYTAP_WORKLOAD_MONITOR (default on).
inline bool WorkloadMonitorEnabled() {
  return workload_monitor_internal::g_enabled.load(std::memory_order_relaxed);
}

/// Runtime override used by tests, benchmarks, and the doctor CLI.
void SetWorkloadMonitorEnabled(bool enabled);

/// Which access path one executed predicate step took (paper §II-B).
enum class StepKind : uint8_t { kIndex, kScan, kProbe, kRescan };

/// One executed predicate step, observed on the serial control path.
struct StepObservation {
  ColumnId column = 0;
  StepKind kind = StepKind::kScan;
  uint64_t candidates_in = 0;
  uint64_t candidates_out = 0;
  double estimated_selectivity = 0.0;
  /// candidates_out / candidates_in — the measured (conditional)
  /// selectivity, which under the model's independence assumption samples
  /// the marginal s_i.
  double observed_selectivity = 0.0;
  /// IoStats deltas accrued during this step (exclusive).
  uint64_t device_ns = 0;
  uint64_t dram_ns = 0;
  uint64_t page_reads = 0;
  uint64_t cache_hits = 0;
  /// Modeled DRAM bytes streamed by this step (MRC scans only; scaled by
  /// the surviving zone-map fraction). Secondary bytes are page_reads *
  /// kPageSize and need no per-step tracking.
  uint64_t mm_bytes = 0;
};

/// Everything the monitor and the cost calibrator need to know about one
/// executed query. Built by QueryExecutor::Execute when a monitor is
/// attached and the knob is on; reads only deterministic engine state.
struct QueryObservation {
  /// Sorted, deduplicated filtered-column set — the plan-cache template key.
  std::vector<ColumnId> filtered_columns;
  std::vector<StepObservation> steps;
  /// Query totals (QueryResult::io).
  uint64_t simulated_ns = 0;
  uint64_t device_ns = 0;
  uint64_t dram_ns = 0;
  uint64_t page_reads = 0;
  uint64_t cache_hits = 0;
  /// Modeled DRAM bytes of the MRC scan steps and the dram_ns they accrued
  /// (the bandwidth-shaped share of the query; probes and materialization
  /// charge per-touch costs that the scan-cost model does not cover).
  uint64_t mm_bytes = 0;
  uint64_t mm_scan_ns = 0;
  uint64_t result_rows = 0;
  uint64_t table_rows = 0;
  bool failed = false;
};

/// Consumers of per-query observations beyond the monitor itself (the cost
/// calibrator). Forwarded under the monitor's serialization.
class QueryObservationSink {
 public:
  virtual ~QueryObservationSink() = default;
  virtual void Observe(const QueryObservation& observation) = 0;
};

/// Point-in-time copy of one workload window (also the serialization unit of
/// io/workload_io.h's SerializeWorkloadWindows).
struct WorkloadWindowSnapshot {
  /// Monotonic window number since the monitor was created/reset.
  uint64_t index = 0;
  /// Simulated-clock start of the window (index * window_ns).
  uint64_t start_ns = 0;
  uint64_t queries = 0;
  uint64_t failures = 0;
  uint64_t index_steps = 0;
  uint64_t scan_steps = 0;
  uint64_t probe_steps = 0;
  uint64_t rescan_steps = 0;
  /// Total simulated ns of the queries recorded in this window.
  uint64_t simulated_ns = 0;
  /// Per-column weighted occurrence count g_i.
  std::vector<double> column_frequency;
  /// Per-column observed-selectivity accumulators (sum / sample count).
  std::vector<double> selectivity_sum;
  std::vector<uint64_t> selectivity_samples;
  /// Per-template execution counts (key = sorted filtered-column set).
  std::map<std::vector<ColumnId>, uint64_t> templates;

  /// Normalized column-frequency vector (sums to 1; empty share when the
  /// window saw no filtered column).
  std::vector<double> NormalizedFrequencies() const;
};

/// A serializable slice of the monitor's ring (see workload_io.h).
struct WorkloadWindowSeries {
  uint64_t window_ns = 0;
  size_t column_count = 0;
  std::vector<WorkloadWindowSnapshot> windows;  // oldest first
};

/// Total-variation distance between the normalized column-frequency vectors
/// of two windows, in [0, 1]. 0 = identical mix, 1 = disjoint column sets.
double WindowDistance(const WorkloadWindowSnapshot& a,
                      const WorkloadWindowSnapshot& b);

/// Aggregates the newest `recent` windows (0 = all) of a series into a
/// selection-model workload. Per-template counts sum across windows;
/// per-column selectivities are the sample means of the observed
/// selectivities, falling back to `fallback_selectivities` for columns
/// without samples. `column_sizes`/`names` come from the table (a_i).
Workload WindowsToWorkload(const WorkloadWindowSeries& series,
                           const std::vector<double>& column_sizes,
                           const std::vector<double>& fallback_selectivities,
                           const std::vector<std::string>& column_names,
                           size_t recent = 0);

/// Windowed workload time series over the simulated clock.
///
/// Thread-safe (internally serialized); in the engine it is only reached
/// from the executor's serial control path, so the ring content is
/// deterministic for a fixed query sequence and knob configuration.
class WorkloadMonitor {
 public:
  struct Options {
    /// Ring capacity in windows (HYTAP_WORKLOAD_WINDOWS, default 16, min 2).
    size_t windows = 16;
    /// Window width on the simulated clock (HYTAP_WINDOW_NS, default 1 s).
    uint64_t window_ns = 1'000'000'000;

    static Options FromEnv();
  };

  explicit WorkloadMonitor(size_t column_count,
                           Options options = Options::FromEnv());

  WorkloadMonitor(const WorkloadMonitor&) = delete;
  WorkloadMonitor& operator=(const WorkloadMonitor&) = delete;

  /// Records one executed query: advances the simulated clock by the
  /// query's simulated cost, rolling windows as boundaries are crossed, and
  /// forwards the observation to the attached sink (calibrator).
  void Record(const QueryObservation& observation);

  /// Forces the current window closed (epoch-style use: the doctor CLI
  /// rolls at a workload-phase boundary so each phase diagnoses cleanly).
  void ForceRoll();

  /// Optional downstream consumer (not owned); pass null to detach.
  void set_sink(QueryObservationSink* sink);

  const Options& options() const { return options_; }
  size_t column_count() const { return column_count_; }

  /// Simulated time accrued by all recorded queries.
  uint64_t now_ns() const;
  /// Live windows in the ring (<= options().windows).
  size_t window_count() const;
  /// Total windows ever started (1 after construction).
  uint64_t windows_started() const;
  uint64_t queries_observed() const;

  /// Monotonically increasing count of Record() calls. Callers pair it
  /// around an Execute() to tell whether *that* query produced the
  /// observation now readable via last_observation().
  uint64_t observation_sequence() const;
  /// The most recent observation (valid once observation_sequence() > 0).
  QueryObservation last_observation() const;

  /// Snapshot of live window `i` (0 = oldest, window_count()-1 = current).
  WorkloadWindowSnapshot Snapshot(size_t i) const;
  /// All live windows, oldest first, with the ring's geometry.
  WorkloadWindowSeries Export() const;

  /// Window-over-window drift: the WindowDistance between the two newest
  /// windows that saw at least one query (0 when fewer than two exist).
  double Drift() const;

  /// Aggregates the newest `recent` live windows (0 = all) into a workload,
  /// taking column sizes/names and fallback selectivities from `table`.
  Workload ToWorkload(const Table& table, size_t recent = 0) const;

  /// Drops all windows and restarts the simulated clock at zero.
  void Reset();

 private:
  /// Rolls windows until the current one covers `now_ns_` (caller holds
  /// the mutex).
  void RollLocked();

  const size_t column_count_;
  const Options options_;

  mutable std::mutex mutex_;
  std::deque<WorkloadWindowSnapshot> ring_;  // oldest first
  uint64_t now_ns_ = 0;
  uint64_t windows_started_ = 1;
  uint64_t queries_observed_ = 0;
  uint64_t observation_sequence_ = 0;
  QueryObservation last_observation_;
  QueryObservationSink* sink_ = nullptr;
};

}  // namespace hytap

#endif  // HYTAP_WORKLOAD_WORKLOAD_MONITOR_H_

#ifndef HYTAP_WORKLOAD_ENTERPRISE_H_
#define HYTAP_WORKLOAD_ENTERPRISE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"
#include "workload/workload.h"

namespace hytap {

/// Published filter-skew statistics of the five largest tables of the
/// financial module of a production SAP ERP system (paper Table I).
struct EnterpriseProfile {
  std::string table_name;
  size_t attribute_count;     // total attributes
  size_t filtered_count;      // attributes filtered at least once
  size_t hot_filtered_count;  // filtered in >= 1 % of query executions
  size_t template_count;      // distinct plan-cache templates (~60 for BSEG)
  /// Share of table bytes held by never-filtered attributes (the paper's
  /// BSEG analysis reports ~78 % "free" eviction, §III-B).
  double unfiltered_byte_share;
  /// Size of the dominant filtered column ("BELNR") as a share of the table
  /// (its eviction causes the performance cliff beyond ~95 %, Fig. 3).
  double dominant_column_share;
};

/// The five production tables of Table I (BSEG, ACDOCA, VBAP, BKPF, COEP).
std::vector<EnterpriseProfile> SapErpProfiles();

/// The BSEG profile (the paper's running example).
EnterpriseProfile BsegProfile();

/// Generates a selection-model workload matching `profile`: attribute sizes,
/// selectivities, and skewed query templates that reproduce the published
/// aggregate statistics (filtered counts, hot counts, byte shares).
Workload GenerateEnterpriseWorkload(const EnterpriseProfile& profile,
                                    uint64_t seed);

/// Statistics of a generated workload, for validating Table I.
struct WorkloadSkew {
  size_t filtered_count = 0;
  size_t hot_filtered_count = 0;  // filtered in >= `hot_share` of executions
  double unfiltered_byte_share = 0.0;
};
WorkloadSkew AnalyzeSkew(const Workload& workload, double hot_share = 0.01);

/// Schema and data for engine-level BSEG experiments (Fig. 8): a wide table
/// with `attribute_count` integer attributes whose distinct counts mirror
/// enterprise data (many low-cardinality status/flag columns, a few
/// document-number-like high-cardinality columns).
Schema MakeEnterpriseSchema(const EnterpriseProfile& profile);
std::vector<Row> GenerateEnterpriseRows(const EnterpriseProfile& profile,
                                        size_t row_count, uint64_t seed);

}  // namespace hytap

#endif  // HYTAP_WORKLOAD_ENTERPRISE_H_

#ifndef HYTAP_SOLVER_BRANCH_AND_BOUND_H_
#define HYTAP_SOLVER_BRANCH_AND_BOUND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

namespace hytap {

/// An item of the 0/1 knapsack: strictly positive profit and weight.
struct KnapsackItem {
  double profit;
  double weight;
};

struct KnapsackSolution {
  std::vector<uint8_t> take;  // per input item
  double profit = 0.0;
  double weight = 0.0;
  uint64_t nodes = 0;     // explored branch-and-bound nodes (both phases)
  uint64_t pruned = 0;    // subtrees cut by the Dantzig bound (+ infeasible
                          // subproblem prefixes)
  double lp_bound = 0.0;  // root fractional-relaxation (LP) profit bound
  /// Relative optimality gap vs the LP bound:
  /// (lp_bound - profit) / lp_bound, clamped >= 0. For a completed search
  /// this is the LP integrality gap, not a suboptimality claim.
  double gap = 0.0;
  bool optimal = true;    // false if the node budget was exhausted/cancelled
  bool cancelled = false; // the external cancel token fired mid-search
};

/// Knobs of the parallel anytime search.
struct KnapsackOptions {
  /// Total node budget across all workers; exhausted => incumbent returned
  /// with optimal = false.
  uint64_t max_nodes = 200'000'000;
  /// Concurrent node-expansion workers on the shared ThreadPool (the caller
  /// participates). 1 = serial. The final answer is identical for every
  /// worker count (see the .cc determinism note).
  uint32_t workers = 1;
  /// External cancellation (anytime use): polled every node batch; when it
  /// fires the best incumbent so far is returned with cancelled = true.
  const std::atomic<bool>* cancel = nullptr;
  /// Invoked (serialized under an internal mutex) whenever the shared
  /// incumbent improves; `take` is in input-item order. Used by the solver
  /// portfolio to publish anytime snapshots.
  std::function<void(double profit, double weight,
                     const std::vector<uint8_t>& take)>
      on_improve;
};

/// Exact 0/1 knapsack via branch-and-bound with the Dantzig
/// (fractional-relaxation) upper bound, evaluated in O(log N) per node from
/// prefix sums over the density order.
///
/// The paper solves the column selection ILP (2)-(3) with MOSEK; because the
/// scan-cost objective is separable once the per-query predicate order is
/// fixed by selectivity, the ILP is exactly a 0/1 knapsack, and this solver
/// plays the "standard integer solver" role (Table II).
///
/// Parallel node expansion: the first kSplitDepth density-sorted items span a
/// static grid of subproblems claimed work-stealing style from the shared
/// ThreadPool; a shared atomic incumbent bound prunes across subproblems.
/// A completed search ends with a deterministic reconstruction pass, so the
/// returned take-vector is bit-identical regardless of worker count and
/// scheduling (DESIGN.md §13).
KnapsackSolution SolveKnapsack(const std::vector<KnapsackItem>& items,
                               double capacity, const KnapsackOptions& options);

/// Serial convenience overload (existing call sites).
KnapsackSolution SolveKnapsack(const std::vector<KnapsackItem>& items,
                               double capacity,
                               uint64_t max_nodes = 200'000'000);

}  // namespace hytap

#endif  // HYTAP_SOLVER_BRANCH_AND_BOUND_H_

#ifndef HYTAP_SOLVER_BRANCH_AND_BOUND_H_
#define HYTAP_SOLVER_BRANCH_AND_BOUND_H_

#include <cstdint>
#include <vector>

namespace hytap {

/// An item of the 0/1 knapsack: strictly positive profit and weight.
struct KnapsackItem {
  double profit;
  double weight;
};

struct KnapsackSolution {
  std::vector<uint8_t> take;  // per input item
  double profit = 0.0;
  double weight = 0.0;
  uint64_t nodes = 0;   // explored branch-and-bound nodes
  bool optimal = true;  // false if the node budget was exhausted
};

/// Exact 0/1 knapsack via depth-first branch-and-bound with the Dantzig
/// (fractional-relaxation) upper bound.
///
/// The paper solves the column selection ILP (2)-(3) with MOSEK; because the
/// scan-cost objective is separable once the per-query predicate order is
/// fixed by selectivity, the ILP is exactly a 0/1 knapsack, and this solver
/// plays the "standard integer solver" role (Table II). `max_nodes` bounds
/// the search; if exhausted the incumbent is returned with optimal = false.
KnapsackSolution SolveKnapsack(const std::vector<KnapsackItem>& items,
                               double capacity,
                               uint64_t max_nodes = 200'000'000);

}  // namespace hytap

#endif  // HYTAP_SOLVER_BRANCH_AND_BOUND_H_

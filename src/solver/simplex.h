#ifndef HYTAP_SOLVER_SIMPLEX_H_
#define HYTAP_SOLVER_SIMPLEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hytap {

/// A linear program in inequality form:
///   minimize    c^T x
///   subject to  A x <= b,   x >= 0
/// with b >= 0 (so the slack basis is feasible). This covers the paper's
/// continuous problems (4)-(5): variable upper bounds x_i <= 1 are expressed
/// as explicit constraint rows.
struct LpProblem {
  std::vector<double> objective;                 // c
  std::vector<std::vector<double>> constraints;  // A (row major)
  std::vector<double> rhs;                       // b, all >= 0
};

struct LpSolution {
  bool feasible = false;
  bool bounded = true;
  std::vector<double> x;
  double objective = 0.0;
  size_t iterations = 0;
};

/// Dense primal simplex (standard tableau) with Dantzig pricing and Bland's
/// rule as anti-cycling fallback. Stand-in for the paper's commercial solver
/// (MOSEK) on the continuous models; adequate for the N <= a few hundred
/// instances where the LP path is exercised (large instances use the
/// explicit solution, §III-F).
LpSolution SolveLp(const LpProblem& problem, size_t max_iterations = 100000);

}  // namespace hytap

#endif  // HYTAP_SOLVER_SIMPLEX_H_

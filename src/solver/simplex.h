#ifndef HYTAP_SOLVER_SIMPLEX_H_
#define HYTAP_SOLVER_SIMPLEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hytap {

/// A linear program in inequality form:
///   minimize    c^T x
///   subject to  A x <= b,   x >= 0
/// with b >= 0 (so the slack basis is feasible). This covers the paper's
/// continuous problems (4)-(5): variable upper bounds x_i <= 1 are expressed
/// as explicit constraint rows.
struct LpProblem {
  std::vector<double> objective;                 // c
  std::vector<std::vector<double>> constraints;  // A (row major)
  std::vector<double> rhs;                       // b, all >= 0
};

enum class LpStatus : uint8_t {
  kOptimal,
  kUnbounded,
  /// Pivoting stopped at the iteration cap; `x`/`objective` are unset and
  /// the bound must not be trusted. Callers distinguish this from genuine
  /// infeasibility (which this slack-basis form cannot produce).
  kIterationLimit,
};

struct LpSolution {
  bool feasible = false;
  bool bounded = true;
  LpStatus status = LpStatus::kIterationLimit;
  std::vector<double> x;
  double objective = 0.0;
  size_t iterations = 0;
};

/// Dense primal simplex (standard tableau) with Dantzig pricing and Bland's
/// rule as anti-cycling fallback. Stand-in for the paper's commercial solver
/// (MOSEK) on the continuous models; adequate for the N <= a few hundred
/// instances where the LP path is exercised (large instances use the
/// explicit solution, §III-F).
///
/// `max_iterations = 0` (the default) picks a cap that scales with problem
/// size — max(100000, 50 * (n + m)) pivots — instead of the former
/// hard-coded 100000, which silently degraded bounds on large instances.
/// Hitting the cap is reported as LpStatus::kIterationLimit.
LpSolution SolveLp(const LpProblem& problem, size_t max_iterations = 0);

}  // namespace hytap

#endif  // HYTAP_SOLVER_SIMPLEX_H_

#include "solver/portfolio.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "common/assert.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "solver/branch_and_bound.h"

namespace hytap {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

/// hytap_solver_* instrumentation (DESIGN.md §11 registry; resolved once).
struct SolverMetrics {
  Counter* runs;
  Counter* nodes;
  Counter* pruned;
  Counter* incumbent_updates;
  Counter* wins_exact;
  Counter* wins_explicit;
  Counter* wins_greedy;
  Counter* deadline_stops;
  Gauge* last_gap_ppm;
  Gauge* last_budget_ms;
  HistogramMetric* wall_ns;

  static const SolverMetrics& Get() {
    static const SolverMetrics metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      SolverMetrics m;
      m.runs = r.GetCounter("hytap_solver_runs_total");
      m.nodes = r.GetCounter("hytap_solver_nodes_total");
      m.pruned = r.GetCounter("hytap_solver_pruned_total");
      m.incumbent_updates =
          r.GetCounter("hytap_solver_incumbent_updates_total");
      m.wins_exact = r.GetCounter("hytap_solver_wins_exact_total");
      m.wins_explicit = r.GetCounter("hytap_solver_wins_explicit_total");
      m.wins_greedy = r.GetCounter("hytap_solver_wins_greedy_total");
      m.deadline_stops = r.GetCounter("hytap_solver_deadline_stops_total");
      m.last_gap_ppm = r.GetGauge("hytap_solver_last_gap_ppm");
      m.last_budget_ms = r.GetGauge("hytap_solver_last_budget_ms");
      m.wall_ns = r.GetHistogram("hytap_solver_wall_ns", DurationNsBuckets());
      return m;
    }();
    return metrics;
  }
};

/// Items sorted by profit density descending (= theta ascending for the
/// selection problem), ties by item index: the performance order o_i that
/// both heuristics walk.
std::vector<size_t> DensityOrder(const std::vector<KnapsackItem>& items) {
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double da = items[a].profit * items[b].weight;
    const double db = items[b].profit * items[a].weight;
    if (da != db) return da > db;
    return a < b;
  });
  return order;
}

class ExactBnbSolver final : public PlacementSolver {
 public:
  ExactBnbSolver(const KnapsackView* view, uint32_t workers,
                 uint64_t max_nodes)
      : PlacementSolver("exact", view),
        workers_(workers),
        max_nodes_(max_nodes) {}

  uint64_t nodes() const override {
    return nodes_.load(std::memory_order_relaxed);
  }
  uint64_t pruned() const override {
    return pruned_.load(std::memory_order_relaxed);
  }

 protected:
  void Solve() override {
    KnapsackOptions options;
    options.max_nodes = max_nodes_;
    options.workers = workers_;
    options.cancel = &stop_;
    options.on_improve = [this](double profit, double /*weight*/,
                                const std::vector<uint8_t>& take) {
      Publish(take, profit);
    };
    const KnapsackSolution solution =
        SolveKnapsack(view().items, view().capacity, options);
    nodes_.store(solution.nodes, std::memory_order_relaxed);
    pruned_.store(solution.pruned, std::memory_order_relaxed);
    if (solution.optimal) {
      // The completed search ends with the deterministic reconstruction;
      // install it even at equal profit so the final answer is
      // schedule-independent.
      PublishFinal(solution.take, solution.profit);
      MarkOptimal();
    }
  }

 private:
  const uint32_t workers_;
  const uint64_t max_nodes_;
  std::atomic<uint64_t> nodes_{0};
  std::atomic<uint64_t> pruned_{0};
};

class ExplicitSolver final : public PlacementSolver {
 public:
  explicit ExplicitSolver(const KnapsackView* view)
      : PlacementSolver("explicit", view) {}

 protected:
  void Solve() override {
    // Theorem 2: the strict prefix of the performance order that fits the
    // budget (no filling — that is the greedy solver's variant).
    const std::vector<size_t> order = DensityOrder(view().items);
    std::vector<uint8_t> take(view().items.size(), 0);
    double used = 0.0;
    double profit = 0.0;
    size_t placed = 0;
    for (size_t k : order) {
      if ((++placed & 0xFFFF) == 0 && StopRequested()) {
        Publish(take, profit);
        return;
      }
      const KnapsackItem& item = view().items[k];
      if (used + item.weight > view().capacity + 1e-9 * view().capacity) {
        break;
      }
      take[k] = 1;
      used += item.weight;
      profit += item.profit;
    }
    Publish(take, profit);
  }
};

class GreedySolver final : public PlacementSolver {
 public:
  explicit GreedySolver(const KnapsackView* view)
      : PlacementSolver("greedy", view) {}

 protected:
  void Solve() override {
    // Publish the feasible baseline first: even an immediately cancelled
    // portfolio run holds a valid incumbent.
    std::vector<uint8_t> take(view().items.size(), 0);
    Publish(take, 0.0);
    // Remark 2/3: performance order with fill-with-skip — items that do not
    // fit are skipped, later (smaller) items may still fit.
    const std::vector<size_t> order = DensityOrder(view().items);
    double used = 0.0;
    double profit = 0.0;
    size_t scanned = 0;
    for (size_t k : order) {
      if ((++scanned & 0xFFFF) == 0) {
        Publish(take, profit);
        if (StopRequested()) return;
      }
      const KnapsackItem& item = view().items[k];
      if (used + item.weight > view().capacity + 1e-9 * view().capacity) {
        continue;
      }
      take[k] = 1;
      used += item.weight;
      profit += item.profit;
    }
    Publish(take, profit);
  }
};

}  // namespace

PlacementSolver::PlacementSolver(std::string name, const KnapsackView* view)
    : name_(std::move(name)), view_(view) {
  HYTAP_ASSERT(view_ != nullptr, "solver needs a knapsack view");
}

PlacementSolver::~PlacementSolver() { StopSolving(); }

void PlacementSolver::StartSolving() {
  HYTAP_ASSERT(!thread_.joinable(), "solver already started");
  start_ = Clock::now();
  thread_ = std::thread([this] {
    Solve();
    finished_.store(true, std::memory_order_release);
  });
}

void PlacementSolver::StopSolving() {
  stop_.store(true, std::memory_order_relaxed);
  Join();
}

void PlacementSolver::Join() {
  if (thread_.joinable()) thread_.join();
}

SolverIncumbent PlacementSolver::GetIncumbent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return incumbent_;
}

std::vector<IncumbentEvent> PlacementSolver::TakeTimeline() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(timeline_);
}

void PlacementSolver::Publish(const std::vector<uint8_t>& take,
                              double profit) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (incumbent_.valid && profit <= incumbent_.profit) return;
  PublishLocked(take, profit);
}

void PlacementSolver::PublishFinal(const std::vector<uint8_t>& take,
                                   double profit) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (incumbent_.valid && profit < incumbent_.profit) return;
  PublishLocked(take, profit);
}

void PlacementSolver::PublishLocked(const std::vector<uint8_t>& take,
                                    double profit) {
  incumbent_.valid = true;
  incumbent_.take = take;
  incumbent_.profit = profit;
  incumbent_.objective = view_->base_objective - profit;
  incumbent_.elapsed_seconds = Seconds(start_);
  updates_.fetch_add(1, std::memory_order_relaxed);
  IncumbentEvent event;
  event.solver = name_;
  event.elapsed_seconds = incumbent_.elapsed_seconds;
  event.objective = incumbent_.objective;
  timeline_.push_back(std::move(event));
}

std::unique_ptr<PlacementSolver> MakeExactBnbSolver(const KnapsackView* view,
                                                    uint32_t workers,
                                                    uint64_t max_nodes) {
  return std::make_unique<ExactBnbSolver>(view, workers, max_nodes);
}

std::unique_ptr<PlacementSolver> MakeExplicitSolver(const KnapsackView* view) {
  return std::make_unique<ExplicitSolver>(view);
}

std::unique_ptr<PlacementSolver> MakeGreedySolver(const KnapsackView* view) {
  return std::make_unique<GreedySolver>(view);
}

PortfolioOptions PortfolioOptions::FromEnv() {
  PortfolioOptions options;
  if (const char* env = std::getenv("HYTAP_SOLVER_BUDGET_MS")) {
    options.budget_ms = std::strtod(env, nullptr);
  }
  if (const char* env = std::getenv("HYTAP_SOLVER_THREADS")) {
    options.workers = uint32_t(std::strtoul(env, nullptr, 10));
  }
  return options;
}

SolverPortfolio::SolverPortfolio(PortfolioOptions options)
    : options_(options) {}

PortfolioResult SolverPortfolio::Solve(const SelectionProblem& problem) {
  const auto start = Clock::now();
  CostModel model(*problem.workload, problem.params);
  const KnapsackView view = BuildKnapsackView(problem, model);
  const double model_seconds = Seconds(start);

  const uint32_t workers =
      options_.workers != 0
          ? options_.workers
          : uint32_t(ThreadPool::DefaultWorkerCount());

  std::vector<std::unique_ptr<PlacementSolver>> solvers;
  if (options_.run_exact) {
    solvers.push_back(
        MakeExactBnbSolver(&view, workers, options_.max_nodes));
  }
  if (options_.run_explicit) solvers.push_back(MakeExplicitSolver(&view));
  if (options_.run_greedy) solvers.push_back(MakeGreedySolver(&view));
  HYTAP_ASSERT(!solvers.empty(), "portfolio needs at least one solver");

  for (auto& solver : solvers) solver->StartSolving();

  PortfolioResult result;
  if (options_.budget_ms > 0.0) {
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        options_.budget_ms));
    for (;;) {
      const bool all_finished =
          std::all_of(solvers.begin(), solvers.end(),
                      [](const auto& s) { return s->Finished(); });
      if (all_finished) break;
      if (Clock::now() >= deadline) {
        result.deadline_hit = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (auto& solver : solvers) solver->StopSolving();
  } else {
    for (auto& solver : solvers) solver->Join();
  }

  // Winner: lowest objective; ties (within 1e-12 relative) resolve by the
  // construction order exact > explicit > greedy, which keeps an unlimited
  // budget bit-identical to SelectIntegerOptimal.
  std::vector<SolverIncumbent> incumbents;
  incumbents.reserve(solvers.size());
  for (auto& solver : solvers) incumbents.push_back(solver->GetIncumbent());
  double best_objective = std::numeric_limits<double>::infinity();
  for (const SolverIncumbent& inc : incumbents) {
    if (inc.valid) best_objective = std::min(best_objective, inc.objective);
  }
  size_t winner = solvers.size();
  const double tie_tol = 1e-12 * std::max(1.0, std::abs(best_objective));
  for (size_t s = 0; s < solvers.size(); ++s) {
    if (incumbents[s].valid &&
        incumbents[s].objective <= best_objective + tie_tol) {
      winner = s;
      break;
    }
  }
  HYTAP_ASSERT(winner < solvers.size(),
               "portfolio ended without any incumbent");

  result.winner = solvers[winner]->name();
  result.lp_bound = view.ObjectiveLowerBound();
  result.proved_optimal = solvers[winner]->ProvedOptimal();

  result.selection =
      FinishResult(problem, model, view.Expand(incumbents[winner].take));
  result.selection.model_seconds = model_seconds;
  result.selection.optimal = result.proved_optimal;
  result.selection.lp_bound = result.lp_bound;
  if (result.lp_bound != 0.0) {
    result.gap = std::max(0.0,
                          (result.selection.objective - result.lp_bound) /
                              std::abs(result.lp_bound));
  }
  result.selection.gap = result.gap;

  for (auto& solver : solvers) {
    result.nodes += solver->nodes();
    result.pruned += solver->pruned();
    result.incumbent_updates += solver->incumbent_updates();
    for (IncumbentEvent& event : solver->TakeTimeline()) {
      result.timeline.push_back(std::move(event));
    }
  }
  result.selection.solver_nodes = result.nodes;
  result.selection.solver_pruned = result.pruned;
  std::stable_sort(result.timeline.begin(), result.timeline.end(),
                   [](const IncumbentEvent& a, const IncumbentEvent& b) {
                     return a.elapsed_seconds < b.elapsed_seconds;
                   });
  // Portfolio-wide gap at each event: running best across solvers, so the
  // curve is monotonically non-increasing by construction.
  double running_best = std::numeric_limits<double>::infinity();
  const double bound_scale = std::max(1e-12, std::abs(result.lp_bound));
  for (IncumbentEvent& event : result.timeline) {
    running_best = std::min(running_best, event.objective);
    event.gap = std::max(0.0, (running_best - result.lp_bound) / bound_scale);
  }

  result.wall_seconds = Seconds(start);
  result.selection.solve_seconds = result.wall_seconds;

  if (MetricsEnabled()) {
    const SolverMetrics& metrics = SolverMetrics::Get();
    metrics.runs->Add(1);
    metrics.nodes->Add(result.nodes);
    metrics.pruned->Add(result.pruned);
    metrics.incumbent_updates->Add(result.incumbent_updates);
    if (result.winner == "exact") {
      metrics.wins_exact->Add(1);
    } else if (result.winner == "explicit") {
      metrics.wins_explicit->Add(1);
    } else {
      metrics.wins_greedy->Add(1);
    }
    if (result.deadline_hit) metrics.deadline_stops->Add(1);
    metrics.last_gap_ppm->Set(int64_t(result.gap * 1e6));
    metrics.last_budget_ms->Set(int64_t(options_.budget_ms));
    metrics.wall_ns->Observe(uint64_t(result.wall_seconds * 1e9));
  }
  return result;
}

}  // namespace hytap

#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"

namespace hytap {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

LpSolution SolveLp(const LpProblem& problem, size_t max_iterations) {
  const size_t n = problem.objective.size();
  const size_t m = problem.constraints.size();
  HYTAP_ASSERT(problem.rhs.size() == m, "rhs arity mismatch");
  for (double b : problem.rhs) {
    HYTAP_ASSERT(b >= -kEps, "SolveLp requires b >= 0");
  }
  for (const auto& row : problem.constraints) {
    HYTAP_ASSERT(row.size() == n, "constraint arity mismatch");
  }
  if (max_iterations == 0) {
    max_iterations = std::max<size_t>(100000, 50 * (n + m));
  }

  // Tableau: m rows x (n + m + 1) columns; slack basis is feasible.
  std::vector<std::vector<double>> t(m + 1,
                                     std::vector<double>(n + m + 1, 0.0));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) t[i][j] = problem.constraints[i][j];
    t[i][n + i] = 1.0;
    t[i][n + m] = problem.rhs[i];
  }
  // Objective row: minimize c^T x -> reduced costs start at c.
  for (size_t j = 0; j < n; ++j) t[m][j] = problem.objective[j];

  std::vector<size_t> basis(m);
  for (size_t i = 0; i < m; ++i) basis[i] = n + i;

  LpSolution solution;
  size_t degenerate_steps = 0;
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    // Pricing: most negative reduced cost (Dantzig); Bland under degeneracy.
    size_t pivot_col = n + m;
    if (degenerate_steps < 20) {
      double best = -kEps;
      for (size_t j = 0; j < n + m; ++j) {
        if (t[m][j] < best) {
          best = t[m][j];
          pivot_col = j;
        }
      }
    } else {
      for (size_t j = 0; j < n + m; ++j) {
        if (t[m][j] < -kEps) {
          pivot_col = j;
          break;
        }
      }
    }
    if (pivot_col == n + m) {  // optimal
      solution.feasible = true;
      solution.status = LpStatus::kOptimal;
      solution.iterations = iter;
      break;
    }
    // Ratio test (Bland tie-break on basis index for anti-cycling).
    size_t pivot_row = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < m; ++i) {
      if (t[i][pivot_col] > kEps) {
        const double ratio = t[i][n + m] / t[i][pivot_col];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (pivot_row == m || basis[i] < basis[pivot_row]))) {
          best_ratio = ratio;
          pivot_row = i;
        }
      }
    }
    if (pivot_row == m) {  // unbounded
      solution.feasible = true;
      solution.bounded = false;
      solution.status = LpStatus::kUnbounded;
      solution.iterations = iter;
      return solution;
    }
    if (best_ratio < kEps) {
      ++degenerate_steps;
    } else {
      degenerate_steps = 0;
    }
    // Pivot.
    const double pivot = t[pivot_row][pivot_col];
    for (double& v : t[pivot_row]) v /= pivot;
    for (size_t i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      const double factor = t[i][pivot_col];
      if (std::abs(factor) < kEps) continue;
      for (size_t j = 0; j <= n + m; ++j) {
        t[i][j] -= factor * t[pivot_row][j];
      }
    }
    basis[pivot_row] = pivot_col;
  }

  if (!solution.feasible) {
    solution.status = LpStatus::kIterationLimit;
    solution.iterations = max_iterations;
    return solution;
  }

  solution.x.assign(n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] < n) solution.x[basis[i]] = t[i][n + m];
  }
  double obj = 0.0;
  for (size_t j = 0; j < n; ++j) obj += problem.objective[j] * solution.x[j];
  solution.objective = obj;
  return solution;
}

}  // namespace hytap

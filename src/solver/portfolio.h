#ifndef HYTAP_SOLVER_PORTFOLIO_H_
#define HYTAP_SOLVER_PORTFOLIO_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "selection/selectors.h"

namespace hytap {

/// A solver's best placement so far, snapshotted at any time mid-solve.
struct SolverIncumbent {
  bool valid = false;
  std::vector<uint8_t> take;     // over the KnapsackView items
  double profit = 0.0;           // knapsack profit of `take`
  double objective = 0.0;        // view.base_objective - profit
  double elapsed_seconds = 0.0;  // since StartSolving()
};

/// One point of a gap-vs-time curve: a solver published an improvement.
struct IncumbentEvent {
  std::string solver;
  double elapsed_seconds = 0.0;
  double objective = 0.0;  // the publishing solver's incumbent objective
  /// Relative gap of the *portfolio-wide* best incumbent at this instant vs
  /// the LP objective lower bound; monotonically non-increasing over the
  /// merged timeline by construction.
  double gap = 0.0;
};

/// Base class of the solvers raced by the portfolio — the start / stop /
/// incumbent-snapshot idiom: StartSolving() launches Solve() on a dedicated
/// control thread, StopSolving() requests cancellation and joins, and
/// GetIncumbent() returns the best placement found so far at any point in
/// between. Every published incumbent is a feasible placement, so stopping a
/// solver mid-search always leaves a valid (if suboptimal) answer.
///
/// Solvers price candidates through a shared KnapsackView, so objectives are
/// directly comparable across algorithms. The view must outlive the solver.
class PlacementSolver {
 public:
  PlacementSolver(std::string name, const KnapsackView* view);
  virtual ~PlacementSolver();

  PlacementSolver(const PlacementSolver&) = delete;
  PlacementSolver& operator=(const PlacementSolver&) = delete;

  const std::string& name() const { return name_; }
  void StartSolving();
  /// Requests cancellation and joins the control thread. Idempotent.
  void StopSolving();
  /// Joins without requesting cancellation (run-to-completion mode).
  void Join();
  bool Finished() const { return finished_.load(std::memory_order_acquire); }
  /// True when the solver completed and proved its incumbent optimal.
  bool ProvedOptimal() const {
    return proved_optimal_.load(std::memory_order_acquire);
  }
  SolverIncumbent GetIncumbent() const;
  std::vector<IncumbentEvent> TakeTimeline();
  uint64_t incumbent_updates() const {
    return updates_.load(std::memory_order_relaxed);
  }
  virtual uint64_t nodes() const { return 0; }
  virtual uint64_t pruned() const { return 0; }

 protected:
  /// Runs on the control thread; must poll StopRequested() and Publish()
  /// improvements as it goes.
  virtual void Solve() = 0;

  bool StopRequested() const {
    return stop_.load(std::memory_order_relaxed);
  }
  const KnapsackView& view() const { return *view_; }
  /// Installs `take` as the incumbent if its profit strictly improves.
  void Publish(const std::vector<uint8_t>& take, double profit);
  /// Installs `take` unconditionally when profit >= the incumbent's: used by
  /// the exact solver to replace a schedule-dependent phase-1 incumbent with
  /// the deterministic reconstruction of equal profit.
  void PublishFinal(const std::vector<uint8_t>& take, double profit);
  void MarkOptimal() {
    proved_optimal_.store(true, std::memory_order_release);
  }

  /// Cancellation token, shared with inner solvers (e.g. KnapsackOptions).
  std::atomic<bool> stop_{false};

 private:
  void PublishLocked(const std::vector<uint8_t>& take, double profit);

  const std::string name_;
  const KnapsackView* view_;
  std::thread thread_;
  std::atomic<bool> finished_{false};
  std::atomic<bool> proved_optimal_{false};
  std::atomic<uint64_t> updates_{0};
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mutex_;
  SolverIncumbent incumbent_;
  std::vector<IncumbentEvent> timeline_;
};

/// Exact parallel branch-and-bound (SolveKnapsack) with anytime incumbent
/// publication; `workers` node-expansion lanes on the shared ThreadPool.
std::unique_ptr<PlacementSolver> MakeExactBnbSolver(const KnapsackView* view,
                                                    uint32_t workers,
                                                    uint64_t max_nodes);
/// Explicit Schlosser solution (Theorem 2): strict prefix of the
/// performance order, O(K log K).
std::unique_ptr<PlacementSolver> MakeExplicitSolver(const KnapsackView* view);
/// Remark-2/3 greedy: density order with fill-with-skip; publishes the
/// empty baseline immediately, then periodic prefixes, so a cancelled run
/// always holds a valid incumbent.
std::unique_ptr<PlacementSolver> MakeGreedySolver(const KnapsackView* view);

struct PortfolioOptions {
  /// Wall-clock budget in milliseconds; <= 0 means unlimited (every solver
  /// runs to completion, so the result matches the exact selector).
  double budget_ms = 0.0;
  /// B&B node-expansion workers on the shared pool; 0 = pool default.
  uint32_t workers = 0;
  uint64_t max_nodes = 200'000'000;
  bool run_exact = true;
  bool run_explicit = true;
  bool run_greedy = true;

  /// Reads HYTAP_SOLVER_BUDGET_MS (unset or <= 0: unlimited) and
  /// HYTAP_SOLVER_THREADS (unset: pool default).
  static PortfolioOptions FromEnv();
};

struct PortfolioResult {
  /// The winner's placement with full cost bookkeeping (FinishResult).
  SelectionResult selection;
  std::string winner;
  double lp_bound = 0.0;  // LP lower bound on the objective
  double gap = 0.0;       // winner objective vs lp_bound, clamped >= 0
  bool deadline_hit = false;
  bool proved_optimal = false;
  double wall_seconds = 0.0;
  uint64_t nodes = 0;
  uint64_t pruned = 0;
  uint64_t incumbent_updates = 0;
  /// Merged gap-vs-time curve across all solvers, ordered by elapsed time.
  std::vector<IncumbentEvent> timeline;
};

/// Races the exact B&B, the explicit Schlosser solution, and the greedy
/// heuristic concurrently under the wall-clock budget and returns the best
/// incumbent across all of them, with the optimality gap against the LP
/// relaxation bound. With an unlimited budget the winner is the exact
/// solver's deterministic optimum, bit-identical to SelectIntegerOptimal.
/// Ties (within 1e-12 relative) resolve exact > explicit > greedy.
class SolverPortfolio {
 public:
  explicit SolverPortfolio(PortfolioOptions options);
  SolverPortfolio() : SolverPortfolio(PortfolioOptions::FromEnv()) {}

  PortfolioResult Solve(const SelectionProblem& problem);

  const PortfolioOptions& options() const { return options_; }

 private:
  PortfolioOptions options_;
};

}  // namespace hytap

#endif  // HYTAP_SOLVER_PORTFOLIO_H_

#include "solver/branch_and_bound.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"

namespace hytap {

namespace {

constexpr double kEps = 1e-12;

struct Searcher {
  const std::vector<KnapsackItem>& items;  // density-sorted
  double capacity;
  uint64_t max_nodes;
  /// Scale-aware weight tolerance: cumulative floating-point addition of
  /// large weights can differ by far more than an absolute epsilon, and a
  /// capacity derived from summing the very same items must stay feasible.
  double weight_tol;

  std::vector<uint8_t> current;
  std::vector<uint8_t> best;
  double best_profit = 0.0;
  double best_weight = 0.0;
  uint64_t nodes = 0;
  bool exhausted = false;

  /// Dantzig bound: greedy fractional fill from `level`.
  double Bound(size_t level, double weight, double profit) const {
    double remaining = capacity - weight;
    double bound = profit;
    for (size_t i = level; i < items.size(); ++i) {
      if (items[i].weight <= remaining) {
        remaining -= items[i].weight;
        bound += items[i].profit;
      } else {
        bound += items[i].profit * (remaining / items[i].weight);
        break;
      }
    }
    return bound;
  }

  void Dfs(size_t level, double weight, double profit) {
    if (++nodes > max_nodes) {
      exhausted = true;
      return;
    }
    if (profit > best_profit + kEps) {
      best_profit = profit;
      best_weight = weight;
      best = current;
    }
    if (level == items.size()) return;
    if (Bound(level, weight, profit) <= best_profit + kEps) return;
    // Take first (density order makes "take" the promising branch).
    if (weight + items[level].weight <= capacity + weight_tol) {
      current[level] = 1;
      Dfs(level + 1, weight + items[level].weight,
          profit + items[level].profit);
      current[level] = 0;
      if (exhausted) return;
    }
    Dfs(level + 1, weight, profit);
  }
};

}  // namespace

KnapsackSolution SolveKnapsack(const std::vector<KnapsackItem>& items,
                               double capacity, uint64_t max_nodes) {
  KnapsackSolution solution;
  solution.take.assign(items.size(), 0);
  if (items.empty() || capacity <= 0.0) return solution;
  for (const KnapsackItem& item : items) {
    HYTAP_ASSERT(item.profit > 0.0 && item.weight > 0.0,
                 "knapsack items need positive profit and weight");
  }

  // Sort by profit density, descending.
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return items[a].profit * items[b].weight >
           items[b].profit * items[a].weight;
  });
  std::vector<KnapsackItem> sorted;
  sorted.reserve(items.size());
  for (size_t i : order) sorted.push_back(items[i]);

  const double weight_tol = 1e-9 * std::max(1.0, capacity);
  Searcher searcher{sorted,   capacity, max_nodes, weight_tol, {}, {},
                    0.0,      0.0,      0,         false};
  searcher.current.assign(items.size(), 0);
  searcher.best.assign(items.size(), 0);
  searcher.Dfs(0, 0.0, 0.0);

  solution.profit = searcher.best_profit;
  solution.weight = searcher.best_weight;
  solution.nodes = searcher.nodes;
  solution.optimal = !searcher.exhausted;
  for (size_t i = 0; i < items.size(); ++i) {
    solution.take[order[i]] = searcher.best[i];
  }
  return solution;
}

}  // namespace hytap

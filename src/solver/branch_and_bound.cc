#include "solver/branch_and_bound.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "common/assert.h"
#include "common/thread_pool.h"

namespace hytap {

namespace {

/// The first kSplitDepth density-sorted items span a static grid of
/// 2^kSplitDepth subproblems that workers claim from the shared pool.
/// Independent of the worker count so the search tree decomposition — and
/// with it the final answer — never depends on parallelism.
constexpr size_t kSplitDepth = 11;

/// Nodes between flushes of the local node counter into the shared budget /
/// cancellation check. Bounds stop latency without hot-loop atomics.
constexpr uint64_t kNodeBatch = 256;

/// Determinism (DESIGN.md §13). The search runs in two phases:
///
///  1. A racing phase computes the optimal *profit* P. Workers prune with
///     the shared incumbent, but only behind a safety margin that dominates
///     the floating-point noise of the prefix-sum bound: a subtree is cut
///     only when bound <= incumbent - margin, which proves its true maximum
///     is strictly below the incumbent. Subtrees containing an optimum are
///     therefore never cut, so the final incumbent profit is exactly P on
///     every schedule. (Which *vector* holds the incumbent is still
///     schedule-dependent among profit ties.)
///  2. A deterministic reconstruction pass re-walks the tree in serial DFS
///     order, pruning with the now-known P, and returns the first node
///     whose profit equals P bit-for-bit. Profit accumulation is canonical
///     (ascending density order along the path), so the phase-1 profit is
///     reproducible exactly and the returned take-vector is identical for
///     every worker count.
struct SearchContext {
  const std::vector<KnapsackItem>* items = nullptr;  // density-sorted
  std::vector<double> prefix_weight;  // size n + 1
  std::vector<double> prefix_profit;  // size n + 1
  double capacity = 0.0;
  double weight_tol = 0.0;
  double prune_margin = 0.0;
  uint64_t max_nodes = 0;
  const std::atomic<bool>* cancel = nullptr;

  std::atomic<uint64_t> nodes{0};
  std::atomic<uint64_t> pruned{0};
  std::atomic<bool> exhausted{false};
  std::atomic<bool> cancelled{false};

  /// Shared incumbent: the profit is read lock-free by the pruning hot
  /// path; the vector (and the improvement callback) update under a mutex.
  std::atomic<double> best_profit{0.0};
  std::mutex incumbent_mutex;
  std::vector<uint8_t> best_take;  // density order
  double best_weight = 0.0;
  bool has_incumbent = false;
  const std::vector<size_t>* order = nullptr;  // sorted index -> input index
  std::vector<uint8_t> input_take_scratch;
  const KnapsackOptions* options = nullptr;

  size_t item_count() const { return items->size(); }

  bool ShouldStop() const {
    return exhausted.load(std::memory_order_relaxed) ||
           cancelled.load(std::memory_order_relaxed);
  }

  /// Dantzig bound from `level` in O(log N): greedy whole-item fill via the
  /// prefix sums, plus the fractional head of the first item that no longer
  /// fits.
  double Bound(size_t level, double weight, double profit) const {
    const double remaining = capacity - weight;
    if (remaining <= 0.0) return profit;
    const size_t n = item_count();
    const double target = prefix_weight[level] + remaining;
    const size_t k =
        size_t(std::upper_bound(prefix_weight.begin() + level,
                                prefix_weight.end(), target) -
               prefix_weight.begin()) -
        1;
    double bound = profit + (prefix_profit[k] - prefix_profit[level]);
    if (k < n) {
      const double slack = remaining - (prefix_weight[k] - prefix_weight[level]);
      if (slack > 0.0) {
        bound += (*items)[k].profit * (slack / (*items)[k].weight);
      }
    }
    return bound;
  }

  /// Installs `current` as the incumbent if it strictly improves. `current`
  /// holds the take-bits of every decided level; undecided levels are 0.
  void MaybePublish(const std::vector<uint8_t>& current, double weight,
                    double profit) {
    if (profit <= best_profit.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(incumbent_mutex);
    if (profit <= best_profit.load(std::memory_order_relaxed)) return;
    best_take = current;
    best_weight = weight;
    has_incumbent = true;
    best_profit.store(profit, std::memory_order_release);
    if (options->on_improve) {
      input_take_scratch.assign(item_count(), 0);
      for (size_t i = 0; i < item_count(); ++i) {
        input_take_scratch[(*order)[i]] = best_take[i];
      }
      options->on_improve(profit, weight, input_take_scratch);
    }
  }

  /// Flushes a local node batch into the shared counter and re-checks the
  /// budget and the cancel token. Returns true when the search must stop.
  bool Tick(uint64_t* unflushed) {
    if (++*unflushed >= kNodeBatch) {
      nodes.fetch_add(*unflushed, std::memory_order_relaxed);
      *unflushed = 0;
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        cancelled.store(true, std::memory_order_relaxed);
      }
      if (nodes.load(std::memory_order_relaxed) > max_nodes) {
        exhausted.store(true, std::memory_order_relaxed);
      }
      return ShouldStop();
    }
    return false;
  }
};

/// One DFS node: the level it decides, the weight/profit *before* that
/// decision, and how far its expansion has advanced (0 = first visit,
/// 1 = take-branch done, 2 = skip-branch done).
struct Frame {
  uint32_t level;
  uint8_t stage;
  double weight;
  double profit;
};

/// Decodes subproblem `sub` (the fixed take/skip pattern of the first
/// `depth` levels; bit 0 of the pattern = take, and subproblem order mirrors
/// take-first DFS order). Returns false when the prefix is infeasible.
bool DecodePrefix(const SearchContext& ctx, uint64_t sub, size_t depth,
                  std::vector<uint8_t>* current, double* weight,
                  double* profit) {
  *weight = 0.0;
  *profit = 0.0;
  for (size_t level = 0; level < depth; ++level) {
    const bool take = ((sub >> (depth - 1 - level)) & 1) == 0;
    (*current)[level] = take ? 1 : 0;
    if (!take) continue;
    const KnapsackItem& item = (*ctx.items)[level];
    if (*weight + item.weight > ctx.capacity + ctx.weight_tol) return false;
    *weight += item.weight;
    *profit += item.profit;
  }
  return true;
}

/// Phase-1 DFS below one subproblem prefix. `current` carries the decided
/// take-bits, `stack`/`current` are caller-owned scratch reused across the
/// subproblems of one morsel.
void SearchSubproblem(SearchContext& ctx, uint64_t sub, size_t depth,
                      std::vector<uint8_t>* current,
                      std::vector<Frame>* stack) {
  const size_t n = ctx.item_count();
  uint64_t unflushed = 0;
  uint64_t local_pruned = 0;
  double weight = 0.0;
  double profit = 0.0;
  if (!DecodePrefix(ctx, sub, depth, current, &weight, &profit)) {
    ctx.pruned.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stack->clear();
  stack->push_back(Frame{uint32_t(depth), 0, weight, profit});
  while (!stack->empty()) {
    Frame& f = stack->back();
    if (f.stage == 0) {
      if (ctx.Tick(&unflushed)) break;
      if (f.profit > ctx.best_profit.load(std::memory_order_relaxed)) {
        ctx.MaybePublish(*current, f.weight, f.profit);
      }
      if (f.level == n) {
        stack->pop_back();
        continue;
      }
      const double bound = ctx.Bound(f.level, f.weight, f.profit);
      if (bound <= ctx.best_profit.load(std::memory_order_relaxed) -
                       ctx.prune_margin) {
        ++local_pruned;
        stack->pop_back();
        continue;
      }
      const KnapsackItem& item = (*ctx.items)[f.level];
      if (f.weight + item.weight <= ctx.capacity + ctx.weight_tol) {
        f.stage = 1;
        (*current)[f.level] = 1;
        const Frame child{f.level + 1, 0, f.weight + item.weight,
                          f.profit + item.profit};
        stack->push_back(child);  // may invalidate f
      } else {
        f.stage = 2;
        const Frame child{f.level + 1, 0, f.weight, f.profit};
        stack->push_back(child);
      }
      continue;
    }
    if (f.stage == 1) {
      (*current)[f.level] = 0;
      f.stage = 2;
      const Frame child{f.level + 1, 0, f.weight, f.profit};
      stack->push_back(child);
      continue;
    }
    stack->pop_back();
  }
  if (unflushed > 0) ctx.nodes.fetch_add(unflushed, std::memory_order_relaxed);
  if (local_pruned > 0) {
    ctx.pruned.fetch_add(local_pruned, std::memory_order_relaxed);
  }
}

/// Phase-2 deterministic reconstruction: serial take-first DFS over the
/// subproblems in order, pruning against the known optimal profit, stopping
/// at the first node whose profit equals it exactly. Returns false if the
/// node cap was exhausted first (the caller then keeps the phase-1
/// incumbent; correctness is unaffected, only tie determinism).
bool ReconstructOptimal(SearchContext& ctx, size_t depth, double target,
                        uint64_t node_cap, std::vector<uint8_t>* take_out,
                        double* weight_out, uint64_t* nodes_out) {
  const size_t n = ctx.item_count();
  const uint64_t subproblems = uint64_t{1} << depth;
  std::vector<uint8_t> current(n, 0);
  std::vector<Frame> stack;
  uint64_t nodes = 0;
  const double threshold = target - ctx.prune_margin;
  for (uint64_t sub = 0; sub < subproblems; ++sub) {
    double weight = 0.0;
    double profit = 0.0;
    if (!DecodePrefix(ctx, sub, depth, &current, &weight, &profit)) continue;
    if (ctx.Bound(depth, weight, profit) < threshold) continue;
    stack.clear();
    stack.push_back(Frame{uint32_t(depth), 0, weight, profit});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.stage == 0) {
        if (++nodes > node_cap) {
          *nodes_out = nodes;
          return false;
        }
        if (f.profit == target) {
          *take_out = current;
          *weight_out = f.weight;
          *nodes_out = nodes;
          return true;
        }
        if (f.level == n ||
            ctx.Bound(f.level, f.weight, f.profit) < threshold) {
          stack.pop_back();
          continue;
        }
        const KnapsackItem& item = (*ctx.items)[f.level];
        if (f.weight + item.weight <= ctx.capacity + ctx.weight_tol) {
          f.stage = 1;
          current[f.level] = 1;
          const Frame child{f.level + 1, 0, f.weight + item.weight,
                            f.profit + item.profit};
          stack.push_back(child);
        } else {
          f.stage = 2;
          const Frame child{f.level + 1, 0, f.weight, f.profit};
          stack.push_back(child);
        }
        continue;
      }
      if (f.stage == 1) {
        current[f.level] = 0;
        f.stage = 2;
        const Frame child{f.level + 1, 0, f.weight, f.profit};
        stack.push_back(child);
        continue;
      }
      stack.pop_back();
    }
    // Clear the prefix bits before the next subproblem decode overwrites
    // them (DecodePrefix writes every prefix level, so this is redundant
    // but keeps `current` all-zero on exit).
  }
  *nodes_out = nodes;
  return false;
}

}  // namespace

KnapsackSolution SolveKnapsack(const std::vector<KnapsackItem>& items,
                               double capacity,
                               const KnapsackOptions& options) {
  KnapsackSolution solution;
  solution.take.assign(items.size(), 0);
  if (items.empty() || capacity <= 0.0) return solution;
  for (const KnapsackItem& item : items) {
    HYTAP_ASSERT(item.profit > 0.0 && item.weight > 0.0,
                 "knapsack items need positive profit and weight");
  }

  // Sort by profit density, descending (ties by input index for a stable,
  // input-independent order).
  const size_t n = items.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double da = items[a].profit * items[b].weight;
    const double db = items[b].profit * items[a].weight;
    if (da != db) return da > db;
    return a < b;
  });
  std::vector<KnapsackItem> sorted;
  sorted.reserve(n);
  for (size_t i : order) sorted.push_back(items[i]);

  SearchContext ctx;
  ctx.items = &sorted;
  ctx.prefix_weight.resize(n + 1);
  ctx.prefix_profit.resize(n + 1);
  ctx.prefix_weight[0] = 0.0;
  ctx.prefix_profit[0] = 0.0;
  double total_profit = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ctx.prefix_weight[i + 1] = ctx.prefix_weight[i] + sorted[i].weight;
    ctx.prefix_profit[i + 1] = ctx.prefix_profit[i] + sorted[i].profit;
    total_profit += sorted[i].profit;
  }
  ctx.capacity = capacity;
  ctx.weight_tol = 1e-9 * std::max(1.0, capacity);
  // Safety margin over the floating-point noise of prefix-sum bounds; see
  // the determinism note above. Scales with the total profit mass because
  // that is what the prefix-sum cancellation error scales with.
  ctx.prune_margin = 1e-9 * std::max(1.0, total_profit);
  ctx.max_nodes = options.max_nodes;
  ctx.cancel = options.cancel;
  ctx.order = &order;
  ctx.options = &options;

  solution.lp_bound = ctx.Bound(0, 0.0, 0.0);

  const size_t depth = std::min(n, kSplitDepth);
  const uint64_t subproblems = uint64_t{1} << depth;
  const uint32_t workers = options.workers == 0 ? 1 : options.workers;
  // Chunked morsels so each worker reuses one scratch allocation across a
  // run of subproblems; ~8 chunks per worker keeps stealing balanced.
  const size_t grain = std::max<size_t>(
      1, size_t(subproblems) / std::max<size_t>(1, size_t(workers) * 8));
  ThreadPool::Global().ParallelFor(
      0, size_t(subproblems), grain, workers,
      [&ctx, depth](size_t, size_t chunk_begin, size_t chunk_end) {
        std::vector<uint8_t> current(ctx.item_count(), 0);
        std::vector<Frame> stack;
        for (size_t sub = chunk_begin; sub < chunk_end; ++sub) {
          if (ctx.ShouldStop()) return;
          SearchSubproblem(ctx, sub, depth, &current, &stack);
        }
      });

  solution.nodes = ctx.nodes.load(std::memory_order_relaxed);
  solution.pruned = ctx.pruned.load(std::memory_order_relaxed);
  solution.cancelled = ctx.cancelled.load(std::memory_order_relaxed);
  solution.optimal = !ctx.exhausted.load(std::memory_order_relaxed) &&
                     !solution.cancelled;

  std::vector<uint8_t> best_take;
  double best_weight = 0.0;
  double best_profit = 0.0;
  {
    std::lock_guard<std::mutex> lock(ctx.incumbent_mutex);
    best_take = ctx.best_take;
    best_weight = ctx.best_weight;
    best_profit = ctx.best_profit.load(std::memory_order_relaxed);
    if (!ctx.has_incumbent) best_take.assign(n, 0);
  }

  if (solution.optimal && best_profit > 0.0) {
    // Deterministic tie resolution: replace the schedule-dependent incumbent
    // vector with the first optimal solution in serial DFS order.
    std::vector<uint8_t> canonical;
    double canonical_weight = 0.0;
    uint64_t phase2_nodes = 0;
    const uint64_t node_cap =
        std::max<uint64_t>(10'000'000, 4 * solution.nodes);
    if (ReconstructOptimal(ctx, depth, best_profit, node_cap, &canonical,
                           &canonical_weight, &phase2_nodes)) {
      best_take = std::move(canonical);
      best_weight = canonical_weight;
    }
    solution.nodes += phase2_nodes;
  }

  solution.profit = best_profit;
  solution.weight = best_weight;
  for (size_t i = 0; i < n; ++i) solution.take[order[i]] = best_take[i];
  if (solution.lp_bound > 0.0) {
    solution.gap =
        std::max(0.0, (solution.lp_bound - solution.profit) / solution.lp_bound);
  }
  return solution;
}

KnapsackSolution SolveKnapsack(const std::vector<KnapsackItem>& items,
                               double capacity, uint64_t max_nodes) {
  KnapsackOptions options;
  options.max_nodes = max_nodes;
  return SolveKnapsack(items, capacity, options);
}

}  // namespace hytap

#ifndef HYTAP_SELECTION_REALLOCATION_H_
#define HYTAP_SELECTION_REALLOCATION_H_

#include <cstdint>
#include <string>

#include "selection/selectors.h"
#include "solver/portfolio.h"

namespace hytap {

/// How SelectWithReallocation solves the reallocation-aware problem.
struct ReallocationOptions {
  /// Race the anytime solver portfolio (exact B&B, explicit, greedy) under
  /// `portfolio.budget_ms`; false = one-shot explicit solution. With an
  /// unlimited budget the portfolio result is the deterministic exact
  /// optimum, so the re-tiering daemon stays bit-identical across runs.
  bool use_portfolio = true;
  PortfolioOptions portfolio = PortfolioOptions::FromEnv();
};

/// Result of one reallocation-aware selection (paper eqs (6)-(7), §III-D):
/// the winning allocation plus the move bookkeeping the re-tiering daemon
/// plans from.
struct ReallocationResult {
  SelectionResult selection;
  /// Portfolio mode only: winning solver name, gap vs LP bound, deadline.
  std::string winner;
  double gap = 0.0;
  bool deadline_hit = false;
  /// Columns whose tier changes vs the current allocation y, and the bytes
  /// those moves migrate.
  uint64_t planned_moves = 0;
  double planned_move_bytes = 0.0;
  /// F(y): the objective of staying put (the |x - y| term vanishes at x=y).
  double current_cost = 0.0;
  /// current_cost - selection.objective, i.e. the scan-cost win of moving
  /// net of the amortized move cost beta * moved bytes. >= 0 for an exact
  /// solve (staying put is always feasible).
  double improvement = 0.0;
  /// improvement as a percentage of current_cost (0 when current_cost = 0).
  double improvement_pct = 0.0;
};

/// Solves the selection problem with the reallocation term
///   c_i(x_i) = a_i * (S_i x_i + alpha x_i) + beta * a_i * |x_i - y_i|
/// for the current allocation y = `problem.current` and move weight
/// `problem.beta` (both must be set; beta may be 0). Every selector prices
/// the move term through the shared KnapsackView, so the portfolio race and
/// the explicit path optimize the identical objective.
ReallocationResult SelectWithReallocation(
    const SelectionProblem& problem, const ReallocationOptions& options = {});

/// Sizes beta from the maintenance window (§III-D): a move costs
/// `move_ns_per_byte` once, and the plan is amortized over the next
/// `amortization_windows` workload windows, so per-window the move is worth
/// move_ns_per_byte / amortization_windows ns per byte — directly comparable
/// to the per-window scan cost F(x). Larger amortization horizons make the
/// daemon more eager to move; horizon 0 is clamped to 1.
double BetaFromMigrationWindow(double move_ns_per_byte,
                               uint64_t amortization_windows);

}  // namespace hytap

#endif  // HYTAP_SELECTION_REALLOCATION_H_

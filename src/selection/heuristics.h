#ifndef HYTAP_SELECTION_HEURISTICS_H_
#define HYTAP_SELECTION_HEURISTICS_H_

#include "selection/selectors.h"

namespace hytap {

/// The benchmark heuristics of Example 1 (paper §III-C). All three order the
/// columns by a simple metric, skip columns never used by the workload
/// (g_i = 0), and fill the budget in order — if a column no longer fits,
/// later columns are still tried (the paper's filling rule).
enum class HeuristicKind {
  kH1Frequency,           // most used first (descending g_i), cf. AutoAdmin
  kH2Selectivity,         // smallest selectivity s_i first
  kH3SelectivityPerFreq,  // smallest ratio s_i / g_i first (reactive unload)
};

const char* HeuristicName(HeuristicKind kind);

/// Runs one of the baseline heuristics for `problem`'s budget. Reallocation
/// costs and pinning are honored (pinned columns first, moves are costed in
/// the returned objective).
SelectionResult SelectHeuristic(const SelectionProblem& problem,
                                HeuristicKind kind);

}  // namespace hytap

#endif  // HYTAP_SELECTION_HEURISTICS_H_

#ifndef HYTAP_SELECTION_COST_MODEL_H_
#define HYTAP_SELECTION_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "workload/workload.h"

namespace hytap {

/// Calibratable scan-cost parameters (paper §III-A): time to stream one byte
/// from main memory (c_mm) and from secondary storage (c_ss). Units are
/// arbitrary but consistent; defaults reflect ~10 GB/s DRAM scans vs a
/// ~500 MB/s NAND device at moderate queue depth.
struct ScanCostParams {
  double c_mm = 1.0;
  double c_ss = 150.0;
};

/// The bandwidth-centric scan-cost model with selection interaction
/// (paper §III-A, eqs. (1)-(2)).
///
/// Within each query, predicates execute in ascending selectivity order; the
/// cost of accessing column i is discounted by the product of the
/// selectivities of the columns already scanned:
///   f_j(x) = sum_{i in q_j} (x_i c_mm + (1-x_i) c_ss) * a_i * D_{j,i},
///   D_{j,i} = prod_{k in q_j : k scanned before i} s_k.
///
/// Because the predicate order is a workload property (independent of x),
/// F(x) is separable: F(x) = F(0) + sum_i x_i a_i S_i with
///   S_i = (c_mm - c_ss) * sum_{j : i in q_j} b_j D_{j,i} <= 0.
/// This separability is what makes the ILP a knapsack and enables the
/// explicit solution (Theorem 2).
class CostModel {
 public:
  CostModel(const Workload& workload, ScanCostParams params,
            bool selection_interaction = true);

  /// Per-byte utility coefficients S_i (all <= 0).
  const std::vector<double>& S() const { return s_coeff_; }

  /// Total scan cost F(x) for a 0/1 allocation (1 = DRAM).
  double ScanCost(const std::vector<uint8_t>& in_dram) const;

  /// Continuous overload (for LP-relaxation checks).
  double ScanCostContinuous(const std::vector<double>& x) const;

  /// F(1...1): everything in DRAM (the "minimal scan costs" reference used
  /// for the paper's relative-performance metric, §III-B).
  double AllDramCost() const { return all_dram_cost_; }
  /// F(0...0): everything on secondary storage.
  double AllSecondaryCost() const { return all_secondary_cost_; }

  /// Relative performance of an allocation: F(1)/F(x) in (0, 1].
  double RelativePerformance(const std::vector<uint8_t>& in_dram) const {
    return AllDramCost() / ScanCost(in_dram);
  }

  /// M(x): DRAM bytes used.
  double MemoryUsed(const std::vector<uint8_t>& in_dram) const;

  double TotalBytes() const { return total_bytes_; }

  const Workload& workload() const { return *workload_; }
  const ScanCostParams& params() const { return params_; }

  /// Whether the selectivity-product discount is applied (the ablation in
  /// DESIGN.md disables it to mimic frequency-counting models).
  bool selection_interaction() const { return selection_interaction_; }

 private:
  const Workload* workload_;
  ScanCostParams params_;
  bool selection_interaction_;
  std::vector<double> s_coeff_;        // S_i
  std::vector<double> weighted_mass_;  // sum_j b_j * D_{j,i} per column
  double all_dram_cost_;
  double all_secondary_cost_;
  double total_bytes_;
};

}  // namespace hytap

#endif  // HYTAP_SELECTION_COST_MODEL_H_

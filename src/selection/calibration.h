#ifndef HYTAP_SELECTION_CALIBRATION_H_
#define HYTAP_SELECTION_CALIBRATION_H_

#include <cstdint>
#include <mutex>

#include "selection/cost_model.h"
#include "workload/workload_monitor.h"

namespace hytap {

/// Per-tier calibration accumulator: observed simulated time vs bytes
/// streamed, i.e. the empirical ns-per-byte the scan-cost parameters claim
/// to model.
struct TierCalibration {
  uint64_t observed_ns = 0;
  uint64_t bytes = 0;
  uint64_t samples = 0;  // queries that touched this tier

  /// Observed ns/byte; `fallback` when the tier was never touched.
  double NsPerByte(double fallback) const {
    return bytes == 0 ? fallback : double(observed_ns) / double(bytes);
  }
};

/// Online scan-cost-model calibration (DESIGN.md §12).
///
/// Fed one QueryObservation per query (as the monitor's sink), it compares
/// the cost the reference `ScanCostParams` predict for the bytes each tier
/// streamed against the simulated time the engine actually charged, keeps
/// per-tier residual-ratio histograms in the metrics registry
/// (`hytap_calibration_residual_ratio_pct_{dram,secondary}`, 100 = the
/// model was exact), and fits calibrated parameters from the accumulated
/// bytes/ns:
///
///   c_mm = sum(dram scan ns)   / sum(MRC bytes streamed)
///   c_ss = sum(device ns)      / sum(page_reads * kPageSize)
///
/// The fit is independent of the reference parameters — only the residual
/// report depends on them — so a perturbed starting point still converges
/// to the device models' effective bandwidths (`placement_doctor_test`).
/// Report-only by default: nothing consumes Fitted() unless the Advisor
/// opts in via AdvisorOptions::use_calibrated_params.
class CostCalibrator : public QueryObservationSink {
 public:
  explicit CostCalibrator(ScanCostParams reference = ScanCostParams());

  /// Records one query's per-tier bytes/ns and residuals. Pure observer;
  /// thread-safe.
  void Observe(const QueryObservation& observation) override;

  /// The parameters residuals are measured against.
  ScanCostParams reference() const;
  void set_reference(ScanCostParams reference);

  /// Calibrated parameters in simulated ns/byte; tiers without samples keep
  /// the reference value.
  ScanCostParams Fitted() const;

  uint64_t sample_count() const;
  TierCalibration dram() const;
  TierCalibration secondary() const;

  /// Aggregate observed/predicted ratio per tier under the reference
  /// parameters (1.0 = exact; 0 when the tier has no bytes).
  double DramResidualRatio() const;
  double SecondaryResidualRatio() const;

  void Reset();

 private:
  mutable std::mutex mutex_;
  ScanCostParams reference_;
  TierCalibration dram_;
  TierCalibration secondary_;
  uint64_t sample_count_ = 0;
};

}  // namespace hytap

#endif  // HYTAP_SELECTION_CALIBRATION_H_

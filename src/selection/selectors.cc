#include "selection/selectors.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/assert.h"
#include "solver/branch_and_bound.h"
#include "solver/simplex.h"

namespace hytap {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-byte linear coefficient theta_i = S_i + beta * (1 - 2 y_i):
/// x_i = 1 improves the objective iff theta_i + alpha < 0 (paper eq. (9)).
std::vector<double> ThetaCoefficients(const SelectionProblem& problem,
                                      const CostModel& model) {
  const size_t n = problem.workload->column_count();
  std::vector<double> theta(model.S());
  if (!problem.current.empty() && problem.beta != 0.0) {
    HYTAP_ASSERT(problem.current.size() == n, "current allocation arity");
    for (size_t i = 0; i < n; ++i) {
      theta[i] += problem.beta * (1.0 - 2.0 * double(problem.current[i]));
    }
  }
  return theta;
}

bool IsPinned(const SelectionProblem& problem, size_t i) {
  return !problem.pinned.empty() && problem.pinned[i] != 0;
}

double PinnedBytes(const SelectionProblem& problem) {
  if (problem.pinned.empty()) return 0.0;
  double bytes = 0.0;
  for (size_t i = 0; i < problem.pinned.size(); ++i) {
    if (problem.pinned[i]) bytes += problem.workload->column_sizes[i];
  }
  return bytes;
}

}  // namespace

SelectionProblem SelectionProblem::FromRelativeBudget(const Workload& workload,
                                                      ScanCostParams params,
                                                      double w) {
  HYTAP_ASSERT(w >= 0.0 && w <= 1.0, "relative budget must be in [0, 1]");
  SelectionProblem problem;
  problem.workload = &workload;
  problem.params = params;
  problem.budget_bytes = w * workload.TotalBytes();
  return problem;
}

SelectionResult FinishResult(const SelectionProblem& problem,
                             const CostModel& model,
                             std::vector<uint8_t> in_dram) {
  const size_t n = problem.workload->column_count();
  HYTAP_ASSERT(in_dram.size() == n, "allocation arity mismatch");
  for (size_t i = 0; i < n; ++i) {
    if (IsPinned(problem, i)) in_dram[i] = 1;
  }
  SelectionResult result;
  result.scan_cost = model.ScanCost(in_dram);
  result.dram_bytes = model.MemoryUsed(in_dram);
  result.objective = result.scan_cost;
  if (!problem.current.empty() && problem.beta != 0.0) {
    for (size_t i = 0; i < n; ++i) {
      if (in_dram[i] != problem.current[i]) {
        result.objective +=
            problem.beta * problem.workload->column_sizes[i];
      }
    }
  }
  result.in_dram = std::move(in_dram);
  return result;
}

std::vector<uint8_t> KnapsackView::Expand(
    const std::vector<uint8_t>& take) const {
  HYTAP_ASSERT(take.size() == items.size(), "take arity mismatch");
  std::vector<uint8_t> in_dram(base);
  for (size_t k = 0; k < items.size(); ++k) {
    if (take[k]) in_dram[item_columns[k]] = 1;
  }
  return in_dram;
}

KnapsackView BuildKnapsackView(const SelectionProblem& problem,
                               const CostModel& model) {
  const std::vector<double> theta = ThetaCoefficients(problem, model);
  const size_t n = problem.workload->column_count();
  const double pinned_bytes = PinnedBytes(problem);
  HYTAP_ASSERT(pinned_bytes <= problem.budget_bytes + 1e-9,
               "pinned columns exceed the DRAM budget");

  KnapsackView view;
  view.capacity = problem.budget_bytes - pinned_bytes;
  view.base.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (IsPinned(problem, i)) view.base[i] = 1;
  }
  for (size_t i = 0; i < n; ++i) {
    if (IsPinned(problem, i)) continue;
    const double profit = -problem.workload->column_sizes[i] * theta[i];
    if (profit > 0.0) {
      view.items.push_back(
          KnapsackItem{profit, problem.workload->column_sizes[i]});
      view.item_columns.push_back(i);
    }
  }

  view.base_objective = model.ScanCost(view.base);
  if (!problem.current.empty() && problem.beta != 0.0) {
    for (size_t i = 0; i < n; ++i) {
      if (view.base[i] != problem.current[i]) {
        view.base_objective +=
            problem.beta * problem.workload->column_sizes[i];
      }
    }
  }

  // Dantzig bound: fill by profit density, fractional head on the first item
  // that no longer fits. This is exactly the LP-relaxation (4) optimum
  // restricted to the profitable items, without the O(N^2) dense simplex.
  std::vector<size_t> order(view.items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double da = view.items[a].profit * view.items[b].weight;
    const double db = view.items[b].profit * view.items[a].weight;
    if (da != db) return da > db;
    return a < b;
  });
  double remaining = view.capacity;
  for (size_t k : order) {
    if (remaining <= 0.0) break;
    const KnapsackItem& item = view.items[k];
    if (item.weight <= remaining) {
      view.profit_upper_bound += item.profit;
      remaining -= item.weight;
    } else {
      view.profit_upper_bound += item.profit * (remaining / item.weight);
      break;
    }
  }
  return view;
}

SelectionResult SelectIntegerOptimal(const SelectionProblem& problem,
                                     uint64_t max_nodes) {
  const auto start = Clock::now();
  CostModel model(*problem.workload, problem.params);
  const double model_seconds = Seconds(start);
  const KnapsackView view = BuildKnapsackView(problem, model);
  KnapsackSolution knapsack =
      SolveKnapsack(view.items, view.capacity, max_nodes);

  SelectionResult result =
      FinishResult(problem, model, view.Expand(knapsack.take));
  result.solver_nodes = knapsack.nodes;
  result.solver_pruned = knapsack.pruned;
  result.optimal = knapsack.optimal;
  result.lp_bound = view.base_objective - knapsack.lp_bound;
  if (result.lp_bound != 0.0) {
    result.gap = std::max(
        0.0, (result.objective - result.lp_bound) / std::abs(result.lp_bound));
  }
  result.solve_seconds = Seconds(start);
  result.model_seconds = model_seconds;
  return result;
}

SelectionResult SelectContinuousPenalty(const SelectionProblem& problem,
                                        double alpha) {
  const auto start = Clock::now();
  HYTAP_ASSERT(alpha >= 0.0, "penalty alpha must be non-negative");
  CostModel model(*problem.workload, problem.params);
  const std::vector<double> theta = ThetaCoefficients(problem, model);
  const size_t n = problem.workload->column_count();
  std::vector<uint8_t> in_dram(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (theta[i] + alpha < 0.0) in_dram[i] = 1;
  }
  SelectionResult result = FinishResult(problem, model, std::move(in_dram));
  result.solve_seconds = Seconds(start);
  return result;
}

std::vector<uint8_t> ExplicitFrontier::AllocationFor(
    double budget_bytes, size_t n, bool filling,
    const std::vector<double>& sizes) const {
  std::vector<uint8_t> in_dram(n, 0);
  double used = 0.0;
  for (const FrontierPoint& point : points) {
    const double size = sizes[point.column];
    if (used + size <= budget_bytes + 1e-9) {
      in_dram[point.column] = 1;
      used += size;
    } else if (!filling) {
      break;  // strict prefix of the performance order
    }
    // With filling (Remark 2), later (smaller) columns may still fit.
  }
  return in_dram;
}

ExplicitFrontier ComputeExplicitFrontier(const SelectionProblem& problem) {
  CostModel model(*problem.workload, problem.params);
  const std::vector<double> theta = ThetaCoefficients(problem, model);
  const size_t n = problem.workload->column_count();

  // Performance order o_i: pinned columns first (alpha = +inf), then columns
  // by descending critical alpha_i = -theta_i, keeping only those whose
  // selection can ever improve the objective (alpha_i > 0).
  std::vector<uint32_t> order;
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (IsPinned(problem, i) || theta[i] < 0.0) {
      order.push_back(static_cast<uint32_t>(i));
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const bool pa = IsPinned(problem, a);
    const bool pb = IsPinned(problem, b);
    if (pa != pb) return pa;
    return theta[a] < theta[b];
  });

  ExplicitFrontier frontier;
  frontier.points.reserve(order.size());
  double used = 0.0;
  double cost = model.AllSecondaryCost();
  // Baseline objective: with nothing in DRAM every currently-DRAM column
  // (y_i = 1) pays the eviction move cost.
  double moves = 0.0;
  if (!problem.current.empty() && problem.beta != 0.0) {
    for (size_t i = 0; i < n; ++i) {
      if (problem.current[i]) {
        moves += problem.beta * problem.workload->column_sizes[i];
      }
    }
  }
  for (uint32_t c : order) {
    const double a = problem.workload->column_sizes[c];
    used += a;
    cost += a * model.S()[c];
    if (!problem.current.empty() && problem.beta != 0.0) {
      // Selecting c either avoids its eviction cost (y=1) or adds a load
      // cost (y=0).
      moves += problem.beta * a * (problem.current[c] ? -1.0 : 1.0);
    }
    frontier.points.push_back(FrontierPoint{
        c, IsPinned(problem, c) ? std::numeric_limits<double>::infinity()
                                : -theta[c],
        used, cost, cost + moves});
  }
  return frontier;
}

SelectionResult SelectExplicit(const SelectionProblem& problem,
                               bool filling) {
  const auto start = Clock::now();
  CostModel model(*problem.workload, problem.params);
  const double model_seconds = Seconds(start);
  ExplicitFrontier frontier = ComputeExplicitFrontier(problem);
  std::vector<uint8_t> in_dram = frontier.AllocationFor(
      problem.budget_bytes, problem.workload->column_count(), filling,
      problem.workload->column_sizes);
  SelectionResult result = FinishResult(problem, model, std::move(in_dram));
  result.solve_seconds = Seconds(start);
  result.model_seconds = model_seconds;
  return result;
}

SelectionResult SelectGreedyMarginal(const SelectionProblem& problem) {
  const auto start = Clock::now();
  CostModel model(*problem.workload, problem.params);
  const double model_seconds = Seconds(start);
  const std::vector<double> theta = ThetaCoefficients(problem, model);
  const size_t n = problem.workload->column_count();
  std::vector<uint8_t> in_dram(n, 0);
  double used = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (IsPinned(problem, i)) {
      in_dram[i] = 1;
      used += problem.workload->column_sizes[i];
    }
  }
  // Remark 3: repeatedly add the column with the best additional performance
  // per additional DRAM byte. For the separable model the gain per byte of
  // column i is the constant -theta_i (scan-cost delta plus the flipped move
  // term), so the repeated argmax is a single pass over the columns sorted by
  // theta ascending (ties by index, matching the old first-index argmax).
  // A column skipped for space never fits again — `used` only grows — so the
  // fill-with-skip scan reproduces the historical O(N^2) loop exactly.
  std::vector<uint32_t> order;
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!IsPinned(problem, i) && theta[i] < 0.0) {
      order.push_back(uint32_t(i));
    }
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (theta[a] != theta[b]) return theta[a] < theta[b];
    return a < b;
  });
  for (uint32_t i : order) {
    const double a = problem.workload->column_sizes[i];
    if (used + a > problem.budget_bytes + 1e-9) continue;
    in_dram[i] = 1;
    used += a;
  }
  SelectionResult result = FinishResult(problem, model, std::move(in_dram));
  result.solve_seconds = Seconds(start);
  result.model_seconds = model_seconds;
  return result;
}

SelectionResult SelectContinuousSimplex(const SelectionProblem& problem,
                                        double alpha) {
  const auto start = Clock::now();
  CostModel model(*problem.workload, problem.params);
  const std::vector<double> theta = ThetaCoefficients(problem, model);
  const size_t n = problem.workload->column_count();
  // Problem (5)/(6) over x in [0,1]^N. For binary y the reallocation term is
  // linear in x (|x-0| = x, |x-1| = 1-x), so no auxiliary z variables are
  // needed; the objective coefficient of x_i is a_i * (theta_i + alpha).
  LpProblem lp;
  lp.objective.resize(n);
  for (size_t i = 0; i < n; ++i) {
    lp.objective[i] = problem.workload->column_sizes[i] * (theta[i] + alpha);
    if (IsPinned(problem, i)) {
      // Pinning: make selection arbitrarily attractive.
      lp.objective[i] = -1e18;
    }
  }
  lp.constraints.assign(n, std::vector<double>(n, 0.0));
  lp.rhs.assign(n, 1.0);
  for (size_t i = 0; i < n; ++i) lp.constraints[i][i] = 1.0;  // x_i <= 1
  LpSolution lp_solution = SolveLp(lp);
  HYTAP_ASSERT(lp_solution.feasible && lp_solution.bounded,
               "penalty LP must be feasible and bounded");
  std::vector<uint8_t> in_dram(n, 0);
  for (size_t i = 0; i < n; ++i) {
    // Lemma 1 guarantees integrality; tolerate float fuzz.
    in_dram[i] = lp_solution.x[i] > 0.5 ? 1 : 0;
  }
  SelectionResult result = FinishResult(problem, model, std::move(in_dram));
  result.solve_seconds = Seconds(start);
  return result;
}

RelaxationResult SolveRelaxationSimplex(const SelectionProblem& problem) {
  CostModel model(*problem.workload, problem.params);
  const size_t n = problem.workload->column_count();
  // LP (4) s.t. (3): pinned columns are substituted out (x = 1 fixed).
  double budget = problem.budget_bytes - PinnedBytes(problem);
  HYTAP_ASSERT(budget >= -1e-9, "pinned columns exceed the DRAM budget");
  std::vector<size_t> free_columns;
  for (size_t i = 0; i < n; ++i) {
    if (!IsPinned(problem, i)) free_columns.push_back(i);
  }
  LpProblem lp;
  const size_t k = free_columns.size();
  lp.objective.resize(k);
  lp.constraints.assign(k + 1, std::vector<double>(k, 0.0));
  lp.rhs.assign(k + 1, 1.0);
  for (size_t j = 0; j < k; ++j) {
    const size_t i = free_columns[j];
    lp.objective[j] = problem.workload->column_sizes[i] * model.S()[i];
    lp.constraints[0][j] = problem.workload->column_sizes[i];
    lp.constraints[j + 1][j] = 1.0;
  }
  lp.rhs[0] = std::max(0.0, budget);
  LpSolution lp_solution = SolveLp(lp);
  RelaxationResult result;
  result.feasible = lp_solution.feasible && lp_solution.bounded;
  if (!result.feasible) return result;
  result.x.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (IsPinned(problem, i)) result.x[i] = 1.0;
  }
  for (size_t j = 0; j < k; ++j) result.x[free_columns[j]] = lp_solution.x[j];
  result.scan_cost = model.ScanCostContinuous(result.x);
  for (size_t i = 0; i < n; ++i) {
    result.dram_bytes += result.x[i] * problem.workload->column_sizes[i];
  }
  return result;
}

}  // namespace hytap

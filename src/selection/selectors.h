#ifndef HYTAP_SELECTION_SELECTORS_H_
#define HYTAP_SELECTION_SELECTORS_H_

#include <cstdint>
#include <vector>

#include "selection/cost_model.h"
#include "solver/branch_and_bound.h"
#include "workload/workload.h"

namespace hytap {

/// A column selection problem instance (paper §III).
struct SelectionProblem {
  const Workload* workload = nullptr;
  ScanCostParams params;
  /// DRAM budget A in bytes. Helpers accept the relative budget w instead.
  double budget_bytes = 0.0;
  /// Current allocation y (for reallocation costs, §III-D). Empty = no
  /// reallocation term (beta treated as 0).
  std::vector<uint8_t> current;
  /// Per-byte reallocation cost weight beta (>= 0).
  double beta = 0.0;
  /// Columns pinned in DRAM by the DBA (SLAs, primary keys; Fig. 2).
  std::vector<uint8_t> pinned;

  /// Budget from a relative share w of the total column bytes.
  static SelectionProblem FromRelativeBudget(const Workload& workload,
                                             ScanCostParams params, double w);
};

/// Result of a selection run.
struct SelectionResult {
  std::vector<uint8_t> in_dram;  // x
  double scan_cost = 0.0;        // F(x)
  double dram_bytes = 0.0;       // M(x)
  double objective = 0.0;        // F(x) + beta * moved bytes
  double solve_seconds = 0.0;    // wall time including cost-model build
  double model_seconds = 0.0;    // share spent building the cost model
  uint64_t solver_nodes = 0;     // B&B nodes (integer selector only)
  uint64_t solver_pruned = 0;    // B&B subtrees cut by the bound
  /// LP-relaxation lower bound on the objective (problem (4)); 0 when the
  /// selector does not compute one.
  double lp_bound = 0.0;
  /// Relative optimality gap (objective - lp_bound) / |lp_bound|, clamped
  /// >= 0. For a completed exact solve this is the LP integrality gap.
  double gap = 0.0;
  bool optimal = true;
};

/// The selection problem (2)-(3) reduced to its 0/1 knapsack core: the
/// non-pinned columns whose selection strictly improves the objective
/// (profit_i = -a_i * theta_i > 0) against capacity = budget minus pinned
/// bytes. Built once and shared by the exact selector and the anytime solver
/// portfolio so every racing algorithm prices solutions identically.
struct KnapsackView {
  std::vector<KnapsackItem> items;
  std::vector<size_t> item_columns;  // item k -> column index
  double capacity = 0.0;             // budget_bytes minus pinned bytes
  /// Pinned-only baseline allocation (size N). Objective of a take-vector:
  /// base_objective - sum of taken profits.
  std::vector<uint8_t> base;
  double base_objective = 0.0;
  /// Analytic Dantzig (fractional-relaxation) upper bound on the knapsack
  /// profit, i.e. base_objective - profit_upper_bound lower-bounds every
  /// feasible objective. Matches the SolveRelaxationSimplex optimum.
  double profit_upper_bound = 0.0;

  /// Expands an item take-vector (size items.size()) into a full column
  /// allocation with the pinned columns forced in.
  std::vector<uint8_t> Expand(const std::vector<uint8_t>& take) const;
  /// LP lower bound on the objective.
  double ObjectiveLowerBound() const {
    return base_objective - profit_upper_bound;
  }
};

KnapsackView BuildKnapsackView(const SelectionProblem& problem,
                               const CostModel& model);

/// Exact integer optimum of problem (2)-(3) (with optional reallocation
/// term), via branch-and-bound. This is the Pareto-efficient frontier point
/// for budget A.
SelectionResult SelectIntegerOptimal(const SelectionProblem& problem,
                                     uint64_t max_nodes = 200'000'000);

/// Optimal solution of the continuous penalty problem (5)/(6) for a fixed
/// alpha, via the per-column threshold rule (Theorem 2 cases). Guaranteed
/// integral (Lemma 1) and Pareto-efficient (Theorem 1). Ignores the budget.
SelectionResult SelectContinuousPenalty(const SelectionProblem& problem,
                                        double alpha);

/// One point of the explicit (Schlosser) Pareto frontier.
struct FrontierPoint {
  uint32_t column;      // column added at this step (performance order o_i)
  double alpha;         // critical penalty at which the column enters DRAM
  double dram_bytes;    // cumulative M(x)
  double scan_cost;     // cumulative F(x)
  double objective;     // cumulative F(x) + beta * moves
};

/// The full explicit solution (Theorem 2): the performance order and the
/// cumulative Pareto-optimal prefix allocations, computed in
/// O(model build + N log N) without any solver.
struct ExplicitFrontier {
  std::vector<FrontierPoint> points;  // ascending DRAM usage
  /// Allocation for a DRAM budget: the longest frontier prefix that fits,
  /// optionally extended by the Remark-2 filling rule (columns of higher
  /// order that still fit).
  std::vector<uint8_t> AllocationFor(double budget_bytes, size_t n,
                                     bool filling,
                                     const std::vector<double>& sizes) const;
};

ExplicitFrontier ComputeExplicitFrontier(const SelectionProblem& problem);

/// Explicit solution for a budget (Theorem 2 + optional Remark-2 filling).
SelectionResult SelectExplicit(const SelectionProblem& problem,
                               bool filling = true);

/// Remark-3 greedy: repeatedly add the column maximizing additional
/// performance per additional DRAM used. For the separable linear cost model
/// the marginal gain per byte of column i is the constant -theta_i, so the
/// historical O(N^2) re-evaluation loop collapses to one sort plus a
/// fill-with-skip scan — O(N log N), which is what lets explicit selection
/// run at N = 10^6 items (Table-2 scaling).
SelectionResult SelectGreedyMarginal(const SelectionProblem& problem);

/// Solves the continuous penalty problem (5) through the dense simplex
/// (Lemma-1 validation path; small N only).
SelectionResult SelectContinuousSimplex(const SelectionProblem& problem,
                                        double alpha);

/// Solves the plain LP relaxation (4) s.t. (3) through the simplex; the
/// result may be fractional (at most one fractional column).
struct RelaxationResult {
  std::vector<double> x;
  double scan_cost = 0.0;
  double dram_bytes = 0.0;
  bool feasible = false;
};
RelaxationResult SolveRelaxationSimplex(const SelectionProblem& problem);

/// Finishes a raw allocation into a SelectionResult (cost bookkeeping).
SelectionResult FinishResult(const SelectionProblem& problem,
                             const CostModel& model,
                             std::vector<uint8_t> in_dram);

}  // namespace hytap

#endif  // HYTAP_SELECTION_SELECTORS_H_

#ifndef HYTAP_SELECTION_SELECTORS_H_
#define HYTAP_SELECTION_SELECTORS_H_

#include <cstdint>
#include <vector>

#include "selection/cost_model.h"
#include "workload/workload.h"

namespace hytap {

/// A column selection problem instance (paper §III).
struct SelectionProblem {
  const Workload* workload = nullptr;
  ScanCostParams params;
  /// DRAM budget A in bytes. Helpers accept the relative budget w instead.
  double budget_bytes = 0.0;
  /// Current allocation y (for reallocation costs, §III-D). Empty = no
  /// reallocation term (beta treated as 0).
  std::vector<uint8_t> current;
  /// Per-byte reallocation cost weight beta (>= 0).
  double beta = 0.0;
  /// Columns pinned in DRAM by the DBA (SLAs, primary keys; Fig. 2).
  std::vector<uint8_t> pinned;

  /// Budget from a relative share w of the total column bytes.
  static SelectionProblem FromRelativeBudget(const Workload& workload,
                                             ScanCostParams params, double w);
};

/// Result of a selection run.
struct SelectionResult {
  std::vector<uint8_t> in_dram;  // x
  double scan_cost = 0.0;        // F(x)
  double dram_bytes = 0.0;       // M(x)
  double objective = 0.0;        // F(x) + beta * moved bytes
  double solve_seconds = 0.0;    // wall time including cost-model build
  double model_seconds = 0.0;    // share spent building the cost model
  uint64_t solver_nodes = 0;     // B&B nodes (integer selector only)
  bool optimal = true;
};

/// Exact integer optimum of problem (2)-(3) (with optional reallocation
/// term), via branch-and-bound. This is the Pareto-efficient frontier point
/// for budget A.
SelectionResult SelectIntegerOptimal(const SelectionProblem& problem,
                                     uint64_t max_nodes = 200'000'000);

/// Optimal solution of the continuous penalty problem (5)/(6) for a fixed
/// alpha, via the per-column threshold rule (Theorem 2 cases). Guaranteed
/// integral (Lemma 1) and Pareto-efficient (Theorem 1). Ignores the budget.
SelectionResult SelectContinuousPenalty(const SelectionProblem& problem,
                                        double alpha);

/// One point of the explicit (Schlosser) Pareto frontier.
struct FrontierPoint {
  uint32_t column;      // column added at this step (performance order o_i)
  double alpha;         // critical penalty at which the column enters DRAM
  double dram_bytes;    // cumulative M(x)
  double scan_cost;     // cumulative F(x)
  double objective;     // cumulative F(x) + beta * moves
};

/// The full explicit solution (Theorem 2): the performance order and the
/// cumulative Pareto-optimal prefix allocations, computed in
/// O(model build + N log N) without any solver.
struct ExplicitFrontier {
  std::vector<FrontierPoint> points;  // ascending DRAM usage
  /// Allocation for a DRAM budget: the longest frontier prefix that fits,
  /// optionally extended by the Remark-2 filling rule (columns of higher
  /// order that still fit).
  std::vector<uint8_t> AllocationFor(double budget_bytes, size_t n,
                                     bool filling,
                                     const std::vector<double>& sizes) const;
};

ExplicitFrontier ComputeExplicitFrontier(const SelectionProblem& problem);

/// Explicit solution for a budget (Theorem 2 + optional Remark-2 filling).
SelectionResult SelectExplicit(const SelectionProblem& problem,
                               bool filling = true);

/// Remark-3 greedy: recursively add the column maximizing additional
/// performance per additional DRAM used, evaluating the cost model
/// generically (works for arbitrary cost functions).
SelectionResult SelectGreedyMarginal(const SelectionProblem& problem);

/// Solves the continuous penalty problem (5) through the dense simplex
/// (Lemma-1 validation path; small N only).
SelectionResult SelectContinuousSimplex(const SelectionProblem& problem,
                                        double alpha);

/// Solves the plain LP relaxation (4) s.t. (3) through the simplex; the
/// result may be fractional (at most one fractional column).
struct RelaxationResult {
  std::vector<double> x;
  double scan_cost = 0.0;
  double dram_bytes = 0.0;
  bool feasible = false;
};
RelaxationResult SolveRelaxationSimplex(const SelectionProblem& problem);

/// Finishes a raw allocation into a SelectionResult (cost bookkeeping).
SelectionResult FinishResult(const SelectionProblem& problem,
                             const CostModel& model,
                             std::vector<uint8_t> in_dram);

}  // namespace hytap

#endif  // HYTAP_SELECTION_SELECTORS_H_

#include "selection/reallocation.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "selection/cost_model.h"

namespace hytap {

double BetaFromMigrationWindow(double move_ns_per_byte,
                               uint64_t amortization_windows) {
  HYTAP_ASSERT(move_ns_per_byte >= 0.0, "move cost must be non-negative");
  const double horizon = double(std::max<uint64_t>(1, amortization_windows));
  return move_ns_per_byte / horizon;
}

ReallocationResult SelectWithReallocation(const SelectionProblem& problem,
                                          const ReallocationOptions& options) {
  HYTAP_ASSERT(problem.workload != nullptr, "problem needs a workload");
  HYTAP_ASSERT(problem.current.size() == problem.workload->column_count(),
               "reallocation needs the current allocation y");
  HYTAP_ASSERT(problem.beta >= 0.0, "beta must be non-negative");

  ReallocationResult result;
  if (options.use_portfolio) {
    SolverPortfolio portfolio(options.portfolio);
    PortfolioResult solved = portfolio.Solve(problem);
    result.selection = std::move(solved.selection);
    result.winner = std::move(solved.winner);
    result.gap = solved.gap;
    result.deadline_hit = solved.deadline_hit;
  } else {
    result.selection = SelectExplicit(problem, /*filling=*/true);
  }

  // F(y): price staying put under the same model. The move term is zero at
  // x = y, so the plain scan cost is the full objective of the status quo.
  CostModel model(*problem.workload, problem.params);
  result.current_cost = model.ScanCost(problem.current);

  const std::vector<double>& sizes = problem.workload->column_sizes;
  for (size_t c = 0; c < problem.current.size(); ++c) {
    const bool now = problem.current[c] != 0;
    const bool want =
        c < result.selection.in_dram.size() && result.selection.in_dram[c] != 0;
    if (now == want) continue;
    ++result.planned_moves;
    result.planned_move_bytes += sizes[c];
  }
  result.improvement = result.current_cost - result.selection.objective;
  result.improvement_pct =
      result.current_cost > 0.0
          ? 100.0 * result.improvement / result.current_cost
          : 0.0;
  return result;
}

}  // namespace hytap

#include "selection/heuristics.h"

#include <algorithm>
#include <chrono>

#include "common/assert.h"

namespace hytap {

const char* HeuristicName(HeuristicKind kind) {
  switch (kind) {
    case HeuristicKind::kH1Frequency:
      return "H1-frequency";
    case HeuristicKind::kH2Selectivity:
      return "H2-selectivity";
    case HeuristicKind::kH3SelectivityPerFreq:
      return "H3-selectivity/frequency";
  }
  return "unknown";
}

SelectionResult SelectHeuristic(const SelectionProblem& problem,
                                HeuristicKind kind) {
  const auto start = std::chrono::steady_clock::now();
  CostModel model(*problem.workload, problem.params);
  const Workload& workload = *problem.workload;
  const size_t n = workload.column_count();
  const std::vector<double> g = workload.ColumnFrequencies();

  std::vector<uint32_t> order;
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (g[i] > 0.0) order.push_back(static_cast<uint32_t>(i));
  }
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    switch (kind) {
      case HeuristicKind::kH1Frequency:
        return g[a] > g[b];
      case HeuristicKind::kH2Selectivity:
        return workload.selectivities[a] < workload.selectivities[b];
      case HeuristicKind::kH3SelectivityPerFreq:
        return workload.selectivities[a] / g[a] <
               workload.selectivities[b] / g[b];
    }
    HYTAP_UNREACHABLE("invalid heuristic kind");
  });

  std::vector<uint8_t> in_dram(n, 0);
  double used = 0.0;
  if (!problem.pinned.empty()) {
    for (size_t i = 0; i < n; ++i) {
      if (problem.pinned[i]) {
        in_dram[i] = 1;
        used += workload.column_sizes[i];
      }
    }
  }
  for (uint32_t c : order) {
    if (in_dram[c]) continue;
    const double a = workload.column_sizes[c];
    // Filling rule: skip what does not fit, keep trying later columns.
    if (used + a <= problem.budget_bytes + 1e-9) {
      in_dram[c] = 1;
      used += a;
    }
  }
  SelectionResult result = FinishResult(problem, model, std::move(in_dram));
  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace hytap

#include "selection/calibration.h"

#include "common/metrics.h"
#include "common/types.h"

namespace hytap {

namespace {

/// Residual-ratio buckets in percent: 100 = the reference parameters
/// predicted the observed time exactly; <100 = model overestimates, >100 =
/// model underestimates.
std::vector<uint64_t> ResidualRatioBuckets() {
  return {10, 25, 50, 75, 90, 100, 110, 125, 150, 200, 400, 1000};
}

/// Registry handles resolved once; updates gated on HYTAP_METRICS.
struct CalibrationMetrics {
  Counter* samples;
  HistogramMetric* dram_ratio_pct;
  HistogramMetric* secondary_ratio_pct;
  Gauge* fitted_c_mm_milli;
  Gauge* fitted_c_ss_milli;

  static CalibrationMetrics& Get() {
    static CalibrationMetrics metrics;
    return metrics;
  }

 private:
  CalibrationMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    samples = registry.GetCounter("hytap_calibration_samples_total");
    dram_ratio_pct =
        registry.GetHistogram("hytap_calibration_residual_ratio_pct_dram",
                              ResidualRatioBuckets());
    secondary_ratio_pct = registry.GetHistogram(
        "hytap_calibration_residual_ratio_pct_secondary",
        ResidualRatioBuckets());
    fitted_c_mm_milli = registry.GetGauge("hytap_calibration_c_mm_milli");
    fitted_c_ss_milli = registry.GetGauge("hytap_calibration_c_ss_milli");
  }
};

}  // namespace

CostCalibrator::CostCalibrator(ScanCostParams reference)
    : reference_(reference) {}

void CostCalibrator::Observe(const QueryObservation& observation) {
  // Secondary bytes streamed = pages actually read from the device (cache
  // hits cost DRAM touches, not device time, and the scan-cost model prices
  // the device stream). DRAM bytes/ns come from the MRC scan steps only —
  // the bandwidth-shaped share of the query that c_mm models; probe and
  // materialization touches are per-row costs outside the model.
  const uint64_t ss_bytes = observation.page_reads * kPageSize;
  double dram_ratio_pct = 0.0;
  double ss_ratio_pct = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++sample_count_;
    if (observation.mm_bytes > 0) {
      dram_.observed_ns += observation.mm_scan_ns;
      dram_.bytes += observation.mm_bytes;
      ++dram_.samples;
      const double predicted = reference_.c_mm * double(observation.mm_bytes);
      if (predicted > 0.0) {
        dram_ratio_pct = 100.0 * double(observation.mm_scan_ns) / predicted;
      }
    }
    if (ss_bytes > 0) {
      secondary_.observed_ns += observation.device_ns;
      secondary_.bytes += ss_bytes;
      ++secondary_.samples;
      const double predicted = reference_.c_ss * double(ss_bytes);
      if (predicted > 0.0) {
        ss_ratio_pct = 100.0 * double(observation.device_ns) / predicted;
      }
    }
  }
  CalibrationMetrics& metrics = CalibrationMetrics::Get();
  metrics.samples->Add();
  if (dram_ratio_pct > 0.0) {
    metrics.dram_ratio_pct->Observe(uint64_t(dram_ratio_pct + 0.5));
  }
  if (ss_ratio_pct > 0.0) {
    metrics.secondary_ratio_pct->Observe(uint64_t(ss_ratio_pct + 0.5));
  }
  const ScanCostParams fitted = Fitted();
  metrics.fitted_c_mm_milli->Set(int64_t(fitted.c_mm * 1000.0 + 0.5));
  metrics.fitted_c_ss_milli->Set(int64_t(fitted.c_ss * 1000.0 + 0.5));
}

ScanCostParams CostCalibrator::reference() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reference_;
}

void CostCalibrator::set_reference(ScanCostParams reference) {
  std::lock_guard<std::mutex> lock(mutex_);
  reference_ = reference;
}

ScanCostParams CostCalibrator::Fitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ScanCostParams fitted;
  fitted.c_mm = dram_.NsPerByte(reference_.c_mm);
  fitted.c_ss = secondary_.NsPerByte(reference_.c_ss);
  return fitted;
}

uint64_t CostCalibrator::sample_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sample_count_;
}

TierCalibration CostCalibrator::dram() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dram_;
}

TierCalibration CostCalibrator::secondary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return secondary_;
}

double CostCalibrator::DramResidualRatio() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const double predicted = reference_.c_mm * double(dram_.bytes);
  return predicted > 0.0 ? double(dram_.observed_ns) / predicted : 0.0;
}

double CostCalibrator::SecondaryResidualRatio() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const double predicted = reference_.c_ss * double(secondary_.bytes);
  return predicted > 0.0 ? double(secondary_.observed_ns) / predicted : 0.0;
}

void CostCalibrator::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  dram_ = TierCalibration();
  secondary_ = TierCalibration();
  sample_count_ = 0;
}

}  // namespace hytap

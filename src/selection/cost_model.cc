#include "selection/cost_model.h"

#include <algorithm>

#include "common/assert.h"

namespace hytap {

CostModel::CostModel(const Workload& workload, ScanCostParams params,
                     bool selection_interaction)
    : workload_(&workload),
      params_(params),
      selection_interaction_(selection_interaction) {
  HYTAP_ASSERT(params.c_mm > 0.0 && params.c_ss > 0.0,
               "cost parameters must be positive");
  workload.Check();
  const size_t n = workload.column_count();
  weighted_mass_.assign(n, 0.0);

  // For each query, order its columns by ascending selectivity (ties by
  // index: a fixed deterministic execution order) and accumulate the
  // discounted access mass b_j * a-independent D_{j,i} onto each column.
  std::vector<uint32_t> cols;
  for (const QueryTemplate& q : workload.queries) {
    cols.assign(q.columns.begin(), q.columns.end());
    std::sort(cols.begin(), cols.end(), [&](uint32_t a, uint32_t b) {
      const double sa = workload.selectivities[a];
      const double sb = workload.selectivities[b];
      if (sa != sb) return sa < sb;
      return a < b;
    });
    double discount = 1.0;
    for (uint32_t c : cols) {
      weighted_mass_[c] += q.frequency * discount;
      if (selection_interaction_) discount *= workload.selectivities[c];
    }
  }

  s_coeff_.assign(n, 0.0);
  all_dram_cost_ = 0.0;
  all_secondary_cost_ = 0.0;
  total_bytes_ = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double accessed = workload.column_sizes[i] * weighted_mass_[i];
    s_coeff_[i] = (params_.c_mm - params_.c_ss) * weighted_mass_[i];
    all_dram_cost_ += params_.c_mm * accessed;
    all_secondary_cost_ += params_.c_ss * accessed;
    total_bytes_ += workload.column_sizes[i];
  }
}

double CostModel::ScanCost(const std::vector<uint8_t>& in_dram) const {
  HYTAP_ASSERT(in_dram.size() == workload_->column_count(),
               "allocation arity mismatch");
  double cost = all_secondary_cost_;
  for (size_t i = 0; i < in_dram.size(); ++i) {
    if (in_dram[i]) cost += workload_->column_sizes[i] * s_coeff_[i];
  }
  return cost;
}

double CostModel::ScanCostContinuous(const std::vector<double>& x) const {
  HYTAP_ASSERT(x.size() == workload_->column_count(),
               "allocation arity mismatch");
  double cost = all_secondary_cost_;
  for (size_t i = 0; i < x.size(); ++i) {
    cost += x[i] * workload_->column_sizes[i] * s_coeff_[i];
  }
  return cost;
}

double CostModel::MemoryUsed(const std::vector<uint8_t>& in_dram) const {
  HYTAP_ASSERT(in_dram.size() == workload_->column_count(),
               "allocation arity mismatch");
  double bytes = 0.0;
  for (size_t i = 0; i < in_dram.size(); ++i) {
    if (in_dram[i]) bytes += workload_->column_sizes[i];
  }
  return bytes;
}

}  // namespace hytap

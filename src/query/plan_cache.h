#ifndef HYTAP_QUERY_PLAN_CACHE_H_
#define HYTAP_QUERY_PLAN_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "query/predicate.h"
#include "storage/table.h"
#include "workload/workload.h"
#include "workload/workload_monitor.h"

namespace hytap {

/// Per-template statistics: execution count (b_j) plus observed-selectivity
/// accumulators aligned with the template's (sorted) column set.
struct TemplateStats {
  uint64_t count = 0;
  /// Sum of observed per-column selectivities and how many step samples
  /// contributed, indexed like the template key. Empty until the first
  /// RecordObserved (plain Record carries no measurements).
  std::vector<double> selectivity_sum;
  std::vector<uint64_t> selectivity_samples;
};

/// Records executed query templates for workload-driven column selection
/// (paper §I-B: "We separate attributes ... by analyzing the database's plan
/// cache"). A template is identified by the set of filtered columns; the
/// cache counts occurrences (b_j) and, when the workload monitor feeds it
/// observations, accumulates measured per-column selectivities so
/// ToWorkload() can use observed s_i instead of table-static estimates.
///
/// Thread-safe: recording and the exporting readers serialize on an internal
/// mutex, so concurrent serving sessions can record while a re-tiering pass
/// exports the workload. `templates()` is the one lock-free accessor — it
/// hands out a reference, so its callers must be quiesced (no concurrent
/// recording).
class PlanCache {
 public:
  PlanCache() = default;

  /// Records one execution of `query` (counts only).
  void Record(const Query& query);

  /// Records one execution together with its observation: counts plus the
  /// measured per-column selectivities of the executed predicate steps.
  void RecordObserved(const Query& query, const QueryObservation& obs);

  /// Number of distinct templates.
  size_t template_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return templates_.size();
  }
  /// Total recorded executions.
  uint64_t total_executions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  /// Weighted occurrence count g_i per column of `table`.
  std::vector<double> ColumnFrequencies(const Table& table) const;

  /// Exports the recorded workload for the selection model, taking column
  /// sizes a_i from `table` and selectivities s_i from observed-step sample
  /// means where available (falling back to the table-static estimate).
  Workload ToWorkload(const Table& table) const;

  /// Raw per-template statistics (key = sorted filtered-column set). Used by
  /// the workload-history / forecasting layer. Unlocked: callers must be
  /// quiesced (no serving sessions recording concurrently).
  const std::map<std::vector<ColumnId>, TemplateStats>& templates() const {
    return templates_;
  }

  void Clear();

 private:
  // Key: sorted, deduplicated filtered-column set.
  std::map<std::vector<ColumnId>, TemplateStats> templates_;
  uint64_t total_ = 0;
  mutable std::mutex mutex_;
};

}  // namespace hytap

#endif  // HYTAP_QUERY_PLAN_CACHE_H_

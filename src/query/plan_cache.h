#ifndef HYTAP_QUERY_PLAN_CACHE_H_
#define HYTAP_QUERY_PLAN_CACHE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "query/predicate.h"
#include "storage/table.h"
#include "workload/workload.h"

namespace hytap {

/// Records executed query templates for workload-driven column selection
/// (paper §I-B: "We separate attributes ... by analyzing the database's plan
/// cache"). A template is identified by the set of filtered columns; the
/// cache counts occurrences (b_j).
class PlanCache {
 public:
  PlanCache() = default;

  /// Records one execution of `query`.
  void Record(const Query& query);

  /// Number of distinct templates.
  size_t template_count() const { return counts_.size(); }
  /// Total recorded executions.
  uint64_t total_executions() const { return total_; }

  /// Weighted occurrence count g_i per column of `table`.
  std::vector<double> ColumnFrequencies(const Table& table) const;

  /// Exports the recorded workload for the selection model, taking column
  /// sizes a_i and selectivities s_i from `table`.
  Workload ToWorkload(const Table& table) const;

  /// Raw per-template counts (key = sorted filtered-column set). Used by the
  /// workload-history / forecasting layer.
  const std::map<std::vector<ColumnId>, uint64_t>& templates() const {
    return counts_;
  }

  void Clear();

 private:
  // Key: sorted, deduplicated filtered-column set.
  std::map<std::vector<ColumnId>, uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace hytap

#endif  // HYTAP_QUERY_PLAN_CACHE_H_

#ifndef HYTAP_QUERY_SCAN_H_
#define HYTAP_QUERY_SCAN_H_

#include "query/predicate.h"
#include "storage/sscg.h"
#include "storage/table.h"

namespace hytap {

/// Low-level scan/probe primitives over a table's main and delta partitions,
/// with simulated cost accounting. Positions are partition-local.

/// Full scan of a main-partition column (MRC vectorized scan or SSCG
/// sequential page scan, depending on placement). `threads` real workers
/// split the scan into morsels; the same value feeds the simulated cost
/// model as the device queue depth. An SSCG page error (kUnavailable /
/// kDataLoss) is returned with `out` untouched; DRAM scans cannot fail.
///
/// While `ZoneMapsEnabled()`, data skipping applies: MRC morsels whose zone
/// maps exclude the predicate are never decoded (io->morsels_pruned) and
/// their DRAM cost is not charged; SSCG pages whose slot synopsis excludes
/// it are never fetched (io->pages_pruned). A non-null `restrict_to`
/// (ascending candidate positions, SSCG placement only) further limits the
/// sequential pass to the page span covered by the candidates — the
/// executor's candidate-restricted rescan on the scan side of the
/// scan-vs-probe switch. A non-null `buffers` overrides the table's shared
/// page cache (session-private caches of the serving layer); SSCG fetches go
/// through it.
Status ScanMainColumn(const Table& table, ColumnId column,
                      const Predicate& pred, uint32_t threads,
                      PositionList* out, IoStats* io,
                      const PositionList* restrict_to = nullptr,
                      BufferManager* buffers = nullptr);

/// Morsel-parallel driver of the MRC vectorized scan: splits
/// [0, column.size()) into kScanMorselRows morsels executed by up to
/// `threads` workers and appends the per-morsel position lists to `out` in
/// ascending order — byte-identical to a serial ScanBetween. Morsels whose
/// zone maps exclude [lo, hi] are skipped before decode and counted in
/// `io->morsels_pruned` (zero while HYTAP_ZONE_MAPS is off). Exposed for
/// benchmarks; adds no simulated cost.
void ParallelScanColumn(const AbstractColumn& column, const Value* lo,
                        const Value* hi, uint32_t threads, PositionList* out,
                        IoStats* io = nullptr);

/// Probes main-partition candidate positions (ascending) against a column.
/// An SSCG page error is returned with `out` untouched. `buffers` as in
/// ScanMainColumn.
Status ProbeMainColumn(const Table& table, ColumnId column,
                       const Predicate& pred, const PositionList& in,
                       uint32_t queue_depth, PositionList* out, IoStats* io,
                       BufferManager* buffers = nullptr);

/// Full scan of a delta-partition column (always DRAM). `limit` bounds the
/// scan to the first `limit` delta rows — the serving layer pins it to the
/// delta size at submit time so a query's scan span (and DRAM cost) is
/// independent of inserts committed while it was queued; rows beyond the
/// bound are invisible to the query's snapshot anyway.
void ScanDeltaColumn(const Table& table, ColumnId column,
                     const Predicate& pred, PositionList* out, IoStats* io,
                     size_t limit = SIZE_MAX);

/// Probes delta-partition candidates.
void ProbeDeltaColumn(const Table& table, ColumnId column,
                      const Predicate& pred, const PositionList& in,
                      PositionList* out, IoStats* io);

}  // namespace hytap

#endif  // HYTAP_QUERY_SCAN_H_

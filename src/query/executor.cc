#include "query/executor.h"

#include <algorithm>
#include <optional>

#include "common/assert.h"
#include "common/thread_pool.h"
#include "query/scan.h"

namespace hytap {

QueryExecutor::QueryExecutor(const Table* table, double probe_threshold)
    : table_(table), probe_threshold_(probe_threshold) {
  HYTAP_ASSERT(table != nullptr, "executor requires a table");
}

double QueryExecutor::EstimateSelectivity(const Predicate& pred) const {
  // Histogram-backed estimate when statistics exist (range-aware); otherwise
  // the 1/distinct default (paper §II-B footnote).
  if (const TableStatistics* stats = table_->statistics()) {
    return stats->EstimateSelectivity(pred.column, pred.LoPtr(),
                                      pred.HiPtr());
  }
  return table_->SelectivityEstimate(pred.column);
}

std::vector<size_t> QueryExecutor::PredicateOrder(const Query& query) const {
  std::vector<size_t> order(query.predicates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const ColumnId ca = query.predicates[a].column;
    const ColumnId cb = query.predicates[b].column;
    const bool dram_a = table_->location(ca) == ColumnLocation::kDram;
    const bool dram_b = table_->location(cb) == ColumnLocation::kDram;
    if (dram_a != dram_b) return dram_a;  // DRAM-resident first
    const double sa = EstimateSelectivity(query.predicates[a]);
    const double sb = EstimateSelectivity(query.predicates[b]);
    if (sa != sb) return sa < sb;  // most restrictive first
    return ca < cb;
  });
  return order;
}

namespace {

bool IsEquality(const Predicate& pred) {
  return pred.lo.has_value() && pred.hi.has_value() && *pred.lo == *pred.hi;
}

/// Simulated DRAM cost of one B+-tree index traversal plus materializing
/// `matches` row ids.
uint64_t IndexLookupCostNs(size_t indexed_rows, size_t matches) {
  size_t height = 1;
  for (size_t n = indexed_rows; n > 64; n /= 64) ++height;
  return (height * 2 + matches) * kDramTouchNs;
}

}  // namespace

// Index selection (paper §II-B: "filters are executed using indices if
// existing; afterwards, the remaining filters are sorted ..."): prefer a
// composite index covered by equality predicates, then a single-column index
// on the most selective indexed predicate. Returns the indices of the
// consumed predicates via `used`.
const MainIndex* QueryExecutor::PickIndex(const Query& query,
                                          std::vector<size_t>* used) const {
  // Composite: all key parts present as equalities.
  std::vector<ColumnId> equality_columns;
  for (const Predicate& pred : query.predicates) {
    if (IsEquality(pred)) equality_columns.push_back(pred.column);
  }
  if (const MainIndex* composite =
          table_->FindCompositeIndex(equality_columns)) {
    for (ColumnId key_part : composite->columns()) {
      for (size_t i = 0; i < query.predicates.size(); ++i) {
        if (query.predicates[i].column == key_part &&
            IsEquality(query.predicates[i])) {
          used->push_back(i);
          break;
        }
      }
    }
    return composite;
  }
  // Single-column: most selective indexed predicate first.
  const MainIndex* best = nullptr;
  double best_selectivity = 2.0;
  size_t best_predicate = 0;
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    const MainIndex* index = table_->FindIndex(query.predicates[i].column);
    if (index == nullptr) continue;
    // Histogram-backed, predicate-aware estimate: a wide range over a
    // low-cardinality index should lose to a tight range over a wide one,
    // which the static per-column 1/distinct default cannot express.
    const double s = EstimateSelectivity(query.predicates[i]);
    if (s < best_selectivity) {
      best_selectivity = s;
      best = index;
      best_predicate = i;
    }
  }
  if (best != nullptr) used->push_back(best_predicate);
  return best;
}

Status QueryExecutor::ExecuteMain(const Transaction& txn, const Query& query,
                                  const std::vector<size_t>& order,
                                  uint32_t threads,
                                  QueryResult* result) const {
  const size_t main_rows = table_->main_row_count();
  if (main_rows == 0) return Status::Ok();
  PositionList positions;
  bool first = true;
  // Index access path.
  std::vector<size_t> used_predicates;
  if (!query.predicates.empty()) {
    if (const MainIndex* index = PickIndex(query, &used_predicates)) {
      if (index->columns().size() > 1) {
        Row key(index->columns().size());
        for (size_t k = 0; k < index->columns().size(); ++k) {
          key[k] = *query.predicates[used_predicates[k]].lo;
        }
        positions = index->Lookup(key);
      } else {
        const Predicate& pred = query.predicates[used_predicates[0]];
        if (IsEquality(pred)) {
          positions = index->Lookup({*pred.lo});
        } else {
          index->RangeLookup(pred.LoPtr(), pred.HiPtr(), &positions);
        }
      }
      result->io.dram_ns += IndexLookupCostNs(index->size(),
                                              positions.size());
      result->candidate_trace.push_back(positions.size());
      first = false;
    }
  }
  for (size_t idx : order) {
    if (std::find(used_predicates.begin(), used_predicates.end(), idx) !=
        used_predicates.end()) {
      continue;  // already answered by the index
    }
    const Predicate& pred = query.predicates[idx];
    if (first) {
      Status status = ScanMainColumn(*table_, pred.column, pred, threads,
                                     &positions, &result->io);
      if (!status.ok()) return status;
      first = false;
    } else if (positions.empty()) {
      result->candidate_trace.push_back(0);
      continue;
    } else {
      const double fraction =
          static_cast<double>(positions.size()) / double(main_rows);
      PositionList next;
      if (fraction >= probe_threshold_ &&
          table_->location(pred.column) == ColumnLocation::kSecondary) {
        // Too many candidates for random page probes: sequentially scan the
        // tiered group and intersect (paper §II-B scan-vs-probe switch).
        // The rescan is restricted to the page span covered by the
        // surviving candidates — pages outside it cannot contribute to the
        // intersection.
        PositionList scanned;
        Status status = ScanMainColumn(*table_, pred.column, pred, threads,
                                       &scanned, &result->io, &positions);
        if (!status.ok()) return status;
        std::set_intersection(positions.begin(), positions.end(),
                              scanned.begin(), scanned.end(),
                              std::back_inserter(next));
      } else {
        Status status = ProbeMainColumn(*table_, pred.column, pred, positions,
                                        threads, &next, &result->io);
        if (!status.ok()) return status;
      }
      positions = std::move(next);
    }
    result->candidate_trace.push_back(positions.size());
  }
  if (query.predicates.empty()) {
    positions.resize(main_rows);
    for (RowId r = 0; r < main_rows; ++r) positions[r] = r;
  }
  // MVCC: filter invalidated main rows.
  for (RowId row : positions) {
    if (table_->IsVisible(row, txn)) result->positions.push_back(row);
  }
  return Status::Ok();
}

void QueryExecutor::ExecuteDelta(const Transaction& txn, const Query& query,
                                 const std::vector<size_t>& order,
                                 QueryResult* result) const {
  const size_t delta_rows = table_->delta_row_count();
  if (delta_rows == 0) return;
  PositionList positions;
  bool first = true;
  for (size_t idx : order) {
    const Predicate& pred = query.predicates[idx];
    if (first) {
      ScanDeltaColumn(*table_, pred.column, pred, &positions, &result->io);
      first = false;
    } else if (positions.empty()) {
      break;
    } else {
      PositionList next;
      ProbeDeltaColumn(*table_, pred.column, pred, positions, &next,
                       &result->io);
      positions = std::move(next);
    }
  }
  if (query.predicates.empty()) {
    positions.resize(delta_rows);
    for (RowId r = 0; r < delta_rows; ++r) positions[r] = r;
  }
  const size_t main_rows = table_->main_row_count();
  for (RowId local : positions) {
    const RowId global = main_rows + local;
    if (table_->IsVisible(global, txn)) result->positions.push_back(global);
  }
}

namespace {

double NumericAsDouble(const Value& v) {
  switch (v.type()) {
    case DataType::kInt32:
      return double(v.AsInt32());
    case DataType::kInt64:
      return double(v.AsInt64());
    case DataType::kFloat:
      return double(v.AsFloat());
    case DataType::kDouble:
      return v.AsDouble();
    case DataType::kString:
      HYTAP_UNREACHABLE("SUM over a string column");
  }
  HYTAP_UNREACHABLE("invalid DataType");
}

}  // namespace

Status QueryExecutor::Materialize(const Query& query, uint32_t threads,
                                  QueryResult* result) const {
  if (query.projections.empty() && query.aggregates.empty()) {
    return Status::Ok();
  }
  const size_t main_rows = table_->main_row_count();
  // Fetch set: projections first, then any extra aggregate inputs, so
  // SSCG attributes of one row still share a single page access
  // (paper §II-A: tuple-centric SSCG locality).
  std::vector<ColumnId> fetch_cols = query.projections;
  std::vector<size_t> aggregate_slot(query.aggregates.size(), SIZE_MAX);
  for (size_t a = 0; a < query.aggregates.size(); ++a) {
    const Aggregate& agg = query.aggregates[a];
    if (agg.kind == Aggregate::Kind::kCount) continue;
    auto it = std::find(fetch_cols.begin(), fetch_cols.end(), agg.column);
    if (it == fetch_cols.end()) {
      aggregate_slot[a] = fetch_cols.size();
      fetch_cols.push_back(agg.column);
    } else {
      aggregate_slot[a] = size_t(it - fetch_cols.begin());
    }
  }

  bool any_sscg = false;
  for (ColumnId c : fetch_cols) {
    any_sscg |= table_->location(c) == ColumnLocation::kSecondary;
  }

  const PositionList& positions = result->positions;
  const Sscg* sscg = table_->sscg();

  // Device/cache accounting pass, single-threaded and in position order:
  // fetches each qualifying tuple's group page through the buffer manager
  // exactly as the serial reconstruction did, so hit/miss sequences, the
  // device model's jitter draws, and the fault-injection schedule are
  // identical for any worker count. A page failure aborts here, before any
  // worker materializes a value — the first failing position wins
  // deterministically.
  if (any_sscg) {
    HYTAP_ASSERT(sscg != nullptr, "SSCG projection without SSCG");
    for (RowId row : positions) {
      if (row < main_rows) {
        Status status = sscg->AccountTupleFetch(row, table_->buffers(),
                                                threads, &result->io);
        if (!status.ok()) return status;
      }
    }
  }

  // Materialization pass: morsel-parallel over qualifying positions. SSCG
  // attributes come from raw pages (already cached and accounted above);
  // MRC/delta attributes cost fixed DRAM touches accumulated per worker and
  // reduced below — sums of constants, so the total matches serial
  // execution regardless of the morsel partition.
  std::vector<Row> fetched_all(positions.size());
  const size_t morsels =
      ThreadPool::MorselCount(0, positions.size(), kMaterializeMorselRows);
  std::vector<IoStats> worker_io(morsels);
  std::vector<Status> worker_status(morsels);
  ThreadPool::Global().ParallelFor(
      0, positions.size(), kMaterializeMorselRows, threads,
      [&](size_t m, size_t index_begin, size_t index_end) {
        IoStats& local_io = worker_io[m];
        for (size_t i = index_begin; i < index_end; ++i) {
          const RowId row = positions[i];
          Row fetched(fetch_cols.size());
          if (row < main_rows && any_sscg) {
            Row group = sscg->RawRow(row, *table_->store());
            for (size_t p = 0; p < fetch_cols.size(); ++p) {
              const int slot = sscg->layout().SlotOf(fetch_cols[p]);
              if (slot >= 0) fetched[p] = group[static_cast<size_t>(slot)];
            }
          }
          for (size_t p = 0; p < fetch_cols.size(); ++p) {
            const ColumnId c = fetch_cols[p];
            if (row < main_rows &&
                table_->location(c) == ColumnLocation::kSecondary) {
              continue;  // already materialized from the group page
            }
            auto value = table_->GetValue(c, row, threads, &local_io);
            // DRAM/delta reads cannot fail today (SSCG pages were fetched
            // and verified in the accounting pass), but keep the morsel's
            // first error rather than asserting: the reduction below picks
            // the winner in morsel order, independent of worker count.
            if (!value.ok()) {
              worker_status[m] = value.status();
              return;
            }
            fetched[p] = std::move(*value);
          }
          fetched_all[i] = std::move(fetched);
        }
      });
  for (const IoStats& local_io : worker_io) result->io += local_io;
  for (const Status& status : worker_status) {
    if (!status.ok()) return status;
  }

  // Aggregation and row assembly, single-threaded in position order: keeps
  // floating-point accumulation order (and min/max tie-breaks) identical to
  // the serial execution.
  std::vector<double> sums(query.aggregates.size(), 0.0);
  std::vector<std::optional<Value>> best(query.aggregates.size());
  const bool keep_rows = !query.projections.empty();
  if (keep_rows) result->rows.reserve(positions.size());
  for (size_t i = 0; i < fetched_all.size(); ++i) {
    Row& fetched = fetched_all[i];
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const Aggregate& agg = query.aggregates[a];
      switch (agg.kind) {
        case Aggregate::Kind::kCount:
          break;  // computed from positions below
        case Aggregate::Kind::kSum:
          sums[a] += NumericAsDouble(fetched[aggregate_slot[a]]);
          break;
        case Aggregate::Kind::kMin: {
          const Value& v = fetched[aggregate_slot[a]];
          if (!best[a].has_value() || v < *best[a]) best[a] = v;
          break;
        }
        case Aggregate::Kind::kMax: {
          const Value& v = fetched[aggregate_slot[a]];
          if (!best[a].has_value() || *best[a] < v) best[a] = v;
          break;
        }
      }
    }
    if (keep_rows) {
      fetched.resize(query.projections.size());
      result->rows.push_back(std::move(fetched));
    }
  }
  result->aggregate_values.resize(query.aggregates.size());
  for (size_t a = 0; a < query.aggregates.size(); ++a) {
    switch (query.aggregates[a].kind) {
      case Aggregate::Kind::kCount:
        result->aggregate_values[a] =
            Value(int64_t(result->positions.size()));
        break;
      case Aggregate::Kind::kSum:
        result->aggregate_values[a] = Value(sums[a]);
        break;
      case Aggregate::Kind::kMin:
      case Aggregate::Kind::kMax:
        result->aggregate_values[a] = best[a].value_or(Value());
        break;
    }
  }
  return Status::Ok();
}

QueryResult QueryExecutor::Execute(const Transaction& txn, const Query& query,
                                   uint32_t threads) const {
  HYTAP_ASSERT(threads >= 1, "thread count must be >= 1");
  QueryResult result;
  const std::vector<size_t> order = PredicateOrder(query);
  result.status = ExecuteMain(txn, query, order, threads, &result);
  if (result.status.ok()) {
    ExecuteDelta(txn, query, order, &result);
    result.status = Materialize(query, threads, &result);
  }
  if (!result.status.ok()) {
    // Degrade cleanly: no partial positions, rows or aggregates ever leave
    // the executor. The accrued `io` and `status` are the whole result.
    result.positions.clear();
    result.rows.clear();
    result.aggregate_values.clear();
    result.candidate_trace.clear();
  }
  return result;
}

}  // namespace hytap

#include "query/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>

#include "common/assert.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "query/scan.h"

namespace hytap {

namespace {

/// Registry handles resolved once; updates are gated on the HYTAP_METRICS
/// knob.
struct QueryMetrics {
  Counter* queries;
  Counter* query_failures;
  Counter* index_lookups;
  Counter* probe_steps;
  Counter* scan_to_probe_switches;
  Counter* rescan_steps;
  HistogramMetric* query_sim_ns;
  HistogramMetric* query_result_rows;

  static QueryMetrics& Get() {
    static QueryMetrics metrics;
    return metrics;
  }

 private:
  QueryMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    queries = registry.GetCounter("hytap_query_executions_total");
    query_failures = registry.GetCounter("hytap_query_failures_total");
    index_lookups = registry.GetCounter("hytap_query_index_lookups_total");
    probe_steps = registry.GetCounter("hytap_query_probe_steps_total");
    scan_to_probe_switches =
        registry.GetCounter("hytap_query_scan_to_probe_switches_total");
    rescan_steps = registry.GetCounter("hytap_query_rescan_steps_total");
    query_sim_ns = registry.GetHistogram("hytap_query_simulated_ns",
                                         DurationNsBuckets());
    query_result_rows =
        registry.GetHistogram("hytap_query_result_rows", RowCountBuckets());
  }
};

/// Steady-clock ns for TraceSpan::wall_ns (only sampled while tracing).
uint64_t WallClockNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// Starts a child span of `parent` (no-op when `parent` is null) and, on
/// Finish, stamps the simulated/wall deltas, annotates the IoStats counter
/// deltas accrued during the step, and moves the child into the parent.
/// The child is a local value until Finish — never a pointer into the
/// parent's `children` vector, which reallocates.
/// Sums an integer annotation over a span subtree (absent = 0).
uint64_t SubtreeAnnotationSum(const TraceSpan& span, const char* key) {
  uint64_t total = 0;
  const std::string& value = span.Annotation(key);
  if (!value.empty()) total += std::strtoull(value.c_str(), nullptr, 10);
  for (const TraceSpan& child : span.children) {
    total += SubtreeAnnotationSum(child, key);
  }
  return total;
}

class ScopedSpan {
 public:
  ScopedSpan(TraceSpan* parent, const char* name, const IoStats* io)
      : parent_(parent), io_(io) {
    if (parent_ == nullptr) return;
    span_.name = name;
    io_before_ = *io_;
    wall_before_ = WallClockNs();
  }

  /// Finishes on scope exit so early `return status` paths still record the
  /// (partial) step; an explicit Finish() earlier wins and makes this a
  /// no-op.
  ~ScopedSpan() { Finish(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return parent_ != nullptr; }
  /// The span under construction (null while inactive) — passed down as the
  /// parent for nested steps. Valid until Finish().
  TraceSpan* span() { return parent_ != nullptr ? &span_ : nullptr; }
  void Annotate(std::string key, std::string value) {
    if (parent_ != nullptr) span_.Annotate(std::move(key), std::move(value));
  }

  void Finish() {
    if (parent_ == nullptr) return;
    span_.simulated_ns = io_->TotalNs() - io_before_.TotalNs();
    span_.wall_ns = WallClockNs() - wall_before_;
    const IoStats& after = *io_;
    // Counter annotations are exclusive (self-only): nested steps already
    // annotated their share, so subtract each child subtree. The per-span
    // values then partition the query's IoStats — summing them over the
    // whole tree reproduces QueryResult::io exactly.
    auto delta = [&](const char* key, uint64_t before_v, uint64_t after_v) {
      uint64_t d = after_v - before_v;
      for (const TraceSpan& child : span_.children) {
        d -= SubtreeAnnotationSum(child, key);
      }
      if (d != 0) span_.Annotate(key, std::to_string(d));
    };
    delta("page_reads", io_before_.page_reads, after.page_reads);
    delta("cache_hits", io_before_.cache_hits, after.cache_hits);
    delta("retries", io_before_.retries, after.retries);
    delta("morsels_pruned", io_before_.morsels_pruned, after.morsels_pruned);
    delta("pages_pruned", io_before_.pages_pruned, after.pages_pruned);
    delta("checksum_failures", io_before_.checksum_failures,
          after.checksum_failures);
    delta("quarantined_pages", io_before_.quarantined_pages,
          after.quarantined_pages);
    parent_->children.push_back(std::move(span_));
    parent_ = nullptr;
  }

 private:
  TraceSpan* parent_;
  const IoStats* io_;
  TraceSpan span_;
  IoStats io_before_;
  uint64_t wall_before_ = 0;
};

/// Standard per-predicate-step annotations: which column, the planner's
/// estimated selectivity vs. the observed one (survivors / candidates), and
/// the raw candidate counts.
void AnnotatePredicateStep(ScopedSpan& span, const std::string& column,
                           double est_selectivity, size_t candidates_in,
                           size_t candidates_out) {
  if (!span.active()) return;
  span.Annotate("column", column);
  span.Annotate("est_selectivity", TraceFormatDouble(est_selectivity));
  span.Annotate("actual_selectivity",
                TraceFormatDouble(candidates_in == 0
                                      ? 0.0
                                      : double(candidates_out) /
                                            double(candidates_in)));
  span.Annotate("candidates_in", std::to_string(candidates_in));
  span.Annotate("candidates_out", std::to_string(candidates_out));
}

/// Appends one executed predicate step to the query observation (no-op when
/// `obs` is null, i.e. no monitor attached or the knob is off). Like trace
/// spans, reads only finished, deterministic engine state.
void RecordStep(QueryObservation* obs, ColumnId column, StepKind kind,
                uint64_t candidates_in, uint64_t candidates_out,
                double est_selectivity, const IoStats& before,
                const IoStats& after, uint64_t mm_bytes) {
  if (obs == nullptr) return;
  StepObservation step;
  step.column = column;
  step.kind = kind;
  step.candidates_in = candidates_in;
  step.candidates_out = candidates_out;
  step.estimated_selectivity = est_selectivity;
  step.observed_selectivity =
      candidates_in == 0 ? 0.0
                         : double(candidates_out) / double(candidates_in);
  step.device_ns = after.device_ns - before.device_ns;
  step.dram_ns = after.dram_ns - before.dram_ns;
  step.page_reads = after.page_reads - before.page_reads;
  step.cache_hits = after.cache_hits - before.cache_hits;
  step.mm_bytes = mm_bytes;
  obs->steps.push_back(step);
}

}  // namespace

QueryExecutor::QueryExecutor(const Table* table, double probe_threshold)
    : table_(table), probe_threshold_(probe_threshold) {
  HYTAP_ASSERT(table != nullptr, "executor requires a table");
}

double QueryExecutor::EstimateSelectivity(const Predicate& pred) const {
  // Histogram-backed estimate when statistics exist (range-aware); otherwise
  // the 1/distinct default (paper §II-B footnote).
  if (const TableStatistics* stats = table_->statistics()) {
    return stats->EstimateSelectivity(pred.column, pred.LoPtr(),
                                      pred.HiPtr());
  }
  return table_->SelectivityEstimate(pred.column);
}

std::vector<size_t> QueryExecutor::PredicateOrder(const Query& query) const {
  std::vector<size_t> order(query.predicates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const ColumnId ca = query.predicates[a].column;
    const ColumnId cb = query.predicates[b].column;
    const bool dram_a = table_->location(ca) == ColumnLocation::kDram;
    const bool dram_b = table_->location(cb) == ColumnLocation::kDram;
    if (dram_a != dram_b) return dram_a;  // DRAM-resident first
    const double sa = EstimateSelectivity(query.predicates[a]);
    const double sb = EstimateSelectivity(query.predicates[b]);
    if (sa != sb) return sa < sb;  // most restrictive first
    return ca < cb;
  });
  return order;
}

namespace {

bool IsEquality(const Predicate& pred) {
  return pred.lo.has_value() && pred.hi.has_value() && *pred.lo == *pred.hi;
}

/// Cancellation poll — called only at serial control points (between
/// predicate steps, between accounting batches), never inside worker
/// morsels, so a cancelled query aborts at a deterministic step boundary.
bool StopRequested(const ExecOptions& opts) {
  return opts.stop != nullptr && opts.stop->load(std::memory_order_relaxed);
}

/// Simulated DRAM cost of one B+-tree index traversal plus materializing
/// `matches` row ids.
uint64_t IndexLookupCostNs(size_t indexed_rows, size_t matches) {
  size_t height = 1;
  for (size_t n = indexed_rows; n > 64; n /= 64) ++height;
  return (height * 2 + matches) * kDramTouchNs;
}

}  // namespace

// Index selection (paper §II-B: "filters are executed using indices if
// existing; afterwards, the remaining filters are sorted ..."): prefer a
// composite index covered by equality predicates, then a single-column index
// on the most selective indexed predicate. Returns the indices of the
// consumed predicates via `used`.
const MainIndex* QueryExecutor::PickIndex(const Query& query,
                                          std::vector<size_t>* used) const {
  // Composite: all key parts present as equalities.
  std::vector<ColumnId> equality_columns;
  for (const Predicate& pred : query.predicates) {
    if (IsEquality(pred)) equality_columns.push_back(pred.column);
  }
  if (const MainIndex* composite =
          table_->FindCompositeIndex(equality_columns)) {
    for (ColumnId key_part : composite->columns()) {
      for (size_t i = 0; i < query.predicates.size(); ++i) {
        if (query.predicates[i].column == key_part &&
            IsEquality(query.predicates[i])) {
          used->push_back(i);
          break;
        }
      }
    }
    return composite;
  }
  // Single-column: most selective indexed predicate first.
  const MainIndex* best = nullptr;
  double best_selectivity = 2.0;
  size_t best_predicate = 0;
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    const MainIndex* index = table_->FindIndex(query.predicates[i].column);
    if (index == nullptr) continue;
    // Histogram-backed, predicate-aware estimate: a wide range over a
    // low-cardinality index should lose to a tight range over a wide one,
    // which the static per-column 1/distinct default cannot express.
    const double s = EstimateSelectivity(query.predicates[i]);
    if (s < best_selectivity) {
      best_selectivity = s;
      best = index;
      best_predicate = i;
    }
  }
  if (best != nullptr) used->push_back(best_predicate);
  return best;
}

Status QueryExecutor::ExecuteMain(const Transaction& txn, const Query& query,
                                  const std::vector<size_t>& order,
                                  const ExecOptions& opts, QueryResult* result,
                                  TraceSpan* trace,
                                  QueryObservation* obs) const {
  const uint32_t threads = opts.threads;
  const size_t main_rows = table_->main_row_count();
  if (main_rows == 0) return Status::Ok();
  if (StopRequested(opts)) {
    return Status::Cancelled("query cancelled before the index step");
  }
  PositionList positions;
  bool first = true;
  IoStats obs_before;  // io snapshot at the start of the current step
  // Index access path.
  std::vector<size_t> used_predicates;
  if (!query.predicates.empty()) {
    if (const MainIndex* index = PickIndex(query, &used_predicates)) {
      if (obs != nullptr) obs_before = result->io;
      ScopedSpan span(trace, "index", &result->io);
      if (index->columns().size() > 1) {
        Row key(index->columns().size());
        for (size_t k = 0; k < index->columns().size(); ++k) {
          key[k] = *query.predicates[used_predicates[k]].lo;
        }
        positions = index->Lookup(key);
      } else {
        const Predicate& pred = query.predicates[used_predicates[0]];
        if (IsEquality(pred)) {
          positions = index->Lookup({*pred.lo});
        } else {
          index->RangeLookup(pred.LoPtr(), pred.HiPtr(), &positions);
        }
      }
      result->io.dram_ns += IndexLookupCostNs(index->size(),
                                              positions.size());
      result->candidate_trace.push_back(positions.size());
      QueryMetrics::Get().index_lookups->Add();
      if (span.active()) {
        std::string columns;
        for (ColumnId c : index->columns()) {
          if (!columns.empty()) columns += ',';
          columns += table_->schema()[c].name;
        }
        span.Annotate("columns", std::move(columns));
        span.Annotate("candidates_out", std::to_string(positions.size()));
      }
      span.Finish();
      // Single-column index lookups sample that column's selectivity;
      // composite lookups answer several predicates at once, so their joint
      // selectivity is not attributable to one column and only the template
      // (filtered_columns) records them.
      if (obs != nullptr && index->columns().size() == 1) {
        const Predicate& pred = query.predicates[used_predicates[0]];
        RecordStep(obs, pred.column, StepKind::kIndex, main_rows,
                   positions.size(), EstimateSelectivity(pred), obs_before,
                   result->io, 0);
      }
      first = false;
    }
  }
  for (size_t idx : order) {
    if (std::find(used_predicates.begin(), used_predicates.end(), idx) !=
        used_predicates.end()) {
      continue;  // already answered by the index
    }
    if (StopRequested(opts)) {
      return Status::Cancelled("query cancelled between predicate steps");
    }
    const Predicate& pred = query.predicates[idx];
    const size_t candidates_in = positions.size();
    const char* step = nullptr;
    if (obs != nullptr) obs_before = result->io;
    if (first) {
      step = "scan";
      ScopedSpan span(trace, step, &result->io);
      Status status = ScanMainColumn(*table_, pred.column, pred, threads,
                                     &positions, &result->io, nullptr,
                                     opts.buffers);
      AnnotatePredicateStep(span, table_->schema()[pred.column].name,
                            span.active() ? EstimateSelectivity(pred) : 0.0,
                            main_rows, positions.size());
      span.Finish();
      if (!status.ok()) return status;
      if (obs != nullptr) {
        // Modeled DRAM bytes of an MRC scan: the bit-packed code vector
        // scaled by the surviving (unpruned) morsel fraction — mirroring the
        // dram_ns the scan charged, but denominated in bytes so the
        // calibrator can fit ns/byte independently of the reference params.
        uint64_t mm_bytes = 0;
        if (table_->location(pred.column) == ColumnLocation::kDram) {
          const AbstractColumn* mrc = table_->mrc(pred.column);
          const uint64_t bytes = mrc->MemoryUsage();
          const uint64_t morsels =
              ThreadPool::MorselCount(0, mrc->size(), kScanMorselRows);
          const uint64_t pruned =
              result->io.morsels_pruned - obs_before.morsels_pruned;
          mm_bytes = morsels == 0 ? bytes : bytes - bytes * pruned / morsels;
        }
        RecordStep(obs, pred.column, StepKind::kScan, main_rows,
                   positions.size(), EstimateSelectivity(pred), obs_before,
                   result->io, mm_bytes);
      }
      first = false;
    } else if (positions.empty()) {
      result->candidate_trace.push_back(0);
      continue;
    } else {
      const double fraction =
          static_cast<double>(positions.size()) / double(main_rows);
      PositionList next;
      const bool rescan =
          fraction >= probe_threshold_ &&
          table_->location(pred.column) == ColumnLocation::kSecondary;
      step = rescan ? "rescan" : "probe";
      ScopedSpan span(trace, step, &result->io);
      if (span.active()) {
        // The scan-vs-probe switch (paper §II-B): annotate the decision
        // inputs so EXPLAIN shows *why* this step scanned or probed.
        span.Annotate("qualifying_fraction", TraceFormatDouble(fraction));
        span.Annotate("probe_threshold", TraceFormatDouble(probe_threshold_));
        span.Annotate("decision", rescan ? "scan" : "probe");
      }
      if (rescan) {
        // Too many candidates for random page probes: sequentially scan the
        // tiered group and intersect (paper §II-B scan-vs-probe switch).
        // The rescan is restricted to the page span covered by the
        // surviving candidates — pages outside it cannot contribute to the
        // intersection.
        QueryMetrics::Get().rescan_steps->Add();
        PositionList scanned;
        Status status = ScanMainColumn(*table_, pred.column, pred, threads,
                                       &scanned, &result->io, &positions,
                                       opts.buffers);
        if (!status.ok()) {
          AnnotatePredicateStep(span, table_->schema()[pred.column].name,
                                span.active() ? EstimateSelectivity(pred)
                                              : 0.0,
                                candidates_in, 0);
          span.Finish();
          return status;
        }
        std::set_intersection(positions.begin(), positions.end(),
                              scanned.begin(), scanned.end(),
                              std::back_inserter(next));
      } else {
        QueryMetrics::Get().probe_steps->Add();
        if (table_->location(pred.column) == ColumnLocation::kSecondary) {
          QueryMetrics::Get().scan_to_probe_switches->Add();
        }
        Status status = ProbeMainColumn(*table_, pred.column, pred, positions,
                                        threads, &next, &result->io,
                                        opts.buffers);
        if (!status.ok()) {
          AnnotatePredicateStep(span, table_->schema()[pred.column].name,
                                span.active() ? EstimateSelectivity(pred)
                                              : 0.0,
                                candidates_in, 0);
          span.Finish();
          return status;
        }
      }
      positions = std::move(next);
      AnnotatePredicateStep(span, table_->schema()[pred.column].name,
                            span.active() ? EstimateSelectivity(pred) : 0.0,
                            candidates_in, positions.size());
      span.Finish();
      if (obs != nullptr) {
        RecordStep(obs, pred.column,
                   rescan ? StepKind::kRescan : StepKind::kProbe,
                   candidates_in, positions.size(), EstimateSelectivity(pred),
                   obs_before, result->io, 0);
      }
    }
    result->candidate_trace.push_back(positions.size());
  }
  if (query.predicates.empty()) {
    positions.resize(main_rows);
    for (RowId r = 0; r < main_rows; ++r) positions[r] = r;
  }
  // MVCC: filter invalidated main rows.
  for (RowId row : positions) {
    if (table_->IsVisible(row, txn)) result->positions.push_back(row);
  }
  return Status::Ok();
}

void QueryExecutor::ExecuteDelta(const Transaction& txn, const Query& query,
                                 const std::vector<size_t>& order,
                                 const ExecOptions& opts, QueryResult* result,
                                 TraceSpan* trace) const {
  // Bounded by the submit-time delta size when serving: rows appended while
  // the query was queued are invisible to its snapshot, so excluding them
  // from the scan span keeps the DRAM cost (and the observation) a pure
  // function of the ticket.
  const size_t delta_rows =
      std::min(opts.delta_limit, table_->delta_row_count());
  if (delta_rows == 0) return;
  ScopedSpan span(trace, "delta", &result->io);
  PositionList positions;
  bool first = true;
  for (size_t idx : order) {
    const Predicate& pred = query.predicates[idx];
    if (first) {
      ScanDeltaColumn(*table_, pred.column, pred, &positions, &result->io,
                      delta_rows);
      first = false;
    } else if (positions.empty()) {
      break;
    } else {
      PositionList next;
      ProbeDeltaColumn(*table_, pred.column, pred, positions, &next,
                       &result->io);
      positions = std::move(next);
    }
  }
  if (query.predicates.empty()) {
    positions.resize(delta_rows);
    for (RowId r = 0; r < delta_rows; ++r) positions[r] = r;
  }
  const size_t main_rows = table_->main_row_count();
  size_t visible = 0;
  for (RowId local : positions) {
    const RowId global = main_rows + local;
    if (table_->IsVisible(global, txn)) {
      result->positions.push_back(global);
      ++visible;
    }
  }
  if (span.active()) {
    span.Annotate("delta_rows", std::to_string(delta_rows));
    span.Annotate("qualifying", std::to_string(positions.size()));
    span.Annotate("visible", std::to_string(visible));
  }
  span.Finish();
}

namespace {

double NumericAsDouble(const Value& v) {
  switch (v.type()) {
    case DataType::kInt32:
      return double(v.AsInt32());
    case DataType::kInt64:
      return double(v.AsInt64());
    case DataType::kFloat:
      return double(v.AsFloat());
    case DataType::kDouble:
      return v.AsDouble();
    case DataType::kString:
      HYTAP_UNREACHABLE("SUM over a string column");
  }
  HYTAP_UNREACHABLE("invalid DataType");
}

}  // namespace

Status QueryExecutor::Materialize(const Query& query, const ExecOptions& opts,
                                  QueryResult* result,
                                  TraceSpan* trace) const {
  if (query.projections.empty() && query.aggregates.empty()) {
    return Status::Ok();
  }
  const uint32_t threads = opts.threads;
  BufferManager* buffers =
      opts.buffers != nullptr ? opts.buffers : table_->buffers();
  if (StopRequested(opts)) {
    return Status::Cancelled("query cancelled before materialization");
  }
  ScopedSpan span(trace, "materialize", &result->io);
  if (span.active()) {
    span.Annotate("positions", std::to_string(result->positions.size()));
    span.Annotate("projections", std::to_string(query.projections.size()));
    span.Annotate("aggregates", std::to_string(query.aggregates.size()));
  }
  const size_t main_rows = table_->main_row_count();
  // Fetch set: projections first, then any extra aggregate inputs, so
  // SSCG attributes of one row still share a single page access
  // (paper §II-A: tuple-centric SSCG locality).
  std::vector<ColumnId> fetch_cols = query.projections;
  std::vector<size_t> aggregate_slot(query.aggregates.size(), SIZE_MAX);
  for (size_t a = 0; a < query.aggregates.size(); ++a) {
    const Aggregate& agg = query.aggregates[a];
    if (agg.kind == Aggregate::Kind::kCount) continue;
    auto it = std::find(fetch_cols.begin(), fetch_cols.end(), agg.column);
    if (it == fetch_cols.end()) {
      aggregate_slot[a] = fetch_cols.size();
      fetch_cols.push_back(agg.column);
    } else {
      aggregate_slot[a] = size_t(it - fetch_cols.begin());
    }
  }

  bool any_sscg = false;
  for (ColumnId c : fetch_cols) {
    any_sscg |= table_->location(c) == ColumnLocation::kSecondary;
  }

  const PositionList& positions = result->positions;
  const Sscg* sscg = table_->sscg();

  // Device/cache accounting pass, single-threaded and in position order:
  // fetches each qualifying tuple's group page through the buffer manager
  // exactly as the serial reconstruction did, so hit/miss sequences, the
  // device model's jitter draws, and the fault-injection schedule are
  // identical for any worker count. A page failure aborts here, before any
  // worker materializes a value — the first failing position wins
  // deterministically.
  if (any_sscg) {
    HYTAP_ASSERT(sscg != nullptr, "SSCG projection without SSCG");
    size_t batch = 0;
    for (RowId row : positions) {
      // Poll the stop token between accounting batches, never mid-batch:
      // the abort point is a deterministic function of how far the pass got.
      if ((batch++ & 4095u) == 0 && StopRequested(opts)) {
        return Status::Cancelled("query cancelled during tuple accounting");
      }
      if (row < main_rows) {
        Status status =
            sscg->AccountTupleFetch(row, buffers, threads, &result->io);
        if (!status.ok()) return status;
      }
    }
  }
  if (StopRequested(opts)) {
    return Status::Cancelled("query cancelled before the materialize pass");
  }

  // Materialization pass: morsel-parallel over qualifying positions. SSCG
  // attributes come from raw pages (already cached and accounted above);
  // MRC/delta attributes cost fixed DRAM touches accumulated per worker and
  // reduced below — sums of constants, so the total matches serial
  // execution regardless of the morsel partition.
  std::vector<Row> fetched_all(positions.size());
  const size_t morsels =
      ThreadPool::MorselCount(0, positions.size(), kMaterializeMorselRows);
  std::vector<IoStats> worker_io(morsels);
  std::vector<Status> worker_status(morsels);
  ThreadPool::Global().ParallelFor(
      0, positions.size(), kMaterializeMorselRows, threads,
      [&](size_t m, size_t index_begin, size_t index_end) {
        IoStats& local_io = worker_io[m];
        for (size_t i = index_begin; i < index_end; ++i) {
          const RowId row = positions[i];
          Row fetched(fetch_cols.size());
          if (row < main_rows && any_sscg) {
            Row group = sscg->RawRow(row, *table_->store());
            for (size_t p = 0; p < fetch_cols.size(); ++p) {
              const int slot = sscg->layout().SlotOf(fetch_cols[p]);
              if (slot >= 0) fetched[p] = group[static_cast<size_t>(slot)];
            }
          }
          for (size_t p = 0; p < fetch_cols.size(); ++p) {
            const ColumnId c = fetch_cols[p];
            if (row < main_rows &&
                table_->location(c) == ColumnLocation::kSecondary) {
              continue;  // already materialized from the group page
            }
            auto value = table_->GetValue(c, row, threads, &local_io);
            // DRAM/delta reads cannot fail today (SSCG pages were fetched
            // and verified in the accounting pass), but keep the morsel's
            // first error rather than asserting: the reduction below picks
            // the winner in morsel order, independent of worker count.
            if (!value.ok()) {
              worker_status[m] = value.status();
              return;
            }
            fetched[p] = std::move(*value);
          }
          fetched_all[i] = std::move(fetched);
        }
      });
  for (const IoStats& local_io : worker_io) result->io += local_io;
  for (const Status& status : worker_status) {
    if (!status.ok()) return status;
  }

  // Aggregation and row assembly, single-threaded in position order: keeps
  // floating-point accumulation order (and min/max tie-breaks) identical to
  // the serial execution.
  std::vector<double> sums(query.aggregates.size(), 0.0);
  std::vector<std::optional<Value>> best(query.aggregates.size());
  const bool keep_rows = !query.projections.empty();
  if (keep_rows) result->rows.reserve(positions.size());
  for (size_t i = 0; i < fetched_all.size(); ++i) {
    Row& fetched = fetched_all[i];
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const Aggregate& agg = query.aggregates[a];
      switch (agg.kind) {
        case Aggregate::Kind::kCount:
          break;  // computed from positions below
        case Aggregate::Kind::kSum:
          sums[a] += NumericAsDouble(fetched[aggregate_slot[a]]);
          break;
        case Aggregate::Kind::kMin: {
          const Value& v = fetched[aggregate_slot[a]];
          if (!best[a].has_value() || v < *best[a]) best[a] = v;
          break;
        }
        case Aggregate::Kind::kMax: {
          const Value& v = fetched[aggregate_slot[a]];
          if (!best[a].has_value() || *best[a] < v) best[a] = v;
          break;
        }
      }
    }
    if (keep_rows) {
      fetched.resize(query.projections.size());
      result->rows.push_back(std::move(fetched));
    }
  }
  result->aggregate_values.resize(query.aggregates.size());
  for (size_t a = 0; a < query.aggregates.size(); ++a) {
    switch (query.aggregates[a].kind) {
      case Aggregate::Kind::kCount:
        result->aggregate_values[a] =
            Value(int64_t(result->positions.size()));
        break;
      case Aggregate::Kind::kSum:
        result->aggregate_values[a] = Value(sums[a]);
        break;
      case Aggregate::Kind::kMin:
      case Aggregate::Kind::kMax:
        result->aggregate_values[a] = best[a].value_or(Value());
        break;
    }
  }
  return Status::Ok();
}

QueryResult QueryExecutor::Execute(const Transaction& txn, const Query& query,
                                   uint32_t threads) const {
  ExecOptions opts;
  opts.threads = threads;
  return Execute(txn, query, opts);
}

QueryResult QueryExecutor::Execute(const Transaction& txn, const Query& query,
                                   const ExecOptions& opts) const {
  HYTAP_ASSERT(opts.threads >= 1, "thread count must be >= 1");
  QueryResult result;
  if (opts.observation_filled != nullptr) *opts.observation_filled = false;
  // Observation building (like tracing) happens only on the serial control
  // path and reads finished state — never feeds back into execution — so
  // the monitor being attached/enabled cannot change results, IO counters,
  // or fault schedules (workload_monitor_test asserts bit-identity).
  QueryObservation obs_storage;
  QueryObservation* obs = nullptr;
  if (monitor_ != nullptr && WorkloadMonitorEnabled()) {
    obs = opts.observation != nullptr ? opts.observation : &obs_storage;
    *obs = QueryObservation();  // caller-provided storage may be reused
  }
  const std::vector<size_t> order = PredicateOrder(query);
  std::unique_ptr<TraceSpan> root;
  uint64_t wall_before = 0;
  if (TraceEnabled()) {
    root = std::make_unique<TraceSpan>();
    root->name = "execute";
    root->Annotate("threads", std::to_string(opts.threads));
    std::string order_names;
    for (size_t idx : order) {
      if (!order_names.empty()) order_names += ',';
      order_names += table_->schema()[query.predicates[idx].column].name;
    }
    root->Annotate("predicate_order", std::move(order_names));
    wall_before = WallClockNs();
  }
  // Phase accounting reads finished IoStats at the pass boundaries — like
  // tracing, it never feeds back into execution. DRAM charges accrued by
  // each pass land in its phase; device time splits into productive store
  // IO vs retry waste at the end, so the vector partitions TotalNs exactly
  // even on cancellation/fault paths with partial accrual.
  PhaseVector* phases =
      (opts.phases != nullptr && PhaseAccountingEnabled()) ? opts.phases
                                                           : nullptr;
  if (phases != nullptr) *phases = PhaseVector();
  {
    ScopedSpan main_span(root.get(), "main", &result.io);
    if (main_span.active()) {
      main_span.Annotate("main_rows",
                         std::to_string(table_->main_row_count()));
    }
    result.status = ExecuteMain(txn, query, order, opts, &result,
                                main_span.span(), obs);
  }
  uint64_t phase_dram_mark = result.io.dram_ns;
  if (phases != nullptr) {
    (*phases)[QueryPhase::kScanProbe] = result.io.dram_ns;
  }
  if (result.status.ok() && StopRequested(opts)) {
    result.status = Status::Cancelled("query cancelled before the delta scan");
  }
  if (result.status.ok()) {
    ExecuteDelta(txn, query, order, opts, &result, root.get());
    if (phases != nullptr) {
      (*phases)[QueryPhase::kDelta] = result.io.dram_ns - phase_dram_mark;
      phase_dram_mark = result.io.dram_ns;
    }
    result.status = Materialize(query, opts, &result, root.get());
    if (phases != nullptr) {
      (*phases)[QueryPhase::kMaterialize] =
          result.io.dram_ns - phase_dram_mark;
    }
  }
  if (phases != nullptr) {
    (*phases)[QueryPhase::kStoreIo] =
        result.io.device_ns - result.io.retry_backoff_ns;
    (*phases)[QueryPhase::kRetryBackoff] = result.io.retry_backoff_ns;
  }
  if (!result.status.ok()) {
    // Degrade cleanly: no partial positions, rows or aggregates ever leave
    // the executor. The accrued `io` and `status` are the whole result.
    result.positions.clear();
    result.rows.clear();
    result.aggregate_values.clear();
    result.candidate_trace.clear();
  }
  QueryMetrics& metrics = QueryMetrics::Get();
  metrics.queries->Add();
  if (!result.status.ok()) metrics.query_failures->Add();
  metrics.query_sim_ns->Observe(result.io.TotalNs());
  metrics.query_result_rows->Observe(result.positions.size());
  if (obs != nullptr) {
    for (const Predicate& pred : query.predicates) {
      obs->filtered_columns.push_back(pred.column);
    }
    std::sort(obs->filtered_columns.begin(), obs->filtered_columns.end());
    obs->filtered_columns.erase(std::unique(obs->filtered_columns.begin(),
                                            obs->filtered_columns.end()),
                                obs->filtered_columns.end());
    obs->simulated_ns = result.io.TotalNs();
    obs->device_ns = result.io.device_ns;
    obs->dram_ns = result.io.dram_ns;
    obs->page_reads = result.io.page_reads;
    obs->cache_hits = result.io.cache_hits;
    for (const StepObservation& step : obs->steps) {
      obs->mm_bytes += step.mm_bytes;
      if (step.mm_bytes > 0) obs->mm_scan_ns += step.dram_ns;
    }
    obs->result_rows = result.positions.size();
    obs->table_rows = table_->main_row_count() + table_->delta_row_count();
    obs->failed = !result.status.ok();
    if (opts.observation != nullptr) {
      // Hand the observation back instead of recording it: the serving layer
      // replays observations in ticket order so the monitor's windows and
      // the plan cache stay deterministic under concurrent execution.
      if (opts.observation_filled != nullptr) *opts.observation_filled = true;
    } else {
      monitor_->Record(*obs);
    }
  }
  if (root != nullptr) {
    root->simulated_ns = result.io.TotalNs();
    root->wall_ns = WallClockNs() - wall_before;
    root->Annotate("status", result.status.ok()
                                 ? std::string("ok")
                                 : result.status.ToString());
    root->Annotate("result_rows", std::to_string(result.positions.size()));
    result.trace = std::shared_ptr<const TraceSpan>(root.release());
  }
  return result;
}

ExplainResult QueryExecutor::Explain(const Transaction& txn,
                                     const Query& query,
                                     uint32_t threads) const {
  // Force tracing for this call only; the global knob (and with it any
  // concurrent caller's behavior) is restored before returning.
  const bool was_enabled = TraceEnabled();
  SetTraceEnabled(true);
  ExplainResult out;
  out.result = Execute(txn, query, threads);
  SetTraceEnabled(was_enabled);
  if (out.result.trace != nullptr) {
    out.text = RenderTraceText(*out.result.trace);
    out.json = RenderTraceJson(*out.result.trace);
  }
  return out;
}

}  // namespace hytap

#include "query/predicate.h"

namespace hytap {

Predicate Predicate::Equals(ColumnId column, Value value) {
  Predicate p;
  p.column = column;
  p.lo = value;
  p.hi = std::move(value);
  return p;
}

Predicate Predicate::Between(ColumnId column, Value lo, Value hi) {
  Predicate p;
  p.column = column;
  p.lo = std::move(lo);
  p.hi = std::move(hi);
  return p;
}

Predicate Predicate::AtLeast(ColumnId column, Value lo) {
  Predicate p;
  p.column = column;
  p.lo = std::move(lo);
  return p;
}

Predicate Predicate::AtMost(ColumnId column, Value hi) {
  Predicate p;
  p.column = column;
  p.hi = std::move(hi);
  return p;
}

bool Predicate::Matches(const Value& v) const {
  if (lo.has_value() && v < *lo) return false;
  if (hi.has_value() && *hi < v) return false;
  return true;
}

}  // namespace hytap

#ifndef HYTAP_QUERY_JOIN_H_
#define HYTAP_QUERY_JOIN_H_

#include <vector>

#include "query/executor.h"
#include "storage/table.h"

namespace hytap {

/// An equi-join between the qualifying rows of two single-table queries.
///
/// The paper's workload model treats OLAP joins as large sequential accesses
/// on the join columns (§III-A); this operator supplies the corresponding
/// execution path: a hash join whose build and probe inputs are produced by
/// the placement-aware single-table executor, so join columns that were
/// evicted into an SSCG pay the appropriate page-access costs.
struct JoinSpec {
  ColumnId left_column = 0;   // equi-join key in the left table
  ColumnId right_column = 0;  // equi-join key in the right table
  /// Columns materialized into the join result.
  std::vector<ColumnId> left_projections;
  std::vector<ColumnId> right_projections;
};

struct JoinResult {
  /// OK, or the first page-read failure from either input or the gather
  /// phases (kUnavailable / kDataLoss). On error `rows` and `matches` are
  /// empty; `io` keeps the cost accrued up to the failure.
  Status status;
  /// One row per join match: left projections then right projections.
  std::vector<Row> rows;
  /// Matching (left, right) global row-id pairs.
  std::vector<std::pair<RowId, RowId>> matches;
  IoStats io;
};

/// Hash-joins the rows qualifying under `left_query` on `left` with the rows
/// qualifying under `right_query` on `right`. The smaller qualifying side is
/// used as the build side. Key columns may live in DRAM or an SSCG.
class HashJoin {
 public:
  HashJoin(const Table* left, const Table* right);

  /// Page failures surface via JoinResult::status with no partial output.
  JoinResult Execute(const Transaction& txn, const Query& left_query,
                     const Query& right_query, const JoinSpec& spec,
                     uint32_t threads = 1) const;

 private:
  const Table* left_;
  const Table* right_;
};

}  // namespace hytap

#endif  // HYTAP_QUERY_JOIN_H_

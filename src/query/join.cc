#include "query/join.h"

#include <string>
#include <unordered_map>

#include "common/assert.h"
#include "storage/index.h"

namespace hytap {

namespace {

/// Gathers the join-key values for the qualifying rows, batching SSCG page
/// accesses per row like the executor's materialization path.
StatusOr<std::vector<Value>> GatherKeys(const Table& table, ColumnId column,
                                        const PositionList& rows,
                                        uint32_t threads, IoStats* io) {
  std::vector<Value> keys;
  keys.reserve(rows.size());
  for (RowId row : rows) {
    auto value = table.GetValue(column, row, threads, io);
    if (!value.ok()) return value.status();
    keys.push_back(std::move(*value));
  }
  return keys;
}

}  // namespace

HashJoin::HashJoin(const Table* left, const Table* right)
    : left_(left), right_(right) {
  HYTAP_ASSERT(left != nullptr && right != nullptr,
               "join requires two tables");
}

JoinResult HashJoin::Execute(const Transaction& txn, const Query& left_query,
                             const Query& right_query, const JoinSpec& spec,
                             uint32_t threads) const {
  JoinResult result;
  QueryExecutor left_exec(left_);
  QueryExecutor right_exec(right_);
  QueryResult left_rows = left_exec.Execute(txn, left_query, threads);
  QueryResult right_rows = right_exec.Execute(txn, right_query, threads);
  result.io += left_rows.io;
  result.io += right_rows.io;
  // Left input first, then right: a fixed propagation order keeps the
  // reported error deterministic when both sides fail.
  if (!left_rows.status.ok()) {
    result.status = left_rows.status;
    return result;
  }
  if (!right_rows.status.ok()) {
    result.status = right_rows.status;
    return result;
  }

  // Build on the smaller qualifying side.
  const bool build_left =
      left_rows.positions.size() <= right_rows.positions.size();
  const Table& build_table = build_left ? *left_ : *right_;
  const Table& probe_table = build_left ? *right_ : *left_;
  const PositionList& build_positions =
      build_left ? left_rows.positions : right_rows.positions;
  const PositionList& probe_positions =
      build_left ? right_rows.positions : left_rows.positions;
  const ColumnId build_key =
      build_left ? spec.left_column : spec.right_column;
  const ColumnId probe_key =
      build_left ? spec.right_column : spec.left_column;

  auto build_keys =
      GatherKeys(build_table, build_key, build_positions, threads,
                 &result.io);
  if (!build_keys.ok()) {
    result.status = build_keys.status();
    return result;
  }
  // Hash table: order-preserving key encoding -> build row ids. Hash-table
  // maintenance costs one DRAM touch per entry.
  std::unordered_map<std::string, PositionList> hash_table;
  hash_table.reserve(build_keys->size());
  for (size_t i = 0; i < build_keys->size(); ++i) {
    hash_table[EncodeOrderPreserving((*build_keys)[i])].push_back(
        build_positions[i]);
  }
  result.io.dram_ns += build_keys->size() * kDramTouchNs;

  auto probe_keys =
      GatherKeys(probe_table, probe_key, probe_positions, threads,
                 &result.io);
  if (!probe_keys.ok()) {
    result.status = probe_keys.status();
    return result;
  }
  result.io.dram_ns += probe_keys->size() * kDramTouchNs;
  for (size_t i = 0; i < probe_keys->size(); ++i) {
    auto it = hash_table.find(EncodeOrderPreserving((*probe_keys)[i]));
    if (it == hash_table.end()) continue;
    for (RowId build_row : it->second) {
      const RowId left_row = build_left ? build_row : probe_positions[i];
      const RowId right_row = build_left ? probe_positions[i] : build_row;
      result.matches.emplace_back(left_row, right_row);
    }
  }

  // Materialize projections (SSCG attributes of one row share a page via
  // ReconstructRow-like access through GetValue page caching).
  if (!spec.left_projections.empty() || !spec.right_projections.empty()) {
    result.rows.reserve(result.matches.size());
    for (const auto& [left_row, right_row] : result.matches) {
      Row out;
      out.reserve(spec.left_projections.size() +
                  spec.right_projections.size());
      for (ColumnId c : spec.left_projections) {
        auto value = left_->GetValue(c, left_row, threads, &result.io);
        if (!value.ok()) {
          result.status = value.status();
          result.matches.clear();
          result.rows.clear();
          return result;
        }
        out.push_back(std::move(*value));
      }
      for (ColumnId c : spec.right_projections) {
        auto value = right_->GetValue(c, right_row, threads, &result.io);
        if (!value.ok()) {
          result.status = value.status();
          result.matches.clear();
          result.rows.clear();
          return result;
        }
        out.push_back(std::move(*value));
      }
      result.rows.push_back(std::move(out));
    }
  }
  return result;
}

}  // namespace hytap

#include "query/tuple_reconstructor.h"

#include <algorithm>

#include "common/assert.h"

namespace hytap {

LatencyStats LatencyStats::FromSamples(std::vector<uint64_t>& samples_ns) {
  LatencyStats stats;
  stats.samples = samples_ns.size();
  if (samples_ns.empty()) return stats;
  std::sort(samples_ns.begin(), samples_ns.end());
  double sum = 0.0;
  for (uint64_t s : samples_ns) sum += double(s);
  stats.mean_ns = sum / double(samples_ns.size());
  auto quantile = [&](double q) {
    const size_t idx = std::min(
        samples_ns.size() - 1,
        static_cast<size_t>(q * double(samples_ns.size())));
    return samples_ns[idx];
  };
  stats.p50_ns = quantile(0.50);
  stats.p95_ns = quantile(0.95);
  stats.p99_ns = quantile(0.99);
  stats.max_ns = samples_ns.back();
  return stats;
}

TupleReconstructor::TupleReconstructor(const Table* table) : table_(table) {
  HYTAP_ASSERT(table != nullptr, "TupleReconstructor requires a table");
}

StatusOr<uint64_t> TupleReconstructor::ReconstructOne(RowId row,
                                                      uint32_t queue_depth,
                                                      Row* out) const {
  IoStats io;
  auto tuple = table_->ReconstructRow(row, queue_depth, &io);
  if (!tuple.ok()) return tuple.status();
  if (out != nullptr) *out = std::move(*tuple);
  return io.TotalNs();
}

LatencyStats TupleReconstructor::RunBatch(size_t count,
                                          AccessDistribution distribution,
                                          uint32_t queue_depth, uint64_t seed,
                                          double zipf_alpha) const {
  const size_t rows = table_->main_row_count();
  HYTAP_ASSERT(rows > 0, "RunBatch requires a non-empty main partition");
  Rng rng(seed);
  std::vector<uint64_t> samples;
  samples.reserve(count);
  size_t failed = 0;
  auto record = [&](const StatusOr<uint64_t>& sample) {
    if (sample.ok()) {
      samples.push_back(*sample);
    } else {
      ++failed;  // degraded row: the batch keeps going
    }
  };
  if (distribution == AccessDistribution::kZipfian) {
    ZipfGenerator zipf(rows, zipf_alpha);
    // The zipf rank maps through a pseudo-random permutation so popular rows
    // are spread over pages (ranks are not physically clustered).
    const uint64_t mix = 0x9e3779b97f4a7c15ULL;
    for (size_t i = 0; i < count; ++i) {
      const uint64_t rank = zipf.Next(rng);
      const RowId row = (rank * mix) % rows;
      record(ReconstructOne(row, queue_depth, nullptr));
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      const RowId row = rng.NextBounded(rows);
      record(ReconstructOne(row, queue_depth, nullptr));
    }
  }
  LatencyStats stats = LatencyStats::FromSamples(samples);
  stats.failed_samples = failed;
  return stats;
}

}  // namespace hytap

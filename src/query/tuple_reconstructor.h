#ifndef HYTAP_QUERY_TUPLE_RECONSTRUCTOR_H_
#define HYTAP_QUERY_TUPLE_RECONSTRUCTOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "storage/table.h"

namespace hytap {

/// Latency distribution summary (nanoseconds).
struct LatencyStats {
  double mean_ns = 0.0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
  size_t samples = 0;
  /// Reconstructions that returned a page-read error instead of a tuple
  /// (excluded from the latency percentiles above).
  size_t failed_samples = 0;

  /// Computes the summary from raw samples (consumes/sorts the vector).
  static LatencyStats FromSamples(std::vector<uint64_t>& samples_ns);
};

/// Access distribution for reconstruction batches.
enum class AccessDistribution {
  kUniform,
  kZipfian,  // alpha = 1 unless overridden (paper Fig. 8)
};

/// Drives batched full-width tuple reconstructions against a table and
/// collects per-tuple latency samples (paper §IV-B, Figs. 7 and 8).
class TupleReconstructor {
 public:
  explicit TupleReconstructor(const Table* table);

  /// Reconstructs one tuple; returns its simulated latency in ns, or the
  /// page-read error (kUnavailable / kDataLoss) with `out` untouched.
  StatusOr<uint64_t> ReconstructOne(RowId row, uint32_t queue_depth,
                                    Row* out) const;

  /// Runs `count` full-width reconstructions over main-partition rows drawn
  /// from `distribution` and returns the latency summary. `queue_depth`
  /// models concurrent requesters; `seed` fixes the access sequence.
  /// Failed reconstructions are counted in LatencyStats::failed_samples and
  /// excluded from the percentiles (the batch itself always completes).
  LatencyStats RunBatch(size_t count, AccessDistribution distribution,
                        uint32_t queue_depth, uint64_t seed,
                        double zipf_alpha = 1.0) const;

 private:
  const Table* table_;
};

}  // namespace hytap

#endif  // HYTAP_QUERY_TUPLE_RECONSTRUCTOR_H_

#ifndef HYTAP_QUERY_EXECUTOR_H_
#define HYTAP_QUERY_EXECUTOR_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/phases.h"
#include "common/trace.h"
#include "query/predicate.h"
#include "storage/table.h"
#include "txn/transaction_manager.h"
#include "workload/workload_monitor.h"

namespace hytap {

/// Result of a query execution.
struct QueryResult {
  /// OK, or the first page-read failure hit by the execution (kUnavailable /
  /// kDataLoss). On error every data member below except `io` is empty: the
  /// query degrades to a clean failure with no partial results.
  Status status;
  /// Qualifying global row ids (main rows then delta rows, ascending within
  /// each partition).
  PositionList positions;
  /// Materialized projections (one row per position), if requested.
  std::vector<Row> rows;
  /// Aggregate results, aligned with Query::aggregates. Count results are
  /// int64 values; sums are doubles; min/max carry the column type.
  std::vector<Value> aggregate_values;
  /// Simulated IO/DRAM cost of the execution.
  IoStats io;
  /// Candidate count after each executed predicate (execution order), for
  /// diagnostics and tests of the predicate-ordering logic.
  std::vector<size_t> candidate_trace;
  /// Operator/step tree of this execution, populated while `TraceEnabled()`
  /// (null otherwise). Kept even when `status` is an error — the partial
  /// trace up to the failing step is the main diagnostic for failed
  /// queries. Shared so QueryResult stays cheaply copyable.
  std::shared_ptr<const TraceSpan> trace;
};

/// Per-execution options: the knobs a serving session threads through one
/// Execute() call. Default-constructed options reproduce the classic
/// synchronous single-query behavior exactly.
struct ExecOptions {
  /// Simulated workers (and real ParallelFor width).
  uint32_t threads = 1;
  /// Cancellation stop token (not owned; null = not cancellable). Polled at
  /// the executor's serial control points — between predicate steps and
  /// morsel batches, never inside kernels — so a cancelled query aborts with
  /// status kCancelled and no partial results.
  const std::atomic<bool>* stop = nullptr;
  /// Page-cache override for SSCG fetches (null = the table's shared cache).
  /// Serving sessions pass a private cold cache per query.
  BufferManager* buffers = nullptr;
  /// Bounds delta-partition scans to the first `delta_limit` rows (the delta
  /// size at submit time; rows beyond it are invisible to the snapshot).
  size_t delta_limit = SIZE_MAX;
  /// When non-null and a monitor is attached + enabled, Execute() fills this
  /// observation and sets *observation_filled instead of recording into the
  /// monitor — the serving layer replays observations in ticket order so the
  /// monitor's windows stay deterministic under concurrency.
  QueryObservation* observation = nullptr;
  bool* observation_filled = nullptr;
  /// When non-null and `PhaseAccountingEnabled()`, Execute() fills the
  /// per-phase decomposition of this query's simulated cost. The vector is
  /// derived purely from `result.io` at the pass boundaries, so its sum
  /// equals `result.io.TotalNs()` exactly — on success, cancellation, and
  /// fault paths alike (see DESIGN.md §17).
  PhaseVector* phases = nullptr;
};

/// Execute() plus rendered trace — what EXPLAIN ANALYZE returns.
struct ExplainResult {
  QueryResult result;
  /// Human-readable operator tree (RenderTraceText).
  std::string text;
  /// Machine-readable operator tree (RenderTraceJson).
  std::string json;
};

/// Placement-aware query executor (paper §II-B).
///
/// Non-indexed filters execute in an order determined first by column
/// location (DRAM-resident before secondary storage) and second by ascending
/// selectivity (1/distinct-count). Each predicate after the first consumes
/// the previous position list; the executor switches from scanning to probing
/// once the fraction of remaining candidates drops below `probe_threshold`
/// (paper default: 0.01 % of the table's tuples).
class QueryExecutor {
 public:
  explicit QueryExecutor(const Table* table, double probe_threshold = 1e-4);

  /// Executes a conjunctive query under `txn`'s snapshot with `threads`
  /// simulated workers. Page-read failures surface via QueryResult::status
  /// with all result data cleared (`io` keeps the cost accrued up to the
  /// failure). The reported error is deterministic: page fetches happen in
  /// the serialized accounting passes, so the same query over the same store
  /// state reports the same failure at every thread count.
  QueryResult Execute(const Transaction& txn, const Query& query,
                      uint32_t threads = 1) const;

  /// Execute() with full per-session options (cancellation, private page
  /// cache, delta bound, observation hand-off). The executor itself is
  /// stateless across calls, so concurrent Execute() calls with disjoint
  /// ExecOptions are safe.
  QueryResult Execute(const Transaction& txn, const Query& query,
                      const ExecOptions& opts) const;

  /// Execute() with tracing forced on for the duration of the call (the
  /// global HYTAP_TRACE state is restored afterwards), returning the result
  /// together with the rendered operator tree. The trace reports the chosen
  /// predicate order with estimated vs. actual selectivities, index usage,
  /// every scan-vs-probe decision (candidate fraction vs. threshold), and
  /// per-step pruning/IO counters that sum to the result's IoStats.
  ExplainResult Explain(const Transaction& txn, const Query& query,
                        uint32_t threads = 1) const;

  /// The predicate execution order for `query` (indices into
  /// query.predicates). Exposed for tests and the plan cache.
  std::vector<size_t> PredicateOrder(const Query& query) const;

  /// Attaches a workload monitor (not owned; pass null to detach). While
  /// attached and `WorkloadMonitorEnabled()`, Execute() builds one
  /// QueryObservation per query on its serial control path — a pure observer
  /// of finished results and IoStats, so execution stays bit-identical with
  /// or without it — and feeds it to the monitor.
  void set_monitor(WorkloadMonitor* monitor) { monitor_ = monitor; }
  WorkloadMonitor* monitor() const { return monitor_; }

 private:
  /// Histogram-aware selectivity estimate for one predicate (falls back to
  /// 1/distinct when the table has no statistics).
  double EstimateSelectivity(const Predicate& pred) const;

  /// Chooses an index access path if one applies (paper §II-B); appends the
  /// predicate indices it answers to `used`.
  const MainIndex* PickIndex(const Query& query,
                             std::vector<size_t>* used) const;

  /// The `trace` parameters receive child spans when non-null (tracing on);
  /// spans are built only on these serial control paths, never inside
  /// worker morsels, so the tree is invariant under the worker count. `obs`
  /// likewise receives per-step observations when non-null (monitor on).
  Status ExecuteMain(const Transaction& txn, const Query& query,
                     const std::vector<size_t>& order, const ExecOptions& opts,
                     QueryResult* result, TraceSpan* trace,
                     QueryObservation* obs) const;
  void ExecuteDelta(const Transaction& txn, const Query& query,
                    const std::vector<size_t>& order, const ExecOptions& opts,
                    QueryResult* result, TraceSpan* trace) const;
  Status Materialize(const Query& query, const ExecOptions& opts,
                     QueryResult* result, TraceSpan* trace) const;

  const Table* table_;
  double probe_threshold_;
  WorkloadMonitor* monitor_ = nullptr;
};

}  // namespace hytap

#endif  // HYTAP_QUERY_EXECUTOR_H_

#ifndef HYTAP_QUERY_PREDICATE_H_
#define HYTAP_QUERY_PREDICATE_H_

#include <optional>
#include <vector>

#include "common/types.h"
#include "storage/value.h"

namespace hytap {

/// A conjunctive filter on one column: closed interval [lo, hi] with optional
/// bounds. Equality is lo == hi; a missing bound is unbounded.
struct Predicate {
  ColumnId column = 0;
  std::optional<Value> lo;
  std::optional<Value> hi;

  static Predicate Equals(ColumnId column, Value value);
  static Predicate Between(ColumnId column, Value lo, Value hi);
  static Predicate AtLeast(ColumnId column, Value lo);
  static Predicate AtMost(ColumnId column, Value hi);

  const Value* LoPtr() const { return lo.has_value() ? &*lo : nullptr; }
  const Value* HiPtr() const { return hi.has_value() ? &*hi : nullptr; }

  /// True iff `v` satisfies the predicate.
  bool Matches(const Value& v) const;
};

/// An aggregate over the qualifying rows of a query.
struct Aggregate {
  enum class Kind { kCount, kSum, kMin, kMax };
  Kind kind = Kind::kCount;
  /// Aggregated column (ignored for kCount).
  ColumnId column = 0;

  static Aggregate Count() { return {Kind::kCount, 0}; }
  static Aggregate Sum(ColumnId column) { return {Kind::kSum, column}; }
  static Aggregate Min(ColumnId column) { return {Kind::kMin, column}; }
  static Aggregate Max(ColumnId column) { return {Kind::kMax, column}; }
};

/// A conjunctive query: all predicates must hold; `projections` lists the
/// columns to materialize for qualifying rows (empty = positions only);
/// `aggregates` are computed over the qualifying rows.
struct Query {
  std::vector<Predicate> predicates;
  std::vector<ColumnId> projections;
  std::vector<Aggregate> aggregates;
};

}  // namespace hytap

#endif  // HYTAP_QUERY_PREDICATE_H_

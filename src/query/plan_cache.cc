#include "query/plan_cache.h"

#include <algorithm>

namespace hytap {

namespace {

std::vector<ColumnId> TemplateKey(const Query& query) {
  std::vector<ColumnId> key;
  key.reserve(query.predicates.size());
  for (const Predicate& pred : query.predicates) key.push_back(pred.column);
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

}  // namespace

void PlanCache::Record(const Query& query) {
  std::vector<ColumnId> key = TemplateKey(query);
  std::lock_guard<std::mutex> lock(mutex_);
  ++templates_[std::move(key)].count;
  ++total_;
}

void PlanCache::RecordObserved(const Query& query,
                               const QueryObservation& obs) {
  const std::vector<ColumnId> key = TemplateKey(query);
  std::lock_guard<std::mutex> lock(mutex_);
  TemplateStats& stats = templates_[key];
  ++stats.count;
  ++total_;
  if (stats.selectivity_sum.size() != key.size()) {
    stats.selectivity_sum.assign(key.size(), 0.0);
    stats.selectivity_samples.assign(key.size(), 0);
  }
  for (const StepObservation& step : obs.steps) {
    if (step.candidates_in == 0) continue;  // no sample without candidates
    auto it = std::lower_bound(key.begin(), key.end(), step.column);
    if (it == key.end() || *it != step.column) continue;
    const size_t slot = size_t(it - key.begin());
    stats.selectivity_sum[slot] += step.observed_selectivity;
    ++stats.selectivity_samples[slot];
  }
}

std::vector<double> PlanCache::ColumnFrequencies(const Table& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> g(table.column_count(), 0.0);
  for (const auto& [columns, stats] : templates_) {
    for (ColumnId c : columns) g[c] += static_cast<double>(stats.count);
  }
  return g;
}

Workload PlanCache::ToWorkload(const Table& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Workload workload;
  const size_t n = table.column_count();
  workload.column_sizes.reserve(n);
  workload.selectivities.reserve(n);
  workload.column_names.reserve(n);
  // Per-column observed-selectivity sample means across all templates.
  std::vector<double> sel_sum(n, 0.0);
  std::vector<uint64_t> sel_samples(n, 0);
  for (const auto& [columns, stats] : templates_) {
    for (size_t i = 0;
         i < columns.size() && i < stats.selectivity_sum.size(); ++i) {
      if (columns[i] < n) {
        sel_sum[columns[i]] += stats.selectivity_sum[i];
        sel_samples[columns[i]] += stats.selectivity_samples[i];
      }
    }
  }
  for (ColumnId c = 0; c < n; ++c) {
    // Guard against zero-sized columns (empty tables) for model stability.
    workload.column_sizes.push_back(
        std::max<double>(1.0, double(table.ColumnDramBytes(c))));
    double s = sel_samples[c] > 0 ? sel_sum[c] / double(sel_samples[c])
                                  : table.SelectivityEstimate(c);
    // Observed selectivities can legitimately hit 0 (no survivor) or 1;
    // clamp into the cost model's (0, 1] domain.
    s = std::min(1.0, std::max(1e-9, s));
    workload.selectivities.push_back(s);
    workload.column_names.push_back(table.schema()[c].name);
  }
  workload.queries.reserve(templates_.size());
  for (const auto& [columns, stats] : templates_) {
    QueryTemplate tmpl;
    tmpl.columns.assign(columns.begin(), columns.end());
    tmpl.frequency = static_cast<double>(stats.count);
    workload.queries.push_back(std::move(tmpl));
  }
  workload.Check();
  return workload;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  templates_.clear();
  total_ = 0;
}

}  // namespace hytap

#include "query/plan_cache.h"

#include <algorithm>

namespace hytap {

void PlanCache::Record(const Query& query) {
  std::vector<ColumnId> key;
  key.reserve(query.predicates.size());
  for (const Predicate& pred : query.predicates) key.push_back(pred.column);
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  ++counts_[key];
  ++total_;
}

std::vector<double> PlanCache::ColumnFrequencies(const Table& table) const {
  std::vector<double> g(table.column_count(), 0.0);
  for (const auto& [columns, count] : counts_) {
    for (ColumnId c : columns) g[c] += static_cast<double>(count);
  }
  return g;
}

Workload PlanCache::ToWorkload(const Table& table) const {
  Workload workload;
  const size_t n = table.column_count();
  workload.column_sizes.reserve(n);
  workload.selectivities.reserve(n);
  workload.column_names.reserve(n);
  for (ColumnId c = 0; c < n; ++c) {
    // Guard against zero-sized columns (empty tables) for model stability.
    workload.column_sizes.push_back(
        std::max<double>(1.0, double(table.ColumnDramBytes(c))));
    workload.selectivities.push_back(table.SelectivityEstimate(c));
    workload.column_names.push_back(table.schema()[c].name);
  }
  workload.queries.reserve(counts_.size());
  for (const auto& [columns, count] : counts_) {
    QueryTemplate tmpl;
    tmpl.columns.assign(columns.begin(), columns.end());
    tmpl.frequency = static_cast<double>(count);
    workload.queries.push_back(std::move(tmpl));
  }
  workload.Check();
  return workload;
}

void PlanCache::Clear() {
  counts_.clear();
  total_ = 0;
}

}  // namespace hytap

#ifndef HYTAP_QUERY_STATISTICS_H_
#define HYTAP_QUERY_STATISTICS_H_

#include <cstdint>
#include <vector>

#include "storage/column.h"
#include "storage/value.h"

namespace hytap {

/// Equi-width histogram over a numeric column, used to estimate the
/// selectivity of range predicates (paper §II-B footnote: "For inequality
/// predicates, we use heuristics similar to [27]"; §III-A: "Hyrise estimates
/// selectivities ... using distinct counts and histograms when available").
///
/// Strings fall back to distinct-count estimation (no histogram).
class Histogram {
 public:
  /// Builds a histogram with `bucket_count` equi-width buckets over the
  /// numeric values (empty histogram for strings / empty input).
  static Histogram Build(const std::vector<Value>& values,
                         size_t bucket_count = 32);

  bool empty() const { return buckets_.empty(); }
  size_t bucket_count() const { return buckets_.size(); }
  uint64_t row_count() const { return row_count_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Estimated fraction of rows with value in [lo, hi] (closed; null =
  /// unbounded). Uses linear interpolation inside partially covered buckets.
  double EstimateRangeSelectivity(const Value* lo, const Value* hi) const;

  /// Estimated fraction of rows equal to one value: bucket frequency divided
  /// by the bucket's estimated distinct count.
  double EstimateEqualitySelectivity(const Value& value) const;

 private:
  static double ToDouble(const Value& v);

  double min_ = 0.0;
  double max_ = 0.0;
  double bucket_width_ = 0.0;
  uint64_t row_count_ = 0;
  std::vector<uint64_t> buckets_;           // row counts
  std::vector<uint64_t> bucket_distincts_;  // approximate distinct counts
};

/// Per-table statistics: one histogram per numeric column plus distinct
/// counts; provides the executor's selectivity estimates.
class TableStatistics {
 public:
  TableStatistics() = default;

  /// Builds statistics from full column contents.
  static TableStatistics Build(
      const Schema& schema,
      const std::vector<std::vector<Value>>& column_values,
      size_t bucket_count = 32);

  /// Estimated selectivity of a [lo, hi] predicate on `column`; falls back
  /// to 1/distinct when no histogram exists.
  double EstimateSelectivity(ColumnId column, const Value* lo,
                             const Value* hi) const;

  const Histogram& histogram(ColumnId column) const {
    return histograms_[column];
  }
  bool has_statistics() const { return !histograms_.empty(); }

 private:
  std::vector<Histogram> histograms_;
  std::vector<double> distinct_fractions_;  // 1/distinct per column
};

}  // namespace hytap

#endif  // HYTAP_QUERY_STATISTICS_H_

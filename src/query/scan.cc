#include "query/scan.h"

#include "common/assert.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "storage/dictionary_column.h"
#include "storage/zone_map.h"

namespace hytap {

// Zone maps are built at morsel granularity so one pruning decision covers
// exactly one scan work unit.
static_assert(kZoneMapRows == kScanMorselRows,
              "zone granularity must match the scan morsel size");

namespace {

/// Simulated cost of a vectorized scan over a dictionary-encoded column:
/// the bit-packed code vector streams through at DRAM bandwidth.
uint64_t MrcScanCostNs(const AbstractColumn* column) {
  const uint64_t bytes = column->MemoryUsage();
  return bytes / kDramScanBytesPerNs + 1;
}

/// Registry handles resolved once; Add() is gated on the HYTAP_METRICS knob.
struct ScanMetrics {
  Counter* morsels_scanned;
  Counter* morsels_pruned;
  Counter* rescan_pages_pruned;

  static ScanMetrics& Get() {
    static ScanMetrics metrics;
    return metrics;
  }

 private:
  ScanMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    morsels_scanned = registry.GetCounter("hytap_scan_morsels_scanned_total");
    morsels_pruned = registry.GetCounter("hytap_scan_morsels_pruned_total");
    rescan_pages_pruned =
        registry.GetCounter("hytap_scan_rescan_pages_pruned_total");
  }
};

}  // namespace

void ParallelScanColumn(const AbstractColumn& column, const Value* lo,
                        const Value* hi, uint32_t threads, PositionList* out,
                        IoStats* io) {
  const size_t n = column.size();
  const size_t morsels = ThreadPool::MorselCount(0, n, kScanMorselRows);
  // Survivor morsels, decided serially in row order: CanSkipRange is a pure
  // function of the immutable zone maps (and always false while
  // HYTAP_ZONE_MAPS is off), so the surviving sequence and the pruned
  // counter are identical at any worker count.
  std::vector<size_t> survivors;
  survivors.reserve(morsels);
  for (size_t m = 0; m < morsels; ++m) {
    const size_t row_begin = m * kScanMorselRows;
    const size_t row_end = std::min(n, row_begin + kScanMorselRows);
    if (column.CanSkipRange(lo, hi, row_begin, row_end)) continue;
    survivors.push_back(m);
  }
  if (io != nullptr) io->morsels_pruned += morsels - survivors.size();
  ScanMetrics::Get().morsels_pruned->Add(morsels - survivors.size());
  ScanMetrics::Get().morsels_scanned->Add(survivors.size());
  if (survivors.empty()) return;
  if (survivors.size() <= 1 || threads <= 1) {
    for (size_t m : survivors) {
      const size_t row_begin = m * kScanMorselRows;
      column.ScanBetweenRange(lo, hi, row_begin,
                              std::min(n, row_begin + kScanMorselRows), out);
    }
    return;
  }
  std::vector<PositionList> parts(survivors.size());
  ThreadPool::Global().ParallelFor(
      0, survivors.size(), 1, threads,
      [&](size_t, size_t s_begin, size_t s_end) {
        for (size_t s = s_begin; s < s_end; ++s) {
          const size_t row_begin = survivors[s] * kScanMorselRows;
          column.ScanBetweenRange(lo, hi, row_begin,
                                  std::min(n, row_begin + kScanMorselRows),
                                  &parts[s]);
        }
      });
  size_t total = out->size();
  for (const PositionList& part : parts) total += part.size();
  out->reserve(total);
  for (const PositionList& part : parts) {
    out->insert(out->end(), part.begin(), part.end());
  }
}

Status ScanMainColumn(const Table& table, ColumnId column,
                      const Predicate& pred, uint32_t threads,
                      PositionList* out, IoStats* io,
                      const PositionList* restrict_to,
                      BufferManager* buffers) {
  if (buffers == nullptr) buffers = table.buffers();
  if (table.main_row_count() == 0) return Status::Ok();
  if (table.location(column) == ColumnLocation::kDram) {
    const AbstractColumn* mrc = table.mrc(column);
    HYTAP_ASSERT(mrc != nullptr, "DRAM column without MRC");
    const uint64_t pruned_before = io != nullptr ? io->morsels_pruned : 0;
    ParallelScanColumn(*mrc, pred.LoPtr(), pred.HiPtr(), threads, out, io);
    if (io != nullptr) {
      // Skipped morsels never stream through DRAM: the modeled cost scales
      // with the surviving fraction (exactly the full cost when nothing is
      // pruned, preserving the baseline bit-for-bit).
      const uint64_t full = MrcScanCostNs(mrc);
      const uint64_t pruned = io->morsels_pruned - pruned_before;
      const uint64_t morsels =
          ThreadPool::MorselCount(0, mrc->size(), kScanMorselRows);
      io->dram_ns += morsels == 0 ? full : full - full * pruned / morsels;
    }
    return Status::Ok();
  }
  const Sscg* sscg = table.sscg();
  HYTAP_ASSERT(sscg != nullptr, "SSCG column without SSCG");
  const int slot = sscg->layout().SlotOf(column);
  HYTAP_ASSERT(slot >= 0, "column not in SSCG");
  size_t page_begin = 0;
  size_t page_end = sscg->page_count();
  if (restrict_to != nullptr && !restrict_to->empty() && ZoneMapsEnabled()) {
    // Candidates are ascending: the rescan only needs the page span they
    // cover. Pages outside it are pruned without a fetch.
    page_begin = sscg->layout().PageOf(restrict_to->front());
    page_end = sscg->layout().PageOf(restrict_to->back()) + 1;
    if (io != nullptr) {
      io->pages_pruned += sscg->page_count() - (page_end - page_begin);
    }
    ScanMetrics::Get().rescan_pages_pruned->Add(sscg->page_count() -
                                                (page_end - page_begin));
  }
  return sscg->ScanSlotPages(static_cast<size_t>(slot), pred.LoPtr(),
                             pred.HiPtr(), page_begin, page_end,
                             buffers, threads, out, io);
}

Status ProbeMainColumn(const Table& table, ColumnId column,
                       const Predicate& pred, const PositionList& in,
                       uint32_t queue_depth, PositionList* out, IoStats* io,
                       BufferManager* buffers) {
  if (buffers == nullptr) buffers = table.buffers();
  if (in.empty()) return Status::Ok();
  if (table.location(column) == ColumnLocation::kDram) {
    const AbstractColumn* mrc = table.mrc(column);
    HYTAP_ASSERT(mrc != nullptr, "DRAM column without MRC");
    mrc->Probe(pred.LoPtr(), pred.HiPtr(), in, out);
    if (io != nullptr) io->dram_ns += 2 * kDramTouchNs * in.size();
    return Status::Ok();
  }
  const Sscg* sscg = table.sscg();
  HYTAP_ASSERT(sscg != nullptr, "SSCG column without SSCG");
  const int slot = sscg->layout().SlotOf(column);
  HYTAP_ASSERT(slot >= 0, "column not in SSCG");
  return sscg->ProbeSlot(static_cast<size_t>(slot), pred.LoPtr(),
                         pred.HiPtr(), in, buffers, queue_depth, out,
                         io);
}

void ScanDeltaColumn(const Table& table, ColumnId column,
                     const Predicate& pred, PositionList* out, IoStats* io,
                     size_t limit) {
  const AbstractColumn* delta = table.delta(column);
  const size_t rows = std::min(limit, delta->size());
  if (rows == 0) return;
  if (rows == delta->size()) {
    delta->ScanBetween(pred.LoPtr(), pred.HiPtr(), out);
  } else {
    delta->ScanBetweenRange(pred.LoPtr(), pred.HiPtr(), 0, rows, out);
  }
  if (io != nullptr) {
    io->dram_ns += 2 * kDramTouchNs * rows / 8 + 1;
  }
}

void ProbeDeltaColumn(const Table& table, ColumnId column,
                      const Predicate& pred, const PositionList& in,
                      PositionList* out, IoStats* io) {
  if (in.empty()) return;
  const AbstractColumn* delta = table.delta(column);
  delta->Probe(pred.LoPtr(), pred.HiPtr(), in, out);
  if (io != nullptr) io->dram_ns += 2 * kDramTouchNs * in.size();
}

}  // namespace hytap

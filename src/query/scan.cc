#include "query/scan.h"

#include "common/assert.h"
#include "common/thread_pool.h"
#include "storage/dictionary_column.h"

namespace hytap {

namespace {

/// Simulated cost of a vectorized scan over a dictionary-encoded column:
/// the bit-packed code vector streams through at DRAM bandwidth.
uint64_t MrcScanCostNs(const AbstractColumn* column) {
  const uint64_t bytes = column->MemoryUsage();
  return bytes / kDramScanBytesPerNs + 1;
}

}  // namespace

void ParallelScanColumn(const AbstractColumn& column, const Value* lo,
                        const Value* hi, uint32_t threads,
                        PositionList* out) {
  const size_t n = column.size();
  const size_t morsels = ThreadPool::MorselCount(0, n, kScanMorselRows);
  if (morsels <= 1 || threads <= 1) {
    column.ScanBetweenRange(lo, hi, 0, n, out);
    return;
  }
  std::vector<PositionList> parts(morsels);
  ThreadPool::Global().ParallelFor(
      0, n, kScanMorselRows, threads,
      [&](size_t m, size_t row_begin, size_t row_end) {
        column.ScanBetweenRange(lo, hi, row_begin, row_end, &parts[m]);
      });
  for (const PositionList& part : parts) {
    out->insert(out->end(), part.begin(), part.end());
  }
}

Status ScanMainColumn(const Table& table, ColumnId column,
                      const Predicate& pred, uint32_t threads,
                      PositionList* out, IoStats* io) {
  if (table.main_row_count() == 0) return Status::Ok();
  if (table.location(column) == ColumnLocation::kDram) {
    const AbstractColumn* mrc = table.mrc(column);
    HYTAP_ASSERT(mrc != nullptr, "DRAM column without MRC");
    ParallelScanColumn(*mrc, pred.LoPtr(), pred.HiPtr(), threads, out);
    if (io != nullptr) io->dram_ns += MrcScanCostNs(mrc);
    return Status::Ok();
  }
  const Sscg* sscg = table.sscg();
  HYTAP_ASSERT(sscg != nullptr, "SSCG column without SSCG");
  const int slot = sscg->layout().SlotOf(column);
  HYTAP_ASSERT(slot >= 0, "column not in SSCG");
  return sscg->ScanSlot(static_cast<size_t>(slot), pred.LoPtr(), pred.HiPtr(),
                        table.buffers(), threads, out, io);
}

Status ProbeMainColumn(const Table& table, ColumnId column,
                       const Predicate& pred, const PositionList& in,
                       uint32_t queue_depth, PositionList* out, IoStats* io) {
  if (in.empty()) return Status::Ok();
  if (table.location(column) == ColumnLocation::kDram) {
    const AbstractColumn* mrc = table.mrc(column);
    HYTAP_ASSERT(mrc != nullptr, "DRAM column without MRC");
    mrc->Probe(pred.LoPtr(), pred.HiPtr(), in, out);
    if (io != nullptr) io->dram_ns += 2 * kDramTouchNs * in.size();
    return Status::Ok();
  }
  const Sscg* sscg = table.sscg();
  HYTAP_ASSERT(sscg != nullptr, "SSCG column without SSCG");
  const int slot = sscg->layout().SlotOf(column);
  HYTAP_ASSERT(slot >= 0, "column not in SSCG");
  return sscg->ProbeSlot(static_cast<size_t>(slot), pred.LoPtr(),
                         pred.HiPtr(), in, table.buffers(), queue_depth, out,
                         io);
}

void ScanDeltaColumn(const Table& table, ColumnId column,
                     const Predicate& pred, PositionList* out, IoStats* io) {
  const AbstractColumn* delta = table.delta(column);
  if (delta->size() == 0) return;
  delta->ScanBetween(pred.LoPtr(), pred.HiPtr(), out);
  if (io != nullptr) {
    io->dram_ns += 2 * kDramTouchNs * delta->size() / 8 + 1;
  }
}

void ProbeDeltaColumn(const Table& table, ColumnId column,
                      const Predicate& pred, const PositionList& in,
                      PositionList* out, IoStats* io) {
  if (in.empty()) return;
  const AbstractColumn* delta = table.delta(column);
  delta->Probe(pred.LoPtr(), pred.HiPtr(), in, out);
  if (io != nullptr) io->dram_ns += 2 * kDramTouchNs * in.size();
}

}  // namespace hytap

#include "query/statistics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/assert.h"

namespace hytap {

double Histogram::ToDouble(const Value& v) {
  switch (v.type()) {
    case DataType::kInt32:
      return double(v.AsInt32());
    case DataType::kInt64:
      return double(v.AsInt64());
    case DataType::kFloat:
      return double(v.AsFloat());
    case DataType::kDouble:
      return v.AsDouble();
    case DataType::kString:
      HYTAP_UNREACHABLE("no histogram over strings");
  }
  HYTAP_UNREACHABLE("invalid DataType");
}

Histogram Histogram::Build(const std::vector<Value>& values,
                           size_t bucket_count) {
  Histogram h;
  if (values.empty() || values[0].type() == DataType::kString) return h;
  HYTAP_ASSERT(bucket_count >= 1, "need at least one bucket");
  h.row_count_ = values.size();
  h.min_ = h.max_ = ToDouble(values[0]);
  for (const Value& v : values) {
    const double x = ToDouble(v);
    h.min_ = std::min(h.min_, x);
    h.max_ = std::max(h.max_, x);
  }
  if (h.max_ == h.min_) bucket_count = 1;
  h.bucket_width_ = (h.max_ - h.min_) / double(bucket_count);
  if (h.bucket_width_ == 0.0) h.bucket_width_ = 1.0;
  h.buckets_.assign(bucket_count, 0);
  std::vector<std::set<double>> distinct(bucket_count);
  for (const Value& v : values) {
    const double x = ToDouble(v);
    size_t b = size_t((x - h.min_) / h.bucket_width_);
    if (b >= bucket_count) b = bucket_count - 1;
    ++h.buckets_[b];
    // Exact per-bucket distinct sets are fine at our statistics sample
    // sizes; production systems would use sketches here.
    distinct[b].insert(x);
  }
  h.bucket_distincts_.resize(bucket_count);
  for (size_t b = 0; b < bucket_count; ++b) {
    h.bucket_distincts_[b] = std::max<uint64_t>(1, distinct[b].size());
  }
  return h;
}

double Histogram::EstimateRangeSelectivity(const Value* lo,
                                           const Value* hi) const {
  if (empty() || row_count_ == 0) return 1.0;
  const double lo_x = lo == nullptr ? min_ : ToDouble(*lo);
  const double hi_x = hi == nullptr ? max_ : ToDouble(*hi);
  if (hi_x < lo_x) return 0.0;
  double rows = 0.0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const double b_lo = min_ + double(b) * bucket_width_;
    const double b_hi = b_lo + bucket_width_;
    const double overlap_lo = std::max(lo_x, b_lo);
    const double overlap_hi = std::min(hi_x, b_hi);
    if (overlap_hi <= overlap_lo) {
      // Point overlap at a closed boundary still counts for equality-like
      // ranges.
      if (overlap_hi == overlap_lo && lo_x == hi_x && lo_x >= b_lo &&
          lo_x <= b_hi) {
        rows += double(buckets_[b]) / double(bucket_distincts_[b]);
        break;
      }
      continue;
    }
    const double fraction = (overlap_hi - overlap_lo) / bucket_width_;
    rows += double(buckets_[b]) * std::min(1.0, fraction);
  }
  return std::min(1.0, rows / double(row_count_));
}

double Histogram::EstimateEqualitySelectivity(const Value& value) const {
  if (empty() || row_count_ == 0) return 1.0;
  const double x = ToDouble(value);
  if (x < min_ || x > max_) return 0.0;
  size_t b = size_t((x - min_) / bucket_width_);
  if (b >= buckets_.size()) b = buckets_.size() - 1;
  const double rows =
      double(buckets_[b]) / double(bucket_distincts_[b]);
  return std::min(1.0, rows / double(row_count_));
}

TableStatistics TableStatistics::Build(
    const Schema& schema,
    const std::vector<std::vector<Value>>& column_values,
    size_t bucket_count) {
  HYTAP_ASSERT(column_values.size() == schema.size(),
               "column arity mismatch");
  TableStatistics stats;
  stats.histograms_.resize(schema.size());
  stats.distinct_fractions_.assign(schema.size(), 1.0);
  for (ColumnId c = 0; c < schema.size(); ++c) {
    if (schema[c].type != DataType::kString) {
      stats.histograms_[c] = Histogram::Build(column_values[c], bucket_count);
    }
    // Distinct estimate for the fallback path.
    std::set<std::string> distinct;
    for (const Value& v : column_values[c]) distinct.insert(v.ToString());
    if (!distinct.empty()) {
      stats.distinct_fractions_[c] = 1.0 / double(distinct.size());
    }
  }
  return stats;
}

double TableStatistics::EstimateSelectivity(ColumnId column, const Value* lo,
                                            const Value* hi) const {
  HYTAP_ASSERT(column < histograms_.size(), "column out of range");
  const Histogram& h = histograms_[column];
  if (h.empty()) {
    // String / unsupported column: equality uses 1/distinct; open ranges are
    // assumed unselective.
    if (lo != nullptr && hi != nullptr && *lo == *hi) {
      return distinct_fractions_[column];
    }
    return 0.5;
  }
  if (lo != nullptr && hi != nullptr && *lo == *hi) {
    return h.EstimateEqualitySelectivity(*lo);
  }
  return h.EstimateRangeSelectivity(lo, hi);
}

}  // namespace hytap

#include "io/workload_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace hytap {

namespace {

/// Reads the next non-empty, non-comment line; returns false at EOF.
bool NextLine(std::istringstream& in, std::string* line) {
  while (std::getline(in, *line)) {
    const size_t start = line->find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if ((*line)[start] == '#') continue;
    *line = line->substr(start);
    return true;
  }
  return false;
}

}  // namespace

std::string SerializeWorkload(const Workload& workload) {
  std::ostringstream out;
  out << "hytap-workload v1\n";
  out << "columns " << workload.column_count() << "\n";
  out.precision(17);
  for (size_t i = 0; i < workload.column_count(); ++i) {
    const std::string name = i < workload.column_names.size() &&
                                     !workload.column_names[i].empty()
                                 ? workload.column_names[i]
                                 : "col_" + std::to_string(i);
    out << name << " " << workload.column_sizes[i] << " "
        << workload.selectivities[i] << "\n";
  }
  out << "queries " << workload.query_count() << "\n";
  for (const QueryTemplate& q : workload.queries) {
    out << q.frequency;
    for (uint32_t c : q.columns) out << " " << c;
    out << "\n";
  }
  return out.str();
}

StatusOr<Workload> ParseWorkload(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!NextLine(in, &line) || line.rfind("hytap-workload", 0) != 0) {
    return Status::InvalidArgument("missing 'hytap-workload' header");
  }
  if (!NextLine(in, &line)) {
    return Status::InvalidArgument("missing 'columns' section");
  }
  size_t n = 0;
  if (std::sscanf(line.c_str(), "columns %zu", &n) != 1) {
    return Status::InvalidArgument("malformed 'columns' line: " + line);
  }
  Workload workload;
  workload.column_sizes.reserve(n);
  workload.selectivities.reserve(n);
  workload.column_names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!NextLine(in, &line)) {
      return Status::InvalidArgument("unexpected EOF in columns");
    }
    std::istringstream fields(line);
    std::string name;
    double size = 0, selectivity = 0;
    if (!(fields >> name >> size >> selectivity)) {
      return Status::InvalidArgument("malformed column line: " + line);
    }
    if (size <= 0 || selectivity <= 0 || selectivity > 1) {
      return Status::InvalidArgument("column out of range: " + line);
    }
    workload.column_names.push_back(name);
    workload.column_sizes.push_back(size);
    workload.selectivities.push_back(selectivity);
  }
  if (!NextLine(in, &line)) {
    return Status::InvalidArgument("missing 'queries' section");
  }
  size_t q = 0;
  if (std::sscanf(line.c_str(), "queries %zu", &q) != 1) {
    return Status::InvalidArgument("malformed 'queries' line: " + line);
  }
  workload.queries.reserve(q);
  for (size_t j = 0; j < q; ++j) {
    if (!NextLine(in, &line)) {
      return Status::InvalidArgument("unexpected EOF in queries");
    }
    std::istringstream fields(line);
    QueryTemplate tmpl;
    if (!(fields >> tmpl.frequency) || tmpl.frequency < 0) {
      return Status::InvalidArgument("malformed query line: " + line);
    }
    uint32_t column;
    while (fields >> column) {
      if (column >= n) {
        return Status::InvalidArgument("query references unknown column: " +
                                       line);
      }
      tmpl.columns.push_back(column);
    }
    if (tmpl.columns.empty()) {
      return Status::InvalidArgument("query without columns: " + line);
    }
    workload.queries.push_back(std::move(tmpl));
  }
  return workload;
}

Status WriteWorkloadFile(const std::string& path, const Workload& workload) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << SerializeWorkload(workload);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

StatusOr<Workload> ReadWorkloadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return ParseWorkload(text.str());
}

std::string SerializeWorkloadWindows(const WorkloadWindowSeries& series) {
  std::ostringstream out;
  out.precision(17);
  out << "hytap-workload-windows v1\n";
  out << "columns " << series.column_count << " window_ns "
      << series.window_ns << "\n";
  out << "windows " << series.windows.size() << "\n";
  for (const WorkloadWindowSnapshot& w : series.windows) {
    out << "window " << w.index << " " << w.start_ns << " " << w.simulated_ns
        << " " << w.queries << " " << w.failures << " " << w.index_steps
        << " " << w.scan_steps << " " << w.probe_steps << " "
        << w.rescan_steps << "\n";
    out << "freq";
    for (double g : w.column_frequency) out << " " << g;
    out << "\nselsum";
    for (double s : w.selectivity_sum) out << " " << s;
    out << "\nselcnt";
    for (uint64_t c : w.selectivity_samples) out << " " << c;
    out << "\ntemplates " << w.templates.size() << "\n";
    for (const auto& [columns, count] : w.templates) {
      out << count;
      for (ColumnId c : columns) out << " " << c;
      out << "\n";
    }
  }
  return out.str();
}

StatusOr<WorkloadWindowSeries> ParseWorkloadWindows(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!NextLine(in, &line) || line.rfind("hytap-workload-windows", 0) != 0) {
    return Status::InvalidArgument(
        "missing 'hytap-workload-windows' header");
  }
  WorkloadWindowSeries series;
  if (!NextLine(in, &line) ||
      std::sscanf(line.c_str(), "columns %zu window_ns %" SCNu64,
                  &series.column_count, &series.window_ns) != 2) {
    return Status::InvalidArgument("malformed 'columns' line: " + line);
  }
  if (series.window_ns == 0) {
    return Status::InvalidArgument("window_ns must be positive");
  }
  size_t k = 0;
  if (!NextLine(in, &line) ||
      std::sscanf(line.c_str(), "windows %zu", &k) != 1) {
    return Status::InvalidArgument("malformed 'windows' line: " + line);
  }
  series.windows.reserve(k);
  const size_t n = series.column_count;
  // Per-column vector sections share one reader: `selcnt` holds u64 counts
  // but doubles read them losslessly up to 2^53 — far beyond any ring.
  auto read_doubles = [&](const char* tag, std::vector<double>* out_values) {
    if (!NextLine(in, &line)) return false;
    std::istringstream fields(line);
    std::string got;
    if (!(fields >> got) || got != tag) return false;
    out_values->reserve(n);
    double value = 0;
    while (fields >> value) out_values->push_back(value);
    return out_values->size() == n;
  };
  for (size_t i = 0; i < k; ++i) {
    WorkloadWindowSnapshot w;
    if (!NextLine(in, &line) ||
        std::sscanf(line.c_str(),
                    "window %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                    " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                    " %" SCNu64,
                    &w.index, &w.start_ns, &w.simulated_ns, &w.queries,
                    &w.failures, &w.index_steps, &w.scan_steps,
                    &w.probe_steps, &w.rescan_steps) != 9) {
      return Status::InvalidArgument("malformed 'window' line: " + line);
    }
    std::vector<double> counts;
    if (!read_doubles("freq", &w.column_frequency) ||
        !read_doubles("selsum", &w.selectivity_sum) ||
        !read_doubles("selcnt", &counts)) {
      return Status::InvalidArgument(
          "malformed per-column section in window " + std::to_string(i));
    }
    w.selectivity_samples.reserve(n);
    for (double c : counts) {
      if (c < 0) {
        return Status::InvalidArgument("negative selectivity sample count");
      }
      w.selectivity_samples.push_back(uint64_t(c));
    }
    size_t t = 0;
    if (!NextLine(in, &line) ||
        std::sscanf(line.c_str(), "templates %zu", &t) != 1) {
      return Status::InvalidArgument("malformed 'templates' line: " + line);
    }
    for (size_t j = 0; j < t; ++j) {
      if (!NextLine(in, &line)) {
        return Status::InvalidArgument("unexpected EOF in templates");
      }
      std::istringstream fields(line);
      uint64_t count = 0;
      if (!(fields >> count)) {
        return Status::InvalidArgument("malformed template line: " + line);
      }
      std::vector<ColumnId> columns;
      ColumnId column;
      while (fields >> column) {
        if (column >= n) {
          return Status::InvalidArgument(
              "template references unknown column: " + line);
        }
        columns.push_back(column);
      }
      if (columns.empty()) {
        return Status::InvalidArgument("template without columns: " + line);
      }
      w.templates[columns] = count;
    }
    series.windows.push_back(std::move(w));
  }
  return series;
}

Status WriteWorkloadWindowsFile(const std::string& path,
                                const WorkloadWindowSeries& series) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << SerializeWorkloadWindows(series);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

StatusOr<WorkloadWindowSeries> ReadWorkloadWindowsFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return ParseWorkloadWindows(text.str());
}

std::string FrontierToCsv(const ExplicitFrontier& frontier,
                          const Workload& workload) {
  std::ostringstream out;
  out << "step,column,name,critical_alpha,dram_bytes,scan_cost\n";
  out.precision(12);
  for (size_t k = 0; k < frontier.points.size(); ++k) {
    const FrontierPoint& p = frontier.points[k];
    const std::string name = p.column < workload.column_names.size()
                                 ? workload.column_names[p.column]
                                 : "col_" + std::to_string(p.column);
    out << k << "," << p.column << "," << name << "," << p.alpha << ","
        << p.dram_bytes << "," << p.scan_cost << "\n";
  }
  return out.str();
}

std::string AllocationToCsv(const SelectionResult& result,
                            const Workload& workload) {
  std::ostringstream out;
  out << "column,name,size_bytes,location\n";
  out.precision(12);
  for (size_t i = 0; i < result.in_dram.size(); ++i) {
    const std::string name = i < workload.column_names.size()
                                 ? workload.column_names[i]
                                 : "col_" + std::to_string(i);
    out << i << "," << name << "," << workload.column_sizes[i] << ","
        << (result.in_dram[i] ? "dram" : "secondary") << "\n";
  }
  return out.str();
}

}  // namespace hytap

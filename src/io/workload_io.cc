#include "io/workload_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace hytap {

namespace {

/// Reads the next non-empty, non-comment line; returns false at EOF.
bool NextLine(std::istringstream& in, std::string* line) {
  while (std::getline(in, *line)) {
    const size_t start = line->find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if ((*line)[start] == '#') continue;
    *line = line->substr(start);
    return true;
  }
  return false;
}

}  // namespace

std::string SerializeWorkload(const Workload& workload) {
  std::ostringstream out;
  out << "hytap-workload v1\n";
  out << "columns " << workload.column_count() << "\n";
  out.precision(17);
  for (size_t i = 0; i < workload.column_count(); ++i) {
    const std::string name = i < workload.column_names.size() &&
                                     !workload.column_names[i].empty()
                                 ? workload.column_names[i]
                                 : "col_" + std::to_string(i);
    out << name << " " << workload.column_sizes[i] << " "
        << workload.selectivities[i] << "\n";
  }
  out << "queries " << workload.query_count() << "\n";
  for (const QueryTemplate& q : workload.queries) {
    out << q.frequency;
    for (uint32_t c : q.columns) out << " " << c;
    out << "\n";
  }
  return out.str();
}

StatusOr<Workload> ParseWorkload(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!NextLine(in, &line) || line.rfind("hytap-workload", 0) != 0) {
    return Status::InvalidArgument("missing 'hytap-workload' header");
  }
  if (!NextLine(in, &line)) {
    return Status::InvalidArgument("missing 'columns' section");
  }
  size_t n = 0;
  if (std::sscanf(line.c_str(), "columns %zu", &n) != 1) {
    return Status::InvalidArgument("malformed 'columns' line: " + line);
  }
  Workload workload;
  workload.column_sizes.reserve(n);
  workload.selectivities.reserve(n);
  workload.column_names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!NextLine(in, &line)) {
      return Status::InvalidArgument("unexpected EOF in columns");
    }
    std::istringstream fields(line);
    std::string name;
    double size = 0, selectivity = 0;
    if (!(fields >> name >> size >> selectivity)) {
      return Status::InvalidArgument("malformed column line: " + line);
    }
    if (size <= 0 || selectivity <= 0 || selectivity > 1) {
      return Status::InvalidArgument("column out of range: " + line);
    }
    workload.column_names.push_back(name);
    workload.column_sizes.push_back(size);
    workload.selectivities.push_back(selectivity);
  }
  if (!NextLine(in, &line)) {
    return Status::InvalidArgument("missing 'queries' section");
  }
  size_t q = 0;
  if (std::sscanf(line.c_str(), "queries %zu", &q) != 1) {
    return Status::InvalidArgument("malformed 'queries' line: " + line);
  }
  workload.queries.reserve(q);
  for (size_t j = 0; j < q; ++j) {
    if (!NextLine(in, &line)) {
      return Status::InvalidArgument("unexpected EOF in queries");
    }
    std::istringstream fields(line);
    QueryTemplate tmpl;
    if (!(fields >> tmpl.frequency) || tmpl.frequency < 0) {
      return Status::InvalidArgument("malformed query line: " + line);
    }
    uint32_t column;
    while (fields >> column) {
      if (column >= n) {
        return Status::InvalidArgument("query references unknown column: " +
                                       line);
      }
      tmpl.columns.push_back(column);
    }
    if (tmpl.columns.empty()) {
      return Status::InvalidArgument("query without columns: " + line);
    }
    workload.queries.push_back(std::move(tmpl));
  }
  return workload;
}

Status WriteWorkloadFile(const std::string& path, const Workload& workload) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << SerializeWorkload(workload);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

StatusOr<Workload> ReadWorkloadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return ParseWorkload(text.str());
}

std::string FrontierToCsv(const ExplicitFrontier& frontier,
                          const Workload& workload) {
  std::ostringstream out;
  out << "step,column,name,critical_alpha,dram_bytes,scan_cost\n";
  out.precision(12);
  for (size_t k = 0; k < frontier.points.size(); ++k) {
    const FrontierPoint& p = frontier.points[k];
    const std::string name = p.column < workload.column_names.size()
                                 ? workload.column_names[p.column]
                                 : "col_" + std::to_string(p.column);
    out << k << "," << p.column << "," << name << "," << p.alpha << ","
        << p.dram_bytes << "," << p.scan_cost << "\n";
  }
  return out.str();
}

std::string AllocationToCsv(const SelectionResult& result,
                            const Workload& workload) {
  std::ostringstream out;
  out << "column,name,size_bytes,location\n";
  out.precision(12);
  for (size_t i = 0; i < result.in_dram.size(); ++i) {
    const std::string name = i < workload.column_names.size()
                                 ? workload.column_names[i]
                                 : "col_" + std::to_string(i);
    out << i << "," << name << "," << workload.column_sizes[i] << ","
        << (result.in_dram[i] ? "dram" : "secondary") << "\n";
  }
  return out.str();
}

}  // namespace hytap

#ifndef HYTAP_IO_PERFETTO_EXPORT_H_
#define HYTAP_IO_PERFETTO_EXPORT_H_

// Renders a flight-recorder timeline (and optionally an Explain trace tree)
// as Chrome trace-event / Perfetto JSON, openable in ui.perfetto.dev
// (DESIGN.md §17).
//
// Track layout:
//   pid 1 "serving"         tid 1 "oltp", tid 2 "olap", tid 3 "slo"
//   pid 2 "maintenance"     tid 1 "retier", tid 2 "structural"
//   pid 3 "secondary_store" tid 1 "store"
//   pid 4 "explain"         tid 1 "operator_tree" (only with a trace)
//
// Per ticket the exporter reconstructs the execute interval from its
// terminal event (a complete/cancel event at simulated instant C carrying
// its simulated cost b executes over [C - b, C]) and emits a ph:"X" slice on
// its class lane plus s/t/f flow events (id = ticket + 1) linking
// admit -> dispatch -> terminal. Store fault events recorded mid-execution
// (deterministically stamped window=0/sim=0, keyed by ticket + seq) are
// placed inside the owning ticket's execute slice at start + seq. Anomaly
// events become global instants. All timestamps derive from the simulated
// clock, so the rendered JSON is bit-identical across worker counts.

#include <cstdint>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/trace.h"

namespace hytap {

/// Renders `events` (canonically sorted, as returned by Snapshot() or
/// ReadFlightDump()) as a Chrome trace-event JSON object. `label` is stored
/// as trace-level metadata (e.g. the dump's anomaly reason). `explain`,
/// when non-null, adds the operator tree as nested slices on its own
/// process.
std::string RenderPerfettoJson(const std::vector<FlightEvent>& events,
                               const std::string& label = "",
                               const TraceSpan* explain = nullptr);

}  // namespace hytap

#endif  // HYTAP_IO_PERFETTO_EXPORT_H_

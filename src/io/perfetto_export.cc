#include "io/perfetto_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>

namespace hytap {
namespace {

// Fixed process/thread ids of the track layout (see the header comment).
constexpr int kPidServing = 1;
constexpr int kPidMaintenance = 2;
constexpr int kPidStore = 3;
constexpr int kPidExplain = 4;
constexpr int kTidOltp = 1;
constexpr int kTidOlap = 2;
constexpr int kTidSlo = 3;
constexpr int kTidRetier = 1;
constexpr int kTidStructural = 2;
constexpr int kTidStore = 1;
constexpr int kTidExplain = 1;

void AppendF(std::string* out, const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<size_t>(size_t(n), sizeof(buffer)));
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Simulated ns -> trace-event µs. Three decimals keep full ns precision.
void AppendTs(std::string* out, const char* key, uint64_t ns) {
  AppendF(out, "\"%s\": %.3f", key, double(ns) / 1000.0);
}

void AppendMeta(std::string* out, int pid, int tid, const char* what,
                const char* name) {
  AppendF(out,
          ",\n    {\"ph\": \"M\", \"pid\": %d, \"tid\": %d, \"name\": "
          "\"%s\", \"args\": {\"name\": \"%s\"}}",
          pid, tid, what, name);
}

struct TicketInfo {
  uint64_t start_ns = 0;  // clamped to its lane's cursor
  uint64_t end_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t cls = 0;  // QueryClass
  uint16_t type = 0;
  uint16_t status = 0;
};

int LaneOf(uint64_t cls) { return cls == 0 ? kTidOltp : kTidOlap; }

bool IsSessionTerminal(uint16_t type) {
  return type == uint16_t(FlightEventType::kSessionShed) ||
         type == uint16_t(FlightEventType::kSessionCancel) ||
         type == uint16_t(FlightEventType::kSessionComplete);
}

bool IsStoreEvent(uint16_t type) {
  return type >= uint16_t(FlightEventType::kStoreFault) &&
         type <= uint16_t(FlightEventType::kStoreVerifyFail);
}

bool IsRetierEvent(uint16_t type) {
  return type >= uint16_t(FlightEventType::kRetierTrigger) &&
         type <= uint16_t(FlightEventType::kRetierPlanDone);
}

bool IsStructuralEvent(uint16_t type) {
  return type >= uint16_t(FlightEventType::kMergeBegin) &&
         type <= uint16_t(FlightEventType::kMigrationEnd);
}

/// One trace event with common fields; `extra` holds pre-rendered
/// ph/dur/args fragments.
void AppendEvent(std::string* out, const char* name, int pid, int tid,
                 uint64_t ts_ns, const std::string& extra) {
  AppendF(out, ",\n    {\"name\": \"%s\", \"pid\": %d, \"tid\": %d, ", name,
          pid, tid);
  AppendTs(out, "ts", ts_ns);
  *out += extra;
  *out += "}";
}

std::string InstantExtra(const FlightEvent& event) {
  std::string extra = ", \"ph\": \"i\", \"s\": \"t\"";
  AppendF(&extra,
          ", \"args\": {\"window\": %" PRIu64 ", \"ticket\": %" PRIu64
          ", \"a\": %" PRIu64 ", \"b\": %" PRIu64 ", \"code\": %u}",
          event.window, event.ticket, event.a, event.b, unsigned(event.code));
  return extra;
}

void EmitExplainSpan(std::string* out, const TraceSpan& span,
                     uint64_t start_ns) {
  std::string extra = ", \"ph\": \"X\", ";
  AppendTs(&extra, "dur", span.simulated_ns);
  extra += ", \"args\": {";
  bool first = true;
  for (const auto& [key, value] : span.annotations) {
    AppendF(&extra, "%s\"%s\": \"%s\"", first ? "" : ", ",
            JsonEscape(key).c_str(), JsonEscape(value).c_str());
    first = false;
  }
  extra += "}";
  AppendEvent(out, JsonEscape(span.name).c_str(), kPidExplain, kTidExplain,
              start_ns, extra);
  // Children nest sequentially from the parent's start, each occupying its
  // own inclusive span.
  uint64_t cursor = start_ns;
  for (const TraceSpan& child : span.children) {
    EmitExplainSpan(out, child, cursor);
    cursor += child.simulated_ns;
  }
}

}  // namespace

std::string RenderPerfettoJson(const std::vector<FlightEvent>& events,
                               const std::string& label,
                               const TraceSpan* explain) {
  // Pass 1: reconstruct per-ticket execute intervals from terminal events.
  // The flush emits terminals in ticket order and the simulated clock only
  // advances there, so end instants are nondecreasing in ticket; lane
  // cursors clamp the derived starts when the monitor was detached (then
  // sim_ns stalls while costs stay positive).
  std::map<uint64_t, TicketInfo> tickets;
  std::set<uint64_t> admitted;  // tickets whose admit survived the ring
  for (const FlightEvent& event : events) {
    if (event.type == uint16_t(FlightEventType::kSessionAdmit)) {
      admitted.insert(event.ticket);
    }
    if (!IsSessionTerminal(event.type)) continue;
    TicketInfo info;
    info.end_ns = event.sim_ns;
    info.dur_ns =
        event.type == uint16_t(FlightEventType::kSessionShed) ? 0 : event.b;
    info.cls = event.a;
    info.type = event.type;
    info.status = event.code;
    tickets[event.ticket] = info;
  }
  uint64_t lane_cursor[2] = {0, 0};
  for (auto& [ticket, info] : tickets) {
    (void)ticket;
    uint64_t& cursor = lane_cursor[info.cls == 0 ? 0 : 1];
    if (info.end_ns < cursor) info.end_ns = cursor;
    uint64_t start =
        info.dur_ns > info.end_ns ? 0 : info.end_ns - info.dur_ns;
    if (start < cursor) start = cursor;
    if (start > info.end_ns) info.end_ns = start;
    info.start_ns = start;
    info.dur_ns = info.end_ns - start;
    cursor = info.end_ns;
  }

  std::string out = "{\n  \"displayTimeUnit\": \"ns\",\n";
  AppendF(&out, "  \"otherData\": {\"label\": \"%s\"},\n",
          JsonEscape(label).c_str());
  out += "  \"traceEvents\": [";
  out += "\n    {\"ph\": \"M\", \"pid\": 1, \"tid\": 1, \"name\": "
         "\"process_name\", \"args\": {\"name\": \"serving\"}}";
  AppendMeta(&out, kPidServing, kTidOltp, "thread_name", "oltp");
  AppendMeta(&out, kPidServing, kTidOlap, "thread_name", "olap");
  AppendMeta(&out, kPidServing, kTidSlo, "thread_name", "slo");
  AppendMeta(&out, kPidMaintenance, 0, "process_name", "maintenance");
  AppendMeta(&out, kPidMaintenance, kTidRetier, "thread_name", "retier");
  AppendMeta(&out, kPidMaintenance, kTidStructural, "thread_name",
             "structural");
  AppendMeta(&out, kPidStore, 0, "process_name", "secondary_store");
  AppendMeta(&out, kPidStore, kTidStore, "thread_name", "store");
  if (explain != nullptr) {
    AppendMeta(&out, kPidExplain, 0, "process_name", "explain");
    AppendMeta(&out, kPidExplain, kTidExplain, "thread_name",
               "operator_tree");
  }

  // Execute slices + admit/dispatch flows, in ticket (= simulated) order so
  // every lane's X slices are emitted ts-monotonic and non-overlapping.
  for (const auto& [ticket, info] : tickets) {
    const int tid = LaneOf(info.cls);
    const uint64_t flow_id = ticket + 1;
    std::string extra = ", \"ph\": \"X\", ";
    AppendTs(&extra, "dur", info.dur_ns);
    AppendF(&extra,
            ", \"args\": {\"ticket\": %" PRIu64
            ", \"class\": \"%s\", \"status\": %u, \"outcome\": \"%s\", "
            "\"simulated_ns\": %" PRIu64 "}",
            ticket, info.cls == 0 ? "oltp" : "olap", unsigned(info.status),
            FlightEventTypeName(info.type), info.dur_ns);
    char name[64];
    std::snprintf(name, sizeof(name), "ticket %" PRIu64 " %s", ticket,
                  FlightEventTypeName(info.type));
    AppendEvent(&out, name, kPidServing, tid, info.start_ns, extra);
    // Close the admit -> dispatch -> terminal flow. Skipped when the ring
    // evicted this ticket's admit event (then no flow start exists either).
    if (admitted.count(ticket) != 0) {
      std::string flow_end = ", \"ph\": \"f\", \"bp\": \"e\", \"cat\": "
                             "\"ticket\"";
      AppendF(&flow_end, ", \"id\": %" PRIu64, flow_id);
      AppendEvent(&out, "ticket", kPidServing, tid, info.end_ns, flow_end);
    }
  }

  for (const FlightEvent& event : events) {
    const char* name = FlightEventTypeName(event.type);
    switch (static_cast<FlightEventType>(event.type)) {
      case FlightEventType::kSessionAdmit:
      case FlightEventType::kSessionDispatch: {
        // Admit/dispatch events are deliberately unstamped (their wall-clock
        // instants vary with worker interleaving); both phases are
        // instantaneous on the simulated clock, so they pin to the owning
        // ticket's execute start.
        auto it = tickets.find(event.ticket);
        if (it == tickets.end()) break;  // dump window missed the terminal
        const int tid = LaneOf(it->second.cls);
        const bool admit =
            event.type == uint16_t(FlightEventType::kSessionAdmit);
        // A dispatch step without its admit (ring eviction) would dangle a
        // flow with no start; keep the instant, drop the flow step.
        if (admit || admitted.count(event.ticket) != 0) {
          std::string flow =
              admit ? std::string(", \"ph\": \"s\", \"cat\": \"ticket\"")
                    : std::string(", \"ph\": \"t\", \"cat\": \"ticket\"");
          AppendF(&flow, ", \"id\": %" PRIu64, event.ticket + 1);
          AppendEvent(&out, "ticket", kPidServing, tid, it->second.start_ns,
                      flow);
        }
        AppendEvent(&out, name, kPidServing, tid, it->second.start_ns,
                    InstantExtra(event));
        break;
      }
      case FlightEventType::kSessionReject:
        AppendEvent(&out, name, kPidServing, LaneOf(event.a), 0,
                    InstantExtra(event));
        break;
      case FlightEventType::kSessionShed:
      case FlightEventType::kSessionCancel:
      case FlightEventType::kSessionComplete:
        break;  // rendered as X slices above
      case FlightEventType::kPhaseAttribution:
        AppendEvent(&out, name, kPidServing, LaneOf(event.code >> 2),
                    event.sim_ns, InstantExtra(event));
        break;
      case FlightEventType::kSloBreach:
      case FlightEventType::kSloClear:
        AppendEvent(&out, name, kPidServing, kTidSlo, event.sim_ns,
                    InstantExtra(event));
        break;
      case FlightEventType::kAnomaly: {
        std::string extra = ", \"ph\": \"i\", \"s\": \"g\"";
        AppendF(&extra, ", \"args\": {\"kind\": %u, \"detail\": %" PRIu64
                "}",
                unsigned(event.code), event.a);
        AppendEvent(&out, name, kPidServing, kTidSlo, event.sim_ns, extra);
        break;
      }
      default: {
        if (IsStoreEvent(event.type)) {
          // Streamed store events carry window=0/sim=0 and a (ticket, seq)
          // key; place them just inside the owning execute slice. Serial
          // store events carry real stamps and map directly.
          uint64_t ts = event.sim_ns;
          if (event.window == 0 && event.sim_ns == 0) {
            auto it = tickets.find(event.ticket);
            if (it != tickets.end()) {
              ts = it->second.start_ns + event.seq;
              if (ts > it->second.end_ns) ts = it->second.end_ns;
            }
          }
          AppendEvent(&out, name, kPidStore, kTidStore, ts,
                      InstantExtra(event));
        } else if (IsRetierEvent(event.type)) {
          AppendEvent(&out, name, kPidMaintenance, kTidRetier, event.sim_ns,
                      InstantExtra(event));
        } else if (IsStructuralEvent(event.type)) {
          AppendEvent(&out, name, kPidMaintenance, kTidStructural,
                      event.sim_ns, InstantExtra(event));
        }
        // kNone / unknown types are dropped.
        break;
      }
    }
  }

  if (explain != nullptr) {
    EmitExplainSpan(&out, *explain, 0);
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace hytap

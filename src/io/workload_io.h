#ifndef HYTAP_IO_WORKLOAD_IO_H_
#define HYTAP_IO_WORKLOAD_IO_H_

#include <string>

#include "common/status.h"
#include "selection/selectors.h"
#include "workload/workload.h"
#include "workload/workload_monitor.h"

namespace hytap {

/// Plain-text serialization of a selection-model workload, so captured plan
/// caches can be exported, versioned, and fed to the CLI tools.
///
/// Format (line oriented, '#' comments):
///   hytap-workload v1
///   columns <N>
///   <name> <size_bytes> <selectivity>        # N lines
///   queries <Q>
///   <frequency> <col> [<col> ...]            # Q lines
std::string SerializeWorkload(const Workload& workload);

/// Parses the format above; returns a descriptive error on malformed input.
StatusOr<Workload> ParseWorkload(const std::string& text);

/// File convenience wrappers.
Status WriteWorkloadFile(const std::string& path, const Workload& workload);
StatusOr<Workload> ReadWorkloadFile(const std::string& path);

/// Plain-text serialization of a workload-monitor window series (the
/// monitor's Export()), so doctor snapshots are replayable in benches.
///
/// Format (line oriented, '#' comments):
///   hytap-workload-windows v1
///   columns <N> window_ns <W>
///   windows <K>
///   # per window:
///   window <index> <start_ns> <simulated_ns> <queries> <failures>
///          <index_steps> <scan_steps> <probe_steps> <rescan_steps>
///   freq <N doubles>
///   selsum <N doubles>
///   selcnt <N u64>
///   templates <T>
///   <count> <col> [<col> ...]                # T lines
std::string SerializeWorkloadWindows(const WorkloadWindowSeries& series);

/// Parses the format above; returns a descriptive error on malformed input.
StatusOr<WorkloadWindowSeries> ParseWorkloadWindows(const std::string& text);

/// File convenience wrappers.
Status WriteWorkloadWindowsFile(const std::string& path,
                                const WorkloadWindowSeries& series);
StatusOr<WorkloadWindowSeries> ReadWorkloadWindowsFile(
    const std::string& path);

/// CSV rendering of an explicit Pareto frontier: one line per step with the
/// column name, critical alpha, cumulative DRAM bytes, and scan cost.
std::string FrontierToCsv(const ExplicitFrontier& frontier,
                          const Workload& workload);

/// CSV rendering of an allocation (one line per column: name, size,
/// location).
std::string AllocationToCsv(const SelectionResult& result,
                            const Workload& workload);

}  // namespace hytap

#endif  // HYTAP_IO_WORKLOAD_IO_H_

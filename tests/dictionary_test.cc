#include "storage/dictionary.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace hytap {
namespace {

TEST(OrderPreservingDictionaryTest, BuildSortsAndDedups) {
  auto dict = OrderPreservingDictionary<int32_t>::Build({5, 3, 5, 1, 3, 9});
  ASSERT_EQ(dict.size(), 4u);
  EXPECT_EQ(dict.ValueFor(0), 1);
  EXPECT_EQ(dict.ValueFor(1), 3);
  EXPECT_EQ(dict.ValueFor(2), 5);
  EXPECT_EQ(dict.ValueFor(3), 9);
}

TEST(OrderPreservingDictionaryTest, OrderPreservation) {
  // Invariant: code order equals value order.
  Rng rng(11);
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextInt(-500, 500));
  auto dict = OrderPreservingDictionary<int64_t>::Build(values);
  for (ValueId c = 1; c < dict.size(); ++c) {
    EXPECT_LT(dict.ValueFor(c - 1), dict.ValueFor(c));
  }
}

TEST(OrderPreservingDictionaryTest, CodeForExact) {
  auto dict = OrderPreservingDictionary<int32_t>::Build({10, 20, 30});
  EXPECT_EQ(dict.CodeFor(10), ValueId{0});
  EXPECT_EQ(dict.CodeFor(20), ValueId{1});
  EXPECT_EQ(dict.CodeFor(30), ValueId{2});
  EXPECT_FALSE(dict.CodeFor(15).has_value());
  EXPECT_FALSE(dict.CodeFor(0).has_value());
  EXPECT_FALSE(dict.CodeFor(31).has_value());
}

TEST(OrderPreservingDictionaryTest, Bounds) {
  auto dict = OrderPreservingDictionary<int32_t>::Build({10, 20, 30});
  EXPECT_EQ(dict.LowerBoundCode(5), 0u);
  EXPECT_EQ(dict.LowerBoundCode(10), 0u);
  EXPECT_EQ(dict.LowerBoundCode(11), 1u);
  EXPECT_EQ(dict.LowerBoundCode(31), 3u);  // past the end
  EXPECT_EQ(dict.UpperBoundCode(10), 1u);
  EXPECT_EQ(dict.UpperBoundCode(9), 0u);
  EXPECT_EQ(dict.UpperBoundCode(30), 3u);
}

TEST(OrderPreservingDictionaryTest, Strings) {
  auto dict = OrderPreservingDictionary<std::string>::Build(
      {"pear", "apple", "fig", "apple"});
  ASSERT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.ValueFor(0), "apple");
  EXPECT_EQ(dict.ValueFor(2), "pear");
  EXPECT_EQ(dict.CodeFor("fig"), ValueId{1});
}

TEST(OrderPreservingDictionaryTest, EmptyDictionary) {
  auto dict = OrderPreservingDictionary<int32_t>::Build({});
  EXPECT_TRUE(dict.empty());
  EXPECT_EQ(dict.LowerBoundCode(1), 0u);
  EXPECT_FALSE(dict.CodeFor(1).has_value());
}

TEST(UnsortedDictionaryTest, InsertionOrderCodes) {
  UnsortedDictionary<int32_t> dict;
  EXPECT_EQ(dict.GetOrAdd(50), ValueId{0});
  EXPECT_EQ(dict.GetOrAdd(10), ValueId{1});
  EXPECT_EQ(dict.GetOrAdd(50), ValueId{0});  // existing
  EXPECT_EQ(dict.GetOrAdd(30), ValueId{2});
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.ValueFor(1), 10);
  EXPECT_EQ(dict.CodeFor(30), ValueId{2});
  EXPECT_FALSE(dict.CodeFor(99).has_value());
}

TEST(UnsortedDictionaryTest, StringsRoundTrip) {
  UnsortedDictionary<std::string> dict;
  const ValueId a = dict.GetOrAdd("alpha");
  const ValueId b = dict.GetOrAdd("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.ValueFor(a), "alpha");
  EXPECT_EQ(dict.ValueFor(b), "beta");
}

TEST(DictionaryTest, MemoryUsagePositive) {
  auto dict = OrderPreservingDictionary<int32_t>::Build({1, 2, 3});
  EXPECT_GT(dict.MemoryUsage(), 0u);
  UnsortedDictionary<int32_t> unsorted;
  unsorted.GetOrAdd(1);
  EXPECT_GT(unsorted.MemoryUsage(), 0u);
}

}  // namespace
}  // namespace hytap

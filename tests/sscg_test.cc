#include "storage/sscg.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hytap {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.push_back({"id", DataType::kInt32, 0});
  schema.push_back({"qty", DataType::kInt32, 0});
  schema.push_back({"amount", DataType::kDouble, 0});
  schema.push_back({"info", DataType::kString, 16});
  return schema;
}

std::vector<Row> TestRows(size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    rows.push_back(Row{Value(int32_t(r)), Value(int32_t(r % 10)),
                       Value(double(r) * 0.5),
                       Value("info-" + std::to_string(r))});
  }
  return rows;
}

class SscgTest : public ::testing::Test {
 protected:
  SscgTest()
      : store_(DeviceKind::kXpoint), buffers_(&store_, 8) {}

  SecondaryStore store_;
  BufferManager buffers_;
};

TEST_F(SscgTest, BuildWritesPages) {
  RowLayout layout(TestSchema(), {0, 1, 2, 3});
  uint64_t write_ns = 0;
  Sscg sscg(layout, TestRows(1000), &store_, &write_ns);
  EXPECT_EQ(sscg.row_count(), 1000u);
  // Row width 32 bytes -> 128 rows per page -> 8 pages.
  EXPECT_EQ(sscg.page_count(), 8u);
  EXPECT_GT(write_ns, 0u);
  EXPECT_EQ(sscg.StorageBytes(), 8u * kPageSize);
}

TEST_F(SscgTest, ReconstructTupleMatches) {
  RowLayout layout(TestSchema(), {0, 1, 2, 3});
  const auto rows = TestRows(500);
  Sscg sscg(layout, rows, &store_);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const RowId r = rng.NextBounded(500);
    IoStats io;
    Row got = *sscg.ReconstructTuple(r, &buffers_, 1, &io);
    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(got, rows[r]);
  }
}

TEST_F(SscgTest, ReconstructionIsSinglePageRead) {
  // Paper §II-A: full-width tuple reconstruction = one 4 KB page access.
  RowLayout layout(TestSchema(), {0, 1, 2, 3});
  Sscg sscg(layout, TestRows(1000), &store_);
  IoStats io;
  sscg.ReconstructTuple(999, &buffers_, 1, &io);
  EXPECT_EQ(io.page_reads + io.cache_hits, 1u);
}

TEST_F(SscgTest, CacheHitsAreCheap) {
  RowLayout layout(TestSchema(), {0, 1, 2, 3});
  Sscg sscg(layout, TestRows(100), &store_);
  IoStats miss, hit;
  sscg.ReconstructTuple(0, &buffers_, 1, &miss);
  sscg.ReconstructTuple(1, &buffers_, 1, &hit);  // same page
  EXPECT_GT(miss.device_ns, 0u);
  EXPECT_EQ(hit.device_ns, 0u);
  EXPECT_EQ(hit.cache_hits, 1u);
  EXPECT_LT(hit.TotalNs(), miss.TotalNs());
}

TEST_F(SscgTest, ProbeValue) {
  RowLayout layout(TestSchema(), {1, 2});
  const auto rows = TestRows(300);
  Sscg sscg(layout, [&] {
        std::vector<Row> subset;
        for (const Row& r : rows) subset.push_back(Row{r[1], r[2]});
        return subset;
      }(), &store_);
  IoStats io;
  EXPECT_EQ(*sscg.ProbeValue(42, 0, &buffers_, 1, &io), Value(int32_t{2}));
  EXPECT_EQ(*sscg.ProbeValue(42, 1, &buffers_, 1, &io), Value(21.0));
}

TEST_F(SscgTest, ScanSlotFindsMatches) {
  RowLayout layout(TestSchema(), {0, 1});
  std::vector<Row> rows;
  for (size_t r = 0; r < 400; ++r) {
    rows.push_back(Row{Value(int32_t(r)), Value(int32_t(r % 10))});
  }
  Sscg sscg(layout, rows, &store_);
  PositionList out;
  IoStats io;
  Value v(int32_t{7});
  sscg.ScanSlot(1, &v, &v, &buffers_, 1, &out, &io);
  ASSERT_EQ(out.size(), 40u);
  for (size_t k = 0; k < out.size(); ++k) EXPECT_EQ(out[k], 7 + 10 * k);
  // A scan reads every page of the group.
  EXPECT_EQ(io.page_reads + io.cache_hits, sscg.page_count());
}

TEST_F(SscgTest, ScanCostScalesWithGroupWidth) {
  // Fig. 9a: scanning one attribute in a wide group reads the full rows.
  std::vector<Row> narrow_rows, wide_rows;
  Schema wide_schema;
  for (int c = 0; c < 20; ++c) {
    wide_schema.push_back({"c" + std::to_string(c), DataType::kInt32, 0});
  }
  std::vector<ColumnId> all20;
  for (ColumnId c = 0; c < 20; ++c) all20.push_back(c);
  for (size_t r = 0; r < 2000; ++r) {
    Row wide;
    for (int c = 0; c < 20; ++c) wide.emplace_back(int32_t(r));
    wide_rows.push_back(std::move(wide));
    narrow_rows.push_back(Row{Value(int32_t(r))});
  }
  Sscg narrow(RowLayout(wide_schema, {0}), narrow_rows, &store_);
  Sscg wide(RowLayout(wide_schema, all20), wide_rows, &store_);
  EXPECT_GE(wide.page_count(), narrow.page_count() * 15);
}

TEST_F(SscgTest, ProbeSlotSharesPageFetches) {
  RowLayout layout(TestSchema(), {0, 1});
  std::vector<Row> rows;
  for (size_t r = 0; r < 1000; ++r) {
    rows.push_back(Row{Value(int32_t(r)), Value(int32_t(r % 3))});
  }
  Sscg sscg(layout, rows, &store_);
  // Candidates all on the first page (rows 0..9, 512 rows/page for 8-byte
  // rows): only one miss expected.
  PositionList in{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  PositionList out;
  IoStats io;
  Value v(int32_t{0});
  sscg.ProbeSlot(1, &v, &v, in, &buffers_, 1, &out, &io);
  EXPECT_EQ(io.page_reads, 1u);
  EXPECT_EQ(out, (PositionList{0, 3, 6, 9}));
}

TEST_F(SscgTest, RawAccessMatchesTimedAccess) {
  RowLayout layout(TestSchema(), {0, 2});
  std::vector<Row> rows;
  for (size_t r = 0; r < 100; ++r) {
    rows.push_back(Row{Value(int32_t(r)), Value(double(r))});
  }
  Sscg sscg(layout, rows, &store_);
  for (RowId r = 0; r < 100; r += 13) {
    EXPECT_EQ(sscg.RawValue(r, 0, store_), Value(int32_t(r)));
    EXPECT_EQ(sscg.RawRow(r, store_), rows[r]);
  }
}

TEST_F(SscgTest, WallTimeDividesAcrossThreads) {
  IoStats io;
  io.device_ns = 8000;
  io.dram_ns = 0;
  EXPECT_EQ(io.WallNs(8), 1000u);
  EXPECT_EQ(io.WallNs(1), 8000u);
  EXPECT_EQ(io.WallNs(0), 8000u);  // guards division by zero
}

}  // namespace
}  // namespace hytap

#include "tiering/secondary_store.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/simulated_clock.h"
#include "storage/sscg.h"

namespace hytap {
namespace {

TEST(SecondaryStoreTest, AllocateWriteRead) {
  SecondaryStore store(DeviceKind::kXpoint);
  const PageId a = store.AllocatePage();
  const PageId b = store.AllocatePage();
  EXPECT_NE(a, b);
  EXPECT_EQ(store.page_count(), 2u);
  SecondaryStore::Page page;
  page.fill(0xAB);
  store.WritePage(b, page);
  SecondaryStore::Page dest;
  ASSERT_TRUE(store.ReadPage(b, &dest, AccessPattern::kRandom).ok());
  EXPECT_EQ(0, std::memcmp(dest.data(), page.data(), kPageSize));
  // Page a stays zeroed.
  ASSERT_TRUE(store.ReadPage(a, &dest, AccessPattern::kRandom).ok());
  EXPECT_EQ(dest[0], 0);
}

TEST(SecondaryStoreTest, TimingAccrues) {
  SecondaryStore store(DeviceKind::kCssd);
  const PageId id = store.AllocatePage();
  SecondaryStore::Page dest;
  auto read = store.ReadPage(id, &dest, AccessPattern::kRandom);
  ASSERT_TRUE(read.ok());
  EXPECT_GT(read->latency_ns, 40'000u);  // NAND-scale latency
  EXPECT_EQ(read->retries, 0u);          // fault-free store never retries
  EXPECT_EQ(store.reads(), 1u);
  EXPECT_EQ(store.total_read_ns(), read->latency_ns);
  store.ResetStats();
  EXPECT_EQ(store.reads(), 0u);
}

TEST(SecondaryStoreTest, SequentialCheaperThanRandom) {
  SecondaryStore store(DeviceKind::kCssd);
  const PageId id = store.AllocatePage();
  SecondaryStore::Page dest;
  uint64_t seq = 0, rnd = 0;
  for (int i = 0; i < 50; ++i) {
    seq += store.ReadPage(id, &dest, AccessPattern::kSequential, 1)->latency_ns;
    rnd += store.ReadPage(id, &dest, AccessPattern::kRandom, 1)->latency_ns;
  }
  EXPECT_LT(seq, rnd);
}

TEST(SecondaryStoreTest, DeterministicTiming) {
  SecondaryStore a(DeviceKind::kEssd, /*timing_seed=*/7);
  SecondaryStore b(DeviceKind::kEssd, /*timing_seed=*/7);
  a.AllocatePage();
  b.AllocatePage();
  SecondaryStore::Page dest;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.ReadPage(0, &dest, AccessPattern::kRandom)->latency_ns,
              b.ReadPage(0, &dest, AccessPattern::kRandom)->latency_ns);
  }
}

TEST(SecondaryStoreDeathTest, OutOfRangeAborts) {
  SecondaryStore store(DeviceKind::kHdd);
  SecondaryStore::Page dest;
  EXPECT_DEATH(store.ReadPage(0, &dest, AccessPattern::kRandom),
               "out of range");
}

TEST(SimulatedClockTest, AdvanceAndReset) {
  SimulatedClock clock;
  EXPECT_EQ(clock.NowNs(), 0u);
  EXPECT_EQ(clock.Advance(100), 100u);
  EXPECT_EQ(clock.Advance(50), 150u);
  EXPECT_EQ(clock.NowNs(), 150u);
  clock.Reset();
  EXPECT_EQ(clock.NowNs(), 0u);
}

TEST(IoStatsTest, Accumulation) {
  IoStats a, b;
  a.device_ns = 100;
  a.dram_ns = 10;
  a.page_reads = 1;
  a.retries = 3;
  b.device_ns = 200;
  b.cache_hits = 2;
  b.retries = 1;
  a += b;
  EXPECT_EQ(a.device_ns, 300u);
  EXPECT_EQ(a.dram_ns, 10u);
  EXPECT_EQ(a.page_reads, 1u);
  EXPECT_EQ(a.cache_hits, 2u);
  EXPECT_EQ(a.retries, 4u);
  EXPECT_EQ(a.TotalNs(), 310u);
}

}  // namespace
}  // namespace hytap

#include "common/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/random.h"
#include "core/retier_daemon.h"
#include "core/tiered_table.h"
#include "serving/session_manager.h"
#include "workload/enterprise.h"

namespace hytap {
namespace {

// ---------------------------------------------------------------------------
// Recorder unit tests (private FlightRecorder instances).
// ---------------------------------------------------------------------------

FlightEvent MakeEvent(uint64_t window, uint64_t sim_ns, uint64_t ticket,
                      FlightEventType type = FlightEventType::kSessionComplete,
                      uint32_t seq = 0) {
  FlightEvent event{};
  event.window = window;
  event.sim_ns = sim_ns;
  event.ticket = ticket;
  event.seq = seq;
  event.type = static_cast<uint16_t>(type);
  return event;
}

TEST(FlightRecorderTest, RingWraparoundKeepsNewestEvents) {
  SetFlightRecorderEnabled(true);
  FlightRecorder recorder(64);
  for (uint64_t i = 0; i < 200; ++i) {
    recorder.Record(MakeEvent(/*window=*/1, /*sim_ns=*/i, /*ticket=*/i));
  }
  EXPECT_EQ(recorder.total_recorded(), 200u);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 64u);
  // A full ring drops the oldest events, never the newest.
  for (const FlightEvent& event : events) {
    EXPECT_GE(event.ticket, 200u - 64u);
  }
}

TEST(FlightRecorderTest, SnapshotSortsCanonicallyNotByArrival) {
  SetFlightRecorderEnabled(true);
  FlightRecorder recorder(64);
  // Arrival order is deliberately scrambled relative to the canonical
  // (window, sim_ns, ticket, type, ...) tuple.
  recorder.Record(MakeEvent(2, 5, 1));
  recorder.Record(MakeEvent(1, 9, 3));
  recorder.Record(MakeEvent(1, 3, 7));
  recorder.Record(MakeEvent(1, 3, 2, FlightEventType::kSessionDispatch));
  recorder.Record(MakeEvent(1, 3, 2, FlightEventType::kSessionAdmit));

  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].ticket, 2u);
  EXPECT_EQ(events[0].type,
            static_cast<uint16_t>(FlightEventType::kSessionAdmit));
  EXPECT_EQ(events[1].ticket, 2u);
  EXPECT_EQ(events[1].type,
            static_cast<uint16_t>(FlightEventType::kSessionDispatch));
  EXPECT_EQ(events[2].ticket, 7u);
  EXPECT_EQ(events[3].sim_ns, 9u);
  EXPECT_EQ(events[4].window, 2u);
}

TEST(FlightRecorderTest, DisabledRecorderDropsEverything) {
  SetFlightRecorderEnabled(false);
  FlightRecorder recorder(64);
  recorder.Record(MakeEvent(1, 1, 1));
  recorder.Record(FlightEventType::kMergeBegin, 0, 0, 1, 1, 42);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
  SetFlightRecorderEnabled(true);
  recorder.Record(MakeEvent(1, 1, 1));
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
}

TEST(FlightRecorderTest, DumpRoundTripPreservesEventsAndReason) {
  SetFlightRecorderEnabled(true);
  FlightRecorder recorder(64);
  for (uint64_t i = 0; i < 7; ++i) {
    recorder.Record(MakeEvent(1, 10 * i, i, FlightEventType::kRetierStep));
  }
  const std::string path = ::testing::TempDir() + "flight_roundtrip.bin";
  ASSERT_TRUE(recorder.DumpTo(path, "unit_roundtrip"));

  std::vector<FlightEvent> decoded;
  std::string reason;
  ASSERT_TRUE(ReadFlightDump(path, &decoded, &reason));
  EXPECT_EQ(reason, "unit_roundtrip");
  const std::vector<FlightEvent> expected = recorder.Snapshot();
  ASSERT_EQ(decoded.size(), expected.size());
  EXPECT_EQ(0, std::memcmp(decoded.data(), expected.data(),
                           decoded.size() * sizeof(FlightEvent)));
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ConcurrentWritersNeverTearEvents) {
  SetFlightRecorderEnabled(true);
  FlightRecorder recorder(4096);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 1000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // A torn read would mix the words of two events; making every word
        // a function of the ticket lets the post-join snapshot verify each
        // event is internally consistent.
        const uint64_t ticket = uint64_t(t) * kPerThread + i;
        FlightEvent event = MakeEvent(1, ticket * 3, ticket);
        event.a = ticket + 7;
        event.b = ticket + 11;
        recorder.Record(event);
      }
    });
  }
  // Concurrent snapshots must not crash or return torn slots (seqlock).
  for (int i = 0; i < 8; ++i) {
    for (const FlightEvent& event : recorder.Snapshot()) {
      EXPECT_EQ(event.sim_ns, event.ticket * 3);
      EXPECT_EQ(event.a, event.ticket + 7);
      EXPECT_EQ(event.b, event.ticket + 11);
    }
  }
  for (std::thread& w : writers) w.join();

  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), size_t(kThreads) * kPerThread);
  for (const FlightEvent& event : events) {
    EXPECT_EQ(event.sim_ns, event.ticket * 3);
    EXPECT_EQ(event.a, event.ticket + 7);
    EXPECT_EQ(event.b, event.ticket + 11);
  }
}

// ---------------------------------------------------------------------------
// End-to-end acceptance: serving load + throttled re-tiering + seeded write
// corruption, dumped through the process-global recorder. The decoded
// timeline must contain the fault, the quarantine, the abort, and the
// session tickets in simulated-time order — byte-identical at 1/2/4 workers.
// ---------------------------------------------------------------------------

constexpr size_t kRows = 3000;
constexpr size_t kCols = 16;
constexpr size_t kQueriesPerPhase = 32;
constexpr uint64_t kSeed = 42;
constexpr size_t kHotCount = 5;
constexpr size_t kHotA = 1;
constexpr size_t kHotB = kCols - kHotCount;

std::unique_ptr<TieredTable> MakeBseg() {
  EnterpriseProfile profile = BsegProfile();
  profile.attribute_count = kCols;
  TieredTableOptions options;
  options.device = DeviceKind::kCssd;
  options.timing_seed = kSeed;
  // Phases are separated via ForceRoll(): make windows effectively
  // unbounded on the simulated clock so each phase stays in one window.
  options.monitor.window_ns = 1'000'000'000'000'000ull;
  auto table = std::make_unique<TieredTable>(
      "bseg", MakeEnterpriseSchema(profile), options);
  table->Load(GenerateEnterpriseRows(profile, kRows, kSeed));
  return table;
}

double TotalBytes(const TieredTable& table) {
  double total = 0.0;
  for (ColumnId c = 0; c < table.table().column_count(); ++c) {
    total += double(table.table().ColumnDramBytes(c));
  }
  return total;
}

uint64_t MaxColumnBytes(const TieredTable& table) {
  uint64_t max_bytes = 0;
  for (ColumnId c = 0; c < table.table().column_count(); ++c) {
    max_bytes = std::max<uint64_t>(max_bytes, table.table().ColumnDramBytes(c));
  }
  return max_bytes;
}

RetierOptions TestOptions(const TieredTable& table) {
  RetierOptions options;
  options.drift_threshold = 0.25;
  options.min_improvement_pct = 1.0;
  options.dwell_windows = 0;
  options.periodic_windows = 1;
  options.bytes_per_window = 0;
  options.budget_bytes = 0.4 * TotalBytes(table);
  options.recent_windows = 1;
  options.amortization_windows = 16;
  return options;
}

/// The retier_daemon_test phase mix, but submitted through the serving front
/// end with alternating priority classes (per-query threads = 1 keeps each
/// session's execution deterministic by ticket).
void ServePhase(SessionManager* sm, size_t hot_base, size_t hot_count) {
  Rng rng(kSeed * 7919 + hot_base);
  std::vector<SessionHandle> handles;
  handles.reserve(kQueriesPerPhase);
  for (size_t q = 0; q < kQueriesPerPhase; ++q) {
    Query query;
    const size_t hot = hot_base + size_t(rng.NextBounded(hot_count));
    query.predicates.push_back(
        Predicate::Equals(ColumnId(hot), Value(int32_t(rng.NextBounded(8)))));
    if (q % 3 == 0) {
      const size_t other = hot_base + size_t(rng.NextBounded(hot_count));
      if (other != hot) {
        query.predicates.push_back(Predicate::Between(
            ColumnId(other), Value(int32_t{0}), Value(int32_t{40})));
      }
    }
    query.aggregates = {Aggregate::Count()};
    SubmitOptions opts;
    opts.query_class = q % 2 == 0 ? QueryClass::kOltp : QueryClass::kOlap;
    opts.threads = 1;
    auto session = sm->Submit(query, opts);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    handles.push_back(*session);
  }
  for (const SessionHandle& session : handles) (void)session->Await();
}

void DrainPlan(TieredTable* table, RetierDaemon* daemon,
               size_t max_windows = 64) {
  for (size_t i = 0; i < max_windows; ++i) {
    if (daemon->state() == RetierState::kIdle) break;
    table->monitor().ForceRoll();
    (void)daemon->Tick();
  }
}

bool HasEvent(const std::vector<FlightEvent>& events, FlightEventType type,
              uint16_t code = 0xffff) {
  for (const FlightEvent& event : events) {
    if (event.type != static_cast<uint16_t>(type)) continue;
    if (code != 0xffff && event.code != code) continue;
    return true;
  }
  return false;
}

std::string RunAcceptance(uint32_t workers, std::vector<FlightEvent>* decoded) {
  FlightRecorder::Global().Reset();
  SetFlightRecorderEnabled(true);

  auto table = MakeBseg();
  SessionOptions so;
  so.max_sessions = workers;
  so.default_threads = 1;
  SessionManager& sm = table->EnableServing(so);

  RetierOptions options = TestOptions(*table);
  // Roughly one column move per window: the phase-B plan stays mid-flight
  // so the abort genuinely cancels pending steps.
  options.bytes_per_window = MaxColumnBytes(*table) + 1024;
  RetierDaemon daemon(table.get(), options);

  // Phase A under serving load, then seeded silent write corruption armed
  // before the first plan drains: evictions corrupt on the media and
  // verify-by-read-back quarantines the affected columns.
  ServePhase(&sm, kHotA, kHotCount);
  FaultConfig faults;
  faults.seed = 1;
  faults.write_corruption_rate = 0.02;
  table->store().ConfigureFaults(faults);

  RetierTickReport tick = daemon.Tick();
  EXPECT_TRUE(tick.plan_started);
  DrainPlan(table.get(), &daemon);
  EXPECT_EQ(daemon.state(), RetierState::kIdle);
  EXPECT_GE(daemon.history().size(), 1u);
  EXPECT_GT(daemon.history()[0].quarantined_steps, 0u)
      << "seed produced no quarantine";

  // Phase B: skew flip starts a second plan; abort it mid-flight.
  table->monitor().ForceRoll();
  ServePhase(&sm, kHotB, kHotCount);
  tick = daemon.Tick();
  EXPECT_TRUE(tick.plan_started);
  EXPECT_EQ(daemon.state(), RetierState::kMigrating);
  daemon.RequestAbort();
  table->monitor().ForceRoll();
  tick = daemon.Tick();
  EXPECT_TRUE(tick.plan_aborted);

  sm.Drain();
  // PID-qualified path: TempDir() is machine-global, so concurrent runs of
  // this binary must not race on the same dump file.
  const std::string path = ::testing::TempDir() + "flight_accept_p" +
                           std::to_string(getpid()) + "_w" +
                           std::to_string(workers) + ".bin";
  EXPECT_TRUE(FlightRecorder::Global().DumpTo(path, "acceptance"));
  if (decoded != nullptr) {
    std::string reason;
    EXPECT_TRUE(ReadFlightDump(path, decoded, &reason));
    EXPECT_EQ(reason, "acceptance");
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  in.close();
  std::remove(path.c_str());
  return bytes.str();
}

TEST(FlightRecorderAcceptanceTest, AnomalyTimelineIsBitIdenticalAcrossWorkers) {
  // Anomaly hooks fire during the scenario; keep them from writing their own
  // dump files (the test takes one manual dump at the quiesced end).
  setenv("HYTAP_FLIGHT_DUMP", "0", 1);

  std::vector<FlightEvent> events;
  const std::string one = RunAcceptance(1, &events);
  const std::string two = RunAcceptance(2, nullptr);
  const std::string four = RunAcceptance(4, nullptr);
  ASSERT_GT(one.size(), sizeof(FlightDumpHeader));
  EXPECT_EQ(one, two) << "dump differs between 1 and 2 workers";
  EXPECT_EQ(one, four) << "dump differs between 1 and 4 workers";

  // The decoded timeline contains the whole causal chain: the injected
  // corrupt write, the read-back verify failure, the quarantine, the abort,
  // and the anomaly markers for the latter two.
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(HasEvent(events, FlightEventType::kStoreFault, /*code=*/5))
      << "no corrupt-write fault event";
  EXPECT_TRUE(HasEvent(events, FlightEventType::kStoreVerifyFail));
  EXPECT_TRUE(HasEvent(events, FlightEventType::kRetierQuarantine));
  EXPECT_TRUE(HasEvent(events, FlightEventType::kRetierAbort));
  EXPECT_TRUE(HasEvent(
      events, FlightEventType::kAnomaly,
      static_cast<uint16_t>(AnomalyKind::kStickyQuarantine)));
  EXPECT_TRUE(HasEvent(events, FlightEventType::kAnomaly,
                       static_cast<uint16_t>(AnomalyKind::kRetierAbort)));

  // Every admitted session's lifecycle is on the timeline: both phases'
  // tickets admit, dispatch, and complete.
  std::vector<bool> admitted(2 * kQueriesPerPhase, false);
  std::vector<bool> completed(2 * kQueriesPerPhase, false);
  for (const FlightEvent& event : events) {
    if (event.type == static_cast<uint16_t>(FlightEventType::kSessionAdmit) &&
        event.ticket < admitted.size()) {
      admitted[event.ticket] = true;
    }
    if (event.type ==
            static_cast<uint16_t>(FlightEventType::kSessionComplete) &&
        event.ticket < completed.size()) {
      completed[event.ticket] = true;
    }
  }
  for (size_t t = 0; t < admitted.size(); ++t) {
    EXPECT_TRUE(admitted[t]) << "ticket " << t << " never admitted";
    EXPECT_TRUE(completed[t]) << "ticket " << t << " never completed";
  }

  // Simulated-time order: the canonical sort is non-decreasing in
  // (window, sim_ns), and the abort lands after the quarantine.
  size_t quarantine_at = events.size();
  size_t abort_at = 0;
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(std::make_pair(events[i].window, events[i].sim_ns),
              std::make_pair(events[i - 1].window, events[i - 1].sim_ns))
        << "event " << i << " out of simulated-time order";
  }
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].type ==
        static_cast<uint16_t>(FlightEventType::kRetierQuarantine)) {
      quarantine_at = std::min(quarantine_at, i);
    }
    if (events[i].type ==
        static_cast<uint16_t>(FlightEventType::kRetierAbort)) {
      abort_at = std::max(abort_at, i);
    }
  }
  EXPECT_LT(quarantine_at, abort_at);
}

// ---------------------------------------------------------------------------
// Idle-driven re-tiering (HYTAP_RETIER_ON_IDLE): tick placement is
// deterministic by window index, independent of the worker count.
// ---------------------------------------------------------------------------

/// Submits one trailing query and returns once it (and any idle tick its
/// completion triggered) is done. Attaching the daemon only between fully
/// awaited batches keeps the tick's input workload deterministic: idle
/// moments *during* a batch are wall-clock races.
void KickIdleTick(SessionManager* sm, uint64_t expect_ticks) {
  Query query;
  query.predicates.push_back(
      Predicate::Equals(ColumnId(kHotA), Value(int32_t{0})));
  query.aggregates = {Aggregate::Count()};
  SubmitOptions opts;
  opts.threads = 1;
  auto session = sm->Submit(query, opts);
  ASSERT_TRUE(session.ok());
  (void)(*session)->Await();
  // The worker fires the tick after completing the session; idle_ticks()
  // synchronizes on the submit mutex, so observing the count also observes
  // the tick's effects on the daemon.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (sm->idle_ticks() < expect_ticks &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(sm->idle_ticks(), expect_ticks) << "idle tick never fired";
}

struct IdleSignature {
  uint64_t ticks = 0;
  std::vector<bool> placement;
  std::vector<std::vector<std::pair<uint32_t, uint8_t>>> plan_steps;

  bool operator==(const IdleSignature& other) const {
    return ticks == other.ticks && placement == other.placement &&
           plan_steps == other.plan_steps;
  }
};

IdleSignature RunIdleScenario(uint32_t workers) {
  auto table = MakeBseg();
  SessionOptions so;
  so.max_sessions = workers;
  so.default_threads = 1;
  so.retier_on_idle = true;
  SessionManager& sm = table->EnableServing(so);
  RetierDaemon daemon(table.get(), TestOptions(*table));  // unthrottled

  // Window 1: phase A recorded with the daemon detached, then one kicker
  // fires the idle tick over the complete phase workload.
  ServePhase(&sm, kHotA, kHotCount);
  sm.set_retier_daemon(&daemon);
  KickIdleTick(&sm, 1);
  EXPECT_EQ(daemon.state(), RetierState::kIdle);  // unthrottled: one tick

  // Still window 1: a second idle moment must NOT tick again (at most one
  // tick per monitor window keeps tick placement deterministic).
  KickIdleTick(&sm, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(sm.idle_ticks(), 1u) << "window guard let a second tick through";

  // Window 2: skew flip; the next idle moment re-plans for the new hot set.
  sm.set_retier_daemon(nullptr);
  table->monitor().ForceRoll();
  ServePhase(&sm, kHotB, kHotCount);
  sm.set_retier_daemon(&daemon);
  KickIdleTick(&sm, 2);
  EXPECT_EQ(daemon.state(), RetierState::kIdle);
  sm.set_retier_daemon(nullptr);
  sm.Drain();

  IdleSignature signature;
  signature.ticks = sm.idle_ticks();
  signature.placement = table->table().placement();
  for (const RetierPlan& plan : daemon.history()) {
    std::vector<std::pair<uint32_t, uint8_t>> steps;
    for (const RetierStep& step : plan.steps) {
      steps.emplace_back(step.column, uint8_t(step.outcome));
    }
    signature.plan_steps.push_back(std::move(steps));
  }
  return signature;
}

TEST(IdleRetierTest, IdleTicksAreDeterministicByWindowAcrossWorkers) {
  setenv("HYTAP_FLIGHT_DUMP", "0", 1);
  const IdleSignature one = RunIdleScenario(1);
  const IdleSignature two = RunIdleScenario(2);
  const IdleSignature four = RunIdleScenario(4);
  EXPECT_TRUE(one == two);
  EXPECT_TRUE(one == four);
  EXPECT_EQ(one.ticks, 2u);
  ASSERT_EQ(one.plan_steps.size(), 2u);
  // The window-2 idle tick really re-tiered: hot-B columns are DRAM-resident.
  for (size_t c = kHotB; c < kHotB + kHotCount; ++c) {
    EXPECT_TRUE(one.placement[c]) << "hot column " << c << " not in DRAM";
  }
}

TEST(IdleRetierTest, NoTicksWhenIdleRetieringDisabled) {
  auto table = MakeBseg();
  SessionOptions so;
  so.max_sessions = 2;
  so.default_threads = 1;
  so.retier_on_idle = false;  // knob off: an attached daemon is never ticked
  SessionManager& sm = table->EnableServing(so);
  RetierDaemon daemon(table.get(), TestOptions(*table));
  sm.set_retier_daemon(&daemon);
  ServePhase(&sm, kHotA, kHotCount);
  sm.Drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(sm.idle_ticks(), 0u);
  EXPECT_TRUE(daemon.history().empty());
  EXPECT_EQ(daemon.state(), RetierState::kIdle);
  sm.set_retier_daemon(nullptr);
}

}  // namespace
}  // namespace hytap

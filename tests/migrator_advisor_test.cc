#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/migrator.h"
#include "workload/tpcc.h"

namespace hytap {
namespace {

std::unique_ptr<TieredTable> MakeOrderline() {
  OrderlineParams params;
  params.warehouses = 2;
  params.districts_per_warehouse = 2;
  params.orders_per_district = 20;
  auto table = std::make_unique<TieredTable>("orderline", OrderlineSchema(),
                                             TieredTableOptions{});
  table->Load(GenerateOrderlineRows(params));
  return table;
}

void RunTpccWorkload(TieredTable* table) {
  Transaction txn = table->Begin();
  for (int i = 0; i < 50; ++i) {
    table->Execute(txn, DeliveryQuery(1 + i % 2, 1 + i % 2, 1 + i % 20));
  }
  table->Execute(txn, ChQuery19(1, 1, 500, 1, 5));
}

TEST(AdvisorTest, TightBudgetKeepsPrimaryKeyColumns) {
  // Paper §IV-A: at w = 0.2 the model keeps the four primary-key attributes
  // as MRCs and evicts the rest into an SSCG.
  auto table = MakeOrderline();
  RunTpccWorkload(table.get());
  Advisor advisor;
  Recommendation rec = advisor.RecommendRelative(*table, 0.2);
  for (ColumnId c : OrderlinePrimaryKey()) {
    if (c == kOlNumber) continue;  // ol_number is not filtered by this mix
    EXPECT_TRUE(rec.in_dram[c]) << "pk column " << c << " evicted";
  }
  EXPECT_FALSE(rec.in_dram[kOlDistInfo]);
  EXPECT_FALSE(rec.in_dram[kOlAmount]);
  EXPECT_FALSE(rec.in_dram[kOlDeliveryD]);
}

TEST(AdvisorTest, LargerBudgetAddsAnalyticalColumns) {
  auto table = MakeOrderline();
  RunTpccWorkload(table.get());
  Advisor advisor;
  Recommendation tight = advisor.RecommendRelative(*table, 0.2);
  Recommendation roomy = advisor.RecommendRelative(*table, 0.9);
  // Nested allocations: more budget never evicts a kept column.
  for (ColumnId c = 0; c < 10; ++c) {
    EXPECT_LE(tight.in_dram[c], roomy.in_dram[c]) << c;
  }
  // The CH-19 filter column becomes DRAM-resident with enough budget.
  EXPECT_TRUE(roomy.in_dram[kOlQuantity]);
}

TEST(AdvisorTest, PinningOverridesModel) {
  auto table = MakeOrderline();
  RunTpccWorkload(table.get());
  AdvisorOptions options;
  options.pinned_columns = {kOlDistInfo};  // never filtered, still pinned
  Advisor advisor(options);
  Recommendation rec = advisor.RecommendRelative(*table, 0.5);
  EXPECT_TRUE(rec.in_dram[kOlDistInfo]);
}

TEST(AdvisorTest, AlgorithmsAgreeOnCosts) {
  auto table = MakeOrderline();
  RunTpccWorkload(table.get());
  AdvisorOptions explicit_opts, integer_opts;
  integer_opts.algorithm = AdvisorAlgorithm::kIntegerOptimal;
  Recommendation a = Advisor(explicit_opts).RecommendRelative(*table, 0.4);
  Recommendation b = Advisor(integer_opts).RecommendRelative(*table, 0.4);
  // Explicit is within a few percent of optimal on this workload.
  EXPECT_LE(a.selection.scan_cost, 1.1 * b.selection.scan_cost);
}

TEST(AdvisorTest, ApplyChangesPlacement) {
  auto table = MakeOrderline();
  RunTpccWorkload(table.get());
  Advisor advisor;
  double total = 0;
  for (ColumnId c = 0; c < 10; ++c) {
    total += double(table->table().ColumnDramBytes(c));
  }
  auto moved = advisor.Apply(table.get(), 0.3 * total);
  ASSERT_TRUE(moved.ok());
  EXPECT_GT(*moved, 0u);
  EXPECT_NE(table->table().sscg(), nullptr);
  EXPECT_LE(double(table->table().MainDramBytes()), 0.3 * total + 1.0);
}

TEST(MigratorTest, EstimateCountsMovedColumns) {
  auto table = MakeOrderline();
  std::vector<bool> placement(10, true);
  placement[kOlDistInfo] = false;
  placement[kOlAmount] = false;
  Migrator migrator;
  MigrationReport estimate = migrator.Estimate(*table, placement);
  EXPECT_EQ(estimate.evicted_columns, 2u);
  EXPECT_EQ(estimate.loaded_columns, 0u);
  EXPECT_GT(estimate.moved_bytes, 0u);
  EXPECT_GT(estimate.duration_ns, 0u);
  EXPECT_FALSE(estimate.applied);
}

TEST(MigratorTest, ApplyWithinWindow) {
  auto table = MakeOrderline();
  std::vector<bool> placement(10, true);
  placement[kOlDistInfo] = false;
  Migrator migrator;  // unbounded window
  auto report = migrator.Apply(table.get(), placement);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->applied);
  EXPECT_EQ(table->table().location(kOlDistInfo),
            ColumnLocation::kSecondary);
}

TEST(MigratorTest, RefusesMovesBeyondWindow) {
  auto table = MakeOrderline();
  std::vector<bool> placement(10, false);  // evict everything: big move
  Migrator migrator(/*max_window_ns=*/1);  // 1 ns window
  auto report = migrator.Apply(table.get(), placement);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->applied);
  // Placement unchanged.
  EXPECT_EQ(table->table().location(kOlOId), ColumnLocation::kDram);
}

TEST(MigratorTest, NoopMigrationIsFree) {
  auto table = MakeOrderline();
  Migrator migrator;
  MigrationReport estimate =
      migrator.Estimate(*table, std::vector<bool>(10, true));
  EXPECT_EQ(estimate.moved_bytes, 0u);
  EXPECT_EQ(estimate.evicted_columns + estimate.loaded_columns, 0u);
}

TEST(MigratorTest, ApplyStepFlipsExactlyOneColumn) {
  auto table = MakeOrderline();
  Migrator migrator;
  auto report = migrator.ApplyStep(table.get(), kOlDistInfo,
                                   /*to_dram=*/false);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->applied);
  EXPECT_EQ(report->evicted_columns, 1u);
  EXPECT_EQ(report->loaded_columns, 0u);
  EXPECT_EQ(table->table().location(kOlDistInfo), ColumnLocation::kSecondary);
  for (ColumnId c = 0; c < 10; ++c) {
    if (c == kOlDistInfo) continue;
    EXPECT_EQ(table->table().location(c), ColumnLocation::kDram) << c;
  }
  // And back: the step API loads as well as evicts.
  report = migrator.ApplyStep(table.get(), kOlDistInfo, /*to_dram=*/true);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->loaded_columns, 1u);
  EXPECT_EQ(table->table().location(kOlDistInfo), ColumnLocation::kDram);
}

TEST(MigratorTest, CalibratedEstimateUsesFittedBandwidth) {
  auto table = MakeOrderline();
  // Evict half of the schema and run the workload so the calibrator
  // accumulates secondary-tier bytes/ns samples.
  std::vector<bool> placement(10, true);
  for (ColumnId c = 5; c < 10; ++c) placement[c] = false;
  Migrator migrator;
  ASSERT_TRUE(migrator.Apply(table.get(), placement).ok());
  RunTpccWorkload(table.get());
  ASSERT_GT(table->calibrator().secondary().samples, 0u);

  // Estimate loading everything back, uncalibrated vs calibrated.
  const std::vector<bool> all_dram(10, true);
  const MigrationReport reference = migrator.Estimate(*table, all_dram);
  migrator.set_calibration(&table->calibrator(), /*use=*/true);
  const MigrationReport calibrated = migrator.Estimate(*table, all_dram);
  EXPECT_EQ(calibrated.moved_bytes, reference.moved_bytes);
  const double fitted_c_ss = table->calibrator().Fitted().c_ss;
  EXPECT_DOUBLE_EQ(migrator.MoveNsPerByte(*table), fitted_c_ss);
  EXPECT_NEAR(double(calibrated.duration_ns),
              double(calibrated.moved_bytes) * fitted_c_ss, 1.0);

  // Detaching falls back to the device model.
  migrator.set_calibration(nullptr, false);
  EXPECT_EQ(migrator.Estimate(*table, all_dram).duration_ns,
            reference.duration_ns);
}

}  // namespace
}  // namespace hytap

#include "query/statistics.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/executor.h"
#include "storage/table.h"

namespace hytap {
namespace {

std::vector<Value> UniformInts(int32_t lo, int32_t hi, size_t n,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.emplace_back(int32_t(rng.NextInt(lo, hi)));
  }
  return values;
}

TEST(HistogramTest, EmptyAndStringInputs) {
  EXPECT_TRUE(Histogram::Build({}).empty());
  EXPECT_TRUE(Histogram::Build({Value("a"), Value("b")}).empty());
}

TEST(HistogramTest, SingleValueColumn) {
  std::vector<Value> values(100, Value(int32_t{7}));
  Histogram h = Histogram::Build(values, 16);
  ASSERT_FALSE(h.empty());
  EXPECT_EQ(h.bucket_count(), 1u);
  Value v(int32_t{7});
  EXPECT_NEAR(h.EstimateEqualitySelectivity(v), 1.0, 1e-9);
  EXPECT_NEAR(h.EstimateRangeSelectivity(&v, &v), 1.0, 1e-9);
  Value other(int32_t{8});
  EXPECT_DOUBLE_EQ(h.EstimateEqualitySelectivity(other), 0.0);
}

TEST(HistogramTest, UniformRangeEstimates) {
  Histogram h = Histogram::Build(UniformInts(0, 999, 20000, 3), 32);
  // [0, 499] covers ~half the rows.
  Value lo(int32_t{0}), mid(int32_t{499}), hi(int32_t{999});
  EXPECT_NEAR(h.EstimateRangeSelectivity(&lo, &mid), 0.5, 0.05);
  EXPECT_NEAR(h.EstimateRangeSelectivity(&lo, &hi), 1.0, 0.05);
  EXPECT_NEAR(h.EstimateRangeSelectivity(nullptr, nullptr), 1.0, 0.05);
  // Narrow range ~2.5%.
  Value a(int32_t{100}), b(int32_t{124});
  EXPECT_NEAR(h.EstimateRangeSelectivity(&a, &b), 0.025, 0.01);
  // Out-of-domain range.
  Value big(int32_t{5000}), bigger(int32_t{6000});
  EXPECT_NEAR(h.EstimateRangeSelectivity(&big, &bigger), 0.0, 1e-9);
  // Inverted range.
  EXPECT_DOUBLE_EQ(h.EstimateRangeSelectivity(&mid, &lo), 0.0);
}

TEST(HistogramTest, EqualityUsesPerBucketDistincts) {
  // 1000 distinct uniform values: equality ~0.1%.
  Histogram h = Histogram::Build(UniformInts(0, 999, 50000, 5), 32);
  Value v(int32_t{500});
  EXPECT_NEAR(h.EstimateEqualitySelectivity(v), 0.001, 0.0008);
}

TEST(HistogramTest, SkewedDataConcentratesMass) {
  // 90% of values are < 100, the rest spread to 1000.
  Rng rng(9);
  std::vector<Value> values;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.9)) {
      values.emplace_back(int32_t(rng.NextInt(0, 99)));
    } else {
      values.emplace_back(int32_t(rng.NextInt(100, 999)));
    }
  }
  Histogram h = Histogram::Build(values, 20);
  Value lo(int32_t{0}), hi(int32_t{99});
  EXPECT_NEAR(h.EstimateRangeSelectivity(&lo, &hi), 0.9, 0.1);
}

TEST(HistogramTest, DoublesSupported) {
  Rng rng(4);
  std::vector<Value> values;
  for (int i = 0; i < 5000; ++i) values.emplace_back(rng.NextDouble());
  Histogram h = Histogram::Build(values, 16);
  Value lo(0.25), hi(0.75);
  EXPECT_NEAR(h.EstimateRangeSelectivity(&lo, &hi), 0.5, 0.05);
}

TEST(TableStatisticsTest, BuildAndEstimate) {
  Schema schema;
  schema.push_back({"num", DataType::kInt32, 0});
  schema.push_back({"name", DataType::kString, 8});
  std::vector<std::vector<Value>> columns(2);
  for (int i = 0; i < 1000; ++i) {
    columns[0].emplace_back(int32_t(i % 100));
    columns[1].emplace_back("n" + std::to_string(i % 4));
  }
  TableStatistics stats = TableStatistics::Build(schema, columns);
  Value lo(int32_t{0}), hi(int32_t{49});
  EXPECT_NEAR(stats.EstimateSelectivity(0, &lo, &hi), 0.5, 0.08);
  // String equality: 1/distinct fallback.
  Value name("n1");
  EXPECT_NEAR(stats.EstimateSelectivity(1, &name, &name), 0.25, 1e-9);
}

TEST(TableStatisticsTest, ExecutorOrdersByActualRangeSelectivity) {
  // Column 0 has MANY distinct values (1/distinct tiny) but the predicate
  // covers almost its whole domain; column 1 has few distinct values but the
  // predicate picks one. Histogram statistics must order column 1 first.
  Schema schema;
  schema.push_back({"wide", DataType::kInt32, 0});
  schema.push_back({"narrow", DataType::kInt32, 0});
  TransactionManager txns;
  Table table("t", schema, &txns);
  std::vector<Row> rows;
  for (int r = 0; r < 2000; ++r) {
    rows.push_back(Row{Value(int32_t(r)), Value(int32_t(r % 4))});
  }
  table.BulkLoad(rows);
  QueryExecutor executor(&table);
  Query query;
  query.predicates.push_back(
      Predicate::Between(0, Value(int32_t{0}), Value(int32_t{1900})));
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{2})));
  // Without statistics: 1/distinct puts the wide column first (wrongly).
  auto naive_order = executor.PredicateOrder(query);
  EXPECT_EQ(query.predicates[naive_order[0]].column, 0u);
  // With histograms: the range on `wide` is ~95% selective, the equality on
  // `narrow` is 25% -> narrow first.
  table.BuildStatistics();
  auto informed_order = executor.PredicateOrder(query);
  EXPECT_EQ(query.predicates[informed_order[0]].column, 1u);
}

TEST(TableStatisticsTest, RefreshedOnMerge) {
  Schema schema;
  schema.push_back({"num", DataType::kInt32, 0});
  TransactionManager txns;
  Table table("t", schema, &txns);
  std::vector<Row> rows;
  for (int r = 0; r < 100; ++r) rows.push_back(Row{Value(int32_t(r))});
  table.BulkLoad(rows);
  table.BuildStatistics();
  ASSERT_NE(table.statistics(), nullptr);
  EXPECT_DOUBLE_EQ(table.statistics()->histogram(0).max(), 99.0);
  Transaction txn = txns.Begin();
  ASSERT_TRUE(table.Insert(txn, Row{Value(int32_t{500})}).ok());
  txns.Commit(&txn);
  table.MergeDelta();
  EXPECT_DOUBLE_EQ(table.statistics()->histogram(0).max(), 500.0);
}

}  // namespace
}  // namespace hytap

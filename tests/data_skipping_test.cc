// Data-skipping layer: zone maps on MRC code vectors, SSCG slot synopses,
// the candidate-restricted rescan — and the property the whole layer hangs
// on: results are bit-identical with skipping on or off, at any thread
// count, with or without injected faults.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/random.h"
#include "query/executor.h"
#include "query/scan.h"
#include "storage/bit_packed_vector.h"
#include "storage/dictionary_column.h"
#include "storage/sscg.h"
#include "storage/table.h"
#include "storage/zone_map.h"

namespace hytap {
namespace {

/// Restores the default (enabled) on scope exit so test order can't leak a
/// disabled knob into unrelated tests.
class ZoneMapsGuard {
 public:
  explicit ZoneMapsGuard(bool enabled) { SetZoneMapsEnabled(enabled); }
  ~ZoneMapsGuard() { SetZoneMapsEnabled(true); }
};

TEST(ZoneMapTest, TracksPerZoneBounds) {
  ZoneMap map;
  map.Update(0, 5);
  map.Update(1, 9);
  map.Update(kZoneMapRows, 100);  // second zone
  ASSERT_EQ(map.zone_count(), 2u);
  EXPECT_EQ(map.zone_min(0), 5u);
  EXPECT_EQ(map.zone_max(0), 9u);
  EXPECT_EQ(map.zone_min(1), 100u);
  EXPECT_EQ(map.zone_max(1), 100u);
}

TEST(ZoneMapTest, PrunesDisjointCodeIntervals) {
  ZoneMap map;
  map.Update(0, 10);
  map.Update(1, 20);
  // Half-open code intervals.
  EXPECT_TRUE(map.Prunes(0, 2, 0, 10));    // below the zone
  EXPECT_TRUE(map.Prunes(0, 2, 21, 30));   // above the zone
  EXPECT_FALSE(map.Prunes(0, 2, 10, 11));  // touches min
  EXPECT_FALSE(map.Prunes(0, 2, 20, 21));  // touches max
  EXPECT_FALSE(map.Prunes(0, 2, 0, 100));  // covers the zone
  EXPECT_TRUE(map.Prunes(0, 0, 0, 100));   // empty row range
  EXPECT_TRUE(map.Prunes(0, 2, 15, 15));   // empty code interval
}

TEST(ZoneMapTest, SetOnlyWidensBounds) {
  BitPackedVector codes(8);
  codes.Append(50);
  codes.Append(60);
  codes.Set(0, 10);  // overwrite: bounds must still cover the old value
  const ZoneMap& map = codes.zone_map();
  EXPECT_EQ(map.zone_min(0), 10u);
  EXPECT_EQ(map.zone_max(0), 60u);
  // Conservative: [50, 51) no longer occurs but is still "may contain".
  EXPECT_FALSE(map.Prunes(0, 2, 50, 51));
}

TEST(DataSkippingTest, DictionaryDomainShortCircuit) {
  auto column = DictionaryColumn<int32_t>::Build({10, 20, 30, 20, 10});
  const Value lo(int32_t{11}), hi(int32_t{19});  // between adjacent values
  PositionList out;
  column->ScanBetween(&lo, &hi, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(column->CanSkipRange(&lo, &hi, 0, column->size()));
  const Value lo2(int32_t{40}), hi2(int32_t{50});  // outside the domain
  column->ScanBetween(&lo2, &hi2, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(column->CanSkipRange(&lo2, &hi2, 0, column->size()));
  // A matching predicate neither short-circuits nor prunes.
  const Value lo3(int32_t{20}), hi3(int32_t{20});
  EXPECT_FALSE(column->CanSkipRange(&lo3, &hi3, 0, column->size()));
  column->ScanBetween(&lo3, &hi3, &out);
  EXPECT_EQ(out, (PositionList{1, 3}));
}

TEST(DataSkippingTest, MrcScanIdenticalOnOffAcrossThreads) {
  // Four full zones of clustered data: only the first zone can match.
  const size_t rows = 4 * kZoneMapRows;
  std::vector<int32_t> values;
  values.reserve(rows);
  for (size_t r = 0; r < rows; ++r) values.push_back(int32_t(r / 100));
  auto column = DictionaryColumn<int32_t>::Build(values);
  const Value lo(int32_t{0}), hi(int32_t{9});

  PositionList reference;
  IoStats off_io;
  {
    ZoneMapsGuard off(false);
    ParallelScanColumn(*column, &lo, &hi, 1, &reference, &off_io);
  }
  EXPECT_EQ(reference.size(), 1000u);
  EXPECT_EQ(off_io.morsels_pruned, 0u);

  ZoneMapsGuard on(true);
  for (uint32_t threads : {1u, 2u, 4u}) {
    PositionList out;
    IoStats io;
    ParallelScanColumn(*column, &lo, &hi, threads, &out, &io);
    EXPECT_EQ(out, reference) << threads << " threads";
    EXPECT_EQ(io.morsels_pruned, 3u) << threads << " threads";
  }
}

Schema GroupSchema(size_t width) {
  Schema schema;
  for (size_t c = 0; c < width; ++c) {
    schema.push_back({"c" + std::to_string(c), DataType::kInt32, 0});
  }
  return schema;
}

/// Clustered rows: every page covers a disjoint value span, so a narrow
/// range predicate makes almost every page synopsis-prunable.
std::vector<Row> ClusteredRows(size_t rows, size_t width) {
  std::vector<Row> data;
  data.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    for (size_t c = 0; c < width; ++c) row.emplace_back(int32_t(r));
    data.push_back(std::move(row));
  }
  return data;
}

TEST(DataSkippingTest, SscgSynopsisPrunesPages) {
  const size_t rows = 20000;
  SecondaryStore store(DeviceKind::kXpoint);
  Sscg sscg(RowLayout(GroupSchema(8), {0, 1, 2, 3, 4, 5, 6, 7}),
            ClusteredRows(rows, 8), &store);
  BufferManager buffers(&store, 8);
  const Value lo(int32_t{5000}), hi(int32_t{5019});

  PositionList off_out;
  IoStats off_io;
  {
    ZoneMapsGuard off(false);
    buffers.Clear();
    ASSERT_TRUE(sscg.ScanSlot(0, &lo, &hi, &buffers, 1, &off_out, &off_io)
                    .ok());
  }
  EXPECT_EQ(off_out.size(), 20u);
  EXPECT_EQ(off_io.page_reads + off_io.cache_hits, sscg.page_count());
  EXPECT_EQ(off_io.pages_pruned, 0u);

  ZoneMapsGuard on(true);
  PositionList on_out;
  IoStats on_io;
  buffers.Clear();
  ASSERT_TRUE(sscg.ScanSlot(0, &lo, &hi, &buffers, 1, &on_out, &on_io).ok());
  EXPECT_EQ(on_out, off_out);
  // 20 consecutive values span at most two pages; everything else prunes.
  EXPECT_LE(on_io.page_reads + on_io.cache_hits, 2u);
  EXPECT_EQ(on_io.pages_pruned,
            sscg.page_count() - (on_io.page_reads + on_io.cache_hits));
  EXPECT_GE(on_io.pages_pruned, sscg.page_count() - 2);
}

TEST(DataSkippingTest, StringSlotsNeverPrune) {
  Schema schema;
  schema.push_back({"k", DataType::kInt32, 0});
  schema.push_back({"s", DataType::kString, 8});
  std::vector<Row> data;
  for (size_t r = 0; r < 2000; ++r) {
    data.push_back(Row{Value(int32_t(r)), Value(std::string("v") +
                                                std::to_string(r % 7))});
  }
  SecondaryStore store(DeviceKind::kXpoint);
  Sscg sscg(RowLayout(schema, {0, 1}), data, &store);
  BufferManager buffers(&store, 8);
  const Value lo(std::string("v3")), hi(std::string("v3"));
  PositionList out;
  IoStats io;
  ZoneMapsGuard on(true);
  ASSERT_TRUE(sscg.ScanSlot(1, &lo, &hi, &buffers, 1, &out, &io).ok());
  EXPECT_EQ(io.pages_pruned, 0u);
  EXPECT_EQ(io.page_reads + io.cache_hits, sscg.page_count());
  size_t expected = 0;
  for (size_t r = 0; r < 2000; ++r) expected += (r % 7 == 3);
  EXPECT_EQ(out.size(), expected);
}

TEST(DataSkippingTest, ScanSlotPagesRestrictsRange) {
  const size_t rows = 20000;
  SecondaryStore store(DeviceKind::kXpoint);
  Sscg sscg(RowLayout(GroupSchema(8), {0, 1, 2, 3, 4, 5, 6, 7}),
            ClusteredRows(rows, 8), &store);
  BufferManager buffers(&store, 8);
  const size_t per_page = sscg.layout().rows_per_page();

  ZoneMapsGuard off(false);  // isolate the page-range restriction
  PositionList out;
  IoStats io;
  ASSERT_TRUE(sscg.ScanSlotPages(0, nullptr, nullptr, 2, 4, &buffers, 1,
                                 &out, &io)
                  .ok());
  ASSERT_EQ(out.size(), 2 * per_page);
  EXPECT_EQ(out.front(), 2 * per_page);   // first row of page 2
  EXPECT_EQ(out.back(), 4 * per_page - 1);  // last row of page 3
  EXPECT_EQ(io.page_reads + io.cache_hits, 2u);
}

// --- end-to-end property: the executor's positions, rows, aggregates and
// candidate trace are bit-identical with skipping on vs off, at 1/2/4
// threads, including under a seeded schedule of recoverable faults. ---

Schema TieredSchema() {
  Schema schema;
  schema.push_back({"id", DataType::kInt32, 0});  // DRAM, clustered
  for (size_t c = 1; c < 6; ++c) {
    schema.push_back({"p" + std::to_string(c), DataType::kInt32, 0});
  }
  return schema;
}

std::vector<Row> TieredRows(size_t rows) {
  std::vector<Row> data;
  Rng rng(11);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.emplace_back(int32_t(r));
    for (size_t c = 1; c < 6; ++c) {
      row.emplace_back(int32_t(rng.NextBounded(100)));
    }
    data.push_back(std::move(row));
  }
  return data;
}

Query TieredQuery(size_t rows) {
  Query query;
  // 5% of the clustered DRAM ids, then a tiered range: well above the probe
  // threshold, so the executor takes the candidate-restricted rescan.
  query.predicates.push_back(Predicate::Between(
      0, Value(int32_t(rows / 2)), Value(int32_t(rows / 2 + rows / 20))));
  query.predicates.push_back(
      Predicate::Between(1, Value(int32_t{10}), Value(int32_t{59})));
  query.projections = {0, 2};
  query.aggregates = {Aggregate::Count(), Aggregate::Sum(3)};
  return query;
}

QueryResult RunTieredQuery(bool skipping, uint32_t threads,
                           const FaultConfig& faults) {
  ZoneMapsGuard guard(skipping);
  const size_t rows = 20000;
  TransactionManager txns;
  SecondaryStore store(DeviceKind::kXpoint, /*timing_seed=*/42, faults);
  BufferManager buffers(&store, 64);
  Table table("t", TieredSchema(), &txns, &store, &buffers);
  table.BulkLoad(TieredRows(rows));
  std::vector<bool> placement(TieredSchema().size(), false);
  placement[0] = true;
  EXPECT_TRUE(table.SetPlacement(placement).ok());
  QueryExecutor executor(&table);
  Transaction txn = txns.Begin();
  QueryResult result = executor.Execute(txn, TieredQuery(rows), threads);
  txns.Abort(&txn);
  return result;
}

void ExpectSameResult(const QueryResult& a, const QueryResult& b,
                      const char* what) {
  EXPECT_EQ(a.positions, b.positions) << what;
  EXPECT_EQ(a.rows, b.rows) << what;
  EXPECT_EQ(a.aggregate_values, b.aggregate_values) << what;
  EXPECT_EQ(a.candidate_trace, b.candidate_trace) << what;
}

TEST(DataSkippingTest, ExecutorBitIdenticalOnOffAcrossThreads) {
  const FaultConfig no_faults;
  const QueryResult reference = RunTieredQuery(false, 1, no_faults);
  ASSERT_TRUE(reference.status.ok());
  ASSERT_FALSE(reference.positions.empty());
  EXPECT_EQ(reference.io.pages_pruned, 0u);
  EXPECT_EQ(reference.io.morsels_pruned, 0u);

  for (uint32_t threads : {1u, 2u, 4u}) {
    const QueryResult off = RunTieredQuery(false, threads, no_faults);
    const QueryResult on = RunTieredQuery(true, threads, no_faults);
    ASSERT_TRUE(off.status.ok());
    ASSERT_TRUE(on.status.ok());
    ExpectSameResult(off, reference, "off vs serial reference");
    ExpectSameResult(on, reference, "on vs serial reference");
    // The candidate-restricted rescan must actually skip pages, and skipped
    // pages must leave the read counters.
    EXPECT_GT(on.io.pages_pruned, 0u);
    EXPECT_LT(on.io.page_reads, off.io.page_reads);
    // Skipping decisions are serial: counters are thread-count invariant.
    EXPECT_EQ(on.io.pages_pruned, RunTieredQuery(true, 1, no_faults)
                                      .io.pages_pruned);
  }
}

TEST(DataSkippingTest, ExecutorBitIdenticalUnderSeededFaults) {
  FaultConfig faults;
  faults.seed = 7;
  faults.read_error_rate = 0.05;       // transient: retry succeeds
  faults.read_corruption_rate = 0.02;  // in-transit: re-read is clean
  faults.latency_spike_rate = 0.05;
  const QueryResult reference = RunTieredQuery(false, 1, faults);
  ASSERT_TRUE(reference.status.ok());
  ASSERT_FALSE(reference.positions.empty());

  for (uint32_t threads : {1u, 2u, 4u}) {
    const QueryResult off = RunTieredQuery(false, threads, faults);
    const QueryResult on = RunTieredQuery(true, threads, faults);
    ASSERT_TRUE(off.status.ok());
    ASSERT_TRUE(on.status.ok());
    ExpectSameResult(off, reference, "faulted off vs serial reference");
    ExpectSameResult(on, reference, "faulted on vs serial reference");
    // Fault schedule and retry counts are a pure function of the page-access
    // sequence, which is serial and thread-count invariant at a fixed knob.
    EXPECT_EQ(off.io.retries, reference.io.retries);
    EXPECT_EQ(on.io.retries, RunTieredQuery(true, 1, faults).io.retries);
  }
}

}  // namespace
}  // namespace hytap

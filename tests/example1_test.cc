#include "workload/example1.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>

namespace hytap {
namespace {

TEST(Example1Test, DefaultShape) {
  Workload w = GenerateExample1({});
  EXPECT_EQ(w.column_count(), 50u);
  EXPECT_EQ(w.query_count(), 500u);
  w.Check();
}

TEST(Example1Test, Deterministic) {
  Example1Params params;
  params.seed = 99;
  Workload a = GenerateExample1(params);
  Workload b = GenerateExample1(params);
  EXPECT_EQ(a.column_sizes, b.column_sizes);
  EXPECT_EQ(a.selectivities, b.selectivities);
  ASSERT_EQ(a.query_count(), b.query_count());
  for (size_t j = 0; j < a.query_count(); ++j) {
    EXPECT_EQ(a.queries[j].columns, b.queries[j].columns);
  }
  params.seed = 100;
  Workload c = GenerateExample1(params);
  EXPECT_NE(a.column_sizes, c.column_sizes);
}

TEST(Example1Test, SizesAndSelectivitiesInRange) {
  Example1Params params;
  params.min_column_bytes = 1000;
  params.max_column_bytes = 5000;
  params.min_selectivity = 0.01;
  params.max_selectivity = 0.2;
  Workload w = GenerateExample1(params);
  for (double a : w.column_sizes) {
    EXPECT_GE(a, 1000.0);
    EXPECT_LE(a, 5000.0);
  }
  for (double s : w.selectivities) {
    EXPECT_GE(s, 0.01);
    EXPECT_LE(s, 0.2);
  }
}

TEST(Example1Test, QueriesHaveBoundedArity) {
  Example1Params params;
  params.min_predicates = 2;
  params.max_predicates = 4;
  params.group_probability = 0.0;  // independent draws keep exact arity
  Workload w = GenerateExample1(params);
  for (const auto& q : w.queries) {
    EXPECT_GE(q.columns.size(), 1u);  // dedup may shrink below min
    EXPECT_LE(q.columns.size(), 4u);
    // Columns sorted and unique.
    for (size_t k = 1; k < q.columns.size(); ++k) {
      EXPECT_LT(q.columns[k - 1], q.columns[k]);
    }
  }
}

TEST(Example1Test, CooccurrenceGroupsConcentratePairs) {
  // With grouping, column pairs from the same group co-occur in many
  // queries; without it, pair counts spread thin. Count "heavy" pairs
  // (co-occurring >= 8 times) under both regimes.
  auto heavy_pairs = [](const Workload& w) {
    std::map<std::pair<uint32_t, uint32_t>, int> pair_counts;
    for (const auto& q : w.queries) {
      for (size_t a = 0; a < q.columns.size(); ++a) {
        for (size_t b = a + 1; b < q.columns.size(); ++b) {
          ++pair_counts[{q.columns[a], q.columns[b]}];
        }
      }
    }
    size_t heavy = 0;
    for (const auto& [pair, count] : pair_counts) heavy += count >= 8;
    return heavy;
  };
  Example1Params grouped;
  grouped.group_probability = 1.0;
  grouped.group_count = 4;
  Example1Params independent = grouped;
  independent.group_probability = 0.0;
  EXPECT_GT(heavy_pairs(GenerateExample1(grouped)),
            2 * heavy_pairs(GenerateExample1(independent)));
}

TEST(Example1Test, ScalabilityInstanceScales) {
  Workload w = GenerateScalabilityWorkload(500, 5000, 3);
  EXPECT_EQ(w.column_count(), 500u);
  EXPECT_EQ(w.query_count(), 5000u);
  w.Check();
}

TEST(Example1Test, MostColumnsAreUsed) {
  Workload w = GenerateExample1({});
  auto g = w.ColumnFrequencies();
  size_t used = 0;
  for (double x : g) used += x > 0 ? 1 : 0;
  EXPECT_GT(used, w.column_count() / 2);
}

}  // namespace
}  // namespace hytap

#include "query/scan.h"

#include <gtest/gtest.h>

namespace hytap {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.push_back({"a", DataType::kInt32, 0});
  schema.push_back({"b", DataType::kInt32, 0});
  return schema;
}

class ScanTest : public ::testing::Test {
 protected:
  ScanTest()
      : store_(DeviceKind::kXpoint),
        buffers_(&store_, 16),
        table_("t", TestSchema(), &txns_, &store_, &buffers_) {
    std::vector<Row> rows;
    for (int r = 0; r < 300; ++r) {
      rows.push_back(Row{Value(int32_t(r)), Value(int32_t(r % 3))});
    }
    table_.BulkLoad(rows);
  }
  TransactionManager txns_;
  SecondaryStore store_;
  BufferManager buffers_;
  Table table_;
};

TEST_F(ScanTest, ScanMainMrc) {
  PositionList out;
  IoStats io;
  ScanMainColumn(table_, 1, Predicate::Equals(1, Value(int32_t{2})), 1, &out,
                 &io);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_GT(io.dram_ns, 0u);
  EXPECT_EQ(io.device_ns, 0u);
}

TEST_F(ScanTest, ScanMainSscg) {
  ASSERT_TRUE(table_.SetPlacement({true, false}, nullptr).ok());
  PositionList out;
  IoStats io;
  ScanMainColumn(table_, 1, Predicate::Equals(1, Value(int32_t{2})), 1, &out,
                 &io);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_GT(io.device_ns, 0u);
}

TEST_F(ScanTest, ProbeMainBothLocations) {
  PositionList candidates{0, 2, 4, 6, 8};
  PositionList out;
  IoStats io;
  ProbeMainColumn(table_, 1, Predicate::Equals(1, Value(int32_t{2})),
                  candidates, 1, &out, &io);
  EXPECT_EQ(out, (PositionList{2, 8}));
  ASSERT_TRUE(table_.SetPlacement({true, false}, nullptr).ok());
  buffers_.Clear();
  PositionList out2;
  IoStats io2;
  ProbeMainColumn(table_, 1, Predicate::Equals(1, Value(int32_t{2})),
                  candidates, 1, &out2, &io2);
  EXPECT_EQ(out2, out);
  EXPECT_GT(io2.device_ns, 0u);
}

TEST_F(ScanTest, EmptyCandidatesNoCost) {
  PositionList out;
  IoStats io;
  ProbeMainColumn(table_, 0, Predicate::Equals(0, Value(int32_t{5})), {}, 1,
                  &out, &io);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(io.TotalNs(), 0u);
}

TEST_F(ScanTest, DeltaScanAndProbe) {
  Transaction txn = txns_.Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table_
                    .Insert(txn, Row{Value(int32_t(1000 + i)),
                                     Value(int32_t(i % 2))})
                    .ok());
  }
  txns_.Commit(&txn);
  PositionList out;
  IoStats io;
  ScanDeltaColumn(table_, 1, Predicate::Equals(1, Value(int32_t{1})), &out,
                  &io);
  EXPECT_EQ(out.size(), 5u);  // local delta positions
  PositionList probed;
  ProbeDeltaColumn(table_, 0, Predicate::AtLeast(0, Value(int32_t{1005})),
                   out, &probed, &io);
  EXPECT_EQ(probed.size(), 3u);  // 1005, 1007, 1009
}

TEST_F(ScanTest, EmptyTableNoResults) {
  TransactionManager txns;
  Table empty("e", TestSchema(), &txns);
  PositionList out;
  ScanMainColumn(empty, 0, Predicate::Equals(0, Value(int32_t{1})), 1, &out,
                 nullptr);
  EXPECT_TRUE(out.empty());
  ScanDeltaColumn(empty, 0, Predicate::Equals(0, Value(int32_t{1})), &out,
                  nullptr);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace hytap

#include "txn/transaction_manager.h"

#include <gtest/gtest.h>

namespace hytap {
namespace {

TEST(TransactionManagerTest, MonotonicTids) {
  TransactionManager txns;
  Transaction a = txns.Begin();
  Transaction b = txns.Begin();
  EXPECT_LT(a.tid, b.tid);
}

TEST(TransactionManagerTest, BulkDataAlwaysVisible) {
  TransactionManager txns;
  Transaction reader = txns.Begin();
  EXPECT_TRUE(txns.IsVisible(0, reader));  // writer tid 0 = bulk load
}

TEST(TransactionManagerTest, OwnWritesVisible) {
  TransactionManager txns;
  Transaction writer = txns.Begin();
  EXPECT_TRUE(txns.IsVisible(writer.tid, writer));
}

TEST(TransactionManagerTest, UncommittedInvisibleToOthers) {
  TransactionManager txns;
  Transaction writer = txns.Begin();
  Transaction reader = txns.Begin();
  EXPECT_FALSE(txns.IsVisible(writer.tid, reader));
}

TEST(TransactionManagerTest, CommittedVisibleToLaterSnapshots) {
  TransactionManager txns;
  Transaction writer = txns.Begin();
  txns.Commit(&writer);
  Transaction reader = txns.Begin();
  EXPECT_TRUE(txns.IsVisible(writer.tid, reader));
}

TEST(TransactionManagerTest, CommittedInvisibleToEarlierSnapshot) {
  // Snapshot isolation: a reader that began before the commit must not see
  // the writer's rows.
  TransactionManager txns;
  Transaction writer = txns.Begin();
  Transaction reader = txns.Begin();  // snapshot taken before commit
  txns.Commit(&writer);
  EXPECT_FALSE(txns.IsVisible(writer.tid, reader));
}

TEST(TransactionManagerTest, AbortedWritesStayInvisible) {
  TransactionManager txns;
  Transaction writer = txns.Begin();
  txns.Abort(&writer);
  Transaction reader = txns.Begin();
  EXPECT_FALSE(txns.IsVisible(writer.tid, reader));
}

TEST(TransactionManagerTest, DeletionSemantics) {
  TransactionManager txns;
  Transaction reader = txns.Begin();
  EXPECT_FALSE(txns.IsDeleted(kMaxTransactionId, reader));  // never deleted
  Transaction deleter = txns.Begin();
  EXPECT_FALSE(txns.IsDeleted(deleter.tid, reader));  // uncommitted delete
  txns.Commit(&deleter);
  EXPECT_FALSE(txns.IsDeleted(deleter.tid, reader));  // old snapshot
  Transaction later = txns.Begin();
  EXPECT_TRUE(txns.IsDeleted(deleter.tid, later));
}

TEST(TransactionManagerTest, CommitCidsIncrease) {
  TransactionManager txns;
  Transaction a = txns.Begin();
  Transaction b = txns.Begin();
  txns.Commit(&b);
  txns.Commit(&a);
  EXPECT_EQ(txns.last_commit_cid(), 2u);
}

TEST(TransactionManagerDeathTest, DoubleCommitAborts) {
  TransactionManager txns;
  Transaction t = txns.Begin();
  txns.Commit(&t);
  EXPECT_DEATH(txns.Commit(&t), "finished");
}

}  // namespace
}  // namespace hytap

#include "io/perfetto_export.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/flight_recorder.h"
#include "common/trace.h"
#include "core/tiered_table.h"
#include "serving/session_manager.h"
#include "workload/tpcc.h"

namespace hytap {
namespace {

FlightEvent Make(FlightEventType type, uint16_t code, uint64_t ticket,
                 uint64_t window, uint64_t sim_ns, uint64_t a, uint64_t b,
                 uint32_t seq = 0) {
  FlightEvent e{};
  e.type = uint16_t(type);
  e.code = code;
  e.ticket = ticket;
  e.window = window;
  e.sim_ns = sim_ns;
  e.a = a;
  e.b = b;
  e.seq = seq;
  return e;
}

/// Canonical dump order (window, sim_ns, ticket, type, code, seq, a, b) —
/// the contract RenderPerfettoJson expects from Snapshot()/ReadFlightDump().
void CanonicalSort(std::vector<FlightEvent>* events) {
  std::sort(events->begin(), events->end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              auto key = [](const FlightEvent& e) {
                return std::make_tuple(e.window, e.sim_ns, e.ticket, e.type,
                                       e.code, e.seq, e.a, e.b);
              };
              return key(x) < key(y);
            });
}

/// Checks JSON bracket/brace balance outside string literals — a cheap
/// validity scanner that catches every structural emission bug without a
/// JSON parser dependency (CI additionally runs python3 -m json.tool).
void ExpectBalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      ASSERT_GT(depth, 0) << "unbalanced close";
      --depth;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_EQ(depth, 0) << "unbalanced open";
}

/// Extracts the numeric value following `key` in a single-line event object,
/// or dies. Works because the exporter emits one event per line.
double NumField(const std::string& line, const std::string& key) {
  const size_t pos = line.find(key);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return -1;
  return std::strtod(line.c_str() + pos + key.size(), nullptr);
}

struct Slice {
  double ts;
  double dur;
};

/// Parses the per-line event stream into X slices per (pid, tid) and flow
/// phase sets per id.
void ParseTimeline(const std::string& json,
                   std::map<std::pair<int, int>, std::vector<Slice>>* slices,
                   std::map<int, std::set<char>>* flows) {
  size_t start = 0;
  while (start < json.size()) {
    size_t end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    const std::string line = json.substr(start, end - start);
    start = end + 1;
    if (line.find("\"ph\": \"X\"") != std::string::npos) {
      const int pid = int(NumField(line, "\"pid\": "));
      const int tid = int(NumField(line, "\"tid\": "));
      (*slices)[{pid, tid}].push_back(
          {NumField(line, "\"ts\": "), NumField(line, "\"dur\": ")});
    } else {
      for (char ph : {'s', 't', 'f'}) {
        const std::string tag =
            std::string("\"ph\": \"") + ph + "\"";
        if (line.find(tag) != std::string::npos) {
          (*flows)[int(NumField(line, "\"id\": "))].insert(ph);
        }
      }
    }
  }
}

/// Every track's X slices must be emitted ts-sorted and either disjoint or
/// properly nested (a slice never partially overlaps an enclosing one).
void ExpectTracksMonotonic(
    const std::map<std::pair<int, int>, std::vector<Slice>>& slices) {
  for (const auto& [track, lane] : slices) {
    double prev_ts = -1.0;
    std::vector<double> stack;  // open enclosing slice ends
    for (const Slice& s : lane) {
      EXPECT_GE(s.dur, 0.0);
      EXPECT_GE(s.ts, prev_ts)
          << "track (" << track.first << "," << track.second
          << ") not ts-sorted";
      prev_ts = s.ts;
      // Timestamps are 3-decimal microseconds; ts + dur re-accumulates
      // rounding, so boundary checks get half a nanosecond of slack.
      constexpr double kEps = 0.0005;
      const double end = s.ts + s.dur;
      while (!stack.empty() && s.ts >= stack.back() - kEps) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(end, stack.back() + kEps)
            << "track (" << track.first << "," << track.second
            << ") has a partially overlapping slice";
      }
      stack.push_back(end);
    }
  }
}

TEST(PerfettoExportTest, SyntheticTimelineIsStructurallyValid) {
  std::vector<FlightEvent> events;
  // Admits/dispatches are deliberately unstamped (window 0 / sim 0).
  for (uint64_t t = 0; t < 4; ++t) {
    events.push_back(Make(FlightEventType::kSessionAdmit, 0, t, 0, 0,
                          t == 0 ? 0 : 1, 0));
  }
  events.push_back(
      Make(FlightEventType::kSessionDispatch, 0, 0, 0, 0, 0, 0));
  events.push_back(
      Make(FlightEventType::kSessionDispatch, 0, 1, 0, 0, 1, 0));
  // Terminals flushed in ticket order with the sim clock advancing there.
  events.push_back(
      Make(FlightEventType::kSessionComplete, 0, 0, 1, 1000, 0, 400));
  events.push_back(
      Make(FlightEventType::kSessionComplete, 0, 1, 1, 2000, 1, 1500));
  events.push_back(
      Make(FlightEventType::kSessionShed, 4, 2, 1, 2100, 1, 0));
  // Cancel whose accrued time would start before the lane cursor: the
  // exporter must clamp it instead of overlapping the shed instant.
  events.push_back(
      Make(FlightEventType::kSessionCancel, 1, 3, 1, 2100, 1, 50));
  // Streamed store fault inside ticket 1's execute interval (keyed by seq).
  events.push_back(
      Make(FlightEventType::kStoreFault, 2, 1, 0, 0, 77, 1, /*seq=*/5));
  events.push_back(
      Make(FlightEventType::kRetierTrigger, 0, 9, 1, 1500, 3, 0));
  events.push_back(Make(FlightEventType::kMergeBegin, 0, 0, 1, 1600, 12, 0));
  events.push_back(Make(FlightEventType::kSloBreach, 2, 0, 1, 2000, 1, 4000));
  events.push_back(Make(FlightEventType::kAnomaly, 1, 0, 1, 2050, 0, 0));
  events.push_back(Make(FlightEventType::kPhaseAttribution, 0b001, 0, 1, 1000,
                        3, 400));
  CanonicalSort(&events);

  const std::string json = RenderPerfettoJson(events, "unit \"test\"");
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  EXPECT_NE(json.find("unit \\\"test\\\""), std::string::npos);
  EXPECT_NE(json.find("\"serving\""), std::string::npos);
  EXPECT_NE(json.find("\"secondary_store\""), std::string::npos);

  std::map<std::pair<int, int>, std::vector<Slice>> slices;
  std::map<int, std::set<char>> flows;
  ParseTimeline(json, &slices, &flows);
  // One X slice per terminal: two on the oltp lane is wrong — t0 is oltp,
  // t1..t3 olap.
  ASSERT_EQ(slices[std::make_pair(1, 1)].size(), 1u);
  ASSERT_EQ(slices[std::make_pair(1, 2)].size(), 3u);
  ExpectTracksMonotonic(slices);
  // Flow ids round-trip: every started flow finishes and vice versa.
  ASSERT_EQ(flows.size(), 4u);
  for (const auto& [id, phases] : flows) {
    EXPECT_TRUE(phases.count('s')) << "flow " << id << " has no start";
    EXPECT_TRUE(phases.count('f')) << "flow " << id << " has no finish";
  }
  // Dispatch step flows only exist for tickets 0 and 1.
  EXPECT_TRUE(flows[1].count('t'));
  EXPECT_TRUE(flows[2].count('t'));
  EXPECT_FALSE(flows[3].count('t'));
}

TEST(PerfettoExportTest, TerminalWithoutAdmitEmitsNoDanglingFlow) {
  std::vector<FlightEvent> events;
  // Ring eviction scenario: the terminal survived, its admit did not.
  events.push_back(
      Make(FlightEventType::kSessionComplete, 0, 7, 1, 1000, 0, 400));
  const std::string json = RenderPerfettoJson(events);
  ExpectBalancedJson(json);
  std::map<std::pair<int, int>, std::vector<Slice>> slices;
  std::map<int, std::set<char>> flows;
  ParseTimeline(json, &slices, &flows);
  EXPECT_EQ(slices[std::make_pair(1, 1)].size(), 1u);  // the slice still renders
  EXPECT_TRUE(flows.empty());            // but no half-open flow
}

TEST(PerfettoExportTest, ExplainTreeNestsOnItsOwnTrack) {
  TraceSpan root;
  root.name = "execute";
  root.simulated_ns = 1000;
  TraceSpan scan;
  scan.name = "main_scan";
  scan.simulated_ns = 700;
  TraceSpan probe;
  probe.name = "probe";
  probe.simulated_ns = 300;
  probe.Annotate("est_selectivity", "0.25");
  scan.children.push_back(probe);
  root.children.push_back(scan);
  TraceSpan mat;
  mat.name = "materialize";
  mat.simulated_ns = 200;
  root.children.push_back(mat);

  std::vector<FlightEvent> events;
  events.push_back(
      Make(FlightEventType::kSessionComplete, 0, 0, 1, 1000, 0, 1000));
  const std::string json = RenderPerfettoJson(events, "", &root);
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"operator_tree\""), std::string::npos);
  EXPECT_NE(json.find("\"est_selectivity\": \"0.25\""), std::string::npos);

  std::map<std::pair<int, int>, std::vector<Slice>> slices;
  std::map<int, std::set<char>> flows;
  ParseTimeline(json, &slices, &flows);
  const auto& tree = slices[std::make_pair(4, 1)];
  ASSERT_EQ(tree.size(), 4u);  // execute, main_scan, probe, materialize
  ExpectTracksMonotonic(slices);
  // materialize starts after main_scan's inclusive span ends.
  EXPECT_EQ(tree[3].ts, 0.7);  // 700 ns -> 0.7 µs
}

TEST(PerfettoExportTest, RenderIsDeterministic) {
  std::vector<FlightEvent> events;
  events.push_back(Make(FlightEventType::kSessionAdmit, 0, 0, 0, 0, 0, 0));
  events.push_back(
      Make(FlightEventType::kSessionComplete, 0, 0, 1, 500, 0, 500));
  CanonicalSort(&events);
  EXPECT_EQ(RenderPerfettoJson(events, "x"), RenderPerfettoJson(events, "x"));
}

std::unique_ptr<TieredTable> MakeOrderline() {
  OrderlineParams params;
  params.warehouses = 2;
  params.districts_per_warehouse = 2;
  params.orders_per_district = 20;
  TieredTableOptions options;
  options.device = DeviceKind::kXpoint;
  auto table = std::make_unique<TieredTable>("orderline", OrderlineSchema(),
                                             options);
  table->Load(GenerateOrderlineRows(params));
  return table;
}

/// End-to-end: a served workload's flight snapshot renders to the same
/// timeline bytes at 1/2/4 workers with a fault schedule armed — the
/// trace-export leg of the determinism contract.
TEST(PerfettoExportTest, ServedTimelineBitIdenticalAcrossWorkerCounts) {
  SetFlightRecorderEnabled(true);
  FaultConfig faults;
  faults.seed = 7;
  faults.read_error_rate = 0.02;
  faults.read_corruption_rate = 0.01;
  faults.latency_spike_rate = 0.01;

  auto run = [&](size_t max_sessions) {
    FlightRecorder::Global().Reset();
    auto table = MakeOrderline();
    std::vector<bool> placement(10, true);
    for (ColumnId c : {kOlDeliveryD, kOlQuantity, kOlAmount, kOlDistInfo}) {
      placement[c] = false;
    }
    EXPECT_TRUE(table->ApplyPlacement(placement).ok());
    table->store().ConfigureFaults(faults);
    SessionOptions so;
    so.max_sessions = max_sessions;
    SessionManager& sm = table->EnableServing(so);
    std::vector<SessionHandle> handles;
    for (size_t i = 0; i < 24; ++i) {
      SubmitOptions opts;
      opts.query_class = (i % 2 == 0) ? QueryClass::kOltp : QueryClass::kOlap;
      auto s = sm.Submit(DeliveryQuery(1 + int32_t(i % 2), 1 + int32_t(i % 2),
                                       int32_t(i % 18)),
                         opts);
      EXPECT_TRUE(s.ok());
      handles.push_back(*s);
    }
    for (const SessionHandle& s : handles) s->Await();
    sm.Drain();
    return RenderPerfettoJson(FlightRecorder::Global().Snapshot(), "run");
  };

  const std::string one = run(1);
  const std::string two = run(2);
  const std::string four = run(4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);

  std::map<std::pair<int, int>, std::vector<Slice>> slices;
  std::map<int, std::set<char>> flows;
  ParseTimeline(one, &slices, &flows);
  EXPECT_EQ(slices[std::make_pair(1, 1)].size() + slices[std::make_pair(1, 2)].size(), 24u);
  ExpectTracksMonotonic(slices);
  EXPECT_EQ(flows.size(), 24u);
  for (const auto& [id, phases] : flows) {
    EXPECT_TRUE(phases.count('s')) << "flow " << id;
    EXPECT_TRUE(phases.count('f')) << "flow " << id;
  }
  FlightRecorder::Global().Reset();
}

}  // namespace
}  // namespace hytap

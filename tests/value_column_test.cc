#include "storage/value_column.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hytap {
namespace {

TEST(ValueColumnTest, AppendAndGet) {
  ValueColumn<int32_t> col;
  col.Append(5);
  col.Append(3);
  col.Append(5);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.Get(0), 5);
  EXPECT_EQ(col.Get(1), 3);
  EXPECT_EQ(col.distinct_count(), 2u);
  EXPECT_EQ(col.GetValue(2), Value(int32_t{5}));
}

TEST(ValueColumnTest, IndexLookup) {
  ValueColumn<int32_t> col;
  const int32_t values[] = {7, 3, 7, 9, 7};
  for (int32_t v : values) col.Append(v);
  EXPECT_EQ(col.IndexLookup(7), (PositionList{0, 2, 4}));
  EXPECT_EQ(col.IndexLookup(9), (PositionList{3}));
  EXPECT_TRUE(col.IndexLookup(8).empty());
}

TEST(ValueColumnTest, ScanEqualityUsesIndex) {
  ValueColumn<int32_t> col;
  for (int i = 0; i < 100; ++i) col.Append(i % 10);
  PositionList out;
  Value v(int32_t{4});
  col.ScanBetween(&v, &v, &out);
  ASSERT_EQ(out.size(), 10u);
  for (size_t k = 0; k < out.size(); ++k) EXPECT_EQ(out[k], 4 + 10 * k);
}

TEST(ValueColumnTest, ScanRangeLinear) {
  ValueColumn<int32_t> col;
  const int32_t values[] = {5, 3, 9, 1, 7};
  for (int32_t v : values) col.Append(v);
  PositionList out;
  Value lo(int32_t{3}), hi(int32_t{7});
  col.ScanBetween(&lo, &hi, &out);
  EXPECT_EQ(out, (PositionList{0, 1, 4}));
}

TEST(ValueColumnTest, ScanUnbounded) {
  ValueColumn<int32_t> col;
  col.Append(5);
  col.Append(-5);
  PositionList out;
  col.ScanBetween(nullptr, nullptr, &out);
  EXPECT_EQ(out, (PositionList{0, 1}));
  out.clear();
  Value lo(int32_t{0});
  col.ScanBetween(&lo, nullptr, &out);
  EXPECT_EQ(out, (PositionList{0}));
}

TEST(ValueColumnTest, InvertedRangeEmpty) {
  ValueColumn<int32_t> col;
  col.Append(5);
  PositionList out;
  Value lo(int32_t{9}), hi(int32_t{1});
  col.ScanBetween(&lo, &hi, &out);
  EXPECT_TRUE(out.empty());
}

TEST(ValueColumnTest, Probe) {
  ValueColumn<int32_t> col;
  const int32_t values[] = {5, 3, 9, 1, 7};
  for (int32_t v : values) col.Append(v);
  PositionList candidates{0, 2, 3};
  PositionList out;
  Value lo(int32_t{4}), hi(int32_t{10});
  col.Probe(&lo, &hi, candidates, &out);
  EXPECT_EQ(out, (PositionList{0, 2}));
}

TEST(ValueColumnTest, Strings) {
  ValueColumn<std::string> col;
  col.Append("beta");
  col.Append("alpha");
  col.Append("beta");
  EXPECT_EQ(col.IndexLookup("beta"), (PositionList{0, 2}));
  EXPECT_EQ(col.GetValue(1), Value(std::string("alpha")));
}

TEST(ValueColumnTest, TypeErasedFactory) {
  ColumnDefinition def;
  def.type = DataType::kDouble;
  auto col = MakeValueColumn(def);
  EXPECT_EQ(col->type(), DataType::kDouble);
  AppendValue(col.get(), Value(1.5));
  AppendValue(col.get(), Value(2.5));
  EXPECT_EQ(col->size(), 2u);
  EXPECT_EQ(col->GetValue(1), Value(2.5));
}

TEST(ValueColumnDeathTest, AppendWrongTypeAborts) {
  ColumnDefinition def;
  def.type = DataType::kInt32;
  auto col = MakeValueColumn(def);
  EXPECT_DEATH(AppendValue(col.get(), Value(1.5)), "type");
}

// Property: index lookups agree with naive scans under random data.
TEST(ValueColumnPropertyTest, IndexMatchesNaive) {
  Rng rng(77);
  ValueColumn<int64_t> col;
  std::vector<int64_t> values;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-100, 100);
    col.Append(v);
    values.push_back(v);
  }
  for (int64_t key = -110; key <= 110; key += 7) {
    PositionList want;
    for (size_t r = 0; r < values.size(); ++r) {
      if (values[r] == key) want.push_back(r);
    }
    ASSERT_EQ(col.IndexLookup(key), want) << key;
  }
}

}  // namespace
}  // namespace hytap

#include "selection/heuristics.h"

#include <gtest/gtest.h>

#include "workload/example1.h"

namespace hytap {
namespace {

Workload SmallWorkload() {
  Workload w;
  w.column_sizes = {10.0, 10.0, 10.0, 10.0};
  w.selectivities = {0.5, 0.01, 0.2, 0.3};
  // g: col0 used 5x, col1 used 1x, col2 used 3x, col3 unused.
  QueryTemplate q1{{0}, 5.0};
  QueryTemplate q2{{1}, 1.0};
  QueryTemplate q3{{2}, 3.0};
  w.queries = {q1, q2, q3};
  return w;
}

TEST(HeuristicsTest, Names) {
  EXPECT_STREQ(HeuristicName(HeuristicKind::kH1Frequency), "H1-frequency");
  EXPECT_STREQ(HeuristicName(HeuristicKind::kH2Selectivity),
               "H2-selectivity");
}

TEST(HeuristicsTest, H1OrdersByFrequency) {
  Workload w = SmallWorkload();
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 10.0};
  p.budget_bytes = 20.0;  // two columns fit
  auto result = SelectHeuristic(p, HeuristicKind::kH1Frequency);
  EXPECT_EQ(result.in_dram, (std::vector<uint8_t>{1, 0, 1, 0}));
}

TEST(HeuristicsTest, H2OrdersBySelectivity) {
  Workload w = SmallWorkload();
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 10.0};
  p.budget_bytes = 20.0;
  auto result = SelectHeuristic(p, HeuristicKind::kH2Selectivity);
  // Smallest selectivities among used columns: col1 (.01), col2 (.2).
  EXPECT_EQ(result.in_dram, (std::vector<uint8_t>{0, 1, 1, 0}));
}

TEST(HeuristicsTest, H3OrdersByRatio) {
  Workload w = SmallWorkload();
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 10.0};
  p.budget_bytes = 20.0;
  // Ratios s/g: col0 0.1, col1 0.01, col2 0.0667 -> col1, col2 first.
  auto result = SelectHeuristic(p, HeuristicKind::kH3SelectivityPerFreq);
  EXPECT_EQ(result.in_dram, (std::vector<uint8_t>{0, 1, 1, 0}));
}

TEST(HeuristicsTest, UnusedColumnsNeverSelected) {
  Workload w = SmallWorkload();
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 10.0};
  p.budget_bytes = 1000.0;
  for (auto kind : {HeuristicKind::kH1Frequency, HeuristicKind::kH2Selectivity,
                    HeuristicKind::kH3SelectivityPerFreq}) {
    auto result = SelectHeuristic(p, kind);
    EXPECT_EQ(result.in_dram[3], 0);
  }
}

TEST(HeuristicsTest, FillingSkipsOversizedColumns) {
  Workload w;
  w.column_sizes = {50.0, 10.0};
  w.selectivities = {0.01, 0.5};
  QueryTemplate q1{{0}, 10.0};
  QueryTemplate q2{{1}, 1.0};
  w.queries = {q1, q2};
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 10.0};
  p.budget_bytes = 15.0;  // col0 (rank 1 for all heuristics) does not fit
  for (auto kind : {HeuristicKind::kH1Frequency, HeuristicKind::kH2Selectivity,
                    HeuristicKind::kH3SelectivityPerFreq}) {
    auto result = SelectHeuristic(p, kind);
    EXPECT_EQ(result.in_dram, (std::vector<uint8_t>{0, 1})) << int(kind);
  }
}

TEST(HeuristicsTest, PinnedColumnsIncluded) {
  Workload w = SmallWorkload();
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 10.0};
  p.budget_bytes = 20.0;
  p.pinned = {0, 0, 0, 1};  // pin the unused column
  auto result = SelectHeuristic(p, HeuristicKind::kH1Frequency);
  EXPECT_EQ(result.in_dram[3], 1);
  // Budget leaves room for only one more.
  size_t selected = 0;
  for (uint8_t b : result.in_dram) selected += b;
  EXPECT_EQ(selected, 2u);
}

TEST(HeuristicsTest, NeverBeatTheOptimum) {
  // Sanity: on Example-1 instances, no heuristic produces a lower scan cost
  // than the exact integer solution at the same budget.
  Workload w = GenerateExample1({});
  for (double budget_w : {0.1, 0.3, 0.5, 0.7}) {
    auto p = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100},
                                                  budget_w);
    auto optimal = SelectIntegerOptimal(p);
    for (auto kind :
         {HeuristicKind::kH1Frequency, HeuristicKind::kH2Selectivity,
          HeuristicKind::kH3SelectivityPerFreq}) {
      auto heuristic = SelectHeuristic(p, kind);
      EXPECT_GE(heuristic.scan_cost, optimal.scan_cost - 1e-6)
          << HeuristicName(kind) << " w=" << budget_w;
      EXPECT_LE(heuristic.dram_bytes, p.budget_bytes + 1e-6);
    }
  }
}

}  // namespace
}  // namespace hytap

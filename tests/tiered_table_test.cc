#include "core/tiered_table.h"

#include <gtest/gtest.h>

#include "workload/tpcc.h"

namespace hytap {
namespace {

std::unique_ptr<TieredTable> MakeOrderline() {
  OrderlineParams params;
  params.warehouses = 2;
  params.districts_per_warehouse = 2;
  params.orders_per_district = 20;
  TieredTableOptions options;
  options.device = DeviceKind::kXpoint;
  auto table = std::make_unique<TieredTable>("orderline", OrderlineSchema(),
                                             options);
  table->Load(GenerateOrderlineRows(params));
  return table;
}

TEST(TieredTableTest, LoadAndQuery) {
  auto table = MakeOrderline();
  Transaction txn = table->Begin();
  QueryResult result = table->Execute(txn, DeliveryQuery(1, 1, 5));
  EXPECT_GE(result.positions.size(), 5u);
  EXPECT_LE(result.positions.size(), 10u);
  EXPECT_EQ(result.rows.size(), result.positions.size());
}

TEST(TieredTableTest, ExecuteRecordsInPlanCache) {
  auto table = MakeOrderline();
  Transaction txn = table->Begin();
  table->Execute(txn, DeliveryQuery(1, 1, 1));
  table->Execute(txn, DeliveryQuery(1, 2, 3));
  table->Execute(txn, ChQuery19(1, 1, 500, 1, 5));
  EXPECT_EQ(table->plan_cache().total_executions(), 3u);
  EXPECT_EQ(table->plan_cache().template_count(), 2u);
  table->ExecuteUnrecorded(txn, DeliveryQuery(1, 1, 2));
  EXPECT_EQ(table->plan_cache().total_executions(), 3u);
}

TEST(TieredTableTest, ApplyPlacementResizesCache) {
  auto table = MakeOrderline();
  std::vector<bool> placement(10, true);
  for (ColumnId c : {kOlDeliveryD, kOlQuantity, kOlAmount, kOlDistInfo}) {
    placement[c] = false;
  }
  auto moved = table->ApplyPlacement(placement);
  ASSERT_TRUE(moved.ok());
  EXPECT_GT(*moved, 0u);
  ASSERT_NE(table->table().sscg(), nullptr);
  EXPECT_GE(table->buffers().frame_count(), table->options().min_frames);
}

TEST(TieredTableTest, QueriesSurvivePlacementChanges) {
  auto table = MakeOrderline();
  Transaction txn = table->Begin();
  Query q = DeliveryQuery(2, 1, 7);
  const QueryResult before = table->Execute(txn, q);
  std::vector<bool> placement(10, false);
  for (ColumnId c : OrderlinePrimaryKey()) placement[c] = true;
  ASSERT_TRUE(table->ApplyPlacement(placement).ok());
  const QueryResult after = table->Execute(txn, q);
  EXPECT_EQ(before.positions, after.positions);
  ASSERT_EQ(before.rows.size(), after.rows.size());
  for (size_t i = 0; i < before.rows.size(); ++i) {
    EXPECT_EQ(before.rows[i], after.rows[i]);
  }
}

TEST(TieredTableTest, InsertVisibleAfterCommit) {
  auto table = MakeOrderline();
  Transaction writer = table->Begin();
  Row row{Value(int32_t{999}),  Value(int32_t{1}), Value(int32_t{1}),
          Value(int32_t{1}),    Value(int32_t{1}), Value(int32_t{1}),
          Value(int64_t{0}),    Value(int32_t{5}), Value(1.0),
          Value(std::string("x"))};
  ASSERT_TRUE(table->Insert(writer, row).ok());
  table->Commit(&writer);
  Transaction reader = table->Begin();
  Query q;
  q.predicates.push_back(Predicate::Equals(kOlOId, Value(int32_t{999})));
  EXPECT_EQ(table->Execute(reader, q).positions.size(), 1u);
}

TEST(TieredTableTest, MergeAfterInsertsKeepsPlacement) {
  auto table = MakeOrderline();
  std::vector<bool> placement(10, true);
  placement[kOlDistInfo] = false;
  placement[kOlAmount] = false;
  ASSERT_TRUE(table->ApplyPlacement(placement).ok());
  Transaction writer = table->Begin();
  Row row{Value(int32_t{500}),  Value(int32_t{1}), Value(int32_t{1}),
          Value(int32_t{1}),    Value(int32_t{1}), Value(int32_t{1}),
          Value(int64_t{0}),    Value(int32_t{5}), Value(42.5),
          Value(std::string("merged"))};
  ASSERT_TRUE(table->Insert(writer, row).ok());
  table->Commit(&writer);
  const size_t main_before = table->table().main_row_count();
  table->MergeDelta();
  EXPECT_EQ(table->table().main_row_count(), main_before + 1);
  EXPECT_EQ(table->table().location(kOlAmount), ColumnLocation::kSecondary);
  // The merged row's SSCG attributes are retrievable.
  Transaction reader = table->Begin();
  Query q;
  q.predicates.push_back(Predicate::Equals(kOlOId, Value(int32_t{500})));
  q.projections = {kOlAmount, kOlDistInfo};
  QueryResult result = table->Execute(reader, q);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], Value(42.5));
  EXPECT_EQ(result.rows[0][1], Value(std::string("merged")));
}

}  // namespace
}  // namespace hytap

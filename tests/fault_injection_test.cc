#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/random.h"
#include "core/migrator.h"
#include "query/executor.h"
#include "storage/table.h"
#include "tiering/buffer_manager.h"
#include "tiering/fault_injector.h"
#include "tiering/secondary_store.h"
#include "workload/enterprise.h"
#include "workload/tpcc.h"

namespace hytap {
namespace {

/// Unit coverage of the fault model (checksums, retry/backoff, quarantine)
/// plus chaos tests: TPC-C and enterprise workloads under randomized seeded
/// fault schedules must either return bit-identical results or degrade to a
/// clean non-OK Status, identically at every worker count.

SecondaryStore::Page PatternPage(uint8_t base) {
  SecondaryStore::Page page;
  for (size_t i = 0; i < page.size(); ++i) {
    page[i] = uint8_t(base + i * 13);
  }
  return page;
}

TEST(Crc32Test, KnownAnswer) {
  // CRC-32C (Castagnoli) check value for the standard "123456789" vector.
  const char* data = "123456789";
  EXPECT_EQ(Crc32c(data, 9), 0xE3069283u);
  EXPECT_EQ(Crc32c(data, 0), 0u);
  // Any bit flip changes the checksum.
  std::string flipped(data, 9);
  flipped[4] ^= 0x10;
  EXPECT_NE(Crc32c(flipped.data(), 9), 0xE3069283u);
}

TEST(FaultInjectionTest, FaultFreeStoreReadsBackExactly) {
  SecondaryStore store(DeviceKind::kXpoint, /*timing_seed=*/42,
                       FaultConfig{});
  const PageId id = store.AllocatePage();
  const SecondaryStore::Page written = PatternPage(3);
  store.WritePage(id, written);
  SecondaryStore::Page read;
  auto outcome = store.ReadPage(id, &read, AccessPattern::kRandom);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->retries, 0u);
  EXPECT_EQ(read, written);
  EXPECT_TRUE(store.VerifyPage(id).ok());
  EXPECT_EQ(store.fault_stats().retries, 0u);
}

TEST(FaultInjectionTest, TransientErrorsRetriedWithBackoff) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.read_error_rate = 0.6;
  SecondaryStore store(DeviceKind::kXpoint, 42, cfg);
  store.set_max_read_retries(64);  // 0.6^65: exhaustion never happens
  const PageId id = store.AllocatePage();
  const SecondaryStore::Page written = PatternPage(9);
  store.WritePage(id, written);
  bool saw_retry = false;
  for (int i = 0; i < 20; ++i) {
    SecondaryStore::Page read;
    auto outcome = store.ReadPage(id, &read, AccessPattern::kRandom);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(read, written);
    if (outcome->retries > 0) {
      saw_retry = true;
      // Backoff is charged to the simulated latency.
      EXPECT_GE(outcome->latency_ns, kRetryBackoffBaseNs);
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_GT(store.fault_stats().transient_errors, 0u);
  EXPECT_GT(store.fault_stats().retries, 0u);
  EXPECT_EQ(store.fault_stats().failed_reads, 0u);
}

TEST(FaultInjectionTest, InTransitCorruptionCaughtAndReRead) {
  FaultConfig cfg;
  cfg.seed = 6;
  cfg.read_corruption_rate = 0.5;
  SecondaryStore store(DeviceKind::kXpoint, 42, cfg);
  store.set_max_read_retries(64);
  const PageId id = store.AllocatePage();
  const SecondaryStore::Page written = PatternPage(17);
  store.WritePage(id, written);
  for (int i = 0; i < 30; ++i) {
    SecondaryStore::Page read;
    auto outcome = store.ReadPage(id, &read, AccessPattern::kRandom);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    // The checksum guarantees a successful read never delivers flipped bits.
    EXPECT_EQ(read, written);
  }
  EXPECT_GT(store.fault_stats().corrupted_reads, 0u);
  EXPECT_GT(store.fault_stats().checksum_failures, 0u);
  EXPECT_EQ(store.fault_stats().failed_reads, 0u);
}

TEST(FaultInjectionTest, DeadPageQuarantinedAndFastFails) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.page_failure_rate = 1.0;
  SecondaryStore store(DeviceKind::kXpoint, 42, cfg);
  const PageId id = store.AllocatePage();
  store.WritePage(id, PatternPage(1));
  SecondaryStore::Page read;
  auto first = store.ReadPage(id, &read, AccessPattern::kRandom);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(store.IsQuarantined(id));
  EXPECT_EQ(store.fault_stats().dead_pages, 1u);
  EXPECT_EQ(store.fault_stats().quarantined_pages, 1u);
  // Subsequent reads fail fast without burning retries.
  auto second = store.ReadPage(id, &read, AccessPattern::kRandom);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(store.fault_stats().fast_fail_reads, 1u);
}

TEST(FaultInjectionTest, SilentWriteCorruptionDetectedAsDataLoss) {
  FaultConfig cfg;
  cfg.seed = 9;
  cfg.write_corruption_rate = 1.0;
  SecondaryStore store(DeviceKind::kXpoint, 42, cfg);
  const PageId id = store.AllocatePage();
  store.WritePage(id, PatternPage(5));
  EXPECT_EQ(store.fault_stats().corrupted_writes, 1u);
  // The corruption is silent at write time, detected by verify/read.
  Status verify = store.VerifyPage(id);
  ASSERT_FALSE(verify.ok());
  EXPECT_EQ(verify.code(), StatusCode::kDataLoss);
  SecondaryStore::Page read;
  auto outcome = store.ReadPage(id, &read, AccessPattern::kRandom);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(store.IsQuarantined(id));
  // Retries re-read the same corrupt media; each attempt fails the checksum.
  EXPECT_GE(store.fault_stats().checksum_failures,
            uint64_t(store.max_read_retries()) + 1);
  auto again = store.ReadPage(id, &read, AccessPattern::kRandom);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.fault_stats().fast_fail_reads, 1u);
}

TEST(FaultInjectionTest, LatencySpikesSlowReadsDown) {
  FaultConfig spiky_cfg;
  spiky_cfg.seed = 11;
  spiky_cfg.latency_spike_rate = 1.0;
  SecondaryStore spiky(DeviceKind::kXpoint, 42, spiky_cfg);
  SecondaryStore plain(DeviceKind::kXpoint, 42, FaultConfig{});
  const PageId id = spiky.AllocatePage();
  plain.AllocatePage();
  SecondaryStore::Page read;
  auto slow = spiky.ReadPage(id, &read, AccessPattern::kRandom);
  auto fast = plain.ReadPage(id, &read, AccessPattern::kRandom);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  // Same timing seed, same draw sequence: the spike multiplier is the only
  // difference.
  EXPECT_GT(slow->latency_ns, 10 * fast->latency_ns);
  EXPECT_EQ(spiky.fault_stats().latency_spikes, 1u);
}

TEST(FaultInjectionTest, ConfigureFaultsClearsQuarantine) {
  FaultConfig cfg;
  cfg.seed = 13;
  cfg.page_failure_rate = 1.0;
  SecondaryStore store(DeviceKind::kXpoint, 42, cfg);
  const PageId id = store.AllocatePage();
  const SecondaryStore::Page written = PatternPage(21);
  store.WritePage(id, written);
  SecondaryStore::Page read;
  ASSERT_FALSE(store.ReadPage(id, &read, AccessPattern::kRandom).ok());
  ASSERT_TRUE(store.IsQuarantined(id));
  // Turning injection off clears the quarantine; the stored bytes were never
  // damaged (the failure was in the read path), so the page reads fine.
  store.ConfigureFaults(FaultConfig{});
  EXPECT_FALSE(store.IsQuarantined(id));
  EXPECT_EQ(store.fault_stats().quarantined_pages, 0u);
  auto outcome = store.ReadPage(id, &read, AccessPattern::kRandom);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(read, written);
}

TEST(FaultInjectionTest, BufferManagerCountsFailuresAndRetries) {
  FaultConfig cfg;
  cfg.seed = 15;
  cfg.read_error_rate = 0.6;
  SecondaryStore store(DeviceKind::kXpoint, 42, cfg);
  store.set_max_read_retries(64);
  for (int i = 0; i < 4; ++i) store.AllocatePage();
  BufferManager buffers(&store, 2);
  for (int round = 0; round < 8; ++round) {
    auto fetch = buffers.FetchPage(PageId(round % 4), AccessPattern::kRandom);
    ASSERT_TRUE(fetch.ok());
  }
  EXPECT_GT(buffers.stats().read_retries, 0u);
  EXPECT_EQ(buffers.stats().read_failures, 0u);
  // A dead page surfaces as a fetch failure and leaves no poisoned frame.
  FaultConfig dead;
  dead.seed = 15;
  dead.page_failure_rate = 1.0;
  store.ConfigureFaults(dead);
  BufferManager cold(&store, 2);  // empty cache: the fetch must miss
  auto fetch = cold.FetchPage(PageId(3), AccessPattern::kSequential);
  ASSERT_FALSE(fetch.ok());
  EXPECT_EQ(fetch.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(cold.stats().read_failures, 1u);
}

// ---------------------------------------------------------------------------
// Chaos harness
// ---------------------------------------------------------------------------

/// One self-contained engine instance over the given data. Loading, tiering,
/// and the delta inserts all happen fault-free; injection starts only when
/// the caller flips it on via `store.ConfigureFaults`, mirroring a healthy
/// volume that starts failing in production.
struct ChaosInstance {
  TransactionManager txns;
  SecondaryStore store;
  BufferManager buffers;
  Table table;

  ChaosInstance(const Schema& schema, const std::vector<Row>& rows,
                const std::vector<bool>& placement, size_t delta_rows)
      : store(DeviceKind::kCssd, /*timing_seed=*/7, FaultConfig{}),
        buffers(&store, /*frame_count=*/32),
        table("chaos", schema, &txns, &store, &buffers) {
    table.BulkLoad(rows);
    EXPECT_TRUE(table.SetPlacement(placement).ok());
    Rng rng(4242);
    Transaction txn = txns.Begin();
    for (size_t d = 0; d < delta_rows; ++d) {
      EXPECT_TRUE(
          table.Insert(txn, rows[rng.NextBounded(rows.size())]).ok());
    }
    txns.Commit(&txn);
  }
};

std::vector<QueryResult> RunAll(ChaosInstance& instance,
                                const std::vector<Query>& queries,
                                uint32_t threads) {
  QueryExecutor executor(&instance.table);
  Transaction txn = instance.txns.Begin();
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (const Query& query : queries) {
    results.push_back(executor.Execute(txn, query, threads));
  }
  instance.txns.Abort(&txn);
  return results;
}

void ExpectSameData(const QueryResult& a, const QueryResult& b, size_t q) {
  EXPECT_EQ(a.positions, b.positions) << "query " << q;
  EXPECT_EQ(a.rows, b.rows) << "query " << q;
  ASSERT_EQ(a.aggregate_values.size(), b.aggregate_values.size())
      << "query " << q;
  for (size_t i = 0; i < a.aggregate_values.size(); ++i) {
    EXPECT_TRUE(a.aggregate_values[i] == b.aggregate_values[i])
        << "query " << q << " aggregate " << i;
  }
  EXPECT_EQ(a.candidate_trace, b.candidate_trace) << "query " << q;
}

void ExpectCleanFailure(const QueryResult& result, size_t q) {
  EXPECT_TRUE(result.status.code() == StatusCode::kUnavailable ||
              result.status.code() == StatusCode::kDataLoss)
      << "query " << q << ": " << result.status.ToString();
  EXPECT_TRUE(result.positions.empty()) << "query " << q;
  EXPECT_TRUE(result.rows.empty()) << "query " << q;
  EXPECT_TRUE(result.aggregate_values.empty()) << "query " << q;
  EXPECT_TRUE(result.candidate_trace.empty()) << "query " << q;
}

/// Fault schedule `round` (0-based): rates ramp up to 5 % read errors.
FaultConfig ChaosConfig(int round) {
  FaultConfig cfg;
  cfg.seed = 11 * uint64_t(round + 1);
  const double rate = 0.01 * (round + 1);  // 1 % .. 5 %
  cfg.read_error_rate = rate;
  cfg.read_corruption_rate = rate / 2;
  cfg.page_failure_rate = rate / 10;
  cfg.latency_spike_rate = rate;
  return cfg;
}

/// Shared chaos driver: every query either matches the fault-free baseline
/// bit for bit or degrades to a clean kUnavailable/kDataLoss, and the
/// outcome of every query — including which error is reported first — is
/// identical at 1, 2, and 4 worker threads.
void RunChaos(const Schema& schema, const std::vector<Row>& rows,
              const std::vector<bool>& placement, size_t delta_rows,
              const std::vector<Query>& queries) {
  ChaosInstance clean_instance(schema, rows, placement, delta_rows);
  const std::vector<QueryResult> clean = RunAll(clean_instance, queries, 1);
  for (size_t q = 0; q < clean.size(); ++q) {
    ASSERT_TRUE(clean[q].status.ok()) << clean[q].status.ToString();
  }

  size_t failed_queries = 0;
  uint64_t total_retries = 0;
  for (int round = 0; round < 5; ++round) {
    const FaultConfig cfg = ChaosConfig(round);
    std::vector<QueryResult> reference;  // threads == 1 under this schedule
    for (uint32_t threads : {1u, 2u, 4u}) {
      ChaosInstance instance(schema, rows, placement, delta_rows);
      instance.store.ConfigureFaults(cfg);
      std::vector<QueryResult> results = RunAll(instance, queries, threads);
      ASSERT_EQ(results.size(), clean.size());
      for (size_t q = 0; q < results.size(); ++q) {
        if (results[q].status.ok()) {
          // Graceful degradation invariant: an OK result is bit-identical
          // to the fault-free run (retries and re-reads are invisible).
          ExpectSameData(results[q], clean[q], q);
        } else {
          ExpectCleanFailure(results[q], q);
        }
      }
      if (threads == 1) {
        reference = std::move(results);
        for (const QueryResult& r : reference) {
          if (!r.status.ok()) ++failed_queries;
        }
        total_retries += instance.store.fault_stats().retries;
      } else {
        // Thread-count invariance: same fault schedule, same outcomes, and
        // the same first-reported error per query.
        for (size_t q = 0; q < results.size(); ++q) {
          EXPECT_EQ(results[q].status.code(), reference[q].status.code())
              << "round " << round << " threads " << threads << " query "
              << q;
          EXPECT_EQ(results[q].status.message(),
                    reference[q].status.message())
              << "round " << round << " threads " << threads << " query "
              << q;
          if (results[q].status.ok()) {
            ExpectSameData(results[q], reference[q], q);
            EXPECT_EQ(results[q].io.page_reads, reference[q].io.page_reads)
                << "query " << q;
            EXPECT_EQ(results[q].io.cache_hits, reference[q].io.cache_hits)
                << "query " << q;
          }
        }
      }
    }
  }
  // The schedules actually exercised the recovery path: retries happened and
  // at least one query hit an unrecoverable fault somewhere in the sweep.
  EXPECT_GT(total_retries, 0u);
  EXPECT_GT(failed_queries, 0u);
}

TEST(FaultInjectionChaosTest, TpccWorkloadDegradesCleanly) {
  OrderlineParams params;
  params.warehouses = 2;
  params.districts_per_warehouse = 2;
  params.orders_per_district = 30;
  params.items = 200;
  const std::vector<Row> rows = GenerateOrderlineRows(params);
  // Paper §IV-A placement at w = 0.2: primary key stays in DRAM, the six
  // payload attributes live in the SSCG.
  std::vector<bool> placement(10, false);
  for (ColumnId c : OrderlinePrimaryKey()) placement[c] = true;
  std::vector<Query> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(
        DeliveryQuery(1 + i % 2, 1 + (i / 2) % 2, 1 + (i * 7) % 30));
  }
  queries.push_back(ChQuery19(1, 1, 120, 1, 5));
  queries.push_back(ChQuery19(2, 50, 180, 2, 6));
  RunChaos(OrderlineSchema(), rows, placement, /*delta_rows=*/60, queries);
}

TEST(FaultInjectionChaosTest, EnterpriseWorkloadDegradesCleanly) {
  EnterpriseProfile profile;
  profile.table_name = "CHAOS";
  profile.attribute_count = 24;
  profile.filtered_count = 8;
  profile.hot_filtered_count = 3;
  profile.template_count = 10;
  profile.unfiltered_byte_share = 0.7;
  profile.dominant_column_share = 0.1;
  const Schema schema = MakeEnterpriseSchema(profile);
  const std::vector<Row> rows = GenerateEnterpriseRows(profile, 3000, 17);
  // Evict the cold half of the attributes (paper §III-B: most enterprise
  // bytes are never filtered).
  std::vector<bool> placement(24, true);
  for (ColumnId c = 12; c < 24; ++c) placement[c] = false;
  std::vector<Query> queries;
  Rng rng(31);
  for (int i = 0; i < 10; ++i) {
    Query query;
    const int32_t lo = int32_t(rng.NextBounded(2500));
    query.predicates.push_back(Predicate::Between(
        0, Value(lo), Value(lo + 400)));  // hot document-number range
    // One predicate over a tiered low-cardinality attribute.
    const ColumnId cold = ColumnId(12 + rng.NextBounded(12));
    query.predicates.push_back(
        Predicate::Between(cold, Value(int32_t{0}), Value(int32_t{60})));
    query.projections = {0, ColumnId(13 + i % 11)};
    query.aggregates = {Aggregate::Count(), Aggregate::Min(0),
                        Aggregate::Max(ColumnId(12 + i % 12))};
    queries.push_back(std::move(query));
  }
  RunChaos(schema, rows, placement, /*delta_rows=*/40, queries);
}

TEST(FaultInjectionChaosTest, CorruptedMigrationAbortsFullyDramResident) {
  OrderlineParams params;
  params.warehouses = 2;
  params.districts_per_warehouse = 2;
  params.orders_per_district = 20;
  auto table = std::make_unique<TieredTable>("orderline", OrderlineSchema(),
                                             TieredTableOptions{});
  table->Load(GenerateOrderlineRows(params));

  // Fault-free reference answer for a representative query.
  const Query probe = DeliveryQuery(1, 1, 5);
  Transaction txn = table->Begin();
  const QueryResult before = table->ExecuteUnrecorded(txn, probe);
  ASSERT_TRUE(before.status.ok());

  // Every SSCG page written during the migration is silently corrupted; the
  // read-back verify must catch it and abort the eviction.
  FaultConfig cfg;
  cfg.seed = 3;
  cfg.write_corruption_rate = 1.0;
  table->store().ConfigureFaults(cfg);
  std::vector<bool> placement(10, true);
  placement[kOlAmount] = false;
  placement[kOlDistInfo] = false;
  Migrator migrator;
  auto report = migrator.Apply(table.get(), placement);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDataLoss);

  // The aborted migration leaves the table fully DRAM-resident...
  for (ColumnId c = 0; c < 10; ++c) {
    EXPECT_EQ(table->table().location(c), ColumnLocation::kDram) << c;
  }
  // ...and still fully queryable with correct answers.
  table->store().ConfigureFaults(FaultConfig{});
  const QueryResult after = table->ExecuteUnrecorded(txn, probe);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.positions, before.positions);
  EXPECT_EQ(after.rows, before.rows);
  table->Abort(&txn);

  // With faults gone the same migration succeeds.
  auto retry = migrator.Apply(table.get(), placement);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->applied);
  EXPECT_EQ(table->table().location(kOlAmount), ColumnLocation::kSecondary);
}

}  // namespace
}  // namespace hytap

#include "core/placement_doctor.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/advisor.h"
#include "core/tiered_table.h"
#include "selection/calibration.h"
#include "workload/enterprise.h"
#include "workload/workload_monitor.h"

namespace hytap {
namespace {

/// Trimmed BSEG table mirroring placement_doctor_cli: 12 columns, a hot set
/// of 4 payload columns that phase B flips to the opposite end.
constexpr size_t kRows = 4000;
constexpr size_t kCols = 12;
constexpr size_t kQueriesPerPhase = 32;
constexpr size_t kHotCount = 4;
constexpr size_t kHotA = 1;
constexpr size_t kHotB = kCols - kHotCount;

std::unique_ptr<TieredTable> MakeTable() {
  EnterpriseProfile profile = BsegProfile();
  profile.attribute_count = kCols;
  TieredTableOptions options;
  options.device = DeviceKind::kCssd;
  options.timing_seed = 42;
  // Phases are separated via ForceRoll(): keep each phase in one window.
  options.monitor.window_ns = 1'000'000'000'000'000ull;
  auto table = std::make_unique<TieredTable>(
      "bseg", MakeEnterpriseSchema(profile), options);
  table->Load(GenerateEnterpriseRows(profile, kRows, 42));
  return table;
}

/// Seeded equality mix concentrated on `hot_base .. hot_base+kHotCount`.
void RunPhase(TieredTable* table, size_t hot_base, Rng* rng) {
  Transaction txn = table->Begin();
  for (size_t q = 0; q < kQueriesPerPhase; ++q) {
    Query query;
    const size_t hot = hot_base + size_t(rng->NextBounded(kHotCount));
    query.predicates.push_back(
        Predicate::Equals(ColumnId(hot), Value(int32_t(rng->NextBounded(8)))));
    if (q % 3 == 0) {
      const size_t other = hot_base + size_t(rng->NextBounded(kHotCount));
      if (other != hot) {
        query.predicates.push_back(Predicate::Between(
            ColumnId(other), Value(int32_t{0}), Value(int32_t{40})));
      }
    }
    query.aggregates = {Aggregate::Count()};
    (void)table->Execute(txn, query, 2);
  }
  table->Commit(&txn);
}

double TotalDramBytes(const TieredTable& table) {
  double total = 0.0;
  for (ColumnId c = 0; c < table.table().column_count(); ++c) {
    total += double(table.table().ColumnDramBytes(c));
  }
  return total;
}

TEST(PlacementDoctorTest, RegretNearZeroAfterAdvisorApply) {
  const bool was = WorkloadMonitorEnabled();
  SetWorkloadMonitorEnabled(true);
  auto table = MakeTable();
  Rng rng(99);
  RunPhase(table.get(), kHotA, &rng);

  Advisor advisor;
  auto migrated = advisor.Apply(table.get(), 0.35 * TotalDramBytes(*table));
  ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();

  PlacementDoctor doctor;
  const DoctorReport report = doctor.Diagnose(*table);
  SetWorkloadMonitorEnabled(was);

  EXPECT_TRUE(report.from_monitor);
  EXPECT_EQ(report.queries_observed, kQueriesPerPhase);
  // The placement was just optimized for exactly this workload at exactly
  // this budget (placement parity), so the doctor must agree with it.
  EXPECT_GE(report.regret, 0.0);
  EXPECT_LE(report.regret_pct, 1.0);
  EXPECT_TRUE(report.misplaced.empty());
  EXPECT_DOUBLE_EQ(report.budget_bytes, report.current_dram_bytes);
  EXPECT_GE(report.current_cost, report.recommended_cost);
  EXPECT_LE(report.all_dram_cost, report.recommended_cost + 1e-9);
  // Report rendering smoke.
  EXPECT_NE(report.ToText().find("regret"), std::string::npos);
  EXPECT_NE(report.ToJson().find("\"regret\""), std::string::npos);
}

TEST(PlacementDoctorTest, SkewFlipRaisesRegretWithFlippedColumnsInTopK) {
  const bool was = WorkloadMonitorEnabled();
  SetWorkloadMonitorEnabled(true);
  auto table = MakeTable();
  Rng rng(99);
  RunPhase(table.get(), kHotA, &rng);
  Advisor advisor;
  ASSERT_TRUE(advisor.Apply(table.get(), 0.35 * TotalDramBytes(*table)).ok());
  PlacementDoctor doctor;
  const DoctorReport report_a = doctor.Diagnose(*table);

  // The hot set flips to columns the advisor just evicted; diagnose only
  // the post-flip window.
  table->monitor().ForceRoll();
  RunPhase(table.get(), kHotB, &rng);
  DoctorOptions recent_options;
  recent_options.recent_windows = 1;
  PlacementDoctor recent_doctor(recent_options);
  const DoctorReport report_b = recent_doctor.Diagnose(*table);
  SetWorkloadMonitorEnabled(was);

  EXPECT_EQ(report_b.windows_used, 1u);
  EXPECT_GT(report_b.drift, 0.9);  // disjoint hot sets
  EXPECT_GT(report_b.regret, 0.0);
  EXPECT_GT(report_b.regret_pct, report_a.regret_pct);
  ASSERT_FALSE(report_b.misplaced.empty());
  bool flipped_in_topk = false;
  for (const MisplacedColumn& column : report_b.misplaced) {
    if (column.column >= kHotB && column.column < kHotB + kHotCount &&
        column.in_dram_recommended && !column.in_dram_now) {
      flipped_in_topk = true;
    }
  }
  EXPECT_TRUE(flipped_in_topk);
  // Ranked by separable cost term, largest first.
  for (size_t i = 1; i < report_b.misplaced.size(); ++i) {
    EXPECT_GE(report_b.misplaced[i - 1].cost_delta,
              report_b.misplaced[i].cost_delta);
  }
}

TEST(PlacementDoctorTest, CalibrationRecoversFromPerturbedReference) {
  const bool was = WorkloadMonitorEnabled();
  SetWorkloadMonitorEnabled(true);
  auto table = MakeTable();

  // Fan the observation stream out to a second calibrator whose reference
  // parameters are badly perturbed.
  struct TeeSink : QueryObservationSink {
    std::vector<QueryObservationSink*> sinks;
    void Observe(const QueryObservation& observation) override {
      for (QueryObservationSink* sink : sinks) sink->Observe(observation);
    }
  } tee;
  CostCalibrator perturbed(ScanCostParams{10.0, 1000.0});
  tee.sinks = {&table->calibrator(), &perturbed};
  table->monitor().set_sink(&tee);

  // Tier the hot set half-and-half so both the DRAM and the secondary tier
  // accumulate bytes: columns 1-2 stay in DRAM, 3-4 (and the rest) evict.
  std::vector<bool> in_dram(kCols, false);
  in_dram[0] = in_dram[1] = in_dram[2] = true;
  ASSERT_TRUE(table->ApplyPlacement(in_dram).ok());
  Rng rng(7);
  RunPhase(table.get(), kHotA, &rng);
  table->monitor().set_sink(&table->calibrator());
  SetWorkloadMonitorEnabled(was);

  ASSERT_EQ(perturbed.sample_count(), kQueriesPerPhase);
  ASSERT_GT(perturbed.dram().bytes, 0u);
  ASSERT_GT(perturbed.secondary().bytes, 0u);

  // The fit is a pure bytes/ns ratio: it recovers the simulator's effective
  // bandwidths no matter how wrong the starting reference was.
  const ScanCostParams fitted_default = table->calibrator().Fitted();
  const ScanCostParams fitted_perturbed = perturbed.Fitted();
  EXPECT_NEAR(fitted_perturbed.c_mm, fitted_default.c_mm, 1e-12);
  EXPECT_NEAR(fitted_perturbed.c_ss, fitted_default.c_ss, 1e-12);
  // DRAM truth: kDramScanBytesPerNs = 10 bytes/ns -> ~0.1 ns/byte.
  EXPECT_NEAR(fitted_perturbed.c_mm, 0.1, 0.05);
  // CSSD effective bandwidth lands far from both references.
  EXPECT_GT(fitted_perturbed.c_ss, 1.0);
  EXPECT_LT(fitted_perturbed.c_ss, 100.0);
  // Residuals (unlike the fit) do depend on the reference: the perturbed
  // calibrator predicts higher costs, so its observed/predicted ratio is
  // smaller.
  EXPECT_GT(table->calibrator().SecondaryResidualRatio(),
            perturbed.SecondaryResidualRatio());
}

TEST(PlacementDoctorTest, CalibratedParamsOptIn) {
  const bool was = WorkloadMonitorEnabled();
  SetWorkloadMonitorEnabled(true);
  auto table = MakeTable();
  std::vector<bool> in_dram(kCols, false);
  in_dram[0] = in_dram[1] = in_dram[2] = true;
  ASSERT_TRUE(table->ApplyPlacement(in_dram).ok());
  Rng rng(7);
  RunPhase(table.get(), kHotA, &rng);
  SetWorkloadMonitorEnabled(was);

  DoctorOptions options;
  options.use_calibrated_params = true;
  PlacementDoctor doctor(options);
  const DoctorReport report = doctor.Diagnose(*table);
  EXPECT_TRUE(report.calibrated);
  EXPECT_EQ(report.calibration_samples, kQueriesPerPhase);
  EXPECT_DOUBLE_EQ(report.params_used.c_mm, report.fitted_params.c_mm);
  EXPECT_DOUBLE_EQ(report.params_used.c_ss, report.fitted_params.c_ss);
  // The advisor honors the same opt-in.
  AdvisorOptions advisor_options;
  advisor_options.calibrator = &table->calibrator();
  advisor_options.use_calibrated_params = true;
  Advisor advisor(advisor_options);
  const Recommendation rec = advisor.RecommendRelative(*table, 0.5);
  EXPECT_DOUBLE_EQ(rec.params_used.c_mm, report.fitted_params.c_mm);
  EXPECT_DOUBLE_EQ(rec.params_used.c_ss, report.fitted_params.c_ss);
}

TEST(PlacementDoctorTest, FallsBackToPlanCacheWhenMonitorOff) {
  const bool was = WorkloadMonitorEnabled();
  SetWorkloadMonitorEnabled(false);
  auto table = MakeTable();
  Rng rng(3);
  RunPhase(table.get(), kHotA, &rng);
  SetWorkloadMonitorEnabled(was);

  EXPECT_EQ(table->monitor().queries_observed(), 0u);
  EXPECT_GT(table->plan_cache().template_count(), 0u);
  PlacementDoctor doctor;
  const DoctorReport report = doctor.Diagnose(*table);
  EXPECT_FALSE(report.from_monitor);
  EXPECT_EQ(report.queries_observed, 0u);
  EXPECT_GT(report.current_cost, 0.0);
  EXPECT_GE(report.regret, 0.0);
}

TEST(PlacementDoctorTest, EmptyWorkloadYieldsZeroReport) {
  auto table = MakeTable();
  PlacementDoctor doctor;
  const DoctorReport report = doctor.Diagnose(*table);
  EXPECT_DOUBLE_EQ(report.regret, 0.0);
  EXPECT_DOUBLE_EQ(report.regret_pct, 0.0);
  EXPECT_TRUE(report.misplaced.empty());
  EXPECT_DOUBLE_EQ(report.current_cost, 0.0);
}

}  // namespace
}  // namespace hytap

// End-to-end pipeline tests: load -> workload -> advisor -> migrate ->
// verify that (i) results never change, (ii) the modeled scan cost drops the
// way the selection model predicts, and (iii) forecast-driven re-advice
// adapts the placement.

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/migrator.h"
#include "core/tiered_table.h"
#include "workload/forecast.h"
#include "workload/tpcc.h"

namespace hytap {
namespace {

std::unique_ptr<TieredTable> MakeTable(DeviceKind device) {
  OrderlineParams params;
  params.warehouses = 3;
  params.districts_per_warehouse = 4;
  params.orders_per_district = 40;
  TieredTableOptions options;
  options.device = device;
  auto table = std::make_unique<TieredTable>("orderline", OrderlineSchema(),
                                             options);
  table->Load(GenerateOrderlineRows(params));
  return table;
}

void RunMixedWorkload(TieredTable* table, int rounds) {
  Transaction txn = table->Begin();
  for (int i = 0; i < rounds; ++i) {
    table->Execute(txn, DeliveryQuery(1 + i % 3, 1 + i % 4, 1 + i % 40));
    if (i % 10 == 0) {
      table->Execute(txn, ChQuery19(1 + i % 3, 1, 400, 1, 3));
    }
  }
}

TEST(IntegrationTest, AdvisorDropsModeledCostMonotonically) {
  auto table = MakeTable(DeviceKind::kXpoint);
  RunMixedWorkload(table.get(), 60);
  Advisor advisor;
  double previous_cost = -1.0;
  for (double w : {0.1, 0.3, 0.6, 0.9}) {
    Recommendation rec = advisor.RecommendRelative(*table, w);
    if (previous_cost >= 0.0) {
      EXPECT_LE(rec.selection.scan_cost, previous_cost + 1e-6)
          << "more budget must not increase modeled cost (w=" << w << ")";
    }
    previous_cost = rec.selection.scan_cost;
  }
}

TEST(IntegrationTest, FullPipelineKeepsResultsStable) {
  auto table = MakeTable(DeviceKind::kCssd);
  RunMixedWorkload(table.get(), 40);
  Transaction txn = table->Begin();
  Query probe_query = DeliveryQuery(2, 3, 17);
  Query range_query = ChQuery19(1, 1, 400, 1, 3);
  const auto probe_before = table->Execute(txn, probe_query);
  const auto range_before = table->Execute(txn, range_query);

  Advisor advisor;
  Migrator migrator;
  Recommendation rec = advisor.RecommendRelative(*table, 0.25);
  auto report = migrator.Apply(table.get(),
                               std::vector<bool>(rec.in_dram.begin(),
                                                 rec.in_dram.end()));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->applied);
  EXPECT_GT(report->moved_bytes, 0u);

  const auto probe_after = table->Execute(txn, probe_query);
  const auto range_after = table->Execute(txn, range_query);
  EXPECT_EQ(probe_before.positions, probe_after.positions);
  EXPECT_EQ(range_before.positions, range_after.positions);
  ASSERT_EQ(range_before.rows.size(), range_after.rows.size());
  for (size_t i = 0; i < range_before.rows.size(); ++i) {
    EXPECT_EQ(range_before.rows[i], range_after.rows[i]);
  }
}

TEST(IntegrationTest, InsertsQueriesMergeSurvivePlacement) {
  auto table = MakeTable(DeviceKind::kXpoint);
  RunMixedWorkload(table.get(), 30);
  Advisor advisor;
  ASSERT_TRUE(advisor.Apply(table.get(), /*budget=*/1.0).ok());
  // Writers keep inserting while the table is tiered.
  for (int batch = 0; batch < 3; ++batch) {
    Transaction writer = table->Begin();
    for (int i = 0; i < 10; ++i) {
      Row row{Value(int32_t(9000 + batch * 10 + i)), Value(int32_t{1}),
              Value(int32_t{1}),    Value(int32_t{1}), Value(int32_t{1}),
              Value(int32_t{1}),    Value(int64_t{0}), Value(int32_t{5}),
              Value(1.5),           Value(std::string("x"))};
      ASSERT_TRUE(table->Insert(writer, row).ok());
    }
    table->Commit(&writer);
    table->MergeDelta();
  }
  Transaction reader = table->Begin();
  Query q;
  q.predicates.push_back(
      Predicate::AtLeast(kOlOId, Value(int32_t{9000})));
  q.aggregates = {Aggregate::Count(), Aggregate::Sum(kOlAmount)};
  QueryResult result = table->Execute(reader, q);
  EXPECT_EQ(result.aggregate_values[0], Value(int64_t{30}));
  EXPECT_DOUBLE_EQ(result.aggregate_values[1].AsDouble(), 45.0);
}

TEST(IntegrationTest, ForecastDrivenReadvice) {
  // Epoch 1: delivery-only. Epoch 2-3: CH-19 volume ramps up. A trend
  // forecast must pull ol_quantity into DRAM at a budget where the static
  // history would not.
  auto table = MakeTable(DeviceKind::kXpoint);
  WorkloadHistory history;
  Transaction txn = table->Begin();
  auto run_epoch = [&](int deliveries, int ch_queries) {
    table->plan_cache().Clear();
    for (int i = 0; i < deliveries; ++i) {
      table->Execute(txn, DeliveryQuery(1 + i % 3, 1 + i % 4, 1 + i % 40));
    }
    for (int i = 0; i < ch_queries; ++i) {
      table->Execute(txn, ChQuery19(1 + i % 3, 1, 400, 1, 3));
    }
    history.CloseEpoch(table->plan_cache(), table->table());
  };
  run_epoch(100, 0);
  run_epoch(100, 30);
  run_epoch(100, 60);
  Workload predicted = history.Forecast(table->table(),
                                        ForecastMethod::kLinearTrend);
  // The CH-19 template's predicted frequency exceeds its recorded mean.
  double ch_freq = 0.0;
  for (const auto& q : predicted.queries) {
    if (q.columns.size() == 3 &&
        std::find(q.columns.begin(), q.columns.end(), uint32_t(kOlQuantity))
            != q.columns.end()) {
      ch_freq = q.frequency;
    }
  }
  EXPECT_GT(ch_freq, 60.0);
  // Selection on the forecast keeps ol_quantity DRAM-resident.
  auto problem = SelectionProblem::FromRelativeBudget(
      predicted, ScanCostParams{1.0, 100.0}, 0.5);
  SelectionResult placement = SelectExplicit(problem);
  EXPECT_EQ(placement.in_dram[kOlQuantity], 1);
}

}  // namespace
}  // namespace hytap

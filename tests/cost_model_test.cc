#include "selection/cost_model.h"

#include <gtest/gtest.h>

namespace hytap {
namespace {

/// Hand-checkable workload: 3 columns, sizes 10/20/30, selectivities
/// 0.1/0.5/0.01, two queries.
Workload TinyWorkload() {
  Workload w;
  w.column_sizes = {10.0, 20.0, 30.0};
  w.selectivities = {0.1, 0.5, 0.01};
  QueryTemplate q1;  // filters columns 0 and 1
  q1.columns = {0, 1};
  q1.frequency = 2.0;
  QueryTemplate q2;  // filters columns 1 and 2
  q2.columns = {1, 2};
  q2.frequency = 1.0;
  w.queries = {q1, q2};
  return w;
}

TEST(CostModelTest, AllDramAndAllSecondaryCosts) {
  ScanCostParams params{1.0, 10.0};
  Workload w = TinyWorkload();
  CostModel model(w, params);
  // Execution order: q1 = (col0 s=.1, col1 s=.5) -> mass0 = 2, mass1(q1) =
  // 2*0.1; q2 = (col2 s=.01, col1 s=.5) -> mass2 = 1, mass1(q2) = 1*0.01.
  // Accessed bytes (weighted): col0: 10*2=20, col1: 20*(0.2+0.01)=4.2,
  // col2: 30*1=30. Total = 54.2.
  EXPECT_NEAR(model.AllDramCost(), 54.2, 1e-9);
  EXPECT_NEAR(model.AllSecondaryCost(), 542.0, 1e-9);
}

TEST(CostModelTest, SCoefficientsNegative) {
  Workload w = TinyWorkload();
  CostModel model(w, ScanCostParams{1.0, 10.0});
  for (double s : model.S()) EXPECT_LE(s, 0.0);
  // S_0 = (1-10)*2 = -18; S_1 = -9*0.21 = -1.89; S_2 = -9*1 = -9.
  EXPECT_NEAR(model.S()[0], -18.0, 1e-9);
  EXPECT_NEAR(model.S()[1], -1.89, 1e-9);
  EXPECT_NEAR(model.S()[2], -9.0, 1e-9);
}

TEST(CostModelTest, ScanCostDecomposition) {
  Workload w = TinyWorkload();
  CostModel model(w, ScanCostParams{1.0, 10.0});
  // F(x) = F(0) + sum x_i a_i S_i.
  EXPECT_NEAR(model.ScanCost({1, 1, 1}), model.AllDramCost(), 1e-9);
  EXPECT_NEAR(model.ScanCost({0, 0, 0}), model.AllSecondaryCost(), 1e-9);
  EXPECT_NEAR(model.ScanCost({1, 0, 0}),
              model.AllSecondaryCost() + 10.0 * model.S()[0], 1e-9);
  EXPECT_NEAR(model.ScanCost({0, 1, 1}),
              model.AllSecondaryCost() + 20.0 * model.S()[1] +
                  30.0 * model.S()[2],
              1e-9);
}

TEST(CostModelTest, UnusedColumnHasZeroUtility) {
  Workload w = TinyWorkload();
  w.column_sizes.push_back(100.0);
  w.selectivities.push_back(0.2);
  CostModel model(w, ScanCostParams{1.0, 10.0});
  EXPECT_DOUBLE_EQ(model.S()[3], 0.0);
  // Placing it in DRAM changes nothing.
  EXPECT_DOUBLE_EQ(model.ScanCost({0, 0, 0, 0}), model.ScanCost({0, 0, 0, 1}));
}

TEST(CostModelTest, MemoryUsed) {
  Workload w = TinyWorkload();
  CostModel model(w, ScanCostParams{});
  EXPECT_DOUBLE_EQ(model.MemoryUsed({1, 0, 1}), 40.0);
  EXPECT_DOUBLE_EQ(model.MemoryUsed({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(model.TotalBytes(), 60.0);
}

TEST(CostModelTest, RelativePerformanceBounded) {
  Workload w = TinyWorkload();
  CostModel model(w, ScanCostParams{1.0, 10.0});
  EXPECT_DOUBLE_EQ(model.RelativePerformance({1, 1, 1}), 1.0);
  EXPECT_LT(model.RelativePerformance({0, 0, 0}), 1.0);
  EXPECT_GT(model.RelativePerformance({0, 0, 0}), 0.0);
}

TEST(CostModelTest, SelectionInteractionDiscountsLaterPredicates) {
  // With interaction on, a column that always co-occurs with a highly
  // restrictive one has tiny utility; with interaction off its utility is
  // as large as a stand-alone filter's.
  Workload w;
  w.column_sizes = {10.0, 10.0};
  w.selectivities = {1e-4, 0.5};
  QueryTemplate q;
  q.columns = {0, 1};
  q.frequency = 1.0;
  w.queries = {q};
  CostModel with(w, ScanCostParams{1.0, 10.0}, true);
  CostModel without(w, ScanCostParams{1.0, 10.0}, false);
  // Column 1 executes after column 0 (s=1e-4): discounted by 1e-4.
  EXPECT_NEAR(with.S()[1], -9.0 * 1e-4, 1e-12);
  EXPECT_NEAR(without.S()[1], -9.0, 1e-12);
  // Column 0 executes first either way.
  EXPECT_DOUBLE_EQ(with.S()[0], without.S()[0]);
}

TEST(CostModelTest, ContinuousMatchesBinaryAtCorners) {
  Workload w = TinyWorkload();
  CostModel model(w, ScanCostParams{1.0, 10.0});
  EXPECT_NEAR(model.ScanCostContinuous({1.0, 0.0, 1.0}),
              model.ScanCost({1, 0, 1}), 1e-9);
  // Midpoint lies between the corners.
  const double mid = model.ScanCostContinuous({0.5, 0.5, 0.5});
  EXPECT_GT(mid, model.AllDramCost());
  EXPECT_LT(mid, model.AllSecondaryCost());
}

TEST(CostModelDeathTest, InvalidParamsAbort) {
  Workload w = TinyWorkload();
  EXPECT_DEATH(CostModel(w, ScanCostParams{0.0, 1.0}),
               "positive");
}

}  // namespace
}  // namespace hytap

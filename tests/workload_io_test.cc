#include "io/workload_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "workload/example1.h"

namespace hytap {
namespace {

TEST(WorkloadIoTest, RoundTrip) {
  Workload original = GenerateExample1({});
  StatusOr<Workload> parsed = ParseWorkload(SerializeWorkload(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->column_count(), original.column_count());
  ASSERT_EQ(parsed->query_count(), original.query_count());
  for (size_t i = 0; i < original.column_count(); ++i) {
    EXPECT_DOUBLE_EQ(parsed->column_sizes[i], original.column_sizes[i]);
    EXPECT_DOUBLE_EQ(parsed->selectivities[i], original.selectivities[i]);
  }
  for (size_t j = 0; j < original.query_count(); ++j) {
    EXPECT_EQ(parsed->queries[j].columns, original.queries[j].columns);
    EXPECT_DOUBLE_EQ(parsed->queries[j].frequency,
                     original.queries[j].frequency);
  }
}

TEST(WorkloadIoTest, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# exported workload\n"
      "hytap-workload v1\n"
      "\n"
      "columns 2\n"
      "a 100 0.5\n"
      "# the second column\n"
      "b 200 0.1\n"
      "queries 1\n"
      "5 0 1\n";
  StatusOr<Workload> parsed = ParseWorkload(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->column_count(), 2u);
  EXPECT_EQ(parsed->queries[0].columns, (std::vector<uint32_t>{0, 1}));
  EXPECT_DOUBLE_EQ(parsed->queries[0].frequency, 5.0);
}

TEST(WorkloadIoTest, RejectsMalformedInputs) {
  EXPECT_FALSE(ParseWorkload("").ok());
  EXPECT_FALSE(ParseWorkload("not-a-workload\n").ok());
  EXPECT_FALSE(
      ParseWorkload("hytap-workload v1\ncolumns x\n").ok());
  // Column with non-positive size.
  EXPECT_FALSE(ParseWorkload("hytap-workload v1\ncolumns 1\na 0 0.5\n"
                             "queries 0\n")
                   .ok());
  // Selectivity out of (0, 1].
  EXPECT_FALSE(ParseWorkload("hytap-workload v1\ncolumns 1\na 10 2.0\n"
                             "queries 0\n")
                   .ok());
  // Query referencing an unknown column.
  EXPECT_FALSE(ParseWorkload("hytap-workload v1\ncolumns 1\na 10 0.5\n"
                             "queries 1\n1 7\n")
                   .ok());
  // Query with no columns.
  EXPECT_FALSE(ParseWorkload("hytap-workload v1\ncolumns 1\na 10 0.5\n"
                             "queries 1\n1\n")
                   .ok());
  // Truncated column section.
  EXPECT_FALSE(
      ParseWorkload("hytap-workload v1\ncolumns 2\na 10 0.5\n").ok());
}

TEST(WorkloadIoTest, FileRoundTrip) {
  Workload original = GenerateExample1({});
  const std::string path = "/tmp/hytap_workload_io_test.txt";
  ASSERT_TRUE(WriteWorkloadFile(path, original).ok());
  StatusOr<Workload> parsed = ReadWorkloadFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->column_count(), original.column_count());
  std::remove(path.c_str());
  EXPECT_FALSE(ReadWorkloadFile("/tmp/does_not_exist_hytap.txt").ok());
}

TEST(WorkloadIoTest, FrontierCsv) {
  Workload w = GenerateExample1({});
  SelectionProblem problem;
  problem.workload = &w;
  problem.params = {1.0, 100.0};
  ExplicitFrontier frontier = ComputeExplicitFrontier(problem);
  const std::string csv = FrontierToCsv(frontier, w);
  EXPECT_NE(csv.find("step,column,name"), std::string::npos);
  // One line per frontier point plus the header.
  const size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, frontier.points.size() + 1);
}

TEST(WorkloadIoTest, AllocationCsv) {
  Workload w = GenerateExample1({});
  auto problem =
      SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100}, 0.4);
  SelectionResult result = SelectExplicit(problem);
  const std::string csv = AllocationToCsv(result, w);
  EXPECT_NE(csv.find("column,name,size_bytes,location"), std::string::npos);
  EXPECT_NE(csv.find("dram"), std::string::npos);
  EXPECT_NE(csv.find("secondary"), std::string::npos);
}

}  // namespace
}  // namespace hytap

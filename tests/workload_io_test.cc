#include "io/workload_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "workload/example1.h"

namespace hytap {
namespace {

TEST(WorkloadIoTest, RoundTrip) {
  Workload original = GenerateExample1({});
  StatusOr<Workload> parsed = ParseWorkload(SerializeWorkload(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->column_count(), original.column_count());
  ASSERT_EQ(parsed->query_count(), original.query_count());
  for (size_t i = 0; i < original.column_count(); ++i) {
    EXPECT_DOUBLE_EQ(parsed->column_sizes[i], original.column_sizes[i]);
    EXPECT_DOUBLE_EQ(parsed->selectivities[i], original.selectivities[i]);
  }
  for (size_t j = 0; j < original.query_count(); ++j) {
    EXPECT_EQ(parsed->queries[j].columns, original.queries[j].columns);
    EXPECT_DOUBLE_EQ(parsed->queries[j].frequency,
                     original.queries[j].frequency);
  }
}

TEST(WorkloadIoTest, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# exported workload\n"
      "hytap-workload v1\n"
      "\n"
      "columns 2\n"
      "a 100 0.5\n"
      "# the second column\n"
      "b 200 0.1\n"
      "queries 1\n"
      "5 0 1\n";
  StatusOr<Workload> parsed = ParseWorkload(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->column_count(), 2u);
  EXPECT_EQ(parsed->queries[0].columns, (std::vector<uint32_t>{0, 1}));
  EXPECT_DOUBLE_EQ(parsed->queries[0].frequency, 5.0);
}

TEST(WorkloadIoTest, RejectsMalformedInputs) {
  EXPECT_FALSE(ParseWorkload("").ok());
  EXPECT_FALSE(ParseWorkload("not-a-workload\n").ok());
  EXPECT_FALSE(
      ParseWorkload("hytap-workload v1\ncolumns x\n").ok());
  // Column with non-positive size.
  EXPECT_FALSE(ParseWorkload("hytap-workload v1\ncolumns 1\na 0 0.5\n"
                             "queries 0\n")
                   .ok());
  // Selectivity out of (0, 1].
  EXPECT_FALSE(ParseWorkload("hytap-workload v1\ncolumns 1\na 10 2.0\n"
                             "queries 0\n")
                   .ok());
  // Query referencing an unknown column.
  EXPECT_FALSE(ParseWorkload("hytap-workload v1\ncolumns 1\na 10 0.5\n"
                             "queries 1\n1 7\n")
                   .ok());
  // Query with no columns.
  EXPECT_FALSE(ParseWorkload("hytap-workload v1\ncolumns 1\na 10 0.5\n"
                             "queries 1\n1\n")
                   .ok());
  // Truncated column section.
  EXPECT_FALSE(
      ParseWorkload("hytap-workload v1\ncolumns 2\na 10 0.5\n").ok());
}

TEST(WorkloadIoTest, FileRoundTrip) {
  Workload original = GenerateExample1({});
  const std::string path = "/tmp/hytap_workload_io_test.txt";
  ASSERT_TRUE(WriteWorkloadFile(path, original).ok());
  StatusOr<Workload> parsed = ReadWorkloadFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->column_count(), original.column_count());
  std::remove(path.c_str());
  EXPECT_FALSE(ReadWorkloadFile("/tmp/does_not_exist_hytap.txt").ok());
}

WorkloadWindowSeries SampleSeries() {
  WorkloadWindowSeries series;
  series.window_ns = 1000;
  series.column_count = 3;
  WorkloadWindowSnapshot w;
  w.index = 4;
  w.start_ns = 4000;
  w.queries = 5;
  w.failures = 1;
  w.index_steps = 2;
  w.scan_steps = 5;
  w.probe_steps = 3;
  w.rescan_steps = 1;
  w.simulated_ns = 1234;
  w.column_frequency = {2.0, 0.0, 3.5};
  w.selectivity_sum = {0.25, 0.0, 1.75};
  w.selectivity_samples = {2, 0, 4};
  w.templates[{0}] = 2;
  w.templates[{0, 2}] = 3;
  series.windows.push_back(w);
  WorkloadWindowSnapshot w2 = w;
  w2.index = 5;
  w2.start_ns = 5000;
  w2.queries = 7;
  w2.templates.clear();
  w2.templates[{1, 2}] = 7;
  series.windows.push_back(std::move(w2));
  return series;
}

TEST(WorkloadIoTest, WindowsRoundTrip) {
  const WorkloadWindowSeries original = SampleSeries();
  StatusOr<WorkloadWindowSeries> parsed =
      ParseWorkloadWindows(SerializeWorkloadWindows(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->window_ns, original.window_ns);
  EXPECT_EQ(parsed->column_count, original.column_count);
  ASSERT_EQ(parsed->windows.size(), original.windows.size());
  for (size_t i = 0; i < original.windows.size(); ++i) {
    const WorkloadWindowSnapshot& a = original.windows[i];
    const WorkloadWindowSnapshot& b = parsed->windows[i];
    EXPECT_EQ(b.index, a.index);
    EXPECT_EQ(b.start_ns, a.start_ns);
    EXPECT_EQ(b.simulated_ns, a.simulated_ns);
    EXPECT_EQ(b.queries, a.queries);
    EXPECT_EQ(b.failures, a.failures);
    EXPECT_EQ(b.index_steps, a.index_steps);
    EXPECT_EQ(b.scan_steps, a.scan_steps);
    EXPECT_EQ(b.probe_steps, a.probe_steps);
    EXPECT_EQ(b.rescan_steps, a.rescan_steps);
    EXPECT_EQ(b.column_frequency, a.column_frequency);
    EXPECT_EQ(b.selectivity_sum, a.selectivity_sum);
    EXPECT_EQ(b.selectivity_samples, a.selectivity_samples);
    EXPECT_EQ(b.templates, a.templates);
  }
}

TEST(WorkloadIoTest, WindowsFileRoundTrip) {
  const WorkloadWindowSeries original = SampleSeries();
  const std::string path = "/tmp/hytap_workload_windows_io_test.txt";
  ASSERT_TRUE(WriteWorkloadWindowsFile(path, original).ok());
  StatusOr<WorkloadWindowSeries> parsed = ReadWorkloadWindowsFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->windows.size(), original.windows.size());
  std::remove(path.c_str());
  EXPECT_FALSE(ReadWorkloadWindowsFile("/tmp/does_not_exist_hytap.txt").ok());
}

TEST(WorkloadIoTest, WindowsRejectsMalformedInputs) {
  EXPECT_FALSE(ParseWorkloadWindows("").ok());
  EXPECT_FALSE(ParseWorkloadWindows("hytap-workload v1\n").ok());
  const std::string header = "hytap-workload-windows v1\n";
  // Malformed or zero geometry.
  EXPECT_FALSE(ParseWorkloadWindows(header + "columns x\n").ok());
  EXPECT_FALSE(
      ParseWorkloadWindows(header + "columns 2 window_ns 0\nwindows 0\n")
          .ok());
  // Truncated windows section.
  EXPECT_FALSE(
      ParseWorkloadWindows(header + "columns 2 window_ns 10\nwindows 1\n")
          .ok());
  const std::string window_line = "window 0 0 5 1 0 0 1 0 0\n";
  // Per-column vector with the wrong arity.
  EXPECT_FALSE(ParseWorkloadWindows(header +
                                    "columns 2 window_ns 10\nwindows 1\n" +
                                    window_line + "freq 1.0\n")
                   .ok());
  // Negative selectivity sample count.
  EXPECT_FALSE(ParseWorkloadWindows(
                   header + "columns 2 window_ns 10\nwindows 1\n" +
                   window_line +
                   "freq 1 0\nselsum 0.5 0\nselcnt -1 0\ntemplates 0\n")
                   .ok());
  // Template referencing an unknown column / without columns.
  EXPECT_FALSE(ParseWorkloadWindows(
                   header + "columns 2 window_ns 10\nwindows 1\n" +
                   window_line +
                   "freq 1 0\nselsum 0.5 0\nselcnt 1 0\ntemplates 1\n2 7\n")
                   .ok());
  EXPECT_FALSE(ParseWorkloadWindows(
                   header + "columns 2 window_ns 10\nwindows 1\n" +
                   window_line +
                   "freq 1 0\nselsum 0.5 0\nselcnt 1 0\ntemplates 1\n2\n")
                   .ok());
  // The minimal well-formed document parses.
  EXPECT_TRUE(ParseWorkloadWindows(
                  header + "columns 2 window_ns 10\nwindows 1\n" +
                  window_line +
                  "freq 1 0\nselsum 0.5 0\nselcnt 1 0\ntemplates 1\n2 0 1\n")
                  .ok());
}

TEST(WorkloadIoTest, FrontierCsv) {
  Workload w = GenerateExample1({});
  SelectionProblem problem;
  problem.workload = &w;
  problem.params = {1.0, 100.0};
  ExplicitFrontier frontier = ComputeExplicitFrontier(problem);
  const std::string csv = FrontierToCsv(frontier, w);
  EXPECT_NE(csv.find("step,column,name"), std::string::npos);
  // One line per frontier point plus the header.
  const size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, frontier.points.size() + 1);
}

TEST(WorkloadIoTest, AllocationCsv) {
  Workload w = GenerateExample1({});
  auto problem =
      SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100}, 0.4);
  SelectionResult result = SelectExplicit(problem);
  const std::string csv = AllocationToCsv(result, w);
  EXPECT_NE(csv.find("column,name,size_bytes,location"), std::string::npos);
  EXPECT_NE(csv.find("dram"), std::string::npos);
  EXPECT_NE(csv.find("secondary"), std::string::npos);
}

}  // namespace
}  // namespace hytap

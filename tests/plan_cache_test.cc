#include "query/plan_cache.h"

#include <gtest/gtest.h>

namespace hytap {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.push_back({"a", DataType::kInt32, 0});
  schema.push_back({"b", DataType::kInt32, 0});
  schema.push_back({"c", DataType::kInt32, 0});
  return schema;
}

Query MakeQuery(std::vector<ColumnId> cols) {
  Query q;
  for (ColumnId c : cols) {
    q.predicates.push_back(Predicate::Equals(c, Value(int32_t{1})));
  }
  return q;
}

class PlanCacheTest : public ::testing::Test {
 protected:
  PlanCacheTest() : table_("t", TestSchema(), &txns_) {
    std::vector<Row> rows;
    for (int r = 0; r < 100; ++r) {
      rows.push_back(Row{Value(int32_t(r)), Value(int32_t(r % 5)),
                         Value(int32_t(r % 10))});
    }
    table_.BulkLoad(rows);
  }
  TransactionManager txns_;
  Table table_;
};

TEST_F(PlanCacheTest, CountsTemplates) {
  PlanCache cache;
  cache.Record(MakeQuery({0, 1}));
  cache.Record(MakeQuery({1, 0}));  // same template, different order
  cache.Record(MakeQuery({2}));
  EXPECT_EQ(cache.template_count(), 2u);
  EXPECT_EQ(cache.total_executions(), 3u);
}

TEST_F(PlanCacheTest, DuplicatePredicateColumnsDeduplicated) {
  PlanCache cache;
  Query q = MakeQuery({1, 1, 2});
  cache.Record(q);
  cache.Record(MakeQuery({1, 2}));
  EXPECT_EQ(cache.template_count(), 1u);
}

TEST_F(PlanCacheTest, ColumnFrequencies) {
  PlanCache cache;
  cache.Record(MakeQuery({0, 1}));
  cache.Record(MakeQuery({0, 1}));
  cache.Record(MakeQuery({1}));
  auto g = cache.ColumnFrequencies(table_);
  EXPECT_DOUBLE_EQ(g[0], 2.0);
  EXPECT_DOUBLE_EQ(g[1], 3.0);
  EXPECT_DOUBLE_EQ(g[2], 0.0);
}

TEST_F(PlanCacheTest, ToWorkloadUsesTableStatistics) {
  PlanCache cache;
  cache.Record(MakeQuery({0, 2}));
  cache.Record(MakeQuery({0, 2}));
  cache.Record(MakeQuery({1}));
  Workload workload = cache.ToWorkload(table_);
  ASSERT_EQ(workload.column_count(), 3u);
  EXPECT_EQ(workload.query_count(), 2u);
  // a_i from the table's MRC sizes.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(workload.column_sizes[i],
                     double(table_.ColumnDramBytes(i)));
  }
  // s_i = 1/distinct.
  EXPECT_NEAR(workload.selectivities[0], 1.0 / 100.0, 1e-12);
  EXPECT_NEAR(workload.selectivities[1], 1.0 / 5.0, 1e-12);
  // Frequencies carried through.
  double freq_02 = 0, freq_1 = 0;
  for (const auto& q : workload.queries) {
    if (q.columns.size() == 2) freq_02 = q.frequency;
    if (q.columns.size() == 1) freq_1 = q.frequency;
  }
  EXPECT_DOUBLE_EQ(freq_02, 2.0);
  EXPECT_DOUBLE_EQ(freq_1, 1.0);
}

QueryObservation ObservedScan(ColumnId column, uint64_t candidates_in,
                              uint64_t candidates_out) {
  QueryObservation obs;
  obs.filtered_columns = {column};
  StepObservation step;
  step.column = column;
  step.kind = StepKind::kScan;
  step.candidates_in = candidates_in;
  step.candidates_out = candidates_out;
  step.observed_selectivity =
      candidates_in == 0 ? 0.0 : double(candidates_out) / double(candidates_in);
  obs.steps.push_back(step);
  return obs;
}

TEST_F(PlanCacheTest, ObservedSelectivitiesOverrideTableStatistics) {
  PlanCache cache;
  const Query q = MakeQuery({1});
  cache.RecordObserved(q, ObservedScan(1, 100, 7));
  cache.RecordObserved(q, ObservedScan(1, 100, 9));
  EXPECT_EQ(cache.total_executions(), 2u);
  EXPECT_EQ(cache.template_count(), 1u);

  Workload workload = cache.ToWorkload(table_);
  // Column 1: sample mean of {0.07, 0.09}, not the 1/distinct = 0.2
  // statistic estimate.
  EXPECT_NEAR(workload.selectivities[1], 0.08, 1e-12);
  // Columns without observations keep the statistics fallback.
  EXPECT_NEAR(workload.selectivities[0], 1.0 / 100.0, 1e-12);
  EXPECT_NEAR(workload.selectivities[2], 1.0 / 10.0, 1e-12);
}

TEST_F(PlanCacheTest, ObservedStepsMapToTemplateSlots) {
  PlanCache cache;
  // Template {0, 2}, but only column 2 produced an observable step (e.g.
  // the other predicate ran through a composite index).
  Query q = MakeQuery({2, 0});
  QueryObservation obs = ObservedScan(2, 200, 10);
  obs.filtered_columns = {0, 2};
  // A zero-candidate step must not contribute a sample.
  StepObservation empty;
  empty.column = 0;
  empty.kind = StepKind::kProbe;
  empty.candidates_in = 0;
  obs.steps.push_back(empty);
  cache.RecordObserved(q, obs);

  Workload workload = cache.ToWorkload(table_);
  EXPECT_NEAR(workload.selectivities[2], 0.05, 1e-12);
  EXPECT_NEAR(workload.selectivities[0], 1.0 / 100.0, 1e-12);  // fallback
  // Mixed Record/RecordObserved executions accumulate in one template.
  cache.Record(MakeQuery({0, 2}));
  EXPECT_EQ(cache.template_count(), 1u);
  EXPECT_EQ(cache.total_executions(), 2u);
  auto it = cache.templates().find(std::vector<ColumnId>{0, 2});
  ASSERT_NE(it, cache.templates().end());
  EXPECT_EQ(it->second.count, 2u);
  ASSERT_EQ(it->second.selectivity_samples.size(), 2u);
  EXPECT_EQ(it->second.selectivity_samples[0], 0u);
  EXPECT_EQ(it->second.selectivity_samples[1], 1u);
}

TEST_F(PlanCacheTest, ClearResets) {
  PlanCache cache;
  cache.Record(MakeQuery({0}));
  cache.Clear();
  EXPECT_EQ(cache.template_count(), 0u);
  EXPECT_EQ(cache.total_executions(), 0u);
}

}  // namespace
}  // namespace hytap

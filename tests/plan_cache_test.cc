#include "query/plan_cache.h"

#include <gtest/gtest.h>

namespace hytap {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.push_back({"a", DataType::kInt32, 0});
  schema.push_back({"b", DataType::kInt32, 0});
  schema.push_back({"c", DataType::kInt32, 0});
  return schema;
}

Query MakeQuery(std::vector<ColumnId> cols) {
  Query q;
  for (ColumnId c : cols) {
    q.predicates.push_back(Predicate::Equals(c, Value(int32_t{1})));
  }
  return q;
}

class PlanCacheTest : public ::testing::Test {
 protected:
  PlanCacheTest() : table_("t", TestSchema(), &txns_) {
    std::vector<Row> rows;
    for (int r = 0; r < 100; ++r) {
      rows.push_back(Row{Value(int32_t(r)), Value(int32_t(r % 5)),
                         Value(int32_t(r % 10))});
    }
    table_.BulkLoad(rows);
  }
  TransactionManager txns_;
  Table table_;
};

TEST_F(PlanCacheTest, CountsTemplates) {
  PlanCache cache;
  cache.Record(MakeQuery({0, 1}));
  cache.Record(MakeQuery({1, 0}));  // same template, different order
  cache.Record(MakeQuery({2}));
  EXPECT_EQ(cache.template_count(), 2u);
  EXPECT_EQ(cache.total_executions(), 3u);
}

TEST_F(PlanCacheTest, DuplicatePredicateColumnsDeduplicated) {
  PlanCache cache;
  Query q = MakeQuery({1, 1, 2});
  cache.Record(q);
  cache.Record(MakeQuery({1, 2}));
  EXPECT_EQ(cache.template_count(), 1u);
}

TEST_F(PlanCacheTest, ColumnFrequencies) {
  PlanCache cache;
  cache.Record(MakeQuery({0, 1}));
  cache.Record(MakeQuery({0, 1}));
  cache.Record(MakeQuery({1}));
  auto g = cache.ColumnFrequencies(table_);
  EXPECT_DOUBLE_EQ(g[0], 2.0);
  EXPECT_DOUBLE_EQ(g[1], 3.0);
  EXPECT_DOUBLE_EQ(g[2], 0.0);
}

TEST_F(PlanCacheTest, ToWorkloadUsesTableStatistics) {
  PlanCache cache;
  cache.Record(MakeQuery({0, 2}));
  cache.Record(MakeQuery({0, 2}));
  cache.Record(MakeQuery({1}));
  Workload workload = cache.ToWorkload(table_);
  ASSERT_EQ(workload.column_count(), 3u);
  EXPECT_EQ(workload.query_count(), 2u);
  // a_i from the table's MRC sizes.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(workload.column_sizes[i],
                     double(table_.ColumnDramBytes(i)));
  }
  // s_i = 1/distinct.
  EXPECT_NEAR(workload.selectivities[0], 1.0 / 100.0, 1e-12);
  EXPECT_NEAR(workload.selectivities[1], 1.0 / 5.0, 1e-12);
  // Frequencies carried through.
  double freq_02 = 0, freq_1 = 0;
  for (const auto& q : workload.queries) {
    if (q.columns.size() == 2) freq_02 = q.frequency;
    if (q.columns.size() == 1) freq_1 = q.frequency;
  }
  EXPECT_DOUBLE_EQ(freq_02, 2.0);
  EXPECT_DOUBLE_EQ(freq_1, 1.0);
}

TEST_F(PlanCacheTest, ClearResets) {
  PlanCache cache;
  cache.Record(MakeQuery({0}));
  cache.Clear();
  EXPECT_EQ(cache.template_count(), 0u);
  EXPECT_EQ(cache.total_executions(), 0u);
}

}  // namespace
}  // namespace hytap

#include "serving/slo_monitor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/random.h"
#include "core/tiered_table.h"
#include "serving/session_manager.h"
#include "workload/enterprise.h"

namespace hytap {
namespace {

/// Tight objectives and a 10% error budget: one all-bad window burns 10x.
SloMonitor::Options TightOptions() {
  SloMonitor::Options options;
  options.oltp_ns = 1000;
  options.olap_ns = 1000;
  options.target_ppm = 900'000;  // 10% of observations may violate
  options.burn_threshold = 1.0;
  options.fast_windows = 1;
  options.slow_windows = 2;
  return options;
}

TEST(SloMonitorTest, BurnRateBreachesAndClears) {
  setenv("HYTAP_FLIGHT_DUMP", "0", 1);
  SloMonitor slo(TightOptions());

  // Window 1: every observation violates — fast and slow burn are both 10x
  // the budget, so the class breaches exactly once.
  for (uint64_t i = 0; i < 10; ++i) {
    slo.Observe(QueryClass::kOltp, /*sim_latency_ns=*/5000, /*failed=*/false,
                /*window=*/1, /*sim_ns=*/1000 + i, /*ticket=*/i);
  }
  SloMonitor::ClassSnapshot snap = slo.Snapshot(QueryClass::kOltp);
  EXPECT_EQ(snap.observations, 10u);
  EXPECT_EQ(snap.violations, 10u);
  EXPECT_GT(snap.fast_burn, 1.0);
  EXPECT_TRUE(snap.breached);
  EXPECT_EQ(snap.breaches, 1u);
  EXPECT_EQ(snap.clears, 0u);
  // The other class is untouched.
  EXPECT_EQ(slo.Snapshot(QueryClass::kOlap).observations, 0u);
  EXPECT_FALSE(slo.Snapshot(QueryClass::kOlap).breached);

  // Window 2: a flood of good observations drains the fast window — breach
  // requires BOTH windows hot, so the class clears.
  for (uint64_t i = 0; i < 100; ++i) {
    slo.Observe(QueryClass::kOltp, 10, false, 2, 2000 + i, 100 + i);
  }
  snap = slo.Snapshot(QueryClass::kOltp);
  EXPECT_FALSE(snap.breached);
  EXPECT_EQ(snap.breaches, 1u);
  EXPECT_EQ(snap.clears, 1u);
  EXPECT_EQ(snap.fast_burn, 0.0);
}

TEST(SloMonitorTest, FailuresAndSlowQueriesBothBurnBudget) {
  SloMonitor::Options options = TightOptions();
  options.burn_threshold = 1e9;  // never breach: this test is about counting
  SloMonitor slo(options);

  // A failed query burns budget even when it was fast.
  slo.Observe(QueryClass::kOlap, 10, /*failed=*/true, 1, 1, 0);
  // A slow success burns budget too.
  slo.Observe(QueryClass::kOlap, 5000, /*failed=*/false, 1, 2, 1);
  // A fast success does not.
  slo.Observe(QueryClass::kOlap, 10, /*failed=*/false, 1, 3, 2);

  const SloMonitor::ClassSnapshot snap = slo.Snapshot(QueryClass::kOlap);
  EXPECT_EQ(snap.observations, 3u);
  EXPECT_EQ(snap.violations, 2u);
  EXPECT_FALSE(snap.breached);
}

TEST(SloMonitorTest, BreachWritesAnomalyDump) {
  const std::string dir = ::testing::TempDir() + "slo_dumps";
  std::filesystem::create_directories(dir);
  setenv("HYTAP_FLIGHT_DUMP", "1", 1);
  setenv("HYTAP_FLIGHT_DUMP_DIR", dir.c_str(), 1);
  FlightRecorder::Global().Reset();
  SetFlightRecorderEnabled(true);

  SloMonitor slo(TightOptions());
  for (uint64_t i = 0; i < 10; ++i) {
    slo.Observe(QueryClass::kOltp, 5000, false, 1, 1000 + i, i);
  }
  EXPECT_TRUE(slo.breached(QueryClass::kOltp));
  unsetenv("HYTAP_FLIGHT_DUMP_DIR");
  setenv("HYTAP_FLIGHT_DUMP", "0", 1);

  // The breach transition fired the anomaly hook: a decodable postmortem
  // dump landed in the directory, reason-slugged and rate-limited from 0.
  const std::string path = dir + "/flight_000_slo_breach_oltp.bin";
  std::vector<FlightEvent> events;
  std::string reason;
  ASSERT_TRUE(ReadFlightDump(path, &events, &reason))
      << "no anomaly dump at " << path;
  EXPECT_EQ(reason, "slo_breach_oltp");
  bool saw_breach = false;
  bool saw_anomaly = false;
  for (const FlightEvent& event : events) {
    if (event.type == static_cast<uint16_t>(FlightEventType::kSloBreach) &&
        event.a == uint64_t(QueryClass::kOltp)) {
      saw_breach = true;
    }
    if (event.type == static_cast<uint16_t>(FlightEventType::kAnomaly) &&
        event.code == static_cast<uint16_t>(AnomalyKind::kSloBreach)) {
      saw_anomaly = true;
    }
  }
  EXPECT_TRUE(saw_breach);
  EXPECT_TRUE(saw_anomaly);
  std::filesystem::remove_all(dir);
}

TEST(SloMonitorTest, ExportGaugesPopulatesRegistry) {
  SetMetricsEnabled(true);
  SloMonitor slo(TightOptions());
  for (uint64_t i = 0; i < 10; ++i) {
    slo.Observe(QueryClass::kOltp, 5000, false, 1, 1000 + i, i);
  }
  slo.ExportGauges();
  const std::string text =
      MetricsRegistry::Global().Snapshot().ToPrometheusText();
  for (const char* family :
       {"hytap_slo_observations_total", "hytap_slo_violations_total",
        "hytap_slo_breaches_total", "hytap_slo_clears_total",
        "hytap_slo_oltp_burn_milli", "hytap_slo_olap_burn_milli",
        "hytap_slo_oltp_breached", "hytap_slo_olap_breached"}) {
    EXPECT_NE(text.find(family), std::string::npos)
        << "family " << family << " missing from the registry";
  }
}

// ---------------------------------------------------------------------------
// Serving integration: fed from the ticket-order reorder-buffer flush, the
// monitor's state is bit-identical across worker counts.
// ---------------------------------------------------------------------------

constexpr size_t kRows = 1000;
constexpr size_t kCols = 8;
constexpr size_t kQueries = 32;
constexpr uint64_t kSeed = 42;

std::unique_ptr<TieredTable> MakeSmallBseg() {
  EnterpriseProfile profile = BsegProfile();
  profile.attribute_count = kCols;
  TieredTableOptions options;
  options.device = DeviceKind::kCssd;
  options.timing_seed = kSeed;
  options.monitor.window_ns = 1'000'000'000'000'000ull;
  auto table = std::make_unique<TieredTable>(
      "bseg", MakeEnterpriseSchema(profile), options);
  table->Load(GenerateEnterpriseRows(profile, kRows, kSeed));
  return table;
}

struct SloSignature {
  uint64_t observations[kQueryClassCount] = {};
  uint64_t violations[kQueryClassCount] = {};
  uint64_t breaches[kQueryClassCount] = {};
  double fast_burn[kQueryClassCount] = {};
  double slow_burn[kQueryClassCount] = {};
  bool breached[kQueryClassCount] = {};

  bool operator==(const SloSignature& other) const {
    for (size_t c = 0; c < kQueryClassCount; ++c) {
      if (observations[c] != other.observations[c] ||
          violations[c] != other.violations[c] ||
          breaches[c] != other.breaches[c] ||
          fast_burn[c] != other.fast_burn[c] ||
          slow_burn[c] != other.slow_burn[c] ||
          breached[c] != other.breached[c]) {
        return false;
      }
    }
    return true;
  }
};

SloSignature RunServing(uint32_t workers) {
  setenv("HYTAP_FLIGHT_DUMP", "0", 1);
  auto table = MakeSmallBseg();
  SessionOptions so;
  so.max_sessions = workers;
  so.default_threads = 1;
  SessionManager& sm = table->EnableServing(so);

  // An impossible OLTP objective: every OLTP session violates, OLAP never
  // does — the per-class split must survive any dispatch interleaving.
  SloMonitor::Options options;
  options.oltp_ns = 1;
  options.olap_ns = uint64_t(1) << 62;
  options.target_ppm = 999'000;
  SloMonitor slo(options);
  sm.set_slo_monitor(&slo);

  Rng rng(kSeed * 7919 + 1);
  std::vector<SessionHandle> handles;
  for (size_t q = 0; q < kQueries; ++q) {
    Query query;
    const size_t col = 1 + size_t(rng.NextBounded(kCols - 1));
    query.predicates.push_back(
        Predicate::Equals(ColumnId(col), Value(int32_t(rng.NextBounded(8)))));
    query.aggregates = {Aggregate::Count()};
    SubmitOptions opts;
    opts.query_class = q % 2 == 0 ? QueryClass::kOltp : QueryClass::kOlap;
    opts.threads = 1;
    auto session = sm.Submit(query, opts);
    if (session.ok()) handles.push_back(*session);
  }
  for (const SessionHandle& session : handles) (void)session->Await();
  sm.Drain();
  sm.set_slo_monitor(nullptr);

  SloSignature signature;
  for (size_t c = 0; c < kQueryClassCount; ++c) {
    const SloMonitor::ClassSnapshot snap = slo.Snapshot(QueryClass(c));
    signature.observations[c] = snap.observations;
    signature.violations[c] = snap.violations;
    signature.breaches[c] = snap.breaches;
    signature.fast_burn[c] = snap.fast_burn;
    signature.slow_burn[c] = snap.slow_burn;
    signature.breached[c] = snap.breached;
  }
  return signature;
}

TEST(SloMonitorTest, ServingFeedIsDeterministicAcrossWorkers) {
  const SloSignature one = RunServing(1);
  const SloSignature two = RunServing(2);
  const SloSignature four = RunServing(4);
  EXPECT_TRUE(one == two);
  EXPECT_TRUE(one == four);
  EXPECT_EQ(one.observations[size_t(QueryClass::kOltp)], kQueries / 2);
  EXPECT_EQ(one.violations[size_t(QueryClass::kOltp)], kQueries / 2);
  EXPECT_TRUE(one.breached[size_t(QueryClass::kOltp)]);
  EXPECT_EQ(one.violations[size_t(QueryClass::kOlap)], 0u);
  EXPECT_FALSE(one.breached[size_t(QueryClass::kOlap)]);
}

}  // namespace
}  // namespace hytap

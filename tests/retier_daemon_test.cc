#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/retier_daemon.h"
#include "selection/reallocation.h"
#include "workload/enterprise.h"

namespace hytap {
namespace {

constexpr size_t kRows = 3000;
constexpr size_t kCols = 16;
constexpr size_t kQueriesPerPhase = 32;
constexpr uint64_t kSeed = 42;

// The hot set is a third of the payload; phase B flips it to the opposite
// end of the schema (the Table-1 skew-flip scenario).
constexpr size_t kHotCount = 5;
constexpr size_t kHotA = 1;
constexpr size_t kHotB = kCols - kHotCount;

std::unique_ptr<TieredTable> MakeBseg() {
  EnterpriseProfile profile = BsegProfile();
  profile.attribute_count = kCols;
  TieredTableOptions options;
  options.device = DeviceKind::kCssd;
  options.timing_seed = kSeed;
  // Phases are separated via ForceRoll(): make windows effectively
  // unbounded on the simulated clock so each phase stays in one window.
  options.monitor.window_ns = 1'000'000'000'000'000ull;
  auto table = std::make_unique<TieredTable>(
      "bseg", MakeEnterpriseSchema(profile), options);
  table->Load(GenerateEnterpriseRows(profile, kRows, kSeed));
  return table;
}

/// Seeded conjunctive mix concentrated on `hot_count` payload columns
/// starting at `hot_base`. A fresh Rng per phase keeps every phase-A (and
/// every phase-B) query sequence identical, so alternating phases aggregate
/// to the same mixed workload — the oscillation test depends on that.
void RunPhase(TieredTable* table, size_t hot_base, size_t hot_count,
              uint32_t threads) {
  Rng rng(kSeed * 7919 + hot_base);
  Transaction txn = table->Begin();
  for (size_t q = 0; q < kQueriesPerPhase; ++q) {
    Query query;
    const size_t hot = hot_base + size_t(rng.NextBounded(hot_count));
    query.predicates.push_back(
        Predicate::Equals(ColumnId(hot), Value(int32_t(rng.NextBounded(8)))));
    if (q % 3 == 0) {
      const size_t other = hot_base + size_t(rng.NextBounded(hot_count));
      if (other != hot) {
        query.predicates.push_back(Predicate::Between(
            ColumnId(other), Value(int32_t{0}), Value(int32_t{40})));
      }
    }
    query.aggregates = {Aggregate::Count()};
    (void)table->Execute(txn, query, threads);
  }
  table->Commit(&txn);
}

double TotalBytes(const TieredTable& table) {
  double total = 0.0;
  for (ColumnId c = 0; c < table.table().column_count(); ++c) {
    total += double(table.table().ColumnDramBytes(c));
  }
  return total;
}

uint64_t MaxColumnBytes(const TieredTable& table) {
  uint64_t max_bytes = 0;
  for (ColumnId c = 0; c < table.table().column_count(); ++c) {
    max_bytes = std::max<uint64_t>(max_bytes, table.table().ColumnDramBytes(c));
  }
  return max_bytes;
}

RetierOptions TestOptions(const TieredTable& table) {
  RetierOptions options;
  options.drift_threshold = 0.25;
  options.min_improvement_pct = 1.0;
  options.dwell_windows = 0;
  options.periodic_windows = 1;
  options.bytes_per_window = 0;  // unthrottled unless a test overrides
  options.budget_bytes = 0.4 * TotalBytes(table);
  options.recent_windows = 1;
  options.amortization_windows = 16;
  return options;
}

/// Drains the active plan: rolls the monitor window and ticks until the
/// daemon is idle. Returns the tick reports, one per window.
std::vector<RetierTickReport> DrainPlan(TieredTable* table,
                                        RetierDaemon* daemon,
                                        size_t max_windows = 64) {
  std::vector<RetierTickReport> reports;
  for (size_t i = 0; i < max_windows; ++i) {
    if (daemon->state() == RetierState::kIdle) break;
    table->monitor().ForceRoll();
    reports.push_back(daemon->Tick());
  }
  return reports;
}

/// Full-table consistency probe: qualifying rows and COUNT of a wide scan
/// touching every payload column's tier.
QueryResult ProbeAll(TieredTable* table, uint32_t threads = 1) {
  Query query;
  query.predicates.push_back(Predicate::Between(
      ColumnId(0), Value(int32_t{0}), Value(int32_t(kRows))));
  query.aggregates = {Aggregate::Count()};
  Transaction txn = table->Begin();
  QueryResult result = table->ExecuteUnrecorded(txn, query, threads);
  table->Commit(&txn);
  return result;
}

TEST(RetierDaemonTest, ConvergesAfterSkewFlip) {
  auto table = MakeBseg();
  RetierDaemon daemon(table.get(), TestOptions(*table));

  // Phase A: first evaluation (periodic trigger) optimizes the placement.
  RunPhase(table.get(), kHotA, kHotCount, /*threads=*/1);
  RetierTickReport tick = daemon.Tick();
  EXPECT_TRUE(tick.evaluated);
  EXPECT_TRUE(tick.plan_started);
  EXPECT_TRUE(tick.plan_completed);  // unthrottled: drains in one tick
  // One non-empty window: no drift yet, the periodic trigger fired.
  EXPECT_EQ(tick.reason, "periodic");
  for (size_t c = kHotA; c < kHotA + kHotCount; ++c) {
    EXPECT_EQ(table->table().location(ColumnId(c)), ColumnLocation::kDram)
        << "hot column " << c << " not in DRAM after phase A";
  }

  // Skew flip: drift triggers a re-plan that loads the new hot set.
  table->monitor().ForceRoll();
  RunPhase(table.get(), kHotB, kHotCount, /*threads=*/1);
  tick = daemon.Tick();
  EXPECT_TRUE(tick.evaluated);
  EXPECT_EQ(tick.reason, "drift");
  EXPECT_TRUE(tick.plan_completed);
  for (size_t c = kHotB; c < kHotB + kHotCount; ++c) {
    EXPECT_EQ(table->table().location(ColumnId(c)), ColumnLocation::kDram)
        << "hot column " << c << " not in DRAM after the flip";
  }
  ASSERT_EQ(daemon.history().size(), 2u);
  EXPECT_TRUE(daemon.history()[1].done);
  EXPECT_GT(daemon.history()[1].applied_steps, 0u);
  EXPECT_GT(daemon.history()[1].improvement_pct, 1.0);

  // Converged: re-evaluating the same workload holds (no thrash).
  tick = daemon.Tick();
  EXPECT_FALSE(tick.plan_started);
}

TEST(RetierDaemonTest, FirstEvaluationIsPeriodicWithoutDrift) {
  auto table = MakeBseg();
  RetierDaemon daemon(table.get(), TestOptions(*table));
  RunPhase(table.get(), kHotA, kHotCount, 1);
  const RetierTickReport tick = daemon.Tick();
  EXPECT_TRUE(tick.evaluated);
  // One non-empty window: drift is 0, the periodic trigger fires.
  EXPECT_EQ(tick.drift, 0.0);
  EXPECT_TRUE(tick.plan_started);
}

TEST(RetierDaemonTest, ThrottleBoundsPerWindowBytes) {
  auto table = MakeBseg();
  RetierOptions options = TestOptions(*table);
  // Roughly one column move per window: the plan must spread over windows.
  options.bytes_per_window = MaxColumnBytes(*table) + 1024;
  RetierDaemon daemon(table.get(), options);

  RunPhase(table.get(), kHotA, kHotCount, 1);
  RetierTickReport tick = daemon.Tick();
  ASSERT_TRUE(tick.plan_started);
  EXPECT_LE(tick.window_bytes, options.bytes_per_window);
  DrainPlan(table.get(), &daemon);
  ASSERT_EQ(daemon.state(), RetierState::kIdle);
  ASSERT_EQ(daemon.history().size(), 1u);
  const RetierPlan& plan = daemon.history()[0];
  EXPECT_TRUE(plan.done);
  EXPECT_GT(plan.applied_steps, 1u);
  EXPECT_EQ(plan.skipped_steps, 0u);

  // Per-window migration bytes never exceed the throttle budget, and the
  // plan genuinely spread across more than one window.
  std::map<uint64_t, uint64_t> bytes_by_window;
  for (const RetierStep& step : plan.steps) {
    if (step.outcome == RetierStepOutcome::kApplied) {
      bytes_by_window[step.window] += step.bytes;
    }
  }
  EXPECT_GT(bytes_by_window.size(), 1u);
  for (const auto& [window, bytes] : bytes_by_window) {
    EXPECT_LE(bytes, options.bytes_per_window) << "window " << window;
  }
}

TEST(RetierDaemonTest, OversizedStepsAreSkippedNotAttempted) {
  auto table = MakeBseg();
  RetierOptions options = TestOptions(*table);
  options.bytes_per_window = 1;  // nothing fits: every wanted move oversized
  RetierDaemon daemon(table.get(), options);
  RunPhase(table.get(), kHotA, kHotCount, 1);
  const RetierTickReport tick = daemon.Tick();
  EXPECT_TRUE(tick.evaluated);
  EXPECT_FALSE(tick.plan_started);
  EXPECT_TRUE(tick.held);
  EXPECT_EQ(tick.reason, "oversized");
  // Placement untouched: all columns still DRAM-resident.
  for (ColumnId c = 0; c < table->table().column_count(); ++c) {
    EXPECT_EQ(table->table().location(c), ColumnLocation::kDram);
  }
}

TEST(RetierDaemonTest, AbortStopsMidPlan) {
  auto table = MakeBseg();
  const QueryResult reference = ProbeAll(table.get());
  RetierOptions options = TestOptions(*table);
  options.bytes_per_window = MaxColumnBytes(*table) + 1024;
  RetierDaemon daemon(table.get(), options);

  RunPhase(table.get(), kHotA, kHotCount, 1);
  RetierTickReport tick = daemon.Tick();
  ASSERT_TRUE(tick.plan_started);
  ASSERT_EQ(daemon.state(), RetierState::kMigrating);
  ASSERT_GT(daemon.steps_remaining(), 0u);

  daemon.RequestAbort();
  table->monitor().ForceRoll();
  tick = daemon.Tick();
  EXPECT_TRUE(tick.plan_aborted);
  EXPECT_EQ(tick.reason, "aborted");
  EXPECT_EQ(tick.steps_applied, 0u);
  EXPECT_EQ(daemon.state(), RetierState::kIdle);
  ASSERT_EQ(daemon.history().size(), 1u);
  const RetierPlan& plan = daemon.history()[0];
  EXPECT_TRUE(plan.aborted);
  EXPECT_GT(plan.aborted_steps, 0u);
  EXPECT_GT(plan.applied_steps, 0u);  // it really was mid-plan

  // The intermediate placement is consistent and fully queryable.
  const QueryResult probe = ProbeAll(table.get());
  ASSERT_TRUE(probe.status.ok());
  EXPECT_EQ(probe.positions, reference.positions);
  EXPECT_EQ(probe.aggregate_values, reference.aggregate_values);

  // An abort while idle is a no-op.
  daemon.RequestAbort();
  table->monitor().ForceRoll();
  tick = daemon.Tick();
  EXPECT_FALSE(tick.plan_aborted);
}

TEST(RetierDaemonTest, ChaosQuarantinesStepAndContinuesPlan) {
  auto table = MakeBseg();
  const QueryResult reference = ProbeAll(table.get());
  RetierDaemon daemon(table.get(), TestOptions(*table));
  RunPhase(table.get(), kHotA, kHotCount, 1);

  // Arm seeded silent write corruption mid-run: eviction writes corrupt on
  // the media and only verify-by-read-back catches them.
  FaultConfig faults;
  faults.seed = 1;
  faults.write_corruption_rate = 0.02;
  table->store().ConfigureFaults(faults);

  const RetierTickReport tick = daemon.Tick();
  ASSERT_TRUE(tick.plan_started);
  DrainPlan(table.get(), &daemon);
  ASSERT_EQ(daemon.state(), RetierState::kIdle);
  ASSERT_EQ(daemon.history().size(), 1u);
  const RetierPlan& plan = daemon.history()[0];
  EXPECT_TRUE(plan.done);
  ASSERT_GT(plan.quarantined_steps, 0u) << "seed produced no quarantine";
  ASSERT_GT(plan.applied_steps, 0u) << "seed quarantined every step";
  // Corruption is caught by VerifyPage read-back (kDataLoss), not by the
  // buffered ReadPage checksum counter — assert on the write-side stat.
  EXPECT_GT(table->store().fault_stats().corrupted_writes, 0u);

  // The plan continued past the quarantined step: applied work follows it
  // in the (rebuilt) queue.
  size_t first_quarantined = plan.steps.size();
  size_t last_applied = 0;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    if (plan.steps[i].outcome == RetierStepOutcome::kQuarantined) {
      first_quarantined = std::min(first_quarantined, i);
    }
    if (plan.steps[i].outcome == RetierStepOutcome::kApplied) {
      last_applied = i;
    }
  }
  EXPECT_LT(first_quarantined, last_applied);

  // Quarantined columns deterministically aborted to DRAM and are frozen.
  for (const RetierStep& step : plan.steps) {
    if (step.outcome != RetierStepOutcome::kQuarantined) continue;
    EXPECT_TRUE(daemon.IsQuarantined(step.column));
    EXPECT_EQ(table->table().location(step.column), ColumnLocation::kDram);
  }

  // No torn state: with faults disarmed, the chaos table answers exactly
  // like the untouched reference.
  table->store().ConfigureFaults(FaultConfig());
  const QueryResult probe = ProbeAll(table.get());
  ASSERT_TRUE(probe.status.ok());
  EXPECT_EQ(probe.positions, reference.positions);
  EXPECT_EQ(probe.aggregate_values, reference.aggregate_values);

  // A quarantined column is pinned for later plans: a re-evaluation on the
  // flipped workload never steps it again.
  table->monitor().ForceRoll();
  RunPhase(table.get(), kHotB, kHotCount, 1);
  (void)daemon.Tick();
  DrainPlan(table.get(), &daemon);
  for (size_t p = 1; p < daemon.history().size(); ++p) {
    for (const RetierStep& step : daemon.history()[p].steps) {
      EXPECT_FALSE(daemon.IsQuarantined(step.column))
          << "plan " << p << " touched quarantined column " << step.column;
    }
  }
}

TEST(RetierDaemonTest, HysteresisDwellSuppressesReevaluation) {
  auto table = MakeBseg();
  RetierOptions options = TestOptions(*table);
  options.dwell_windows = 3;
  RetierDaemon daemon(table.get(), options);
  RunPhase(table.get(), kHotA, kHotCount, 1);
  RetierTickReport tick = daemon.Tick();
  ASSERT_TRUE(tick.plan_completed);
  const uint64_t plan_window = tick.window;

  // The two windows after the completed plan are inside the dwell period.
  for (int i = 0; i < 2; ++i) {
    table->monitor().ForceRoll();
    RunPhase(table.get(), kHotB, kHotCount, 1);  // drifted, but dwelling
    tick = daemon.Tick();
    EXPECT_FALSE(tick.evaluated);
    EXPECT_EQ(tick.reason, "dwell") << "window " << tick.window;
  }
  // The dwell expires and the drift finally triggers.
  table->monitor().ForceRoll();
  RunPhase(table.get(), kHotB, kHotCount, 1);
  tick = daemon.Tick();
  EXPECT_GE(tick.window, plan_window + options.dwell_windows);
  EXPECT_TRUE(tick.evaluated);
}

TEST(RetierDaemonTest, ZeroThrashUnderOscillatingWorkload) {
  auto table = MakeBseg();
  RetierOptions options = TestOptions(*table);
  options.recent_windows = 2;  // span both sides of the flip
  RetierDaemon daemon(table.get(), options);

  // Warm-up: phase A, then the first A/B transition re-plans on the mix.
  RunPhase(table.get(), kHotA, kHotCount, 1);
  (void)daemon.Tick();
  table->monitor().ForceRoll();
  RunPhase(table.get(), kHotB, kHotCount, 1);
  (void)daemon.Tick();
  DrainPlan(table.get(), &daemon);
  const size_t plans_after_warmup = daemon.history().size();
  const std::vector<bool> placement = table->table().placement();

  // Steady oscillation: the aggregated 2-window workload is the same A+B
  // mix every time, so every evaluation converges or lands in the deadband
  // — zero placement flip-flops.
  uint64_t applied = 0;
  for (int phase = 0; phase < 6; ++phase) {
    table->monitor().ForceRoll();
    RunPhase(table.get(), phase % 2 == 0 ? kHotA : kHotB, kHotCount, 1);
    const RetierTickReport tick = daemon.Tick();
    applied += tick.steps_applied;
    EXPECT_FALSE(tick.plan_started) << "phase " << phase << " thrashed";
  }
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(daemon.history().size(), plans_after_warmup);
  EXPECT_EQ(table->table().placement(), placement);
}

/// Signature of one full daemon scenario: everything that must be
/// bit-identical across worker counts.
struct ScenarioSignature {
  std::vector<bool> placement;
  std::vector<std::vector<std::pair<uint32_t, uint8_t>>> plan_steps;
  uint64_t moved_bytes = 0;
  uint64_t corrupted_writes = 0;
  uint64_t checksum_failures = 0;
  uint64_t retries = 0;
  uint64_t failed_reads = 0;
  std::vector<size_t> probe_rows;

  bool operator==(const ScenarioSignature& other) const {
    return placement == other.placement && plan_steps == other.plan_steps &&
           moved_bytes == other.moved_bytes &&
           corrupted_writes == other.corrupted_writes &&
           checksum_failures == other.checksum_failures &&
           retries == other.retries && failed_reads == other.failed_reads &&
           probe_rows == other.probe_rows;
  }
};

ScenarioSignature RunScenario(uint32_t threads) {
  auto table = MakeBseg();
  RetierDaemon daemon(table.get(), TestOptions(*table));
  ScenarioSignature signature;

  RunPhase(table.get(), kHotA, kHotCount, threads);
  (void)daemon.Tick();

  FaultConfig faults;
  faults.seed = 1;
  faults.write_corruption_rate = 0.02;
  table->store().ConfigureFaults(faults);

  table->monitor().ForceRoll();
  RunPhase(table.get(), kHotB, kHotCount, threads);
  (void)daemon.Tick();
  DrainPlan(table.get(), &daemon);

  signature.placement = table->table().placement();
  for (const RetierPlan& plan : daemon.history()) {
    std::vector<std::pair<uint32_t, uint8_t>> steps;
    for (const RetierStep& step : plan.steps) {
      steps.emplace_back(step.column, uint8_t(step.outcome));
    }
    signature.plan_steps.push_back(std::move(steps));
    signature.moved_bytes += plan.moved_bytes;
  }
  const FaultStats& stats = table->store().fault_stats();
  signature.corrupted_writes = stats.corrupted_writes;
  signature.checksum_failures = stats.checksum_failures;
  signature.retries = stats.retries;
  signature.failed_reads = stats.failed_reads;
  signature.probe_rows.push_back(ProbeAll(table.get(), threads).positions.size());
  return signature;
}

TEST(RetierDaemonTest, DeterministicAcrossThreadCounts) {
  // The engine-wide invariant, daemon on and chaos armed: results, final
  // placements, step outcomes, and fault schedules are bit-identical at
  // 1/2/4 requested threads (daemon decisions key to monitor windows on
  // the simulated clock, never wall time).
  const ScenarioSignature one = RunScenario(1);
  const ScenarioSignature two = RunScenario(2);
  const ScenarioSignature four = RunScenario(4);
  EXPECT_TRUE(one == two);
  EXPECT_TRUE(one == four);
  EXPECT_GT(one.moved_bytes, 0u);
}

TEST(ReallocationTest, BetaFromMigrationWindowAmortizes) {
  EXPECT_DOUBLE_EQ(BetaFromMigrationWindow(8.0, 8), 1.0);
  EXPECT_DOUBLE_EQ(BetaFromMigrationWindow(8.0, 0), 8.0);  // clamped horizon
  EXPECT_DOUBLE_EQ(BetaFromMigrationWindow(0.0, 4), 0.0);
}

TEST(ReallocationTest, HighBetaFreezesLowBetaMoves) {
  const Workload workload = GenerateEnterpriseWorkload(BsegProfile(), kSeed);
  SelectionProblem problem;
  problem.workload = &workload;
  problem.budget_bytes = 0.4 * workload.TotalBytes();

  // Start from a feasible placement: the explicit solution at this budget.
  const SelectionResult base = SelectExplicit(problem, true);
  problem.current.assign(workload.column_count(), 0);  // all-secondary y

  ReallocationOptions options;
  options.use_portfolio = false;  // explicit path, no threads needed here

  problem.beta = 0.0;
  const ReallocationResult eager = SelectWithReallocation(problem, options);
  EXPECT_GT(eager.planned_moves, 0u);
  EXPECT_GT(eager.improvement, 0.0);
  // beta = 0: the reallocation objective degenerates to the plain one.
  EXPECT_EQ(eager.selection.in_dram, base.in_dram);

  problem.beta = 1e12;  // moving can never pay for itself
  const ReallocationResult frozen = SelectWithReallocation(problem, options);
  EXPECT_EQ(frozen.planned_moves, 0u);
  EXPECT_EQ(frozen.selection.in_dram, problem.current);
  EXPECT_DOUBLE_EQ(frozen.improvement, 0.0);

  // Portfolio and explicit paths price the identical objective.
  problem.beta = 0.5;
  options.use_portfolio = true;
  options.portfolio.budget_ms = 0.0;  // unlimited: deterministic exact
  const ReallocationResult exact = SelectWithReallocation(problem, options);
  options.use_portfolio = false;
  const ReallocationResult explicit_result =
      SelectWithReallocation(problem, options);
  EXPECT_LE(exact.selection.objective,
            explicit_result.selection.objective + 1e-9);
  EXPECT_EQ(exact.winner, "exact");
}

}  // namespace
}  // namespace hytap

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace hytap {
namespace {

/// The registry is process-global, so every test uses metric names unique to
/// this file and restores the master switch it flipped.

TEST(MetricsTest, CounterAddAndReset) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test_counter_basic");
  EXPECT_EQ(counter->Value(), 0u);
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->Value(), 42u);
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0u);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test_counter_stable");
  Counter* b = registry.GetCounter("test_counter_stable");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("test_gauge_stable");
  Gauge* g2 = registry.GetGauge("test_gauge_stable");
  EXPECT_EQ(g1, g2);
  HistogramMetric* h1 = registry.GetHistogram("test_histogram_stable", {1, 2, 3});
  HistogramMetric* h2 = registry.GetHistogram("test_histogram_stable", {1, 2, 3});
  EXPECT_EQ(h1, h2);
}

TEST(MetricsTest, GaugeSetAndReset) {
  Gauge* gauge = MetricsRegistry::Global().GetGauge("test_gauge_basic");
  gauge->Set(-7);
  EXPECT_EQ(gauge->Value(), -7);
  gauge->Set(123);
  EXPECT_EQ(gauge->Value(), 123);
  gauge->Reset();
  EXPECT_EQ(gauge->Value(), 0);
}

TEST(MetricsTest, HistogramBucketAssignmentIsDeterministic) {
  HistogramMetric* histogram = MetricsRegistry::Global().GetHistogram(
      "test_histogram_buckets", {10, 100, 1000});
  // Boundary semantics: bucket i counts samples <= bounds[i]; larger samples
  // land in the overflow bucket. Same samples -> same buckets, always.
  histogram->Observe(0);
  histogram->Observe(10);    // == bound 0
  histogram->Observe(11);    // first sample past bound 0
  histogram->Observe(100);   // == bound 1
  histogram->Observe(999);
  histogram->Observe(1000);  // == bound 2
  histogram->Observe(1001);  // overflow
  const std::vector<uint64_t> counts = histogram->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram->Count(), 7u);
  EXPECT_EQ(histogram->Sum(), 0u + 10 + 11 + 100 + 999 + 1000 + 1001);
}

TEST(MetricsTest, ConcurrentIncrementsAreExact) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test_counter_concurrent");
  HistogramMetric* histogram = MetricsRegistry::Global().GetHistogram(
      "test_histogram_concurrent", {100, 10000});
  constexpr size_t kItems = 100000;
  ThreadPool::Global().ParallelFor(
      0, kItems, /*grain=*/1024, /*threads=*/8,
      [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          counter->Add();
          histogram->Observe(i % 200);  // half <= 100, half in bucket 1
        }
      });
  EXPECT_EQ(counter->Value(), kItems);
  EXPECT_EQ(histogram->Count(), kItems);
  const std::vector<uint64_t> counts = histogram->BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  // i % 200 in [0, 100] -> bucket 0 (101 of every 200); rest -> bucket 1.
  EXPECT_EQ(counts[0], kItems / 200 * 101);
  EXPECT_EQ(counts[1], kItems / 200 * 99);
  EXPECT_EQ(counts[2], 0u);
}

TEST(MetricsTest, DisabledKnobMakesUpdatesNoOps) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test_counter_knob");
  Gauge* gauge = registry.GetGauge("test_gauge_knob");
  HistogramMetric* histogram = registry.GetHistogram("test_histogram_knob", {10});
  const bool was_enabled = MetricsEnabled();
  SetMetricsEnabled(false);
  counter->Add(5);
  gauge->Set(5);
  histogram->Observe(5);
  SetMetricsEnabled(was_enabled);
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(histogram->Count(), 0u);
  EXPECT_EQ(histogram->Sum(), 0u);
}

TEST(MetricsTest, SnapshotReflectsRegisteredMetrics) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_snapshot_counter")->Reset();
  registry.GetCounter("test_snapshot_counter")->Add(3);
  registry.GetGauge("test_snapshot_gauge")->Set(-1);
  HistogramMetric* histogram =
      registry.GetHistogram("test_snapshot_histogram", {5, 50});
  histogram->Reset();
  histogram->Observe(4);
  histogram->Observe(60);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_TRUE(snapshot.counters.count("test_snapshot_counter"));
  EXPECT_EQ(snapshot.counters.at("test_snapshot_counter"), 3u);
  ASSERT_TRUE(snapshot.gauges.count("test_snapshot_gauge"));
  EXPECT_EQ(snapshot.gauges.at("test_snapshot_gauge"), -1);
  ASSERT_TRUE(snapshot.histograms.count("test_snapshot_histogram"));
  const MetricsSnapshot::HistogramData& data =
      snapshot.histograms.at("test_snapshot_histogram");
  EXPECT_EQ(data.bounds, (std::vector<uint64_t>{5, 50}));
  EXPECT_EQ(data.counts, (std::vector<uint64_t>{1, 0, 1}));
  EXPECT_EQ(data.count, 2u);
  EXPECT_EQ(data.sum, 64u);
}

TEST(MetricsTest, PrometheusTextFormat) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_prom_counter")->Reset();
  registry.GetCounter("test_prom_counter")->Add(7);
  HistogramMetric* histogram = registry.GetHistogram("test_prom_histogram", {10});
  histogram->Reset();
  histogram->Observe(3);
  histogram->Observe(30);

  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE test_prom_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_histogram histogram\n"),
            std::string::npos);
  // Cumulative `le` buckets: the bucket at le="10" holds 1; +Inf holds all.
  EXPECT_NE(text.find("test_prom_histogram_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_histogram_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_histogram_sum 33\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_histogram_count 2\n"), std::string::npos);
}

TEST(MetricsTest, HistogramQuantileInterpolatesWithinBuckets) {
  MetricsSnapshot::HistogramData h;
  h.bounds = {100, 200, 400};
  h.counts = {0, 0, 0, 0};
  EXPECT_EQ(h.Quantile(0.5), 0u);  // empty histogram reports 0

  // 10 samples in (100, 200]: rank r maps to 100 + (200-100) * r / 10.
  h.counts = {0, 10, 0, 0};
  h.count = 10;
  EXPECT_EQ(h.Quantile(0.0), 110u);   // rank 1 (ceil'd, never rank 0)
  EXPECT_EQ(h.Quantile(0.5), 150u);   // rank 5
  EXPECT_EQ(h.Quantile(1.0), 200u);   // rank 10 -> upper bound
  // p99 of 10 samples is rank ceil(9.9) = 10.
  EXPECT_EQ(h.Quantile(0.99), 200u);

  // Mixed buckets: 4 in [0, 100], 4 in (100, 200], 2 in (200, 400].
  h.counts = {4, 4, 2, 0};
  h.count = 10;
  EXPECT_EQ(h.Quantile(0.25), 75u);   // rank 3 of 4 in [0, 100]
  EXPECT_EQ(h.Quantile(0.5), 125u);   // rank 5 -> 1st of 4 in (100, 200]
  EXPECT_EQ(h.Quantile(0.9), 300u);   // rank 9 -> 1st of 2 in (200, 400]

  // Overflow samples clamp to the last finite bound.
  h.counts = {0, 0, 0, 3};
  h.count = 3;
  EXPECT_EQ(h.Quantile(0.99), 400u);
}

TEST(MetricsTest, PrometheusExportsInterpolatedQuantileGauges) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  HistogramMetric* histogram =
      registry.GetHistogram("test_quantile_histogram", {10, 100});
  histogram->Reset();
  for (int i = 0; i < 10; ++i) histogram->Observe(50);

  const std::string text = registry.Snapshot().ToPrometheusText();
  // Each quantile gauge is its own metric family with its own TYPE line.
  for (const char* q : {"_p50", "_p99", "_p999"}) {
    EXPECT_NE(text.find(std::string("# TYPE test_quantile_histogram") + q +
                        " gauge\n"),
              std::string::npos)
        << q;
  }
  // All 10 samples sit in (10, 100]: p50 = 10 + 90 * 5 / 10.
  EXPECT_NE(text.find("test_quantile_histogram_p50 55\n"), std::string::npos);
  EXPECT_NE(text.find("test_quantile_histogram_p99 100\n"), std::string::npos);

  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"p50\": 55"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p999\": 100"), std::string::npos);
}

TEST(MetricsTest, JsonExportContainsSections) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_json_counter")->Reset();
  registry.GetCounter("test_json_counter")->Add(9);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_counter\": 9"), std::string::npos);
}

TEST(MetricsTest, ResetAllZeroesEverything) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test_resetall_counter");
  counter->Add(11);
  HistogramMetric* histogram = registry.GetHistogram("test_resetall_histogram", {1});
  histogram->Observe(2);
  registry.ResetAll();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(histogram->Count(), 0u);
  // Registrations survive the reset.
  EXPECT_EQ(registry.GetCounter("test_resetall_counter"), counter);
}

}  // namespace
}  // namespace hytap

#include <gtest/gtest.h>

#include "query/executor.h"
#include "storage/table.h"

namespace hytap {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.push_back({"id", DataType::kInt32, 0});
  schema.push_back({"grp", DataType::kInt32, 0});
  schema.push_back({"amount", DataType::kDouble, 0});
  return schema;
}

class AggregateTest : public ::testing::Test {
 protected:
  AggregateTest()
      : store_(DeviceKind::kXpoint),
        buffers_(&store_, 16),
        table_("t", TestSchema(), &txns_, &store_, &buffers_),
        executor_(&table_) {
    std::vector<Row> rows;
    for (int r = 0; r < 100; ++r) {
      rows.push_back(Row{Value(int32_t(r)), Value(int32_t(r % 4)),
                         Value(double(r) * 0.5)});
    }
    table_.BulkLoad(rows);
  }
  TransactionManager txns_;
  SecondaryStore store_;
  BufferManager buffers_;
  Table table_;
  QueryExecutor executor_;
};

TEST_F(AggregateTest, CountSumMinMax) {
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{2})));
  query.aggregates = {Aggregate::Count(), Aggregate::Sum(2),
                      Aggregate::Min(0), Aggregate::Max(0)};
  QueryResult result = executor_.Execute(txn, query);
  ASSERT_EQ(result.aggregate_values.size(), 4u);
  // grp == 2: rows 2, 6, ..., 98 -> 25 rows.
  EXPECT_EQ(result.aggregate_values[0], Value(int64_t{25}));
  // sum of 0.5 * (2 + 6 + ... + 98) = 0.5 * 1250 = 625.
  EXPECT_DOUBLE_EQ(result.aggregate_values[1].AsDouble(), 625.0);
  EXPECT_EQ(result.aggregate_values[2], Value(int32_t{2}));
  EXPECT_EQ(result.aggregate_values[3], Value(int32_t{98}));
}

TEST_F(AggregateTest, AggregatesWithoutProjectionsKeepRowsEmpty) {
  Transaction txn = txns_.Begin();
  Query query;
  query.aggregates = {Aggregate::Sum(2)};
  QueryResult result = executor_.Execute(txn, query);
  EXPECT_TRUE(result.rows.empty());
  EXPECT_DOUBLE_EQ(result.aggregate_values[0].AsDouble(), 0.5 * 4950.0);
}

TEST_F(AggregateTest, EmptyResultSet) {
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(0, Value(int32_t{-1})));
  query.aggregates = {Aggregate::Count(), Aggregate::Sum(2)};
  QueryResult result = executor_.Execute(txn, query);
  EXPECT_EQ(result.aggregate_values[0], Value(int64_t{0}));
  EXPECT_DOUBLE_EQ(result.aggregate_values[1].AsDouble(), 0.0);
}

TEST_F(AggregateTest, AggregateOverTieredColumnSharesPages) {
  ASSERT_TRUE(table_.SetPlacement({true, true, false}, nullptr).ok());
  buffers_.Clear();
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{1})));
  query.aggregates = {Aggregate::Sum(2)};
  QueryResult result = executor_.Execute(txn, query);
  // Correct sum despite tiering: 0.5 * (1 + 5 + ... + 97) = 612.5.
  EXPECT_DOUBLE_EQ(result.aggregate_values[0].AsDouble(), 612.5);
  EXPECT_GT(result.io.device_ns, 0u);
}

TEST_F(AggregateTest, ProjectionsAndAggregatesShareFetches) {
  ASSERT_TRUE(table_.SetPlacement({true, true, false}, nullptr).ok());
  buffers_.Clear();
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(0, Value(int32_t{10})));
  query.projections = {2};
  query.aggregates = {Aggregate::Max(2)};
  QueryResult result = executor_.Execute(txn, query);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], Value(5.0));
  EXPECT_EQ(result.aggregate_values[0], Value(5.0));
  // The projected column and the aggregate input share one page access.
  EXPECT_EQ(result.io.page_reads + result.io.cache_hits, 1u);
}

TEST_F(AggregateTest, DeltaRowsIncludedInAggregates) {
  Transaction writer = txns_.Begin();
  ASSERT_TRUE(table_
                  .Insert(writer, Row{Value(int32_t{1000}), Value(int32_t{2}),
                                      Value(100.0)})
                  .ok());
  txns_.Commit(&writer);
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{2})));
  query.aggregates = {Aggregate::Count(), Aggregate::Max(2)};
  QueryResult result = executor_.Execute(txn, query);
  EXPECT_EQ(result.aggregate_values[0], Value(int64_t{26}));
  EXPECT_EQ(result.aggregate_values[1], Value(100.0));
}

TEST_F(AggregateTest, SumOverStringAborts) {
  Schema schema;
  schema.push_back({"s", DataType::kString, 8});
  TransactionManager txns;
  Table table("s", schema, &txns);
  table.BulkLoad({Row{Value("x")}});
  QueryExecutor executor(&table);
  Transaction txn = txns.Begin();
  Query query;
  query.aggregates = {Aggregate::Sum(0)};
  EXPECT_DEATH(executor.Execute(txn, query), "SUM over a string");
}

}  // namespace
}  // namespace hytap

#include "workload/forecast.h"

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/tiered_table.h"
#include "workload/tpcc.h"

namespace hytap {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.push_back({"a", DataType::kInt32, 0});
  schema.push_back({"b", DataType::kInt32, 0});
  schema.push_back({"c", DataType::kInt32, 0});
  return schema;
}

Query MakeQuery(std::vector<ColumnId> cols) {
  Query q;
  for (ColumnId c : cols) {
    q.predicates.push_back(Predicate::Equals(c, Value(int32_t{1})));
  }
  return q;
}

class ForecastTest : public ::testing::Test {
 protected:
  ForecastTest() : table_("t", TestSchema(), &txns_) {
    std::vector<Row> rows;
    for (int r = 0; r < 50; ++r) {
      rows.push_back(Row{Value(int32_t(r)), Value(int32_t(r % 5)),
                         Value(int32_t(r % 10))});
    }
    table_.BulkLoad(rows);
  }

  /// Records `count` executions of a template in one epoch and closes it.
  void Epoch(std::initializer_list<std::pair<std::vector<ColumnId>, int>>
                 templates) {
    PlanCache cache;
    for (const auto& [cols, count] : templates) {
      for (int i = 0; i < count; ++i) cache.Record(MakeQuery(cols));
    }
    history_.CloseEpoch(cache, table_);
  }

  TransactionManager txns_;
  Table table_;
  WorkloadHistory history_;
};

TEST_F(ForecastTest, SeriesZeroPadded) {
  Epoch({{{0}, 5}});
  Epoch({{{0}, 3}, {{1}, 7}});
  EXPECT_EQ(history_.epoch_count(), 2u);
  EXPECT_EQ(history_.Series({0}), (std::vector<double>{5, 3}));
  EXPECT_EQ(history_.Series({1}), (std::vector<double>{0, 7}));
  EXPECT_TRUE(history_.Series({2}).empty());
}

TEST_F(ForecastTest, LastEpochMethod) {
  Epoch({{{0}, 10}});
  Epoch({{{0}, 2}});
  Workload w = history_.Forecast(table_, ForecastMethod::kLastEpoch);
  ASSERT_EQ(w.query_count(), 1u);
  EXPECT_DOUBLE_EQ(w.queries[0].frequency, 2.0);
}

TEST_F(ForecastTest, MovingAverageWindow) {
  Epoch({{{0}, 10}});
  Epoch({{{0}, 20}});
  Epoch({{{0}, 30}});
  Workload all = history_.Forecast(table_, ForecastMethod::kMovingAverage);
  EXPECT_DOUBLE_EQ(all.queries[0].frequency, 20.0);
  Workload last2 =
      history_.Forecast(table_, ForecastMethod::kMovingAverage, 2);
  EXPECT_DOUBLE_EQ(last2.queries[0].frequency, 25.0);
}

TEST_F(ForecastTest, ExponentialSmoothingWeighsRecentEpochs) {
  Epoch({{{0}, 0}});
  Epoch({{{0}, 0}});
  Epoch({{{0}, 100}});
  Workload w = history_.Forecast(
      table_, ForecastMethod::kExponentialSmoothing, 0, 0.5);
  ASSERT_EQ(w.query_count(), 1u);
  EXPECT_NEAR(w.queries[0].frequency, 50.0, 1e-9);
}

TEST_F(ForecastTest, LinearTrendExtrapolates) {
  Epoch({{{0}, 10}});
  Epoch({{{0}, 20}});
  Epoch({{{0}, 30}});
  Workload w = history_.Forecast(table_, ForecastMethod::kLinearTrend);
  ASSERT_EQ(w.query_count(), 1u);
  EXPECT_NEAR(w.queries[0].frequency, 40.0, 1e-6);
}

TEST_F(ForecastTest, LinearTrendNeverNegative) {
  Epoch({{{0}, 30}});
  Epoch({{{0}, 10}});
  Epoch({{{0}, 1}});
  Workload w = history_.Forecast(table_, ForecastMethod::kLinearTrend);
  // Steeply decaying template is dropped (predicted <= 0) or clamped.
  for (const auto& q : w.queries) EXPECT_GE(q.frequency, 0.0);
}

TEST_F(ForecastTest, VanishedTemplatesFadeOut) {
  Epoch({{{0}, 100}});
  Epoch({{{1}, 100}});
  Epoch({{{1}, 100}});
  Workload w = history_.Forecast(
      table_, ForecastMethod::kExponentialSmoothing, 0, 0.7);
  double freq0 = 0, freq1 = 0;
  for (const auto& q : w.queries) {
    if (q.columns == std::vector<uint32_t>{0}) freq0 = q.frequency;
    if (q.columns == std::vector<uint32_t>{1}) freq1 = q.frequency;
  }
  EXPECT_LT(freq0, 15.0);  // faded
  EXPECT_GT(freq1, 85.0);  // dominant
}

TEST_F(ForecastTest, ForecastDrivesAdaptivePlacement) {
  // A template on column 2 grows epoch over epoch: the trend forecast must
  // rank column 2 into DRAM even though the *cumulative* history is still
  // dominated by column 0.
  Epoch({{{0}, 100}, {{2}, 1}});
  Epoch({{{0}, 100}, {{2}, 40}});
  Epoch({{{0}, 100}, {{2}, 80}});
  Workload predicted =
      history_.Forecast(table_, ForecastMethod::kLinearTrend);
  double freq2 = 0;
  for (const auto& q : predicted.queries) {
    if (q.columns == std::vector<uint32_t>{2}) freq2 = q.frequency;
  }
  EXPECT_GT(freq2, 100.0);  // extrapolated past the static template
}

}  // namespace
}  // namespace hytap

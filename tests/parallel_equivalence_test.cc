#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "query/executor.h"
#include "query/scan.h"
#include "storage/table.h"

namespace hytap {
namespace {

/// Proves that real intra-query parallelism is invisible to the engine's
/// semantics: for any thread count, query results are bit-identical and the
/// simulated IoStats follow the same deterministic accounting order as the
/// serial executor. (device_ns/dram_ns depend on the *requested* thread
/// count through the modeled queue depth — that is cost-model behaviour,
/// not an execution race — so cross-thread-count runs compare page_reads
/// and cache_hits, while same-thread-count runs with the worker pool capped
/// to 1 must match every IoStats field bit for bit.)

constexpr size_t kMainRows = 4000;
constexpr size_t kDeltaRows = 120;

Schema TestSchema() {
  Schema schema;
  schema.push_back({"id", DataType::kInt32, 0});
  schema.push_back({"grp", DataType::kInt32, 0});
  schema.push_back({"amount", DataType::kDouble, 0});
  schema.push_back({"qty", DataType::kInt64, 0});
  return schema;
}

/// One self-contained engine instance, reproducibly seeded.
struct Instance {
  TransactionManager txns;
  SecondaryStore store;
  BufferManager buffers;
  Table table;

  explicit Instance(FaultConfig faults = FaultConfig())
      : store(DeviceKind::kCssd, /*timing_seed=*/7),
        buffers(&store, /*frame_count=*/32),
        table("t", TestSchema(), &txns, &store, &buffers) {
    Rng rng(1234);
    std::vector<Row> rows;
    rows.reserve(kMainRows);
    for (size_t r = 0; r < kMainRows; ++r) {
      rows.push_back(Row{Value(int32_t(r)),
                         Value(int32_t(rng.NextInt(0, 50))),
                         Value(rng.NextDouble(0.0, 1000.0)),
                         Value(int64_t(rng.NextInt(1, 10000)))});
    }
    table.BulkLoad(rows);
    // Tier half of the columns: grp stays in DRAM, amount + qty go to the
    // SSCG so scans, probes, and materialization cross both locations.
    EXPECT_TRUE(table.SetPlacement({true, true, false, false}).ok());
    // Arm fault injection (if any) only after the clean load + placement so
    // the instance state at query time is identical across runs.
    if (faults.AnyFaults()) store.ConfigureFaults(faults);
    // A delta partition on top.
    Transaction txn = txns.Begin();
    for (size_t d = 0; d < kDeltaRows; ++d) {
      EXPECT_TRUE(table
                      .Insert(txn, Row{Value(int32_t(kMainRows + d)),
                                       Value(int32_t(rng.NextInt(0, 50))),
                                       Value(rng.NextDouble(0.0, 1000.0)),
                                       Value(int64_t(rng.NextInt(1, 10000)))})
                      .ok());
    }
    txns.Commit(&txn);
  }
};

std::vector<Query> RandomQueries(size_t count) {
  Rng rng(99);
  std::vector<Query> queries;
  for (size_t q = 0; q < count; ++q) {
    Query query;
    // 1-2 predicates over the DRAM and/or tiered columns.
    const int preds = 1 + int(rng.NextBounded(2));
    for (int p = 0; p < preds; ++p) {
      const ColumnId col = ColumnId(1 + rng.NextBounded(3));
      if (col == 1) {
        query.predicates.push_back(
            Predicate::Equals(1, Value(int32_t(rng.NextInt(0, 50)))));
      } else if (col == 2) {
        const double lo = rng.NextDouble(0.0, 900.0);
        query.predicates.push_back(
            Predicate::Between(2, Value(lo), Value(lo + 150.0)));
      } else {
        const int64_t lo = rng.NextInt(0, 8000);
        query.predicates.push_back(
            Predicate::Between(3, Value(lo), Value(lo + 2500)));
      }
    }
    // Mixed projections + aggregates so Materialize runs both paths.
    query.projections = {0, 2};
    query.aggregates = {Aggregate::Count(), Aggregate::Sum(2),
                        Aggregate::Min(3), Aggregate::Max(2)};
    queries.push_back(std::move(query));
  }
  return queries;
}

std::vector<QueryResult> RunAll(Instance& instance,
                                const std::vector<Query>& queries,
                                uint32_t threads) {
  QueryExecutor executor(&instance.table);
  Transaction txn = instance.txns.Begin();
  std::vector<QueryResult> results;
  for (const Query& query : queries) {
    results.push_back(executor.Execute(txn, query, threads));
  }
  instance.txns.Abort(&txn);
  return results;
}

void ExpectSameResults(const QueryResult& a, const QueryResult& b,
                       size_t q, bool expect_identical_ns) {
  EXPECT_EQ(a.positions, b.positions) << "query " << q;
  EXPECT_EQ(a.rows, b.rows) << "query " << q;
  ASSERT_EQ(a.aggregate_values.size(), b.aggregate_values.size());
  for (size_t i = 0; i < a.aggregate_values.size(); ++i) {
    EXPECT_TRUE(a.aggregate_values[i] == b.aggregate_values[i])
        << "query " << q << " aggregate " << i;
  }
  EXPECT_EQ(a.candidate_trace, b.candidate_trace) << "query " << q;
  EXPECT_EQ(a.io.page_reads, b.io.page_reads) << "query " << q;
  EXPECT_EQ(a.io.cache_hits, b.io.cache_hits) << "query " << q;
  EXPECT_EQ(a.io.retries, b.io.retries) << "query " << q;
  EXPECT_EQ(a.io.morsels_pruned, b.io.morsels_pruned) << "query " << q;
  EXPECT_EQ(a.io.pages_pruned, b.io.pages_pruned) << "query " << q;
  EXPECT_EQ(a.io.checksum_failures, b.io.checksum_failures) << "query " << q;
  EXPECT_EQ(a.io.quarantined_pages, b.io.quarantined_pages) << "query " << q;
  if (expect_identical_ns) {
    EXPECT_EQ(a.io.device_ns, b.io.device_ns) << "query " << q;
    EXPECT_EQ(a.io.dram_ns, b.io.dram_ns) << "query " << q;
  }
}

void ExpectSameFaultStats(const FaultStats& a, const FaultStats& b) {
  EXPECT_EQ(a.transient_errors, b.transient_errors);
  EXPECT_EQ(a.corrupted_reads, b.corrupted_reads);
  EXPECT_EQ(a.corrupted_writes, b.corrupted_writes);
  EXPECT_EQ(a.dead_pages, b.dead_pages);
  EXPECT_EQ(a.latency_spikes, b.latency_spikes);
  EXPECT_EQ(a.checksum_failures, b.checksum_failures);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failed_reads, b.failed_reads);
  EXPECT_EQ(a.fast_fail_reads, b.fast_fail_reads);
  EXPECT_EQ(a.quarantined_pages, b.quarantined_pages);
}

TEST(ParallelEquivalenceTest, ResultsIdenticalAcrossThreadCounts) {
  const std::vector<Query> queries = RandomQueries(12);
  // Each thread count gets a freshly-built, identically-seeded instance so
  // buffer-cache state and device-jitter draws start from the same point.
  Instance baseline;
  const std::vector<QueryResult> serial = RunAll(baseline, queries, 1);
  for (uint32_t threads : {2u, 4u, 8u}) {
    Instance instance;
    const std::vector<QueryResult> parallel =
        RunAll(instance, queries, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t q = 0; q < serial.size(); ++q) {
      // ns figures legitimately differ across thread counts (queue-depth
      // dependent cost model); everything else must match bit for bit.
      ExpectSameResults(serial[q], parallel[q], q,
                        /*expect_identical_ns=*/false);
    }
  }
}

TEST(ParallelEquivalenceTest, SimulatedIoBitIdenticalToForcedSerial) {
  const std::vector<Query> queries = RandomQueries(12);
  const uint32_t threads = 4;

  Instance forced_serial_instance;
  ThreadPool::Global().set_max_workers(1);  // same code path, zero overlap
  const std::vector<QueryResult> forced_serial =
      RunAll(forced_serial_instance, queries, threads);
  ThreadPool::Global().set_max_workers(SIZE_MAX);

  Instance parallel_instance;
  const std::vector<QueryResult> parallel =
      RunAll(parallel_instance, queries, threads);

  ASSERT_EQ(parallel.size(), forced_serial.size());
  for (size_t q = 0; q < forced_serial.size(); ++q) {
    ExpectSameResults(forced_serial[q], parallel[q], q,
                      /*expect_identical_ns=*/true);
  }
}

// Metrics and traces are pure observers: with the knobs on or off, query
// results and the simulated cost model must be bit-identical at the same
// thread count — including every ns field, since neither subsystem may add,
// remove, or reorder a single page fetch or fault draw.
TEST(ParallelEquivalenceTest, ObservabilityKnobsDoNotPerturbExecution) {
  const std::vector<Query> queries = RandomQueries(12);
  const bool metrics_were_enabled = MetricsEnabled();
  for (uint32_t threads : {1u, 2u, 4u}) {
    Instance off_instance;
    SetMetricsEnabled(false);
    SetTraceEnabled(false);
    const std::vector<QueryResult> off =
        RunAll(off_instance, queries, threads);

    Instance on_instance;
    SetMetricsEnabled(true);
    SetTraceEnabled(true);
    const std::vector<QueryResult> on = RunAll(on_instance, queries, threads);
    SetTraceEnabled(false);
    SetMetricsEnabled(metrics_were_enabled);

    ASSERT_EQ(on.size(), off.size());
    for (size_t q = 0; q < off.size(); ++q) {
      ExpectSameResults(off[q], on[q], q, /*expect_identical_ns=*/true);
      EXPECT_EQ(off[q].trace, nullptr);
      EXPECT_NE(on[q].trace, nullptr);
    }
  }
}

// Same property under an armed fault injector: the observability layer must
// not shift the seeded fault schedule by a single draw — statuses and the
// store's FaultStats match field for field.
TEST(ParallelEquivalenceTest, ObservabilityKnobsDoNotPerturbFaultSchedules) {
  FaultConfig faults;
  faults.seed = 11;
  faults.read_error_rate = 0.08;
  faults.read_corruption_rate = 0.03;
  faults.page_failure_rate = 0.004;
  faults.latency_spike_rate = 0.05;
  const std::vector<Query> queries = RandomQueries(12);
  const bool metrics_were_enabled = MetricsEnabled();
  for (uint32_t threads : {1u, 4u}) {
    Instance off_instance(faults);
    SetMetricsEnabled(false);
    SetTraceEnabled(false);
    const std::vector<QueryResult> off =
        RunAll(off_instance, queries, threads);

    Instance on_instance(faults);
    SetMetricsEnabled(true);
    SetTraceEnabled(true);
    const std::vector<QueryResult> on = RunAll(on_instance, queries, threads);
    SetTraceEnabled(false);
    SetMetricsEnabled(metrics_were_enabled);

    ASSERT_EQ(on.size(), off.size());
    for (size_t q = 0; q < off.size(); ++q) {
      EXPECT_EQ(off[q].status.code(), on[q].status.code()) << "query " << q;
      EXPECT_EQ(off[q].status.message(), on[q].status.message())
          << "query " << q;
      ExpectSameResults(off[q], on[q], q, /*expect_identical_ns=*/true);
    }
    ExpectSameFaultStats(off_instance.store.fault_stats(),
                         on_instance.store.fault_stats());
  }
}

TEST(ParallelEquivalenceTest, ParallelScanColumnMatchesScanBetween) {
  Instance instance;
  const AbstractColumn* mrc = instance.table.mrc(1);
  ASSERT_NE(mrc, nullptr);
  const Value lo(int32_t{10}), hi(int32_t{30});
  PositionList serial;
  mrc->ScanBetween(&lo, &hi, &serial);
  for (uint32_t threads : {1u, 2u, 8u}) {
    PositionList parallel;
    ParallelScanColumn(*mrc, &lo, &hi, threads, &parallel);
    EXPECT_EQ(parallel, serial) << threads;
  }
}

}  // namespace
}  // namespace hytap

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "query/executor.h"
#include "query/scan.h"
#include "storage/table.h"

namespace hytap {
namespace {

/// Proves that real intra-query parallelism is invisible to the engine's
/// semantics: for any thread count, query results are bit-identical and the
/// simulated IoStats follow the same deterministic accounting order as the
/// serial executor. (device_ns/dram_ns depend on the *requested* thread
/// count through the modeled queue depth — that is cost-model behaviour,
/// not an execution race — so cross-thread-count runs compare page_reads
/// and cache_hits, while same-thread-count runs with the worker pool capped
/// to 1 must match every IoStats field bit for bit.)

constexpr size_t kMainRows = 4000;
constexpr size_t kDeltaRows = 120;

Schema TestSchema() {
  Schema schema;
  schema.push_back({"id", DataType::kInt32, 0});
  schema.push_back({"grp", DataType::kInt32, 0});
  schema.push_back({"amount", DataType::kDouble, 0});
  schema.push_back({"qty", DataType::kInt64, 0});
  return schema;
}

/// One self-contained engine instance, reproducibly seeded.
struct Instance {
  TransactionManager txns;
  SecondaryStore store;
  BufferManager buffers;
  Table table;

  Instance()
      : store(DeviceKind::kCssd, /*timing_seed=*/7),
        buffers(&store, /*frame_count=*/32),
        table("t", TestSchema(), &txns, &store, &buffers) {
    Rng rng(1234);
    std::vector<Row> rows;
    rows.reserve(kMainRows);
    for (size_t r = 0; r < kMainRows; ++r) {
      rows.push_back(Row{Value(int32_t(r)),
                         Value(int32_t(rng.NextInt(0, 50))),
                         Value(rng.NextDouble(0.0, 1000.0)),
                         Value(int64_t(rng.NextInt(1, 10000)))});
    }
    table.BulkLoad(rows);
    // Tier half of the columns: grp stays in DRAM, amount + qty go to the
    // SSCG so scans, probes, and materialization cross both locations.
    EXPECT_TRUE(table.SetPlacement({true, true, false, false}).ok());
    // A delta partition on top.
    Transaction txn = txns.Begin();
    for (size_t d = 0; d < kDeltaRows; ++d) {
      EXPECT_TRUE(table
                      .Insert(txn, Row{Value(int32_t(kMainRows + d)),
                                       Value(int32_t(rng.NextInt(0, 50))),
                                       Value(rng.NextDouble(0.0, 1000.0)),
                                       Value(int64_t(rng.NextInt(1, 10000)))})
                      .ok());
    }
    txns.Commit(&txn);
  }
};

std::vector<Query> RandomQueries(size_t count) {
  Rng rng(99);
  std::vector<Query> queries;
  for (size_t q = 0; q < count; ++q) {
    Query query;
    // 1-2 predicates over the DRAM and/or tiered columns.
    const int preds = 1 + int(rng.NextBounded(2));
    for (int p = 0; p < preds; ++p) {
      const ColumnId col = ColumnId(1 + rng.NextBounded(3));
      if (col == 1) {
        query.predicates.push_back(
            Predicate::Equals(1, Value(int32_t(rng.NextInt(0, 50)))));
      } else if (col == 2) {
        const double lo = rng.NextDouble(0.0, 900.0);
        query.predicates.push_back(
            Predicate::Between(2, Value(lo), Value(lo + 150.0)));
      } else {
        const int64_t lo = rng.NextInt(0, 8000);
        query.predicates.push_back(
            Predicate::Between(3, Value(lo), Value(lo + 2500)));
      }
    }
    // Mixed projections + aggregates so Materialize runs both paths.
    query.projections = {0, 2};
    query.aggregates = {Aggregate::Count(), Aggregate::Sum(2),
                        Aggregate::Min(3), Aggregate::Max(2)};
    queries.push_back(std::move(query));
  }
  return queries;
}

std::vector<QueryResult> RunAll(Instance& instance,
                                const std::vector<Query>& queries,
                                uint32_t threads) {
  QueryExecutor executor(&instance.table);
  Transaction txn = instance.txns.Begin();
  std::vector<QueryResult> results;
  for (const Query& query : queries) {
    results.push_back(executor.Execute(txn, query, threads));
  }
  instance.txns.Abort(&txn);
  return results;
}

void ExpectSameResults(const QueryResult& a, const QueryResult& b,
                       size_t q, bool expect_identical_ns) {
  EXPECT_EQ(a.positions, b.positions) << "query " << q;
  EXPECT_EQ(a.rows, b.rows) << "query " << q;
  ASSERT_EQ(a.aggregate_values.size(), b.aggregate_values.size());
  for (size_t i = 0; i < a.aggregate_values.size(); ++i) {
    EXPECT_TRUE(a.aggregate_values[i] == b.aggregate_values[i])
        << "query " << q << " aggregate " << i;
  }
  EXPECT_EQ(a.candidate_trace, b.candidate_trace) << "query " << q;
  EXPECT_EQ(a.io.page_reads, b.io.page_reads) << "query " << q;
  EXPECT_EQ(a.io.cache_hits, b.io.cache_hits) << "query " << q;
  if (expect_identical_ns) {
    EXPECT_EQ(a.io.device_ns, b.io.device_ns) << "query " << q;
    EXPECT_EQ(a.io.dram_ns, b.io.dram_ns) << "query " << q;
  }
}

TEST(ParallelEquivalenceTest, ResultsIdenticalAcrossThreadCounts) {
  const std::vector<Query> queries = RandomQueries(12);
  // Each thread count gets a freshly-built, identically-seeded instance so
  // buffer-cache state and device-jitter draws start from the same point.
  Instance baseline;
  const std::vector<QueryResult> serial = RunAll(baseline, queries, 1);
  for (uint32_t threads : {2u, 4u, 8u}) {
    Instance instance;
    const std::vector<QueryResult> parallel =
        RunAll(instance, queries, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t q = 0; q < serial.size(); ++q) {
      // ns figures legitimately differ across thread counts (queue-depth
      // dependent cost model); everything else must match bit for bit.
      ExpectSameResults(serial[q], parallel[q], q,
                        /*expect_identical_ns=*/false);
    }
  }
}

TEST(ParallelEquivalenceTest, SimulatedIoBitIdenticalToForcedSerial) {
  const std::vector<Query> queries = RandomQueries(12);
  const uint32_t threads = 4;

  Instance forced_serial_instance;
  ThreadPool::Global().set_max_workers(1);  // same code path, zero overlap
  const std::vector<QueryResult> forced_serial =
      RunAll(forced_serial_instance, queries, threads);
  ThreadPool::Global().set_max_workers(SIZE_MAX);

  Instance parallel_instance;
  const std::vector<QueryResult> parallel =
      RunAll(parallel_instance, queries, threads);

  ASSERT_EQ(parallel.size(), forced_serial.size());
  for (size_t q = 0; q < forced_serial.size(); ++q) {
    ExpectSameResults(forced_serial[q], parallel[q], q,
                      /*expect_identical_ns=*/true);
  }
}

TEST(ParallelEquivalenceTest, ParallelScanColumnMatchesScanBetween) {
  Instance instance;
  const AbstractColumn* mrc = instance.table.mrc(1);
  ASSERT_NE(mrc, nullptr);
  const Value lo(int32_t{10}), hi(int32_t{30});
  PositionList serial;
  mrc->ScanBetween(&lo, &hi, &serial);
  for (uint32_t threads : {1u, 2u, 8u}) {
    PositionList parallel;
    ParallelScanColumn(*mrc, &lo, &hi, threads, &parallel);
    EXPECT_EQ(parallel, serial) << threads;
  }
}

}  // namespace
}  // namespace hytap

#include "selection/selectors.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "workload/example1.h"

namespace hytap {
namespace {

Workload TinyWorkload() {
  Workload w;
  w.column_sizes = {10.0, 20.0, 30.0};
  w.selectivities = {0.1, 0.5, 0.01};
  QueryTemplate q1;
  q1.columns = {0, 1};
  q1.frequency = 2.0;
  QueryTemplate q2;
  q2.columns = {1, 2};
  q2.frequency = 1.0;
  w.queries = {q1, q2};
  return w;
}

TEST(SelectionProblemTest, RelativeBudget) {
  Workload w = TinyWorkload();
  auto p = SelectionProblem::FromRelativeBudget(w, ScanCostParams{}, 0.5);
  EXPECT_DOUBLE_EQ(p.budget_bytes, 30.0);
}

TEST(IntegerSelectorTest, FullBudgetSelectsAllUsed) {
  Workload w = TinyWorkload();
  auto p = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 10}, 1.0);
  auto result = SelectIntegerOptimal(p);
  EXPECT_EQ(result.in_dram, (std::vector<uint8_t>{1, 1, 1}));
  EXPECT_TRUE(result.optimal);
}

TEST(IntegerSelectorTest, ZeroBudgetSelectsNothing) {
  Workload w = TinyWorkload();
  auto p = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 10}, 0.0);
  auto result = SelectIntegerOptimal(p);
  EXPECT_EQ(result.in_dram, (std::vector<uint8_t>{0, 0, 0}));
  EXPECT_DOUBLE_EQ(result.dram_bytes, 0.0);
}

TEST(IntegerSelectorTest, PrefersHighUtilityDensity) {
  // Budget 30: candidates {0:(180 profit,10), 1:(37.8,20), 2:(270,30)}.
  // Options: {0,1} profit 217.8, {2} profit 270 -> pick {2}.
  Workload w = TinyWorkload();
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 10.0};
  p.budget_bytes = 30.0;
  auto result = SelectIntegerOptimal(p);
  EXPECT_EQ(result.in_dram, (std::vector<uint8_t>{0, 0, 1}));
}

TEST(IntegerSelectorTest, NeverUsedColumnsEvictedFirst) {
  Workload w = TinyWorkload();
  w.column_sizes.push_back(1000.0);  // never referenced
  w.selectivities.push_back(0.5);
  auto p = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 10}, 1.0);
  auto result = SelectIntegerOptimal(p);
  EXPECT_EQ(result.in_dram[3], 0);  // plenty of budget, still evicted
}

TEST(IntegerSelectorTest, PinningForcesResidence) {
  Workload w = TinyWorkload();
  w.column_sizes.push_back(5.0);  // unused but pinned
  w.selectivities.push_back(0.5);
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 10.0};
  p.budget_bytes = 10.0;
  p.pinned = {0, 0, 0, 1};
  auto result = SelectIntegerOptimal(p);
  EXPECT_EQ(result.in_dram[3], 1);
  // Remaining budget (5) fits nothing else but col 0 needs 10.
  EXPECT_EQ(result.in_dram[0], 0);
}

TEST(ContinuousPenaltyTest, AlphaZeroKeepsAllUsedColumns) {
  Workload w = TinyWorkload();
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 10.0};
  auto result = SelectContinuousPenalty(p, 0.0);
  EXPECT_EQ(result.in_dram, (std::vector<uint8_t>{1, 1, 1}));
}

TEST(ContinuousPenaltyTest, HugeAlphaEvictsEverything) {
  Workload w = TinyWorkload();
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 10.0};
  auto result = SelectContinuousPenalty(p, 1e12);
  EXPECT_EQ(result.in_dram, (std::vector<uint8_t>{0, 0, 0}));
}

TEST(ContinuousPenaltyTest, MonotoneInAlpha) {
  // Remark 1: allocations are nested as alpha decreases.
  Workload w = GenerateExample1({});
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 100.0};
  std::vector<uint8_t> previous(w.column_count(), 1);
  for (double alpha : {0.0, 1.0, 10.0, 100.0, 1000.0, 1e6}) {
    auto result = SelectContinuousPenalty(p, alpha);
    for (size_t i = 0; i < w.column_count(); ++i) {
      // Larger alpha can only evict more.
      EXPECT_LE(result.in_dram[i], previous[i]) << "alpha=" << alpha;
    }
    previous = result.in_dram;
  }
}

TEST(ExplicitFrontierTest, PointsAscendInMemoryAndDescendInCost) {
  Workload w = GenerateExample1({});
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 100.0};
  auto frontier = ComputeExplicitFrontier(p);
  ASSERT_FALSE(frontier.points.empty());
  for (size_t k = 1; k < frontier.points.size(); ++k) {
    EXPECT_GT(frontier.points[k].dram_bytes,
              frontier.points[k - 1].dram_bytes);
    EXPECT_LT(frontier.points[k].scan_cost,
              frontier.points[k - 1].scan_cost);
    // Critical alphas are non-increasing along the performance order.
    EXPECT_LE(frontier.points[k].alpha, frontier.points[k - 1].alpha);
  }
}

TEST(ExplicitSelectorTest, MatchesContinuousPenaltySweep) {
  // Theorem 2: the explicit order reproduces the penalty solutions.
  Workload w = GenerateExample1({});
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 100.0};
  auto frontier = ComputeExplicitFrontier(p);
  for (size_t k : {size_t{0}, frontier.points.size() / 2,
                   frontier.points.size() - 1}) {
    // Alpha just below the k-th critical value selects exactly the prefix
    // through k.
    const double alpha = frontier.points[k].alpha * (1.0 - 1e-9);
    auto penalty = SelectContinuousPenalty(p, alpha);
    size_t selected = 0;
    for (uint8_t b : penalty.in_dram) selected += b;
    EXPECT_EQ(selected, k + 1) << "k=" << k;
    for (size_t j = 0; j <= k; ++j) {
      EXPECT_EQ(penalty.in_dram[frontier.points[j].column], 1);
    }
  }
}

TEST(ExplicitSelectorTest, FillingUsesLeftoverBudget) {
  // Construct: first column huge, rest small; prefix-only stops at the huge
  // column, filling packs the small ones.
  Workload w;
  w.column_sizes = {100.0, 10.0, 10.0};
  w.selectivities = {0.9, 0.9, 0.9};
  QueryTemplate q1{{0}, 100.0};  // column 0 most valuable
  QueryTemplate q2{{1}, 10.0};
  QueryTemplate q3{{2}, 9.0};
  w.queries = {q1, q2, q3};
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 10.0};
  p.budget_bytes = 25.0;  // column 0 does not fit
  auto strict = SelectExplicit(p, /*filling=*/false);
  EXPECT_EQ(strict.in_dram, (std::vector<uint8_t>{0, 0, 0}));
  auto filled = SelectExplicit(p, /*filling=*/true);
  EXPECT_EQ(filled.in_dram, (std::vector<uint8_t>{0, 1, 1}));
}

TEST(ExplicitSelectorTest, NestedAllocationsAcrossBudgets) {
  // Remark 1 for budget sweeps (without filling).
  Workload w = GenerateExample1({});
  std::vector<uint8_t> previous(w.column_count(), 0);
  for (double budget_w : {1.0, 0.8, 0.6, 0.4, 0.2, 0.05, 0.0}) {
    auto p = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100},
                                                  budget_w);
    auto result = SelectExplicit(p, /*filling=*/false);
    if (budget_w == 1.0) {
      previous = result.in_dram;
      continue;
    }
    for (size_t i = 0; i < w.column_count(); ++i) {
      EXPECT_LE(result.in_dram[i], previous[i]) << "w=" << budget_w;
    }
    previous = result.in_dram;
  }
}

TEST(GreedyMarginalTest, MatchesExplicitOnLinearModel) {
  // For the separable scan-cost model the Remark-3 greedy coincides with the
  // explicit density order (plus filling behavior differences only when a
  // column doesn't fit).
  Workload w = GenerateExample1({});
  auto p = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100},
                                                0.3);
  auto greedy = SelectGreedyMarginal(p);
  auto explicit_sel = SelectExplicit(p, /*filling=*/true);
  CostModel model(w, p.params);
  // Costs must agree to within a hair (identical in the generic case).
  EXPECT_NEAR(greedy.scan_cost, explicit_sel.scan_cost,
              1e-6 * explicit_sel.scan_cost);
}

TEST(ReallocationTest, BetaZeroIgnoresCurrentPlacement) {
  Workload w = GenerateExample1({});
  auto p = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100},
                                                0.4);
  auto base = SelectExplicit(p);
  p.beta = 0.0;
  p.current.assign(w.column_count(), 1);
  auto with_current = SelectExplicit(p);
  EXPECT_EQ(base.in_dram, with_current.in_dram);
}

TEST(ReallocationTest, HighBetaFreezesPlacement) {
  // With beta large, moving anything costs more than any scan gain: the
  // optimizer keeps the current allocation wherever admissible.
  Workload w = GenerateExample1({});
  auto p = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100},
                                                0.4);
  // Current placement: whatever the explicit solver picks at w=0.4.
  auto initial = SelectExplicit(p);
  p.current = initial.in_dram;
  p.beta = 1e12;
  auto frozen = SelectIntegerOptimal(p);
  EXPECT_EQ(frozen.in_dram, initial.in_dram);
}

TEST(ReallocationTest, ModerateBetaLimitsMoves) {
  Workload w = GenerateExample1({});
  auto p0 = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100},
                                                 0.2);
  auto initial = SelectExplicit(p0);
  // Budget grows to 0.6: without reallocation costs many columns move.
  auto p1 = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100},
                                                 0.6);
  auto free_moves = SelectIntegerOptimal(p1);
  p1.current = initial.in_dram;
  p1.beta = 50.0;
  auto costed = SelectIntegerOptimal(p1);
  auto count_moves = [&](const std::vector<uint8_t>& x) {
    size_t moves = 0;
    for (size_t i = 0; i < x.size(); ++i) {
      moves += (x[i] != initial.in_dram[i]) ? 1 : 0;
    }
    return moves;
  };
  EXPECT_LE(count_moves(costed.in_dram), count_moves(free_moves.in_dram));
}

TEST(SimplexSelectorsTest, PenaltyLpIsIntegral) {
  // Lemma 1 via the actual LP solver.
  Example1Params params;
  params.num_columns = 20;
  params.num_queries = 100;
  Workload w = GenerateExample1(params);
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 100.0};
  for (double alpha : {0.5, 5.0, 50.0}) {
    auto lp = SelectContinuousSimplex(p, alpha);
    auto threshold = SelectContinuousPenalty(p, alpha);
    EXPECT_EQ(lp.in_dram, threshold.in_dram) << "alpha=" << alpha;
  }
}

TEST(SimplexSelectorsTest, BudgetRelaxationHasAtMostOneFractional) {
  Example1Params params;
  params.num_columns = 20;
  params.num_queries = 100;
  Workload w = GenerateExample1(params);
  auto p = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100},
                                                0.35);
  auto relax = SolveRelaxationSimplex(p);
  ASSERT_TRUE(relax.feasible);
  size_t fractional = 0;
  for (double x : relax.x) {
    if (x > 1e-6 && x < 1.0 - 1e-6) ++fractional;
  }
  EXPECT_LE(fractional, 1u);
  EXPECT_LE(relax.dram_bytes, p.budget_bytes + 1e-6);
  // Relaxation lower-bounds the integer optimum.
  auto integer = SelectIntegerOptimal(p);
  EXPECT_LE(relax.scan_cost, integer.scan_cost + 1e-6);
}

}  // namespace
}  // namespace hytap

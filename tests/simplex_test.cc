#include "solver/simplex.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hytap {
namespace {

TEST(SimplexTest, TrivialMinimumAtOrigin) {
  // min x0 + x1 s.t. x <= 1: optimum at origin.
  LpProblem lp;
  lp.objective = {1.0, 1.0};
  lp.constraints = {{1.0, 0.0}, {0.0, 1.0}};
  lp.rhs = {1.0, 1.0};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 0.0, 1e-9);
}

TEST(SimplexTest, NegativeCostsDriveToUpperBounds) {
  // min -3x0 - x1 s.t. x_i <= 1: optimum (1, 1).
  LpProblem lp;
  lp.objective = {-3.0, -1.0};
  lp.constraints = {{1.0, 0.0}, {0.0, 1.0}};
  lp.rhs = {1.0, 1.0};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
  EXPECT_NEAR(sol.objective, -4.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariableLp) {
  // min -(3x + 5y) s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), obj -36.
  LpProblem lp;
  lp.objective = {-3.0, -5.0};
  lp.constraints = {{1.0, 0.0}, {0.0, 2.0}, {3.0, 2.0}};
  lp.rhs = {4.0, 12.0, 18.0};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-6);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-6);
  EXPECT_NEAR(sol.objective, -36.0, 1e-6);
}

TEST(SimplexTest, DetectsUnbounded) {
  // min -x0 with no constraint on x0.
  LpProblem lp;
  lp.objective = {-1.0, 0.0};
  lp.constraints = {{0.0, 1.0}};
  lp.rhs = {1.0};
  auto sol = SolveLp(lp);
  EXPECT_TRUE(sol.feasible);
  EXPECT_FALSE(sol.bounded);
}

TEST(SimplexTest, BudgetConstraintBinds) {
  // Fractional knapsack relaxation: min -(6x0 + 5x1) s.t. 3x0 + 4x1 <= 4,
  // x <= 1. Density favors x0: x0 = 1, x1 = 1/4.
  LpProblem lp;
  lp.objective = {-6.0, -5.0};
  lp.constraints = {{3.0, 4.0}, {1.0, 0.0}, {0.0, 1.0}};
  lp.rhs = {4.0, 1.0, 1.0};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-6);
  EXPECT_NEAR(sol.x[1], 0.25, 1e-6);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LpProblem lp;
  lp.objective = {-1.0, -1.0};
  lp.constraints = {{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}, {1.0, 0.0},
                    {0.0, 1.0}};
  lp.rhs = {1.0, 1.0, 2.0, 1.0, 1.0};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, -1.0, 1e-6);
}

TEST(SimplexTest, ZeroObjectiveFeasible) {
  LpProblem lp;
  lp.objective = {0.0};
  lp.constraints = {{1.0}};
  lp.rhs = {5.0};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
}

// Property: on random bounded-box LPs (min c x, x in [0,1]^n) the optimum is
// the obvious per-coordinate threshold solution.
class SimplexBoxPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexBoxPropertyTest, BoxLpSolvedCoordinatewise) {
  Rng rng(GetParam());
  const size_t n = 2 + rng.NextBounded(20);
  LpProblem lp;
  lp.objective.resize(n);
  lp.constraints.assign(n, std::vector<double>(n, 0.0));
  lp.rhs.assign(n, 1.0);
  double expected = 0.0;
  for (size_t i = 0; i < n; ++i) {
    lp.objective[i] = rng.NextDouble(-5.0, 5.0);
    lp.constraints[i][i] = 1.0;
    if (lp.objective[i] < 0) expected += lp.objective[i];
  }
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, expected, 1e-6);
  // Vertex solutions: every coordinate is 0 or 1 (Lemma-1 mechanism).
  for (double x : sol.x) {
    EXPECT_TRUE(std::abs(x) < 1e-6 || std::abs(x - 1.0) < 1e-6) << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexBoxPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hytap

#include "storage/dictionary_column.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hytap {
namespace {

TEST(DictionaryColumnTest, RoundTrip) {
  auto col = DictionaryColumn<int32_t>::Build({5, 3, 5, 1, 9, 3});
  ASSERT_EQ(col->size(), 6u);
  EXPECT_EQ(col->distinct_count(), 4u);
  EXPECT_EQ(col->Get(0), 5);
  EXPECT_EQ(col->Get(3), 1);
  EXPECT_EQ(col->GetValue(4), Value(int32_t{9}));
}

TEST(DictionaryColumnTest, ScanEquality) {
  auto col = DictionaryColumn<int32_t>::Build({5, 3, 5, 1, 9, 3});
  PositionList out;
  Value v(int32_t{5});
  col->ScanBetween(&v, &v, &out);
  EXPECT_EQ(out, (PositionList{0, 2}));
}

TEST(DictionaryColumnTest, ScanRange) {
  auto col = DictionaryColumn<int32_t>::Build({5, 3, 5, 1, 9, 3});
  PositionList out;
  Value lo(int32_t{3}), hi(int32_t{5});
  col->ScanBetween(&lo, &hi, &out);
  EXPECT_EQ(out, (PositionList{0, 1, 2, 5}));
}

TEST(DictionaryColumnTest, ScanUnbounded) {
  auto col = DictionaryColumn<int32_t>::Build({5, 3, 9});
  PositionList all;
  col->ScanBetween(nullptr, nullptr, &all);
  EXPECT_EQ(all, (PositionList{0, 1, 2}));
  PositionList ge5;
  Value lo(int32_t{5});
  col->ScanBetween(&lo, nullptr, &ge5);
  EXPECT_EQ(ge5, (PositionList{0, 2}));
  PositionList le5;
  Value hi(int32_t{5});
  col->ScanBetween(nullptr, &hi, &le5);
  EXPECT_EQ(le5, (PositionList{0, 1}));
}

TEST(DictionaryColumnTest, ScanMissingValue) {
  auto col = DictionaryColumn<int32_t>::Build({5, 3, 9});
  PositionList out;
  Value v(int32_t{4});  // not present
  col->ScanBetween(&v, &v, &out);
  EXPECT_TRUE(out.empty());
  // Range covering no dictionary entries.
  Value lo(int32_t{6}), hi(int32_t{8});
  col->ScanBetween(&lo, &hi, &out);
  EXPECT_TRUE(out.empty());
  // Inverted range.
  Value lo2(int32_t{9}), hi2(int32_t{3});
  col->ScanBetween(&lo2, &hi2, &out);
  EXPECT_TRUE(out.empty());
}

TEST(DictionaryColumnTest, Probe) {
  auto col = DictionaryColumn<int32_t>::Build({5, 3, 5, 1, 9, 3});
  PositionList candidates{1, 2, 4, 5};
  PositionList out;
  Value lo(int32_t{3}), hi(int32_t{5});
  col->Probe(&lo, &hi, candidates, &out);
  EXPECT_EQ(out, (PositionList{1, 2, 5}));
}

TEST(DictionaryColumnTest, Strings) {
  auto col = DictionaryColumn<std::string>::Build(
      {"pear", "apple", "fig", "apple"});
  PositionList out;
  Value v(std::string("apple"));
  col->ScanBetween(&v, &v, &out);
  EXPECT_EQ(out, (PositionList{1, 3}));
  EXPECT_EQ(col->GetValue(0), Value(std::string("pear")));
}

TEST(DictionaryColumnTest, Doubles) {
  auto col = DictionaryColumn<double>::Build({1.5, -2.0, 1.5, 0.0});
  PositionList out;
  Value lo(-1.0), hi(2.0);
  col->ScanBetween(&lo, &hi, &out);
  EXPECT_EQ(out, (PositionList{0, 2, 3}));
}

TEST(DictionaryColumnTest, BuildBoxedDispatch) {
  ColumnDefinition def;
  def.type = DataType::kInt64;
  std::vector<Value> values{Value(int64_t{10}), Value(int64_t{20})};
  auto col = BuildDictionaryColumn(def, values);
  EXPECT_EQ(col->type(), DataType::kInt64);
  EXPECT_EQ(col->GetValue(1), Value(int64_t{20}));
}

TEST(DictionaryColumnTest, MemoryUsageGrowsWithData) {
  Rng rng(3);
  std::vector<int32_t> small, large;
  for (int i = 0; i < 100; ++i) small.push_back(int32_t(rng.NextBounded(10)));
  for (int i = 0; i < 100000; ++i) {
    large.push_back(int32_t(rng.NextBounded(100000)));
  }
  auto c1 = DictionaryColumn<int32_t>::Build(small);
  auto c2 = DictionaryColumn<int32_t>::Build(large);
  EXPECT_LT(c1->MemoryUsage(), c2->MemoryUsage());
}

// Property: scan on dictionary codes == naive scan on raw values.
class DictionaryColumnPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DictionaryColumnPropertyTest, ScanMatchesNaive) {
  Rng rng(GetParam());
  std::vector<int32_t> values;
  for (int i = 0; i < 2000; ++i) values.push_back(int32_t(rng.NextInt(-50, 50)));
  auto col = DictionaryColumn<int32_t>::Build(values);
  for (int trial = 0; trial < 20; ++trial) {
    int32_t lo = int32_t(rng.NextInt(-60, 60));
    int32_t hi = int32_t(rng.NextInt(-60, 60));
    if (lo > hi) std::swap(lo, hi);
    Value vlo(lo), vhi(hi);
    PositionList got;
    col->ScanBetween(&vlo, &vhi, &got);
    PositionList want;
    for (size_t r = 0; r < values.size(); ++r) {
      if (values[r] >= lo && values[r] <= hi) want.push_back(r);
    }
    ASSERT_EQ(got, want) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictionaryColumnPropertyTest,
                         ::testing::Values(1, 5, 23));

}  // namespace
}  // namespace hytap

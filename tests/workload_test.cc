#include "workload/workload.h"

#include <gtest/gtest.h>

namespace hytap {
namespace {

Workload ValidWorkload() {
  Workload w;
  w.column_sizes = {10.0, 20.0};
  w.selectivities = {0.5, 0.1};
  QueryTemplate q;
  q.columns = {0, 1};
  q.frequency = 3.0;
  w.queries = {q};
  return w;
}

TEST(WorkloadTest, TotalBytes) {
  EXPECT_DOUBLE_EQ(ValidWorkload().TotalBytes(), 30.0);
  EXPECT_DOUBLE_EQ(Workload().TotalBytes(), 0.0);
}

TEST(WorkloadTest, ColumnFrequencies) {
  Workload w = ValidWorkload();
  QueryTemplate q2;
  q2.columns = {1};
  q2.frequency = 2.0;
  w.queries.push_back(q2);
  auto g = w.ColumnFrequencies();
  EXPECT_DOUBLE_EQ(g[0], 3.0);
  EXPECT_DOUBLE_EQ(g[1], 5.0);
}

TEST(WorkloadTest, CheckAcceptsValid) {
  ValidWorkload().Check();  // must not abort
}

TEST(WorkloadDeathTest, RejectsArityMismatch) {
  Workload w = ValidWorkload();
  w.selectivities.pop_back();
  EXPECT_DEATH(w.Check(), "arity");
}

TEST(WorkloadDeathTest, RejectsNonPositiveSizes) {
  Workload w = ValidWorkload();
  w.column_sizes[0] = 0.0;
  EXPECT_DEATH(w.Check(), "positive");
}

TEST(WorkloadDeathTest, RejectsSelectivityOutOfRange) {
  Workload w = ValidWorkload();
  w.selectivities[0] = 1.5;
  EXPECT_DEATH(w.Check(), "selectivities");
  w.selectivities[0] = 0.0;
  EXPECT_DEATH(w.Check(), "selectivities");
}

TEST(WorkloadDeathTest, RejectsUnknownColumnReference) {
  Workload w = ValidWorkload();
  w.queries[0].columns.push_back(9);
  EXPECT_DEATH(w.Check(), "unknown column");
}

TEST(WorkloadDeathTest, RejectsNegativeFrequency) {
  Workload w = ValidWorkload();
  w.queries[0].frequency = -1.0;
  EXPECT_DEATH(w.Check(), "non-negative");
}

}  // namespace
}  // namespace hytap

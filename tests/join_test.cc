#include "query/join.h"

#include <gtest/gtest.h>

namespace hytap {
namespace {

Schema LeftSchema() {
  Schema schema;
  schema.push_back({"l_key", DataType::kInt32, 0});
  schema.push_back({"l_val", DataType::kDouble, 0});
  return schema;
}

Schema RightSchema() {
  Schema schema;
  schema.push_back({"r_key", DataType::kInt32, 0});
  schema.push_back({"r_tag", DataType::kString, 8});
  return schema;
}

class JoinTest : public ::testing::Test {
 protected:
  JoinTest()
      : store_(DeviceKind::kXpoint),
        buffers_(&store_, 32),
        left_("left", LeftSchema(), &txns_, &store_, &buffers_),
        right_("right", RightSchema(), &txns_, &store_, &buffers_) {}

  void Load(std::vector<int32_t> left_keys, std::vector<int32_t> right_keys) {
    std::vector<Row> left_rows, right_rows;
    for (int32_t k : left_keys) {
      left_rows.push_back(Row{Value(k), Value(double(k) * 2.0)});
    }
    for (int32_t k : right_keys) {
      right_rows.push_back(Row{Value(k), Value("t" + std::to_string(k))});
    }
    left_.BulkLoad(left_rows);
    right_.BulkLoad(right_rows);
  }

  JoinSpec Spec() {
    JoinSpec spec;
    spec.left_column = 0;
    spec.right_column = 0;
    spec.left_projections = {1};
    spec.right_projections = {1};
    return spec;
  }

  TransactionManager txns_;
  SecondaryStore store_;
  BufferManager buffers_;
  Table left_;
  Table right_;
};

TEST_F(JoinTest, BasicEquiJoin) {
  Load({1, 2, 3, 4}, {2, 4, 6});
  HashJoin join(&left_, &right_);
  Transaction txn = txns_.Begin();
  JoinResult result = join.Execute(txn, {}, {}, Spec());
  ASSERT_EQ(result.matches.size(), 2u);
  ASSERT_EQ(result.rows.size(), 2u);
  // Projections: l_val then r_tag.
  EXPECT_EQ(result.rows[0][0], Value(4.0));
  EXPECT_EQ(result.rows[0][1], Value(std::string("t2")));
}

TEST_F(JoinTest, DuplicateKeysProduceCrossProduct) {
  Load({5, 5, 7}, {5, 5});
  HashJoin join(&left_, &right_);
  Transaction txn = txns_.Begin();
  JoinResult result = join.Execute(txn, {}, {}, Spec());
  EXPECT_EQ(result.matches.size(), 4u);  // 2 x 2
}

TEST_F(JoinTest, EmptySideYieldsNoMatches) {
  Load({}, {1, 2, 3});
  HashJoin join(&left_, &right_);
  Transaction txn = txns_.Begin();
  JoinResult result = join.Execute(txn, {}, {}, Spec());
  EXPECT_TRUE(result.matches.empty());
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(JoinTest, PredicatesFilterBeforeJoin) {
  Load({1, 2, 3, 4, 5}, {1, 2, 3, 4, 5});
  HashJoin join(&left_, &right_);
  Transaction txn = txns_.Begin();
  Query left_query;
  left_query.predicates.push_back(
      Predicate::AtLeast(0, Value(int32_t{3})));
  Query right_query;
  right_query.predicates.push_back(
      Predicate::AtMost(0, Value(int32_t{4})));
  JoinResult result = join.Execute(txn, left_query, right_query, Spec());
  EXPECT_EQ(result.matches.size(), 2u);  // keys 3 and 4
}

TEST_F(JoinTest, MvccFiltersUncommittedRows) {
  Load({1, 2}, {1, 2});
  Transaction writer = txns_.Begin();
  ASSERT_TRUE(left_.Insert(writer, Row{Value(int32_t{9}), Value(1.0)}).ok());
  ASSERT_TRUE(
      right_.Insert(writer, Row{Value(int32_t{9}), Value("t9")}).ok());
  HashJoin join(&left_, &right_);
  Transaction reader = txns_.Begin();
  EXPECT_EQ(join.Execute(reader, {}, {}, Spec()).matches.size(), 2u);
  txns_.Commit(&writer);
  Transaction later = txns_.Begin();
  EXPECT_EQ(join.Execute(later, {}, {}, Spec()).matches.size(), 3u);
}

TEST_F(JoinTest, NoProjectionsSkipsMaterialization) {
  Load({1, 2, 3}, {1, 2, 3});
  HashJoin join(&left_, &right_);
  Transaction txn = txns_.Begin();
  JoinSpec spec;
  spec.left_column = 0;
  spec.right_column = 0;
  JoinResult result = join.Execute(txn, {}, {}, spec);
  EXPECT_EQ(result.matches.size(), 3u);
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(JoinTest, TieredJoinKeyChargesDeviceTime) {
  Load({1, 2, 3, 4, 5, 6, 7, 8}, {2, 4, 6, 8});
  ASSERT_TRUE(left_.SetPlacement({false, false}, nullptr).ok());
  buffers_.Clear();
  HashJoin join(&left_, &right_);
  Transaction txn = txns_.Begin();
  JoinResult result = join.Execute(txn, {}, {}, Spec());
  EXPECT_EQ(result.matches.size(), 4u);
  EXPECT_GT(result.io.device_ns, 0u);
}

}  // namespace
}  // namespace hytap

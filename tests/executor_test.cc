#include "query/executor.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace hytap {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.push_back({"id", DataType::kInt32, 0});      // unique
  schema.push_back({"grp", DataType::kInt32, 0});     // 10 distinct
  schema.push_back({"flag", DataType::kInt32, 0});    // 2 distinct
  schema.push_back({"payload", DataType::kInt32, 0}); // 100 distinct
  return schema;
}

std::vector<Row> TestRows(size_t n) {
  std::vector<Row> rows;
  for (size_t r = 0; r < n; ++r) {
    rows.push_back(Row{Value(int32_t(r)), Value(int32_t(r % 10)),
                       Value(int32_t(r % 2)), Value(int32_t(r % 100))});
  }
  return rows;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : store_(DeviceKind::kXpoint),
        buffers_(&store_, 32),
        table_("t", TestSchema(), &txns_, &store_, &buffers_),
        executor_(&table_) {
    table_.BulkLoad(TestRows(1000));
  }

  /// Reference evaluation: naive row-by-row predicate check.
  PositionList Naive(const Query& query, const Transaction& txn) {
    PositionList out;
    for (RowId r = 0; r < table_.row_count(); ++r) {
      if (!table_.IsVisible(r, txn)) continue;
      bool ok = true;
      for (const Predicate& p : query.predicates) {
        if (!p.Matches(*table_.GetValue(p.column, r, 1, nullptr))) {
          ok = false;
          break;
        }
      }
      if (ok) out.push_back(r);
    }
    return out;
  }

  TransactionManager txns_;
  SecondaryStore store_;
  BufferManager buffers_;
  Table table_;
  QueryExecutor executor_;
};

TEST_F(ExecutorTest, SinglePredicate) {
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{3})));
  QueryResult result = executor_.Execute(txn, query);
  EXPECT_EQ(result.positions.size(), 100u);
  EXPECT_EQ(result.positions, Naive(query, txn));
}

TEST_F(ExecutorTest, ConjunctionMatchesNaive) {
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{3})));
  query.predicates.push_back(Predicate::Equals(2, Value(int32_t{1})));
  QueryResult result = executor_.Execute(txn, query);
  EXPECT_EQ(result.positions, Naive(query, txn));
}

TEST_F(ExecutorTest, RangePredicate) {
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(
      Predicate::Between(0, Value(int32_t{100}), Value(int32_t{199})));
  QueryResult result = executor_.Execute(txn, query);
  EXPECT_EQ(result.positions.size(), 100u);
}

TEST_F(ExecutorTest, PredicateOrderBySelectivity) {
  Query query;
  query.predicates.push_back(Predicate::Equals(2, Value(int32_t{0})));  // s=1/2
  query.predicates.push_back(Predicate::Equals(0, Value(int32_t{5})));  // s=1/1000
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{5})));  // s=1/10
  auto order = executor_.PredicateOrder(query);
  // Most restrictive (id) first, then grp, then flag.
  EXPECT_EQ(order, (std::vector<size_t>{1, 2, 0}));
}

TEST_F(ExecutorTest, DramPredicatesBeforeTieredOnes) {
  // Evict 'id' (most selective); ordering must still put DRAM columns first.
  ASSERT_TRUE(table_.SetPlacement({false, true, true, true}, nullptr).ok());
  Query query;
  query.predicates.push_back(Predicate::Equals(0, Value(int32_t{5})));
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{5})));
  auto order = executor_.PredicateOrder(query);
  EXPECT_EQ(query.predicates[order[0]].column, 1u);  // DRAM first
  EXPECT_EQ(query.predicates[order[1]].column, 0u);  // tiered last
}

TEST_F(ExecutorTest, ResultsIdenticalForAnyPlacement) {
  // Key invariant: placement affects cost, never results.
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{4})));
  query.predicates.push_back(
      Predicate::Between(3, Value(int32_t{10}), Value(int32_t{60})));
  const PositionList expected = Naive(query, txn);
  const std::vector<std::vector<bool>> placements = {
      {true, true, true, true},
      {true, true, true, false},
      {true, false, true, false},
      {false, false, false, false},
  };
  for (const auto& placement : placements) {
    ASSERT_TRUE(table_.SetPlacement(placement, nullptr).ok());
    buffers_.Clear();
    QueryResult result = executor_.Execute(txn, query);
    EXPECT_EQ(result.positions, expected);
  }
}

TEST_F(ExecutorTest, TieredPredicateCostsDeviceTime) {
  // Same single-predicate scan, DRAM vs SSCG placement: the tiered variant
  // must charge device time and cost strictly more.
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(
      Predicate::Between(3, Value(int32_t{10}), Value(int32_t{60})));
  QueryResult all_dram = executor_.Execute(txn, query);
  EXPECT_EQ(all_dram.io.device_ns, 0u);
  ASSERT_TRUE(table_.SetPlacement({true, true, true, false}, nullptr).ok());
  buffers_.Clear();
  QueryResult tiered = executor_.Execute(txn, query);
  EXPECT_GT(tiered.io.device_ns, 0u);
  EXPECT_EQ(tiered.positions, all_dram.positions);
  EXPECT_GT(tiered.io.TotalNs(), all_dram.io.TotalNs());
}

TEST_F(ExecutorTest, DeltaRowsIncluded) {
  Transaction writer = txns_.Begin();
  ASSERT_TRUE(table_
                  .Insert(writer, Row{Value(int32_t{5000}), Value(int32_t{3}),
                                      Value(int32_t{1}), Value(int32_t{50})})
                  .ok());
  txns_.Commit(&writer);
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(0, Value(int32_t{5000})));
  QueryResult result = executor_.Execute(txn, query);
  ASSERT_EQ(result.positions.size(), 1u);
  EXPECT_EQ(result.positions[0], 1000u);  // global delta position
}

TEST_F(ExecutorTest, UncommittedDeltaRowsExcluded) {
  Transaction writer = txns_.Begin();
  ASSERT_TRUE(table_
                  .Insert(writer, Row{Value(int32_t{5000}), Value(int32_t{3}),
                                      Value(int32_t{1}), Value(int32_t{50})})
                  .ok());
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(0, Value(int32_t{5000})));
  EXPECT_TRUE(executor_.Execute(txn, query).positions.empty());
}

TEST_F(ExecutorTest, DeletedRowsExcluded) {
  Transaction deleter = txns_.Begin();
  ASSERT_TRUE(table_.Delete(deleter, 55).ok());
  txns_.Commit(&deleter);
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(0, Value(int32_t{55})));
  EXPECT_TRUE(executor_.Execute(txn, query).positions.empty());
}

TEST_F(ExecutorTest, ProjectionsMaterialize) {
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(0, Value(int32_t{77})));
  query.projections = {3, 1};
  QueryResult result = executor_.Execute(txn, query);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], Value(int32_t{77}));  // payload = id % 100
  EXPECT_EQ(result.rows[0][1], Value(int32_t{7}));   // grp = id % 10
}

TEST_F(ExecutorTest, ProjectionFromSscgSharesPage) {
  ASSERT_TRUE(table_.SetPlacement({true, true, false, false}, nullptr).ok());
  buffers_.Clear();
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(0, Value(int32_t{123})));
  query.projections = {2, 3};  // both SSCG-placed
  QueryResult result = executor_.Execute(txn, query);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], Value(int32_t{1}));
  EXPECT_EQ(result.rows[0][1], Value(int32_t{23}));
  // Both projected attributes come from one page access.
  EXPECT_EQ(result.io.page_reads + result.io.cache_hits, 1u);
}

TEST_F(ExecutorTest, EmptyQueryReturnsAllVisible) {
  Transaction txn = txns_.Begin();
  Query query;
  QueryResult result = executor_.Execute(txn, query);
  EXPECT_EQ(result.positions.size(), 1000u);
}

TEST_F(ExecutorTest, CandidateTraceShrinks) {
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{3})));
  query.predicates.push_back(Predicate::Equals(2, Value(int32_t{1})));
  QueryResult result = executor_.Execute(txn, query);
  ASSERT_EQ(result.candidate_trace.size(), 2u);
  EXPECT_GE(result.candidate_trace[0], result.candidate_trace[1]);
}

TEST_F(ExecutorTest, PickIndexUsesHistogramEstimate) {
  ASSERT_TRUE(table_.CreateIndex({0}).ok());  // id: 1000 distinct
  ASSERT_TRUE(table_.CreateIndex({1}).ok());  // grp: 10 distinct
  table_.BuildStatistics();
  Query query;
  // Wide range over the high-cardinality id (~0.9 selectivity) vs equality
  // on grp (0.1). The static 1/distinct default would pick the id index and
  // pull ~900 candidates; the histogram-backed estimate picks grp.
  query.predicates.push_back(
      Predicate::Between(0, Value(int32_t{0}), Value(int32_t{899})));
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{3})));
  Transaction txn = txns_.Begin();
  QueryResult result = executor_.Execute(txn, query);
  EXPECT_EQ(result.positions, Naive(query, txn));
  ASSERT_FALSE(result.candidate_trace.empty());
  EXPECT_EQ(result.candidate_trace[0], 100u);
}

// Property: random conjunctive queries match naive evaluation across mixed
// placements and delta contents.
class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorPropertyTest, RandomQueriesMatchNaive) {
  TransactionManager txns;
  SecondaryStore store(DeviceKind::kCssd);
  BufferManager buffers(&store, 16);
  Table table("t", TestSchema(), &txns, &store, &buffers);
  table.BulkLoad(TestRows(500));
  Rng rng(GetParam());
  // Random placement.
  std::vector<bool> placement(4);
  for (size_t c = 0; c < 4; ++c) placement[c] = rng.NextBool(0.5);
  ASSERT_TRUE(table.SetPlacement(placement, nullptr).ok());
  // Some committed delta rows.
  Transaction writer = txns.Begin();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table
                    .Insert(writer, Row{Value(int32_t(600 + i)),
                                        Value(int32_t(i % 10)),
                                        Value(int32_t(i % 2)),
                                        Value(int32_t(i % 100))})
                    .ok());
  }
  txns.Commit(&writer);
  QueryExecutor executor(&table);
  Transaction txn = txns.Begin();
  for (int trial = 0; trial < 20; ++trial) {
    Query query;
    const size_t arity = 1 + rng.NextBounded(3);
    for (size_t k = 0; k < arity; ++k) {
      const ColumnId col = ColumnId(rng.NextBounded(4));
      int32_t lo = int32_t(rng.NextInt(0, 120));
      int32_t hi = lo + int32_t(rng.NextBounded(50));
      query.predicates.push_back(
          Predicate::Between(col, Value(lo), Value(hi)));
    }
    QueryResult result = executor.Execute(txn, query);
    PositionList expected;
    for (RowId r = 0; r < table.row_count(); ++r) {
      if (!table.IsVisible(r, txn)) continue;
      bool ok = true;
      for (const Predicate& p : query.predicates) {
        if (!p.Matches(*table.GetValue(p.column, r, 1, nullptr))) {
          ok = false;
          break;
        }
      }
      if (ok) expected.push_back(r);
    }
    PositionList got = result.positions;
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace hytap

#include "storage/row_layout.h"

#include <gtest/gtest.h>

namespace hytap {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.push_back({"id", DataType::kInt32, 0});
  schema.push_back({"amount", DataType::kDouble, 0});
  schema.push_back({"name", DataType::kString, 12});
  schema.push_back({"ts", DataType::kInt64, 0});
  schema.push_back({"flag", DataType::kInt32, 0});
  return schema;
}

TEST(RowLayoutTest, OffsetsAndWidth) {
  RowLayout layout(TestSchema(), {0, 2, 3});
  EXPECT_EQ(layout.member_count(), 3u);
  EXPECT_EQ(layout.row_width(), 4u + 12u + 8u);
  EXPECT_EQ(layout.rows_per_page(), kPageSize / 24);
}

TEST(RowLayoutTest, SlotMapping) {
  RowLayout layout(TestSchema(), {3, 0});
  EXPECT_EQ(layout.SlotOf(3), 0);
  EXPECT_EQ(layout.SlotOf(0), 1);
  EXPECT_EQ(layout.SlotOf(1), -1);  // not a member
  EXPECT_EQ(layout.SlotOf(99), -1);
}

TEST(RowLayoutTest, PageAddressing) {
  RowLayout layout(TestSchema(), {0});  // 4-byte rows -> 1024 per page
  EXPECT_EQ(layout.rows_per_page(), 1024u);
  EXPECT_EQ(layout.PageOf(0), 0u);
  EXPECT_EQ(layout.PageOf(1023), 0u);
  EXPECT_EQ(layout.PageOf(1024), 1u);
  EXPECT_EQ(layout.OffsetInPage(1025), 4u);
  EXPECT_EQ(layout.PageCountFor(0), 0u);
  EXPECT_EQ(layout.PageCountFor(1024), 1u);
  EXPECT_EQ(layout.PageCountFor(1025), 2u);
}

TEST(RowLayoutTest, SerializeDeserializeRow) {
  RowLayout layout(TestSchema(), {0, 1, 2});
  std::vector<uint8_t> buffer(layout.row_width());
  Row row{Value(int32_t{17}), Value(2.5), Value(std::string("hello"))};
  layout.SerializeRow(row, buffer.data());
  Row got = layout.DeserializeRow(buffer.data());
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], Value(int32_t{17}));
  EXPECT_EQ(got[1], Value(2.5));
  EXPECT_EQ(got[2], Value(std::string("hello")));
}

TEST(RowLayoutTest, DeserializeSingleSlot) {
  RowLayout layout(TestSchema(), {1, 3});
  std::vector<uint8_t> buffer(layout.row_width());
  Row row{Value(-0.5), Value(int64_t{999})};
  layout.SerializeRow(row, buffer.data());
  EXPECT_EQ(layout.DeserializeSlot(buffer.data(), 0), Value(-0.5));
  EXPECT_EQ(layout.DeserializeSlot(buffer.data(), 1), Value(int64_t{999}));
}

TEST(RowLayoutTest, StringTruncatesToWidth) {
  RowLayout layout(TestSchema(), {2});  // name, width 12
  std::vector<uint8_t> buffer(layout.row_width());
  layout.SerializeRow({Value(std::string("0123456789abcdef"))}, buffer.data());
  EXPECT_EQ(layout.DeserializeSlot(buffer.data(), 0),
            Value(std::string("0123456789ab")));
}

TEST(RowLayoutDeathTest, DuplicateMember) {
  EXPECT_DEATH(RowLayout(TestSchema(), {0, 0}), "duplicate");
}

TEST(RowLayoutDeathTest, EmptyMembers) {
  EXPECT_DEATH(RowLayout(TestSchema(), {}), "at least one");
}

TEST(RowLayoutDeathTest, RowWiderThanPage) {
  Schema schema;
  for (int i = 0; i < 3; ++i) {
    schema.push_back({"s" + std::to_string(i), DataType::kString, 2000});
  }
  EXPECT_DEATH(RowLayout(schema, {0, 1, 2}), "page size");
}

TEST(RowLayoutTest, WideEnterpriseRowFitsPage) {
  // 345 int32 attributes: 1380-byte rows, 2 rows per 4 KB page.
  Schema schema;
  for (int i = 0; i < 345; ++i) {
    schema.push_back({"a" + std::to_string(i), DataType::kInt32, 0});
  }
  std::vector<ColumnId> members;
  for (ColumnId c = 0; c < 345; ++c) members.push_back(c);
  RowLayout layout(schema, members);
  EXPECT_EQ(layout.row_width(), 1380u);
  EXPECT_EQ(layout.rows_per_page(), 2u);
}

}  // namespace
}  // namespace hytap

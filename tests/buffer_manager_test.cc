#include "tiering/buffer_manager.h"

#include <gtest/gtest.h>

#include <cstring>

namespace hytap {
namespace {

class BufferManagerTest : public ::testing::Test {
 protected:
  BufferManagerTest() : store_(DeviceKind::kXpoint) {
    // 16 pages with recognizable contents.
    for (int p = 0; p < 16; ++p) {
      const PageId id = store_.AllocatePage();
      SecondaryStore::Page page;
      page.fill(static_cast<uint8_t>(p + 1));
      store_.WritePage(id, page);
    }
  }

  SecondaryStore store_;
};

TEST_F(BufferManagerTest, MissThenHit) {
  BufferManager bm(&store_, 4);
  auto fetch1 = bm.FetchPage(3, AccessPattern::kRandom);
  ASSERT_TRUE(fetch1.ok());
  EXPECT_FALSE(fetch1->hit);
  EXPECT_GT(fetch1->latency_ns, 1000u);  // device latency
  EXPECT_EQ((*fetch1->page)[0], 4);
  auto fetch2 = bm.FetchPage(3, AccessPattern::kRandom);
  ASSERT_TRUE(fetch2.ok());
  EXPECT_TRUE(fetch2->hit);
  EXPECT_LT(fetch2->latency_ns, 1000u);  // DRAM
  EXPECT_EQ(bm.stats().hits, 1u);
  EXPECT_EQ(bm.stats().misses, 1u);
}

TEST_F(BufferManagerTest, CapacityNeverExceeded) {
  BufferManager bm(&store_, 4);
  for (PageId id = 0; id < 16; ++id) {
    bm.FetchPage(id, AccessPattern::kSequential);
    EXPECT_LE(bm.resident_pages(), 4u);
  }
  EXPECT_EQ(bm.stats().misses, 16u);
  EXPECT_EQ(bm.stats().evictions, 12u);
}

TEST_F(BufferManagerTest, EvictionDropsColdPage) {
  BufferManager bm(&store_, 2);
  bm.FetchPage(0, AccessPattern::kRandom);
  bm.FetchPage(1, AccessPattern::kRandom);
  bm.FetchPage(2, AccessPattern::kRandom);  // evicts one of 0/1
  EXPECT_EQ(bm.resident_pages(), 2u);
  EXPECT_TRUE(bm.IsResident(2));
}

TEST_F(BufferManagerTest, PinnedPagesSurviveEviction) {
  BufferManager bm(&store_, 2);
  bm.FetchPage(0, AccessPattern::kRandom);
  bm.Pin(0);
  for (PageId id = 1; id < 10; ++id) {
    bm.FetchPage(id, AccessPattern::kRandom);
    ASSERT_TRUE(bm.IsResident(0)) << "pinned page evicted at " << id;
  }
  bm.Unpin(0);
  // Now page 0 may be evicted again.
  bm.FetchPage(10, AccessPattern::kRandom);
  bm.FetchPage(11, AccessPattern::kRandom);
  EXPECT_FALSE(bm.IsResident(0));
}

TEST_F(BufferManagerTest, PinsNest) {
  BufferManager bm(&store_, 2);
  bm.FetchPage(0, AccessPattern::kRandom);
  bm.Pin(0);
  bm.Pin(0);
  bm.Unpin(0);
  // Still pinned once.
  bm.FetchPage(1, AccessPattern::kRandom);
  bm.FetchPage(2, AccessPattern::kRandom);
  EXPECT_TRUE(bm.IsResident(0));
}

TEST_F(BufferManagerTest, ClockSweepEvictsInHandOrder) {
  // CLOCK semantics: with every resident page referenced, a full sweep
  // clears all reference bits and the hand evicts frames in order.
  BufferManager bm(&store_, 3);
  bm.FetchPage(0, AccessPattern::kRandom);
  bm.FetchPage(1, AccessPattern::kRandom);
  bm.FetchPage(2, AccessPattern::kRandom);
  bm.FetchPage(3, AccessPattern::kRandom);  // sweep clears, evicts frame 0
  EXPECT_FALSE(bm.IsResident(0));
  bm.FetchPage(4, AccessPattern::kRandom);  // frame 1 (bit already cleared)
  EXPECT_FALSE(bm.IsResident(1));
  bm.FetchPage(5, AccessPattern::kRandom);  // frame 2
  EXPECT_FALSE(bm.IsResident(2));
  EXPECT_TRUE(bm.IsResident(3));
  EXPECT_TRUE(bm.IsResident(4));
  EXPECT_TRUE(bm.IsResident(5));
}

TEST_F(BufferManagerTest, ReferencedPageGetsOneSweepOfGrace) {
  BufferManager bm(&store_, 3);
  bm.FetchPage(0, AccessPattern::kRandom);
  bm.FetchPage(1, AccessPattern::kRandom);
  bm.FetchPage(2, AccessPattern::kRandom);
  bm.FetchPage(3, AccessPattern::kRandom);  // evicts frame 0, hand at 1
  // Re-reference page 1 (frame 1): the next eviction must skip it once its
  // bit is fresh and take frame 2 (page 2, bit cleared by the first sweep).
  bm.FetchPage(1, AccessPattern::kRandom);
  bm.FetchPage(6, AccessPattern::kRandom);
  EXPECT_TRUE(bm.IsResident(1));
  EXPECT_FALSE(bm.IsResident(2));
}

TEST_F(BufferManagerTest, ClearDropsUnpinned) {
  BufferManager bm(&store_, 4);
  bm.FetchPage(0, AccessPattern::kRandom);
  bm.FetchPage(1, AccessPattern::kRandom);
  bm.Pin(1);
  bm.Clear();
  EXPECT_FALSE(bm.IsResident(0));
  EXPECT_TRUE(bm.IsResident(1));
}

TEST_F(BufferManagerTest, ResizeResetsCache) {
  BufferManager bm(&store_, 2);
  bm.FetchPage(0, AccessPattern::kRandom);
  bm.Resize(8);
  EXPECT_EQ(bm.frame_count(), 8u);
  EXPECT_EQ(bm.resident_pages(), 0u);
}

TEST_F(BufferManagerTest, HitRateStat) {
  BufferManager bm(&store_, 4);
  bm.FetchPage(0, AccessPattern::kRandom);
  bm.FetchPage(0, AccessPattern::kRandom);
  bm.FetchPage(0, AccessPattern::kRandom);
  bm.FetchPage(1, AccessPattern::kRandom);
  EXPECT_DOUBLE_EQ(bm.stats().HitRate(), 0.5);
  bm.ResetStats();
  EXPECT_EQ(bm.stats().hits + bm.stats().misses, 0u);
}

TEST_F(BufferManagerTest, ContentsMatchStore) {
  BufferManager bm(&store_, 4);
  for (PageId id = 0; id < 16; ++id) {
    auto fetch = bm.FetchPage(id, AccessPattern::kRandom);
    ASSERT_TRUE(fetch.ok());
    EXPECT_EQ(0, std::memcmp(fetch->page->data(), store_.RawPage(id).data(),
                             kPageSize));
  }
}

TEST_F(BufferManagerTest, AllPinnedAborts) {
  BufferManager bm(&store_, 1);
  bm.FetchPage(0, AccessPattern::kRandom);
  bm.Pin(0);
  EXPECT_DEATH(bm.FetchPage(1, AccessPattern::kRandom), "pinned");
}

}  // namespace
}  // namespace hytap

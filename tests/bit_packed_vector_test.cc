#include "storage/bit_packed_vector.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hytap {
namespace {

TEST(BitPackedVectorTest, BitsFor) {
  EXPECT_EQ(BitPackedVector::BitsFor(0), 1u);
  EXPECT_EQ(BitPackedVector::BitsFor(1), 1u);
  EXPECT_EQ(BitPackedVector::BitsFor(2), 2u);
  EXPECT_EQ(BitPackedVector::BitsFor(3), 2u);
  EXPECT_EQ(BitPackedVector::BitsFor(4), 3u);
  EXPECT_EQ(BitPackedVector::BitsFor(255), 8u);
  EXPECT_EQ(BitPackedVector::BitsFor(256), 9u);
  EXPECT_EQ(BitPackedVector::BitsFor(~0ULL), 64u);
}

TEST(BitPackedVectorTest, AppendAndGetSmallWidth) {
  BitPackedVector v(3);
  for (uint64_t i = 0; i < 100; ++i) v.Append(i % 8);
  ASSERT_EQ(v.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(v.Get(i), i % 8);
}

TEST(BitPackedVectorTest, CrossWordBoundaries) {
  // Width 7 does not divide 64, so entries straddle word boundaries.
  BitPackedVector v(7);
  for (uint64_t i = 0; i < 200; ++i) v.Append(i % 128);
  for (size_t i = 0; i < 200; ++i) EXPECT_EQ(v.Get(i), i % 128) << i;
}

TEST(BitPackedVectorTest, SetOverwrites) {
  BitPackedVector v(5);
  for (uint64_t i = 0; i < 64; ++i) v.Append(i % 32);
  v.Set(0, 31);
  v.Set(63, 1);
  v.Set(13, 17);
  EXPECT_EQ(v.Get(0), 31u);
  EXPECT_EQ(v.Get(63), 1u);
  EXPECT_EQ(v.Get(13), 17u);
  // Neighbors untouched.
  EXPECT_EQ(v.Get(1), 1u);
  EXPECT_EQ(v.Get(12), 12u);
  EXPECT_EQ(v.Get(14), 14u);
}

TEST(BitPackedVectorTest, FullWidth64) {
  BitPackedVector v(64);
  const uint64_t values[] = {0, ~0ULL, 0x123456789abcdef0ULL, 42};
  for (uint64_t x : values) v.Append(x);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(v.Get(i), values[i]);
}

// Property sweep: round-trip for every width.
class BitPackedWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitPackedWidthTest, RandomRoundTrip) {
  const uint32_t bits = GetParam();
  const uint64_t mask = bits == 64 ? ~0ULL : (1ULL << bits) - 1;
  Rng rng(bits * 977 + 1);
  BitPackedVector v(bits);
  std::vector<uint64_t> expected;
  for (size_t i = 0; i < 500; ++i) {
    const uint64_t value = rng.Next() & mask;
    v.Append(value);
    expected.push_back(value);
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(v.Get(i), expected[i]) << "bits=" << bits << " i=" << i;
  }
  // Overwrite everything and re-check.
  for (size_t i = 0; i < expected.size(); ++i) {
    expected[i] = rng.Next() & mask;
    v.Set(i, expected[i]);
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(v.Get(i), expected[i]) << "bits=" << bits << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackedWidthTest,
                         ::testing::Range(1u, 65u));

TEST(BitPackedVectorDeathTest, ValueExceedsWidth) {
  BitPackedVector v(2);
  EXPECT_DEATH(v.Append(4), "exceeds bit width");
}

TEST(BitPackedVectorDeathTest, OutOfRangeGet) {
  BitPackedVector v(8);
  v.Append(1);
  EXPECT_DEATH(v.Get(1), "out of range");
}

TEST(BitPackedVectorTest, MemoryUsageScalesWithBits) {
  BitPackedVector narrow(2), wide(32);
  for (uint64_t i = 0; i < 10000; ++i) {
    narrow.Append(i % 4);
    wide.Append(i);
  }
  EXPECT_LT(narrow.MemoryUsage() * 4, wide.MemoryUsage());
}

}  // namespace
}  // namespace hytap

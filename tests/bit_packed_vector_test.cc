#include "storage/bit_packed_vector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "common/random.h"

namespace hytap {
namespace {

TEST(BitPackedVectorTest, BitsFor) {
  EXPECT_EQ(BitPackedVector::BitsFor(0), 1u);
  EXPECT_EQ(BitPackedVector::BitsFor(1), 1u);
  EXPECT_EQ(BitPackedVector::BitsFor(2), 2u);
  EXPECT_EQ(BitPackedVector::BitsFor(3), 2u);
  EXPECT_EQ(BitPackedVector::BitsFor(4), 3u);
  EXPECT_EQ(BitPackedVector::BitsFor(255), 8u);
  EXPECT_EQ(BitPackedVector::BitsFor(256), 9u);
  EXPECT_EQ(BitPackedVector::BitsFor(~0ULL), 64u);
}

TEST(BitPackedVectorTest, AppendAndGetSmallWidth) {
  BitPackedVector v(3);
  for (uint64_t i = 0; i < 100; ++i) v.Append(i % 8);
  ASSERT_EQ(v.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(v.Get(i), i % 8);
}

TEST(BitPackedVectorTest, CrossWordBoundaries) {
  // Width 7 does not divide 64, so entries straddle word boundaries.
  BitPackedVector v(7);
  for (uint64_t i = 0; i < 200; ++i) v.Append(i % 128);
  for (size_t i = 0; i < 200; ++i) EXPECT_EQ(v.Get(i), i % 128) << i;
}

TEST(BitPackedVectorTest, SetOverwrites) {
  BitPackedVector v(5);
  for (uint64_t i = 0; i < 64; ++i) v.Append(i % 32);
  v.Set(0, 31);
  v.Set(63, 1);
  v.Set(13, 17);
  EXPECT_EQ(v.Get(0), 31u);
  EXPECT_EQ(v.Get(63), 1u);
  EXPECT_EQ(v.Get(13), 17u);
  // Neighbors untouched.
  EXPECT_EQ(v.Get(1), 1u);
  EXPECT_EQ(v.Get(12), 12u);
  EXPECT_EQ(v.Get(14), 14u);
}

TEST(BitPackedVectorTest, FullWidth64) {
  BitPackedVector v(64);
  const uint64_t values[] = {0, ~0ULL, 0x123456789abcdef0ULL, 42};
  for (uint64_t x : values) v.Append(x);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(v.Get(i), values[i]);
}

// Property sweep: round-trip for every width.
class BitPackedWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitPackedWidthTest, RandomRoundTrip) {
  const uint32_t bits = GetParam();
  const uint64_t mask = bits == 64 ? ~0ULL : (1ULL << bits) - 1;
  Rng rng(bits * 977 + 1);
  BitPackedVector v(bits);
  std::vector<uint64_t> expected;
  for (size_t i = 0; i < 500; ++i) {
    const uint64_t value = rng.Next() & mask;
    v.Append(value);
    expected.push_back(value);
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(v.Get(i), expected[i]) << "bits=" << bits << " i=" << i;
  }
  // Overwrite everything and re-check.
  for (size_t i = 0; i < expected.size(); ++i) {
    expected[i] = rng.Next() & mask;
    v.Set(i, expected[i]);
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(v.Get(i), expected[i]) << "bits=" << bits << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackedWidthTest,
                         ::testing::Range(1u, 65u));

TEST(BitPackedVectorDeathTest, ValueExceedsWidth) {
  BitPackedVector v(2);
  EXPECT_DEATH(v.Append(4), "exceeds bit width");
}

TEST(BitPackedVectorDeathTest, OutOfRangeGet) {
  BitPackedVector v(8);
  v.Append(1);
  EXPECT_DEATH(v.Get(1), "out of range");
}

TEST(BitPackedVectorTest, MemoryUsageScalesWithBits) {
  BitPackedVector narrow(2), wide(32);
  for (uint64_t i = 0; i < 10000; ++i) {
    narrow.Append(i % 4);
    wide.Append(i);
  }
  EXPECT_LT(narrow.MemoryUsage() * 4, wide.MemoryUsage());
}

TEST(BitPackedVectorTest, MemoryUsageIsExactWordCount) {
  // Must report the words actually holding data, not vector capacity
  // (Reserve over-allocates; MemoryUsage feeds the cost model).
  for (uint32_t bits : {1u, 7u, 32u, 63u, 64u}) {
    BitPackedVector v(bits);
    v.Reserve(100000);
    const size_t n = 1000;
    for (size_t i = 0; i < n; ++i) v.Append(0);
    const size_t expected_words = (n * bits + 63) / 64;
    EXPECT_EQ(v.MemoryUsage(), expected_words * sizeof(uint64_t))
        << "bits=" << bits;
  }
}

// Batch kernels (ScanEqual / ScanRange / DecodeRange) must agree with the
// per-row Get() reference at every width, including widths that straddle
// word boundaries and sub-ranges starting/ending mid-word.
class BitPackedKernelTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitPackedKernelTest, KernelsMatchGetReference) {
  const uint32_t bits = GetParam();
  const uint64_t mask = bits == 64 ? ~0ULL : (1ULL << bits) - 1;
  // Draw from a small domain so ScanEqual/ScanRange get real matches.
  const uint64_t domain = std::min<uint64_t>(mask, 16);
  Rng rng(bits * 31 + 5);
  BitPackedVector v(bits);
  std::vector<uint64_t> ref;
  const size_t n = 777;  // not a multiple of any word period
  for (size_t i = 0; i < n; ++i) {
    const uint64_t value = rng.Next() % (domain + 1);
    v.Append(value);
    ref.push_back(value);
  }
  // Sub-ranges chosen to start/end mid-word and straddle word boundaries.
  const std::pair<size_t, size_t> ranges[] = {
      {0, n}, {0, 0}, {1, 2}, {63, 65}, {64, 128}, {127, 129}, {500, 777}};
  for (const auto& [begin, end] : ranges) {
    const uint64_t target = domain / 2;
    const uint64_t lo = domain / 4, hi = domain / 2 + 2;  // half-open [lo, hi)
    PositionList eq, range, eq_ref, range_ref;
    v.ScanEqual(target, begin, end, &eq);
    v.ScanRange(lo, hi, begin, end, &range);
    for (size_t i = begin; i < end; ++i) {
      if (v.Get(i) == target) eq_ref.push_back(i);
      const uint64_t code = v.Get(i);
      if (code >= lo && code < hi) range_ref.push_back(i);
    }
    EXPECT_EQ(eq, eq_ref) << "bits=" << bits << " [" << begin << "," << end;
    EXPECT_EQ(range, range_ref)
        << "bits=" << bits << " [" << begin << "," << end;
    std::vector<uint64_t> decoded(end - begin);
    v.DecodeRange(begin, end, decoded.data());
    for (size_t i = begin; i < end; ++i) {
      ASSERT_EQ(decoded[i - begin], ref[i])
          << "bits=" << bits << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StraddleWidths, BitPackedKernelTest,
                         ::testing::Values(1u, 7u, 32u, 63u, 64u));

TEST(BitPackedKernelTest, FullWidthExtremeValues) {
  // Width 64: every entry occupies exactly one word; mask must not clip.
  BitPackedVector v(64);
  const uint64_t values[] = {0, ~0ULL, 0x8000000000000000ULL, 1};
  for (uint64_t x : values) v.Append(x);
  std::vector<uint64_t> decoded(4);
  v.DecodeRange(0, 4, decoded.data());
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(decoded[i], values[i]);
  PositionList eq;
  v.ScanEqual(~0ULL, 0, 4, &eq);
  EXPECT_EQ(eq, PositionList{1});
}

}  // namespace
}  // namespace hytap
